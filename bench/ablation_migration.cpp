// Ablation A2 — The migration threshold (paper §III-C).
//
// "Our approach carries out data migration only when the gain ... compared
// to the migration cost is higher than a certain threshold." This harness
// runs the full event-driven system under a follow-the-sun workload (the
// client population's center of gravity moves over the day) and sweeps the
// relative-gain threshold. It reports how many migrations each setting
// performs, the bytes they moved, and the achieved mean access delay —
// the cost/quality trade-off the threshold tunes.
#include <cstdio>

#include <memory>

#include "bench_util.h"
#include "core/system.h"
#include "netcoord/embedding.h"
#include "topology/planetlab_model.h"

using namespace geored;

int main() {
  bench::print_header(
      "Ablation: migration threshold vs churn and delay",
      "100-node topology, 12 DCs, k=2, diurnal workload (period 200 s), 600 s horizon");

  topo::PlanetLabModelConfig topo_config;
  topo_config.node_count = 100;
  const auto topology = topo::generate_planetlab_like(topo_config, 42);
  const auto coords = coord::run_rnp(topology, coord::RnpConfig{}, coord::GossipConfig{}, 7);

  constexpr std::size_t kDcs = 12;
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < kDcs; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i), coords[i].position,
                          std::numeric_limits<double>::infinity()});
  }
  std::vector<topo::NodeId> clients;
  std::vector<Point> client_coords;
  std::vector<double> phases;
  for (topo::NodeId i = kDcs; i < topology.size(); ++i) {
    clients.push_back(i);
    client_coords.push_back(coords[i].position);
    // Peak activity follows local time: phase from longitude.
    phases.push_back((topology.node(i).location.lon_deg + 180.0) / 360.0);
  }

  std::printf("%-22s %12s %16s %18s %14s\n", "relative threshold", "migrations",
              "migration MB", "summary bytes", "mean delay");

  double delay_loose = 0.0, delay_strict = 0.0;
  std::size_t migrations_loose = 0, migrations_strict = 0;
  for (const double threshold : {0.0, 0.05, 0.20, 0.50, 1e9}) {
    sim::Simulator simulator;
    sim::Network network(simulator, topology);
    auto base = std::make_unique<wl::StaticWorkload>(
        std::vector<double>(clients.size(), 0.002));
    wl::DiurnalWorkload workload(std::move(base), phases, /*period_ms=*/200'000.0,
                                 /*floor_fraction=*/0.05);

    core::SystemConfig config;
    config.manager.replication_degree = 2;
    config.manager.summarizer.max_clusters = 4;
    config.manager.migration.min_relative_gain = threshold;
    config.manager.migration.min_absolute_gain_ms = threshold >= 1e9 ? 1e18 : 1.0;
    config.epoch_ms = 20'000.0;
    config.object_bytes = 1u << 28;  // 256 MB object
    config.selection = core::ReplicaSelection::kByCoordinates;

    core::ReplicationSystem system(simulator, network, candidates, clients, client_coords,
                                   workload, candidates[0].node, config, 1);
    system.run(600'000.0);

    std::size_t migrations = 0;
    for (const auto& report : system.epoch_reports()) {
      migrations += report.decision.migrate ? 1 : 0;
    }
    const auto& stats = network.stats();
    const double migration_mb =
        static_cast<double>(
            stats.bytes[static_cast<std::size_t>(sim::TrafficClass::kMigration)]) /
        (1024.0 * 1024.0);
    const char* label = threshold >= 1e9 ? "never migrate" : nullptr;
    char buffer[32];
    if (!label) {
      std::snprintf(buffer, sizeof buffer, "%.2f", threshold);
      label = buffer;
    }
    std::printf("%-22s %12zu %16.0f %18llu %12.2fms\n", label, migrations, migration_mb,
                static_cast<unsigned long long>(
                    stats.bytes[static_cast<std::size_t>(sim::TrafficClass::kSummary)]),
                system.overall_delay().mean());

    if (threshold == 0.0) {
      delay_loose = system.overall_delay().mean();
      migrations_loose = migrations;
    }
    if (threshold >= 1e9) {
      delay_strict = system.overall_delay().mean();
      migrations_strict = migrations;
    }
  }

  std::printf("\npaper-shape checks:\n");
  bench::print_check("never-migrate performs zero migrations", migrations_strict == 0);
  bench::print_check("migrating tracks the moving population (lower delay than frozen)",
                     delay_loose < delay_strict);
  bench::print_check("threshold 0 migrates at least as often as threshold infinity",
                     migrations_loose >= migrations_strict);
  return 0;
}
