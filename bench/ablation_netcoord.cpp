// Ablation A1 — How much does the coordinate system matter?
//
// The paper builds on RNP and cites its accuracy edge over Vivaldi as an
// enabler. This harness quantifies that edge on the same topology, both as
// raw prediction error and as the end effect on placement quality for the
// coordinate-consuming strategies (online clustering and offline k-means).
// The optimal oracle — which reads true RTTs — is printed as the
// coordinate-free reference.
#include <cstdio>

#include "bench_util.h"
#include "core/evaluation.h"

using namespace geored;

int main() {
  bench::print_header(
      "Ablation: coordinate system vs placement quality",
      "226-node topology, 20 data centers, k=3, 30 runs; RNP vs Vivaldi vs GNP");

  std::printf("%-10s %14s %14s %14s %14s %14s\n", "coords", "abs-err p50", "rel-err p50",
              "online", "offline", "optimal");

  double rnp_err = 0.0, vivaldi_err = 0.0;
  double rnp_online = 0.0, vivaldi_online = 0.0;
  for (const auto system :
       {core::CoordSystem::kRnp, core::CoordSystem::kVivaldi, core::CoordSystem::kGnp}) {
    core::Environment env(topo::PlanetLabModelConfig{}, /*topology_seed=*/42, system,
                          coord::GossipConfig{});
    const auto quality = env.embedding_quality();
    core::ExperimentConfig config;
    config.num_datacenters = 20;
    config.k = 3;
    config.runs = 30;
    const auto result = run_experiment(env, config);
    std::printf("%-10s %11.2fms %13.1f%% %12.2fms %12.2fms %12.2fms\n",
                core::coord_system_name(system).c_str(), quality.absolute_error_ms.p50,
                100.0 * quality.relative_error.p50,
                result.mean_of(place::StrategyKind::kOnlineClustering),
                result.mean_of(place::StrategyKind::kOfflineKMeans),
                result.mean_of(place::StrategyKind::kOptimal));
    if (system == core::CoordSystem::kRnp) {
      rnp_err = quality.absolute_error_ms.p50;
      rnp_online = result.mean_of(place::StrategyKind::kOnlineClustering);
    }
    if (system == core::CoordSystem::kVivaldi) {
      vivaldi_err = quality.absolute_error_ms.p50;
      vivaldi_online = result.mean_of(place::StrategyKind::kOnlineClustering);
    }
  }

  std::printf("\npaper-shape checks:\n");
  bench::print_check("RNP predicts RTTs more accurately than Vivaldi",
                     rnp_err < vivaldi_err);
  bench::print_check("RNP median error under 10 ms (paper's reported regime)",
                     rnp_err < 10.0);
  bench::print_check("better coordinates give equal-or-better online placement",
                     rnp_online <= vivaldi_online * 1.02);
  return 0;
}
