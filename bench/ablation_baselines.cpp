// Ablation A3 — Related-work baselines.
//
// The paper's related-work section discusses the greedy placement of Qiu
// et al. (near-optimal but expensive) and the HotZone cell heuristic of
// Szymaniak et al. (fast but "may not perform adequately" because it
// ignores every client outside the most crowded cells). This harness runs
// both beside the paper's four strategies at the paper's 20-DC / k=3
// operating point and across k.
#include <cstdio>

#include "bench_util.h"
#include "core/evaluation.h"

using namespace geored;

int main() {
  bench::print_header(
      "Ablation: all six placement strategies",
      "226-node topology, 20 data centers, 30 runs per point, RNP coordinates");

  core::Environment env(topo::PlanetLabModelConfig{}, /*topology_seed=*/42,
                        core::CoordSystem::kRnp, coord::GossipConfig{});
  const std::vector<place::StrategyKind> series{
      place::StrategyKind::kRandom,   place::StrategyKind::kHotZone,
      place::StrategyKind::kGreedy,   place::StrategyKind::kOfflineKMeans,
      place::StrategyKind::kOnlineClustering, place::StrategyKind::kLocalSearch,
      place::StrategyKind::kOptimal};
  bench::print_row_header("num replicas (k)", {"random", "hotzone", "greedy", "offline",
                                               "online", "online+ls", "optimal"});

  double hotzone_at_3 = 0.0, online_at_3 = 0.0, greedy_at_3 = 0.0, optimal_at_3 = 0.0,
         random_at_3 = 0.0, local_search_at_3 = 0.0;
  for (std::size_t k = 1; k <= 5; ++k) {
    core::ExperimentConfig config;
    config.num_datacenters = 20;
    config.k = k;
    config.runs = 30;
    config.strategies = series;
    const auto result = run_experiment(env, config);
    std::vector<double> row;
    for (const auto kind : series) row.push_back(result.mean_of(kind));
    bench::print_row(static_cast<double>(k), row);
    if (k == 3) {
      random_at_3 = result.mean_of(place::StrategyKind::kRandom);
      hotzone_at_3 = result.mean_of(place::StrategyKind::kHotZone);
      greedy_at_3 = result.mean_of(place::StrategyKind::kGreedy);
      online_at_3 = result.mean_of(place::StrategyKind::kOnlineClustering);
      local_search_at_3 = result.mean_of(place::StrategyKind::kLocalSearch);
      optimal_at_3 = result.mean_of(place::StrategyKind::kOptimal);
    }
  }

  std::printf("\npaper-shape checks:\n");
  bench::print_check("greedy (full knowledge) is close to optimal at k=3",
                     greedy_at_3 < 1.25 * optimal_at_3);
  bench::print_check("hotzone beats random but trails online clustering",
                     hotzone_at_3 < random_at_3 && online_at_3 < 1.1 * hotzone_at_3);
  bench::print_check("online clustering is competitive with greedy despite O(km) state",
                     online_at_3 < 1.3 * greedy_at_3);
  bench::print_check("local-search refinement closes most of the gap to optimal",
                     local_search_at_3 <= online_at_3 &&
                         local_search_at_3 < 1.1 * optimal_at_3);
  return 0;
}
