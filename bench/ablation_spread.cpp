// Ablation A7 — availability vs latency (paper future work: "taking into
// account ... data availability").
//
// Latency-optimal placements co-locate replicas inside the dominant client
// region; a regional outage then takes out several replicas at once. The
// spread decorator forces pairwise replica distance >= S. This harness
// sweeps S and reports, for each setting:
//   * normal-operation average delay (the price paid), and
//   * worst-case single-replica-loss delay: the average delay when the most
//     load-bearing replica is down and its clients fail over (the benefit).
#include <cstdio>

#include <limits>
#include <memory>

#include "bench_util.h"
#include "common/random.h"
#include "core/evaluation.h"
#include "placement/evaluate.h"
#include "placement/spread.h"
#include "placement/strategy.h"

using namespace geored;

namespace {

/// A regional outage takes down a replica *and every other replica within
/// kBlastRadius of it* (co-located copies share the failure domain). Returns
/// the worst case over all outage epicentres: whether the object survives at
/// all, and the failover delay when it does.
struct OutageImpact {
  bool total_loss = false;   ///< some regional outage killed every replica
  double failover_delay = 0.0;  ///< worst surviving-case average delay
};

constexpr double kBlastRadiusMs = 40.0;

OutageImpact worst_regional_outage(const topo::Topology& topology,
                                   const place::Placement& placement,
                                   const std::vector<place::ClientRecord>& clients) {
  OutageImpact impact;
  for (std::size_t epicentre = 0; epicentre < placement.size(); ++epicentre) {
    place::Placement survivors;
    for (std::size_t i = 0; i < placement.size(); ++i) {
      if (topology.rtt_ms(placement[i], placement[epicentre]) >= kBlastRadiusMs &&
          i != epicentre) {
        survivors.push_back(placement[i]);
      }
    }
    if (survivors.empty()) {
      impact.total_loss = true;
      continue;
    }
    impact.failover_delay = std::max(
        impact.failover_delay, place::true_average_delay(topology, survivors, clients));
  }
  return impact;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: replica spread constraint — normal vs failure delay",
      "226-node topology, 20 DCs, k=3, 30 runs; online clustering +spread(S);\n"
      "clients concentrated in North America, so the unconstrained optimum\n"
      "co-locates all replicas there");

  core::Environment env(topo::PlanetLabModelConfig{}, /*topology_seed=*/42,
                        core::CoordSystem::kRnp, coord::GossipConfig{});
  const auto& topology = env.topology();
  const auto& coords = env.coordinates();
  // Region mask: only North-American nodes act as clients.
  std::vector<bool> is_na_node(topology.size(), false);
  for (topo::NodeId i = 0; i < topology.size(); ++i) {
    is_na_node[i] = topology.region_names()[topology.node(i).region].starts_with("na-");
  }

  std::printf("%-16s %14s %18s %20s %16s\n", "min spread (ms)", "normal delay",
              "total-loss runs", "worst failover delay", "actual spread");

  double normal_at_0 = 0.0, normal_wide = 0.0;
  std::size_t losses_at_0 = 0, losses_wide = 0;
  for (const double spread_ms : {0.0, 30.0, 80.0, 150.0}) {
    OnlineStats normal_delay, loss_delay, achieved_spread;
    std::size_t total_losses = 0;
    for (std::uint64_t run = 0; run < 30; ++run) {
      // Reuse the evaluation harness's protocol by hand so we can decorate
      // the strategy: candidates, clients and summaries come from one run.
      Rng rng(1000 + run);
      const auto candidate_idx = rng.sample_without_replacement(topology.size(), 20);
      std::vector<bool> is_candidate(topology.size(), false);
      place::PlacementInput input;
      input.k = 3;
      input.seed = 1000 + run;
      input.topology = &topology;
      for (const auto idx : candidate_idx) {
        is_candidate[idx] = true;
        input.candidates.push_back({static_cast<topo::NodeId>(idx), coords[idx].position,
                                    std::numeric_limits<double>::infinity()});
      }
      cluster::SummarizerConfig summarizer_config;
      summarizer_config.max_clusters = 12;
      cluster::MicroClusterSummarizer summarizer(summarizer_config);
      for (std::size_t i = 0; i < topology.size(); ++i) {
        if (is_candidate[i] || !is_na_node[i]) continue;
        place::ClientRecord record;
        record.client = static_cast<topo::NodeId>(i);
        record.coords = coords[i].position;
        record.access_count = 1 + rng.below(100);
        input.clients.push_back(record);
        for (std::uint64_t a = 0; a < input.clients.back().access_count; ++a) {
          summarizer.add(record.coords, 1.0);
        }
      }
      input.summaries = summarizer.clusters();

      place::SpreadConfig spread_config;
      spread_config.min_spread_ms = spread_ms;
      const place::SpreadConstrainedPlacement strategy(place::make_strategy("online"),
                                                       spread_config);
      const auto placement = strategy.place(input);
      normal_delay.add(place::true_average_delay(topology, placement, input.clients));
      const auto impact = worst_regional_outage(topology, placement, input.clients);
      if (impact.total_loss) {
        ++total_losses;
      } else {
        loss_delay.add(impact.failover_delay);
      }
      achieved_spread.add(place::min_pairwise_spread(placement, input.candidates));
    }
    std::printf("%-16.0f %12.2fms %15zu/30 %18.2fms %14.1fms\n", spread_ms,
                normal_delay.mean(), total_losses,
                loss_delay.count() > 0 ? loss_delay.mean() : 0.0, achieved_spread.mean());
    if (spread_ms == 0.0) {
      normal_at_0 = normal_delay.mean();
      losses_at_0 = total_losses;
    }
    if (spread_ms == 150.0) {
      normal_wide = normal_delay.mean();
      losses_wide = total_losses;
    }
  }

  std::printf("\npaper-shape checks:\n");
  bench::print_check("spreading replicas costs normal-case latency",
                     normal_wide > normal_at_0);
  bench::print_check(
      "unconstrained placement can lose every replica to one regional outage",
      losses_at_0 > 0);
  bench::print_check("spread >= blast radius eliminates total-loss outages",
                     losses_wide == 0);
  return 0;
}
