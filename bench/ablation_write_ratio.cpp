// Ablation A11 — read/write ratio vs placement (Sivasubramanian et al.'s
// axis, which the paper explicitly leaves out by assuming read-dominance).
//
// Sweeps the write fraction f and compares:
//   * the paper's read-only online clustering placement, and
//   * the write-aware refinement of it,
// both scored with the ground-truth combined objective
// (1-f)*closest + f*farthest replica per access. Expect: identical at
// f ~ 0 (validating the paper's assumption for read-heavy objects), with a
// widening gap and shrinking replica spread as writes take over.
#include <cstdio>

#include <memory>

#include "bench_util.h"
#include "common/random.h"
#include "core/evaluation.h"
#include "placement/spread.h"
#include "placement/strategy.h"
#include "placement/write_aware.h"

using namespace geored;

int main() {
  bench::print_header(
      "Ablation: write fraction vs placement — read-only vs write-aware",
      "226-node topology, 20 DCs, k=3, 30 runs; objective (1-f)*nearest + f*farthest");

  core::Environment env(topo::PlanetLabModelConfig{}, /*topology_seed=*/42,
                        core::CoordSystem::kRnp, coord::GossipConfig{});
  const auto& topology = env.topology();
  const auto& coords = env.coordinates();

  std::printf("%-10s %16s %16s %12s %18s\n", "write f", "read-only plc", "write-aware plc",
              "gap", "aware spread (ms)");

  double gap_at_0 = 0.0, gap_at_60 = 0.0;
  double spread_at_0 = 0.0, spread_at_60 = 0.0;
  for (const double f : {0.0, 0.1, 0.3, 0.6, 0.9}) {
    OnlineStats read_only_delay, aware_delay, aware_spread;
    for (std::uint64_t run = 0; run < 30; ++run) {
      Rng rng(2000 + run);
      const auto candidate_idx = rng.sample_without_replacement(topology.size(), 20);
      std::vector<bool> is_candidate(topology.size(), false);
      place::PlacementInput input;
      input.k = 3;
      input.seed = 2000 + run;
      input.topology = &topology;
      for (const auto idx : candidate_idx) {
        is_candidate[idx] = true;
        input.candidates.push_back({static_cast<topo::NodeId>(idx), coords[idx].position,
                                    std::numeric_limits<double>::infinity()});
      }
      cluster::SummarizerConfig summarizer_config;
      summarizer_config.max_clusters = 12;
      cluster::MicroClusterSummarizer summarizer(summarizer_config);
      double total_accesses = 0.0;
      for (std::size_t i = 0; i < topology.size(); ++i) {
        if (is_candidate[i]) continue;
        place::ClientRecord record;
        record.client = static_cast<topo::NodeId>(i);
        record.coords = coords[i].position;
        record.access_count = 1 + rng.below(100);
        total_accesses += static_cast<double>(record.access_count);
        input.clients.push_back(record);
        for (std::uint64_t a = 0; a < input.clients.back().access_count; ++a) {
          summarizer.add(record.coords, 1.0);
        }
      }
      input.summaries = summarizer.clusters();

      const auto read_only = place::make_strategy("online")->place(input);
      place::WriteAwareConfig aware_config;
      aware_config.write_fraction = f;
      const auto aware = place::WriteAwarePlacement(aware_config).place(input);

      read_only_delay.add(
          place::true_write_aware_delay(topology, read_only, input.clients, f) /
          total_accesses);
      aware_delay.add(place::true_write_aware_delay(topology, aware, input.clients, f) /
                      total_accesses);
      aware_spread.add(place::min_pairwise_spread(aware, input.candidates));
    }
    const double gap = read_only_delay.mean() - aware_delay.mean();
    std::printf("%-10.2f %14.2fms %14.2fms %10.2fms %16.1f\n", f, read_only_delay.mean(),
                aware_delay.mean(), gap, aware_spread.mean());
    if (f == 0.0) {
      gap_at_0 = gap;
      spread_at_0 = aware_spread.mean();
    }
    if (f == 0.6) {
      gap_at_60 = gap;
      spread_at_60 = aware_spread.mean();
    }
  }

  std::printf("\npaper-shape checks:\n");
  bench::print_check(
      "at f=0 write-awareness adds (almost) nothing — the paper's read-heavy "
      "assumption is safe",
      gap_at_0 < 2.0);
  bench::print_check("ignoring a 60% write ratio costs real latency", gap_at_60 > 5.0);
  bench::print_check("write-heavy placements huddle (smaller replica spread)",
                     spread_at_60 < 0.7 * spread_at_0);
  return 0;
}
