// Ablation A13 — coordinate-space dimensionality.
//
// The paper inherits RNP's coordinate space without discussing its
// dimension. Vivaldi's authors report that a handful of dimensions capture
// internet latencies and more add little; this harness sweeps the dimension
// for both Vivaldi and RNP, reporting prediction error and the end effect
// on online-clustering placement quality.
#include <cstdio>

#include <limits>

#include "bench_util.h"
#include "common/random.h"
#include "core/evaluation.h"
#include "placement/evaluate.h"

using namespace geored;

int main() {
  bench::print_header(
      "Ablation: coordinate dimensionality",
      "226-node topology, 20 DCs, k=3, 30 runs; RNP embeddings of 2..8 dimensions");

  std::printf("%-6s %16s %16s %14s %14s\n", "dims", "rnp abs p50", "rnp rel p50", "online",
              "optimal");

  double err_2d = 0.0, err_5d = 0.0, err_8d = 0.0;
  double online_2d = 0.0, online_5d = 0.0;
  for (const std::size_t dims : {2ul, 3ul, 5ul, 8ul}) {
    // Environment with a dimension-adjusted RNP embedding.
    topo::PlanetLabModelConfig topo_config;
    const auto topology = topo::generate_planetlab_like(topo_config, 42);
    coord::RnpConfig rnp_config;
    rnp_config.vivaldi.dimensions = dims;
    const auto coords =
        coord::run_rnp(topology, rnp_config, coord::GossipConfig{}, 7);
    const auto quality = coord::evaluate_embedding(topology, coords);

    // Reuse the experiment protocol by hand with these coordinates.
    OnlineStats online_delay, optimal_delay;
    for (std::uint64_t run = 0; run < 30; ++run) {
      Rng rng(1000 + run);
      const auto candidate_idx = rng.sample_without_replacement(topology.size(), 20);
      std::vector<bool> is_candidate(topology.size(), false);
      place::PlacementInput input;
      input.k = 3;
      input.seed = 1000 + run;
      input.topology = &topology;
      for (const auto idx : candidate_idx) {
        is_candidate[idx] = true;
        input.candidates.push_back({static_cast<topo::NodeId>(idx), coords[idx].position,
                                    std::numeric_limits<double>::infinity()});
      }
      // One summarizer stands in for the k=3 replicas' summaries, so it
      // gets their combined budget (3 * m = 12 micro-clusters).
      cluster::SummarizerConfig summarizer_config;
      summarizer_config.max_clusters = 12;
      cluster::MicroClusterSummarizer summarizer(summarizer_config);
      for (std::size_t i = 0; i < topology.size(); ++i) {
        if (is_candidate[i]) continue;
        place::ClientRecord record;
        record.client = static_cast<topo::NodeId>(i);
        record.coords = coords[i].position;
        record.access_count = 1 + rng.below(100);
        input.clients.push_back(record);
        for (std::uint64_t a = 0; a < input.clients.back().access_count; ++a) {
          summarizer.add(record.coords, 1.0);
        }
      }
      input.summaries = summarizer.clusters();
      online_delay.add(place::true_average_delay(
          topology,
          place::make_strategy(place::StrategyKind::kOnlineClustering)->place(input),
          input.clients));
      optimal_delay.add(place::true_average_delay(
          topology, place::make_strategy(place::StrategyKind::kOptimal)->place(input),
          input.clients));
    }
    std::printf("%-6zu %13.2fms %15.1f%% %12.2fms %12.2fms\n", dims,
                quality.absolute_error_ms.p50, 100.0 * quality.relative_error.p50,
                online_delay.mean(), optimal_delay.mean());
    if (dims == 2) {
      err_2d = quality.absolute_error_ms.p50;
      online_2d = online_delay.mean();
    }
    if (dims == 5) {
      err_5d = quality.absolute_error_ms.p50;
      online_5d = online_delay.mean();
    }
    if (dims == 8) err_8d = quality.absolute_error_ms.p50;
  }

  std::printf("\npaper-shape checks:\n");
  bench::print_check("going from 2 to 5 dimensions improves prediction", err_5d < err_2d);
  bench::print_check("beyond 5 dimensions the gain is marginal (<20%)",
                     err_8d > 0.8 * err_5d);
  bench::print_check("better embeddings do not hurt placement", online_5d <= online_2d * 1.05);
  return 0;
}
