// Ablation A10 — flat vs hierarchical summary collection.
//
// With one object and k = 3 replicas, flat collection (Algorithm 1 as
// written) is trivially cheap. With a store managing many object groups,
// the coordinator receives #groups * k summaries per epoch; the two-level
// aggregation tree bounds its inbound bandwidth at the price of one extra
// network hop. This harness sweeps the number of summary sources and
// reports root bandwidth, total bandwidth and collection latency for both.
//
// This harness deliberately drives the aggregation substrate (plan/run)
// below the pipeline's HierarchicalCollector, which wraps exactly this path:
// the collector interface reports only root-inbound bytes, while the
// ablation also needs total bytes, latency and aggregator counts.
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/aggregation.h"
#include "netcoord/embedding.h"
#include "topology/planetlab_model.h"

using namespace geored;

int main() {
  bench::print_header(
      "Ablation: flat vs hierarchical summary collection",
      "226-node topology, 30 DCs; sources hold 4 micro-clusters each (m=4)");

  const auto topology = topo::generate_planetlab_like(topo::PlanetLabModelConfig{}, 42);
  const auto coords =
      coord::run_rnp(topology, coord::RnpConfig{}, coord::GossipConfig{}, 7);
  constexpr std::size_t kDcs = 30;
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < kDcs; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i), coords[i].position,
                          std::numeric_limits<double>::infinity()});
  }

  std::printf("%-10s %6s %14s %14s %12s %12s %12s %12s\n", "sources", "aggs",
              "flat->root B", "tree->root B", "flat tot B", "tree tot B", "flat ms",
              "tree ms");

  std::uint64_t flat_root_256 = 0, tree_root_256 = 0;
  for (const std::size_t source_count : {16ul, 64ul, 256ul, 1024ul}) {
    // Synthesize sources: each sits at a data center and summarizes a
    // population near it (4 micro-clusters of 25 accesses).
    Rng rng(source_count);
    std::vector<core::SummarySource> sources;
    for (std::size_t s = 0; s < source_count; ++s) {
      core::SummarySource source;
      source.node = static_cast<topo::NodeId>(s % kDcs);
      const Point& home = coords[source.node].position;
      for (int c = 0; c < 4; ++c) {
        cluster::MicroCluster micro;
        for (int p = 0; p < 25; ++p) {
          Point jittered = home;
          for (std::size_t d = 0; d < jittered.dim(); ++d) {
            jittered[d] += rng.normal(0.0, 8.0);
          }
          micro.absorb(jittered, 1.0);
        }
        source.clusters.push_back(micro);
      }
      sources.push_back(std::move(source));
    }

    core::AggregationConfig config;
    config.max_clusters_per_aggregator = 16;
    const auto plan = core::plan_aggregation(candidates, sources, config, 7);

    sim::Simulator tree_sim;
    sim::Network tree_net(tree_sim, topology);
    const auto tree =
        core::run_aggregation(tree_sim, tree_net, plan, sources, /*root=*/0, config);

    sim::Simulator flat_sim;
    sim::Network flat_net(flat_sim, topology);
    const auto flat = core::run_flat_collection(flat_sim, flat_net, sources, /*root=*/0);

    std::printf("%-10zu %6zu %14llu %14llu %12llu %12llu %12.1f %12.1f\n", source_count,
                plan.aggregators.size(),
                static_cast<unsigned long long>(flat.bytes_into_root),
                static_cast<unsigned long long>(tree.bytes_into_root),
                static_cast<unsigned long long>(flat.bytes_total),
                static_cast<unsigned long long>(tree.bytes_total), flat.completion_ms,
                tree.completion_ms);
    if (source_count == 256) {
      flat_root_256 = flat.bytes_into_root;
      tree_root_256 = tree.bytes_into_root;
    }
  }

  std::printf("\npaper-shape checks:\n");
  bench::print_check("tree cuts root inbound bandwidth by >=3x at 256 sources",
                     tree_root_256 * 3 <= flat_root_256);
  return 0;
}
