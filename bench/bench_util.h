// Shared table-printing helpers for the figure-reproduction harnesses.
//
// Every harness prints (a) the experimental setup, (b) one row per x-axis
// value with one column per series — the same rows/series as the paper's
// figure — and (c) the paper-shape checks that EXPERIMENTS.md records.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace geored::bench {

inline void print_header(const std::string& title, const std::string& setup) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", setup.c_str());
  std::printf("==============================================================\n");
}

inline void print_row_header(const std::string& x_label,
                             const std::vector<std::string>& series) {
  std::printf("%-22s", x_label.c_str());
  for (const auto& name : series) std::printf("%18s", name.c_str());
  std::printf("\n");
}

inline void print_row(double x, const std::vector<double>& values) {
  std::printf("%-22.0f", x);
  for (const double v : values) std::printf("%18.2f", v);
  std::printf("\n");
}

inline void print_check(const std::string& description, bool passed) {
  std::printf("  [%s] %s\n", passed ? "PASS" : "FAIL", description.c_str());
}

}  // namespace geored::bench
