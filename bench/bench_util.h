// Shared table-printing helpers for the figure-reproduction harnesses.
//
// The implementations moved to src/scenario/table.h so the scenario engine
// and the legacy benches format results through one code path; this header
// keeps the historical geored::bench names as aliases.
#pragma once

#include "scenario/table.h"

namespace geored::bench {

using scenario::print_check;
using scenario::print_header;
using scenario::print_row;
using scenario::print_row_header;

}  // namespace geored::bench
