// Ablation A5 — quorum configuration (the paper's future-work direction).
//
// §II-A: "accessing only one data replica leads to fast data acquisition at
// the expense of consistency. We plan to incorporate ... quorum-based
// approaches in which users need to access multiple data replicas to ensure
// stronger consistency." This harness quantifies that trade-off on the
// replicated KV store: read/write latency and the stale-read rate across
// (n, r, w) settings, with replica placement driven by the paper's online
// clustering throughout.
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "netcoord/embedding.h"
#include "store/kvstore.h"
#include "topology/planetlab_model.h"

using namespace geored;

namespace {

struct QuorumOutcome {
  double get_mean_ms = 0.0;
  double put_mean_ms = 0.0;
  double stale_fraction = 0.0;
};

QuorumOutcome run_quorum(const topo::Topology& topology,
                         const std::vector<coord::NetworkCoordinate>& coords,
                         const std::vector<place::CandidateInfo>& candidates,
                         const std::vector<topo::NodeId>& clients, store::QuorumConfig quorum,
                         bool read_repair = false) {
  sim::Simulator simulator;
  sim::Network network(simulator, topology);
  store::StoreConfig config;
  config.quorum = quorum;
  config.groups = 8;
  config.read_repair = read_repair;
  config.manager.summarizer.max_clusters = 4;
  store::ReplicatedKvStore kv(simulator, network, candidates, config, 11);

  Rng rng(5);
  constexpr std::size_t kObjects = 200;
  // Seed all objects.
  for (store::ObjectId id = 0; id < kObjects; ++id) {
    const auto client = clients[rng.below(clients.size())];
    kv.put(client, coords[client].position, id, std::string(128, 'x'),
           [](const store::PutResult&) {});
  }
  simulator.run();
  kv.run_placement_epochs();
  simulator.run();

  // Mixed workload with read-after-write pairs to expose staleness:
  // a writer updates an object, and the moment the write commits a reader
  // elsewhere reads it.
  for (int op = 0; op < 4000; ++op) {
    const auto writer = clients[rng.below(clients.size())];
    const auto reader = clients[rng.below(clients.size())];
    const auto id = static_cast<store::ObjectId>(rng.below(kObjects));
    auto& kv_ref = kv;
    const Point reader_coords = coords[reader].position;
    kv.put(writer, coords[writer].position, id, std::string(128, 'y'),
           [&kv_ref, reader, reader_coords, id](const store::PutResult&) {
             kv_ref.get(reader, reader_coords, id, [](const store::GetResult&) {});
           });
    if (op % 40 == 0) simulator.run();  // drain in waves for interleaving
  }
  simulator.run();

  QuorumOutcome outcome;
  outcome.get_mean_ms = kv.get_latency().mean();
  outcome.put_mean_ms = kv.put_latency().mean();
  outcome.stale_fraction =
      static_cast<double>(kv.stale_reads()) / static_cast<double>(kv.reads());
  return outcome;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: quorum configuration on the replicated KV store",
      "120-node topology, 15 DCs, 8 groups, online-clustering placement, "
      "read-after-write workload");

  topo::PlanetLabModelConfig topo_config;
  topo_config.node_count = 120;
  const auto topology = topo::generate_planetlab_like(topo_config, 7);
  const auto coords =
      coord::run_rnp(topology, coord::RnpConfig{}, coord::GossipConfig{}, 7);
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < 15; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i), coords[i].position,
                          std::numeric_limits<double>::infinity()});
  }
  std::vector<topo::NodeId> clients;
  for (std::size_t i = 15; i < topology.size(); ++i) {
    clients.push_back(static_cast<topo::NodeId>(i));
  }

  struct Setting {
    store::QuorumConfig quorum;
    const char* label;
  };
  const std::vector<Setting> settings{
      {{3, 1, 1}, "n=3 r=1 w=1 (fast)"},   {{3, 1, 3}, "n=3 r=1 w=3 (write-all)"},
      {{3, 2, 2}, "n=3 r=2 w=2 (strict)"}, {{3, 3, 1}, "n=3 r=3 w=1 (read-all)"},
      {{5, 2, 4}, "n=5 r=2 w=4 (wide)"},
  };

  std::printf("%-26s %12s %12s %14s %12s\n", "quorum", "get mean", "put mean",
              "stale reads", "r+w>n");
  QuorumOutcome fast{}, strict{}, read_all{}, write_all{};
  for (const auto& setting : settings) {
    const auto outcome = run_quorum(topology, coords, candidates, clients, setting.quorum);
    std::printf("%-26s %10.1fms %10.1fms %13.2f%% %12s\n", setting.label,
                outcome.get_mean_ms, outcome.put_mean_ms, 100.0 * outcome.stale_fraction,
                setting.quorum.r + setting.quorum.w > setting.quorum.n ? "yes" : "no");
    if (setting.quorum.r == 1 && setting.quorum.w == 1) fast = outcome;
    if (setting.quorum.r == 2 && setting.quorum.w == 2) strict = outcome;
    if (setting.quorum.r == 3) read_all = outcome;
    if (setting.quorum.w == 3) write_all = outcome;
  }

  std::printf("\npaper-shape checks:\n");
  bench::print_check("weak quorum (1,1) exhibits stale reads", fast.stale_fraction > 0.0);
  bench::print_check("intersecting quorums eliminate stale reads",
                     strict.stale_fraction == 0.0 && read_all.stale_fraction == 0.0 &&
                         write_all.stale_fraction == 0.0);
  bench::print_check("reads get slower as r grows",
                     fast.get_mean_ms < strict.get_mean_ms &&
                         strict.get_mean_ms < read_all.get_mean_ms);
  bench::print_check("writes get slower as w grows",
                     fast.put_mean_ms < strict.put_mean_ms &&
                         strict.put_mean_ms < write_all.put_mean_ms);
  bench::print_check("single-replica reads are fastest (the paper's §II-A premise)",
                     fast.get_mean_ms <= strict.get_mean_ms);

  // Read repair: with reliable message delivery the write's own async
  // replication closes the staleness window almost as fast as a repair
  // would, so the measured effect here is bounded above by "no worse";
  // repair earns its keep when replication is lossy or a replica was down
  // during the write (see KvStore.ReadRepairConvergesStaleReplicas for the
  // mechanism test).
  const auto repaired =
      run_quorum(topology, coords, candidates, clients, {3, 2, 1}, /*read_repair=*/true);
  const auto unrepaired =
      run_quorum(topology, coords, candidates, clients, {3, 2, 1}, /*read_repair=*/false);
  std::printf("\nread repair at n=3 r=2 w=1: stale %.2f%% -> %.2f%% (reliable network: "
              "repair is a safety net, not a win here)\n",
              100.0 * unrepaired.stale_fraction, 100.0 * repaired.stale_fraction);
  bench::print_check("read repair never makes staleness worse",
                     repaired.stale_fraction <= unrepaired.stale_fraction);
  return 0;
}
