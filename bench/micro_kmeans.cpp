// A4 — Microbenchmarks of the algorithmic primitives.
//
// google-benchmark timings for the pieces whose costs the paper's Table II
// reasons about: the summarizer's absorb path, (weighted) k-means,
// micro-cluster serialization, and the exhaustive optimal search.
#include <benchmark/benchmark.h>

#include "cluster/kmeans.h"
#include "cluster/summarizer.h"
#include "common/serialize.h"
#include "placement/evaluate.h"
#include "placement/strategy.h"
#include "topology/planetlab_model.h"

using namespace geored;

namespace {

constexpr std::size_t kDim = 5;

Point random_point(Rng& rng, double span = 200.0) {
  Point p(kDim);
  for (std::size_t d = 0; d < kDim; ++d) p[d] = rng.uniform(-span, span);
  return p;
}

void BM_MicroClusterAbsorb(benchmark::State& state) {
  cluster::MicroCluster cluster(Point(kDim), 1.0);
  Rng rng(1);
  const Point p = random_point(rng);
  for (auto _ : state) {
    cluster.absorb(p, 1.0);
    benchmark::DoNotOptimize(cluster);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MicroClusterAbsorb);

void BM_MicroClusterSerialize(benchmark::State& state) {
  cluster::MicroCluster cluster(Point(kDim), 1.0);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) cluster.absorb(random_point(rng), 1.0);
  for (auto _ : state) {
    ByteWriter writer;
    cluster.serialize(writer);
    benchmark::DoNotOptimize(writer);
  }
}
BENCHMARK(BM_MicroClusterSerialize);

void BM_SummarizerAddStream(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  cluster::SummarizerConfig config;
  config.max_clusters = m;
  cluster::MicroClusterSummarizer summarizer(config);
  Rng rng(3);
  for (auto _ : state) {
    summarizer.add(random_point(rng), 1.0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SummarizerAddStream)->Arg(4)->Arg(11)->Arg(100);

void BM_WeightedKMeans(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<cluster::WeightedPoint> points;
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({random_point(rng), rng.uniform(1.0, 100.0)});
  }
  cluster::KMeansConfig config;
  config.k = 3;
  for (auto _ : state) {
    Rng kmeans_rng(42);
    benchmark::DoNotOptimize(cluster::weighted_kmeans(points, config, kmeans_rng));
  }
}
BENCHMARK(BM_WeightedKMeans)->Arg(12)->Arg(300)->Arg(3000);

/// End-to-end cost of each placement strategy on the paper's operating
/// point (20 DCs, ~200 clients, k=3).
void BM_PlacementStrategy(benchmark::State& state) {
  topo::PlanetLabModelConfig topo_config;
  static const auto topology = topo::generate_planetlab_like(topo_config, 42);
  Rng rng(5);

  place::PlacementInput input;
  input.k = 3;
  input.seed = 42;
  input.topology = &topology;
  const auto dc_idx = rng.sample_without_replacement(topology.size(), 20);
  std::vector<bool> is_dc(topology.size(), false);
  for (const auto idx : dc_idx) {
    is_dc[idx] = true;
    input.candidates.push_back({static_cast<topo::NodeId>(idx), random_point(rng),
                                std::numeric_limits<double>::infinity()});
  }
  cluster::SummarizerConfig summarizer_config;
  summarizer_config.max_clusters = 4;
  cluster::MicroClusterSummarizer summarizer(summarizer_config);
  for (std::size_t i = 0; i < topology.size(); ++i) {
    if (is_dc[i]) continue;
    place::ClientRecord record;
    record.client = static_cast<topo::NodeId>(i);
    record.coords = random_point(rng);
    record.access_count = 1 + rng.below(100);
    input.clients.push_back(record);
    summarizer.add(input.clients.back().coords, 1.0);
  }
  input.summaries = summarizer.clusters();

  const auto strategy = place::make_strategy(static_cast<place::StrategyKind>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy->place(input));
  }
  state.SetLabel(strategy->name());
}
BENCHMARK(BM_PlacementStrategy)
    ->Arg(static_cast<int>(place::StrategyKind::kRandom))
    ->Arg(static_cast<int>(place::StrategyKind::kOfflineKMeans))
    ->Arg(static_cast<int>(place::StrategyKind::kOnlineClustering))
    ->Arg(static_cast<int>(place::StrategyKind::kOptimal))
    ->Arg(static_cast<int>(place::StrategyKind::kGreedy))
    ->Arg(static_cast<int>(place::StrategyKind::kHotZone));

/// Exhaustive search cost growth in k — why "optimal" is impractical.
void BM_OptimalSearchByK(benchmark::State& state) {
  topo::PlanetLabModelConfig topo_config;
  topo_config.node_count = 120;
  static const auto topology = topo::generate_planetlab_like(topo_config, 43);
  Rng rng(6);
  place::PlacementInput input;
  input.k = static_cast<std::size_t>(state.range(0));
  input.seed = 42;
  input.topology = &topology;
  const auto dc_idx = rng.sample_without_replacement(topology.size(), 20);
  std::vector<bool> is_dc(topology.size(), false);
  for (const auto idx : dc_idx) {
    is_dc[idx] = true;
    input.candidates.push_back({static_cast<topo::NodeId>(idx), random_point(rng),
                                std::numeric_limits<double>::infinity()});
  }
  for (std::size_t i = 0; i < topology.size(); ++i) {
    if (is_dc[i]) continue;
    place::ClientRecord record;
    record.client = static_cast<topo::NodeId>(i);
    record.coords = random_point(rng);
    record.access_count = 10;
    input.clients.push_back(record);
  }
  const auto strategy = place::make_strategy(place::StrategyKind::kOptimal);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy->place(input));
  }
}
BENCHMARK(BM_OptimalSearchByK)->DenseRange(1, 6);

}  // namespace

BENCHMARK_MAIN();
