// Figure 3 — Impact of the number of micro-clusters per replica.
//
// Paper setup (§IV-D): 20 data centers, k swept 1..7, one series per
// micro-cluster budget m in {1, 2, 4, 7, 11}; only the online clustering
// strategy is involved.
//
// Expected shape: more micro-clusters summarize the user population at
// finer granularity and reduce delay; the curve is nearly saturated by
// m ~= 4 (the paper: "average access delay was nearly minimized when 4
// micro-clusters are maintained").
#include <cstdio>

#include "bench_util.h"
#include "core/evaluation.h"
#include "placement/strategy.h"

using namespace geored;

int main() {
  bench::print_header(
      "Figure 3: average access delay vs number of micro-clusters",
      "226-node PlanetLab-like topology, 20 data centers, online clustering, 30 runs");

  core::Environment env(topo::PlanetLabModelConfig{}, /*topology_seed=*/42,
                        core::CoordSystem::kRnp, coord::GossipConfig{});
  const std::vector<std::size_t> micro_budgets{1, 2, 4, 7, 11};
  std::vector<std::string> series_names;
  for (const auto m : micro_budgets) {
    series_names.push_back(std::to_string(m) + " micro");
  }
  bench::print_row_header("num replicas (k)", series_names);

  // delay[m-index][k-index]
  std::vector<std::vector<double>> delay(micro_budgets.size());
  for (std::size_t k = 1; k <= 7; ++k) {
    std::vector<double> row;
    for (std::size_t mi = 0; mi < micro_budgets.size(); ++mi) {
      core::ExperimentConfig config;
      config.num_datacenters = 20;
      config.k = k;
      config.micro_clusters = micro_budgets[mi];
      config.runs = 30;
      config.strategies = {place::strategy_kind("online")};
      const auto result = run_experiment(env, config);
      const double mean = result.mean_of(place::strategy_kind("online"));
      row.push_back(mean);
      delay[mi].push_back(mean);
    }
    bench::print_row(static_cast<double>(k), row);
  }

  // Aggregate each series over k for the shape checks.
  std::vector<double> mean_by_m(micro_budgets.size(), 0.0);
  for (std::size_t mi = 0; mi < micro_budgets.size(); ++mi) {
    for (const double d : delay[mi]) mean_by_m[mi] += d;
    mean_by_m[mi] /= static_cast<double>(delay[mi].size());
  }
  std::printf("\nmean over k per budget:");
  for (std::size_t mi = 0; mi < micro_budgets.size(); ++mi) {
    std::printf("  m=%zu: %.2f", micro_budgets[mi], mean_by_m[mi]);
  }
  std::printf("\n\npaper-shape checks:\n");
  bench::print_check("m=1 is visibly worse than m=4", mean_by_m[0] > 1.05 * mean_by_m[2]);
  bench::print_check("m=4 nearly saturates (within 5% of m=11)",
                     mean_by_m[2] < 1.05 * mean_by_m[4]);
  bench::print_check("quality never degrades much beyond m=4",
                     mean_by_m[3] < 1.05 * mean_by_m[2] && mean_by_m[4] < 1.05 * mean_by_m[2]);
  return 0;
}
