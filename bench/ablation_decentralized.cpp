// Ablation A12 — centralized vs decentralized placement epochs.
//
// Algorithm 1 collects summaries at one node. The decentralized variant
// exchanges them all-to-all among the k replica holders and lets every
// holder compute the identical proposal locally — no central server, no
// single point of failure, at the cost of k*(k-1) instead of k summary
// messages. This harness verifies agreement and quantifies the traffic and
// latency difference across k.
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "common/serialize.h"
#include "core/decentralized.h"
#include "netcoord/embedding.h"
#include "placement/strategy.h"
#include "topology/planetlab_model.h"

using namespace geored;

int main() {
  bench::print_header(
      "Ablation: centralized vs decentralized placement epochs",
      "226-node topology; k replica holders summarizing m=4 micro-clusters each");

  const auto topology = topo::generate_planetlab_like(topo::PlanetLabModelConfig{}, 42);
  const auto coords =
      coord::run_rnp(topology, coord::RnpConfig{}, coord::GossipConfig{}, 7);
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < 20; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i), coords[i].position,
                          std::numeric_limits<double>::infinity()});
  }

  std::printf("%-6s %14s %16s %18s %18s %12s\n", "k", "central B", "decentral B",
              "central ms", "decentral ms", "agreement");

  bool all_agree = true;
  for (std::size_t k = 2; k <= 7; ++k) {
    Rng rng(k);
    std::map<topo::NodeId, std::vector<cluster::MicroCluster>> summaries;
    for (std::size_t r = 0; r < k; ++r) {
      std::vector<cluster::MicroCluster> clusters;
      for (int c = 0; c < 4; ++c) {
        cluster::MicroCluster micro;
        for (int p = 0; p < 25; ++p) {
          Point point = coords[r].position;
          for (std::size_t d = 0; d < point.dim(); ++d) point[d] += rng.normal(0.0, 10.0);
          micro.absorb(point, 1.0);
        }
        clusters.push_back(micro);
      }
      summaries.emplace(static_cast<topo::NodeId>(r), std::move(clusters));
    }

    // Central reference: every holder ships to holder 0 (the coordinator).
    std::uint64_t central_bytes = 0;
    double central_ms = 0.0;
    for (const auto& [node, clusters] : summaries) {
      ByteWriter writer;
      for (const auto& micro : clusters) micro.serialize(writer);
      if (node != 0) {
        central_bytes += writer.size();
        central_ms = std::max(central_ms, topology.rtt_ms(node, 0) / 2.0);
      }
    }

    sim::Simulator simulator;
    sim::Network network(simulator, topology);
    const auto strategy = place::make_strategy("online");
    const auto result = core::run_decentralized_epoch(simulator, network, candidates,
                                                      summaries, 3, /*epoch_seed=*/k,
                                                      *strategy);
    all_agree &= result.agreement;
    std::printf("%-6zu %14llu %16llu %16.1f %18.1f %12s\n", k,
                static_cast<unsigned long long>(central_bytes),
                static_cast<unsigned long long>(result.summary_bytes), central_ms,
                result.completion_ms, result.agreement ? "yes" : "NO");
  }

  std::printf("\npaper-shape checks:\n");
  bench::print_check("all replicas agree on the proposal without coordination", all_agree);
  std::printf(
      "  note: decentralized costs (k-1)x the summary bytes — hundreds of KB at\n"
      "  most — and removes the central collection point entirely.\n");
  return 0;
}
