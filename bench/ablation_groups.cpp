// Ablation A6 — object grouping granularity ("virtual objects", §II-A).
//
// The paper treats a group of objects as one virtual object whose accesses
// are summarized together. Granularity is a real trade-off: one group
// forces a single compromise placement for everything, while many groups
// let regionally-popular content live near its readers — at the price of
// more summaries shipped and more migration traffic. This harness sweeps
// the group count on a workload where every object has a home region whose
// clients issue 80% of its accesses.
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "netcoord/embedding.h"
#include "store/kvstore.h"
#include "topology/planetlab_model.h"

using namespace geored;

int main() {
  bench::print_header(
      "Ablation: object-group granularity vs read latency and overhead",
      "120-node topology, 15 DCs, n=3 r=1 w=2, 600 objects with regional affinity");

  topo::PlanetLabModelConfig topo_config;
  topo_config.node_count = 120;
  const auto topology = topo::generate_planetlab_like(topo_config, 7);
  const auto coords =
      coord::run_rnp(topology, coord::RnpConfig{}, coord::GossipConfig{}, 7);
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < 15; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i), coords[i].position,
                          std::numeric_limits<double>::infinity()});
  }
  // Clients bucketed by macro-region: Americas / Europe / Asia-Pacific.
  std::vector<std::vector<topo::NodeId>> regions(3);
  for (topo::NodeId i = 15; i < topology.size(); ++i) {
    const auto& name = topology.region_names()[topology.node(i).region];
    std::size_t bucket = 2;
    if (name.starts_with("na-") || name == "south-america") bucket = 0;
    if (name.starts_with("eu-")) bucket = 1;
    regions[bucket].push_back(i);
  }
  std::printf("clients per macro-region: %zu / %zu / %zu\n\n", regions[0].size(),
              regions[1].size(), regions[2].size());

  constexpr std::size_t kObjects = 600;  // object i's home region = i % 3

  std::printf("%-10s %14s %16s %18s %16s\n", "groups", "get mean", "summary bytes",
              "migration bytes", "stale reads");
  double delay_one_group = 0.0, delay_many_groups = 0.0;
  std::uint64_t summary_one = 0, summary_many = 0;
  for (const std::size_t groups : {1ul, 3ul, 12ul, 48ul}) {
    sim::Simulator simulator;
    sim::Network network(simulator, topology);
    store::StoreConfig config;
    config.quorum = {3, 1, 2};
    config.groups = groups;
    config.manager.summarizer.max_clusters = 4;
    config.manager.migration.min_relative_gain = 0.05;
    store::ReplicatedKvStore kv(simulator, network, candidates, config, 3);

    Rng rng(17);
    // Seed all objects from their home region.
    for (store::ObjectId id = 0; id < kObjects; ++id) {
      const auto& home = regions[id % 3];
      const auto client = home[rng.below(home.size())];
      kv.put(client, coords[client].position, id, std::string(256, 'x'),
             [](const store::PutResult&) {});
    }
    simulator.run();

    std::uint64_t summary_bytes = 0;
    for (int epoch = 0; epoch < 3; ++epoch) {
      for (int op = 0; op < 8000; ++op) {
        // 80% of an object's accesses come from its home region.
        const auto id = static_cast<store::ObjectId>(rng.below(kObjects));
        const std::size_t bucket = rng.bernoulli(0.8)
                                       ? id % 3
                                       : static_cast<std::size_t>(rng.below(3));
        const auto& pool = regions[bucket];
        const auto client = pool[rng.below(pool.size())];
        kv.get(client, coords[client].position, id, [](const store::GetResult&) {});
      }
      simulator.run();
      for (const auto& report : kv.run_placement_epochs()) {
        summary_bytes += report.summary_bytes;
      }
      simulator.run();
    }

    const auto& stats = network.stats();
    const auto migration_bytes =
        stats.bytes[static_cast<std::size_t>(sim::TrafficClass::kMigration)];
    std::printf("%-10zu %12.1fms %16llu %18llu %16llu\n", groups, kv.get_latency().mean(),
                static_cast<unsigned long long>(summary_bytes),
                static_cast<unsigned long long>(migration_bytes),
                static_cast<unsigned long long>(kv.stale_reads()));
    if (groups == 1) {
      delay_one_group = kv.get_latency().mean();
      summary_one = summary_bytes;
    }
    if (groups == 48) {
      delay_many_groups = kv.get_latency().mean();
      summary_many = summary_bytes;
    }
  }

  std::printf("\npaper-shape checks:\n");
  bench::print_check("finer groups exploit regional affinity (lower read latency)",
                     delay_many_groups < delay_one_group);
  bench::print_check("finer groups ship proportionally more summaries",
                     summary_many > 10 * summary_one);
  return 0;
}
