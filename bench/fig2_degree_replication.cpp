// Figure 2 — Impact of the degree of replication.
//
// Paper setup (§IV-C): 20 candidate data centers, k swept from 1 to 7,
// 30 runs per point. Series: random, offline k-means, online clustering,
// optimal.
//
// Expected shape: delay falls with k for everyone, with diminishing returns
// after ~4 replicas; online ~= offline, slightly above optimal, and at
// least ~35% below random.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/evaluation.h"
#include "placement/strategy.h"

using namespace geored;

int main() {
  bench::print_header(
      "Figure 2: average access delay vs degree of replication",
      "226-node PlanetLab-like topology, 20 data centers, 30 runs per point");

  core::Environment env(topo::PlanetLabModelConfig{}, /*topology_seed=*/42,
                        core::CoordSystem::kRnp, coord::GossipConfig{});
  std::vector<place::StrategyKind> series;
  for (const char* name : {"random", "offline_kmeans", "online", "optimal"}) {
    series.push_back(place::strategy_kind(name));
  }
  bench::print_row_header("num replicas (k)",
                          {"random", "offline k-means", "online", "optimal"});

  std::vector<double> online_by_k, optimal_by_k, random_by_k;
  for (std::size_t k = 1; k <= 7; ++k) {
    core::ExperimentConfig config;
    config.num_datacenters = 20;
    config.k = k;
    config.runs = 30;
    config.strategies = series;
    const auto result = run_experiment(env, config);
    std::vector<double> row;
    for (const auto kind : series) row.push_back(result.mean_of(kind));
    bench::print_row(static_cast<double>(k), row);
    random_by_k.push_back(result.mean_of(place::strategy_kind("random")));
    online_by_k.push_back(result.mean_of(place::strategy_kind("online")));
    optimal_by_k.push_back(result.mean_of(place::strategy_kind("optimal")));
  }

  std::printf("\npaper-shape checks:\n");
  bench::print_check("optimal delay decreases monotonically in k",
                     std::is_sorted(optimal_by_k.rbegin(), optimal_by_k.rend()));
  bench::print_check("online delay decreases from k=1 to k=7",
                     online_by_k.back() < online_by_k.front());
  const double early_gain = optimal_by_k[0] - optimal_by_k[3];   // k 1 -> 4
  const double late_gain = optimal_by_k[3] - optimal_by_k[6];    // k 4 -> 7
  bench::print_check("diminishing returns after ~4 replicas", late_gain < early_gain / 2.0);
  bool online_beats_random = true;
  for (std::size_t i = 1; i < online_by_k.size(); ++i) {  // paper states k>=2 margin
    online_beats_random &= online_by_k[i] < 0.75 * random_by_k[i];
  }
  bench::print_check("online >=25% below random for every k >= 2", online_beats_random);
  bool online_near_optimal = true;
  for (std::size_t i = 0; i < online_by_k.size(); ++i) {
    online_near_optimal &= online_by_k[i] < 1.5 * optimal_by_k[i];
  }
  bench::print_check("online within 1.5x of optimal for every k", online_near_optimal);
  return 0;
}
