// Table II — Overhead comparison between online and offline clustering.
//
//                    online                offline
//   bandwidth        O(km)                 O(n)
//   computation      O((km)^k log(km))     O(n^k log n)
//
// Measured concretely here:
//   * bandwidth  — bytes that must reach the central server per placement:
//     k*m serialized micro-clusters (online) vs n serialized client
//     coordinate records (offline), for growing access counts n;
//   * computation — google-benchmark timings of the macro-clustering step
//     on k*m pseudo-points (online) vs k-means over all n client
//     coordinates (offline), plus the per-access summarizer cost that the
//     online approach pays at the replicas.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cluster/kmeans.h"
#include "cluster/summarizer.h"
#include "common/random.h"
#include "common/serialize.h"

using namespace geored;

namespace {

constexpr std::size_t kDim = 5;
constexpr std::size_t kReplicas = 3;  // the paper's k

Point random_point(Rng& rng) {
  Point p(kDim);
  for (std::size_t d = 0; d < kDim; ++d) p[d] = rng.uniform(-200.0, 200.0);
  return p;
}

/// Micro-clusters a replica would hold after summarizing `accesses` hits.
std::vector<cluster::MicroCluster> build_summary(std::size_t m, std::size_t accesses,
                                                 std::uint64_t seed) {
  cluster::SummarizerConfig config;
  config.max_clusters = m;
  cluster::MicroClusterSummarizer summarizer(config);
  Rng rng(seed);
  for (std::size_t i = 0; i < accesses; ++i) summarizer.add(random_point(rng), 1.0);
  return summarizer.clusters();
}

void BM_OnlineMacroClustering(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  // k replicas, each shipping m micro-clusters built from 10k accesses.
  std::vector<cluster::WeightedPoint> pseudo_points;
  for (std::size_t r = 0; r < kReplicas; ++r) {
    for (const auto& micro : build_summary(m, 10000, r + 1)) {
      pseudo_points.push_back({micro.centroid(), static_cast<double>(micro.count())});
    }
  }
  cluster::KMeansConfig config;
  config.k = kReplicas;
  for (auto _ : state) {
    Rng rng(42);
    benchmark::DoNotOptimize(cluster::weighted_kmeans(pseudo_points, config, rng));
  }
  state.SetLabel("k*m = " + std::to_string(pseudo_points.size()) + " pseudo-points");
}
BENCHMARK(BM_OnlineMacroClustering)->Arg(4)->Arg(25)->Arg(100);

void BM_OfflineKMeans(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<cluster::WeightedPoint> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) points.push_back({random_point(rng), 1.0});
  cluster::KMeansConfig config;
  config.k = kReplicas;
  for (auto _ : state) {
    Rng kmeans_rng(42);
    benchmark::DoNotOptimize(cluster::weighted_kmeans(points, config, kmeans_rng));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OfflineKMeans)->Arg(1000)->Arg(10000)->Arg(100000)->Complexity();

void BM_SummarizerPerAccess(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  cluster::SummarizerConfig config;
  config.max_clusters = m;
  cluster::MicroClusterSummarizer summarizer(config);
  Rng rng(13);
  for (auto _ : state) {
    summarizer.add(random_point(rng), 1.0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SummarizerPerAccess)->Arg(4)->Arg(25)->Arg(100);

void print_bandwidth_table() {
  std::printf("\n==============================================================\n");
  std::printf("Table II (measured): bytes shipped to the central server per placement\n");
  std::printf("k = %zu replicas; online ships k*m micro-clusters, offline ships\n",
              kReplicas);
  std::printf("one coordinate record per access (%zu-dim coordinates)\n", kDim);
  std::printf("==============================================================\n");
  std::printf("%-14s %-10s %18s %18s %10s\n", "accesses (n)", "m", "online bytes",
              "offline bytes", "ratio");

  // Offline record: client id (4) + access count (8) + coords (4 + dim*8).
  const std::size_t offline_record = 4 + 8 + 4 + kDim * 8;
  bool online_always_smaller_beyond_1k = true;
  for (const std::size_t n : {1000ul, 10000ul, 100000ul, 1000000ul}) {
    for (const std::size_t m : {4ul, 100ul}) {
      ByteWriter writer;
      for (std::size_t r = 0; r < kReplicas; ++r) {
        for (const auto& micro : build_summary(m, n / kReplicas, r + 17)) {
          micro.serialize(writer);
        }
      }
      const std::size_t online_bytes = writer.size();
      const std::size_t offline_bytes = n * offline_record;
      std::printf("%-14zu %-10zu %18zu %18zu %9.1fx\n", n, m, online_bytes, offline_bytes,
                  static_cast<double>(offline_bytes) / static_cast<double>(online_bytes));
      if (n >= 1000 && online_bytes >= offline_bytes) {
        online_always_smaller_beyond_1k = false;
      }
    }
  }
  std::printf("\npaper-shape checks:\n");
  std::printf("  [%s] online bandwidth independent of n; offline grows linearly\n",
              online_always_smaller_beyond_1k ? "PASS" : "FAIL");
  ByteWriter one;
  build_summary(100, 10000, 3).front().serialize(one);
  std::printf("  [%s] each micro-cluster under 1 KB on the wire (paper: <1KB): %zu B\n",
              one.size() < 1024 ? "PASS" : "FAIL", one.size());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_bandwidth_table();
  return 0;
}
