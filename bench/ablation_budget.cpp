// Ablation A9 — replica budget allocation across object groups.
//
// The paper adjusts one object's degree of replication with its demand
// (§III-C). At fleet scale the question becomes: given B replicas total
// across G groups of very different popularity, who gets how many? This
// harness builds per-group delay-vs-degree curves from the placement
// machinery (three regional populations, Zipf-skewed demand) and compares
// the demand-aware marginal-gain allocator against the uniform split.
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/degree_allocator.h"
#include "core/evaluation.h"
#include "placement/evaluate.h"

using namespace geored;

namespace {

/// Per-access delay of the optimal placement for one client population, at
/// every degree in [1, max_degree].
std::vector<double> per_access_delay_curve(const core::Environment& env,
                                           const std::vector<place::ClientRecord>& clients,
                                           const std::vector<place::CandidateInfo>& candidates,
                                           std::size_t max_degree) {
  std::vector<double> curve;
  for (std::size_t k = 1; k <= max_degree; ++k) {
    place::PlacementInput input;
    input.candidates = candidates;
    input.k = k;
    input.clients = clients;
    input.topology = &env.topology();
    input.seed = 99;
    const auto placement = place::make_strategy("optimal")->place(input);
    curve.push_back(place::true_average_delay(env.topology(), placement, clients));
  }
  return curve;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: replica budget across object groups — uniform vs demand-aware",
      "226-node topology, 20 DCs, 18 groups over 3 regional populations, Zipf demand");

  core::Environment env(topo::PlanetLabModelConfig{}, /*topology_seed=*/42,
                        core::CoordSystem::kRnp, coord::GossipConfig{});
  const auto& topology = env.topology();
  const auto& coords = env.coordinates();

  // Candidates: 20 seeded-random nodes; populations: the three macro-regions.
  Rng rng(1);
  const auto candidate_idx = rng.sample_without_replacement(topology.size(), 20);
  std::vector<bool> is_candidate(topology.size(), false);
  std::vector<place::CandidateInfo> candidates;
  for (const auto idx : candidate_idx) {
    is_candidate[idx] = true;
    candidates.push_back({static_cast<topo::NodeId>(idx), coords[idx].position,
                          std::numeric_limits<double>::infinity()});
  }
  std::vector<std::vector<place::ClientRecord>> populations(3);
  for (topo::NodeId i = 0; i < topology.size(); ++i) {
    if (is_candidate[i]) continue;
    const auto& name = topology.region_names()[topology.node(i).region];
    std::size_t bucket = 2;
    if (name.starts_with("na-") || name == "south-america") bucket = 0;
    if (name.starts_with("eu-")) bucket = 1;
    place::ClientRecord record;
    record.client = static_cast<topo::NodeId>(i);
    record.coords = coords[i].position;
    record.access_count = 10;
    populations[bucket].push_back(record);
  }

  constexpr std::size_t kMaxDegree = 7;
  std::vector<std::vector<double>> per_access(3);
  for (std::size_t p = 0; p < 3; ++p) {
    per_access[p] = per_access_delay_curve(env, populations[p], candidates, kMaxDegree);
  }

  // 18 groups: population p = g % 3, demand Zipf over g.
  constexpr std::size_t kGroups = 18;
  std::vector<core::GroupDemand> demands;
  std::vector<double> group_demand(kGroups);
  for (std::size_t g = 0; g < kGroups; ++g) {
    group_demand[g] = 10000.0 / static_cast<double>(g + 1);
    core::GroupDemand demand;
    for (std::size_t k = 1; k <= kMaxDegree; ++k) {
      demand.delay_by_degree.push_back(group_demand[g] * per_access[g % 3][k - 1]);
    }
    demands.push_back(std::move(demand));
  }

  std::printf("%-10s %22s %22s %14s\n", "budget B", "uniform total delay",
              "demand-aware delay", "improvement");
  double improvement_at_54 = 0.0;
  for (const std::size_t budget : {18ul, 36ul, 54ul, 90ul, 126ul}) {
    core::AllocatorConfig config;
    config.min_degree = 1;
    config.max_degree = kMaxDegree;
    config.budget = budget;
    const auto uniform = core::allocate_uniform(demands, config);
    const auto aware = core::allocate_replica_budget(demands, config);
    const double improvement =
        1.0 - aware.estimated_total_delay / uniform.estimated_total_delay;
    std::printf("%-10zu %20.0f %22.0f %13.1f%%\n", budget, uniform.estimated_total_delay,
                aware.estimated_total_delay, 100.0 * improvement);
    if (budget == 54) improvement_at_54 = improvement;
  }

  // Show the allocation shape at B = 54 (3 per group uniform).
  core::AllocatorConfig config;
  config.min_degree = 1;
  config.max_degree = kMaxDegree;
  config.budget = 54;
  const auto aware = core::allocate_replica_budget(demands, config);
  std::printf("\ndemand-aware degrees at B=54 (groups ordered hot -> cold):\n  ");
  for (const auto degree : aware.degree_per_group) std::printf("%zu ", degree);
  std::printf("\n\npaper-shape checks:\n");
  bench::print_check("demand-aware allocation beats the uniform split at B=54",
                     improvement_at_54 > 0.0);
  bench::print_check("hot groups get more replicas than cold groups",
                     aware.degree_per_group.front() > aware.degree_per_group.back());
  return 0;
}
