// Figure 1 — Impact of the number of available data centers.
//
// Paper setup (§IV-B): 226 nodes, degree of replication k = 3, the number
// of candidate data centers swept; results averaged over 30 runs with
// different candidate sets. Series: random, offline k-means, online
// clustering (the paper's technique), optimal.
//
// Expected shape: all informed strategies improve as more candidate
// locations become available, random does not; online ~= offline ~= optimal.
#include <cstdio>

#include "bench_util.h"
#include "core/evaluation.h"
#include "placement/strategy.h"

using namespace geored;

int main() {
  bench::print_header(
      "Figure 1: average access delay vs number of data centers",
      "226-node PlanetLab-like topology, k=3, 30 runs per point, RNP coordinates");

  core::Environment env(topo::PlanetLabModelConfig{}, /*topology_seed=*/42,
                        core::CoordSystem::kRnp, coord::GossipConfig{});
  const auto quality = env.embedding_quality();
  std::printf("embedding: median abs err %.1f ms, median rel err %.1f%%\n\n",
              quality.absolute_error_ms.p50, 100.0 * quality.relative_error.p50);

  std::vector<place::StrategyKind> series;
  for (const char* name : {"random", "offline_kmeans", "online", "optimal"}) {
    series.push_back(place::strategy_kind(name));
  }
  bench::print_row_header("num data centers",
                          {"random", "offline k-means", "online", "optimal"});

  double first_online = 0.0, last_online = 0.0;
  double first_optimal = 0.0, last_optimal = 0.0;
  double random_at_20 = 0.0, online_at_20 = 0.0, optimal_at_20 = 0.0;
  const std::vector<std::size_t> dc_counts{5, 8, 11, 14, 17, 20, 23, 26, 30};
  for (const std::size_t dcs : dc_counts) {
    core::ExperimentConfig config;
    config.num_datacenters = dcs;
    config.k = 3;
    config.runs = 30;
    config.strategies = series;
    const auto result = run_experiment(env, config);
    std::vector<double> row;
    for (const auto kind : series) row.push_back(result.mean_of(kind));
    bench::print_row(static_cast<double>(dcs), row);

    const double online = result.mean_of(place::strategy_kind("online"));
    const double optimal = result.mean_of(place::strategy_kind("optimal"));
    if (dcs == dc_counts.front()) {
      first_online = online;
      first_optimal = optimal;
    }
    if (dcs == dc_counts.back()) {
      last_online = online;
      last_optimal = optimal;
    }
    if (dcs == 20) {
      random_at_20 = result.mean_of(place::strategy_kind("random"));
      online_at_20 = online;
      optimal_at_20 = optimal;
    }
  }

  std::printf("\npaper-shape checks:\n");
  bench::print_check("online clustering improves with more data centers",
                     last_online < first_online);
  bench::print_check("optimal improves with more data centers", last_optimal < first_optimal);
  bench::print_check("online clustering near optimal at 20 DCs (within 35%)",
                     online_at_20 < 1.35 * optimal_at_20);
  bench::print_check("online clustering >=25% below random at 20 DCs",
                     online_at_20 < 0.75 * random_at_20);
  return 0;
}
