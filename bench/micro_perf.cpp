// P1 — Hot-path performance harness: scalar reference vs optimized paths.
//
// Times each optimized kernel against the scalar implementation it replaced
// (PointSet kernels vs Point loops, parallel evaluators vs the *_scalar
// references, warm-start k-means vs a plain Point-based Lloyd, incremental
// local search vs full re-evaluation, and the full epoch pipeline against
// its unbatched form) at four scales up to a million clients, checks that
// the outputs agree, and writes machine-readable results to a JSON file
// (BENCH_perf.json by default; see docs/performance.md).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/kmeans.h"
#include "cluster/summarizer.h"
#include "cluster/summarizer_scalar.h"
#include "common/flags.h"
#include "common/point_set.h"
#include "common/point_set_simd.h"
#include "common/random.h"
#include "common/serialize.h"
#include "common/thread_pool.h"
#include "core/replication_manager.h"
#include "placement/evaluate.h"
#include "placement/greedy.h"
#include "placement/local_search.h"
#include "serve/request_router.h"
#include "serve/router_scalar.h"
#include "topology/topology.h"

using namespace geored;
using place::CandidateInfo;
using place::ClientRecord;
using place::Placement;

namespace {

constexpr std::size_t kDim = 5;

struct Scale {
  std::string name;
  std::size_t n_clients;
  std::size_t n_nodes;
  std::size_t n_candidates;
  std::size_t k;
  std::size_t inner;  // timed-loop repetitions for the fast cases
};

const std::vector<Scale> kScales = {
    {"small", 2000, 400, 30, 5, 20},
    {"medium", 20000, 1000, 60, 8, 4},
    {"large", 100000, 2000, 100, 10, 1},
    // The million-client row the ROADMAP's "Million-client epochs" item asks
    // for. Reference paths that are super-linear in clients (the Point-loop
    // Lloyd, the O(k^2 · candidates · clients) naive local search) are gated
    // to the smaller scales; everything else runs here too.
    {"xlarge", 1000000, 2000, 150, 12, 1},
};

struct World {
  topo::Topology topology;
  std::vector<CandidateInfo> candidates;
  std::vector<ClientRecord> clients;
  std::vector<Point> client_points;  // scalar-kernel inputs
  std::vector<Point> node_points;
  Placement placement;

  explicit World(const Scale& scale)
      : topology(topo::Topology(std::vector<topo::NodeInfo>(0), SymMatrix(0), {})) {
    Rng rng(0xbe5c0000 + scale.n_clients);
    node_points.reserve(scale.n_nodes);
    for (std::size_t i = 0; i < scale.n_nodes; ++i) {
      Point p(kDim);
      for (std::size_t d = 0; d < kDim; ++d) p[d] = rng.uniform(-300.0, 300.0);
      node_points.push_back(p);
    }
    SymMatrix rtt(scale.n_nodes);
    for (std::size_t i = 0; i < scale.n_nodes; ++i) {
      for (std::size_t j = i + 1; j < scale.n_nodes; ++j) {
        rtt.set(i, j, std::max(0.01, node_points[i].distance_to(node_points[j]) +
                                         rng.uniform(-5.0, 5.0)));
      }
    }
    topology =
        topo::Topology(std::vector<topo::NodeInfo>(scale.n_nodes), std::move(rtt), {});
    for (std::size_t c = 0; c < scale.n_candidates; ++c) {
      candidates.push_back({static_cast<topo::NodeId>(c), node_points[c], 0.0});
    }
    clients.reserve(scale.n_clients);
    client_points.reserve(scale.n_clients);
    for (std::size_t u = 0; u < scale.n_clients; ++u) {
      ClientRecord record;
      record.client = static_cast<topo::NodeId>(rng.below(scale.n_nodes));
      record.coords = node_points[record.client];
      record.access_count = 1 + rng.below(50);
      record.data_weight = static_cast<double>(record.access_count);
      clients.push_back(record);
      client_points.push_back(record.coords);
    }
    for (std::size_t r = 0; r < scale.k; ++r) {
      placement.push_back(candidates[(r * 7) % scale.n_candidates].node);
    }
  }
};

struct CaseResult {
  std::string name;
  std::string scale;
  std::size_t n_clients = 0;
  std::size_t k = 0;
  double ms_baseline = 0.0;
  double ms_optimized = 0.0;
  bool match = false;
  double baseline_value = 0.0;
  double optimized_value = 0.0;
  /// Per-stage attribution of both arms (epoch_end_to_end only): the
  /// EpochStageTrace of the best-timed repeat, with the record-path ingest
  /// folded into ingest_flush_ms so staged and per-access ingestion are
  /// attributed to the same stage.
  bool has_stages = false;
  core::EpochStageTrace stages_baseline;
  core::EpochStageTrace stages_optimized;

  double speedup() const {
    return ms_optimized > 0.0 ? ms_baseline / ms_optimized : 0.0;
  }
};

double g_sink = 0.0;  // defeats dead-code elimination of timed loops

template <typename Fn>
double time_ms(std::size_t repeats, const Fn& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

bool values_match(double a, double b) {
  return std::abs(a - b) <= 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
}

/// The pre-optimization Lloyd, reproduced verbatim in structure: per-point
/// nearest scans over std::vector<Point>, an update step that allocates a
/// temporary Point per input point, and a final objective + assignment
/// recomputation — the baseline cluster::weighted_kmeans_from replaced.
std::size_t nearest_centroid_scalar(const Point& p, const std::vector<Point>& centroids) {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const double d = p.distance_squared_to(centroids[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

double scalar_lloyd_objective(const std::vector<cluster::WeightedPoint>& points,
                              std::vector<Point> centroids,
                              const cluster::KMeansConfig& config) {
  const std::size_t dim = points.front().position.dim();
  std::vector<std::size_t> assignment(points.size(), 0);
  double prev_objective = std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      assignment[i] = nearest_centroid_scalar(points[i].position, centroids);
    }
    std::vector<Point> sums(centroids.size(), Point(dim));
    std::vector<double> cluster_weight(centroids.size(), 0.0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      sums[assignment[i]] += points[i].position * points[i].weight;
      cluster_weight[assignment[i]] += points[i].weight;
    }
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      if (cluster_weight[c] > 0.0) centroids[c] = sums[c] / cluster_weight[c];
    }
    const double obj = cluster::kmeans_objective(points, centroids);
    if (std::isfinite(prev_objective) &&
        prev_objective - obj <= config.tolerance * std::max(1.0, prev_objective)) {
      break;
    }
    prev_objective = obj;
  }
  const double objective = cluster::kmeans_objective(points, centroids);
  for (std::size_t i = 0; i < points.size(); ++i) {
    assignment[i] = nearest_centroid_scalar(points[i].position, centroids);
  }
  g_sink += static_cast<double>(assignment.back());
  return objective;
}

/// Full-re-evaluation local search (the pre-optimization algorithm) on a
/// greedy seed; reference for the incremental path.
Placement naive_local_search(const place::PlacementInput& input,
                             const place::LocalSearchConfig& config) {
  Placement placement = place::GreedyPlacement().place(input);
  const std::size_t n_cand = input.candidates.size();
  const std::size_t n_client = input.clients.size();
  if (input.clients.empty() || placement.size() == n_cand) return placement;
  std::vector<std::vector<double>> latency(n_cand, std::vector<double>(n_client));
  for (std::size_t c = 0; c < n_cand; ++c) {
    for (std::size_t u = 0; u < n_client; ++u) {
      latency[c][u] = input.candidates[c].coords.distance_to(input.clients[u].coords);
    }
  }
  std::vector<std::size_t> chosen;
  std::vector<bool> in_placement(n_cand, false);
  for (const auto node : placement) {
    for (std::size_t c = 0; c < n_cand; ++c) {
      if (input.candidates[c].node == node) {
        chosen.push_back(c);
        in_placement[c] = true;
        break;
      }
    }
  }
  const auto total_delay = [&](const std::vector<std::size_t>& members) {
    double total = 0.0;
    for (std::size_t u = 0; u < n_client; ++u) {
      double best = std::numeric_limits<double>::infinity();
      for (const std::size_t c : members) best = std::min(best, latency[c][u]);
      total += best * static_cast<double>(input.clients[u].access_count);
    }
    return total;
  };
  double current = total_delay(chosen);
  for (std::size_t round = 0; round < config.max_rounds; ++round) {
    double best_delta = 0.0;
    std::size_t best_slot = 0, best_replacement = 0;
    bool improved = false;
    for (std::size_t slot = 0; slot < chosen.size(); ++slot) {
      auto trial = chosen;
      for (std::size_t c = 0; c < n_cand; ++c) {
        if (in_placement[c]) continue;
        trial[slot] = c;
        const double delta = current - total_delay(trial);
        if (delta > best_delta + config.tolerance * std::max(1.0, current)) {
          best_delta = delta;
          best_slot = slot;
          best_replacement = c;
          improved = true;
        }
      }
    }
    if (!improved) break;
    in_placement[chosen[best_slot]] = false;
    in_placement[best_replacement] = true;
    chosen[best_slot] = best_replacement;
    current -= best_delta;
  }
  Placement result;
  for (const std::size_t c : chosen) result.push_back(input.candidates[c].node);
  return result;
}

std::vector<CaseResult> run_scale(const Scale& scale, std::size_t repeats,
                                  const std::string& only) {
  std::printf("== scale %s: %zu clients, %zu nodes, %zu candidates, k=%zu ==\n",
              scale.name.c_str(), scale.n_clients, scale.n_nodes, scale.n_candidates,
              scale.k);
  const World world(scale);
  std::vector<CaseResult> results;
  const auto add_case = [&](const std::string& name, double ms_base, double ms_opt,
                            double value_base, double value_opt, bool match) {
    CaseResult r;
    r.name = name;
    r.scale = scale.name;
    r.n_clients = scale.n_clients;
    r.k = scale.k;
    r.ms_baseline = ms_base;
    r.ms_optimized = ms_opt;
    r.baseline_value = value_base;
    r.optimized_value = value_opt;
    r.match = match;
    results.push_back(r);
    std::printf("  %-28s %10.3f ms -> %10.3f ms   %6.2fx   [%s]\n", name.c_str(),
                ms_base, ms_opt, r.speedup(), match ? "match" : "MISMATCH");
  };
  // --only filter: a case runs when its name contains the filter substring
  // (empty filter = everything). Skipped cases are skipped entirely — no
  // baseline timing, no entry in the output.
  const auto want = [&](const char* name) {
    return only.empty() || std::string(name).find(only) != std::string::npos;
  };

  // --- Evaluators ----------------------------------------------------------
  double scalar_value = 0.0, fast_value = 0.0;
  double ms_base = 0.0, ms_opt = 0.0;
  if (want("true_total_delay")) {
    ms_base = time_ms(repeats, [&] {
      for (std::size_t i = 0; i < scale.inner; ++i) {
        scalar_value = place::true_total_delay_scalar(world.topology, world.placement,
                                                      world.clients);
        g_sink += scalar_value;
      }
    });
    ms_opt = time_ms(repeats, [&] {
      for (std::size_t i = 0; i < scale.inner; ++i) {
        fast_value = place::true_total_delay(world.topology, world.placement, world.clients);
        g_sink += fast_value;
      }
    });
    add_case("true_total_delay", ms_base, ms_opt, scalar_value, fast_value,
             values_match(scalar_value, fast_value));
  }

  if (want("estimated_total_delay")) {
    ms_base = time_ms(repeats, [&] {
      for (std::size_t i = 0; i < scale.inner; ++i) {
        scalar_value = place::estimated_total_delay_scalar(world.placement, world.candidates,
                                                           world.clients);
        g_sink += scalar_value;
      }
    });
    ms_opt = time_ms(repeats, [&] {
      for (std::size_t i = 0; i < scale.inner; ++i) {
        fast_value =
            place::estimated_total_delay(world.placement, world.candidates, world.clients);
        g_sink += fast_value;
      }
    });
    add_case("estimated_total_delay", ms_base, ms_opt, scalar_value, fast_value,
             values_match(scalar_value, fast_value));
  }

  // --- PointSet kernels vs Point loops -------------------------------------
  const PointSet client_set = PointSet::from_points(world.client_points);
  double scalar_acc = 0.0, fast_acc = 0.0;
  if (want("kernel_nearest_of")) {
    ms_base = time_ms(repeats, [&] {
      scalar_acc = 0.0;
      for (const auto& candidate : world.candidates) {
        std::size_t best = 0;
        double best_d = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < world.client_points.size(); ++i) {
          const double d = world.client_points[i].distance_squared_to(candidate.coords);
          if (d < best_d) {
            best_d = d;
            best = i;
          }
        }
        scalar_acc += static_cast<double>(best) + best_d;
      }
      g_sink += scalar_acc;
    });
    ms_opt = time_ms(repeats, [&] {
      fast_acc = 0.0;
      for (const auto& candidate : world.candidates) {
        double best_d = 0.0;
        const std::size_t best = client_set.nearest_of(candidate.coords, &best_d);
        fast_acc += static_cast<double>(best) + best_d;
      }
      g_sink += fast_acc;
    });
    add_case("kernel_nearest_of", ms_base, ms_opt, scalar_acc, fast_acc,
             scalar_acc == fast_acc);
  }

  if (want("kernel_distance_row")) {
    std::vector<double> row(world.client_points.size());
    ms_base = time_ms(repeats, [&] {
      scalar_acc = 0.0;
      for (const auto& candidate : world.candidates) {
        for (std::size_t i = 0; i < world.client_points.size(); ++i) {
          row[i] = world.client_points[i].distance_to(candidate.coords);
        }
        scalar_acc += row[world.client_points.size() / 2];
      }
      g_sink += scalar_acc;
    });
    ms_opt = time_ms(repeats, [&] {
      fast_acc = 0.0;
      for (const auto& candidate : world.candidates) {
        client_set.distance_row(candidate.coords, row.data());
        fast_acc += row[world.client_points.size() / 2];
      }
      g_sink += fast_acc;
    });
    add_case("kernel_distance_row", ms_base, ms_opt, scalar_acc, fast_acc,
             scalar_acc == fast_acc);
  }

  if (want("kernel_pairwise_min")) {
    const PointSet node_set = PointSet::from_points(world.node_points);
    ms_base = time_ms(repeats, [&] {
      std::size_t best_a = 0, best_b = 1;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t a = 0; a < world.node_points.size(); ++a) {
        for (std::size_t b = a + 1; b < world.node_points.size(); ++b) {
          const double d = world.node_points[a].distance_squared_to(world.node_points[b]);
          if (d < best_d) {
            best_d = d;
            best_a = a;
            best_b = b;
          }
        }
      }
      scalar_acc = static_cast<double>(best_a * world.node_points.size() + best_b) + best_d;
      g_sink += scalar_acc;
    });
    ms_opt = time_ms(repeats, [&] {
      double best_d = 0.0;
      const auto [a, b] = node_set.pairwise_min_distance(&best_d);
      fast_acc = static_cast<double>(a * world.node_points.size() + b) + best_d;
      g_sink += fast_acc;
    });
    add_case("kernel_pairwise_min", ms_base, ms_opt, scalar_acc, fast_acc,
             scalar_acc == fast_acc);
  }

  // --- Request router: SIMD batch routing vs the frozen Point-loop router --
  // Every client routes once through admission control at k replicas. The
  // baseline is serve::ScalarRouter (the pre-SoA router, kept verbatim as
  // the arbiter); the optimized arm is RequestRouter::route_batch over the
  // same arrival stream. Both arms rebuild their router per repeat so queue
  // state starts identical, and an untimed verification pass requires
  // bit-identical decisions, counters, and histogram buckets.
  if (want("serve_route")) {
    serve::ServeConfig serve_config;
    serve_config.service_ms = 0.05;
    serve_config.queue_cap = 64;
    std::vector<serve::ReplicaSpec> replicas;
    for (std::size_t r = 0; r < scale.k; ++r) {
      const auto& candidate = world.candidates[(r * 7) % scale.n_candidates];
      replicas.push_back({candidate.node, candidate.coords});
    }
    const std::size_t n_requests = world.client_points.size();
    std::vector<double> nows(n_requests);
    for (std::size_t i = 0; i < n_requests; ++i) {
      nows[i] = static_cast<double>(i) * 0.01;  // 100 requests per virtual ms
    }
    std::vector<serve::RouteDecision> decisions(n_requests);

    bool match = true;
    {
      serve::ScalarRouter reference(serve_config);
      reference.set_replicas(replicas);
      serve::RequestRouter router(serve_config);
      router.set_replicas(replicas);
      router.route_batch(client_set, nullptr, n_requests, nows.data(), decisions.data());
      for (std::size_t i = 0; i < n_requests; ++i) {
        const auto want_decision = reference.route(world.client_points[i], nows[i]);
        match = match && decisions[i].outcome == want_decision.outcome &&
                (!decisions[i].admitted() ||
                 (decisions[i].replica == want_decision.replica &&
                  decisions[i].wait_ms == want_decision.wait_ms &&
                  decisions[i].dist_sq == want_decision.dist_sq));
        if (decisions[i].admitted()) {
          match = match && router.complete(decisions[i], std::sqrt(decisions[i].dist_sq)) ==
                               reference.complete(want_decision,
                                                  std::sqrt(want_decision.dist_sq));
        }
      }
      match = match && router.stats().admitted == reference.stats().admitted &&
              router.stats().spilled == reference.stats().spilled &&
              router.stats().rejected == reference.stats().rejected;
      for (std::size_t b = 0; b < serve::LatencyHistogram::kBuckets; ++b) {
        match = match &&
                router.histogram().bucket_count(b) == reference.histogram().bucket_count(b);
      }
    }

    ms_base = time_ms(repeats, [&] {
      serve::ScalarRouter reference(serve_config);
      reference.set_replicas(replicas);
      for (std::size_t i = 0; i < n_requests; ++i) {
        const auto decision = reference.route(world.client_points[i], nows[i]);
        if (decision.admitted()) {
          reference.complete(decision, std::sqrt(decision.dist_sq));
        }
      }
      scalar_acc = static_cast<double>(reference.stats().admitted) +
                   reference.histogram().quantile(0.999);
      g_sink += scalar_acc;
    });
    ms_opt = time_ms(repeats, [&] {
      serve::RequestRouter router(serve_config);
      router.set_replicas(replicas);
      router.route_batch(client_set, nullptr, n_requests, nows.data(), decisions.data());
      for (std::size_t i = 0; i < n_requests; ++i) {
        if (decisions[i].admitted()) {
          router.complete(decisions[i], std::sqrt(decisions[i].dist_sq));
        }
      }
      fast_acc = static_cast<double>(router.stats().admitted) +
                 router.histogram().quantile(0.999);
      g_sink += fast_acc;
    });
    add_case("serve_route", ms_base, ms_opt, scalar_acc, fast_acc,
             match && scalar_acc == fast_acc);
  }

  // --- Lloyd's k-means (warm start, no seeding randomness) -----------------
  // The baseline walks std::vector<Point> with a heap allocation per
  // temporary — super-linear wall clock in clients — so this case stays at
  // the scales it can finish at; macro_kmeans covers xlarge.
  if (scale.n_clients <= 100000 && want("lloyd_kmeans")) {
    std::vector<cluster::WeightedPoint> weighted;
    weighted.reserve(world.clients.size());
    for (const auto& client : world.clients) {
      weighted.push_back({client.coords, static_cast<double>(client.access_count)});
    }
    std::vector<Point> initial;
    for (std::size_t c = 0; c < scale.k; ++c) {
      initial.push_back(weighted[(c * weighted.size()) / scale.k].position);
    }
    cluster::KMeansConfig kconfig;
    kconfig.k = scale.k;
    kconfig.max_iterations = 20;
    ms_base = time_ms(repeats, [&] {
      scalar_value = scalar_lloyd_objective(weighted, initial, kconfig);
      g_sink += scalar_value;
    });
    ms_opt = time_ms(repeats, [&] {
      fast_value = cluster::weighted_kmeans_from(weighted, initial, kconfig).objective;
      g_sink += fast_value;
    });
    add_case("lloyd_kmeans", ms_base, ms_opt, scalar_value, fast_value,
             values_match(scalar_value, fast_value));
  }

  // --- Geo-clustered access population -------------------------------------
  // Used by the macro-clustering case (the ingest case below draws its own,
  // tighter population). Client coordinates in the paper's workload
  // concentrate around sites (PlanetLab hosts cluster by continent and
  // campus), so accesses are drawn from a mixture of Gaussian sites.
  // Uniform data would keep micro-cluster radii permanently
  // below the typical nearest-centroid distance (every access spawns and
  // merges — a cost both implementations share) and keep k-means centroids
  // drifting (every bound decays before it can skip a scan), hiding exactly
  // the hot paths these optimizations target.
  constexpr std::size_t kSites = 24;
  constexpr double kSiteSpread = 8.0;
  Rng pop_rng(0x517e0000 + scale.n_clients);
  std::vector<Point> site_centers;
  site_centers.reserve(kSites);
  for (std::size_t s = 0; s < kSites; ++s) {
    Point center(kDim);
    for (std::size_t d = 0; d < kDim; ++d) center[d] = pop_rng.uniform(-300.0, 300.0);
    site_centers.push_back(center);
  }
  const auto sample_site_point = [&] {
    const Point& center = site_centers[pop_rng.below(kSites)];
    Point p(kDim);
    for (std::size_t d = 0; d < kDim; ++d) {
      p[d] = center[d] + pop_rng.normal(0.0, kSiteSpread);
    }
    return p;
  };

  // --- Micro-cluster ingest: per-access scalar vs batched SoA path ---------
  // The ingest case uses its own access population: a handful of sites with
  // campus-scale spread (well inside the absorb floor), with the summarizer
  // budget m above the site count. That is the summarizer's steady-state
  // regime — once every site has a resident micro-cluster, virtually every
  // access absorbs — and it is the regime the paper's geo-clustered clients
  // produce. (With more sites than budget, every access spawns and merges;
  // the pairwise merge scan dominates both implementations equally and the
  // case stops measuring the absorb kernel.)
  //
  // Each path gets its input in the form the pipeline hands it: the
  // historical per-access path received one Point per access, the batched
  // path receives the contiguous PointSet the workload batching layer
  // maintains (wl::AccessBatch stages rows as they are recorded). Both
  // representations are built outside the timers; the timers cover
  // summarization plus serialization of the final summary, and bit-identity
  // is checked on the serialized bytes.
  if (want("ingest_stream")) {
    constexpr std::size_t kIngestSites = 6;
    constexpr double kIngestSpread = 1.2;
    // The x12 multiplier sizes the smaller scales into the summarizer's
    // steady state; at a million clients it would stage twelve million heap
    // Points for the scalar side, so the multiplier drops to x2 there (two
    // million accesses is already deep steady state).
    const std::size_t n_accesses = scale.n_clients * (scale.n_clients >= 1000000 ? 2 : 12);
    std::vector<Point> ingest_centers;
    ingest_centers.reserve(kIngestSites);
    for (std::size_t s = 0; s < kIngestSites; ++s) {
      Point center(kDim);
      for (std::size_t d = 0; d < kDim; ++d) center[d] = pop_rng.uniform(-300.0, 300.0);
      ingest_centers.push_back(center);
    }
    std::vector<Point> access_points;
    std::vector<double> access_weights(n_accesses);
    access_points.reserve(n_accesses);
    PointSet access_batch(kDim);
    access_batch.reserve(n_accesses);
    for (std::size_t i = 0; i < n_accesses; ++i) {
      const Point& center = ingest_centers[pop_rng.below(kIngestSites)];
      Point p(kDim);
      for (std::size_t d = 0; d < kDim; ++d) {
        p[d] = center[d] + pop_rng.normal(0.0, kIngestSpread);
      }
      access_points.push_back(p);
      access_batch.push_back(p);
      access_weights[i] = 0.5 * static_cast<double>(i % 7 + 1);
    }
    cluster::SummarizerConfig sconfig;
    sconfig.max_clusters = 8;

    std::vector<std::uint8_t> scalar_bytes, fast_bytes;
    ms_base = time_ms(repeats, [&] {
      cluster::ScalarMicroClusterSummarizer summarizer(sconfig);
      for (std::size_t i = 0; i < n_accesses; ++i) {
        summarizer.add(access_points[i], access_weights[i]);
      }
      ByteWriter writer;
      summarizer.serialize(writer);
      scalar_bytes = writer.bytes();
      g_sink += static_cast<double>(scalar_bytes.size());
    });
    ms_opt = time_ms(repeats, [&] {
      cluster::MicroClusterSummarizer summarizer(sconfig);
      summarizer.add_batch(access_batch, access_weights);
      ByteWriter writer;
      summarizer.serialize(writer);
      fast_bytes = writer.bytes();
      g_sink += static_cast<double>(fast_bytes.size());
    });
    add_case("ingest_stream", ms_base, ms_opt, static_cast<double>(scalar_bytes.size()),
             static_cast<double>(fast_bytes.size()), scalar_bytes == fast_bytes);
  }

  // --- Macro clustering: scalar Lloyd vs Hamerly-accelerated ---------------
  // Warm-start solves (weighted_kmeans_from vs its scalar reference) from
  // shared deterministic initial centroids — the exact call the epoch
  // pipeline makes every epoch after the first, and the form that isolates
  // the Lloyd/Hamerly iteration cost. (The previous full-seeded comparison
  // spent most of both timers inside the shared k-means++ seeding, so the
  // reported speedup measured the seeder, not the solver.) The accelerated
  // solver must reproduce the scalar result exactly — objective, centroids,
  // assignment, and iteration count.
  if (want("macro_kmeans")) {
    std::vector<cluster::WeightedPoint> clustered;
    clustered.reserve(scale.n_clients);
    for (std::size_t u = 0; u < scale.n_clients; ++u) {
      clustered.push_back({sample_site_point(), 1.0 + static_cast<double>(pop_rng.below(50))});
    }
    // Lightly perturbed site centers as the warm start: the shape
    // warm_start_macro_clusters produces for a stable population — last
    // epoch's centroids, already near the optimum, drifted a little by the
    // epoch's new accesses. The solvers iterate to re-converge rather than
    // exit immediately, and the centroid movement per iteration is small —
    // the regime the warm-start path lives in.
    std::vector<Point> initial;
    initial.reserve(scale.k);
    for (std::size_t c = 0; c < scale.k; ++c) {
      Point p = site_centers[(c * kSites) / scale.k];
      for (std::size_t d = 0; d < kDim; ++d) p[d] += pop_rng.normal(0.0, 0.25 * kSiteSpread);
      initial.push_back(p);
    }
    cluster::KMeansConfig mconfig;
    mconfig.k = scale.k;
    mconfig.max_iterations = 50;
    // Tight tolerance keeps the solvers iterating into the near-converged
    // regime — small centroid deltas, the iterations where Hamerly bounds
    // actually skip scans. (The early iterations after a perturbed start
    // move centroids too far for any bound to survive; both solvers pay
    // full scans there.)
    mconfig.tolerance = 1e-9;
    cluster::KMeansResult scalar_result, fast_result;
    ms_base = time_ms(repeats, [&] {
      scalar_result = cluster::weighted_kmeans_from_scalar(clustered, initial, mconfig);
      g_sink += scalar_result.objective;
    });
    ms_opt = time_ms(repeats, [&] {
      fast_result = cluster::weighted_kmeans_from(clustered, initial, mconfig);
      g_sink += fast_result.objective;
    });
    bool exact = scalar_result.objective == fast_result.objective &&
                 scalar_result.iterations == fast_result.iterations &&
                 scalar_result.assignment == fast_result.assignment &&
                 scalar_result.centroids.size() == fast_result.centroids.size();
    for (std::size_t c = 0; exact && c < scalar_result.centroids.size(); ++c) {
      for (std::size_t d = 0; d < kDim; ++d) {
        exact = exact && scalar_result.centroids[c][d] == fast_result.centroids[c][d];
      }
    }
    add_case("macro_kmeans", ms_base, ms_opt, scalar_result.objective,
             fast_result.objective, exact);
  }

  // --- Local search: full re-evaluation vs incremental deltas --------------
  // The naive reference is O(rounds * k^2 * candidates * clients); at the
  // large scale that is minutes of runtime, so this case covers the two
  // smaller scales only.
  if (scale.n_clients <= 20000 && want("local_search")) {
    place::PlacementInput input;
    input.candidates = world.candidates;
    input.clients = world.clients;
    input.k = scale.k;
    place::LocalSearchConfig lconfig;
    lconfig.max_rounds = 4;
    Placement naive, incremental;
    ms_base = time_ms(repeats, [&] {
      naive = naive_local_search(input, lconfig);
      g_sink += static_cast<double>(naive.size());
    });
    const place::LocalSearchPlacement search(std::make_unique<place::GreedyPlacement>(),
                                             lconfig);
    ms_opt = time_ms(repeats, [&] {
      incremental = search.place(input);
      g_sink += static_cast<double>(incremental.size());
    });
    add_case("local_search", ms_base, ms_opt, static_cast<double>(naive.size()),
             static_cast<double>(incremental.size()), naive == incremental);
  }

  // --- End-to-end epoch pipeline: frozen scalar stages vs production -------
  // One full epoch — ingest, summary collection, macro-clustering proposal,
  // migration gate, adoption — at every scale including the million-client
  // row. The baseline is the historical pipeline hand-rolled from the
  // frozen scalar references: per-access ScalarMicroClusterSummarizer
  // ingest in stream order, direct collection, the scalar k-means solver
  // behind the proposal, Point-loop delay estimates at the gate, and
  // ScalarNearestRedistributionAdopter redistribution. The optimized arm is
  // the production ReplicationManager (batched sharded ingest, SIMD-bounded
  // solver, kernelized adoption). Every stage is bit-identical by contract,
  // so both arms must adopt the same placement, serialize byte-identical
  // per-replica summaries, and agree on the epoch counters. Both arms
  // record per-stage wall time (snapshot of the best-timed repeat) into the
  // JSON so the critical path is attributed, not just the ratio.
  if (want("epoch_end_to_end")) {
    const std::size_t n_accesses = scale.n_clients * 2;
    core::ManagerConfig mconfig;
    mconfig.replication_degree = scale.k;
    mconfig.max_degree = std::max(mconfig.max_degree, scale.k);
    // Summarizer budget above the sites-per-replica count and absorb floor
    // above the site spread (in kDim dimensions), so each replica reaches
    // the absorb steady state — the regime the paper's geo-clustered
    // clients produce (see the ingest_stream rationale; a budget below the
    // resident site count makes the shared merge scan dominate both arms
    // and the epoch stops measuring its hot paths).
    mconfig.summarizer.max_clusters = 8;
    mconfig.summarizer.min_absorb_radius = 25.0;
    const std::uint64_t epoch_seed = 0xe90c0000 + scale.n_clients;
    // The derived seed run_epoch hands its collector/proposer on epoch 0;
    // the hand-rolled baseline must consume the identical stream.
    const std::uint64_t derived_seed = epoch_seed ^ 0x9e3779b97f4a7c15ULL;

    // The access stream and its replica routing are workload, not pipeline:
    // both are fixed outside the timers. Each access goes to the nearest
    // replica of the (seed-determined) initial placement, exactly where a
    // latency-aware router would send it.
    const core::ReplicationManager probe(world.candidates, mconfig, epoch_seed);
    const Placement routed = probe.placement();
    PointSet placement_set(kDim);
    for (const auto id : routed) placement_set.push_back(world.node_points[id]);
    std::vector<Point> access_points;
    access_points.reserve(n_accesses);
    std::vector<topo::NodeId> access_replica(n_accesses);
    std::vector<double> access_weights(n_accesses);
    std::map<topo::NodeId, PointSet> replica_batches;
    std::map<topo::NodeId, std::vector<double>> replica_weights;
    for (const auto id : routed) {
      replica_batches.emplace(id, PointSet(kDim));
      replica_weights.emplace(id, std::vector<double>());
    }
    for (std::size_t i = 0; i < n_accesses; ++i) {
      access_points.push_back(sample_site_point());
      access_replica[i] = routed[placement_set.nearest_of(access_points[i])];
      access_weights[i] = 0.5 * static_cast<double>(i % 7 + 1);
      replica_batches.at(access_replica[i]).push_back(access_points[i]);
      replica_weights.at(access_replica[i]).push_back(access_weights[i]);
    }

    // ReplicationManager::estimate_average_delay restated on Point loops
    // (candidate node ids index world.candidates by construction).
    const auto estimate_delay_scalar =
        [&](const Placement& placement, const std::vector<cluster::MicroCluster>& summaries) {
          double total = 0.0, accesses = 0.0;
          for (const auto& micro : summaries) {
            if (micro.count() == 0) continue;
            const Point centroid = micro.centroid();
            double best = std::numeric_limits<double>::infinity();
            for (const auto node : placement) {
              best = std::min(best, centroid.distance_to(world.candidates[node].coords));
            }
            total += best * static_cast<double>(micro.count());
            accesses += static_cast<double>(micro.count());
          }
          return accesses > 0.0 ? total / accesses : 0.0;
        };

    std::vector<std::uint8_t> base_blob, fast_blob;
    Placement base_adopted;
    double base_new_delay = 0.0;
    std::size_t base_summary_bytes = 0;
    core::EpochStageTrace base_stages, fast_stages;
    core::EpochReport fast_report;
    ms_base = std::numeric_limits<double>::infinity();
    ms_opt = std::numeric_limits<double>::infinity();

    for (std::size_t rep = 0; rep < repeats; ++rep) {
      core::EpochStageTrace tr;
      const auto start = std::chrono::steady_clock::now();
      // (1) Historical ingest: one frozen scalar summarizer per replica,
      //     one add() per access, stream order.
      std::map<topo::NodeId, cluster::ScalarMicroClusterSummarizer> summarizers;
      for (const auto id : routed) {
        summarizers.emplace(id, cluster::ScalarMicroClusterSummarizer(mconfig.summarizer));
      }
      {
        const core::StageTimer timer(tr.ingest_flush_ms);
        for (std::size_t i = 0; i < n_accesses; ++i) {
          summarizers.at(access_replica[i]).add(access_points[i], access_weights[i]);
        }
      }
      // (2) Direct collection from every replica in node order.
      core::CollectedSummaries collected;
      {
        const core::StageTimer timer(tr.collect_ms);
        std::vector<core::SummarySource> sources;
        sources.reserve(summarizers.size());
        for (const auto& [node, summarizer] : summarizers) {
          sources.push_back({node, summarizer.clusters()});
        }
        core::DirectCollector collector;
        collected = collector.collect(sources, {world.candidates, scale.k, derived_seed});
      }
      // (3) Macro-clustering proposal through the frozen scalar solver (via
      // the pipeline proposer stage; its warm-start cache is empty on a
      // fresh epoch, exactly like the manager's own epoch 0).
      Placement proposed;
      {
        const core::StageTimer timer(tr.propose_ms);
        place::OnlineClusteringConfig pconfig = mconfig.strategy;
        pconfig.use_scalar_solver = true;
        place::PlacementInput input;
        input.candidates = world.candidates;
        input.k = scale.k;
        input.summaries = collected.summaries;
        input.seed = derived_seed;
        core::ClusteringProposer proposer(pconfig);
        proposed = proposer.propose(input);
      }
      // (4) Migration gate on the scalar delay estimates.
      core::MigrationDecision decision;
      double new_delay = 0.0;
      {
        const core::StageTimer timer(tr.gate_ms);
        const double old_delay = estimate_delay_scalar(routed, collected.summaries);
        new_delay = estimate_delay_scalar(proposed, collected.summaries);
        std::size_t moved = 0;
        for (const auto node : proposed) {
          if (std::find(routed.begin(), routed.end(), node) == routed.end()) ++moved;
        }
        decision = core::PolicyGate(mconfig.migration).evaluate(old_delay, new_delay, moved);
      }
      // (5) Adopt via the frozen scalar redistribution, or retain (decay).
      Placement adopted_placement = routed;
      ByteWriter writer;
      {
        const core::StageTimer timer(tr.adopt_ms);
        if (decision.migrate || proposed.size() != routed.size()) {
          adopted_placement = proposed;
          std::map<topo::NodeId, cluster::MicroClusterSummarizer> adopted;
          core::ScalarNearestRedistributionAdopter adopter;
          adopter.adopt(proposed, collected.summaries, world.candidates, mconfig.summarizer,
                        adopted);
          for (const auto node : adopted_placement) {
            cluster::write_clusters(writer, adopted.at(node).clusters());
          }
        } else {
          for (auto& [node, summarizer] : summarizers) summarizer.decay();
          for (const auto node : adopted_placement) {
            cluster::write_clusters(writer, summarizers.at(node).clusters());
          }
        }
      }
      const auto stop = std::chrono::steady_clock::now();
      g_sink += static_cast<double>(writer.size());
      const double ms = std::chrono::duration<double, std::milli>(stop - start).count();
      if (ms < ms_base) {
        ms_base = ms;
        base_stages = tr;
        base_blob = writer.bytes();
        base_adopted = adopted_placement;
        base_new_delay = new_delay;
        base_summary_bytes = collected.summary_bytes;
      }
    }

    for (std::size_t rep = 0; rep < repeats; ++rep) {
      core::EpochStageTrace tr;
      const auto start = std::chrono::steady_clock::now();
      core::ReplicationManager manager(world.candidates, mconfig, epoch_seed);
      {
        // Record-path ingest (staging copy + grain-triggered summarization)
        // attributed to the same slot the baseline's per-access loop uses.
        const core::StageTimer timer(tr.ingest_flush_ms);
        for (const auto& [id, batch] : replica_batches) {
          manager.record_access_batch(id, batch, replica_weights.at(id));
        }
      }
      core::EpochReport report = manager.run_epoch();
      tr.ingest_flush_ms += report.stages.ingest_flush_ms;
      tr.collect_ms = report.stages.collect_ms;
      tr.propose_ms = report.stages.propose_ms;
      tr.gate_ms = report.stages.gate_ms;
      tr.adopt_ms = report.stages.adopt_ms;
      ByteWriter writer;
      for (const auto node : report.adopted_placement) {
        cluster::write_clusters(writer, manager.summary_of(node));
      }
      const auto stop = std::chrono::steady_clock::now();
      g_sink += static_cast<double>(writer.size());
      const double ms = std::chrono::duration<double, std::milli>(stop - start).count();
      if (ms < ms_opt) {
        ms_opt = ms;
        fast_stages = tr;
        fast_blob = writer.bytes();
        fast_report = report;
      }
    }

    const bool match = base_adopted == fast_report.adopted_placement &&
                       base_blob == fast_blob &&
                       fast_report.epoch_accesses == n_accesses &&
                       base_summary_bytes == fast_report.summary_bytes &&
                       base_new_delay == fast_report.new_estimated_delay_ms;
    add_case("epoch_end_to_end", ms_base, ms_opt, static_cast<double>(base_blob.size()),
             static_cast<double>(fast_blob.size()), match);
    results.back().has_stages = true;
    results.back().stages_baseline = base_stages;
    results.back().stages_optimized = fast_stages;
    std::printf(
        "      stages (ms, base -> opt): ingest %.2f -> %.2f, collect %.3f -> %.3f, "
        "propose %.3f -> %.3f, gate %.3f -> %.3f, adopt %.3f -> %.3f\n",
        base_stages.ingest_flush_ms, fast_stages.ingest_flush_ms, base_stages.collect_ms,
        fast_stages.collect_ms, base_stages.propose_ms, fast_stages.propose_ms,
        base_stages.gate_ms, fast_stages.gate_ms, base_stages.adopt_ms,
        fast_stages.adopt_ms);
  }
  return results;
}

void write_stage_trace(std::ofstream& out, const char* key, const core::EpochStageTrace& t) {
  out << ", \"" << key << "\": {\"ingest_flush_ms\": " << t.ingest_flush_ms
      << ", \"collect_ms\": " << t.collect_ms << ", \"propose_ms\": " << t.propose_ms
      << ", \"gate_ms\": " << t.gate_ms << ", \"adopt_ms\": " << t.adopt_ms << "}";
}

void write_json(const std::string& path, std::size_t threads,
                const std::vector<CaseResult>& results) {
  std::ofstream out(path);
  // Round-trip precision: CI compares optimized_value text across thread
  // counts, so the printed digits must distinguish any bit difference.
  out.precision(17);
  out << "{\n  \"threads\": " << threads << ",\n  \"simd\": \""
      << simd::level_name(simd::active_level()) << "\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"scale\": \"" << r.scale
        << "\", \"n_clients\": " << r.n_clients << ", \"k\": " << r.k
        << ", \"ms_baseline\": " << r.ms_baseline << ", \"ms_optimized\": " << r.ms_optimized
        << ", \"speedup\": " << r.speedup() << ", \"baseline_value\": " << r.baseline_value
        << ", \"optimized_value\": " << r.optimized_value
        << ", \"match\": " << (r.match ? "true" : "false");
    if (r.has_stages) {
      write_stage_trace(out, "stages_baseline", r.stages_baseline);
      write_stage_trace(out, "stages_optimized", r.stages_optimized);
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags("micro_perf", "Scalar-vs-optimized timings for the hot paths");
  flags.add_string("scale", "all", "Scale to run: small, medium, large, xlarge, or all");
  flags.add_string("out", "BENCH_perf.json", "Output JSON path");
  flags.add_string("only", "", "Run only cases whose name contains this substring");
  flags.add_int("threads", 0, "Thread count (0 = GEORED_THREADS or hardware)");
  flags.add_int("repeats", 3, "Timing repetitions; the best run is reported");
  flags.parse(std::vector<std::string>(argv + 1, argv + argc));
  if (flags.help_requested()) {
    std::printf("%s", flags.help().c_str());
    return 0;
  }
  const auto threads = static_cast<std::size_t>(std::max<std::int64_t>(0, flags.get_int("threads")));
  if (threads > 0) ThreadPool::set_global_thread_count(threads);
  const std::size_t used_threads = ThreadPool::global().thread_count();
  const auto repeats =
      static_cast<std::size_t>(std::max<std::int64_t>(1, flags.get_int("repeats")));
  const std::string which = flags.get_string("scale");
  const std::string only = flags.get_string("only");

  std::printf("micro_perf: %zu thread(s), %zu repeat(s), simd %s\n", used_threads, repeats,
              simd::level_name(simd::active_level()));
  bool scale_known = false;
  std::vector<CaseResult> all;
  for (const auto& scale : kScales) {
    if (which != "all" && which != scale.name) continue;
    scale_known = true;
    const auto results = run_scale(scale, repeats, only);
    all.insert(all.end(), results.begin(), results.end());
  }
  if (!scale_known) {
    std::fprintf(stderr, "unknown --scale '%s' (small|medium|large|xlarge|all)\n",
                 which.c_str());
    return 1;
  }
  if (all.empty()) {
    std::fprintf(stderr, "--only '%s' matched no cases\n", only.c_str());
    return 1;
  }
  write_json(flags.get_string("out"), used_threads, all);
  std::printf("wrote %s (sink %.1f)\n", flags.get_string("out").c_str(), g_sink);

  bool all_match = true;
  for (const auto& r : all) all_match = all_match && r.match;
  if (!all_match) {
    std::fprintf(stderr, "MISMATCH between scalar and optimized results\n");
    return 1;
  }
  return 0;
}
