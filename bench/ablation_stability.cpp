// Ablation A8 — coordinate stability (the paper's second claim for RNP).
//
// "RNP ... improves both the network latency prediction accuracy and
// coordinate stability over Vivaldi." Accuracy is covered by
// ablation_netcoord; this harness measures stability: the mean per-node
// coordinate displacement per gossip round after warmup. Unstable
// coordinates churn everything downstream (summaries drift, placements
// flap), so the paper treats stability as a first-class property.
#include <cstdio>

#include "bench_util.h"
#include "netcoord/stability.h"
#include "topology/planetlab_model.h"

using namespace geored;

int main() {
  bench::print_header(
      "Ablation: coordinate stability — Vivaldi vs RNP",
      "226-node topology; drift = mean per-node displacement per round after warmup");

  const auto topology = topo::generate_planetlab_like(topo::PlanetLabModelConfig{}, 42);

  std::printf("%-10s %12s %14s %14s %16s\n", "protocol", "rounds", "drift mean",
              "drift p90", "final abs p50");
  double vivaldi_drift = 0.0, rnp_drift = 0.0;
  double vivaldi_error = 0.0, rnp_error = 0.0;
  for (const std::size_t rounds : {128ul, 256ul, 512ul}) {
    for (const auto protocol : {coord::Protocol::kVivaldi, coord::Protocol::kRnp}) {
      coord::StabilityConfig config;
      config.gossip.rounds = rounds;
      config.warmup_rounds = rounds / 2;
      const auto report = coord::measure_stability(topology, protocol, config, 7);
      const char* name = protocol == coord::Protocol::kVivaldi ? "vivaldi" : "rnp";
      std::printf("%-10s %12zu %12.3fms %12.3fms %14.2fms\n", name, rounds,
                  report.displacement_per_round_ms.mean,
                  report.displacement_per_round_ms.p90, report.final_abs_error_p50_ms);
      if (rounds == 256) {
        if (protocol == coord::Protocol::kVivaldi) {
          vivaldi_drift = report.displacement_per_round_ms.mean;
          vivaldi_error = report.final_abs_error_p50_ms;
        } else {
          rnp_drift = report.displacement_per_round_ms.mean;
          rnp_error = report.final_abs_error_p50_ms;
        }
      }
    }
  }

  std::printf("\npaper-shape checks:\n");
  bench::print_check("RNP coordinates drift less than Vivaldi's", rnp_drift < vivaldi_drift);
  bench::print_check("RNP stability does not cost accuracy", rnp_error <= vivaldi_error);
  return 0;
}
