#!/usr/bin/env python3
"""Repo-convention lint for geored.

Checks 1-3 and 5 also cover bench/, examples/, and the CLI
(tools/geored.cpp): drivers ship alongside the library and must model its
idioms — a raw assert in an example teaches users the wrong pattern, and an
unseeded RNG in a bench makes its numbers unreproducible. Checks 4 and 6
stay src/-only: entry-point validation is a library-API contract, and bench
timing loops legitimately read the real clock.

Checks, over src/ (the library — tests have their own idioms):

  1. no-raw-assert      No raw `assert(...)`: invariants must use
                        GEORED_ENSURE / GEORED_CHECK / GEORED_DCHECK so they
                        throw typed exceptions instead of aborting (and so
                        release builds keep the checks we want kept).
  2. no-unseeded-rng    No `rand()`/`srand()` and no direct `std::mt19937` /
                        `std::random_device` outside src/common/random.*:
                        every random stream must flow through geored::Rng so
                        simulations stay reproducible from a seed.
  3. pragma-once        Every header under src/ starts its include-guard life
                        with `#pragma once`.
  4. ensure-on-entry    Public API entry points (non-static free functions and
                        public methods defined in .cpp files) that take a
                        size/index-like parameter must validate arguments with
                        GEORED_ENSURE (or delegate to a function that does).
                        Suppress a deliberate exception with a trailing
                        `// lint: no-ensure` on the signature line.
  5. registry-only      No direct `OnlineClusteringPlacement` construction
                        outside the placement layer and the pipeline factory
                        (src/core/epoch_pipeline.cpp): callers go through
                        place::make_strategy("online") or make_collector so
                        every decision rule stays registry-addressable.
  6. net-injected-clock No wall-clock reads or real sleeps anywhere in
                        src/net/ except src/net/clock.cpp (SystemClock's
                        implementation file): the transport must take all its
                        time from the injected net::Clock so fault schedules,
                        backoff, and delay faults replay deterministically
                        under test. Unseeded randomness is already banned
                        repo-wide by check 2.

Exit status is 0 when clean, 1 when any violation is found, 2 on usage
errors — including finding zero files to lint, because a silently-empty run
would read as a pass.
Usage: tools/lint_conventions.py [repo-root]
"""

from __future__ import annotations

import pathlib
import re
import sys

SIZE_PARAM = re.compile(
    r"\b(?:std::)?(?:size_t|uint32_t|uint64_t|ptrdiff_t)\s+"
    r"(k|n|index|idx|quorum|dim|dimensions|node|node_id|replica|client|count)\b"
    r"|\bNodeId\s+\w+"
)
# A function definition: start of line (possibly indented once for a class),
# a return type token, a name, an argument list, then an opening brace on the
# same or the next line. Good enough for this codebase's clang-format style.
FUNC_DEF = re.compile(
    r"^(?P<indent>[ \t]*)(?!(?:if|for|while|switch|return|else|do|catch)\b)"
    r"(?P<sig>[A-Za-z_][\w:<>,&*\s]*?[\w>&*]\s+[\w:~]+\s*\((?P<args>[^;{}]*)\)"
    r"(?:\s*const)?(?:\s*noexcept)?)\s*(?::[^{;]+)?\{",
    re.MULTILINE,
)
VALIDATORS = ("GEORED_ENSURE", "GEORED_CHECK", "GEORED_DCHECK", "validate_")

# Direct construction of the online-clustering strategy: `new`, make_unique /
# make_shared, a temporary `OnlineClusteringPlacement(...)`, or a named local
# `OnlineClusteringPlacement foo(...)` / `... foo;`.
DIRECT_CONSTRUCTION = re.compile(
    r"new\s+(?:place::)?OnlineClusteringPlacement\b"
    r"|make_(?:unique|shared)<[^>]*OnlineClusteringPlacement\s*>"
    r"|\bOnlineClusteringPlacement\s*[({]"
    r"|\bOnlineClusteringPlacement\s+\w+\s*[;({]"
)
# Files allowed to construct the strategy directly: the placement layer it
# belongs to, and the pipeline's collector/proposer factory.
REGISTRY_ALLOWLIST_PREFIXES = ("src/placement/",)
REGISTRY_ALLOWLIST_FILES = ("src/core/epoch_pipeline.cpp",)

# Wall-clock access inside the transport layer. `sleep_ms` (the injected
# Clock's own method) deliberately does not match; poll()/accept() timeout
# *parameters* are liveness bounds, not clock reads, and don't match either.
NET_WALLCLOCK = re.compile(
    r"std::chrono\b|\bsteady_clock\b|\bsystem_clock\b|\bhigh_resolution_clock\b"
    r"|\bsleep_for\b|\bsleep_until\b|\bthis_thread\s*::\s*sleep"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\bnanosleep\s*\(|\busleep\s*\("
    r"|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
)
# SystemClock's implementation is the one place real time may enter net/.
NET_CLOCK_ALLOWLIST_FILES = ("src/net/clock.cpp",)


def function_body(text: str, open_brace: int) -> str:
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[open_brace : i + 1]
    return text[open_brace:]


def strip_comments_and_strings(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return re.sub(r'"(?:[^"\\]|\\.)*"', '""', text)


def check_no_raw_assert(path: pathlib.Path, text: str, errors: list[str]) -> None:
    for lineno, line in enumerate(strip_comments_and_strings(text).splitlines(), 1):
        if re.search(r"(?<!static_)\bassert\s*\(", line):
            errors.append(
                f"{path}:{lineno}: [no-raw-assert] use GEORED_ENSURE/CHECK/DCHECK "
                "instead of raw assert"
            )


def check_no_unseeded_rng(path: pathlib.Path, text: str, errors: list[str]) -> None:
    if "common/random" in str(path).replace("\\", "/"):
        return
    clean = strip_comments_and_strings(text)
    for lineno, line in enumerate(clean.splitlines(), 1):
        if re.search(r"\b(?:s?rand)\s*\(", line):
            errors.append(
                f"{path}:{lineno}: [no-unseeded-rng] rand()/srand() breaks seeded "
                "reproducibility; use geored::Rng"
            )
        if re.search(r"\bstd::(?:mt19937(?:_64)?|random_device|default_random_engine)\b", line):
            errors.append(
                f"{path}:{lineno}: [no-unseeded-rng] direct std RNG outside "
                "common/random; route randomness through geored::Rng"
            )


def check_pragma_once(path: pathlib.Path, text: str, errors: list[str]) -> None:
    if path.suffix != ".h":
        return
    if "#pragma once" not in text:
        errors.append(f"{path}:1: [pragma-once] public header lacks '#pragma once'")


def check_ensure_on_entry(path: pathlib.Path, text: str, errors: list[str]) -> None:
    if path.suffix != ".cpp":
        return
    for match in FUNC_DEF.finditer(text):
        sig, args = match.group("sig"), match.group("args")
        if not SIZE_PARAM.search(args):
            continue
        # Lambdas, static/anonymous-namespace helpers, and suppressed lines
        # are not public entry points.
        sig_line_start = text.rfind("\n", 0, match.start()) + 1
        sig_line_end = text.find("\n", match.start())
        sig_line = text[sig_line_start : sig_line_end if sig_line_end != -1 else len(text)]
        if "lint: no-ensure" in sig_line or sig.lstrip().startswith("static "):
            continue
        before = text[: match.start()]
        if before.count("namespace {") > before.count("}  // namespace\n") and "namespace {" in before:
            anon_open = before.rfind("namespace {")
            anon_close = before.rfind("}  // namespace")
            if anon_open > anon_close:
                continue
        body = function_body(text, match.end() - 1)  # match ends at the '{'
        if not any(v in body for v in VALIDATORS):
            lineno = text.count("\n", 0, match.start()) + 1
            name = sig.split("(")[0].split()[-1]
            errors.append(
                f"{path}:{lineno}: [ensure-on-entry] public entry point '{name}' takes "
                "a size/index parameter but never validates its arguments "
                "(GEORED_ENSURE it, delegate to a validate_* helper, or mark the "
                "signature '// lint: no-ensure')"
            )


def check_registry_only_construction(
    path: pathlib.Path, text: str, errors: list[str]
) -> None:
    posix = path.as_posix()
    if posix.startswith(REGISTRY_ALLOWLIST_PREFIXES) or posix in REGISTRY_ALLOWLIST_FILES:
        return
    for lineno, line in enumerate(strip_comments_and_strings(text).splitlines(), 1):
        if DIRECT_CONSTRUCTION.search(line):
            errors.append(
                f"{path}:{lineno}: [registry-only] construct OnlineClusteringPlacement "
                'through place::make_strategy("online") or the epoch-pipeline '
                "factories, not directly"
            )


def check_net_injected_clock(path: pathlib.Path, text: str, errors: list[str]) -> None:
    posix = path.as_posix()
    if not posix.startswith("src/net/") or posix in NET_CLOCK_ALLOWLIST_FILES:
        return
    for lineno, line in enumerate(strip_comments_and_strings(text).splitlines(), 1):
        if NET_WALLCLOCK.search(line):
            errors.append(
                f"{path}:{lineno}: [net-injected-clock] the transport layer must "
                "take time from the injected net::Clock (only src/net/clock.cpp "
                "may touch the real clock); deterministic fault replay depends "
                "on it"
            )


def collect_files(root: pathlib.Path) -> tuple[list[pathlib.Path], list[pathlib.Path]]:
    """(library files — all checks; driver files — the shared subset)."""
    src = root / "src"
    if not src.is_dir():
        print(f"error: {src} is not a directory", file=sys.stderr)
        raise SystemExit(2)
    library = [p for p in sorted(src.rglob("*")) if p.suffix in (".cpp", ".h")]
    drivers: list[pathlib.Path] = []
    for tree in ("bench", "examples"):
        tree_dir = root / tree
        if tree_dir.is_dir():
            drivers.extend(p for p in sorted(tree_dir.rglob("*")) if p.suffix in (".cpp", ".h"))
    cli = root / "tools" / "geored.cpp"
    if cli.is_file():
        drivers.append(cli)
    return library, drivers


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    library, drivers = collect_files(root)
    if not library:
        print(
            f"error: found no .cpp/.h files under {root / 'src'} — an empty "
            "lint run would falsely read as a pass; check the path argument",
            file=sys.stderr,
        )
        return 2
    errors: list[str] = []
    for path in library:
        text = path.read_text(encoding="utf-8")
        rel = path.relative_to(root)
        check_no_raw_assert(rel, text, errors)
        check_no_unseeded_rng(rel, text, errors)
        check_pragma_once(rel, text, errors)
        check_ensure_on_entry(rel, text, errors)
        check_registry_only_construction(rel, text, errors)
        check_net_injected_clock(rel, text, errors)
    for path in drivers:
        text = path.read_text(encoding="utf-8")
        rel = path.relative_to(root)
        check_no_raw_assert(rel, text, errors)
        check_no_unseeded_rng(rel, text, errors)
        check_pragma_once(rel, text, errors)
        check_registry_only_construction(rel, text, errors)
    for error in errors:
        print(error)
    if errors:
        print(f"\n{len(errors)} convention violation(s).", file=sys.stderr)
        return 1
    print("lint_conventions: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
