#!/usr/bin/env python3
"""Concurrency & determinism lint for geored's library sources.

Where lint_conventions.py enforces API idioms, this pass enforces the
invariants the capability annotations (common/sync.h) and the determinism
contract rest on. Checks, over src/:

  1. naked-sync        No raw std::mutex / std::condition_variable (or the
                       std lock adapters) outside src/common/sync.h. Every
                       lock must be a capability-annotated geored::Mutex so
                       Clang's thread-safety analysis sees it; a naked mutex
                       is invisible to -Werror=thread-safety and silently
                       re-opens the class of bugs the annotations closed.
                       Suppress a deliberate wrapping site with a trailing
                       `// lint: naked-sync-ok`.
  2. wall-clock        No <chrono> clock reads, sleep_for/sleep_until, or
                       POSIX time calls anywhere in src/ except the
                       SystemClock implementation (src/net/clock.cpp and its
                       header). All time flows through the injected
                       net::Clock so fault schedules, backoff, and delay
                       faults replay deterministically. Extends the old
                       net-only rule to the whole library. Suppress with
                       `// lint: wall-clock-ok`.
  3. unseeded-rng      No rand()/srand(), std::mt19937, std::random_device,
                       or std::default_random_engine outside
                       src/common/random.*: every random stream flows
                       through geored::Rng, seeded explicitly.
  4. unordered-iter    No range-for over an unordered container unless the
                       line carries `// lint: unordered-iter-ok`. Hash-order
                       iteration feeding a serialized or reported path makes
                       output depend on the allocator; the suppression
                       comment is the author's assertion that the loop is an
                       order-insensitive reduction or that the result is
                       sorted before it escapes.
  5. run-chunks        No direct ThreadPool::run_chunks call outside
                       src/common/thread_pool.*: callers use parallel_for /
                       parallel_reduce_sum, which run nested calls inline.
                       A direct run_chunks from inside a chunk body deadlocks
                       the pool on itself (the workers are already committed
                       to the outer task). Suppress a sanctioned driver with
                       `// lint: run-chunks-ok`.
  6. hot-alloc         No std::vector construction inside the hot kernel
                       files (the distance kernels, k-means, the evaluators,
                       the summarizer ingest path): per-call scratch there
                       goes through the epoch arena (common/arena.h) or a
                       reused buffer, so allocation regressions cannot sneak
                       back into the million-client paths. Deliberate sites
                       (cold wire paths, the frozen scalar references,
                       results that escape the call) carry
                       `// lint: alloc-ok`.

The pass is AST-aware when libclang's Python bindings are importable (it
then classifies tokens by cursor kind, so declarations in comments or
strings can never false-positive) and falls back to a comment/string-
stripping regex scan otherwise. Both modes enforce the same rules; CI runs
whichever the runner provides, and the regex mode is authoritative for the
exit status either way.

Exit status is 0 when clean, 1 when any violation is found, 2 on usage
errors (including finding zero files to lint — a silently-empty run would
read as a pass).
Usage: tools/geored_lint.py [repo-root]
"""

from __future__ import annotations

import pathlib
import re
import sys

# ---------------------------------------------------------------------------
# Rules (shared by both modes)
# ---------------------------------------------------------------------------

NAKED_SYNC = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex"
    r"|condition_variable|condition_variable_any"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>"
)
SYNC_ALLOWLIST_FILES = ("src/common/sync.h",)

WALL_CLOCK = re.compile(
    r"#\s*include\s*<chrono>"
    r"|\bstd::chrono\b|\bsteady_clock\b|\bsystem_clock\b|\bhigh_resolution_clock\b"
    r"|\bsleep_for\b|\bsleep_until\b|\bthis_thread\s*::\s*sleep"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\bnanosleep\s*\(|\busleep\s*\("
    r"|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
)
CLOCK_ALLOWLIST_FILES = (
    "src/net/clock.cpp",
    "src/net/clock.h",
    # Epoch stage tracing is observational-only wall time at sub-ms
    # resolution; nothing deterministic consumes it (core/epoch_trace.h).
    "src/core/epoch_trace.cpp",
)

UNSEEDED_RNG = re.compile(
    r"(?<!_)\b(?:s?rand)\s*\("
    r"|\bstd::(?:mt19937(?:_64)?|random_device|default_random_engine|minstd_rand0?)\b"
)
RNG_ALLOWLIST_PREFIXES = ("src/common/random",)

# A range-for whose range expression names an unordered container: either the
# expression contains `unordered_` itself, or it is an identifier declared
# with an unordered type elsewhere in the same file (collected per file).
RANGE_FOR = re.compile(r"\bfor\s*\(\s*(?:const\s+)?[^;:)]*?:\s*(?P<range>[^)]+)\)")
UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(?P<name>\w+)\s*[;={(]"
)

RUN_CHUNKS = re.compile(r"\brun_chunks\s*\(")
RUN_CHUNKS_ALLOWLIST_PREFIXES = ("src/common/thread_pool",)

# A std::vector variable declaration (with or without constructor args) or a
# vector temporary. References and qualified-name function definitions do
# not match: only constructions that allocate per call.
HOT_ALLOC = re.compile(
    r"\bstd::vector\s*<[^;()]*?>\s+\w+\s*[;({=]"  # local / member declaration
    r"|\bstd::vector\s*<[^;()]*?>\s*[({]"  # temporary
)
HOT_ALLOC_FILES = (
    "src/common/point_set.cpp",
    "src/common/point_set_simd.cpp",
    "src/cluster/kmeans.cpp",
    "src/cluster/moment_store.cpp",
    "src/cluster/summarizer.cpp",
    "src/placement/evaluate.cpp",
    "src/core/epoch_pipeline.cpp",
    "src/core/epoch_trace.h",
    "src/serve/request_router.cpp",
    "src/serve/latency_histogram.h",
)

SUPPRESSIONS = {
    "naked-sync": "lint: naked-sync-ok",
    "wall-clock": "lint: wall-clock-ok",
    "unordered-iter": "lint: unordered-iter-ok",
    "run-chunks": "lint: run-chunks-ok",
    "hot-alloc": "lint: alloc-ok",
}

MESSAGES = {
    "naked-sync": (
        "raw std sync primitive outside common/sync.h; use geored::Mutex / "
        "MutexLock / CondVar so Clang's thread-safety analysis can see the "
        "lock (deliberate wrapping sites: '// lint: naked-sync-ok')"
    ),
    "wall-clock": (
        "real-time access outside src/net/clock.*; take time from the "
        "injected net::Clock so runs replay deterministically "
        "(deliberate: '// lint: wall-clock-ok')"
    ),
    "unseeded-rng": (
        "direct RNG outside common/random; route randomness through "
        "geored::Rng so runs reproduce from a seed"
    ),
    "unordered-iter": (
        "iteration over an unordered container; hash order must not reach "
        "serialized or reported output — sort the result or, if the loop is "
        "an order-insensitive reduction, assert so with "
        "'// lint: unordered-iter-ok'"
    ),
    "run-chunks": (
        "direct ThreadPool::run_chunks call; use parallel_for / "
        "parallel_reduce_sum, which run nested parallelism inline instead of "
        "deadlocking the pool (sanctioned drivers: '// lint: run-chunks-ok')"
    ),
    "hot-alloc": (
        "std::vector construction in a hot kernel file; use the epoch arena "
        "(common/arena.h) or a reused buffer for per-call scratch "
        "(deliberate sites: '// lint: alloc-ok')"
    ),
}


def suppressed(check: str, raw_line: str) -> bool:
    marker = SUPPRESSIONS.get(check)
    return marker is not None and marker in raw_line


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments/strings while keeping line numbers aligned."""

    def blank(match: re.Match[str]) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    text = re.sub(r"//[^\n]*", blank, text)
    text = re.sub(r"/\*.*?\*/", blank, text, flags=re.DOTALL)
    return re.sub(r'"(?:[^"\\\n]|\\.)*"', '""', text)


class FileLint:
    """One file's text in both raw (for suppressions) and stripped form."""

    def __init__(self, rel: pathlib.Path, text: str):
        self.rel = rel
        self.posix = rel.as_posix()
        self.raw_lines = text.splitlines()
        self.lines = strip_comments_and_strings(text).splitlines()
        self.unordered_names = {
            m.group("name") for m in UNORDERED_DECL.finditer("\n".join(self.lines))
        }

    def raw(self, lineno: int) -> str:
        return self.raw_lines[lineno - 1] if lineno - 1 < len(self.raw_lines) else ""


def emit(errors: list[str], lint: FileLint, lineno: int, check: str) -> None:
    errors.append(f"{lint.rel}:{lineno}: [{check}] {MESSAGES[check]}")


# ---------------------------------------------------------------------------
# Regex mode (always available; authoritative)
# ---------------------------------------------------------------------------


def regex_lint_file(lint: FileLint, errors: list[str]) -> None:
    for lineno, line in enumerate(lint.lines, 1):
        raw = lint.raw(lineno)

        if lint.posix not in SYNC_ALLOWLIST_FILES and NAKED_SYNC.search(line):
            if not suppressed("naked-sync", raw):
                emit(errors, lint, lineno, "naked-sync")

        if lint.posix not in CLOCK_ALLOWLIST_FILES and WALL_CLOCK.search(line):
            if not suppressed("wall-clock", raw):
                emit(errors, lint, lineno, "wall-clock")

        if not lint.posix.startswith(RNG_ALLOWLIST_PREFIXES) and UNSEEDED_RNG.search(line):
            emit(errors, lint, lineno, "unseeded-rng")

        if not lint.posix.startswith(RUN_CHUNKS_ALLOWLIST_PREFIXES) and RUN_CHUNKS.search(line):
            if not suppressed("run-chunks", raw):
                emit(errors, lint, lineno, "run-chunks")

        if lint.posix in HOT_ALLOC_FILES and HOT_ALLOC.search(line):
            if not suppressed("hot-alloc", raw):
                emit(errors, lint, lineno, "hot-alloc")

        match = RANGE_FOR.search(line)
        if match and not suppressed("unordered-iter", raw):
            range_expr = match.group("range").strip()
            # The terminal identifier of the range expression (strip member
            # access chains and calls): `node.data_` -> `data_`.
            terminal = re.split(r"[.\->(]", range_expr)[-1].strip()
            if "unordered_" in range_expr or terminal in lint.unordered_names:
                emit(errors, lint, lineno, "unordered-iter")


# ---------------------------------------------------------------------------
# AST mode (libclang, optional)
# ---------------------------------------------------------------------------


def try_load_libclang():
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:  # missing/unloadable shared library
        return None


def ast_lint_file(cindex, root: pathlib.Path, lint: FileLint, errors: list[str]) -> bool:
    """AST pass for one file. Returns False to fall back to regex mode."""
    path = root / lint.rel
    try:
        tu = cindex.Index.create().parse(
            str(path),
            args=["-std=c++20", f"-I{root / 'src'}", "-fsyntax-only"],
            options=cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0,
        )
    except Exception:
        return False
    if any(d.severity >= cindex.Diagnostic.Fatal for d in tu.diagnostics):
        return False

    def here(cursor) -> int | None:
        loc = cursor.location
        if loc.file is None or pathlib.Path(loc.file.name) != path:
            return None
        return loc.line

    K = cindex.CursorKind
    for cursor in tu.cursor.walk_preorder():
        lineno = here(cursor)
        if lineno is None:
            continue
        raw = lint.raw(lineno)
        spelled_type = ""
        if cursor.kind in (K.VAR_DECL, K.FIELD_DECL):
            spelled_type = cursor.type.spelling

        if lint.posix not in SYNC_ALLOWLIST_FILES and NAKED_SYNC.search(spelled_type):
            if not suppressed("naked-sync", raw):
                emit(errors, lint, lineno, "naked-sync")

        if cursor.kind in (K.DECL_REF_EXPR, K.CALL_EXPR):
            name = cursor.spelling or ""
            if (
                lint.posix not in CLOCK_ALLOWLIST_FILES
                and name in ("sleep_for", "sleep_until", "now", "gettimeofday",
                             "clock_gettime", "nanosleep", "usleep")
                and "chrono" in (cursor.referenced.location.file.name
                                 if cursor.referenced is not None
                                 and cursor.referenced.location.file is not None
                                 else "chrono")  # no referent info: be strict
                and not suppressed("wall-clock", raw)
            ):
                emit(errors, lint, lineno, "wall-clock")
            if (
                not lint.posix.startswith(RUN_CHUNKS_ALLOWLIST_PREFIXES)
                and name == "run_chunks"
                and cursor.kind is K.CALL_EXPR
                and not suppressed("run-chunks", raw)
            ):
                emit(errors, lint, lineno, "run-chunks")

        if not lint.posix.startswith(RNG_ALLOWLIST_PREFIXES) and UNSEEDED_RNG.search(
            spelled_type
        ):
            emit(errors, lint, lineno, "unseeded-rng")

        if cursor.kind is K.CXX_FOR_RANGE_STMT and not suppressed("unordered-iter", raw):
            children = list(cursor.get_children())
            if children:
                range_type = children[-2].type.spelling if len(children) >= 2 else ""
                if "unordered_" in range_type:
                    emit(errors, lint, lineno, "unordered-iter")
    return True


# ---------------------------------------------------------------------------


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    src = root / "src"
    if not src.is_dir():
        print(f"error: {src} is not a directory", file=sys.stderr)
        return 2
    files = [p for p in sorted(src.rglob("*")) if p.suffix in (".cpp", ".h")]
    if not files:
        print(
            f"error: found no .cpp/.h files under {src} — an empty lint run "
            "would falsely read as a pass; check the path argument",
            file=sys.stderr,
        )
        return 2

    cindex = try_load_libclang()
    mode = "libclang AST" if cindex else "regex fallback"

    errors: list[str] = []
    regex_errors: list[str] = []
    for path in files:
        lint = FileLint(path.relative_to(root), path.read_text(encoding="utf-8"))
        regex_lint_file(lint, regex_errors)
        if cindex:
            ast_errors: list[str] = []
            if ast_lint_file(cindex, root, lint, ast_errors):
                errors.extend(ast_errors)
            else:
                # Unparsable under the bare flags: regex findings stand in.
                errors.extend(e for e in regex_errors if e.startswith(f"{lint.rel}:"))

    # The regex pass is authoritative for the exit status: the AST pass can
    # only ever refine locations, never quietly pass what regex flags.
    def location_key(error: str) -> tuple[str, int]:
        file, line = error.split(":", 2)[:2]
        return file, int(line)

    reported = sorted(set(regex_errors) | set(errors), key=location_key)
    for error in reported:
        print(error)
    if reported:
        print(f"\n{len(reported)} violation(s) [{mode}].", file=sys.stderr)
        return 1
    print(f"geored_lint: clean [{mode}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
