// geored — command-line toolkit for the library.
//
//   geored topogen     generate a PlanetLab-like topology file
//   geored analyze     metric properties of a topology (file or synthetic)
//   geored embed       run a coordinate system and report accuracy
//   geored experiment  the paper's multi-strategy placement experiment
//   geored tracegen    synthesize a session-model access trace file
//   geored replay      replay a trace through the replicated KV store
//   geored stability   coordinate drift per round, Vivaldi vs RNP
//   geored verify      quick self-check of the paper's core results
//   geored scenario    run a declarative scenario file (scenarios/*.json)
//   geored serve       replay a workload through the serving data plane
//
// Every subcommand accepts --help. All randomness is seeded; identical
// invocations produce identical output.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/flags.h"
#include "common/point_set.h"
#include "common/serialize.h"
#include "common/significance.h"
#include "serve/request_router.h"
#include "workload/workload.h"
#include "core/evaluation.h"
#include "netcoord/stability.h"
#include "placement/strategy.h"
#include "scenario/runner.h"
#include "store/replay.h"
#include "topology/analysis.h"
#include "topology/planetlab_model.h"

using namespace geored;

namespace {

void add_topology_flags(FlagParser& parser) {
  parser.add_int("nodes", 226, "number of nodes in the synthetic topology");
  parser.add_int("topology-seed", 42, "seed of the synthetic topology");
  parser.add_string("in", "", "read a topology file instead of synthesizing one");
}

topo::Topology topology_from_flags(const FlagParser& parser) {
  if (!parser.get_string("in").empty()) {
    std::ifstream file(parser.get_string("in"));
    if (!file) throw std::invalid_argument("cannot open " + parser.get_string("in"));
    return topo::Topology::load(file);
  }
  topo::PlanetLabModelConfig config;
  config.node_count = static_cast<std::size_t>(parser.get_int("nodes"));
  return topo::generate_planetlab_like(config,
                                       static_cast<std::uint64_t>(parser.get_int("topology-seed")));
}

core::CoordSystem coord_system_from_name(const std::string& name) {
  if (name == "rnp") return core::CoordSystem::kRnp;
  if (name == "vivaldi") return core::CoordSystem::kVivaldi;
  if (name == "gnp") return core::CoordSystem::kGnp;
  throw std::invalid_argument("unknown coordinate system: " + name +
                              " (expected rnp|vivaldi|gnp)");
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

int handled_help(const FlagParser& parser) {
  std::fputs(parser.help().c_str(), stdout);
  return 0;
}

int cmd_topogen(const std::vector<std::string>& args) {
  FlagParser parser("geored topogen", "generate a synthetic PlanetLab-like topology file");
  parser.add_int("nodes", 226, "number of nodes");
  parser.add_int("topology-seed", 42, "generation seed");
  parser.add_string("out", "", "output file (default: stdout)");
  parser.parse(args);
  if (parser.help_requested()) return handled_help(parser);

  topo::PlanetLabModelConfig config;
  config.node_count = static_cast<std::size_t>(parser.get_int("nodes"));
  const auto topology = topo::generate_planetlab_like(
      config, static_cast<std::uint64_t>(parser.get_int("topology-seed")));
  if (parser.get_string("out").empty()) {
    topology.save(std::cout);
  } else {
    std::ofstream file(parser.get_string("out"));
    if (!file) throw std::invalid_argument("cannot write " + parser.get_string("out"));
    topology.save(file);
    std::printf("wrote %zu-node topology to %s\n", topology.size(),
                parser.get_string("out").c_str());
  }
  return 0;
}

int cmd_analyze(const std::vector<std::string>& args) {
  FlagParser parser("geored analyze", "metric properties of a latency matrix");
  add_topology_flags(parser);
  parser.parse(args);
  if (parser.help_requested()) return handled_help(parser);

  const auto topology = topology_from_flags(parser);
  std::printf("%zu nodes\n%s\n", topology.size(),
              topo::analyze(topology).to_string().c_str());
  return 0;
}

int cmd_embed(const std::vector<std::string>& args) {
  FlagParser parser("geored embed", "embed a topology and report prediction accuracy");
  add_topology_flags(parser);
  parser.add_string("system", "rnp", "coordinate system: rnp|vivaldi|gnp");
  parser.add_int("rounds", 256, "gossip rounds (rnp/vivaldi)");
  parser.add_int("seed", 7, "embedding seed");
  parser.parse(args);
  if (parser.help_requested()) return handled_help(parser);

  const auto topology = topology_from_flags(parser);
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  coord::GossipConfig gossip;
  gossip.rounds = static_cast<std::size_t>(parser.get_int("rounds"));
  std::vector<coord::NetworkCoordinate> coords;
  switch (coord_system_from_name(parser.get_string("system"))) {
    case core::CoordSystem::kRnp:
      coords = coord::run_rnp(topology, coord::RnpConfig{}, gossip, seed);
      break;
    case core::CoordSystem::kVivaldi:
      coords = coord::run_vivaldi(topology, coord::VivaldiConfig{}, gossip, seed);
      break;
    case core::CoordSystem::kGnp:
      coords = coord::run_gnp(topology, coord::GnpConfig{});
      break;
  }
  std::printf("%s over %zu nodes:\n%s\n", parser.get_string("system").c_str(),
              topology.size(), coord::evaluate_embedding(topology, coords).to_string().c_str());
  return 0;
}

int cmd_experiment(const std::vector<std::string>& args) {
  FlagParser parser("geored experiment",
                    "multi-strategy placement experiment (the paper's protocol)");
  parser.add_int("nodes", 226, "topology nodes");
  parser.add_int("topology-seed", 42, "topology seed");
  parser.add_string("system", "rnp", "coordinate system: rnp|vivaldi|gnp");
  parser.add_int("dcs", 20, "candidate data centers");
  parser.add_int("k", 3, "degree of replication");
  parser.add_int("m", 4, "micro-clusters per replica");
  parser.add_int("runs", 30, "independent runs");
  parser.add_int("quorum", 1, "replicas a client must reach");
  parser.add_string("strategies", "random,offline,online,optimal",
                    "comma-separated: random|offline|online|optimal|greedy|hotzone|local-search");
  parser.add_string("collector", "direct",
                    "summary collection path: direct|hierarchical|decentralized|rpc");
  parser.parse(args);
  if (parser.help_requested()) return handled_help(parser);

  topo::PlanetLabModelConfig topo_config;
  topo_config.node_count = static_cast<std::size_t>(parser.get_int("nodes"));
  const core::Environment env(topo_config,
                              static_cast<std::uint64_t>(parser.get_int("topology-seed")),
                              coord_system_from_name(parser.get_string("system")),
                              coord::GossipConfig{});

  core::ExperimentConfig config;
  config.num_datacenters = static_cast<std::size_t>(parser.get_int("dcs"));
  config.k = static_cast<std::size_t>(parser.get_int("k"));
  config.micro_clusters = static_cast<std::size_t>(parser.get_int("m"));
  config.runs = static_cast<std::size_t>(parser.get_int("runs"));
  config.quorum = static_cast<std::size_t>(parser.get_int("quorum"));
  config.strategies.clear();
  for (const auto& name : split_csv(parser.get_string("strategies"))) {
    config.strategies.push_back(place::strategy_kind(name));
  }
  config.collector = parser.get_string("collector");

  const auto result = run_experiment(env, config);
  std::printf("%-18s %14s %12s %16s\n", "strategy", "avg delay", "95% CI", "vs first");
  const auto& reference = result.outcomes.front();
  for (const auto& outcome : result.outcomes) {
    std::string significance = "-";
    if (&outcome != &reference) {
      const auto test =
          paired_t_test(outcome.per_run_delay_ms, reference.per_run_delay_ms);
      std::ostringstream os;
      os.precision(3);
      os << (test.mean_difference > 0 ? "+" : "") << test.mean_difference << "ms p="
         << test.p_value;
      significance = os.str();
    }
    std::printf("%-18s %12.2fms %10.2fms %12s\n", outcome.name.c_str(),
                outcome.average_delay_ms.mean, outcome.average_delay_ms.ci95_halfwidth,
                significance.c_str());
  }
  return 0;
}

int cmd_tracegen(const std::vector<std::string>& args) {
  FlagParser parser("geored tracegen", "synthesize a session-model access trace");
  parser.add_int("clients", 100, "number of clients");
  parser.add_int("objects", 1000, "object catalogue size");
  parser.add_double("duration-s", 600.0, "trace duration, seconds");
  parser.add_double("zipf", 0.9, "object popularity exponent");
  parser.add_double("write-fraction", 0.05, "probability a request writes");
  parser.add_int("seed", 1, "generation seed");
  parser.add_string("out", "", "output file (default: stdout)");
  parser.parse(args);
  if (parser.help_requested()) return handled_help(parser);

  wl::SessionTraceConfig config;
  config.clients = static_cast<std::size_t>(parser.get_int("clients"));
  config.objects = static_cast<std::size_t>(parser.get_int("objects"));
  config.duration_ms = parser.get_double("duration-s") * 1000.0;
  config.zipf_exponent = parser.get_double("zipf");
  config.write_fraction = parser.get_double("write-fraction");
  const auto trace =
      wl::generate_session_trace(config, static_cast<std::uint64_t>(parser.get_int("seed")));
  if (parser.get_string("out").empty()) {
    trace.save(std::cout);
  } else {
    std::ofstream file(parser.get_string("out"));
    if (!file) throw std::invalid_argument("cannot write " + parser.get_string("out"));
    trace.save(file);
    const auto stats = trace.stats();
    std::printf("wrote %zu events (%zu clients, %zu objects, %.1f%% writes) to %s\n",
                stats.events, stats.distinct_clients, stats.distinct_objects,
                100.0 * stats.write_fraction, parser.get_string("out").c_str());
  }
  return 0;
}

int cmd_replay(const std::vector<std::string>& args) {
  FlagParser parser("geored replay", "replay an access trace through the KV store");
  add_topology_flags(parser);
  parser.add_string("trace", "", "trace file (default: synthesize a 10-minute trace)");
  parser.add_int("dcs", 15, "candidate data centers (first nodes of the topology)");
  parser.add_int("groups", 16, "object groups");
  parser.add_int("n", 3, "replicas per group");
  parser.add_int("r", 1, "read quorum");
  parser.add_int("w", 2, "write quorum");
  parser.add_double("epoch-s", 60.0, "placement epoch period, seconds (0 = static)");
  parser.add_int("seed", 1, "store / embedding seed");
  parser.parse(args);
  if (parser.help_requested()) return handled_help(parser);

  const auto topology = topology_from_flags(parser);
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  const auto coords = coord::run_rnp(topology, coord::RnpConfig{}, coord::GossipConfig{}, seed);

  const auto dcs = static_cast<std::size_t>(parser.get_int("dcs"));
  if (dcs >= topology.size()) throw std::invalid_argument("--dcs must leave client nodes");
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < dcs; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i), coords[i].position,
                          std::numeric_limits<double>::infinity()});
  }
  std::vector<topo::NodeId> clients;
  std::vector<Point> client_coords;
  for (std::size_t i = dcs; i < topology.size(); ++i) {
    clients.push_back(static_cast<topo::NodeId>(i));
    client_coords.push_back(coords[i].position);
  }

  wl::Trace trace;
  if (parser.get_string("trace").empty()) {
    wl::SessionTraceConfig trace_config;
    trace_config.clients = clients.size();
    const auto generated = wl::generate_session_trace(trace_config, seed);
    trace = generated;
  } else {
    std::ifstream file(parser.get_string("trace"));
    if (!file) throw std::invalid_argument("cannot open " + parser.get_string("trace"));
    trace = wl::Trace::load(file);
  }

  sim::Simulator simulator;
  sim::Network network(simulator, topology);
  store::StoreConfig store_config;
  store_config.quorum = {static_cast<std::size_t>(parser.get_int("n")),
                         static_cast<std::size_t>(parser.get_int("r")),
                         static_cast<std::size_t>(parser.get_int("w"))};
  store_config.groups = static_cast<std::size_t>(parser.get_int("groups"));
  store::ReplicatedKvStore store(simulator, network, candidates, store_config, seed);

  store::ReplayConfig replay_config;
  replay_config.placement_epoch_ms = parser.get_double("epoch-s") * 1000.0;
  const auto report =
      store::replay_trace(simulator, store, trace, clients, client_coords, replay_config);

  std::printf("replayed %zu events over %.1f s\n", trace.size(),
              trace.duration_ms() / 1000.0);
  std::printf("reads: %llu (mean %.1f ms, %llu stale, %llu not-found)\n",
              static_cast<unsigned long long>(report.reads), report.get_mean_ms,
              static_cast<unsigned long long>(report.stale_reads),
              static_cast<unsigned long long>(report.not_found_reads));
  std::printf("writes: %llu (mean %.1f ms)\n",
              static_cast<unsigned long long>(report.writes), report.put_mean_ms);
  std::printf("placement epochs: %zu, migrations: %zu\n", report.epochs, report.migrations);
  if (!report.get_mean_by_epoch.empty()) {
    std::printf("read latency by epoch:");
    for (const double mean : report.get_mean_by_epoch) std::printf(" %.1f", mean);
    std::printf(" ms\n");
  }
  std::printf("traffic: %s\n", network.stats().to_string().c_str());
  return 0;
}

int cmd_stability(const std::vector<std::string>& args) {
  FlagParser parser("geored stability",
                    "coordinate drift per gossip round: Vivaldi vs RNP");
  add_topology_flags(parser);
  parser.add_int("rounds", 256, "total gossip rounds (half of them warmup)");
  parser.add_int("seed", 7, "gossip seed");
  parser.parse(args);
  if (parser.help_requested()) return handled_help(parser);

  const auto topology = topology_from_flags(parser);
  coord::StabilityConfig config;
  config.gossip.rounds = static_cast<std::size_t>(parser.get_int("rounds"));
  config.warmup_rounds = config.gossip.rounds / 2;
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));

  std::printf("%-10s %14s %14s %16s\n", "protocol", "drift mean", "drift p90",
              "final abs p50");
  for (const auto protocol : {coord::Protocol::kVivaldi, coord::Protocol::kRnp}) {
    const auto report = coord::measure_stability(topology, protocol, config, seed);
    std::printf("%-10s %12.3fms %12.3fms %14.2fms\n",
                protocol == coord::Protocol::kVivaldi ? "vivaldi" : "rnp",
                report.displacement_per_round_ms.mean,
                report.displacement_per_round_ms.p90, report.final_abs_error_p50_ms);
  }
  return 0;
}

int cmd_verify(const std::vector<std::string>& args) {
  FlagParser parser("geored verify",
                    "quick end-to-end self-check: runs a small placement experiment and "
                    "asserts the paper's core results hold on this build");
  parser.add_int("runs", 10, "runs per check (more = slower, tighter)");
  parser.parse(args);
  if (parser.help_requested()) return handled_help(parser);

  topo::PlanetLabModelConfig topo_config;
  topo_config.node_count = 140;
  const core::Environment env(topo_config, 42, core::CoordSystem::kRnp,
                              coord::GossipConfig{});
  core::ExperimentConfig config;
  config.num_datacenters = 15;
  config.runs = static_cast<std::size_t>(parser.get_int("runs"));
  const auto result = run_experiment(env, config);

  const double random = result.mean_of(place::strategy_kind("random"));
  const double offline = result.mean_of(place::strategy_kind("offline_kmeans"));
  const double online = result.mean_of(place::strategy_kind("online"));
  const double optimal = result.mean_of(place::strategy_kind("optimal"));
  const auto quality = env.embedding_quality();

  struct Check {
    const char* what;
    bool ok;
  };
  const std::vector<Check> checks{
      {"RNP median prediction error under 15 ms", quality.absolute_error_ms.p50 < 15.0},
      {"optimal <= online clustering", optimal <= online + 1e-9},
      {"optimal <= offline k-means", optimal <= offline + 1e-9},
      {"online clustering beats random by >= 25%", online < 0.75 * random},
      {"online clustering within 35% of optimal", online < 1.35 * optimal},
  };
  bool all_ok = true;
  for (const auto& check : checks) {
    std::printf("[%s] %s\n", check.ok ? "PASS" : "FAIL", check.what);
    all_ok &= check.ok;
  }
  std::printf("%s (random %.1f / offline %.1f / online %.1f / optimal %.1f ms)\n",
              all_ok ? "verify OK" : "verify FAILED", random, offline, online, optimal);
  return all_ok ? 0 : 1;
}

int cmd_scenario(const std::vector<std::string>& args) {
  FlagParser parser("geored scenario run <file>",
                    "run a declarative scenario file: seeded dynamic experiment with "
                    "failures, churn, and flash crowds; prints the per-epoch sweep table");
  parser.add_int("seed", -1, "override the scenario file's seed (-1 keeps it)");
  parser.add_string("out", "", "write runs/<name>.jsonl + tables/<name>.txt under this dir");
  parser.add_bool("print-jsonl", false, "dump the per-epoch jsonl to stdout");
  parser.add_string("timings", "",
                    "write the per-epoch stage-timing sidecar (jsonl) to this file; "
                    "timings are observational and vary run to run, so they never "
                    "appear in the deterministic transcript");
  const auto positional = parser.parse(args);
  if (parser.help_requested()) return handled_help(parser);
  if (positional.size() != 2 || positional[0] != "run") {
    std::fputs("usage: geored scenario run <file.json> [--seed N] [--out DIR]\n", stderr);
    return 2;
  }

  scenario::ScenarioConfig config = scenario::load_scenario_file(positional[1]);
  if (parser.get_int("seed") >= 0) {
    config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  }
  std::printf("scenario %s: %s\n", config.name.c_str(), config.description.c_str());
  std::printf("seed %llu, %zu epochs x %.0f ms, %zu nodes (%zu DCs), %zu group(s)\n\n",
              static_cast<unsigned long long>(config.seed), config.epochs, config.epoch_ms,
              config.topology.nodes, config.topology.dcs, config.fleet.groups);

  const scenario::ScenarioResult result = scenario::run_scenario(config);
  std::fputs(result.table().c_str(), stdout);
  if (parser.get_bool("print-jsonl")) std::fputs(result.jsonl().c_str(), stdout);
  if (!parser.get_string("out").empty()) {
    const std::string jsonl_path =
        scenario::write_artifacts(config, result, parser.get_string("out"));
    std::printf("\nwrote %s\n", jsonl_path.c_str());
  }
  if (!parser.get_string("timings").empty()) {
    std::ofstream timings(parser.get_string("timings"), std::ios::binary);
    if (!timings.good()) {
      std::fprintf(stderr, "cannot write %s\n", parser.get_string("timings").c_str());
      return 1;
    }
    timings << result.timings_jsonl();
    std::printf("wrote %s\n", parser.get_string("timings").c_str());
  }
  return 0;
}

int cmd_serve(const std::vector<std::string>& args) {
  FlagParser parser("geored serve",
                    "replay a seeded workload through the serving data plane: route "
                    "every request to its nearest up replica with admission control "
                    "and report client-observed p50/p99/p999 latency. With "
                    "--checkpoint, serving runs against the placement restored from a "
                    "manager checkpoint (the world flags must match the run that "
                    "wrote it); otherwise a warmup epoch derives the placement from "
                    "the same workload.");
  add_topology_flags(parser);
  parser.add_int("dcs", 15, "candidate data centers (first nodes of the topology)");
  parser.add_int("k", 3, "degree of replication");
  parser.add_int("m", 4, "micro-clusters per replica");
  parser.add_double("duration-s", 60.0, "workload duration, seconds");
  parser.add_double("mean-rate", 0.0005, "per-client accesses per millisecond");
  parser.add_double("sigma", 0.2, "lognormal rate spread across clients");
  parser.add_int("seed", 1, "workload / embedding seed");
  parser.add_double("service-ms", 0.05, "virtual service time per request");
  parser.add_int("queue-cap", 64, "max resident requests per replica");
  parser.add_string("policy", "spill", "full-queue policy: spill|reject");
  parser.add_string("checkpoint", "", "restore the manager from this checkpoint file");
  parser.add_string("checkpoint-out", "",
                    "write the manager checkpoint after warmup to this file");
  parser.parse(args);
  if (parser.help_requested()) return handled_help(parser);

  const auto topology = topology_from_flags(parser);
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  const auto coords =
      coord::run_rnp(topology, coord::RnpConfig{}, coord::GossipConfig{}, seed);

  const auto dcs = static_cast<std::size_t>(parser.get_int("dcs"));
  if (dcs >= topology.size()) throw std::invalid_argument("--dcs must leave client nodes");
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < dcs; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i), coords[i].position,
                          std::numeric_limits<double>::infinity()});
  }

  core::ManagerConfig manager_config;
  manager_config.replication_degree = static_cast<std::size_t>(parser.get_int("k"));
  manager_config.summarizer.max_clusters = static_cast<std::size_t>(parser.get_int("m"));
  core::ReplicationManager manager(candidates, manager_config, seed);

  const std::size_t clients = topology.size() - dcs;
  const double duration_ms = parser.get_double("duration-s") * 1000.0;
  const auto workload = wl::make_uniform_workload(clients, parser.get_double("mean-rate"),
                                                  parser.get_double("sigma"), seed);
  const Rng root(seed);

  if (!parser.get_string("checkpoint").empty()) {
    std::ifstream file(parser.get_string("checkpoint"), std::ios::binary);
    if (!file) {
      throw std::invalid_argument("cannot open " + parser.get_string("checkpoint"));
    }
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                                    std::istreambuf_iterator<char>());
    ByteReader reader(bytes);
    manager.restore(reader);
    std::printf("restored checkpoint %s (placement degree %zu)\n",
                parser.get_string("checkpoint").c_str(), manager.placement().size());
  } else {
    // Warmup: one placement epoch over the same demand the replay serves,
    // so the placement reflects the workload it is about to face.
    const auto warmup = wl::sample_fleet_arrivals(*workload, 0.0, duration_ms, root.fork(0));
    for (const auto& arrival : warmup) {
      manager.serve(coords[dcs + arrival.client].position);
    }
    manager.run_epoch();
    std::printf("warmup epoch: %zu accesses, placement degree %zu\n", warmup.size(),
                manager.placement().size());
  }
  if (!parser.get_string("checkpoint-out").empty()) {
    ByteWriter writer;
    manager.save(writer);
    std::ofstream file(parser.get_string("checkpoint-out"), std::ios::binary);
    if (!file) {
      throw std::invalid_argument("cannot write " + parser.get_string("checkpoint-out"));
    }
    file.write(reinterpret_cast<const char*>(writer.bytes().data()),
               static_cast<std::streamsize>(writer.bytes().size()));
    std::printf("wrote checkpoint %s (%zu bytes)\n",
                parser.get_string("checkpoint-out").c_str(), writer.bytes().size());
  }

  serve::ServeConfig serve_config;
  serve_config.service_ms = parser.get_double("service-ms");
  serve_config.queue_cap = static_cast<std::size_t>(parser.get_int("queue-cap"));
  if (parser.get_string("policy") == "reject") {
    serve_config.policy = serve::ServeConfig::Policy::kReject;
  } else if (parser.get_string("policy") != "spill") {
    throw std::invalid_argument("unknown policy: " + parser.get_string("policy") +
                                " (expected spill|reject)");
  }
  serve::RequestRouter router(serve_config);
  std::vector<serve::ReplicaSpec> replicas;
  for (const auto node : manager.placement()) {
    replicas.push_back({node, coords[node].position});
  }
  router.set_replicas(replicas);

  // The replay itself: one batched route over the merged arrival schedule
  // (the SIMD nearest-up scan plus the sequential admission pass), then the
  // per-request completion with the true topology RTT.
  const auto arrivals = wl::sample_fleet_arrivals(*workload, 0.0, duration_ms, root.fork(1));
  PointSet client_points;
  for (std::size_t c = 0; c < clients; ++c) {
    client_points.push_back(coords[dcs + c].position);
  }
  std::vector<std::size_t> indices;
  std::vector<double> nows;
  for (const auto& arrival : arrivals) {
    indices.push_back(arrival.client);
    nows.push_back(arrival.at_ms);
  }
  std::vector<serve::RouteDecision> decisions(arrivals.size());
  router.route_batch(client_points, indices.data(), arrivals.size(), nows.data(),
                     decisions.data());
  for (std::size_t j = 0; j < arrivals.size(); ++j) {
    if (!decisions[j].admitted()) continue;
    const auto client_node = static_cast<topo::NodeId>(dcs + arrivals[j].client);
    router.complete(decisions[j], topology.rtt_ms(client_node, decisions[j].replica));
  }

  const auto& stats = router.stats();
  const auto& histogram = router.histogram();
  std::printf("served %llu requests over %.1f s (%zu clients, %zu up replicas)\n",
              static_cast<unsigned long long>(stats.requests),
              duration_ms / 1000.0, clients, router.up_count());
  std::printf("admitted %llu (%llu spilled), rejected %llu, lost %llu\n",
              static_cast<unsigned long long>(stats.admitted),
              static_cast<unsigned long long>(stats.spilled),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.lost));
  std::printf("latency: p50 %.3f ms, p99 %.3f ms, p999 %.3f ms, mean %.3f ms\n",
              histogram.quantile(0.50), histogram.quantile(0.99),
              histogram.quantile(0.999), histogram.mean_ms());
  return 0;
}

void print_usage() {
  std::puts(
      "geored — geo-replication toolkit\n"
      "usage: geored <command> [flags]  (each command accepts --help)\n\n"
      "commands:\n"
      "  topogen     generate a synthetic PlanetLab-like topology file\n"
      "  analyze     metric properties of a latency matrix\n"
      "  embed       coordinate-system prediction accuracy\n"
      "  experiment  the paper's multi-strategy placement experiment\n"
      "  tracegen    synthesize a session-model access trace\n"
      "  replay      replay a trace through the replicated KV store\n"
      "  stability   coordinate drift per round: Vivaldi vs RNP\n"
      "  verify      quick self-check of the paper's core results\n"
      "  scenario    run a declarative scenario file (scenario run <file>)\n"
      "  serve       replay a workload through the serving data plane");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 0;
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "topogen") return cmd_topogen(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "embed") return cmd_embed(args);
    if (command == "experiment") return cmd_experiment(args);
    if (command == "tracegen") return cmd_tracegen(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "verify") return cmd_verify(args);
    if (command == "stability") return cmd_stability(args);
    if (command == "scenario") return cmd_scenario(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "--help" || command == "help") {
      print_usage();
      return 0;
    }
    std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
    print_usage();
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
