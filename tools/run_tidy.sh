#!/usr/bin/env bash
# Run clang-tidy over the library sources using the checked-in .clang-tidy.
#
# Usage: tools/run_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Requires a compile-commands database; any CMake configure with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (all presets set it) produces one.
# Exits 0 when clang-tidy is clean, 1 on findings, and 0 with a SKIP notice
# when no clang-tidy binary is installed (so local runs on minimal machines
# do not fail; CI installs clang-tidy and runs the real thing).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-}"

if [[ -z "${build_dir}" ]]; then
  for candidate in "${repo_root}/build" "${repo_root}/build/release" \
                   "${repo_root}/build/asan-ubsan"; do
    if [[ -f "${candidate}/compile_commands.json" ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi

if [[ -z "${build_dir}" || ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "error: no compile_commands.json found; configure with" >&2
  echo "  cmake --preset release   (or -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 2
fi

# Fail fast on a stale database: tidy findings against yesterday's flags or
# file list are noise at best and silently skip new sources at worst. Any
# checked-in CMakeLists.txt newer than the database means the build graph
# may have changed since it was generated.
db="${build_dir}/compile_commands.json"
while IFS= read -r cmakelists; do
  if [[ "${cmakelists}" -nt "${db}" ]]; then
    echo "error: ${db} is older than ${cmakelists};" >&2
    echo "  re-run cmake in ${build_dir} to regenerate the database" >&2
    exit 2
  fi
done < <(find "${repo_root}" -path "${repo_root}/build" -prune -o \
         -name 'CMakeLists.txt' -print)

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "${tidy_bin}" ]]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      tidy_bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${tidy_bin}" ]]; then
  echo "SKIP: no clang-tidy binary found (set CLANG_TIDY=... to override)." >&2
  exit 0
fi

mapfile -t sources < <(find "${repo_root}/src" -name '*.cpp' | sort)
echo "run_tidy: ${tidy_bin} over ${#sources[@]} files (database: ${build_dir})"

runner=""
for candidate in run-clang-tidy run-clang-tidy-19 run-clang-tidy-18 \
                 run-clang-tidy-17 run-clang-tidy-16 run-clang-tidy-15; do
  if command -v "${candidate}" > /dev/null 2>&1; then
    runner="${candidate}"
    break
  fi
done

if [[ -n "${runner}" ]]; then
  "${runner}" -clang-tidy-binary "${tidy_bin}" -p "${build_dir}" -quiet \
    "${repo_root}/src/.*\.cpp$"
else
  status=0
  for source in "${sources[@]}"; do
    "${tidy_bin}" -p "${build_dir}" --quiet "${source}" || status=1
  done
  exit "${status}"
fi
