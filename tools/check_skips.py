#!/usr/bin/env python3
"""Fail CI on silent test skips.

A skipped test is acceptable only when its output states *why* it was
skipped — a `GTEST_SKIP() << "reason"` message or a harness line starting
with `SKIP:`. A skip with no reason is indistinguishable from coverage
quietly rotting, so this checker turns it into a hard failure.

Usage:
    check_skips.py --ctest-output FILE --log Testing/Temporary/LastTest.log

`--ctest-output` is the captured stdout of the ctest run (the "did not
run:" summary names the skipped tests — SKIP_RETURN_CODE skips are logged
as plain passes in LastTest.log, so the summary is the authoritative list).
`--log` is CTest's LastTest.log, which holds each test's full output.

Exit status: 0 when every skip carries a visible reason (the skips and
their reasons are printed for the CI log), 1 when any skip is silent.
"""

import argparse
import re
import sys

# "  11 - Dcheck.MessageMatchesCheckFormatWhenEnabled (Skipped)"
SKIPPED_LINE = re.compile(r"^\s*\d+\s+-\s+(?P<name>\S.*?)\s+\(Skipped\)\s*$")
# LastTest.log section header: "11/810 Testing: Dcheck.MessageMatches..."
SECTION_HEADER = re.compile(r"^\d+/\d+ Testing: (?P<name>\S.*?)\s*$", re.MULTILINE)
# A harness-level visible reason ("SKIP: <why>").
HARNESS_REASON = re.compile(r"^SKIP[: ]\s*(?P<why>\S.*)$", re.MULTILINE)
# A gtest-level visible reason: "path/to/test.cpp:100: Skipped\n<why>".
GTEST_REASON = re.compile(r"^\S+:\d+: Skipped\r?\n(?P<why>\S.*)$", re.MULTILINE)


def skipped_test_names(ctest_output: str) -> list:
    names = []
    for line in ctest_output.splitlines():
        found = SKIPPED_LINE.match(line)
        if found:
            names.append(found.group("name"))
    return names


def split_sections(log_text: str) -> dict:
    """Maps test name -> that test's chunk of LastTest.log."""
    sections = {}
    headers = list(SECTION_HEADER.finditer(log_text))
    for i, header in enumerate(headers):
        end = headers[i + 1].start() if i + 1 < len(headers) else len(log_text)
        sections[header.group("name")] = log_text[header.start():end]
    return sections


def skip_reason(section: str):
    for pattern in (HARNESS_REASON, GTEST_REASON):
        found = pattern.search(section)
        if found:
            return found.group("why").strip()
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ctest-output", required=True,
                        help="captured stdout of the ctest run")
    parser.add_argument("--log", required=True,
                        help="CTest's Testing/Temporary/LastTest.log")
    args = parser.parse_args()

    with open(args.ctest_output, encoding="utf-8", errors="replace") as f:
        skipped = skipped_test_names(f.read())
    if not skipped:
        print("check_skips: no skipped tests")
        return 0

    with open(args.log, encoding="utf-8", errors="replace") as f:
        sections = split_sections(f.read())

    silent = []
    for name in skipped:
        section = sections.get(name)
        reason = skip_reason(section) if section is not None else None
        if reason is None:
            silent.append(name)
        else:
            print(f"check_skips: SKIPPED {name}: {reason}")

    if silent:
        print(f"\ncheck_skips: {len(silent)} silent skip(s) — every skipped test "
              "must state its reason (GTEST_SKIP() << \"why\" or an echoed "
              "'SKIP: why'):", file=sys.stderr)
        for name in silent:
            print(f"  {name}", file=sys.stderr)
        return 1
    print(f"check_skips: all {len(skipped)} skip(s) carry a visible reason")
    return 0


if __name__ == "__main__":
    sys.exit(main())
