#include "topology/planetlab_model.h"

#include <gtest/gtest.h>

#include "topology/analysis.h"

namespace geored::topo {
namespace {

TEST(PlanetLabModel, DeterministicInSeed) {
  PlanetLabModelConfig config;
  config.node_count = 30;
  const Topology a = generate_planetlab_like(config, 11);
  const Topology b = generate_planetlab_like(config, 11);
  ASSERT_EQ(a.size(), b.size());
  for (NodeId i = 0; i < a.size(); ++i) {
    for (NodeId j = i + 1; j < a.size(); ++j) {
      EXPECT_EQ(a.rtt_ms(i, j), b.rtt_ms(i, j));
    }
  }
}

TEST(PlanetLabModel, DifferentSeedsDiffer) {
  PlanetLabModelConfig config;
  config.node_count = 30;
  const Topology a = generate_planetlab_like(config, 1);
  const Topology b = generate_planetlab_like(config, 2);
  bool any_different = false;
  for (NodeId i = 0; i < a.size() && !any_different; ++i) {
    for (NodeId j = i + 1; j < a.size(); ++j) {
      if (a.rtt_ms(i, j) != b.rtt_ms(i, j)) {
        any_different = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(PlanetLabModel, NodeCountAndRegionsValid) {
  PlanetLabModelConfig config;
  config.node_count = 226;
  const Topology t = generate_planetlab_like(config, 42);
  EXPECT_EQ(t.size(), 226u);
  EXPECT_EQ(t.region_names().size(), config.regions.size());
  for (const auto& node : t.nodes()) {
    EXPECT_LT(node.region, config.regions.size());
    EXPECT_GE(node.access_ms, config.access_ms_min);
    EXPECT_LE(node.access_ms, config.access_ms_max);
    EXPECT_GE(node.location.lat_deg, -85.0);
    EXPECT_LE(node.location.lat_deg, 85.0);
  }
}

TEST(PlanetLabModel, AllRttsPositiveAndBounded) {
  PlanetLabModelConfig config;
  config.node_count = 100;
  const Topology t = generate_planetlab_like(config, 3);
  for (NodeId i = 0; i < t.size(); ++i) {
    for (NodeId j = i + 1; j < t.size(); ++j) {
      const double rtt = t.rtt_ms(i, j);
      EXPECT_GE(rtt, config.min_rtt_ms);
      EXPECT_LT(rtt, 2000.0);  // nothing on Earth is slower than 2 s RTT here
    }
  }
}

TEST(PlanetLabModel, RejectsInvalidConfig) {
  PlanetLabModelConfig config;
  config.node_count = 1;
  EXPECT_THROW(generate_planetlab_like(config, 1), std::invalid_argument);
  config = {};
  config.regions.clear();
  EXPECT_THROW(generate_planetlab_like(config, 1), std::invalid_argument);
  config = {};
  config.path_inflation_min = 0.5;
  EXPECT_THROW(generate_planetlab_like(config, 1), std::invalid_argument);
  config = {};
  config.tiv_pair_fraction = 1.5;
  EXPECT_THROW(generate_planetlab_like(config, 1), std::invalid_argument);
}

TEST(PlanetLabModel, DefaultRegionWeightsCoverTheGlobe) {
  const auto regions = default_planetlab_regions();
  EXPECT_GE(regions.size(), 5u);
  double total = 0.0;
  for (const auto& region : regions) total += region.weight;
  EXPECT_NEAR(total, 1.0, 0.02);
}

/// The structural properties that make the substitution for the PlanetLab
/// matrix faithful (see DESIGN.md): regional clustering, wide-area scale,
/// and mild triangle-inequality violations.
class MetricPropertiesTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricPropertiesTest, MatchesMeasuredWanStructure) {
  PlanetLabModelConfig config;
  const Topology t = generate_planetlab_like(config, GetParam());
  const MetricProperties props = analyze(t, 50000, GetParam());

  // Intra-region latencies sit well below inter-region ones.
  EXPECT_GT(props.intra_region_rtt.count, 100u);
  EXPECT_LT(props.intra_region_rtt.mean, 0.4 * props.inter_region_rtt.mean);
  EXPECT_LT(props.intra_region_rtt.p50, 60.0);
  EXPECT_GT(props.inter_region_rtt.p50, 80.0);

  // Wide-area scale: transcontinental pairs in the hundreds of ms.
  EXPECT_GT(props.all_pairs_rtt.max, 250.0);
  EXPECT_GT(props.all_pairs_rtt.mean, 60.0);
  EXPECT_LT(props.all_pairs_rtt.mean, 400.0);

  // A small but non-zero share of violated triangles, as in measured data.
  EXPECT_GT(props.triangle_violation_rate, 0.005);
  EXPECT_LT(props.triangle_violation_rate, 0.30);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertiesTest,
                         ::testing::Values(1, 42, 1234, 99991));

}  // namespace
}  // namespace geored::topo
