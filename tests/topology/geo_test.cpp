#include "topology/geo.h"

#include <gtest/gtest.h>

namespace geored::topo {
namespace {

TEST(Geo, HaversineZeroForSamePoint) {
  const GeoLocation nyc{40.71, -74.01};
  EXPECT_DOUBLE_EQ(haversine_km(nyc, nyc), 0.0);
}

TEST(Geo, HaversineIsSymmetric) {
  const GeoLocation a{40.71, -74.01};
  const GeoLocation b{51.51, -0.13};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Geo, KnownCityDistances) {
  const GeoLocation nyc{40.7128, -74.0060};
  const GeoLocation london{51.5074, -0.1278};
  const GeoLocation tokyo{35.6762, 139.6503};
  const GeoLocation sydney{-33.8688, 151.2093};
  // Published great-circle distances (spherical Earth, ~0.5% tolerance).
  EXPECT_NEAR(haversine_km(nyc, london), 5570.0, 30.0);
  EXPECT_NEAR(haversine_km(nyc, tokyo), 10850.0, 60.0);
  EXPECT_NEAR(haversine_km(london, sydney), 16990.0, 90.0);
}

TEST(Geo, AntipodalIsHalfCircumference) {
  const GeoLocation a{0.0, 0.0};
  const GeoLocation b{0.0, 180.0};
  EXPECT_NEAR(haversine_km(a, b), 6371.0 * 3.14159265, 1.0);
}

TEST(Geo, RttFloorScalesWithDistance) {
  const GeoLocation nyc{40.7128, -74.0060};
  const GeoLocation london{51.5074, -0.1278};
  // ~5570 km at 100 km per ms of RTT -> ~56 ms.
  EXPECT_NEAR(geodesic_rtt_floor_ms(nyc, london), 55.7, 0.5);
  EXPECT_DOUBLE_EQ(geodesic_rtt_floor_ms(nyc, nyc), 0.0);
}

TEST(Geo, CrossingTheDateLine) {
  const GeoLocation east{0.0, 179.0};
  const GeoLocation west{0.0, -179.0};
  // 2 degrees of longitude at the equator ~ 222 km, not ~39,700 km.
  EXPECT_NEAR(haversine_km(east, west), 222.4, 2.0);
}

}  // namespace
}  // namespace geored::topo
