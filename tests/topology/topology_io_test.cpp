#include <gtest/gtest.h>

#include <sstream>

#include "topology/planetlab_model.h"
#include "topology/topology.h"

namespace geored::topo {
namespace {

TEST(TopologyIo, SaveLoadRoundTrip) {
  PlanetLabModelConfig config;
  config.node_count = 20;
  const Topology original = generate_planetlab_like(config, 7);

  std::stringstream stream;
  original.save(stream);
  const Topology loaded = Topology::load(stream);

  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.region_names(), original.region_names());
  for (NodeId i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.node(i).region, original.node(i).region);
    EXPECT_NEAR(loaded.node(i).location.lat_deg, original.node(i).location.lat_deg, 1e-4);
    for (NodeId j = i + 1; j < original.size(); ++j) {
      EXPECT_NEAR(loaded.rtt_ms(i, j), original.rtt_ms(i, j),
                  1e-4 * original.rtt_ms(i, j));
    }
  }
}

TEST(TopologyIo, LoadRejectsMalformedStream) {
  std::stringstream truncated("3 0\n0 0 0 0\n");
  EXPECT_THROW(Topology::load(truncated), std::invalid_argument);
  std::stringstream garbage("not-a-topology");
  EXPECT_THROW(Topology::load(garbage), std::invalid_argument);
}

TEST(TopologyIo, FromRttMatrixAveragesAsymmetry) {
  std::stringstream stream("3\n0 10 20\n30 0 40\n60 80 0\n");
  const Topology t = Topology::from_rtt_matrix_stream(stream);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.rtt_ms(0, 1), 20.0);  // (10+30)/2
  EXPECT_DOUBLE_EQ(t.rtt_ms(0, 2), 40.0);  // (20+60)/2
  EXPECT_DOUBLE_EQ(t.rtt_ms(1, 2), 60.0);  // (40+80)/2
  // Nodes carry no geography.
  EXPECT_EQ(t.node(0).region, 0xffffffffu);
}

TEST(TopologyIo, FromRttMatrixRejectsBadInput) {
  std::stringstream tiny("1\n0\n");
  EXPECT_THROW(Topology::from_rtt_matrix_stream(tiny), std::invalid_argument);
  std::stringstream negative("2\n0 -5\n-5 0\n");
  EXPECT_THROW(Topology::from_rtt_matrix_stream(negative), std::invalid_argument);
  std::stringstream truncated("3\n0 1 2\n");
  EXPECT_THROW(Topology::from_rtt_matrix_stream(truncated), std::invalid_argument);
}

TEST(TopologySubset, PreservesRttsAndMetadata) {
  PlanetLabModelConfig config;
  config.node_count = 20;
  const Topology full = generate_planetlab_like(config, 7);
  const std::vector<NodeId> picked{3, 17, 0, 9};
  const Topology sub = full.subset(picked);
  ASSERT_EQ(sub.size(), 4u);
  EXPECT_EQ(sub.region_names(), full.region_names());
  for (NodeId i = 0; i < picked.size(); ++i) {
    EXPECT_EQ(sub.node(i).region, full.node(picked[i]).region);
    for (NodeId j = i + 1; j < picked.size(); ++j) {
      EXPECT_EQ(sub.rtt_ms(i, j), full.rtt_ms(picked[i], picked[j]));
    }
  }
}

TEST(TopologySubset, RejectsBadSelections) {
  PlanetLabModelConfig config;
  config.node_count = 10;
  const Topology full = generate_planetlab_like(config, 7);
  EXPECT_THROW(full.subset({1}), std::invalid_argument);          // too small
  EXPECT_THROW(full.subset({1, 99}), std::invalid_argument);      // unknown node
  EXPECT_THROW(full.subset({1, 2, 1}), std::invalid_argument);    // duplicate
}

TEST(TopologyIo, ConstructorValidatesSizes) {
  EXPECT_THROW(Topology(std::vector<NodeInfo>(3), SymMatrix(4), {}), std::invalid_argument);
}

}  // namespace
}  // namespace geored::topo
