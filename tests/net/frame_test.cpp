// Transport-layer tests: the injected clock, the seeded fault oracle, and
// the framed socket codec over real loopback connections.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <map>
#include <utility>
#include <vector>

#include "net/clock.h"
#include "net/fault_injector.h"
#include "net/socket.h"

namespace geored::net {
namespace {

/// A connected loopback pair: .first is the client end, .second the
/// accepted server end.
std::pair<Socket, Socket> local_pair() {
  Listener listener;
  Socket client = connect_local(listener.port(), 1000);
  auto server = listener.accept(1000);
  EXPECT_TRUE(server.has_value());
  return {std::move(client), std::move(*server)};
}

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(VirtualClock, SleepsAdvanceNow) {
  VirtualClock clock;
  EXPECT_EQ(clock.now_ms(), 0u);
  clock.sleep_ms(7);
  clock.sleep_ms(3);
  EXPECT_EQ(clock.now_ms(), 10u);
  EXPECT_EQ(clock.elapsed_ms(), 10u);
}

TEST(SystemClock, NowIsMonotonic) {
  SystemClock clock;
  const std::uint64_t a = clock.now_ms();
  const std::uint64_t b = clock.now_ms();
  EXPECT_LE(a, b);
}

TEST(FaultInjector, DisabledByDefault) {
  const FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (std::uint64_t attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(injector.plan(1, 2, attempt).action, FaultAction::kNone);
  }
}

TEST(FaultInjector, RejectsBadProbabilities) {
  FaultConfig negative;
  negative.drop = -0.1;
  EXPECT_THROW(FaultInjector{negative}, std::invalid_argument);
  FaultConfig above_one;
  above_one.delay = 1.5;
  EXPECT_THROW(FaultInjector{above_one}, std::invalid_argument);
  FaultConfig oversum;
  oversum.drop = 0.6;
  oversum.disconnect = 0.6;
  EXPECT_THROW(FaultInjector{oversum}, std::invalid_argument);
}

TEST(FaultInjector, PlansArePureFunctionsOfSeedAndTriple) {
  FaultConfig config;
  config.drop = config.delay = config.duplicate = config.truncate = config.disconnect = 0.19;
  config.seed = 42;
  const FaultInjector first(config);
  const FaultInjector second(config);  // independent instance, same config
  ASSERT_TRUE(first.enabled());
  bool any_differs_across_seeds = false;
  config.seed = 43;
  const FaultInjector reseeded(config);
  for (std::uint64_t salt = 0; salt < 4; ++salt) {
    for (std::uint64_t source = 0; source < 8; ++source) {
      for (std::uint64_t attempt = 0; attempt < 4; ++attempt) {
        const FaultPlan a = first.plan(salt, source, attempt);
        const FaultPlan b = second.plan(salt, source, attempt);
        EXPECT_EQ(a.action, b.action);
        EXPECT_EQ(a.delay_ms, b.delay_ms);
        if (reseeded.plan(salt, source, attempt).action != a.action) {
          any_differs_across_seeds = true;
        }
      }
    }
  }
  EXPECT_TRUE(any_differs_across_seeds);
}

TEST(FaultInjector, LadderReachesEveryActionAtItsConfiguredRate) {
  FaultConfig config;
  config.drop = config.delay = config.duplicate = config.truncate = config.disconnect = 0.15;
  config.seed = 7;
  const FaultInjector injector(config);
  std::map<FaultAction, int> counts;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    counts[injector.plan(0, static_cast<std::uint64_t>(i), 0).action]++;
  }
  for (const FaultAction action :
       {FaultAction::kDrop, FaultAction::kDelay, FaultAction::kDuplicate,
        FaultAction::kTruncate, FaultAction::kDisconnect}) {
    const double rate = static_cast<double>(counts[action]) / trials;
    EXPECT_NEAR(rate, 0.15, 0.02) << static_cast<int>(action);
  }
  EXPECT_NEAR(static_cast<double>(counts[FaultAction::kNone]) / trials, 0.25, 0.02);
}

TEST(FaultInjector, DelayPlansCarryTheConfiguredDelay) {
  FaultConfig config;
  config.delay = 1.0;
  config.delay_ms = 9;
  const FaultInjector injector(config);
  const FaultPlan plan = injector.plan(3, 1, 0);
  EXPECT_EQ(plan.action, FaultAction::kDelay);
  EXPECT_EQ(plan.delay_ms, 9u);
}

TEST(Frame, RoundTripsPayload) {
  auto [client, server] = local_pair();
  const std::vector<std::uint8_t> sent = bytes_of({1, 2, 3, 250, 251, 252});
  write_frame(client, sent);
  std::vector<std::uint8_t> received;
  ASSERT_EQ(read_frame(server, received, 1000), IoStatus::kOk);
  EXPECT_EQ(received, sent);
}

TEST(Frame, EmptyPayloadRoundTrips) {
  auto [client, server] = local_pair();
  write_frame(client, {});
  std::vector<std::uint8_t> received{9};  // must be cleared by the read
  ASSERT_EQ(read_frame(server, received, 1000), IoStatus::kOk);
  EXPECT_TRUE(received.empty());
}

TEST(Frame, BackToBackFramesStayDelimited) {
  auto [client, server] = local_pair();
  const auto first = bytes_of({1, 1, 1});
  const auto second = bytes_of({2, 2});
  write_frame(client, first);
  write_frame(client, second);
  std::vector<std::uint8_t> received;
  ASSERT_EQ(read_frame(server, received, 1000), IoStatus::kOk);
  EXPECT_EQ(received, first);
  ASSERT_EQ(read_frame(server, received, 1000), IoStatus::kOk);
  EXPECT_EQ(received, second);
}

TEST(Frame, CleanCloseBetweenFramesIsClosedNotError) {
  auto [client, server] = local_pair();
  write_frame(client, bytes_of({5}));
  client.close();
  std::vector<std::uint8_t> received;
  ASSERT_EQ(read_frame(server, received, 1000), IoStatus::kOk);
  EXPECT_EQ(read_frame(server, received, 1000), IoStatus::kClosed);
}

TEST(Frame, SilenceIsTimeoutNotError) {
  auto [client, server] = local_pair();
  std::vector<std::uint8_t> received;
  EXPECT_EQ(read_frame(server, received, 20), IoStatus::kTimeout);
  (void)client;
}

TEST(Frame, WrongMagicThrows) {
  auto [client, server] = local_pair();
  const std::uint8_t garbage[8] = {0xde, 0xad, 0xbe, 0xef, 1, 0, 0, 0};
  client.send_all(garbage, sizeof garbage);
  std::vector<std::uint8_t> received;
  EXPECT_THROW(read_frame(server, received, 1000), FrameError);
}

TEST(Frame, OversizedLengthThrows) {
  auto [client, server] = local_pair();
  std::uint8_t header[8];
  const std::uint32_t magic = kFrameMagic;
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &huge, 4);
  client.send_all(header, sizeof header);
  std::vector<std::uint8_t> received;
  EXPECT_THROW(read_frame(server, received, 1000), FrameError);
}

TEST(Frame, TruncatedBodyThrowsOnClose) {
  auto [client, server] = local_pair();
  const auto payload = bytes_of({1, 2, 3, 4, 5, 6, 7, 8});
  write_truncated_frame(client, payload, 3);
  client.close();
  std::vector<std::uint8_t> received;
  EXPECT_THROW(read_frame(server, received, 1000), FrameError);
}

TEST(Frame, StalledBodyThrowsOnTimeout) {
  auto [client, server] = local_pair();
  const auto payload = bytes_of({1, 2, 3, 4, 5, 6, 7, 8});
  write_truncated_frame(client, payload, 3);  // header promises 8, sends 3
  std::vector<std::uint8_t> received;
  EXPECT_THROW(read_frame(server, received, 20), FrameError);
  (void)client;
}

TEST(Frame, TruncationMustStopShortOfDeclaredLength) {
  auto [client, server] = local_pair();
  const auto payload = bytes_of({1, 2});
  EXPECT_THROW(write_truncated_frame(client, payload, 2), std::invalid_argument);
  (void)server;
}

TEST(Socket, RecvExactTimesOutWithoutData) {
  auto [client, server] = local_pair();
  std::uint8_t buffer[4];
  EXPECT_EQ(server.recv_exact(buffer, sizeof buffer, 20), IoStatus::kTimeout);
  (void)client;
}

TEST(Socket, DrainUntilClosedReturnsWhenPeerCloses) {
  auto [client, server] = local_pair();
  const auto noise = bytes_of({1, 2, 3});
  client.send_all(noise.data(), noise.size());
  client.close();
  server.drain_until_closed(1000);  // must not hang or throw
}

TEST(Listener, AcceptTimesOutWithoutClients) {
  Listener listener;
  EXPECT_FALSE(listener.accept(20).has_value());
}

}  // namespace
}  // namespace geored::net
