// RpcCollector contract tests.
//
// Three pillars, mirroring the collector's guarantees:
//   1. Byte parity — with faults disabled, collected summaries and the
//      reported summary_bytes are identical to DirectCollector, all the way
//      up to bit-identical ReplicationManager epoch reports.
//   2. Determinism under faults — the FaultInjector is a pure function of
//      (seed, salt, source, attempt), so the test re-derives the oracle's
//      verdict per source and asserts the collector behaved exactly as
//      planned: recoverable schedules converge to the direct bytes, fatal
//      schedules fall back to the cache (stale) or drop out (lost).
//   3. Graceful degradation — an epoch always completes, whatever fails.
//
// Everything runs on a VirtualClock, so retries and injected delays cost no
// wall time; only drop faults spend real milliseconds (the client's poll
// timeout), which the configs below keep tiny.
#include "net/rpc_collector.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/summarizer.h"
#include "common/random.h"
#include "common/serialize.h"
#include "core/replication_manager.h"

namespace geored::net {
namespace {

using core::CollectedSummaries;
using core::CollectionContext;
using core::SummarySource;

/// Candidates on a 1-D line, as in the core pipeline tests.
std::vector<place::CandidateInfo> line_candidates(std::size_t count = 10) {
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < count; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i),
                          Point{100.0 * static_cast<double>(i)},
                          std::numeric_limits<double>::infinity()});
  }
  return candidates;
}

/// Synthetic sources: each node summarizes a population near its own
/// location, exactly what a replica would report.
std::vector<SummarySource> make_sources(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SummarySource> sources(count);
  for (std::size_t s = 0; s < count; ++s) {
    sources[s].node = static_cast<topo::NodeId>(s);
    cluster::SummarizerConfig config;
    config.max_clusters = 4;
    config.min_absorb_radius = 10.0;
    cluster::MicroClusterSummarizer summarizer(config);
    const double center = 100.0 * static_cast<double>(s);
    for (int i = 0; i < 60; ++i) summarizer.add(Point{rng.normal(center, 12.0)});
    sources[s].clusters = summarizer.clusters();
  }
  return sources;
}

/// Bit-exact fingerprint of a collected summary set: the shared wire format
/// over the flattened clusters.
std::vector<std::uint8_t> fingerprint(const std::vector<cluster::MicroCluster>& summaries) {
  ByteWriter writer;
  cluster::write_clusters(writer, summaries);
  return writer.bytes();
}

/// Recoverable = the client accepts the response on that attempt. Delayed
/// responses arrive within the client timeout; duplicates are idempotent.
bool attempt_succeeds(const FaultPlan& plan) {
  return plan.action == FaultAction::kNone || plan.action == FaultAction::kDelay ||
         plan.action == FaultAction::kDuplicate;
}

/// The oracle: does source `s` deliver a fresh summary under this schedule?
bool source_recovers(const FaultInjector& injector, std::uint64_t salt, std::uint64_t source,
                     std::size_t max_attempts) {
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt_succeeds(injector.plan(salt, source, attempt))) return true;
  }
  return false;
}

/// A salt under which every source recovers within the budget (so a round
/// primes the cache), searched via the pure oracle — no sockets involved.
std::uint64_t find_clean_salt(const FaultInjector& injector, std::size_t sources,
                              std::size_t max_attempts, std::uint64_t from = 0) {
  for (std::uint64_t salt = from; salt < from + 10000; ++salt) {
    bool all = true;
    for (std::uint64_t s = 0; s < sources; ++s) {
      if (!source_recovers(injector, salt, s, max_attempts)) {
        all = false;
        break;
      }
    }
    if (all) return salt;
  }
  ADD_FAILURE() << "no clean salt found; fault rates too high for this budget";
  return from;
}

/// A salt under which at least one source exhausts its budget.
std::uint64_t find_failing_salt(const FaultInjector& injector, std::size_t sources,
                                std::size_t max_attempts, std::uint64_t from = 0) {
  for (std::uint64_t salt = from; salt < from + 10000; ++salt) {
    for (std::uint64_t s = 0; s < sources; ++s) {
      if (!source_recovers(injector, salt, s, max_attempts)) return salt;
    }
  }
  ADD_FAILURE() << "no failing salt found; fault rates too low for this budget";
  return from;
}

RpcCollectorConfig fast_config() {
  RpcCollectorConfig config;
  config.timeout_ms = 60;  // bounds real waiting on drop faults
  config.faults.delay_ms = 5;
  return config;
}

TEST(RpcCollector, ZeroFaultsIsByteIdenticalToDirect) {
  const auto sources = make_sources(4, 11);
  const auto candidates = line_candidates();
  const CollectionContext context{candidates, 3, 99};

  core::DirectCollector direct;
  const CollectedSummaries expected = direct.collect(sources, context);

  RpcCollector rpc(fast_config(), std::make_shared<VirtualClock>());
  const CollectedSummaries actual = rpc.collect(sources, context);

  EXPECT_EQ(fingerprint(actual.summaries), fingerprint(expected.summaries));
  EXPECT_EQ(actual.summary_bytes, expected.summary_bytes);
  EXPECT_TRUE(actual.stale_sources.empty());
  EXPECT_TRUE(actual.lost_sources.empty());
  EXPECT_EQ(rpc.last_stats().responses_ok, sources.size());
  EXPECT_EQ(rpc.last_stats().requests_sent, sources.size());
  EXPECT_EQ(rpc.last_stats().faults_hit, 0u);
  EXPECT_EQ(rpc.last_stats().retries, 0u);
}

TEST(RpcCollector, EmptySourcesCompleteTrivially) {
  RpcCollector rpc(fast_config(), std::make_shared<VirtualClock>());
  const auto candidates = line_candidates();
  const CollectedSummaries collected = rpc.collect({}, {candidates, 3, 1});
  EXPECT_TRUE(collected.summaries.empty());
  EXPECT_EQ(collected.summary_bytes, 0u);
}

/// The fault matrix: every single-fault schedule, at two retry budgets.
/// For each cell the test recomputes the injector's verdict per source and
/// asserts the collector matched it exactly — recovered sources reproduce
/// the direct bytes, doomed sources without a cache are lost.
struct MatrixCase {
  const char* label;
  FaultConfig faults;
};

std::vector<MatrixCase> fault_matrix() {
  std::vector<MatrixCase> cases;
  for (const char* kind : {"drop", "delay", "duplicate", "truncate", "disconnect"}) {
    FaultConfig faults;
    faults.seed = 77;
    const double p = 0.45;
    if (std::string(kind) == "drop") faults.drop = p;
    if (std::string(kind) == "delay") faults.delay = p;
    if (std::string(kind) == "duplicate") faults.duplicate = p;
    if (std::string(kind) == "truncate") faults.truncate = p;
    if (std::string(kind) == "disconnect") faults.disconnect = p;
    cases.push_back({kind, faults});
  }
  return cases;
}

TEST(RpcCollector, FaultMatrixMatchesTheOracleAcrossRetryBudgets) {
  const auto sources = make_sources(3, 23);
  const auto candidates = line_candidates();
  core::DirectCollector direct;

  for (const MatrixCase& test_case : fault_matrix()) {
    for (const std::size_t budget : {std::size_t{1}, std::size_t{3}}) {
      RpcCollectorConfig config = fast_config();
      config.faults = test_case.faults;
      config.faults.delay_ms = 5;
      config.max_attempts = budget;
      const FaultInjector oracle(config.faults);

      const std::uint64_t salt = 1000;
      const CollectionContext context{candidates, 3, salt};
      RpcCollector rpc(config, std::make_shared<VirtualClock>());
      const CollectedSummaries collected = rpc.collect(sources, context);

      // Expected composition straight from the oracle.
      std::vector<cluster::MicroCluster> expected_summaries;
      std::vector<topo::NodeId> expected_lost;
      std::size_t expected_bytes = 0;
      for (std::size_t s = 0; s < sources.size(); ++s) {
        if (source_recovers(oracle, salt, s, budget)) {
          ByteWriter writer;
          cluster::write_clusters(writer, sources[s].clusters);
          expected_bytes += writer.size();
          for (const auto& micro : sources[s].clusters) expected_summaries.push_back(micro);
        } else {
          expected_lost.push_back(sources[s].node);  // first round: no cache
        }
      }

      EXPECT_EQ(fingerprint(collected.summaries), fingerprint(expected_summaries))
          << test_case.label << " budget=" << budget;
      EXPECT_EQ(collected.summary_bytes, expected_bytes)
          << test_case.label << " budget=" << budget;
      EXPECT_EQ(collected.lost_sources, expected_lost)
          << test_case.label << " budget=" << budget;
      EXPECT_TRUE(collected.stale_sources.empty());

      // Delay and duplicate schedules never burn an attempt, so with these
      // single-fault configs they must converge to full direct parity.
      if (std::string(test_case.label) == "delay" ||
          std::string(test_case.label) == "duplicate") {
        const CollectedSummaries reference = direct.collect(sources, context);
        EXPECT_EQ(fingerprint(collected.summaries), fingerprint(reference.summaries))
            << test_case.label << " budget=" << budget;
        EXPECT_EQ(collected.summary_bytes, reference.summary_bytes);
      }
    }
  }
}

TEST(RpcCollector, FaultRunsAreDeterministicGivenTheSeed) {
  const auto sources = make_sources(3, 31);
  const auto candidates = line_candidates();
  RpcCollectorConfig config = fast_config();
  config.faults.drop = 0.3;
  config.faults.truncate = 0.2;
  config.faults.disconnect = 0.2;
  config.faults.seed = 5;
  config.max_attempts = 2;
  const CollectionContext context{candidates, 3, 424242};

  auto run = [&] {
    RpcCollector rpc(config, std::make_shared<VirtualClock>());
    CollectedSummaries collected = rpc.collect(sources, context);
    return std::make_pair(fingerprint(collected.summaries), collected.lost_sources);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST(RpcCollector, ExhaustedRetriesFallBackToTheCachedEpoch) {
  const auto sources = make_sources(3, 47);
  const auto candidates = line_candidates();
  RpcCollectorConfig config = fast_config();
  config.faults.disconnect = 0.5;  // fail-fast fault: no real-time waiting
  config.faults.seed = 13;
  config.max_attempts = 2;
  const FaultInjector oracle(config.faults);

  const std::uint64_t clean_salt = find_clean_salt(oracle, sources.size(), config.max_attempts);
  const std::uint64_t failing_salt =
      find_failing_salt(oracle, sources.size(), config.max_attempts, clean_salt + 1);

  RpcCollector rpc(config, std::make_shared<VirtualClock>());
  // Round 1: everything lands; the cache is primed for every node.
  const CollectedSummaries primed = rpc.collect(sources, {candidates, 3, clean_salt});
  ASSERT_TRUE(primed.stale_sources.empty());
  ASSERT_TRUE(primed.lost_sources.empty());

  // Round 2: some sources exhaust their budget and must be served stale.
  const CollectedSummaries degraded = rpc.collect(sources, {candidates, 3, failing_salt});
  std::vector<topo::NodeId> expected_stale;
  std::size_t expected_fresh_bytes = 0;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    if (source_recovers(oracle, failing_salt, s, config.max_attempts)) {
      ByteWriter writer;
      cluster::write_clusters(writer, sources[s].clusters);
      expected_fresh_bytes += writer.size();
    } else {
      expected_stale.push_back(sources[s].node);
    }
  }
  ASSERT_FALSE(expected_stale.empty());
  EXPECT_EQ(degraded.stale_sources, expected_stale);
  EXPECT_TRUE(degraded.lost_sources.empty());  // every node has a cached round
  EXPECT_EQ(degraded.summary_bytes, expected_fresh_bytes);
  EXPECT_EQ(rpc.last_stats().stale_fallbacks, expected_stale.size());
  // The cache replays the same sources, so the collected set is unchanged.
  const CollectedSummaries reference =
      core::DirectCollector().collect(sources, {candidates, 3, failing_salt});
  EXPECT_EQ(fingerprint(degraded.summaries), fingerprint(reference.summaries));
}

TEST(RpcCollector, AllSourcesLostStillCompletesTheEpoch) {
  const auto sources = make_sources(2, 53);
  const auto candidates = line_candidates();
  RpcCollectorConfig config = fast_config();
  config.faults.disconnect = 1.0;
  config.max_attempts = 2;
  RpcCollector rpc(config, std::make_shared<VirtualClock>());
  const CollectedSummaries collected = rpc.collect(sources, {candidates, 3, 7});
  EXPECT_TRUE(collected.summaries.empty());
  EXPECT_EQ(collected.summary_bytes, 0u);
  ASSERT_EQ(collected.lost_sources.size(), sources.size());
  EXPECT_EQ(rpc.last_stats().lost_sources, sources.size());
  EXPECT_EQ(rpc.last_stats().responses_ok, 0u);
  // Every attempt was made and failed.
  EXPECT_EQ(rpc.last_stats().faults_hit, sources.size() * config.max_attempts);
  EXPECT_EQ(rpc.last_stats().retries, sources.size() * (config.max_attempts - 1));
}

TEST(RpcCollector, BackoffIsSpentOnTheInjectedClock) {
  const auto sources = make_sources(1, 59);
  const auto candidates = line_candidates();
  RpcCollectorConfig config = fast_config();
  config.faults.disconnect = 1.0;
  config.max_attempts = 5;
  config.backoff_initial_ms = 1;
  config.backoff_cap_ms = 4;
  auto clock = std::make_shared<VirtualClock>();
  RpcCollector rpc(config, clock);
  rpc.collect(sources, {candidates, 3, 1});
  // Retries 1..4 back off 1, 2, 4, 4 (capped) virtual ms.
  EXPECT_EQ(rpc.last_stats().backoff_ms_total, 1u + 2u + 4u + 4u);
  EXPECT_GE(clock->elapsed_ms(), rpc.last_stats().backoff_ms_total);
}

TEST(RpcCollector, StatsRenderOneLine) {
  RpcStats stats;
  stats.requests_sent = 5;
  stats.responses_ok = 4;
  stats.faults_hit = 1;
  const std::string line = stats.to_string();
  EXPECT_NE(line.find("requests=5"), std::string::npos);
  EXPECT_NE(line.find("ok=4"), std::string::npos);
  EXPECT_NE(line.find("faults=1"), std::string::npos);
}

TEST(RpcCollector, RejectsTimeoutsBelowTheInjectedDelay) {
  RpcCollectorConfig config;
  config.timeout_ms = 5;
  config.faults.delay_ms = 5;
  EXPECT_THROW(RpcCollector{config}, std::invalid_argument);
  RpcCollectorConfig zero_budget;
  zero_budget.max_attempts = 0;
  EXPECT_THROW(RpcCollector{zero_budget}, std::invalid_argument);
}

// --- Manager-level equivalence -------------------------------------------
// The collector plugged into a full ReplicationManager must reproduce the
// direct pipeline's epoch reports bit for bit when faults are off. Reports
// are rendered with hex floats so equality means bitwise identity.

void append_placement(std::string& out, const place::Placement& p) {
  out += "[";
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(p[i]);
  }
  out += "]";
}

std::string format_report(const core::EpochReport& r) {
  std::string out;
  append_placement(out, r.old_placement);
  append_placement(out, r.proposed_placement);
  append_placement(out, r.adopted_placement);
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                " old=%a new=%a migrate=%d moved=%zu bytes=%zu accesses=%llu degree=%zu "
                "stale=%zu lost=%zu",
                r.old_estimated_delay_ms, r.new_estimated_delay_ms,
                r.decision.migrate ? 1 : 0, r.replicas_moved, r.summary_bytes,
                static_cast<unsigned long long>(r.epoch_accesses), r.degree, r.stale_sources,
                r.lost_sources);
  out += buffer;
  return out;
}

core::ManagerConfig golden_config() {
  core::ManagerConfig config;
  config.replication_degree = 3;
  config.summarizer.max_clusters = 4;
  config.summarizer.min_absorb_radius = 10.0;
  return config;
}

core::EpochPipeline rpc_pipeline(const core::ManagerConfig& config) {
  core::EpochPipeline pipeline = core::standard_pipeline(config);
  core::CollectorConfig collector_config;
  collector_config.rpc.timeout_ms = 60;
  collector_config.rpc_clock = std::make_shared<VirtualClock>();
  pipeline.collector = core::make_collector("rpc", collector_config);
  return pipeline;
}

TEST(RpcEquivalence, ManagerEpochReportsMatchDirectBitForBit) {
  const core::ManagerConfig config = golden_config();
  core::ReplicationManager direct(line_candidates(), config, 7);
  core::ReplicationManager rpc(line_candidates(), config, 7, rpc_pipeline(config));

  Rng direct_rng(5);
  Rng rpc_rng(5);
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (int i = 0; i < 900; ++i) {
      direct.serve(Point{direct_rng.normal(0.0, 15.0)});
      direct.serve(Point{direct_rng.normal(430.0, 15.0)});
      direct.serve(Point{direct_rng.normal(900.0, 15.0)});
      rpc.serve(Point{rpc_rng.normal(0.0, 15.0)});
      rpc.serve(Point{rpc_rng.normal(430.0, 15.0)});
      rpc.serve(Point{rpc_rng.normal(900.0, 15.0)});
    }
    EXPECT_EQ(format_report(rpc.run_epoch()), format_report(direct.run_epoch()))
        << "epoch " << epoch;
  }
}

TEST(RpcEquivalence, FaultyEpochsAreReproducibleGivenTheSeed) {
  // Same manager seed + same fault seed => the same epochs degrade the same
  // way, twice in a row. This pins the determinism half of the tentpole.
  const core::ManagerConfig config = golden_config();
  auto run = [&] {
    core::EpochPipeline pipeline = core::standard_pipeline(config);
    core::CollectorConfig collector_config;
    collector_config.rpc.timeout_ms = 60;
    collector_config.rpc.max_attempts = 2;
    collector_config.rpc.faults.disconnect = 0.4;
    collector_config.rpc.faults.seed = 3;
    collector_config.rpc_clock = std::make_shared<VirtualClock>();
    pipeline.collector = core::make_collector("rpc", collector_config);
    core::ReplicationManager manager(line_candidates(), config, 7, std::move(pipeline));
    Rng rng(5);
    std::string transcript;
    for (int epoch = 0; epoch < 4; ++epoch) {
      for (int i = 0; i < 300; ++i) {
        manager.serve(Point{rng.normal(0.0, 15.0)});
        manager.serve(Point{rng.normal(430.0, 15.0)});
        manager.serve(Point{rng.normal(900.0, 15.0)});
      }
      transcript += format_report(manager.run_epoch());
      transcript += "\n";
    }
    return transcript;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace geored::net
