#include "core/migration.h"

#include <gtest/gtest.h>

namespace geored::core {
namespace {

MigrationPolicy default_policy() {
  MigrationPolicy policy;
  policy.object_size_gb = 2.0;
  policy.cost_per_gb_usd = 0.10;
  policy.min_relative_gain = 0.05;
  policy.min_absolute_gain_ms = 1.0;
  return policy;
}

TEST(Migration, AcceptsClearImprovement) {
  const auto decision = decide_migration(default_policy(), 100.0, 60.0, 2);
  EXPECT_TRUE(decision.migrate);
  EXPECT_DOUBLE_EQ(decision.gain_ms, 40.0);
  EXPECT_DOUBLE_EQ(decision.relative_gain, 0.4);
  EXPECT_DOUBLE_EQ(decision.cost_usd, 2 * 2.0 * 0.10);
  EXPECT_FALSE(decision.reason.empty());
}

TEST(Migration, RejectsNoOpProposal) {
  const auto decision = decide_migration(default_policy(), 100.0, 60.0, 0);
  EXPECT_FALSE(decision.migrate);
  EXPECT_DOUBLE_EQ(decision.cost_usd, 0.0);
}

TEST(Migration, RejectsBelowAbsoluteFloor) {
  const auto decision = decide_migration(default_policy(), 10.0, 9.5, 1);
  EXPECT_FALSE(decision.migrate);  // gain 0.5 ms < 1 ms floor
  EXPECT_NE(decision.reason.find("absolute floor"), std::string::npos);
}

TEST(Migration, RejectsBelowRelativeThreshold) {
  const auto decision = decide_migration(default_policy(), 1000.0, 990.0, 1);
  EXPECT_FALSE(decision.migrate);  // 1% < 5% threshold despite 10 ms gain
  EXPECT_NE(decision.reason.find("relative gain"), std::string::npos);
}

TEST(Migration, RejectsRegressions) {
  const auto decision = decide_migration(default_policy(), 50.0, 70.0, 1);
  EXPECT_FALSE(decision.migrate);
  EXPECT_LT(decision.gain_ms, 0.0);
}

TEST(Migration, CostGateBlocksExpensiveSmallWins) {
  MigrationPolicy policy = default_policy();
  policy.max_usd_per_ms_gain = 0.01;  // very stingy
  // 5 ms gain for $0.60 (3 moves x 2 GB x $0.10) -> $0.12/ms > $0.01/ms.
  const auto decision = decide_migration(policy, 100.0, 95.0, 3);
  EXPECT_FALSE(decision.migrate);
  EXPECT_NE(decision.reason.find("cost"), std::string::npos);
  // With a generous budget the same move is accepted.
  policy.max_usd_per_ms_gain = 1.0;
  EXPECT_TRUE(decide_migration(policy, 100.0, 95.0, 3).migrate);
}

TEST(Migration, CostGateDisabledByDefault) {
  // Huge move count, tiny dollar cap unset: only quality gates apply.
  const auto decision = decide_migration(default_policy(), 100.0, 50.0, 100);
  EXPECT_TRUE(decision.migrate);
  EXPECT_DOUBLE_EQ(decision.cost_usd, 100 * 2.0 * 0.10);
}

TEST(Migration, ZeroOldDelayEdgeCase) {
  const auto decision = decide_migration(default_policy(), 0.0, 0.0, 1);
  EXPECT_FALSE(decision.migrate);
  EXPECT_DOUBLE_EQ(decision.relative_gain, 0.0);
}

TEST(Migration, RejectsNegativeDelays) {
  EXPECT_THROW(decide_migration(default_policy(), -1.0, 0.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace geored::core
