#include "core/decentralized.h"

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "common/random.h"
#include "placement/strategy.h"
#include "placement/evaluate.h"
#include "topology/topology.h"

namespace geored::core {
namespace {

struct DecWorld {
  topo::Topology topology;
  std::vector<place::CandidateInfo> candidates;
  std::map<topo::NodeId, std::vector<cluster::MicroCluster>> summaries;

  explicit DecWorld(std::size_t dc_count, std::size_t replicas, std::uint64_t seed)
      : topology(topo::Topology(std::vector<topo::NodeInfo>(0), SymMatrix(0), {})) {
    Rng rng(seed);
    std::vector<Point> positions;
    for (std::size_t i = 0; i < dc_count; ++i) {
      positions.push_back(Point{rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)});
    }
    SymMatrix rtt(dc_count);
    for (std::size_t i = 0; i < dc_count; ++i) {
      for (std::size_t j = i + 1; j < dc_count; ++j) {
        rtt.set(i, j, std::max(0.1, positions[i].distance_to(positions[j])));
      }
    }
    topology = topo::Topology(std::vector<topo::NodeInfo>(dc_count), std::move(rtt), {});
    for (std::size_t i = 0; i < dc_count; ++i) {
      candidates.push_back({static_cast<topo::NodeId>(i), positions[i],
                            std::numeric_limits<double>::infinity()});
    }
    // The first `replicas` candidates currently hold the object; each
    // summarizes a client population near itself.
    for (std::size_t r = 0; r < replicas; ++r) {
      std::vector<cluster::MicroCluster> clusters;
      for (int c = 0; c < 4; ++c) {
        cluster::MicroCluster micro;
        for (int p = 0; p < 20; ++p) {
          Point point = positions[r];
          point[0] += rng.normal(0.0, 15.0);
          point[1] += rng.normal(0.0, 15.0);
          micro.absorb(point, 1.0);
        }
        clusters.push_back(micro);
      }
      summaries.emplace(static_cast<topo::NodeId>(r), std::move(clusters));
    }
  }
};

TEST(Decentralized, AllReplicasAgreeOnTheProposal) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    DecWorld world(12, 3, seed);
    sim::Simulator simulator;
    sim::Network network(simulator, world.topology);
    const auto strategy = place::make_strategy("online");
    const auto result = run_decentralized_epoch(simulator, network, world.candidates,
                                                world.summaries, 3, seed, *strategy);
    EXPECT_TRUE(result.agreement) << "seed " << seed;
    ASSERT_EQ(result.per_replica.size(), 3u);
    for (const auto& decision : result.per_replica) {
      EXPECT_EQ(decision, result.proposal);
    }
  }
}

TEST(Decentralized, MatchesTheCentralizedComputation) {
  DecWorld world(10, 3, 7);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  const auto strategy = place::make_strategy("online");
  const auto result = run_decentralized_epoch(simulator, network, world.candidates,
                                              world.summaries, 3, 99, *strategy);

  // Central reference: identical summaries in source-id order + same seed.
  place::PlacementInput input;
  input.candidates = world.candidates;
  input.k = 3;
  input.seed = 99;
  for (const auto& [source, clusters] : world.summaries) {
    for (const auto& micro : clusters) input.summaries.push_back(micro);
  }
  const auto central = place::make_strategy("online")->place(input);
  EXPECT_EQ(result.proposal, central);
}

TEST(Decentralized, ExchangesKSquaredSummaries) {
  DecWorld world(12, 4, 3);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  const auto strategy = place::make_strategy("online");
  const auto result = run_decentralized_epoch(simulator, network, world.candidates,
                                              world.summaries, 3, 1, *strategy);
  const auto& stats = network.stats();
  EXPECT_EQ(stats.messages[static_cast<std::size_t>(sim::TrafficClass::kSummary)],
            4u * 3u);  // k*(k-1) with k = 4 holders
  EXPECT_GT(result.summary_bytes, 0u);
  // Completion bounded by the slowest pairwise half-RTT among holders.
  double worst = 0.0;
  for (topo::NodeId a = 0; a < 4; ++a) {
    for (topo::NodeId b = 0; b < 4; ++b) {
      if (a != b) worst = std::max(worst, world.topology.rtt_ms(a, b) / 2.0);
    }
  }
  EXPECT_NEAR(result.completion_ms, worst, 1e-9);
}

TEST(Decentralized, SingleReplicaDecidesAlone) {
  DecWorld world(8, 1, 11);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  const auto strategy = place::make_strategy("online");
  const auto result = run_decentralized_epoch(simulator, network, world.candidates,
                                              world.summaries, 2, 5, *strategy);
  EXPECT_TRUE(result.agreement);
  EXPECT_EQ(result.per_replica.size(), 1u);
  EXPECT_EQ(result.proposal.size(), 2u);
  EXPECT_EQ(network.stats().messages[static_cast<std::size_t>(sim::TrafficClass::kSummary)],
            0u);
}

TEST(Decentralized, ValidatesArguments) {
  DecWorld world(8, 2, 1);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  const auto strategy = place::make_strategy("online");
  EXPECT_THROW(
      run_decentralized_epoch(simulator, network, {}, world.summaries, 2, 1, *strategy),
      std::invalid_argument);
  EXPECT_THROW(
      run_decentralized_epoch(simulator, network, world.candidates, {}, 2, 1, *strategy),
      std::invalid_argument);
}

}  // namespace
}  // namespace geored::core
