#include "core/replication_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <set>
#include <thread>

#include "common/random.h"

namespace geored::core {
namespace {

/// Candidates on a 1-D line at x = 0, 100, 200, ..., 900.
std::vector<place::CandidateInfo> line_candidates(std::size_t count = 10) {
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < count; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i),
                          Point{100.0 * static_cast<double>(i)},
                          std::numeric_limits<double>::infinity()});
  }
  return candidates;
}

ManagerConfig small_config(std::size_t k = 2) {
  ManagerConfig config;
  config.replication_degree = k;
  config.summarizer.max_clusters = 4;
  config.summarizer.min_absorb_radius = 10.0;
  config.migration.min_relative_gain = 0.05;
  config.migration.min_absolute_gain_ms = 1.0;
  return config;
}

TEST(Manager, InitialPlacementIsValidRandomSubset) {
  ReplicationManager manager(line_candidates(), small_config(3), 1);
  EXPECT_EQ(manager.degree(), 3u);
  const auto& placement = manager.placement();
  ASSERT_EQ(placement.size(), 3u);
  std::set<topo::NodeId> unique(placement.begin(), placement.end());
  EXPECT_EQ(unique.size(), 3u);
  for (const auto node : placement) EXPECT_LT(node, 10u);
}

TEST(Manager, RejectsBadConfig) {
  EXPECT_THROW(ReplicationManager({}, small_config(), 1), std::invalid_argument);
  ManagerConfig config = small_config();
  config.replication_degree = 0;
  EXPECT_THROW(ReplicationManager(line_candidates(), config, 1), std::invalid_argument);
  config = small_config();
  config.min_degree = 5;
  config.max_degree = 2;
  EXPECT_THROW(ReplicationManager(line_candidates(), config, 1), std::invalid_argument);
}

TEST(Manager, ServeRoutesToNearestReplica) {
  ReplicationManager manager(line_candidates(), small_config(2), 7);
  const auto& placement = manager.placement();
  // A client exactly at a replica's coordinate is served by it.
  for (const auto node : placement) {
    EXPECT_EQ(manager.serve(Point{100.0 * node}), node);
  }
  EXPECT_EQ(manager.epoch_accesses(), placement.size());
}

TEST(Manager, RecordAccessRejectsNonReplica) {
  ReplicationManager manager(line_candidates(), small_config(2), 7);
  topo::NodeId not_a_replica = 0;
  while (std::find(manager.placement().begin(), manager.placement().end(),
                   not_a_replica) != manager.placement().end()) {
    ++not_a_replica;
  }
  EXPECT_THROW(manager.record_access(not_a_replica, Point{0.0}), std::invalid_argument);
  EXPECT_THROW(manager.summary_of(not_a_replica), std::invalid_argument);
}

// Named apart from `Manager` so the tsan CI tier (which runs suites by
// name) picks it up: the whole point of this suite is what the sanitizer
// sees when many threads hit the staging paths at once.
TEST(IngestConcurrency, ConcurrentRecordPathsLoseNothing) {
  ReplicationManager manager(line_candidates(), small_config(2), 7);
  const auto placement = manager.placement();  // copy: threads use it freely
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kBatchesPerThread = 32;
  constexpr std::size_t kRowsPerBatch = 16;
  // Every thread records batches and single accesses against both replicas
  // concurrently — the manager's ingest mutex must serialize the staging so
  // the total is exact (no torn batch, no lost bump).
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t b = 0; b < kBatchesPerThread; ++b) {
        const topo::NodeId replica = placement[(t + b) % placement.size()];
        PointSet batch;
        for (std::size_t r = 0; r < kRowsPerBatch; ++r) {
          batch.push_back(Point{100.0 * static_cast<double>((t + r) % 10)});
        }
        manager.record_access_batch(replica, batch);
        manager.record_access(placement[t % placement.size()],
                              Point{50.0 * static_cast<double>(t)});
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(manager.epoch_accesses(),
            kThreads * kBatchesPerThread * (kRowsPerBatch + 1));
  // The staged accesses must all reach summarizers and the epoch must run
  // cleanly on them.
  const EpochReport report = manager.run_epoch();
  EXPECT_EQ(report.epoch_accesses, kThreads * kBatchesPerThread * (kRowsPerBatch + 1));
  EXPECT_EQ(manager.epoch_accesses(), 0u);
}

TEST(IngestConcurrency, RecordsDuringFlushAreNotTorn) {
  // Readers (flush_ingest via epoch_accesses/summary_of) interleave with
  // writers; under tsan this is the schedule that catches a forgotten lock
  // on the flush path.
  ReplicationManager manager(line_candidates(), small_config(2), 11);
  const auto placement = manager.placement();
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      manager.flush_ingest();
      std::this_thread::yield();
    }
  });
  constexpr std::size_t kAccesses = 512;
  for (std::size_t i = 0; i < kAccesses; ++i) {
    manager.record_access(placement[i % placement.size()],
                          Point{100.0 * static_cast<double>(i % 10)});
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(manager.epoch_accesses(), kAccesses);
}

TEST(Manager, EpochMigratesTowardsClientPopulation) {
  // All clients sit near x=0; wherever the seeded initial replicas landed,
  // after one epoch the placement must include candidate 0 or 1.
  ReplicationManager manager(line_candidates(), small_config(2), 12345);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    manager.serve(Point{rng.normal(0.0, 20.0)});
  }
  const auto report = manager.run_epoch();
  EXPECT_EQ(report.epoch_accesses, 2000u);
  EXPECT_GT(report.summary_bytes, 0u);
  const auto& placement = manager.placement();
  const bool near_population =
      std::find(placement.begin(), placement.end(), 0u) != placement.end() ||
      std::find(placement.begin(), placement.end(), 1u) != placement.end();
  EXPECT_TRUE(near_population);
  // The adopted placement is what the manager now serves from.
  EXPECT_EQ(report.adopted_placement, placement);
}

TEST(Manager, EpochReportsEstimatedDelays) {
  ReplicationManager manager(line_candidates(), small_config(2), 99);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) manager.serve(Point{rng.normal(450.0, 30.0)});
  const auto report = manager.run_epoch();
  EXPECT_GE(report.old_estimated_delay_ms, 0.0);
  EXPECT_GE(report.new_estimated_delay_ms, 0.0);
  if (report.decision.migrate) {
    EXPECT_LT(report.new_estimated_delay_ms, report.old_estimated_delay_ms);
  }
}

TEST(Manager, StablePlacementIsNotChurned) {
  // Once the placement matches the population, further epochs must not move
  // replicas (the migration gate rejects no-gain proposals).
  ReplicationManager manager(line_candidates(), small_config(2), 3);
  Rng rng(5);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 1000; ++i) {
      manager.serve(Point{rng.normal(0.0, 15.0)});
      manager.serve(Point{rng.normal(900.0, 15.0)});
    }
    manager.run_epoch();
  }
  const auto stable = manager.placement();
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 1000; ++i) {
      manager.serve(Point{rng.normal(0.0, 15.0)});
      manager.serve(Point{rng.normal(900.0, 15.0)});
    }
    const auto report = manager.run_epoch();
    EXPECT_FALSE(report.decision.migrate) << report.decision.reason;
    EXPECT_EQ(manager.placement(), stable);
  }
}

TEST(Manager, SummariesSurviveMigrationByRedistribution) {
  ReplicationManager manager(line_candidates(), small_config(2), 12345);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) manager.serve(Point{rng.normal(0.0, 10.0)});
  const auto report = manager.run_epoch();
  if (report.decision.migrate) {
    // Knowledge of the population was handed to the new replicas.
    std::uint64_t retained = 0;
    for (const auto node : manager.placement()) {
      for (const auto& micro : manager.summary_of(node)) retained += micro.count();
    }
    EXPECT_EQ(retained, 1000u);
  }
}

TEST(Manager, DynamicDegreeGrowsAndShrinksWithDemand) {
  ManagerConfig config = small_config(2);
  config.dynamic_degree = true;
  config.grow_accesses_per_replica = 100.0;
  config.shrink_accesses_per_replica = 10.0;
  config.min_degree = 1;
  config.max_degree = 4;
  ReplicationManager manager(line_candidates(), config, 21);
  Rng rng(9);

  // Heavy demand: degree grows 2 -> 3.
  for (int i = 0; i < 500; ++i) manager.serve(Point{rng.uniform(0.0, 900.0)});
  auto report = manager.run_epoch();
  EXPECT_EQ(report.degree, 3u);
  EXPECT_EQ(manager.placement().size(), 3u);

  // Light demand: degree shrinks.
  for (int i = 0; i < 5; ++i) manager.serve(Point{rng.uniform(0.0, 900.0)});
  report = manager.run_epoch();
  EXPECT_EQ(report.degree, 2u);
  EXPECT_EQ(manager.placement().size(), 2u);

  // Demand bounds are respected.
  report = manager.run_epoch();
  EXPECT_GE(report.degree, config.min_degree);
}

TEST(Manager, DeterministicAcrossIdenticalRuns) {
  const auto run = [] {
    ReplicationManager manager(line_candidates(), small_config(3), 77);
    Rng rng(13);
    for (int i = 0; i < 800; ++i) manager.serve(Point{rng.uniform(0.0, 900.0)});
    manager.run_epoch();
    return manager.placement();
  };
  EXPECT_EQ(run(), run());
}

TEST(Manager, ExcludedCandidatesAreNeverChosen) {
  ReplicationManager manager(line_candidates(), small_config(3), 7);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) manager.serve(Point{rng.uniform(0.0, 900.0)});
  std::set<topo::NodeId> excluded{0, 1, 2, 3, 4};
  const auto report = manager.run_epoch(excluded);
  for (const auto node : report.adopted_placement) {
    EXPECT_FALSE(excluded.contains(node)) << "dc" << node;
  }
}

TEST(Manager, FailedReplicaForcesReplacement) {
  ReplicationManager manager(line_candidates(), small_config(2), 7);
  Rng rng(5);
  // Converge to a stable placement first.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 500; ++i) manager.serve(Point{rng.uniform(0.0, 900.0)});
    manager.run_epoch();
  }
  const auto stable = manager.placement();
  // Fail one of the current replicas: the epoch must move off it even though
  // the proposal's quality gain alone would not clear the migration gate.
  for (int i = 0; i < 500; ++i) manager.serve(Point{rng.uniform(0.0, 900.0)});
  const std::set<topo::NodeId> excluded{stable.front()};
  const auto report = manager.run_epoch(excluded);
  EXPECT_EQ(report.adopted_placement.size(), stable.size());
  for (const auto node : report.adopted_placement) {
    EXPECT_NE(node, stable.front());
  }
}

TEST(Manager, AllCandidatesExcludedThrows) {
  ReplicationManager manager(line_candidates(2), small_config(1), 7);
  EXPECT_THROW(manager.run_epoch({0, 1}), std::invalid_argument);
}

TEST(Manager, WarmStartKeepsProposalsStableAcrossEpochSeeds) {
  // Same three-population workload every epoch: proposals must not churn
  // even though each epoch's k-means uses a fresh seed.
  ManagerConfig config = small_config(3);
  config.warm_start_macro_clusters = true;
  ReplicationManager manager(line_candidates(), config, 7);
  Rng rng(5);
  const auto feed = [&] {
    for (int i = 0; i < 900; ++i) {
      manager.serve(Point{rng.normal(0.0, 15.0)});
      manager.serve(Point{rng.normal(430.0, 15.0)});
      manager.serve(Point{rng.normal(900.0, 15.0)});
    }
  };
  feed();
  manager.run_epoch();
  const auto settled = manager.placement();
  for (int epoch = 0; epoch < 5; ++epoch) {
    feed();
    const auto report = manager.run_epoch();
    EXPECT_EQ(report.proposed_placement.size(), settled.size());
    // The proposal itself (not just the gated outcome) stays put.
    std::set<topo::NodeId> proposed(report.proposed_placement.begin(),
                                    report.proposed_placement.end());
    std::set<topo::NodeId> expected(settled.begin(), settled.end());
    EXPECT_EQ(proposed, expected) << "epoch " << epoch;
  }
}

TEST(Manager, CheckpointRestoreResumesIdentically) {
  // A coordinator checkpoints mid-epoch; a stand-by restores and must
  // produce the exact same epoch outcome as the original would have.
  ReplicationManager primary(line_candidates(), small_config(2), 7);
  Rng rng(5);
  for (int i = 0; i < 800; ++i) primary.serve(Point{rng.normal(100.0, 40.0)});

  ByteWriter writer;
  primary.save(writer);

  ReplicationManager standby(line_candidates(), small_config(2), 7);
  ByteReader reader(writer.bytes());
  standby.restore(reader);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(standby.placement(), primary.placement());
  EXPECT_EQ(standby.epoch_accesses(), primary.epoch_accesses());

  const auto primary_report = primary.run_epoch();
  const auto standby_report = standby.run_epoch();
  EXPECT_EQ(standby_report.adopted_placement, primary_report.adopted_placement);
  EXPECT_EQ(standby_report.decision.migrate, primary_report.decision.migrate);
  EXPECT_DOUBLE_EQ(standby_report.new_estimated_delay_ms,
                   primary_report.new_estimated_delay_ms);
}

TEST(Manager, RestoreRejectsForeignPlacementAndKeepsState) {
  ReplicationManager primary(line_candidates(), small_config(2), 7);
  ByteWriter writer;
  primary.save(writer);

  // A manager over a *different* candidate set cannot adopt the checkpoint.
  std::vector<place::CandidateInfo> other_candidates;
  for (topo::NodeId id = 100; id < 105; ++id) {
    other_candidates.push_back({id, Point{10.0 * id},
                                std::numeric_limits<double>::infinity()});
  }
  ReplicationManager other(other_candidates, small_config(2), 7);
  const auto before = other.placement();
  ByteReader reader(writer.bytes());
  EXPECT_THROW(other.restore(reader), std::invalid_argument);
  EXPECT_EQ(other.placement(), before);  // unchanged after the failed restore
}

TEST(Manager, CheckpointLeadsWithMagicAndVersion) {
  ReplicationManager manager(line_candidates(), small_config(2), 7);
  ByteWriter writer;
  manager.save(writer);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_u32(), kCheckpointMagic);
  EXPECT_EQ(reader.read_u32(), kCheckpointVersion);
}

TEST(Manager, CheckpointRoundTripsThroughHeader) {
  ReplicationManager primary(line_candidates(), small_config(2), 7);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) primary.serve(Point{rng.normal(100.0, 40.0)});
  ByteWriter writer;
  primary.save(writer);

  ReplicationManager standby(line_candidates(), small_config(2), 7);
  ByteReader reader(writer.bytes());
  standby.restore(reader);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(standby.placement(), primary.placement());
  EXPECT_EQ(standby.epoch_accesses(), primary.epoch_accesses());
}

TEST(Manager, RestoreRejectsBadMagicAndKeepsState) {
  ReplicationManager primary(line_candidates(), small_config(2), 7);
  ByteWriter writer;
  primary.save(writer);

  // A buffer that never came from save(): not a checkpoint at all.
  std::vector<std::uint8_t> corrupted = writer.bytes();
  corrupted[0] ^= 0xFF;
  ReplicationManager standby(line_candidates(), small_config(2), 7);
  const auto before = standby.placement();
  ByteReader reader(corrupted);
  EXPECT_THROW(standby.restore(reader), std::invalid_argument);
  EXPECT_EQ(standby.placement(), before);
}

TEST(Manager, RestoreRejectsFutureFormatVersion) {
  ReplicationManager primary(line_candidates(), small_config(2), 7);
  ByteWriter writer;
  primary.save(writer);

  // Same magic, but a format version this build does not understand.
  std::vector<std::uint8_t> future = writer.bytes();
  const std::uint32_t bad_version = kCheckpointVersion + 1;
  std::memcpy(future.data() + sizeof(std::uint32_t), &bad_version, sizeof bad_version);
  ReplicationManager standby(line_candidates(), small_config(2), 7);
  const auto before = standby.placement();
  ByteReader reader(future);
  EXPECT_THROW(standby.restore(reader), std::invalid_argument);
  EXPECT_EQ(standby.placement(), before);
}

TEST(Manager, EpochWithNoAccessesIsSafe) {
  ReplicationManager manager(line_candidates(), small_config(2), 31);
  const auto before = manager.placement();
  const auto report = manager.run_epoch();
  EXPECT_EQ(report.epoch_accesses, 0u);
  EXPECT_EQ(manager.placement().size(), before.size());
}

}  // namespace
}  // namespace geored::core
