#include "core/evaluation.h"

#include <gtest/gtest.h>

namespace geored::core {
namespace {

/// One shared environment for the whole file: building topology + RNP
/// embedding once keeps the suite fast.
const Environment& shared_env() {
  static const Environment env = [] {
    topo::PlanetLabModelConfig config;
    config.node_count = 140;  // smaller than the paper's 226 to keep tests quick
    return Environment(config, /*topology_seed=*/42, CoordSystem::kRnp,
                       coord::GossipConfig{});
  }();
  return env;
}

ExperimentConfig quick_config() {
  ExperimentConfig config;
  config.num_datacenters = 15;
  config.k = 3;
  config.runs = 8;
  config.mean_accesses_per_client = 60.0;
  return config;
}

TEST(Evaluation, PaperOrderingHolds) {
  const auto result = run_experiment(shared_env(), quick_config());
  const double random = result.mean_of(place::StrategyKind::kRandom);
  const double offline = result.mean_of(place::StrategyKind::kOfflineKMeans);
  const double online = result.mean_of(place::StrategyKind::kOnlineClustering);
  const double optimal = result.mean_of(place::StrategyKind::kOptimal);

  // optimal <= clustering strategies << random (Figures 1-2).
  EXPECT_LE(optimal, online + 1e-9);
  EXPECT_LE(optimal, offline + 1e-9);
  EXPECT_LT(online, 0.75 * random);   // paper: >= 35% better; allow margin
  EXPECT_LT(offline, 0.75 * random);
  EXPECT_LT(online, 1.35 * optimal);  // "near optimal"
}

TEST(Evaluation, OptimalDominatesInEveryRun) {
  const auto result = run_experiment(shared_env(), quick_config());
  const auto& optimal = result.outcome_of(place::StrategyKind::kOptimal);
  for (const auto& outcome : result.outcomes) {
    ASSERT_EQ(outcome.per_run_delay_ms.size(), optimal.per_run_delay_ms.size());
    for (std::size_t r = 0; r < outcome.per_run_delay_ms.size(); ++r) {
      EXPECT_GE(outcome.per_run_delay_ms[r] + 1e-9, optimal.per_run_delay_ms[r])
          << outcome.name << " run " << r;
    }
  }
}

TEST(Evaluation, MoreDataCentersHelpClusteringStrategies) {
  // Figure 1's trend: with k fixed, more candidate data centers reduce the
  // achievable delay for informed strategies.
  ExperimentConfig few = quick_config();
  few.num_datacenters = 6;
  ExperimentConfig many = quick_config();
  many.num_datacenters = 30;
  const auto few_result = run_experiment(shared_env(), few);
  const auto many_result = run_experiment(shared_env(), many);
  EXPECT_LT(many_result.mean_of(place::StrategyKind::kOptimal),
            few_result.mean_of(place::StrategyKind::kOptimal));
  EXPECT_LT(many_result.mean_of(place::StrategyKind::kOnlineClustering),
            few_result.mean_of(place::StrategyKind::kOnlineClustering));
}

TEST(Evaluation, MoreReplicasReduceDelay) {
  // Figure 2's trend, on the optimal strategy (monotone by construction:
  // a (k+1)-subset always contains a k-subset... strictly, optimal over
  // k+1 can only be <= optimal over k).
  ExperimentConfig one = quick_config();
  one.k = 1;
  one.strategies = {place::StrategyKind::kOptimal, place::StrategyKind::kOnlineClustering};
  ExperimentConfig four = one;
  four.k = 4;
  const auto one_result = run_experiment(shared_env(), one);
  const auto four_result = run_experiment(shared_env(), four);
  EXPECT_LT(four_result.mean_of(place::StrategyKind::kOptimal),
            one_result.mean_of(place::StrategyKind::kOptimal));
  EXPECT_LT(four_result.mean_of(place::StrategyKind::kOnlineClustering),
            one_result.mean_of(place::StrategyKind::kOnlineClustering));
}

TEST(Evaluation, DeterministicAcrossInvocations) {
  const auto a = run_experiment(shared_env(), quick_config());
  const auto b = run_experiment(shared_env(), quick_config());
  for (std::size_t s = 0; s < a.outcomes.size(); ++s) {
    EXPECT_EQ(a.outcomes[s].per_run_delay_ms, b.outcomes[s].per_run_delay_ms);
  }
}

TEST(Evaluation, SingleMicroClusterDegradesQuality) {
  // Figure 3's trend: m = 1 summarizes each replica's population to a
  // single centroid and should do worse than m = 7.
  ExperimentConfig coarse = quick_config();
  coarse.micro_clusters = 1;
  coarse.runs = 12;
  coarse.strategies = {place::StrategyKind::kOnlineClustering};
  ExperimentConfig fine = coarse;
  fine.micro_clusters = 7;
  const double delay_coarse =
      run_experiment(shared_env(), coarse).mean_of(place::StrategyKind::kOnlineClustering);
  const double delay_fine =
      run_experiment(shared_env(), fine).mean_of(place::StrategyKind::kOnlineClustering);
  EXPECT_LT(delay_fine, delay_coarse);
}

TEST(Evaluation, QuorumTwoCostsMoreThanQuorumOne) {
  ExperimentConfig q1 = quick_config();
  q1.strategies = {place::StrategyKind::kOptimal};
  q1.runs = 4;
  ExperimentConfig q2 = q1;
  q2.quorum = 2;
  const double d1 = run_experiment(shared_env(), q1).mean_of(place::StrategyKind::kOptimal);
  const double d2 = run_experiment(shared_env(), q2).mean_of(place::StrategyKind::kOptimal);
  EXPECT_GT(d2, d1);  // waiting for the 2nd replica is never faster
}

TEST(Evaluation, RejectsInvalidConfigs) {
  ExperimentConfig config = quick_config();
  config.runs = 0;
  EXPECT_THROW(run_experiment(shared_env(), config), std::invalid_argument);
  config = quick_config();
  config.strategies.clear();
  EXPECT_THROW(run_experiment(shared_env(), config), std::invalid_argument);
  config = quick_config();
  config.num_datacenters = 1000;  // more than nodes
  EXPECT_THROW(run_experiment(shared_env(), config), std::invalid_argument);
}

TEST(Evaluation, OutcomeLookupByKind) {
  ExperimentConfig config = quick_config();
  config.runs = 2;
  config.strategies = {place::StrategyKind::kRandom};
  const auto result = run_experiment(shared_env(), config);
  EXPECT_EQ(result.outcome_of(place::StrategyKind::kRandom).name, "random");
  EXPECT_THROW(result.outcome_of(place::StrategyKind::kOptimal), std::invalid_argument);
}

TEST(Evaluation, ParallelRunsAreBitIdenticalToSerial) {
  ExperimentConfig serial = quick_config();
  serial.runs = 8;
  serial.threads = 1;
  ExperimentConfig parallel = serial;
  parallel.threads = 4;
  const auto a = run_experiment(shared_env(), serial);
  const auto b = run_experiment(shared_env(), parallel);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t s = 0; s < a.outcomes.size(); ++s) {
    EXPECT_EQ(a.outcomes[s].per_run_delay_ms, b.outcomes[s].per_run_delay_ms)
        << a.outcomes[s].name;
  }
}

TEST(Evaluation, AllCoordinateSystemsDriveTheHarness) {
  // Vivaldi and GNP environments produce valid experiments with the same
  // qualitative ordering (ordering vs random is the robust property).
  topo::PlanetLabModelConfig topo_config;
  topo_config.node_count = 100;
  for (const auto system : {CoordSystem::kVivaldi, CoordSystem::kGnp}) {
    coord::GossipConfig gossip;
    gossip.rounds = 128;
    const Environment env(topo_config, 42, system, gossip);
    ExperimentConfig config;
    config.num_datacenters = 12;
    config.runs = 6;
    config.strategies = {place::StrategyKind::kRandom,
                         place::StrategyKind::kOnlineClustering};
    const auto result = run_experiment(env, config);
    EXPECT_LT(result.mean_of(place::StrategyKind::kOnlineClustering),
              result.mean_of(place::StrategyKind::kRandom))
        << coord_system_name(system);
  }
}

TEST(Evaluation, EmbeddingQualityIsReportedPerEnvironment) {
  const auto quality = shared_env().embedding_quality();
  EXPECT_GT(quality.absolute_error_ms.count, 0u);
  EXPECT_LT(quality.absolute_error_ms.p50, 25.0);
}

TEST(Evaluation, CoordSystemNames) {
  EXPECT_EQ(coord_system_name(CoordSystem::kRnp), "rnp");
  EXPECT_EQ(coord_system_name(CoordSystem::kVivaldi), "vivaldi");
  EXPECT_EQ(coord_system_name(CoordSystem::kGnp), "gnp");
}

}  // namespace
}  // namespace geored::core
