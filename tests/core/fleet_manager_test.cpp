#include "core/fleet_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"

namespace geored::core {
namespace {

std::vector<place::CandidateInfo> line_candidates(std::size_t count = 10) {
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < count; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i),
                          Point{100.0 * static_cast<double>(i)},
                          std::numeric_limits<double>::infinity()});
  }
  return candidates;
}

ManagerConfig small_config(std::size_t k = 2) {
  ManagerConfig config;
  config.replication_degree = k;
  config.summarizer.max_clusters = 4;
  config.summarizer.min_absorb_radius = 10.0;
  return config;
}

/// Bit-exact rendering of one report (hex-float doubles): two reports render
/// equal iff they are bitwise-identical.
std::string format_report(const EpochReport& r) {
  std::string out;
  for (const auto node : r.adopted_placement) out += std::to_string(node) + ",";
  char buffer[192];
  std::snprintf(buffer, sizeof buffer, "|%a|%a|%d|%a|%zu|%zu|%llu|%zu",
                r.old_estimated_delay_ms, r.new_estimated_delay_ms,
                r.decision.migrate ? 1 : 0, r.decision.gain_ms, r.replicas_moved,
                r.summary_bytes, static_cast<unsigned long long>(r.epoch_accesses),
                r.degree);
  out += buffer;
  return out;
}

/// Each group gets its own regional population: group g clusters around
/// x = 150 g with group-dependent volume, every epoch.
void feed_groups(FleetManager& fleet, std::uint64_t epoch) {
  for (std::size_t g = 0; g < fleet.group_count(); ++g) {
    Rng rng(1000 * (g + 1) + epoch);
    const int accesses = 100 + 40 * static_cast<int>(g);
    for (int i = 0; i < accesses; ++i) {
      fleet.group(g).serve(Point{rng.normal(150.0 * static_cast<double>(g), 20.0)});
    }
  }
}

TEST(FleetManager, SingleGroupReproducesBareManager) {
  // The fleet's per-group seed split is the store layer's historical one, so
  // a one-group fleet is indistinguishable from a bare ReplicationManager.
  constexpr std::uint64_t kSeed = 7;
  FleetConfig config;
  config.groups = 1;
  config.manager = small_config();
  FleetManager fleet(line_candidates(), config, kSeed);
  ReplicationManager bare(line_candidates(), small_config(),
                          kSeed ^ 0x9e3779b97f4a7c15ULL);

  EXPECT_EQ(fleet.group(0).placement(), bare.placement());
  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    Rng fleet_rng(epoch);
    Rng bare_rng(epoch);
    for (int i = 0; i < 400; ++i) {
      fleet.serve(/*object_id=*/i, Point{fleet_rng.uniform(0.0, 900.0)});
      bare.serve(Point{bare_rng.uniform(0.0, 900.0)});
    }
    const auto fleet_report = fleet.run_epochs();
    ASSERT_EQ(fleet_report.group_reports.size(), 1u);
    EXPECT_EQ(format_report(fleet_report.group_reports[0]), format_report(bare.run_epoch()));
  }
}

TEST(FleetManager, RunEpochsIsBitIdenticalAcrossThreadCounts) {
  FleetConfig config;
  config.groups = 5;
  config.manager = small_config();

  // Same fleet, same streams, different GEORED_THREADS-equivalent pool
  // sizes: every group report must match bit for bit.
  std::vector<std::string> per_thread_runs;
  for (const std::size_t threads : {1ul, 4ul}) {
    ThreadPool::set_global_thread_count(threads);
    FleetManager fleet(line_candidates(), config, 42);
    std::string transcript;
    for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
      feed_groups(fleet, epoch);
      const auto report = fleet.run_epochs();
      for (const auto& group_report : report.group_reports) {
        transcript += format_report(group_report);
        transcript += "\n";
      }
    }
    per_thread_runs.push_back(std::move(transcript));
  }
  ThreadPool::set_global_thread_count(0);  // restore the default pool

  ASSERT_EQ(per_thread_runs.size(), 2u);
  EXPECT_EQ(per_thread_runs[0], per_thread_runs[1]);
}

TEST(FleetManager, BudgetFollowsDemand) {
  FleetConfig config;
  config.groups = 3;
  config.manager = small_config();
  config.replica_budget = 6;
  config.min_degree = 1;
  config.max_degree = 4;
  FleetManager fleet(line_candidates(), config, 11);

  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    // Group 0 is hot and geographically spread; the others are cold point
    // populations that one replica serves perfectly.
    Rng rng(epoch + 1);
    for (int i = 0; i < 600; ++i) fleet.group(0).serve(Point{rng.uniform(0.0, 900.0)});
    for (int i = 0; i < 10; ++i) fleet.group(1).serve(Point{rng.normal(100.0, 5.0)});
    for (int i = 0; i < 10; ++i) fleet.group(2).serve(Point{rng.normal(800.0, 5.0)});
    const auto report = fleet.run_epochs();

    ASSERT_TRUE(report.allocation.has_value());
    const auto& degrees = report.allocation->degree_per_group;
    ASSERT_EQ(degrees.size(), 3u);
    std::size_t total = 0;
    for (std::size_t g = 0; g < degrees.size(); ++g) {
      EXPECT_GE(degrees[g], config.min_degree);
      EXPECT_LE(degrees[g], config.max_degree);
      total += degrees[g];
      // The granted degree is installed on the group for the next epoch.
      EXPECT_EQ(fleet.group(g).degree(), degrees[g]);
    }
    EXPECT_LE(total, config.replica_budget);
    EXPECT_GE(degrees[0], degrees[1]);  // the hot group never gets less
    EXPECT_GE(degrees[0], degrees[2]);

    EXPECT_EQ(report.total_accesses, 620u);
  }
}

TEST(FleetManager, RejectsBadConfig) {
  FleetConfig config;
  config.manager = small_config();
  config.groups = 0;
  EXPECT_THROW(FleetManager(line_candidates(), config, 1), std::invalid_argument);

  config.groups = 4;
  config.replica_budget = 3;  // cannot cover 4 groups at min_degree = 1
  config.min_degree = 1;
  EXPECT_THROW(FleetManager(line_candidates(), config, 1), std::invalid_argument);

  config.replica_budget = 8;
  config.min_degree = 3;
  config.max_degree = 2;  // inverted bounds
  EXPECT_THROW(FleetManager(line_candidates(), config, 1), std::invalid_argument);
}

TEST(FleetManager, GroupHashIsStableAndServeRoutesToTheGroup) {
  FleetConfig config;
  config.groups = 8;
  config.manager = small_config();
  FleetManager fleet(line_candidates(), config, 3);

  for (std::uint64_t id = 0; id < 64; ++id) {
    const std::size_t group = fleet.group_of(id);
    EXPECT_LT(group, fleet.group_count());
    EXPECT_EQ(fleet.group_of(id), group);  // stable

    const auto served = fleet.serve(id, Point{450.0});
    const auto& placement = fleet.group(group).placement();
    EXPECT_NE(std::find(placement.begin(), placement.end(), served), placement.end());
  }
}

}  // namespace
}  // namespace geored::core
