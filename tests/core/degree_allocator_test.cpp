#include "core/degree_allocator.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/random.h"

namespace geored::core {
namespace {

/// Convex, non-increasing delay curve: total_demand / k style.
GroupDemand curve(double demand, std::size_t min_degree, std::size_t max_degree) {
  GroupDemand group;
  for (std::size_t k = min_degree; k <= max_degree; ++k) {
    group.delay_by_degree.push_back(demand / static_cast<double>(k));
  }
  return group;
}

AllocatorConfig config_with(std::size_t budget, std::size_t min_degree = 1,
                            std::size_t max_degree = 5) {
  AllocatorConfig config;
  config.min_degree = min_degree;
  config.max_degree = max_degree;
  config.budget = budget;
  return config;
}

TEST(DegreeAllocator, ValidatesInputs) {
  EXPECT_THROW(allocate_replica_budget({}, config_with(5)), std::invalid_argument);
  // Delay vector of the wrong length.
  GroupDemand bad;
  bad.delay_by_degree = {10.0};
  EXPECT_THROW(allocate_replica_budget({bad}, config_with(5)), std::invalid_argument);
  // Increasing delay curve.
  GroupDemand rising;
  rising.delay_by_degree = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_THROW(allocate_replica_budget({rising}, config_with(5)), std::invalid_argument);
  // Budget below the minimum.
  const std::vector<GroupDemand> groups{curve(100, 1, 5), curve(100, 1, 5)};
  EXPECT_THROW(allocate_replica_budget(groups, config_with(1)), std::invalid_argument);
}

TEST(DegreeAllocator, MinimumBudgetGivesMinimumEverywhere) {
  const std::vector<GroupDemand> groups{curve(100, 1, 5), curve(900, 1, 5)};
  const auto allocation = allocate_replica_budget(groups, config_with(2));
  EXPECT_EQ(allocation.degree_per_group, (std::vector<std::size_t>{1, 1}));
  EXPECT_EQ(allocation.replicas_used, 2u);
  EXPECT_DOUBLE_EQ(allocation.estimated_total_delay, 1000.0);
}

TEST(DegreeAllocator, ExtraReplicasFollowDemand) {
  // Group 1 has 9x the demand: with budget 6 it should get most replicas.
  const std::vector<GroupDemand> groups{curve(100, 1, 5), curve(900, 1, 5)};
  const auto allocation = allocate_replica_budget(groups, config_with(6));
  EXPECT_EQ(allocation.replicas_used, 6u);
  EXPECT_GT(allocation.degree_per_group[1], allocation.degree_per_group[0]);
  // Exact greedy outcome: gains for group1 are 450,150,75,45; group0: 50,...
  // Order: 450, 150, 75, 50 -> degrees {2, 4}.
  EXPECT_EQ(allocation.degree_per_group, (std::vector<std::size_t>{2, 4}));
}

TEST(DegreeAllocator, RespectsMaxDegree) {
  const std::vector<GroupDemand> groups{curve(1000, 1, 3), curve(1, 1, 3)};
  AllocatorConfig config = config_with(6, 1, 3);
  const auto allocation = allocate_replica_budget(groups, config);
  EXPECT_LE(allocation.degree_per_group[0], 3u);
  EXPECT_LE(allocation.degree_per_group[1], 3u);
  EXPECT_EQ(allocation.replicas_used, 6u);  // budget exactly fits 2 * max
}

TEST(DegreeAllocator, SurplusBudgetStopsAtMaxEverywhere) {
  const std::vector<GroupDemand> groups{curve(100, 1, 3), curve(200, 1, 3)};
  const auto allocation = allocate_replica_budget(groups, config_with(100, 1, 3));
  EXPECT_EQ(allocation.degree_per_group, (std::vector<std::size_t>{3, 3}));
  EXPECT_EQ(allocation.replicas_used, 6u);
}

TEST(DegreeAllocator, GreedyIsOptimalForConvexCurves) {
  // Exhaustively check small instances: greedy matches brute force.
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<GroupDemand> groups;
    for (int g = 0; g < 3; ++g) {
      groups.push_back(curve(rng.uniform(10.0, 1000.0), 1, 4));
    }
    const std::size_t budget = 3 + rng.below(9);  // 3..11 of max 12
    const auto greedy = allocate_replica_budget(groups, config_with(budget, 1, 4));

    // Brute force over all degree vectors.
    double best = 1e18;
    for (std::size_t a = 1; a <= 4; ++a) {
      for (std::size_t b = 1; b <= 4; ++b) {
        for (std::size_t c = 1; c <= 4; ++c) {
          if (a + b + c > budget) continue;
          const double total = groups[0].delay_by_degree[a - 1] +
                               groups[1].delay_by_degree[b - 1] +
                               groups[2].delay_by_degree[c - 1];
          best = std::min(best, total);
        }
      }
    }
    EXPECT_NEAR(greedy.estimated_total_delay, best, 1e-9) << "trial " << trial;
  }
}

TEST(DegreeAllocator, BeatsUniformOnSkewedDemand) {
  std::vector<GroupDemand> groups;
  Rng rng(11);
  for (int g = 0; g < 16; ++g) {
    // Zipf-ish demand skew.
    groups.push_back(curve(1000.0 / static_cast<double>(g + 1), 1, 7));
  }
  const AllocatorConfig config = config_with(48, 1, 7);
  const auto demand_aware = allocate_replica_budget(groups, config);
  const auto uniform = allocate_uniform(groups, config);
  EXPECT_LT(demand_aware.estimated_total_delay, uniform.estimated_total_delay);
  EXPECT_LE(demand_aware.replicas_used, config.budget);
}

TEST(DegreeAllocator, UniformBaselineClampsToBounds) {
  const std::vector<GroupDemand> groups{curve(10, 2, 4), curve(10, 2, 4)};
  AllocatorConfig config = config_with(100, 2, 4);
  const auto allocation = allocate_uniform(groups, config);
  EXPECT_EQ(allocation.degree_per_group, (std::vector<std::size_t>{4, 4}));
}

}  // namespace
}  // namespace geored::core
