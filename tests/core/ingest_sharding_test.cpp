// Sharded ingest staging (core/replication_manager.{h,cpp}): determinism
// and concurrency pins for the per-shard staging that replaced the single
// ingest mutex. Named apart from `Manager` so the tsan CI tier (which runs
// suites by name) exercises the shard locks, the all-shards flush, and the
// per-shard counters under real thread interleavings.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/serialize.h"
#include "common/thread_pool.h"
#include "core/replication_manager.h"

namespace geored::core {
namespace {

std::vector<place::CandidateInfo> line_candidates(std::size_t count = 12) {
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < count; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i),
                          Point{100.0 * static_cast<double>(i)},
                          std::numeric_limits<double>::infinity()});
  }
  return candidates;
}

ManagerConfig sharded_config(std::size_t k, std::size_t shards) {
  ManagerConfig config;
  config.replication_degree = k;
  config.summarizer.max_clusters = 4;
  config.ingest_batch_grain = 32;
  config.ingest_shards = shards;
  return config;
}

/// Restores the global pool (and with it GEORED_THREADS semantics) on exit.
struct GlobalPoolGuard {
  ~GlobalPoolGuard() { ThreadPool::set_global_thread_count(0); }
};

/// Drives a fixed externally-ordered access mix — batches and single
/// records against every replica — through one epoch and returns the full
/// serialized manager state.
std::vector<std::uint8_t> drive_epoch(std::size_t threads, std::size_t shards) {
  ThreadPool::set_global_thread_count(threads);
  ReplicationManager manager(line_candidates(), sharded_config(5, shards), 97);
  const auto placement = manager.placement();
  Rng rng(0x5a4d);
  for (std::size_t i = 0; i < 400; ++i) {
    manager.record_access(placement[i % placement.size()],
                          Point{rng.uniform(0.0, 1100.0)}, rng.uniform(0.1, 3.0));
  }
  for (std::size_t r = 0; r < placement.size(); ++r) {
    PointSet batch(1);
    std::vector<double> weights;
    for (std::size_t i = 0; i < 100 + 17 * r; ++i) {
      batch.push_back(Point{rng.uniform(0.0, 1100.0)});
      weights.push_back(rng.uniform(0.1, 3.0));
    }
    manager.record_access_batch(placement[r], batch, weights);
  }
  manager.run_epoch();
  ByteWriter writer;
  manager.save(writer);
  return writer.bytes();
}

TEST(IngestSharding, BytesIdenticalAtThreadCounts1And4) {
  // The acceptance pin: sharded record_access_batch output is byte-identical
  // at GEORED_THREADS 1 vs 4 (the pool count is what GEORED_THREADS sets).
  GlobalPoolGuard guard;
  const auto bytes_one = drive_epoch(1, 8);
  const auto bytes_four = drive_epoch(4, 8);
  EXPECT_EQ(bytes_one, bytes_four)
      << "sharded staging must be byte-identical at any thread count";
}

TEST(IngestSharding, BytesIdenticalAcrossShardCounts) {
  // The shard count is a contention knob, never an observable one: flushes
  // merge shards in node-id order, so 1, 3, and 8 shards must serialize the
  // same bytes (1 shard = the historical single staging lock).
  GlobalPoolGuard guard;
  const auto one = drive_epoch(2, 1);
  const auto three = drive_epoch(2, 3);
  const auto eight = drive_epoch(2, 8);
  EXPECT_EQ(one, three);
  EXPECT_EQ(one, eight);
}

TEST(IngestSharding, RejectsZeroShards) {
  EXPECT_THROW(ReplicationManager(line_candidates(), sharded_config(2, 0), 1),
               std::invalid_argument);
}

TEST(IngestSharding, ConcurrentRecordsAcrossManyShardsLoseNothing) {
  // More replicas than shards, hammered from several threads: every access
  // must land exactly once in a per-shard counter and reach a summarizer.
  ReplicationManager manager(line_candidates(), sharded_config(7, 4), 31);
  const auto placement = manager.placement();
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kBatchesPerThread = 24;
  constexpr std::size_t kRowsPerBatch = 16;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t b = 0; b < kBatchesPerThread; ++b) {
        const topo::NodeId replica = placement[(t + b) % placement.size()];
        PointSet batch(1);
        for (std::size_t r = 0; r < kRowsPerBatch; ++r) {
          batch.push_back(Point{100.0 * static_cast<double>((t + r) % 12)});
        }
        manager.record_access_batch(replica, batch);
        manager.record_access(placement[(t * 3 + b) % placement.size()],
                              Point{50.0 * static_cast<double>(t)});
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const std::uint64_t expected = kThreads * kBatchesPerThread * (kRowsPerBatch + 1);
  EXPECT_EQ(manager.epoch_accesses(), expected)
      << "per-shard counters must sum to the exact access total";
  const EpochReport report = manager.run_epoch();
  EXPECT_EQ(report.epoch_accesses, expected);
  EXPECT_EQ(manager.epoch_accesses(), 0u) << "run_epoch must zero every shard";
}

TEST(IngestSharding, FlushesDuringConcurrentRecordsAreNotTorn) {
  // A reader repeatedly forcing the all-shards flush while a writer records
  // across shards: under tsan this is the schedule that catches a shard
  // mutex missing from the flush's lock-all set.
  ReplicationManager manager(line_candidates(), sharded_config(5, 4), 19);
  const auto placement = manager.placement();
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      manager.flush_ingest();
      std::this_thread::yield();
    }
  });
  constexpr std::size_t kAccesses = 600;
  for (std::size_t i = 0; i < kAccesses; ++i) {
    manager.record_access(placement[i % placement.size()],
                          Point{100.0 * static_cast<double>(i % 12)});
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(manager.epoch_accesses(), kAccesses);
}

TEST(IngestSharding, CheckpointRoundTripPreservesAccessCounter) {
  // restore() commits the staged counter into shard 0; the observable sum
  // must survive a save/restore round trip exactly.
  ReplicationManager manager(line_candidates(), sharded_config(5, 8), 55);
  const auto placement = manager.placement();
  for (std::size_t i = 0; i < 123; ++i) {
    manager.record_access(placement[i % placement.size()],
                          Point{100.0 * static_cast<double>(i % 12)});
  }
  ByteWriter writer;
  manager.save(writer);

  ReplicationManager restored(line_candidates(), sharded_config(5, 8), 55);
  ByteReader reader(writer.bytes());
  restored.restore(reader);
  EXPECT_EQ(restored.epoch_accesses(), manager.epoch_accesses());
  // And the restored manager keeps serializing the same bytes.
  ByteWriter again;
  restored.save(again);
  EXPECT_EQ(again.bytes(), writer.bytes());
}

}  // namespace
}  // namespace geored::core
