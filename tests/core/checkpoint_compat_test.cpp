// Checkpoint format compatibility: the v2 manager checkpoint (budget grant
// flag + priority weight, appended in the fixed header after the degree)
// and the fleet envelope that aggregates per-group checkpoints.
//
// v2 layout, fixed header (little-endian):
//   [0,4)   magic "GRMC"
//   [4,8)   version (2)
//   [8,16)  epoch_index u64
//   [16,24) epoch_accesses u64
//   [24,32) degree u64
//   [32,36) budget_granted u32        <- added in v2
//   [36,44) budget_weight f64         <- added in v2
//   ...     placement / summarizer state (unchanged from v1)
// A v1 blob is the same stream without bytes [32,44); restore() accepts it
// and fills the documented defaults (granted = false, weight = 1).
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "common/random.h"
#include "core/fleet_manager.h"
#include "core/replication_manager.h"

namespace geored::core {
namespace {

constexpr std::size_t kBudgetFieldsOffset = 32;  // after magic/version/epoch/accesses/degree
constexpr std::size_t kBudgetFieldsSize = sizeof(std::uint32_t) + sizeof(double);

std::vector<place::CandidateInfo> line_candidates(std::size_t count = 8) {
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < count; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i),
                          Point{100.0 * static_cast<double>(i)},
                          std::numeric_limits<double>::infinity()});
  }
  return candidates;
}

ManagerConfig small_config(std::size_t k = 2) {
  ManagerConfig config;
  config.replication_degree = k;
  config.summarizer.max_clusters = 4;
  return config;
}

/// Rewrites a v2 blob into the v1 wire form: version field patched, the two
/// budget fields cut out. Cheaper and more honest than hand-crafting the
/// summarizer tail — the remainder of the stream is bit-identical between
/// versions.
std::vector<std::uint8_t> downgrade_to_v1(std::vector<std::uint8_t> bytes) {
  const std::uint32_t v1 = 1;
  std::memcpy(bytes.data() + sizeof(std::uint32_t), &v1, sizeof v1);
  bytes.erase(bytes.begin() + kBudgetFieldsOffset,
              bytes.begin() + kBudgetFieldsOffset + kBudgetFieldsSize);
  return bytes;
}

TEST(CheckpointV2, BudgetStateRoundTrips) {
  ReplicationManager primary(line_candidates(), small_config(2), 7);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) primary.serve(Point{rng.normal(300.0, 80.0)});
  primary.set_degree(3);  // marks the degree as budget-granted
  primary.set_budget_weight(2.5);

  ByteWriter writer;
  primary.save(writer);

  ReplicationManager standby(line_candidates(), small_config(2), 7);
  ByteReader reader(writer.bytes());
  standby.restore(reader);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_TRUE(standby.budget_granted());
  EXPECT_DOUBLE_EQ(standby.budget_weight(), 2.5);
  EXPECT_EQ(standby.degree(), 3u);
  EXPECT_EQ(standby.placement(), primary.placement());
}

TEST(CheckpointV2, V1BlobRestoresWithDocumentedDefaults) {
  ReplicationManager primary(line_candidates(), small_config(2), 7);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) primary.serve(Point{rng.normal(300.0, 80.0)});
  primary.set_degree(3);
  primary.set_budget_weight(2.5);

  ByteWriter writer;
  primary.save(writer);
  const auto v1_bytes = downgrade_to_v1(writer.bytes());

  ReplicationManager standby(line_candidates(), small_config(2), 7);
  ByteReader reader(v1_bytes);
  standby.restore(reader);
  EXPECT_TRUE(reader.exhausted());
  // v1 predates budget state: the defaults, not the primary's values.
  EXPECT_FALSE(standby.budget_granted());
  EXPECT_DOUBLE_EQ(standby.budget_weight(), 1.0);
  // Everything v1 did carry still lands.
  EXPECT_EQ(standby.degree(), 3u);
  EXPECT_EQ(standby.placement(), primary.placement());
  EXPECT_EQ(standby.epoch_accesses(), primary.epoch_accesses());
}

TEST(CheckpointV2, RejectsNonFiniteBudgetWeight) {
  ReplicationManager primary(line_candidates(), small_config(2), 7);
  ByteWriter writer;
  primary.save(writer);
  auto bytes = writer.bytes();
  const double bad = -1.0;
  std::memcpy(bytes.data() + kBudgetFieldsOffset + sizeof(std::uint32_t), &bad,
              sizeof bad);

  ReplicationManager standby(line_candidates(), small_config(2), 7);
  const auto before = standby.placement();
  ByteReader reader(bytes);
  EXPECT_THROW(standby.restore(reader), std::invalid_argument);
  EXPECT_EQ(standby.placement(), before);  // failed restore leaves state alone
}

TEST(FleetCheckpoint, EnvelopeRoundTripsWeightsAndDegrees) {
  FleetConfig config;
  config.groups = 3;
  config.manager = small_config(2);
  config.replica_budget = 7;
  config.min_degree = 1;
  config.max_degree = 4;

  FleetManager primary(line_candidates(), config, 11);
  primary.set_group_weight(1, 5.0);
  for (std::size_t g = 0; g < primary.group_count(); ++g) {
    Rng rng(100 * (g + 1));
    for (int i = 0; i < 200; ++i) {
      primary.group(g).serve(Point{rng.normal(200.0 * static_cast<double>(g), 30.0)});
    }
  }
  primary.run_epochs();

  ByteWriter writer;
  primary.save(writer);

  FleetManager standby(line_candidates(), config, 11);
  ByteReader reader(writer.bytes());
  standby.restore(reader);
  EXPECT_TRUE(reader.exhausted());
  for (std::size_t g = 0; g < primary.group_count(); ++g) {
    EXPECT_EQ(standby.group(g).placement(), primary.group(g).placement()) << "group " << g;
    EXPECT_EQ(standby.group(g).degree(), primary.group(g).degree()) << "group " << g;
    EXPECT_DOUBLE_EQ(standby.group_weight(g), primary.group_weight(g)) << "group " << g;
  }
}

TEST(FleetCheckpoint, EnvelopeLeadsWithMagicVersionAndGroupCount) {
  FleetConfig config;
  config.groups = 2;
  config.manager = small_config(2);
  FleetManager fleet(line_candidates(), config, 11);
  ByteWriter writer;
  fleet.save(writer);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_u32(), kFleetCheckpointMagic);
  EXPECT_EQ(reader.read_u32(), kFleetCheckpointVersion);
  EXPECT_EQ(reader.read_u32(), 2u);
}

TEST(FleetCheckpoint, RejectsGroupCountMismatch) {
  FleetConfig config;
  config.groups = 2;
  config.manager = small_config(2);
  FleetManager two_groups(line_candidates(), config, 11);
  ByteWriter writer;
  two_groups.save(writer);

  config.groups = 3;
  FleetManager three_groups(line_candidates(), config, 11);
  const auto before = three_groups.group(0).placement();
  ByteReader reader(writer.bytes());
  EXPECT_THROW(three_groups.restore(reader), std::invalid_argument);
  EXPECT_EQ(three_groups.group(0).placement(), before);
}

}  // namespace
}  // namespace geored::core
