#include "core/system.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/random.h"
#include "topology/planetlab_model.h"

namespace geored::core {
namespace {

/// Small world for event-driven integration tests: the first `dcs` topology
/// nodes are candidate data centers, the rest are clients. Coordinates are
/// perfect (we hand the true 2-D geometry to the system) so tests isolate
/// system mechanics from embedding error.
struct SimWorld {
  topo::Topology topology;
  std::vector<place::CandidateInfo> candidates;
  std::vector<topo::NodeId> clients;
  std::vector<Point> client_coords;

  explicit SimWorld(std::size_t dcs = 5, std::size_t client_count = 30,
                    std::uint64_t seed = 42)
      : topology(topo::Topology(std::vector<topo::NodeInfo>(0), SymMatrix(0), {})) {
    Rng rng(seed);
    const std::size_t n = dcs + client_count;
    std::vector<Point> positions;
    for (std::size_t i = 0; i < n; ++i) {
      positions.push_back(Point{rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)});
    }
    SymMatrix rtt(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        rtt.set(i, j, std::max(0.1, positions[i].distance_to(positions[j])));
      }
    }
    topology = topo::Topology(std::vector<topo::NodeInfo>(n), std::move(rtt), {});
    for (std::size_t i = 0; i < dcs; ++i) {
      candidates.push_back({static_cast<topo::NodeId>(i), positions[i],
                            std::numeric_limits<double>::infinity()});
    }
    for (std::size_t i = dcs; i < n; ++i) {
      clients.push_back(static_cast<topo::NodeId>(i));
      client_coords.push_back(positions[i]);
    }
  }
};

SystemConfig fast_config() {
  SystemConfig config;
  config.manager.replication_degree = 2;
  config.manager.summarizer.max_clusters = 4;
  config.epoch_ms = 10'000.0;
  config.selection = ReplicaSelection::kTrueClosest;
  return config;
}

TEST(System, RunsAndRecordsAccessDelays) {
  SimWorld world;
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  wl::StaticWorkload workload(std::vector<double>(world.clients.size(), 0.001));
  ReplicationSystem system(simulator, network, world.candidates, world.clients,
                           world.client_coords, workload, world.candidates[0].node,
                           fast_config(), 1);
  system.run(50'000.0);

  // ~30 clients x 0.001/ms x 50 s = ~1500 accesses.
  EXPECT_GT(system.overall_delay().count(), 1000u);
  EXPECT_LT(system.overall_delay().count(), 2200u);
  EXPECT_GT(system.overall_delay().mean(), 0.0);
  EXPECT_EQ(system.failed_accesses(), 0u);
  // Five epoch ticks fire, but the fifth lands exactly at the horizon and
  // its summary round-trips cannot complete before time runs out.
  EXPECT_EQ(system.epoch_history().size(), 4u);

  // Every traffic class except migration-if-stable was exercised.
  const auto& stats = network.stats();
  EXPECT_GT(stats.bytes[static_cast<std::size_t>(sim::TrafficClass::kAccess)], 0u);
  EXPECT_GT(stats.bytes[static_cast<std::size_t>(sim::TrafficClass::kSummary)], 0u);
  EXPECT_GT(stats.bytes[static_cast<std::size_t>(sim::TrafficClass::kControl)], 0u);
}

TEST(System, AccessDelayEqualsRttOfChosenReplica) {
  // One client, one replica possible (k = 1, 1 candidate): the recorded
  // delay must be exactly the client-replica RTT.
  SimWorld world(1, 3, 7);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  wl::StaticWorkload workload(std::vector<double>(world.clients.size(), 0.0005));
  SystemConfig config = fast_config();
  config.manager.replication_degree = 1;
  ReplicationSystem system(simulator, network, world.candidates, world.clients,
                           world.client_coords, workload, world.candidates[0].node, config,
                           1);
  system.run(20'000.0);
  ASSERT_GT(system.overall_delay().count(), 0u);
  // All three clients read from the single replica; delays in the RTT set.
  for (const auto client : world.clients) {
    const double rtt = world.topology.rtt_ms(client, world.candidates[0].node);
    EXPECT_GE(system.overall_delay().max() + 1e-9, rtt * 0.0);  // sanity
  }
  EXPECT_GE(system.overall_delay().min(),
            world.topology.rtt_ms(world.clients[0], world.candidates[0].node) * 0.0);
  // Stronger: every observed delay equals one of the client RTTs.
  // (min and max both members of the RTT set.)
  std::vector<double> rtts;
  for (const auto client : world.clients) {
    rtts.push_back(world.topology.rtt_ms(client, world.candidates[0].node));
  }
  std::sort(rtts.begin(), rtts.end());
  EXPECT_NEAR(system.overall_delay().min(), rtts.front(), 1e-6);
  EXPECT_NEAR(system.overall_delay().max(), rtts.back(), 1e-6);
}

TEST(System, MigrationImprovesDelayOverEpochs) {
  // Clients clustered in one corner; initial random placement is likely far.
  // After the first epoch the system should have migrated and later epochs
  // must not be slower than the first.
  SimWorld world(8, 40, 3);
  // Move all clients into a tight cluster near candidate 0's corner.
  sim::Simulator simulator;
  for (auto& coord : world.client_coords) coord = Point{10.0, 10.0};
  // Rebuild RTTs so ground truth matches the clustered geometry.
  const std::size_t n = 8 + 40;
  std::vector<Point> positions;
  Rng rng(3);
  for (std::size_t i = 0; i < 8; ++i) {
    positions.push_back(Point{rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)});
  }
  for (std::size_t i = 8; i < n; ++i) {
    positions.push_back(Point{rng.normal(10.0, 3.0), rng.normal(10.0, 3.0)});
  }
  SymMatrix rtt(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      rtt.set(i, j, std::max(0.1, positions[i].distance_to(positions[j])));
    }
  }
  world.topology = topo::Topology(std::vector<topo::NodeInfo>(n), std::move(rtt), {});
  for (std::size_t i = 0; i < 8; ++i) world.candidates[i].coords = positions[i];
  for (std::size_t i = 0; i < 40; ++i) world.client_coords[i] = positions[8 + i];

  sim::Network network(simulator, world.topology);
  wl::StaticWorkload workload(std::vector<double>(world.clients.size(), 0.002));
  SystemConfig config = fast_config();
  config.manager.replication_degree = 1;
  ReplicationSystem system(simulator, network, world.candidates, world.clients,
                           world.client_coords, workload, world.candidates[0].node, config,
                           999);
  system.run(60'000.0);

  const auto& epochs = system.epoch_history();
  ASSERT_GE(epochs.size(), 3u);
  const double first = epochs.front().mean_delay_ms;
  const double last = epochs.back().mean_delay_ms;
  EXPECT_LE(last, first + 1e-9);
  // The final placement serves the cluster from its best candidate.
  double best_possible = 1e18;
  for (const auto& c : world.candidates) {
    double total = 0.0;
    for (const auto client : world.clients) {
      total += world.topology.rtt_ms(client, c.node);
    }
    best_possible = std::min(best_possible, total / 40.0);
  }
  EXPECT_NEAR(last, best_possible, best_possible * 0.25 + 2.0);
}

TEST(System, FailoverServesFromNextClosestReplica) {
  SimWorld world(4, 20, 11);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  wl::StaticWorkload workload(std::vector<double>(world.clients.size(), 0.001));
  SystemConfig config = fast_config();
  config.manager.replication_degree = 2;
  ReplicationSystem system(simulator, network, world.candidates, world.clients,
                           world.client_coords, workload, world.candidates[0].node, config,
                           5);
  // Fail one replica for a window; the other keeps serving.
  const auto initial = system.manager().placement();
  system.schedule_failure(initial[0], 2'000.0, 6'000.0);
  system.run(9'000.0);
  EXPECT_EQ(system.failed_accesses(), 0u);
  EXPECT_GT(system.overall_delay().count(), 0u);
}

TEST(System, EpochDuringFailureMovesReplicaOffDeadNode) {
  SimWorld world(6, 20, 31);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  wl::StaticWorkload workload(std::vector<double>(world.clients.size(), 0.002));
  SystemConfig config = fast_config();
  config.manager.replication_degree = 2;
  ReplicationSystem system(simulator, network, world.candidates, world.clients,
                           world.client_coords, workload, world.candidates[0].node, config,
                           41);
  const auto initial = system.manager().placement();
  // Fail one replica across the first two epoch boundaries (10 s, 20 s).
  system.schedule_failure(initial[0], 5'000.0, 25'000.0);
  system.run(40'000.0);

  // Every epoch that ran while the node was down placed replicas elsewhere.
  bool saw_failure_epoch = false;
  for (const auto& epoch : system.epoch_history()) {
    const double epoch_time = static_cast<double>(epoch.epoch + 1) * config.epoch_ms;
    if (epoch_time > 5'000.0 && epoch_time <= 25'000.0) {
      saw_failure_epoch = true;
      for (const auto node : epoch.placement) EXPECT_NE(node, initial[0]);
    }
  }
  EXPECT_TRUE(saw_failure_epoch);
  EXPECT_EQ(system.failed_accesses(), 0u);
}

TEST(System, AllReplicasDownCountsFailedAccesses) {
  SimWorld world(2, 10, 13);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  wl::StaticWorkload workload(std::vector<double>(world.clients.size(), 0.001));
  SystemConfig config = fast_config();
  config.manager.replication_degree = 2;
  ReplicationSystem system(simulator, network, world.candidates, world.clients,
                           world.client_coords, workload, world.candidates[0].node, config,
                           5);
  const auto initial = system.manager().placement();
  for (const auto node : initial) system.schedule_failure(node, 1'000.0, 5'000.0);
  system.run(8'000.0);
  EXPECT_GT(system.failed_accesses(), 0u);
  EXPECT_GT(system.overall_delay().count(), 0u);  // service resumed after repair
}

TEST(System, CoordinateBasedSelectionWorks) {
  SimWorld world(5, 25, 17);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  wl::StaticWorkload workload(std::vector<double>(world.clients.size(), 0.001));
  SystemConfig config = fast_config();
  config.selection = ReplicaSelection::kByCoordinates;
  ReplicationSystem system(simulator, network, world.candidates, world.clients,
                           world.client_coords, workload, world.candidates[0].node, config,
                           23);
  system.run(30'000.0);
  EXPECT_GT(system.overall_delay().count(), 0u);
  EXPECT_EQ(system.failed_accesses(), 0u);
}

TEST(System, OracleSelectionNeverSlowerThanCoordinateSelection) {
  // With noisy coordinates, picking replicas by predicted distance
  // occasionally picks wrong; the oracle (true closest) is a lower bound.
  SimWorld world(6, 25, 47);
  // Perturb the coordinates the clients route by (ground truth unchanged).
  Rng noise(9);
  auto noisy_coords = world.client_coords;
  for (auto& coord : noisy_coords) {
    coord[0] += noise.normal(0.0, 40.0);
    coord[1] += noise.normal(0.0, 40.0);
  }
  const auto run = [&](ReplicaSelection selection, const std::vector<Point>& coords) {
    sim::Simulator simulator;
    sim::Network network(simulator, world.topology);
    wl::StaticWorkload workload(std::vector<double>(world.clients.size(), 0.001));
    SystemConfig config = fast_config();
    config.selection = selection;
    ReplicationSystem system(simulator, network, world.candidates, world.clients, coords,
                             workload, world.candidates[0].node, config, 3);
    system.run(30'000.0);
    return system.overall_delay().mean();
  };
  const double oracle = run(ReplicaSelection::kTrueClosest, world.client_coords);
  const double by_noisy_coords = run(ReplicaSelection::kByCoordinates, noisy_coords);
  EXPECT_LE(oracle, by_noisy_coords + 1e-9);
}

TEST(System, BandwidthLimitedNetworkSlowsLargeTransfers) {
  // With finite bandwidth, the response (64 KB) dominates the access delay
  // and migration transfers take visible time.
  SimWorld world(4, 15, 37);
  sim::Simulator fast_sim, slow_sim;
  sim::Network fast_net(fast_sim, world.topology);
  sim::NetworkConfig slow_config;
  slow_config.bandwidth_bytes_per_ms = 64.0 * 1024.0;  // 64 KB/ms
  sim::Network slow_net(slow_sim, world.topology, slow_config);

  wl::StaticWorkload workload(std::vector<double>(world.clients.size(), 0.001));
  SystemConfig config = fast_config();
  ReplicationSystem fast_system(fast_sim, fast_net, world.candidates, world.clients,
                                world.client_coords, workload, world.candidates[0].node,
                                config, 3);
  ReplicationSystem slow_system(slow_sim, slow_net, world.candidates, world.clients,
                                world.client_coords, workload, world.candidates[0].node,
                                config, 3);
  fast_system.run(20'000.0);
  slow_system.run(20'000.0);
  ASSERT_GT(fast_system.overall_delay().count(), 0u);
  // Serialization adds exactly ~1 ms (64 KB at 64 KB/ms) plus request time.
  EXPECT_GT(slow_system.overall_delay().mean(),
            fast_system.overall_delay().mean() + 0.9);
}

TEST(System, JitteredNetworkStillDeterministic) {
  SimWorld world(3, 10, 41);
  sim::NetworkConfig config;
  config.jitter = 0.1;
  const auto run = [&] {
    sim::Simulator simulator;
    sim::Network network(simulator, world.topology, config);
    wl::StaticWorkload workload(std::vector<double>(world.clients.size(), 0.001));
    ReplicationSystem system(simulator, network, world.candidates, world.clients,
                             world.client_coords, workload, world.candidates[0].node,
                             fast_config(), 3);
    system.run(15'000.0);
    return std::pair{system.overall_delay().count(), system.overall_delay().mean()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(System, RejectsMismatchedInputs) {
  SimWorld world;
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  wl::StaticWorkload workload(std::vector<double>(world.clients.size() - 1, 0.001));
  EXPECT_THROW(ReplicationSystem(simulator, network, world.candidates, world.clients,
                                 world.client_coords, workload, world.candidates[0].node,
                                 fast_config(), 1),
               std::invalid_argument);
}

TEST(System, RunIsSingleShot) {
  SimWorld world(3, 5, 29);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  wl::StaticWorkload workload(std::vector<double>(world.clients.size(), 0.0001));
  ReplicationSystem system(simulator, network, world.candidates, world.clients,
                           world.client_coords, workload, world.candidates[0].node,
                           fast_config(), 1);
  system.run(1'000.0);
  EXPECT_THROW(system.run(2'000.0), std::invalid_argument);
}

}  // namespace
}  // namespace geored::core
