#include "core/epoch_pipeline.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/summarizer.h"
#include "common/random.h"
#include "common/serialize.h"
#include "core/replication_manager.h"
#include "placement/strategy.h"

namespace geored::core {
namespace {

/// Candidates on a 1-D line at x = 0, 100, 200, ..., 900.
std::vector<place::CandidateInfo> line_candidates(std::size_t count = 10) {
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < count; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i),
                          Point{100.0 * static_cast<double>(i)},
                          std::numeric_limits<double>::infinity()});
  }
  return candidates;
}

void append_placement(std::string& out, const char* label, const place::Placement& p) {
  out += label;
  out += "=[";
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(p[i]);
  }
  out += "]";
}

/// Renders every EpochReport field with bit-exact doubles (hex float), the
/// same encoding the pre-refactor golden capture used. Two reports compare
/// equal here iff they are bitwise-identical.
std::string format_report(const EpochReport& r) {
  std::string out;
  append_placement(out, "old", r.old_placement);
  append_placement(out, " proposed", r.proposed_placement);
  append_placement(out, " adopted", r.adopted_placement);
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                " old_delay=%a new_delay=%a migrate=%d gain=%a rel=%a cost=%a moved=%zu "
                "bytes=%zu accesses=%llu degree=%zu",
                r.old_estimated_delay_ms, r.new_estimated_delay_ms,
                r.decision.migrate ? 1 : 0, r.decision.gain_ms, r.decision.relative_gain,
                r.decision.cost_usd, r.replicas_moved, r.summary_bytes,
                static_cast<unsigned long long>(r.epoch_accesses), r.degree);
  out += buffer;
  return out;
}

// The pipeline refactor's contract: the default composition reproduces the
// hand-inlined pre-refactor run_epoch bit for bit. These lines were captured
// from the pre-refactor build (same scenario: k=3, seed 7, three client
// populations at x = 0 / 430 / 900, 900 accesses each per epoch, 6 epochs).
const char* const kGoldenDefaultScenario[] = {
    "old=[7,3,8] proposed=[0,9,4] adopted=[0,9,4] old_delay=0x1.615a3e3074a26p+7 "
    "new_delay=0x1.c3f6bc12401cp+3 migrate=1 gain=0x1.451ad26f50a0ap+7 "
    "rel=0x1.d711d49b7cd5fp-1 cost=0x1.3333333333334p-2 moved=3 bytes=332 accesses=2700 "
    "degree=3",
    "old=[0,9,4] proposed=[0,9,4] adopted=[0,9,4] old_delay=0x1.fc2bd242e094cp+3 "
    "new_delay=0x1.fc2bd242e094cp+3 migrate=0 gain=0x0p+0 rel=0x0p+0 cost=0x0p+0 moved=0 "
    "bytes=492 accesses=2700 degree=3",
    "old=[0,9,4] proposed=[9,4,0] adopted=[0,9,4] old_delay=0x1.07e9ab510c792p+4 "
    "new_delay=0x1.07e9ab510c792p+4 migrate=0 gain=0x0p+0 rel=0x0p+0 cost=0x0p+0 moved=0 "
    "bytes=492 accesses=2700 degree=3",
    "old=[0,9,4] proposed=[9,0,4] adopted=[0,9,4] old_delay=0x1.123e7149fed67p+4 "
    "new_delay=0x1.123e7149fed67p+4 migrate=0 gain=0x0p+0 rel=0x0p+0 cost=0x0p+0 moved=0 "
    "bytes=492 accesses=2700 degree=3",
    "old=[0,9,4] proposed=[0,9,4] adopted=[0,9,4] old_delay=0x1.1606b0bb1d29dp+4 "
    "new_delay=0x1.1606b0bb1d29dp+4 migrate=0 gain=0x0p+0 rel=0x0p+0 cost=0x0p+0 moved=0 "
    "bytes=492 accesses=2700 degree=3",
    "old=[0,9,4] proposed=[0,9,4] adopted=[0,9,4] old_delay=0x1.1a62427729da4p+4 "
    "new_delay=0x1.1a62427729da4p+4 migrate=0 gain=0x0p+0 rel=0x0p+0 cost=0x0p+0 moved=0 "
    "bytes=492 accesses=2700 degree=3",
};

ManagerConfig golden_config() {
  ManagerConfig config;
  config.replication_degree = 3;
  config.summarizer.max_clusters = 4;
  config.summarizer.min_absorb_radius = 10.0;
  return config;
}

void feed_golden_epoch(ReplicationManager& manager, Rng& rng) {
  for (int i = 0; i < 900; ++i) {
    manager.serve(Point{rng.normal(0.0, 15.0)});
    manager.serve(Point{rng.normal(430.0, 15.0)});
    manager.serve(Point{rng.normal(900.0, 15.0)});
  }
}

TEST(EpochPipeline, DefaultCompositionMatchesPreRefactorGolden) {
  ReplicationManager manager(line_candidates(), golden_config(), 7);
  Rng rng(5);
  for (std::size_t epoch = 0; epoch < std::size(kGoldenDefaultScenario); ++epoch) {
    feed_golden_epoch(manager, rng);
    EXPECT_EQ(format_report(manager.run_epoch()), kGoldenDefaultScenario[epoch])
        << "epoch " << epoch;
  }
}

TEST(EpochPipeline, ExplicitCompositionMatchesLegacyConstructor) {
  // Building the stages by hand must be indistinguishable from the
  // config-driven constructor — same reports, bit for bit, every epoch.
  const ManagerConfig config = golden_config();
  ReplicationManager legacy(line_candidates(), config, 7);
  EpochPipeline pipeline;
  pipeline.collector = make_collector("direct");
  pipeline.proposer = std::make_unique<ClusteringProposer>(config.strategy,
                                                           config.warm_start_macro_clusters);
  pipeline.gate = std::make_unique<PolicyGate>(config.migration);
  pipeline.adopter = std::make_unique<NearestRedistributionAdopter>();
  ReplicationManager explicit_stages(line_candidates(), config, 7, std::move(pipeline));

  Rng legacy_rng(5);
  Rng explicit_rng(5);
  for (int epoch = 0; epoch < 6; ++epoch) {
    feed_golden_epoch(legacy, legacy_rng);
    feed_golden_epoch(explicit_stages, explicit_rng);
    EXPECT_EQ(format_report(explicit_stages.run_epoch()), format_report(legacy.run_epoch()))
        << "epoch " << epoch;
  }
}

TEST(EpochPipeline, StrategyProposerMatchesLegacyForStatelessStrategies) {
  // A registry strategy without a warm-start cache still composes: offline
  // k-means through StrategyProposer proposes exactly what the bare
  // strategy would.
  const auto candidates = line_candidates();
  place::PlacementInput input;
  input.candidates = candidates;
  input.k = 3;
  input.seed = 11;
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    place::ClientRecord record;
    record.client = 0;
    record.coords = Point{rng.uniform(0.0, 900.0)};
    record.access_count = 1;
    input.clients.push_back(record);
  }

  StrategyProposer proposer(place::make_strategy("offline_kmeans"));
  EXPECT_EQ(proposer.name(), place::make_strategy("offline_kmeans")->name());
  EXPECT_EQ(proposer.propose(input), place::make_strategy("offline_kmeans")->place(input));
  EXPECT_TRUE(proposer.warm_centroids().empty());  // no cache to persist
}

TEST(EpochPipeline, RejectsIncompletePipelines) {
  EpochPipeline pipeline;  // all stages null
  EXPECT_THROW(
      ReplicationManager(line_candidates(), golden_config(), 7, std::move(pipeline)),
      std::invalid_argument);
}

TEST(EpochPipeline, CollectorRegistryKnowsItsNames) {
  const auto names = collector_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "direct");
  EXPECT_EQ(names[1], "hierarchical");
  EXPECT_EQ(names[2], "decentralized");
  EXPECT_EQ(names[3], "rpc");

  const auto direct = make_collector("direct");
  EXPECT_EQ(direct->name(), "direct");
  // "rpc" runs over real localhost sockets; like "direct" it needs no
  // simulated network.
  EXPECT_EQ(make_collector("rpc")->name(), "rpc");

  EXPECT_THROW(make_collector("carrier-pigeon"), std::invalid_argument);
  // Protocol collectors need a simulated network to run over.
  EXPECT_THROW(make_collector("hierarchical"), std::invalid_argument);
  EXPECT_THROW(make_collector("decentralized"), std::invalid_argument);
}

TEST(EpochPipeline, StrategyRegistryKnowsItsNames) {
  const auto names = place::strategy_names();
  ASSERT_EQ(names.size(), 7u);
  for (const auto& name : names) {
    const auto strategy = place::make_strategy(name);
    ASSERT_NE(strategy, nullptr) << name;
    EXPECT_EQ(place::make_strategy(place::strategy_kind(name))->name(), strategy->name());
  }
  // Aliases resolve to their canonical strategies.
  EXPECT_EQ(place::strategy_kind("offline"), place::strategy_kind("offline_kmeans"));
  EXPECT_EQ(place::strategy_kind("local-search"), place::strategy_kind("local_search"));
  EXPECT_THROW(place::make_strategy("simulated-annealing"), std::invalid_argument);
}

/// Serialized per-replica bytes after an adopt, keyed by node in map order —
/// the byte-equality currency for the adopter equivalence pin.
std::vector<std::pair<topo::NodeId, std::vector<std::uint8_t>>> serialized_summarizers(
    const std::map<topo::NodeId, cluster::MicroClusterSummarizer>& summarizers) {
  std::vector<std::pair<topo::NodeId, std::vector<std::uint8_t>>> out;
  for (const auto& [node, summarizer] : summarizers) {
    ByteWriter writer;
    summarizer.serialize(writer);
    out.emplace_back(node, writer.bytes());
  }
  return out;
}

// The kernelized NearestRedistributionAdopter is byte-identical to the frozen
// scalar reference (the doc contract in epoch_pipeline.h): same summarizer
// map keys, same serialized cluster bytes per replica, after both adopt()
// (nearest-replica redistribution) and retain() (decay aging). Large enough
// summary counts to cross the parallel-dispatch threshold, plus degenerate
// shapes: empty summaries, a single replica, and coincident candidates.
TEST(EpochPipeline, AdopterMatchesScalar) {
  cluster::SummarizerConfig config;
  config.max_clusters = 6;
  config.min_absorb_radius = 10.0;

  const auto run_case = [&](const std::vector<place::CandidateInfo>& candidates,
                            const place::Placement& next, std::size_t n_summaries,
                            std::uint64_t seed, const char* label) {
    Rng rng(seed);
    std::vector<cluster::MicroCluster> summaries;
    for (std::size_t i = 0; i < n_summaries; ++i) {
      cluster::MicroCluster micro;
      const double center = rng.uniform(-50.0, 950.0);
      const int accesses = 1 + static_cast<int>(rng.below(4));
      for (int a = 0; a < accesses; ++a) {
        micro.absorb(Point{rng.normal(center, 20.0)},
                     1.0 + static_cast<double>(rng.below(3)));
      }
      summaries.push_back(micro);
    }

    NearestRedistributionAdopter fast;
    ScalarNearestRedistributionAdopter scalar;
    std::map<topo::NodeId, cluster::MicroClusterSummarizer> fast_map, scalar_map;
    fast.adopt(next, summaries, candidates, config, fast_map);
    scalar.adopt(next, summaries, candidates, config, scalar_map);
    EXPECT_EQ(serialized_summarizers(fast_map), serialized_summarizers(scalar_map))
        << label << ": adopt() diverged";

    fast.retain(fast_map);
    scalar.retain(scalar_map);
    EXPECT_EQ(serialized_summarizers(fast_map), serialized_summarizers(scalar_map))
        << label << ": retain() diverged";
  };

  const auto candidates = line_candidates();
  run_case(candidates, {1, 4, 8}, 600, 0x5ca1, "parallel-scale");
  run_case(candidates, {0, 9}, 12, 0xbee, "small");
  run_case(candidates, {5}, 200, 0x1234, "single-replica");
  run_case(candidates, {2, 6}, 0, 0x9, "no-summaries");

  // Coincident candidate coordinates: the strict-< first-winner rule must
  // resolve ties to the lower placement slot in both implementations.
  auto coincident = line_candidates(6);
  for (auto& c : coincident) c.coords = Point{250.0};
  run_case(coincident, {3, 1, 5}, 150, 0x77, "coincident");
}

TEST(EpochPipeline, DirectCollectorFlattensInSourceOrder) {
  std::vector<SummarySource> sources(2);
  sources[0].node = 4;
  sources[1].node = 9;
  for (int s = 0; s < 2; ++s) {
    cluster::MicroCluster micro;
    micro.absorb(Point{100.0 * s}, 1.0);
    sources[s].clusters.push_back(micro);
  }
  const auto candidates = line_candidates();
  DirectCollector collector;
  const auto collected = collector.collect(sources, {candidates, 2, 0});
  ASSERT_EQ(collected.summaries.size(), 2u);
  EXPECT_EQ(collected.summaries[0].centroid()[0], 0.0);
  EXPECT_EQ(collected.summaries[1].centroid()[0], 100.0);
  EXPECT_FALSE(collected.agreed_proposal.has_value());
  EXPECT_GT(collected.summary_bytes, 0u);
}

}  // namespace
}  // namespace geored::core
