#include "core/aggregation.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "common/random.h"
#include "topology/topology.h"

namespace geored::core {
namespace {

/// 1-D world: data centers at x = 0, 100, ..., and summary sources holding
/// micro-clusters of synthetic populations near their own location.
struct AggWorld {
  topo::Topology topology;
  std::vector<place::CandidateInfo> candidates;
  std::vector<SummarySource> sources;

  explicit AggWorld(std::size_t dc_count, std::size_t source_count, std::uint64_t seed)
      : topology(topo::Topology(std::vector<topo::NodeInfo>(0), SymMatrix(0), {})) {
    SymMatrix rtt(dc_count);
    std::vector<Point> positions;
    for (std::size_t i = 0; i < dc_count; ++i) {
      positions.push_back(Point{100.0 * static_cast<double>(i)});
    }
    for (std::size_t i = 0; i < dc_count; ++i) {
      for (std::size_t j = i + 1; j < dc_count; ++j) {
        rtt.set(i, j, std::max(0.1, positions[i].distance_to(positions[j])));
      }
    }
    topology = topo::Topology(std::vector<topo::NodeInfo>(dc_count), std::move(rtt), {});
    for (std::size_t i = 0; i < dc_count; ++i) {
      candidates.push_back({static_cast<topo::NodeId>(i), positions[i],
                            std::numeric_limits<double>::infinity()});
    }
    Rng rng(seed);
    for (std::size_t s = 0; s < source_count; ++s) {
      SummarySource source;
      source.node = static_cast<topo::NodeId>(s % dc_count);
      const double center = 100.0 * static_cast<double>(s % dc_count);
      for (int c = 0; c < 4; ++c) {
        cluster::MicroCluster micro;
        for (int p = 0; p < 25; ++p) {
          micro.absorb(Point{center + rng.normal(0.0, 10.0)}, 1.0);
        }
        source.clusters.push_back(micro);
      }
      sources.push_back(std::move(source));
    }
  }

  std::uint64_t total_count() const {
    std::uint64_t total = 0;
    for (const auto& source : sources) {
      for (const auto& micro : source.clusters) total += micro.count();
    }
    return total;
  }
};

TEST(Aggregation, PlanAssignsEverySourceToNearestAggregator) {
  const AggWorld world(10, 20, 1);
  AggregationConfig config;
  config.aggregator_count = 3;
  const auto plan = plan_aggregation(world.candidates, world.sources, config, 7);
  ASSERT_EQ(plan.aggregators.size(), 3u);
  std::set<topo::NodeId> unique(plan.aggregators.begin(), plan.aggregators.end());
  EXPECT_EQ(unique.size(), 3u);
  for (const auto& source : world.sources) {
    ASSERT_TRUE(plan.parent.contains(source.node));
    const auto chosen = plan.parent.at(source.node);
    // Verify nearest-aggregator assignment.
    const Point& coords = world.candidates[source.node].coords;
    for (const auto other : plan.aggregators) {
      EXPECT_LE(coords.distance_to(world.candidates[chosen].coords),
                coords.distance_to(world.candidates[other].coords) + 1e-9);
    }
  }
}

TEST(Aggregation, DefaultAggregatorCountIsSqrtOfSources) {
  const AggWorld world(10, 9, 1);
  const auto plan = plan_aggregation(world.candidates, world.sources, {}, 7);
  EXPECT_EQ(plan.aggregators.size(), 3u);  // ceil(sqrt(9))
}

TEST(Aggregation, PlanValidation) {
  const AggWorld world(4, 4, 1);
  EXPECT_THROW(plan_aggregation({}, world.sources, {}, 7), std::invalid_argument);
  EXPECT_THROW(plan_aggregation(world.candidates, {}, {}, 7), std::invalid_argument);
}

TEST(Aggregation, TreeConservesAccessCounts) {
  const AggWorld world(8, 24, 3);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  AggregationConfig config;
  config.max_clusters_per_aggregator = 16;
  const auto plan = plan_aggregation(world.candidates, world.sources, config, 7);
  const auto result =
      run_aggregation(simulator, network, plan, world.sources, /*root=*/0, config);
  std::uint64_t merged_count = 0;
  for (const auto& micro : result.merged) merged_count += micro.count();
  EXPECT_EQ(merged_count, world.total_count());
  EXPECT_GT(result.completion_ms, 0.0);
  // Root holds at most aggregators * m-hat clusters.
  EXPECT_LE(result.merged.size(), plan.aggregators.size() * 16);
}

TEST(Aggregation, RootBandwidthIsBoundedUnlikeFlat) {
  const AggWorld world(10, 100, 5);
  AggregationConfig config;
  config.max_clusters_per_aggregator = 16;

  sim::Simulator tree_sim;
  sim::Network tree_net(tree_sim, world.topology);
  const auto plan = plan_aggregation(world.candidates, world.sources, config, 7);
  const auto tree = run_aggregation(tree_sim, tree_net, plan, world.sources, 0, config);

  sim::Simulator flat_sim;
  sim::Network flat_net(flat_sim, world.topology);
  const auto flat = run_flat_collection(flat_sim, flat_net, world.sources, 0);

  EXPECT_LT(tree.bytes_into_root, flat.bytes_into_root / 2);
  // Both deliver all the mass.
  std::uint64_t tree_count = 0, flat_count = 0;
  for (const auto& micro : tree.merged) tree_count += micro.count();
  for (const auto& micro : flat.merged) flat_count += micro.count();
  EXPECT_EQ(tree_count, flat_count);
}

TEST(Aggregation, MergedSummaryPreservesPopulationGeometry) {
  // Populations at x = 0, 100, ..., 700 must all be visible in the merged
  // summary (a centroid within 30 of each centre).
  const AggWorld world(8, 32, 9);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  AggregationConfig config;
  config.max_clusters_per_aggregator = 12;
  const auto plan = plan_aggregation(world.candidates, world.sources, config, 7);
  const auto result = run_aggregation(simulator, network, plan, world.sources, 0, config);
  for (std::size_t centre = 0; centre < 8; ++centre) {
    const Point target{100.0 * static_cast<double>(centre)};
    double best = 1e18;
    for (const auto& micro : result.merged) {
      best = std::min(best, micro.centroid().distance_to(target));
    }
    EXPECT_LT(best, 30.0) << "population " << centre;
  }
}

TEST(Aggregation, TwoHopCollectionTakesLongerThanFlat) {
  const AggWorld world(10, 40, 11);
  AggregationConfig config;
  const auto plan = plan_aggregation(world.candidates, world.sources, config, 7);

  sim::Simulator tree_sim;
  sim::Network tree_net(tree_sim, world.topology);
  const auto tree = run_aggregation(tree_sim, tree_net, plan, world.sources, 0, config);

  sim::Simulator flat_sim;
  sim::Network flat_net(flat_sim, world.topology);
  const auto flat = run_flat_collection(flat_sim, flat_net, world.sources, 0);

  // The bandwidth saving costs one extra hop of latency.
  EXPECT_GE(tree.completion_ms, flat.completion_ms);
}

}  // namespace
}  // namespace geored::core
