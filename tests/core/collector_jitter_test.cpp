// Determinism coverage for the simulated-protocol collectors: with a fixed
// seed, HierarchicalCollector and DecentralizedCollector must be
// bit-reproducible even when the network injects per-message jitter —
// message timing may wobble, but what arrives (and what is decided) cannot
// depend on the wobble's realization beyond the seeded stream itself.
#include "core/epoch_pipeline.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "cluster/summarizer.h"
#include "common/random.h"
#include "common/serialize.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "topology/topology.h"

namespace geored::core {
namespace {

/// 1-D world with data centers at x = 0, 100, ... and per-source synthetic
/// populations, as in the aggregation tests.
struct JitterWorld {
  topo::Topology topology;
  std::vector<place::CandidateInfo> candidates;
  std::vector<SummarySource> sources;

  JitterWorld(std::size_t dc_count, std::size_t source_count, std::uint64_t seed)
      : topology(topo::Topology(std::vector<topo::NodeInfo>(0), SymMatrix(0), {})) {
    SymMatrix rtt(dc_count);
    std::vector<Point> positions;
    for (std::size_t i = 0; i < dc_count; ++i) {
      positions.push_back(Point{100.0 * static_cast<double>(i)});
    }
    for (std::size_t i = 0; i < dc_count; ++i) {
      for (std::size_t j = i + 1; j < dc_count; ++j) {
        rtt.set(i, j, std::max(0.1, positions[i].distance_to(positions[j])));
      }
    }
    topology = topo::Topology(std::vector<topo::NodeInfo>(dc_count), std::move(rtt), {});
    for (std::size_t i = 0; i < dc_count; ++i) {
      candidates.push_back({static_cast<topo::NodeId>(i), positions[i],
                            std::numeric_limits<double>::infinity()});
    }
    Rng rng(seed);
    for (std::size_t s = 0; s < source_count; ++s) {
      SummarySource source;
      source.node = static_cast<topo::NodeId>(s % dc_count);
      cluster::SummarizerConfig config;
      config.max_clusters = 4;
      config.min_absorb_radius = 10.0;
      cluster::MicroClusterSummarizer summarizer(config);
      const double center = 100.0 * static_cast<double>(s % dc_count);
      for (int i = 0; i < 40; ++i) summarizer.add(Point{rng.normal(center, 10.0)});
      source.clusters = summarizer.clusters();
      sources.push_back(std::move(source));
    }
  }
};

std::vector<std::uint8_t> fingerprint(const CollectedSummaries& collected) {
  ByteWriter writer;
  cluster::write_clusters(writer, collected.summaries);
  writer.write_u64(collected.summary_bytes);
  return writer.bytes();
}

sim::NetworkConfig jittery() {
  sim::NetworkConfig config;
  config.jitter = 0.3;
  return config;
}

TEST(CollectorJitter, HierarchicalIsBitReproducibleUnderJitter) {
  const JitterWorld world(8, 8, 3);
  auto run = [&] {
    sim::Simulator simulator;
    sim::Network network(simulator, world.topology, jittery());
    AggregationConfig config;
    config.aggregator_count = 3;
    HierarchicalCollector collector(simulator, network, world.candidates.front().node, config);
    return fingerprint(collector.collect(world.sources, {world.candidates, 3, 17}));
  };
  EXPECT_EQ(run(), run());
}

TEST(CollectorJitter, DecentralizedIsBitReproducibleUnderJitter) {
  const JitterWorld world(8, 4, 5);
  auto run = [&] {
    sim::Simulator simulator;
    sim::Network network(simulator, world.topology, jittery());
    DecentralizedCollector collector(simulator, network, nullptr);
    const CollectedSummaries collected =
        collector.collect(world.sources, {world.candidates, 3, 29});
    EXPECT_TRUE(collected.agreed_proposal.has_value());
    std::vector<std::uint8_t> bytes = fingerprint(collected);
    if (collected.agreed_proposal) {
      ByteWriter writer;
      for (const auto node : *collected.agreed_proposal) {
        writer.write_u64(static_cast<std::uint64_t>(node));
      }
      bytes.insert(bytes.end(), writer.bytes().begin(), writer.bytes().end());
    }
    return bytes;
  };
  EXPECT_EQ(run(), run());
}

TEST(CollectorJitter, DecentralizedAgreementSurvivesJitter) {
  // Jitter reorders message arrivals, but the decentralized protocol's
  // agreement must not care: every replica still decides on the same full
  // summary set, so a proposal is always agreed.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const JitterWorld world(8, 4, seed);
    sim::Simulator simulator;
    sim::Network network(simulator, world.topology, jittery());
    DecentralizedCollector collector(simulator, network, nullptr);
    const CollectedSummaries collected =
        collector.collect(world.sources, {world.candidates, 3, seed * 101});
    EXPECT_TRUE(collected.agreed_proposal.has_value()) << "seed " << seed;
    EXPECT_FALSE(collected.summaries.empty());
  }
}

}  // namespace
}  // namespace geored::core
