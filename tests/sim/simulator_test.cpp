#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace geored::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator simulator;
  EXPECT_EQ(simulator.now(), 0.0);
  EXPECT_EQ(simulator.pending_events(), 0u);
  EXPECT_FALSE(simulator.step());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(30.0, [&] { order.push_back(3); });
  simulator.schedule_at(10.0, [&] { order.push_back(1); });
  simulator.schedule_at(20.0, [&] { order.push_back(2); });
  EXPECT_EQ(simulator.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), 30.0);
}

TEST(Simulator, SimultaneousEventsRunFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  simulator.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator simulator;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) simulator.schedule_after(10.0, chain);
  };
  simulator.schedule_at(0.0, chain);
  simulator.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(simulator.now(), 40.0);
}

TEST(Simulator, ClockIsEventTimeDuringExecution) {
  Simulator simulator;
  double observed = -1.0;
  simulator.schedule_at(12.5, [&] { observed = simulator.now(); });
  simulator.run();
  EXPECT_EQ(observed, 12.5);
}

TEST(Simulator, RunUntilAdvancesClockAndLeavesLaterEvents) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_at(10.0, [&] { ++fired; });
  simulator.schedule_at(50.0, [&] { ++fired; });
  EXPECT_EQ(simulator.run_until(30.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.now(), 30.0);
  EXPECT_EQ(simulator.pending_events(), 1u);
  simulator.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilBoundaryIsInclusive) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_at(30.0, [&] { ++fired; });
  simulator.run_until(30.0);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StopHaltsRun) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_at(1.0, [&] {
    ++fired;
    simulator.stop();
  });
  simulator.schedule_at(2.0, [&] { ++fired; });
  simulator.run();
  EXPECT_EQ(fired, 1);
  // A later run resumes with the remaining events.
  simulator.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator simulator;
  simulator.schedule_at(10.0, [] {});
  simulator.run();
  EXPECT_THROW(simulator.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(simulator.schedule_after(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(simulator.run_until(5.0), std::invalid_argument);
  EXPECT_THROW(simulator.schedule_at(20.0, nullptr), std::invalid_argument);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator simulator;
  double when = -1.0;
  simulator.schedule_at(100.0, [&] {
    simulator.schedule_after(5.0, [&] { when = simulator.now(); });
  });
  simulator.run();
  EXPECT_EQ(when, 105.0);
}

}  // namespace
}  // namespace geored::sim
