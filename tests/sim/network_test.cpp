#include "sim/network.h"

#include <gtest/gtest.h>

#include "topology/topology.h"

namespace geored::sim {
namespace {

topo::Topology square_topology() {
  SymMatrix rtt(3);
  rtt.set(0, 1, 100.0);
  rtt.set(0, 2, 60.0);
  rtt.set(1, 2, 80.0);
  return topo::Topology(std::vector<topo::NodeInfo>(3), std::move(rtt), {});
}

TEST(Network, DeliversAfterHalfRtt) {
  Simulator simulator;
  const auto topology = square_topology();
  Network network(simulator, topology);
  double delivered_at = -1.0;
  network.send(0, 1, 100, TrafficClass::kAccess, [&] { delivered_at = simulator.now(); });
  simulator.run();
  EXPECT_DOUBLE_EQ(delivered_at, 50.0);
}

TEST(Network, LoopbackIsImmediate) {
  Simulator simulator;
  const auto topology = square_topology();
  Network network(simulator, topology);
  double delivered_at = -1.0;
  network.send(2, 2, 100, TrafficClass::kControl, [&] { delivered_at = simulator.now(); });
  simulator.run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.0);
}

TEST(Network, BandwidthAddsSerializationDelay) {
  Simulator simulator;
  const auto topology = square_topology();
  NetworkConfig config;
  config.bandwidth_bytes_per_ms = 1000.0;  // 1 KB per ms
  Network network(simulator, topology, config);
  double delivered_at = -1.0;
  network.send(0, 2, 5000, TrafficClass::kMigration,
               [&] { delivered_at = simulator.now(); });
  simulator.run();
  // 30 ms propagation + 5 ms serialization.
  EXPECT_DOUBLE_EQ(delivered_at, 35.0);
}

TEST(Network, AccountsBytesAndMessagesPerClass) {
  Simulator simulator;
  const auto topology = square_topology();
  Network network(simulator, topology);
  network.send(0, 1, 100, TrafficClass::kAccess, [] {});
  network.send(0, 1, 200, TrafficClass::kAccess, [] {});
  network.send(1, 2, 50, TrafficClass::kSummary, [] {});
  network.send(2, 0, 1000, TrafficClass::kMigration, [] {});
  simulator.run();
  const auto& stats = network.stats();
  EXPECT_EQ(stats.bytes[static_cast<std::size_t>(TrafficClass::kAccess)], 300u);
  EXPECT_EQ(stats.messages[static_cast<std::size_t>(TrafficClass::kAccess)], 2u);
  EXPECT_EQ(stats.bytes[static_cast<std::size_t>(TrafficClass::kSummary)], 50u);
  EXPECT_EQ(stats.bytes[static_cast<std::size_t>(TrafficClass::kMigration)], 1000u);
  EXPECT_EQ(stats.bytes[static_cast<std::size_t>(TrafficClass::kControl)], 0u);
  EXPECT_EQ(stats.total_bytes(), 1350u);

  network.reset_stats();
  EXPECT_EQ(network.stats().total_bytes(), 0u);
}

TEST(Network, JitterStaysWithinBounds) {
  Simulator simulator;
  const auto topology = square_topology();
  NetworkConfig config;
  config.jitter = 0.2;
  Network network(simulator, topology, config);
  for (int i = 0; i < 200; ++i) {
    network.send(0, 1, 10, TrafficClass::kAccess, [] {});
  }
  double min_gap = 1e18, max_gap = -1.0, prev = 0.0;
  (void)prev;
  // Deliveries land between 40 and 60 ms (50 +- 20%).
  std::vector<double> deliveries;
  Simulator sim2;
  Network net2(sim2, topology, config);
  for (int i = 0; i < 200; ++i) {
    net2.send(0, 1, 10, TrafficClass::kAccess, [&] { deliveries.push_back(sim2.now()); });
  }
  sim2.run();
  for (const double t : deliveries) {
    min_gap = std::min(min_gap, t);
    max_gap = std::max(max_gap, t);
  }
  EXPECT_GE(min_gap, 40.0 - 1e-9);
  EXPECT_LE(max_gap, 60.0 + 1e-9);
  EXPECT_GT(max_gap - min_gap, 1.0);  // jitter actually varies
}

TEST(Network, JitterBandScalesWithTheConfiguredFraction) {
  // The scaling factor must stay inside [1-jitter, 1+jitter] at any level,
  // not just the 0.2 pinned above: at 0.5 the 50 ms one-way spreads to
  // [25, 75] and never beyond.
  Simulator simulator;
  const auto topology = square_topology();
  NetworkConfig config;
  config.jitter = 0.5;
  Network network(simulator, topology, config);
  std::vector<double> deliveries;
  for (int i = 0; i < 500; ++i) {
    network.send(0, 1, 10, TrafficClass::kAccess, [&] { deliveries.push_back(simulator.now()); });
  }
  simulator.run();
  ASSERT_EQ(deliveries.size(), 500u);
  for (const double t : deliveries) {
    EXPECT_GE(t, 25.0 - 1e-9);
    EXPECT_LE(t, 75.0 + 1e-9);
  }
}

TEST(Network, JitterIsDeterministicRunToRun) {
  // The jitter stream is seeded inside the network, not by wall clock or
  // address: two identically configured worlds deliver at identical times.
  const auto topology = square_topology();
  NetworkConfig config;
  config.jitter = 0.3;
  auto run = [&] {
    Simulator simulator;
    Network network(simulator, topology, config);
    std::vector<double> deliveries;
    for (int i = 0; i < 100; ++i) {
      network.send(0, 1, 10, TrafficClass::kSummary,
                   [&] { deliveries.push_back(simulator.now()); });
      network.send(1, 2, 10, TrafficClass::kSummary,
                   [&] { deliveries.push_back(simulator.now()); });
    }
    simulator.run();
    return deliveries;
  };
  EXPECT_EQ(run(), run());
}

TEST(Network, RejectsInvalidConfig) {
  Simulator simulator;
  const auto topology = square_topology();
  NetworkConfig config;
  config.jitter = 1.0;
  EXPECT_THROW(Network(simulator, topology, config), std::invalid_argument);
  config = {};
  config.bandwidth_bytes_per_ms = -1.0;
  EXPECT_THROW(Network(simulator, topology, config), std::invalid_argument);
}

TEST(TrafficStats, ToStringListsAllClasses) {
  TrafficStats stats;
  stats.bytes[0] = 5;
  const auto text = stats.to_string();
  EXPECT_NE(text.find("access"), std::string::npos);
  EXPECT_NE(text.find("summary"), std::string::npos);
  EXPECT_NE(text.find("control"), std::string::npos);
  EXPECT_NE(text.find("migration"), std::string::npos);
}

}  // namespace
}  // namespace geored::sim
