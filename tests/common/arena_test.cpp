// Unit pins for the epoch-scratch arena (common/arena.h): bump allocation,
// alignment, mark/rewind reuse, geometric growth, scope nesting, and the
// steady-state no-new-capacity property the hot paths rely on.
#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

namespace geored {
namespace {

TEST(Arena, AllocationsAreDisjointAndAligned) {
  Arena arena;
  double* a = arena.allocate_span<double>(100);
  double* b = arena.allocate_span<double>(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GE(b, a + 100) << "spans must not overlap";
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(double), 0u);
  // Alignment holds even after an odd-sized byte allocation.
  (void)arena.allocate(3, 1);
  double* c = arena.allocate_span<double>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % alignof(double), 0u);
  // The spans are writable storage.
  for (int i = 0; i < 100; ++i) a[i] = static_cast<double>(i);
  for (int i = 0; i < 100; ++i) b[i] = -static_cast<double>(i);
  EXPECT_EQ(a[99], 99.0);
  EXPECT_EQ(b[99], -99.0);
}

TEST(Arena, RewindReusesTheSameStorage) {
  Arena arena;
  const Arena::Mark m = arena.mark();
  double* first = arena.allocate_span<double>(512);
  const std::size_t capacity = arena.capacity_bytes();
  arena.rewind(m);
  double* second = arena.allocate_span<double>(512);
  EXPECT_EQ(first, second) << "rewind must hand back the same storage";
  EXPECT_EQ(arena.capacity_bytes(), capacity) << "rewind must keep capacity";
}

TEST(Arena, GrowsGeometricallyAndServesOversizedRequests) {
  Arena arena;
  EXPECT_EQ(arena.capacity_bytes(), 0u);
  (void)arena.allocate_span<std::uint8_t>(1);
  EXPECT_EQ(arena.capacity_bytes(), Arena::kDefaultBlockBytes);
  // A request larger than any existing block gets a dedicated block at
  // least that large; existing capacity is retained, not reallocated.
  const std::size_t big = Arena::kDefaultBlockBytes * 8;
  std::uint8_t* span = arena.allocate_span<std::uint8_t>(big);
  ASSERT_NE(span, nullptr);
  span[0] = 1;
  span[big - 1] = 2;
  EXPECT_GE(arena.capacity_bytes(), Arena::kDefaultBlockBytes + big);
}

TEST(Arena, SteadyStateAddsNoCapacity) {
  Arena arena;
  const auto workload = [&] {
    ArenaScope scope(arena);
    double* x = scope.span<double>(3000);
    std::size_t* y = scope.span<std::size_t>(500);
    x[0] = 1.0;
    y[0] = 2;
  };
  workload();
  const std::size_t after_first = arena.capacity_bytes();
  for (int i = 0; i < 100; ++i) workload();
  EXPECT_EQ(arena.capacity_bytes(), after_first)
      << "repeated identical scopes must be allocation-free after the first";
}

TEST(Arena, ScopesNest) {
  Arena arena;
  ArenaScope outer(arena);
  double* kept = outer.span<double>(8);
  kept[0] = 42.0;
  double* inner_ptr = nullptr;
  {
    ArenaScope inner(arena);
    inner_ptr = inner.span<double>(8);
    inner_ptr[0] = 7.0;
  }
  // The inner scope's span is released; the outer one's is untouched.
  EXPECT_EQ(kept[0], 42.0);
  double* reused = outer.span<double>(8);
  EXPECT_EQ(reused, inner_ptr) << "inner rewind must free the inner span only";
}

TEST(Arena, ResetKeepsCapacity) {
  Arena arena;
  (void)arena.allocate_span<double>(20000);  // spills past the first block
  const std::size_t capacity = arena.capacity_bytes();
  EXPECT_GT(capacity, 0u);
  arena.reset();
  EXPECT_EQ(arena.capacity_bytes(), capacity);
  double* again = arena.allocate_span<double>(20000);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(arena.capacity_bytes(), capacity);
}

TEST(Arena, EpochArenaIsPerThread) {
  Arena* main_arena = &epoch_arena();
  Arena* worker_arena = nullptr;
  std::thread worker([&] { worker_arena = &epoch_arena(); });
  worker.join();
  ASSERT_NE(worker_arena, nullptr);
  EXPECT_NE(main_arena, worker_arena)
      << "epoch_arena must be thread-local, never shared across threads";
  EXPECT_EQ(main_arena, &epoch_arena()) << "and stable within a thread";
}

TEST(Arena, ZeroCountSpanIsValid) {
  Arena arena;
  double* empty = arena.allocate_span<double>(0);
  EXPECT_NE(empty, nullptr);
}

}  // namespace
}  // namespace geored
