#include "common/significance.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace geored {
namespace {

TEST(NormalTwoSidedP, KnownValues) {
  EXPECT_NEAR(normal_two_sided_p(0.0), 1.0, 1e-12);
  EXPECT_NEAR(normal_two_sided_p(1.959964), 0.05, 1e-4);
  EXPECT_NEAR(normal_two_sided_p(2.575829), 0.01, 1e-4);
  EXPECT_NEAR(normal_two_sided_p(-1.959964), 0.05, 1e-4);  // symmetric
}

TEST(PairedTTest, DetectsAConsistentShift) {
  Rng rng(3);
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    const double base = rng.normal(100.0, 20.0);
    a.push_back(base);
    b.push_back(base + 5.0 + rng.normal(0.0, 1.0));  // b consistently ~5 higher
  }
  const auto result = paired_t_test(b, a);
  EXPECT_NEAR(result.mean_difference, 5.0, 1.0);
  EXPECT_TRUE(result.significant_at_05());
  EXPECT_GT(result.t_statistic, 10.0);
  EXPECT_EQ(result.degrees_of_freedom, 29.0);
}

TEST(PairedTTest, NoShiftIsNotSignificant) {
  Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    const double base = rng.normal(100.0, 20.0);
    a.push_back(base + rng.normal(0.0, 3.0));
    b.push_back(base + rng.normal(0.0, 3.0));
  }
  const auto result = paired_t_test(a, b);
  EXPECT_FALSE(result.significant_at_05());
}

TEST(PairedTTest, PairingBeatsUnpairedOnCorrelatedData) {
  // With large per-pair variation and a small consistent shift, the paired
  // test finds the effect that Welch's unpaired test cannot — exactly the
  // structure of per-run strategy comparisons.
  Rng rng(7);
  std::vector<double> a, b;
  for (int i = 0; i < 25; ++i) {
    const double base = rng.normal(100.0, 40.0);  // run-to-run noise
    a.push_back(base);
    b.push_back(base + 2.0 + rng.normal(0.0, 0.5));
  }
  EXPECT_TRUE(paired_t_test(b, a).significant_at_05());
  EXPECT_FALSE(welch_t_test(b, a).significant_at_05());
}

TEST(PairedTTest, DegenerateInputs) {
  EXPECT_THROW(paired_t_test({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(paired_t_test({1.0, 2.0}, {1.0}), std::invalid_argument);
  // Identical samples: p = 1.
  const auto same = paired_t_test({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0});
  EXPECT_EQ(same.p_value, 1.0);
  // Constant nonzero shift with zero variance: p = 0.
  const auto shifted = paired_t_test({2.0, 3.0, 4.0}, {1.0, 2.0, 3.0});
  EXPECT_EQ(shifted.p_value, 0.0);
  EXPECT_EQ(shifted.mean_difference, 1.0);
}

TEST(WelchTTest, DetectsSeparatedMeans) {
  Rng rng(9);
  std::vector<double> a, b;
  for (int i = 0; i < 40; ++i) {
    a.push_back(rng.normal(50.0, 5.0));
    b.push_back(rng.normal(60.0, 15.0));  // different variance too
  }
  const auto result = welch_t_test(b, a);
  EXPECT_TRUE(result.significant_at_05());
  EXPECT_NEAR(result.mean_difference, 10.0, 4.0);
  // Welch-Satterthwaite df lies between min(n)-1 and n1+n2-2.
  EXPECT_GT(result.degrees_of_freedom, 39.0);
  EXPECT_LT(result.degrees_of_freedom, 78.0);
}

TEST(WelchTTest, HandlesUnequalSampleSizes) {
  // Deterministic zero-mean samples of very different sizes: no effect.
  const std::vector<double> small{-1.0, -0.5, 0.0, 0.5, 1.0};
  std::vector<double> large;
  for (int i = 0; i < 101; ++i) large.push_back(-1.0 + 0.02 * i);
  const auto result = welch_t_test(small, large);
  EXPECT_NEAR(result.mean_difference, 0.0, 1e-12);
  EXPECT_FALSE(result.significant_at_05());
  EXPECT_THROW(welch_t_test({1.0}, large), std::invalid_argument);
}

TEST(WelchTTest, ZeroVarianceEdgeCases) {
  const auto same = welch_t_test({2.0, 2.0}, {2.0, 2.0});
  EXPECT_EQ(same.p_value, 1.0);
  const auto different = welch_t_test({3.0, 3.0}, {2.0, 2.0});
  EXPECT_EQ(different.p_value, 0.0);
}

}  // namespace
}  // namespace geored
