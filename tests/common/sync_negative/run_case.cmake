# Runs one negative-compile case of the thread-safety annotation harness.
#
# Invoked by ctest as
#   cmake -DCXX=<compiler> -DINCLUDE_DIR=<repo>/src -DSRC=<case>.cpp
#         -DEXPECT=PASS|FAIL -P run_case.cmake
# (Clang only — the configure step registers a skip stub for other
# compilers, because the annotations expand to nothing there and every
# "negative" case would compile clean.)
#
# EXPECT=FAIL demands two things: the syntax-only compile fails, AND the
# diagnostic is a thread-safety one. A case failing for any other reason
# (bad include path, C++ error in the test source) is a harness bug and
# fails the test with the compiler output attached.

foreach(var CXX INCLUDE_DIR SRC EXPECT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_case.cmake: missing -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${CXX} -std=c++20 -fsyntax-only
          -Wthread-safety -Werror=thread-safety
          -I${INCLUDE_DIR} ${SRC}
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)

if(EXPECT STREQUAL "FAIL")
  if(exit_code EQUAL 0)
    message(FATAL_ERROR
      "${SRC}: expected a thread-safety violation but it compiled clean — "
      "the annotations are not being enforced")
  endif()
  if(NOT stderr MATCHES "thread-safety")
    message(FATAL_ERROR
      "${SRC}: compile failed, but not with a thread-safety diagnostic — "
      "the case is broken, not the analysis.\n${stderr}")
  endif()
  message(STATUS "${SRC}: rejected with a thread-safety diagnostic, as required")
elseif(EXPECT STREQUAL "PASS")
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR
      "${SRC}: control case must compile cleanly under -Werror=thread-safety "
      "(otherwise the negative cases prove nothing).\n${stderr}")
  endif()
  message(STATUS "${SRC}: compiled clean, as required")
else()
  message(FATAL_ERROR "run_case.cmake: EXPECT must be PASS or FAIL, got '${EXPECT}'")
endif()
