// Negative-compile case: calling a GEORED_REQUIRES function without holding
// the required mutex. Under Clang with -Werror=thread-safety this must FAIL
// to compile; under other compilers the harness skips.
//
// This is the exact shape of ThreadPool::drain() — a private helper whose
// whole contract is "the pool mutex is held" — so this case guards the
// annotation pattern the library leans on hardest.
#include "common/sync.h"

namespace {

class Queue {
 public:
  void push_without_lock() {
    push_locked();  // BAD: push_locked requires mutex_, which is not held.
  }

  void push() GEORED_EXCLUDES(mutex_) {
    const geored::MutexLock lock(mutex_);
    push_locked();  // fine: the scoped capability satisfies the requirement
  }

 private:
  void push_locked() GEORED_REQUIRES(mutex_) { ++size_; }

  geored::Mutex mutex_;
  int size_ GEORED_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Queue queue;
  queue.push_without_lock();
  queue.push();
  return 0;
}
