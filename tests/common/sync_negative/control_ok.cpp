// Control case: correct annotated code exercising every primitive the
// negative cases misuse (guarded fields, REQUIRES helpers, EXCLUDES entry
// points, CondVar waits). It must compile CLEANLY under
// -Werror=thread-safety — if it did not, the negative cases' failures would
// prove nothing (any broken include path or bad flag would "fail" them too).
#include "common/sync.h"

namespace {

class Mailbox {
 public:
  void post(int message) GEORED_EXCLUDES(mutex_) {
    const geored::MutexLock lock(mutex_);
    value_ = message;
    has_value_ = true;
    commit_locked();
    cv_.notify_all();
  }

  int take() GEORED_EXCLUDES(mutex_) {
    const geored::MutexLock lock(mutex_);
    // Open-coded predicate loop: the analysis sees every guarded read
    // happen while mutex_ is held (see common/sync.h header comment).
    while (!has_value_) cv_.wait(mutex_);
    has_value_ = false;
    return value_;
  }

 private:
  void commit_locked() GEORED_REQUIRES(mutex_) { ++commits_; }

  geored::Mutex mutex_;
  geored::CondVar cv_;
  int value_ GEORED_GUARDED_BY(mutex_) = 0;
  bool has_value_ GEORED_GUARDED_BY(mutex_) = false;
  int commits_ GEORED_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Mailbox mailbox;
  mailbox.post(42);
  return mailbox.take() == 42 ? 0 : 1;
}
