// Negative-compile case: touching a GEORED_GUARDED_BY field without holding
// its mutex. Under Clang with -Werror=thread-safety this must FAIL to
// compile (the harness asserts the diagnostic is a thread-safety one); under
// any other compiler the annotations are no-ops and the harness skips.
//
// Keep this file minimal and otherwise valid C++: the only defect must be
// the annotation violation, so the harness's "failed for the right reason"
// check stays meaningful.
#include "common/sync.h"

namespace {

class Counter {
 public:
  void increment_unlocked() {
    ++value_;  // BAD: value_ is guarded by mutex_, which is not held here.
  }

  int read_locked() GEORED_EXCLUDES(mutex_) {
    const geored::MutexLock lock(mutex_);
    return value_;
  }

 private:
  geored::Mutex mutex_;
  int value_ GEORED_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment_unlocked();
  return counter.read_locked();
}
