#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace geored {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a() == b();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.5);
  }
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(11);
  std::array<int, 10> counts{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.1, 0.01);
  }
}

TEST(Rng, IntegerInclusiveBounds) {
  Rng rng(13);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.integer(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    hit_lo |= v == -2;
    hit_hi |= v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double variance = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(variance, 4.0, 0.15);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / kDraws, 2.0, 0.05);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(23);
  for (const double mean : {0.5, 4.0, 30.0, 200.0}) {
    double sum = 0.0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / kDraws, mean, std::max(0.05, mean * 0.03)) << "mean=" << mean;
  }
  EXPECT_EQ(Rng(1).poisson(0.0), 0u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
  EXPECT_FALSE(Rng(1).bernoulli(0.0));
  EXPECT_TRUE(Rng(1).bernoulli(1.0));
}

TEST(Rng, WeightedIndexProportional) {
  Rng rng(31);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / 40000.0, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 40000.0, 0.75, 0.02);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(37);
  const auto perm = rng.permutation(100);
  std::vector<std::size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const auto v : sample) EXPECT_LT(v, 50u);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
  EXPECT_TRUE(rng.sample_without_replacement(3, 0).empty());
}

TEST(Rng, SampleWithoutReplacementUnbiased) {
  // Every element should appear in a k-of-n sample with probability k/n.
  Rng rng(43);
  constexpr std::size_t kN = 10, kK = 3;
  std::array<int, kN> counts{};
  constexpr int kTrials = 30000;
  for (int t = 0; t < kTrials; ++t) {
    for (const auto idx : rng.sample_without_replacement(kN, kK)) ++counts[idx];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.3, 0.02);
  }
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(99);
  Rng child0 = parent.fork(0);
  Rng child1 = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += child0() == child1();
  EXPECT_LT(same, 3);
  // fork is a pure function of (seed, stream).
  Rng again = Rng(99).fork(0);
  Rng child0b = Rng(99).fork(0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(again(), child0b());
}

TEST(ZipfSampler, RankFrequenciesDecrease) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(47);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[9], counts[49]);
  // Zipf(1): rank 0 is ~1/H(100) ~ 19% of mass.
  EXPECT_NEAR(counts[0] / 100000.0, 0.193, 0.02);
}

TEST(ZipfSampler, ExponentZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(53);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  for (const int c : counts) EXPECT_NEAR(c / 50000.0, 0.1, 0.015);
}

TEST(ZipfSampler, RejectsInvalidArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.5), std::invalid_argument);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const auto a = splitmix64(state);
  const auto b = splitmix64(state);
  EXPECT_NE(a, b);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), a);
}

}  // namespace
}  // namespace geored
