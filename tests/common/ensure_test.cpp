// Contract tests for the checking macros: exception types, message contents
// (file:line prefix, expression text, caller message), and GEORED_DCHECK's
// compile-time on/off behavior.
#include "common/ensure.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace geored {
namespace {

TEST(Ensure, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(GEORED_ENSURE(1 + 1 == 2, "arithmetic works"));
  EXPECT_NO_THROW(GEORED_CHECK(true, ""));
}

TEST(Ensure, ThrowsInvalidArgumentWithExpressionAndMessage) {
  try {
    GEORED_ENSURE(2 + 2 == 5, "ministry of truth");
    FAIL() << "GEORED_ENSURE did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ensure_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("ministry of truth"), std::string::npos) << what;
    // file:line: the filename is followed by a numeric line reference.
    EXPECT_NE(what.find("ensure_test.cpp:"), std::string::npos) << what;
  }
}

TEST(Ensure, EnsureIsNotAnInternalError) {
  // Caller misuse must not be reported as a library bug.
  EXPECT_THROW(GEORED_ENSURE(false, ""), std::invalid_argument);
  try {
    GEORED_ENSURE(false, "");
    FAIL();
  } catch (const InternalError&) {
    FAIL() << "GEORED_ENSURE must not throw InternalError";
  } catch (const std::invalid_argument&) {
    SUCCEED();
  }
}

TEST(Check, ThrowsInternalErrorWithExpressionAndMessage) {
  try {
    GEORED_CHECK(false, "impossible state");
    FAIL() << "GEORED_CHECK did not throw";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ensure_test.cpp:"), std::string::npos) << what;
    EXPECT_NE(what.find("false"), std::string::npos) << what;
    EXPECT_NE(what.find("impossible state"), std::string::npos) << what;
  }
}

TEST(Check, InternalErrorIsALogicError) {
  EXPECT_THROW(GEORED_CHECK(false, ""), std::logic_error);
}

TEST(Check, MessageReportsDeclarationLine) {
  const std::source_location here = std::source_location::current();
  try {
    GEORED_CHECK(false, "");  // one line below `here`
    FAIL();
  } catch (const InternalError& e) {
    const std::string what = e.what();
    const std::string expected_line = ":" + std::to_string(here.line() + 2) + ":";
    EXPECT_NE(what.find(expected_line), std::string::npos)
        << "expected " << expected_line << " in: " << what;
  }
}

TEST(Dcheck, RespectsBuildConfiguration) {
  if (geored_debug_checks_enabled) {
    EXPECT_THROW(GEORED_DCHECK(false, "debug checks active"), InternalError);
    EXPECT_NO_THROW(GEORED_DCHECK(true, "fine"));
  } else {
    EXPECT_NO_THROW(GEORED_DCHECK(false, "compiled out"));
  }
}

TEST(Dcheck, ConditionNotEvaluatedWhenDisabled) {
  int evaluations = 0;
  const auto count_and_fail = [&evaluations] {
    ++evaluations;
    return false;
  };
  if (geored_debug_checks_enabled) {
    EXPECT_THROW(GEORED_DCHECK(count_and_fail(), "evaluated"), InternalError);
    EXPECT_EQ(evaluations, 1);
  } else {
    EXPECT_NO_THROW(GEORED_DCHECK(count_and_fail(), "never evaluated"));
    EXPECT_EQ(evaluations, 0);
  }
}

TEST(Dcheck, MessageMatchesCheckFormatWhenEnabled) {
  if (!geored_debug_checks_enabled) GTEST_SKIP() << "debug checks compiled out";
  try {
    GEORED_DCHECK(1 > 2, "numbers misbehave");
    FAIL() << "GEORED_DCHECK did not throw in a debug-checks build";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ensure_test.cpp:"), std::string::npos) << what;
    EXPECT_NE(what.find("1 > 2"), std::string::npos) << what;
    EXPECT_NE(what.find("numbers misbehave"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace geored
