#include "common/nelder_mead.h"

#include <gtest/gtest.h>

#include <cmath>

namespace geored {
namespace {

TEST(NelderMead, MinimizesShiftedQuadratic) {
  const auto objective = [](const std::vector<double>& x) {
    double total = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - static_cast<double>(i + 1);
      total += d * d;
    }
    return total;
  };
  const auto result = nelder_mead(objective, {0.0, 0.0, 0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.min_value, 1e-6);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(result.argmin[i], static_cast<double>(i + 1), 1e-3);
  }
}

TEST(NelderMead, MinimizesRosenbrock) {
  const auto rosenbrock = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions options;
  options.max_iterations = 5000;
  options.initial_step = 0.5;
  const auto result = nelder_mead(rosenbrock, {-1.2, 1.0}, options);
  EXPECT_NEAR(result.argmin[0], 1.0, 1e-2);
  EXPECT_NEAR(result.argmin[1], 1.0, 1e-2);
}

TEST(NelderMead, OneDimensional) {
  const auto objective = [](const std::vector<double>& x) {
    return std::cos(x[0]) + 0.01 * x[0] * x[0];
  };
  const auto result = nelder_mead(objective, {2.0});
  // Global minimum near pi (cos minimal, small quadratic pull).
  EXPECT_NEAR(result.argmin[0], 3.09, 0.1);
}

TEST(NelderMead, RespectsIterationBudget) {
  const auto objective = [](const std::vector<double>& x) { return x[0] * x[0]; };
  NelderMeadOptions options;
  options.max_iterations = 3;
  options.tolerance = 0.0;  // never converge by tolerance
  const auto result = nelder_mead(objective, {100.0}, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 3u);
}

TEST(NelderMead, EmptyStartThrows) {
  EXPECT_THROW(nelder_mead([](const std::vector<double>&) { return 0.0; }, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace geored
