// Equivalence pins for the runtime-dispatched SIMD distance kernels
// (common/point_set_simd.h): every available level must reproduce the
// scalar strict-`<` first-winner scan bit for bit — including ties, NaN
// rows, infinite coordinates, and sizes straddling the register-block
// boundaries (16 rows per AVX-512 iteration, 8 per AVX2).
#include "common/point_set_simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/point_set.h"
#include "common/random.h"

namespace geored {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::uint64_t bits_of(double x) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

/// The scalar reference scan, restated independently of PointSet so the
/// pin does not inherit a bug from the code under test: strict-`<` first
/// winner from (best=0, best_dist=+inf), NaN distances never win.
std::size_t reference_nearest(const std::vector<double>& data, std::size_t n, std::size_t dim,
                              const double* query, double* best_dist_sq) {
  std::size_t best = 0;
  double best_dist = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    double dist = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = data[i * dim + d] - query[d];
      dist += diff * diff;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  *best_dist_sq = best_dist;
  return best;
}

/// Levels the running CPU can execute. kScalar is always present; testing a
/// level the CPU lacks would fault, so coverage narrows on older hardware
/// (the CI bench box runs all three).
std::vector<simd::Level> available_levels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::detected_level() >= simd::Level::kAvx2) levels.push_back(simd::Level::kAvx2);
  if (simd::detected_level() >= simd::Level::kAvx512) levels.push_back(simd::Level::kAvx512);
  return levels;
}

void expect_all_levels_match(const std::vector<double>& data, std::size_t n, std::size_t dim,
                             const double* query, const char* label) {
  double want_dist = 0.0;
  const std::size_t want = reference_nearest(data, n, dim, query, &want_dist);
  std::vector<double> want_row(n);
  for (std::size_t i = 0; i < n; ++i) {
    double dist = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = data[i * dim + d] - query[d];
      dist += diff * diff;
    }
    want_row[i] = std::sqrt(dist);
  }
  for (const simd::Level level : available_levels()) {
    double got_dist = 0.0;
    const std::size_t got = simd::nearest_row(data.data(), n, dim, query, &got_dist, level);
    EXPECT_EQ(got, want) << label << ": argmin diverged at level "
                         << simd::level_name(level) << " (n=" << n << ", dim=" << dim << ")";
    EXPECT_EQ(bits_of(got_dist), bits_of(want_dist))
        << label << ": best distance not bit-identical at level " << simd::level_name(level)
        << " (n=" << n << ", dim=" << dim << ")";
    std::vector<double> got_row(n, -1.0);
    simd::distance_row(data.data(), n, dim, query, got_row.data(), level);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits_of(got_row[i]), bits_of(want_row[i]))
          << label << ": distance_row[" << i << "] not bit-identical at level "
          << simd::level_name(level) << " (n=" << n << ", dim=" << dim << ")";
    }
  }
}

TEST(PointSetSimd, MatchesScalarAcrossBlockBoundarySizes) {
  // Every size around the AVX2 (8) and AVX-512 (16) block widths, both
  // sides of the dispatch threshold, plus sizes that leave 1..15 remainder
  // rows for the scalar tail.
  const std::size_t sizes[] = {1,  2,  7,  8,  9,  15, 16, 17, 23, 24, 31,  32,
                               33, 47, 48, 63, 64, 65, 96, 97, 127, 128, 129, 1000};
  const std::size_t dims[] = {1, 2, 3, 5, 8, 13};
  for (const std::size_t dim : dims) {
    Rng rng(0x51D0 + dim);
    for (const std::size_t n : sizes) {
      std::vector<double> data(n * dim);
      for (double& v : data) v = rng.uniform(-100.0, 100.0);
      std::vector<double> query(dim);
      for (double& v : query) v = rng.uniform(-100.0, 100.0);
      expect_all_levels_match(data, n, dim, query.data(), "random");
    }
  }
}

TEST(PointSetSimd, FirstWinnerOnExactTies) {
  // The winning row is duplicated at positions inside different register
  // blocks and in the scalar tail; every level must report the *first*
  // occurrence, like the scalar strict-`<` scan.
  constexpr std::size_t kDim = 3;
  constexpr std::size_t kN = 53;  // 3 full AVX-512 blocks + 5 tail rows
  const double winner[kDim] = {1.0, 2.0, 3.0};
  const double query[kDim] = {1.0, 2.0, 3.5};
  for (const std::size_t first : {std::size_t{0}, std::size_t{5}, std::size_t{18},
                                  std::size_t{33}, std::size_t{49}}) {
    std::vector<double> data(kN * kDim);
    for (std::size_t i = 0; i < kN; ++i) {
      for (std::size_t d = 0; d < kDim; ++d) {
        data[i * kDim + d] = 1000.0 + static_cast<double>(i + d);
      }
    }
    for (std::size_t i = first; i < kN; i += 7) {  // duplicates at and after `first`
      for (std::size_t d = 0; d < kDim; ++d) data[i * kDim + d] = winner[d];
    }
    for (const simd::Level level : available_levels()) {
      double dist = 0.0;
      EXPECT_EQ(simd::nearest_row(data.data(), kN, kDim, query, &dist, level), first)
          << "tie broken away from the first winner at level " << simd::level_name(level);
      EXPECT_EQ(dist, 0.25);
    }
    expect_all_levels_match(data, kN, kDim, query, "ties");
  }
}

TEST(PointSetSimd, NaNRowsNeverWin) {
  constexpr std::size_t kDim = 2;
  constexpr std::size_t kN = 40;
  std::vector<double> data(kN * kDim, 50.0);
  // NaN rows scattered across blocks and tail; one clean winner at row 27.
  for (const std::size_t i : {std::size_t{0}, std::size_t{9}, std::size_t{17},
                              std::size_t{26}, std::size_t{39}}) {
    data[i * kDim] = kNaN;
  }
  data[27 * kDim] = 1.0;
  data[27 * kDim + 1] = 1.0;
  const double query[kDim] = {1.0, 1.0};
  for (const simd::Level level : available_levels()) {
    double dist = -1.0;
    EXPECT_EQ(simd::nearest_row(data.data(), kN, kDim, query, &dist, level), 27u)
        << "a NaN distance displaced the winner at level " << simd::level_name(level);
    EXPECT_EQ(dist, 0.0);
  }
  expect_all_levels_match(data, kN, kDim, query, "nan-rows");
}

TEST(PointSetSimd, AllNaNKeepsScalarInitialState) {
  // Every distance NaN: nothing ever wins the strict `<`, so the scan ends
  // in its initial state — index 0, +inf — at every level.
  constexpr std::size_t kDim = 2;
  constexpr std::size_t kN = 37;
  const std::vector<double> data(kN * kDim, kNaN);
  const double query[kDim] = {0.0, 0.0};
  for (const simd::Level level : available_levels()) {
    double dist = 0.0;
    EXPECT_EQ(simd::nearest_row(data.data(), kN, kDim, query, &dist, level), 0u);
    EXPECT_EQ(dist, kInf) << "level " << simd::level_name(level);
  }
}

TEST(PointSetSimd, InfiniteCoordinatesMatchScalar) {
  // +-inf coordinates produce inf distances — and NaN where inf - inf
  // occurs. The pin is simply "whatever the scalar scan does", bit for bit.
  constexpr std::size_t kDim = 3;
  constexpr std::size_t kN = 35;
  std::vector<double> data(kN * kDim);
  Rng rng(0x1f1f);
  for (double& v : data) v = rng.uniform(-10.0, 10.0);
  data[4 * kDim + 1] = kInf;
  data[19 * kDim] = -kInf;
  data[33 * kDim + 2] = kInf;
  const double query_finite[kDim] = {0.5, -0.5, 2.0};
  expect_all_levels_match(data, kN, kDim, query_finite, "inf-rows");
  const double query_inf[kDim] = {kInf, -0.5, 2.0};  // inf - inf => NaN on row 4? no: dim 0
  expect_all_levels_match(data, kN, kDim, query_inf, "inf-query");
}

TEST(PointSetSimd, LevelNamesAndOrdering) {
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx2), "avx2");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx512), "avx512");
  // The active level can only clamp down from the detected one.
  EXPECT_LE(static_cast<int>(simd::active_level()), static_cast<int>(simd::detected_level()));
}

TEST(PointSetSimd, PointSetDispatchAgreesWithExplicitLevels) {
  // End-to-end through PointSet::nearest_of / distance_row, which dispatch
  // on active_level() above kMinSimdRows: results must equal the explicit
  // scalar-level kernel whatever level the dispatcher picked.
  constexpr std::size_t kDim = 5;
  const std::size_t n = simd::kMinSimdRows * 3 + 5;
  Rng rng(0xd15b);
  PointSet set(kDim);
  std::vector<double> flat;
  for (std::size_t i = 0; i < n; ++i) {
    Point p(kDim);
    for (std::size_t d = 0; d < kDim; ++d) p[d] = rng.uniform(-50.0, 50.0);
    set.push_back(p);
    flat.insert(flat.end(), p.values().begin(), p.values().end());
  }
  Point query(kDim);
  for (std::size_t d = 0; d < kDim; ++d) query[d] = rng.uniform(-50.0, 50.0);

  double want_dist = 0.0;
  const std::size_t want = simd::nearest_row(flat.data(), n, kDim,
                                             query.values().data(), &want_dist,
                                             simd::Level::kScalar);
  double got_dist = 0.0;
  EXPECT_EQ(set.nearest_of(query, &got_dist), want);
  EXPECT_EQ(bits_of(got_dist), bits_of(want_dist));

  std::vector<double> want_row(n), got_row(n);
  simd::distance_row(flat.data(), n, kDim, query.values().data(), want_row.data(),
                     simd::Level::kScalar);
  set.distance_row(query, got_row.data());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(bits_of(got_row[i]), bits_of(want_row[i])) << "row " << i;
  }
}

/// Independent scalar reference for the batched nearest-two kernel:
/// PointSet::nearest2_of restated (branchless strict-`<` selects in
/// ascending centroid order) so the pin cannot inherit a kernel bug.
void reference_nearest2(const double* q, const double* centroids, std::size_t k,
                        std::size_t dim, std::size_t* out_assign, double* out_best,
                        double* out_second) {
  std::size_t best = 0;
  double best_dist = kInf, second_dist = kInf;
  for (std::size_t c = 0; c < k; ++c) {
    double dist = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = centroids[c * dim + d] - q[d];
      dist += diff * diff;
    }
    const bool better = dist < best_dist;
    const bool runner_up = dist < second_dist;
    second_dist = better ? best_dist : (runner_up ? dist : second_dist);
    best_dist = better ? dist : best_dist;
    best = better ? c : best;
  }
  *out_assign = best;
  *out_best = best_dist;
  *out_second = second_dist;
}

void expect_batch_kernels_match(const std::vector<double>& points, std::size_t dim,
                                const std::size_t* indices, std::size_t count,
                                const std::vector<double>& centroids, std::size_t k,
                                const char* label) {
  std::vector<std::size_t> want_assign(count);
  std::vector<double> want_best(count), want_second(count);
  for (std::size_t j = 0; j < count; ++j) {
    const double* q = points.data() + (indices != nullptr ? indices[j] : j) * dim;
    reference_nearest2(q, centroids.data(), k, dim, &want_assign[j], &want_best[j],
                       &want_second[j]);
  }
  for (const simd::Level level : available_levels()) {
    std::vector<std::size_t> got_assign(count, ~std::size_t{0});
    std::vector<double> got_best(count, -1.0), got_second(count, -1.0);
    simd::nearest2_batch(points.data(), dim, indices, count, centroids.data(), k,
                         got_assign.data(), got_best.data(), got_second.data(), level);
    for (std::size_t j = 0; j < count; ++j) {
      ASSERT_EQ(got_assign[j], want_assign[j])
          << label << ": assignment diverged at level " << simd::level_name(level)
          << " (j=" << j << ", count=" << count << ", dim=" << dim << ", k=" << k << ")";
      ASSERT_EQ(bits_of(got_best[j]), bits_of(want_best[j]))
          << label << ": best distance not bit-identical at level "
          << simd::level_name(level) << " (j=" << j << ")";
      ASSERT_EQ(bits_of(got_second[j]), bits_of(want_second[j]))
          << label << ": second distance not bit-identical at level "
          << simd::level_name(level) << " (j=" << j << ")";
    }
    // assigned_distance_batch against the just-computed assignment must
    // reproduce each point's best distance bits (same subtract/multiply/add
    // sequence against the same centroid row).
    std::vector<double> got_own(count, -1.0);
    simd::assigned_distance_batch(points.data(), dim, indices, count, centroids.data(),
                                  want_assign.data(), got_own.data(), level);
    for (std::size_t j = 0; j < count; ++j) {
      ASSERT_EQ(bits_of(got_own[j]), bits_of(want_best[j]))
          << label << ": assigned distance not bit-identical at level "
          << simd::level_name(level) << " (j=" << j << ")";
    }
  }
}

TEST(PointSetSimdBatch, MatchesScalarAcrossSizesAndDims) {
  // Counts straddle the 4-query register block and the kMinBatchQueries
  // dispatch floor; dims cover the scalar remainder columns of the 4x4
  // transpose (1..3), a full block (4), mixed (5, 7), and the wide-dim
  // scalar fallback (kMaxBatchDim + 1).
  const std::size_t counts[] = {1, 3, 4, 5, 15, 16, 17, 19, 20, 64, 65, 300};
  const std::size_t dims[] = {1, 2, 3, 4, 5, 7, simd::kMaxBatchDim + 1};
  const std::size_t ks[] = {1, 2, 5, 12};
  for (const std::size_t dim : dims) {
    Rng rng(0xba7c + dim);
    for (const std::size_t k : ks) {
      std::vector<double> centroids(k * dim);
      for (double& v : centroids) v = rng.uniform(-100.0, 100.0);
      for (const std::size_t count : counts) {
        std::vector<double> points(count * dim);
        for (double& v : points) v = rng.uniform(-100.0, 100.0);
        expect_batch_kernels_match(points, dim, nullptr, count, centroids, k, "contiguous");
      }
    }
  }
}

TEST(PointSetSimdBatch, IndexedSubsetMatchesContiguous) {
  // The survivor-rescan form: a strided, unsorted index subset of a larger
  // point block must produce, per query, exactly the bits of the contiguous
  // scan of that row.
  constexpr std::size_t kDim = 5;
  constexpr std::size_t kK = 9;
  constexpr std::size_t kN = 200;
  Rng rng(0x1d3);
  std::vector<double> points(kN * kDim), centroids(kK * kDim);
  for (double& v : points) v = rng.uniform(-50.0, 50.0);
  for (double& v : centroids) v = rng.uniform(-50.0, 50.0);
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < kN; i += 3) indices.push_back(i);
  for (std::size_t i = 1; i < kN; i += 7) indices.push_back(i);  // unsorted, duplicates ok
  expect_batch_kernels_match(points, kDim, indices.data(), indices.size(), centroids, kK,
                             "indexed");
}

TEST(PointSetSimdBatch, TiesAndCoincidentCentroidsMatchScalar) {
  // Duplicate centroids and queries equidistant to distinct centroids: the
  // strict-`<` first-winner rule must hold per lane at every level.
  constexpr std::size_t kDim = 2;
  std::vector<double> centroids = {1.0, 0.0, 1.0, 0.0, -1.0, 0.0, 3.0, 0.0};
  std::vector<double> points;
  for (int i = 0; i < 37; ++i) {
    points.push_back(0.0);                          // x = 0: ties centroids 0/1 vs 2
    points.push_back(static_cast<double>(i) - 18);  // varying y
  }
  expect_batch_kernels_match(points, kDim, nullptr, 37, centroids, 4, "ties");
}

/// Independent scalar restatement of the hamerly_skip_batch predicate (the
/// Phase-2 loop of cluster/kmeans.cpp's bounded objective pass) so the pin
/// cannot inherit a kernel bug. Mutates `lower` and fills `survivors`
/// exactly as the kernel contract specifies.
std::size_t reference_hamerly_skip(std::size_t count, const std::size_t* assign,
                                   const double* best_dist_sq, double* lower,
                                   const double* s_half, double delta_max,
                                   double delta_second, std::size_t moved_most,
                                   double guard_scale, double guard_shift,
                                   std::size_t base_index, std::size_t* survivors) {
  std::size_t pending = 0;
  for (std::size_t j = 0; j < count; ++j) {
    const double moved = assign[j] == moved_most ? delta_second : delta_max;
    const double lb = (lower[j] - moved) * guard_scale - guard_shift;
    const double s = s_half[assign[j]];
    const double z = lb >= s ? lb : s;
    if (z > 0.0 && best_dist_sq[j] < z * z * guard_scale - guard_shift) {
      const double elkan = (2.0 * s - std::sqrt(best_dist_sq[j])) * guard_scale - guard_shift;
      lower[j] = lb >= s ? lb : std::max(lb, elkan);
      continue;
    }
    survivors[pending++] = base_index + j;
  }
  return pending;
}

TEST(PointSetSimdBatch, HamerlySkipMatchesScalarPredicate) {
  // The production guard constants, a centroid table small enough to force
  // the scalar-load gather replacement, and bound distributions tuned so
  // every batch mixes skipped and surviving lanes (including z <= 0 lanes
  // from negative decayed bounds, and lb == s ties where the >= select must
  // pick lb). Counts straddle the 4-lane block and the dispatch floor.
  constexpr double kScale = 1.0 - 1e-10;
  constexpr double kShift = 1e-12;
  constexpr std::size_t kK = 7;
  const std::size_t counts[] = {1, 3, 4, 5, 15, 16, 17, 19, 64, 65, 300};
  for (const std::size_t count : counts) {
    Rng rng(0x5c1b + count);
    std::vector<double> s_half(kK);
    for (double& v : s_half) v = rng.uniform(0.0, 5.0);
    s_half[3] = -1e-13;  // coincident-centroid shape: tiny negative radius
    std::vector<std::size_t> assign(count);
    std::vector<double> best(count), lower(count);
    for (std::size_t j = 0; j < count; ++j) {
      assign[j] = rng.below(kK);
      const double d = rng.uniform(0.0, 6.0);
      best[j] = d * d;
      lower[j] = rng.uniform(-1.0, 7.0);
      if (rng.bernoulli(0.1)) lower[j] = s_half[assign[j]];  // exact lb-vs-s tie shape
    }
    const double delta_max = 0.8, delta_second = 0.3;
    const std::size_t moved_most = 2;
    const std::size_t base_index = 1000;

    std::vector<double> want_lower = lower;
    std::vector<std::size_t> want_survivors(count, ~std::size_t{0});
    const std::size_t want_pending = reference_hamerly_skip(
        count, assign.data(), best.data(), want_lower.data(), s_half.data(), delta_max,
        delta_second, moved_most, kScale, kShift, base_index, want_survivors.data());
    ASSERT_GT(want_pending, 0u) << "distribution no longer exercises survivors";
    if (count >= 16) {
      ASSERT_LT(want_pending, count) << "distribution no longer exercises skips";
    }
    for (const simd::Level level : available_levels()) {
      std::vector<double> got_lower = lower;
      std::vector<std::size_t> got_survivors(count, ~std::size_t{0});
      const std::size_t got_pending = simd::hamerly_skip_batch(
          count, assign.data(), best.data(), got_lower.data(), s_half.data(), delta_max,
          delta_second, moved_most, kScale, kShift, base_index, got_survivors.data(), level);
      ASSERT_EQ(got_pending, want_pending)
          << "survivor count diverged at level " << simd::level_name(level)
          << " (count=" << count << ")";
      for (std::size_t j = 0; j < want_pending; ++j) {
        ASSERT_EQ(got_survivors[j], want_survivors[j])
            << "survivor order diverged at level " << simd::level_name(level)
            << " (j=" << j << ")";
      }
      for (std::size_t j = 0; j < count; ++j) {
        ASSERT_EQ(bits_of(got_lower[j]), bits_of(want_lower[j]))
            << "updated lower bound not bit-identical at level " << simd::level_name(level)
            << " (j=" << j << ", count=" << count << ")";
      }
    }
  }
}

/// Independent scalar restatement of weighted_scatter_add.
void reference_scatter_add(const double* points, std::size_t dim, const std::size_t* indices,
                           std::size_t count, const double* weights,
                           const std::size_t* assign, double* sums, double* cluster_weight) {
  for (std::size_t j = 0; j < count; ++j) {
    const std::size_t i = indices != nullptr ? indices[j] : j;
    const std::size_t c = assign != nullptr ? assign[i] : 0;
    for (std::size_t d = 0; d < dim; ++d) {
      sums[c * dim + d] += points[i * dim + d] * weights[i];
    }
    cluster_weight[c] += weights[i];
  }
}

TEST(PointSetSimdBatch, WeightedScatterAddMatchesScalarBits) {
  // Both call shapes of the k-means update accumulation: the full-pass form
  // (identity indices + an assignment array) and the per-cluster-segment
  // form (explicit indices with duplicates, accumulators pinned to one
  // cluster). Dims cover the scalar-only fallback (< 4), a full 4-lane
  // block, and mixed block + remainder; counts straddle the dispatch floor.
  const std::size_t dims[] = {1, 3, 4, 5, 8, 9};
  const std::size_t counts[] = {1, 4, 15, 16, 17, 300};
  constexpr std::size_t kK = 6;
  for (const std::size_t dim : dims) {
    Rng rng(0x5ca7 + dim);
    for (const std::size_t count : counts) {
      std::vector<double> points(count * dim), weights(count);
      std::vector<std::size_t> assign(count);
      for (double& v : points) v = rng.uniform(-100.0, 100.0);
      for (double& v : weights) v = rng.uniform(0.1, 10.0);
      for (auto& a : assign) a = rng.below(kK);

      std::vector<double> want_sums(kK * dim, 0.0), want_cw(kK, 0.0);
      reference_scatter_add(points.data(), dim, nullptr, count, weights.data(),
                            assign.data(), want_sums.data(), want_cw.data());
      for (const simd::Level level : available_levels()) {
        std::vector<double> got_sums(kK * dim, 0.0), got_cw(kK, 0.0);
        simd::weighted_scatter_add(points.data(), dim, nullptr, count, weights.data(),
                                   assign.data(), got_sums.data(), got_cw.data(), level);
        for (std::size_t c = 0; c < kK; ++c) {
          ASSERT_EQ(bits_of(got_cw[c]), bits_of(want_cw[c]))
              << "cluster weight not bit-identical at level " << simd::level_name(level)
              << " (c=" << c << ", dim=" << dim << ", count=" << count << ")";
          for (std::size_t d = 0; d < dim; ++d) {
            ASSERT_EQ(bits_of(got_sums[c * dim + d]), bits_of(want_sums[c * dim + d]))
                << "sum not bit-identical at level " << simd::level_name(level)
                << " (c=" << c << ", d=" << d << ", dim=" << dim << ", count=" << count
                << ")";
          }
        }
      }

      // Segment form: an unsorted index list with duplicates, one cluster.
      std::vector<std::size_t> indices;
      for (std::size_t i = 0; i < count; i += 2) indices.push_back(i);
      for (std::size_t i = 1; i < count; i += 5) indices.push_back(i);
      std::vector<double> want_seg(dim, 0.0);
      double want_seg_w = 0.0;
      reference_scatter_add(points.data(), dim, indices.data(), indices.size(),
                            weights.data(), nullptr, want_seg.data(), &want_seg_w);
      for (const simd::Level level : available_levels()) {
        std::vector<double> got_seg(dim, 0.0);
        double got_seg_w = 0.0;
        simd::weighted_scatter_add(points.data(), dim, indices.data(), indices.size(),
                                   weights.data(), nullptr, got_seg.data(), &got_seg_w,
                                   level);
        ASSERT_EQ(bits_of(got_seg_w), bits_of(want_seg_w))
            << "segment weight not bit-identical at level " << simd::level_name(level);
        for (std::size_t d = 0; d < dim; ++d) {
          ASSERT_EQ(bits_of(got_seg[d]), bits_of(want_seg[d]))
              << "segment sum not bit-identical at level " << simd::level_name(level)
              << " (d=" << d << ")";
        }
      }
    }
  }
}

TEST(PointSetSimdBatch, SingleCentroidSecondStaysInfinite) {
  constexpr std::size_t kDim = 3;
  std::vector<double> centroids = {1.0, 2.0, 3.0};
  Rng rng(0xeef);
  std::vector<double> points(40 * kDim);
  for (double& v : points) v = rng.uniform(-5.0, 5.0);
  for (const simd::Level level : available_levels()) {
    std::vector<std::size_t> assign(40, 99);
    std::vector<double> best(40), second(40, -1.0);
    simd::nearest2_batch(points.data(), kDim, nullptr, 40, centroids.data(), 1,
                         assign.data(), best.data(), second.data(), level);
    for (std::size_t j = 0; j < 40; ++j) {
      ASSERT_EQ(assign[j], 0u);
      ASSERT_EQ(second[j], kInf) << "level " << simd::level_name(level) << " j=" << j;
    }
  }
}

}  // namespace
}  // namespace geored
