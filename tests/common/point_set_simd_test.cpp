// Equivalence pins for the runtime-dispatched SIMD distance kernels
// (common/point_set_simd.h): every available level must reproduce the
// scalar strict-`<` first-winner scan bit for bit — including ties, NaN
// rows, infinite coordinates, and sizes straddling the register-block
// boundaries (16 rows per AVX-512 iteration, 8 per AVX2).
#include "common/point_set_simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/point_set.h"
#include "common/random.h"

namespace geored {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::uint64_t bits_of(double x) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

/// The scalar reference scan, restated independently of PointSet so the
/// pin does not inherit a bug from the code under test: strict-`<` first
/// winner from (best=0, best_dist=+inf), NaN distances never win.
std::size_t reference_nearest(const std::vector<double>& data, std::size_t n, std::size_t dim,
                              const double* query, double* best_dist_sq) {
  std::size_t best = 0;
  double best_dist = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    double dist = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = data[i * dim + d] - query[d];
      dist += diff * diff;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  *best_dist_sq = best_dist;
  return best;
}

/// Levels the running CPU can execute. kScalar is always present; testing a
/// level the CPU lacks would fault, so coverage narrows on older hardware
/// (the CI bench box runs all three).
std::vector<simd::Level> available_levels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::detected_level() >= simd::Level::kAvx2) levels.push_back(simd::Level::kAvx2);
  if (simd::detected_level() >= simd::Level::kAvx512) levels.push_back(simd::Level::kAvx512);
  return levels;
}

void expect_all_levels_match(const std::vector<double>& data, std::size_t n, std::size_t dim,
                             const double* query, const char* label) {
  double want_dist = 0.0;
  const std::size_t want = reference_nearest(data, n, dim, query, &want_dist);
  std::vector<double> want_row(n);
  for (std::size_t i = 0; i < n; ++i) {
    double dist = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = data[i * dim + d] - query[d];
      dist += diff * diff;
    }
    want_row[i] = std::sqrt(dist);
  }
  for (const simd::Level level : available_levels()) {
    double got_dist = 0.0;
    const std::size_t got = simd::nearest_row(data.data(), n, dim, query, &got_dist, level);
    EXPECT_EQ(got, want) << label << ": argmin diverged at level "
                         << simd::level_name(level) << " (n=" << n << ", dim=" << dim << ")";
    EXPECT_EQ(bits_of(got_dist), bits_of(want_dist))
        << label << ": best distance not bit-identical at level " << simd::level_name(level)
        << " (n=" << n << ", dim=" << dim << ")";
    std::vector<double> got_row(n, -1.0);
    simd::distance_row(data.data(), n, dim, query, got_row.data(), level);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits_of(got_row[i]), bits_of(want_row[i]))
          << label << ": distance_row[" << i << "] not bit-identical at level "
          << simd::level_name(level) << " (n=" << n << ", dim=" << dim << ")";
    }
  }
}

TEST(PointSetSimd, MatchesScalarAcrossBlockBoundarySizes) {
  // Every size around the AVX2 (8) and AVX-512 (16) block widths, both
  // sides of the dispatch threshold, plus sizes that leave 1..15 remainder
  // rows for the scalar tail.
  const std::size_t sizes[] = {1,  2,  7,  8,  9,  15, 16, 17, 23, 24, 31,  32,
                               33, 47, 48, 63, 64, 65, 96, 97, 127, 128, 129, 1000};
  const std::size_t dims[] = {1, 2, 3, 5, 8, 13};
  for (const std::size_t dim : dims) {
    Rng rng(0x51D0 + dim);
    for (const std::size_t n : sizes) {
      std::vector<double> data(n * dim);
      for (double& v : data) v = rng.uniform(-100.0, 100.0);
      std::vector<double> query(dim);
      for (double& v : query) v = rng.uniform(-100.0, 100.0);
      expect_all_levels_match(data, n, dim, query.data(), "random");
    }
  }
}

TEST(PointSetSimd, FirstWinnerOnExactTies) {
  // The winning row is duplicated at positions inside different register
  // blocks and in the scalar tail; every level must report the *first*
  // occurrence, like the scalar strict-`<` scan.
  constexpr std::size_t kDim = 3;
  constexpr std::size_t kN = 53;  // 3 full AVX-512 blocks + 5 tail rows
  const double winner[kDim] = {1.0, 2.0, 3.0};
  const double query[kDim] = {1.0, 2.0, 3.5};
  for (const std::size_t first : {std::size_t{0}, std::size_t{5}, std::size_t{18},
                                  std::size_t{33}, std::size_t{49}}) {
    std::vector<double> data(kN * kDim);
    for (std::size_t i = 0; i < kN; ++i) {
      for (std::size_t d = 0; d < kDim; ++d) {
        data[i * kDim + d] = 1000.0 + static_cast<double>(i + d);
      }
    }
    for (std::size_t i = first; i < kN; i += 7) {  // duplicates at and after `first`
      for (std::size_t d = 0; d < kDim; ++d) data[i * kDim + d] = winner[d];
    }
    for (const simd::Level level : available_levels()) {
      double dist = 0.0;
      EXPECT_EQ(simd::nearest_row(data.data(), kN, kDim, query, &dist, level), first)
          << "tie broken away from the first winner at level " << simd::level_name(level);
      EXPECT_EQ(dist, 0.25);
    }
    expect_all_levels_match(data, kN, kDim, query, "ties");
  }
}

TEST(PointSetSimd, NaNRowsNeverWin) {
  constexpr std::size_t kDim = 2;
  constexpr std::size_t kN = 40;
  std::vector<double> data(kN * kDim, 50.0);
  // NaN rows scattered across blocks and tail; one clean winner at row 27.
  for (const std::size_t i : {std::size_t{0}, std::size_t{9}, std::size_t{17},
                              std::size_t{26}, std::size_t{39}}) {
    data[i * kDim] = kNaN;
  }
  data[27 * kDim] = 1.0;
  data[27 * kDim + 1] = 1.0;
  const double query[kDim] = {1.0, 1.0};
  for (const simd::Level level : available_levels()) {
    double dist = -1.0;
    EXPECT_EQ(simd::nearest_row(data.data(), kN, kDim, query, &dist, level), 27u)
        << "a NaN distance displaced the winner at level " << simd::level_name(level);
    EXPECT_EQ(dist, 0.0);
  }
  expect_all_levels_match(data, kN, kDim, query, "nan-rows");
}

TEST(PointSetSimd, AllNaNKeepsScalarInitialState) {
  // Every distance NaN: nothing ever wins the strict `<`, so the scan ends
  // in its initial state — index 0, +inf — at every level.
  constexpr std::size_t kDim = 2;
  constexpr std::size_t kN = 37;
  const std::vector<double> data(kN * kDim, kNaN);
  const double query[kDim] = {0.0, 0.0};
  for (const simd::Level level : available_levels()) {
    double dist = 0.0;
    EXPECT_EQ(simd::nearest_row(data.data(), kN, kDim, query, &dist, level), 0u);
    EXPECT_EQ(dist, kInf) << "level " << simd::level_name(level);
  }
}

TEST(PointSetSimd, InfiniteCoordinatesMatchScalar) {
  // +-inf coordinates produce inf distances — and NaN where inf - inf
  // occurs. The pin is simply "whatever the scalar scan does", bit for bit.
  constexpr std::size_t kDim = 3;
  constexpr std::size_t kN = 35;
  std::vector<double> data(kN * kDim);
  Rng rng(0x1f1f);
  for (double& v : data) v = rng.uniform(-10.0, 10.0);
  data[4 * kDim + 1] = kInf;
  data[19 * kDim] = -kInf;
  data[33 * kDim + 2] = kInf;
  const double query_finite[kDim] = {0.5, -0.5, 2.0};
  expect_all_levels_match(data, kN, kDim, query_finite, "inf-rows");
  const double query_inf[kDim] = {kInf, -0.5, 2.0};  // inf - inf => NaN on row 4? no: dim 0
  expect_all_levels_match(data, kN, kDim, query_inf, "inf-query");
}

TEST(PointSetSimd, LevelNamesAndOrdering) {
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx2), "avx2");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx512), "avx512");
  // The active level can only clamp down from the detected one.
  EXPECT_LE(static_cast<int>(simd::active_level()), static_cast<int>(simd::detected_level()));
}

TEST(PointSetSimd, PointSetDispatchAgreesWithExplicitLevels) {
  // End-to-end through PointSet::nearest_of / distance_row, which dispatch
  // on active_level() above kMinSimdRows: results must equal the explicit
  // scalar-level kernel whatever level the dispatcher picked.
  constexpr std::size_t kDim = 5;
  const std::size_t n = simd::kMinSimdRows * 3 + 5;
  Rng rng(0xd15b);
  PointSet set(kDim);
  std::vector<double> flat;
  for (std::size_t i = 0; i < n; ++i) {
    Point p(kDim);
    for (std::size_t d = 0; d < kDim; ++d) p[d] = rng.uniform(-50.0, 50.0);
    set.push_back(p);
    flat.insert(flat.end(), p.values().begin(), p.values().end());
  }
  Point query(kDim);
  for (std::size_t d = 0; d < kDim; ++d) query[d] = rng.uniform(-50.0, 50.0);

  double want_dist = 0.0;
  const std::size_t want = simd::nearest_row(flat.data(), n, kDim,
                                             query.values().data(), &want_dist,
                                             simd::Level::kScalar);
  double got_dist = 0.0;
  EXPECT_EQ(set.nearest_of(query, &got_dist), want);
  EXPECT_EQ(bits_of(got_dist), bits_of(want_dist));

  std::vector<double> want_row(n), got_row(n);
  simd::distance_row(flat.data(), n, kDim, query.values().data(), want_row.data(),
                     simd::Level::kScalar);
  set.distance_row(query, got_row.data());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(bits_of(got_row[i]), bits_of(want_row[i])) << "row " << i;
  }
}

}  // namespace
}  // namespace geored
