#include "common/sym_matrix.h"

#include <gtest/gtest.h>

namespace geored {
namespace {

TEST(SymMatrix, EmptyMatrix) {
  SymMatrix m;
  EXPECT_EQ(m.size(), 0u);
}

TEST(SymMatrix, DiagonalIsAlwaysZero) {
  SymMatrix m(4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(m.at(i, i), 0.0);
  EXPECT_THROW(m.set(2, 2, 1.0), std::invalid_argument);
}

TEST(SymMatrix, SymmetricAccess) {
  SymMatrix m(5);
  m.set(1, 3, 42.0);
  EXPECT_EQ(m.at(1, 3), 42.0);
  EXPECT_EQ(m.at(3, 1), 42.0);
  m.set(3, 1, 7.0);  // writing the mirrored entry overwrites the same cell
  EXPECT_EQ(m.at(1, 3), 7.0);
}

TEST(SymMatrix, AllCellsIndependent) {
  constexpr std::size_t kN = 7;
  SymMatrix m(kN);
  double value = 1.0;
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = i + 1; j < kN; ++j) m.set(i, j, value++);
  }
  value = 1.0;
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = i + 1; j < kN; ++j) {
      EXPECT_EQ(m.at(i, j), value) << i << "," << j;
      ++value;
    }
  }
  EXPECT_EQ(m.raw().size(), kN * (kN - 1) / 2);
}

TEST(SymMatrix, OutOfRangeThrows) {
  SymMatrix m(3);
  EXPECT_THROW((void)m.at(0, 3), std::invalid_argument);
  EXPECT_THROW(m.set(3, 0, 1.0), std::invalid_argument);
}

TEST(SymMatrix, SingleNodeMatrix) {
  SymMatrix m(1);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at(0, 0), 0.0);
  EXPECT_TRUE(m.raw().empty());
}

}  // namespace
}  // namespace geored
