#include "common/point_set.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/random.h"

namespace geored {
namespace {

std::vector<Point> random_points(Rng& rng, std::size_t n, std::size_t dim) {
  std::vector<Point> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Point p(dim);
    for (std::size_t d = 0; d < dim; ++d) p[d] = rng.uniform(-500.0, 500.0);
    // Occasionally duplicate an earlier point so tie-breaking is exercised.
    if (i > 0 && rng.bernoulli(0.1)) p = points[rng.below(i)];
    points.push_back(p);
  }
  return points;
}

/// Scalar reference: linear nearest scan with strict `<` (first winner).
std::size_t nearest_reference(const std::vector<Point>& points, const Point& query,
                              double* best_sq) {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double d = points[i].distance_squared_to(query);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  if (best_sq != nullptr) *best_sq = best_d;
  return best;
}

/// Scalar reference: closest pair by lexicographic a < b scan, strict `<`.
std::pair<std::size_t, std::size_t> pairwise_reference(const std::vector<Point>& points,
                                                       double* best_sq) {
  std::size_t best_a = 0, best_b = 1;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < points.size(); ++a) {
    for (std::size_t b = a + 1; b < points.size(); ++b) {
      const double d = points[a].distance_squared_to(points[b]);
      if (d < best_d) {
        best_d = d;
        best_a = a;
        best_b = b;
      }
    }
  }
  if (best_sq != nullptr) *best_sq = best_d;
  return {best_a, best_b};
}

TEST(PointSet, BasicRoundTrip) {
  PointSet set;
  EXPECT_TRUE(set.empty());
  set.push_back(Point{1.0, 2.0});
  set.push_back(Point{3.0, 4.0});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.dim(), 2u);
  EXPECT_EQ(set.point(0), (Point{1.0, 2.0}));
  EXPECT_EQ(set.point(1), (Point{3.0, 4.0}));
  set.assign_row(0, Point{5.0, 6.0});
  EXPECT_EQ(set.point(0), (Point{5.0, 6.0}));
  set.erase_row(0);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.point(0), (Point{3.0, 4.0}));
}

TEST(PointSet, ReserveBeforeDimensionAdoptionPreallocates) {
  // reserve() before the first push_back (dimension still unknown) must be
  // honored once the dimension is adopted: no reallocation — and therefore a
  // stable row pointer — while pushing up to the reserved row count.
  constexpr std::size_t kRows = 64;
  PointSet set;
  set.reserve(kRows);
  set.push_back(Point{1.0, 2.0, 3.0});
  const double* first_row = set.row(0);
  for (std::size_t i = 1; i < kRows; ++i) {
    set.push_back(Point{static_cast<double>(i), 0.0, 0.0});
    EXPECT_EQ(set.row(0), first_row) << "reallocated at row " << i;
  }
  EXPECT_EQ(set.size(), kRows);
}

TEST(PointSet, FromPointsMatchesPushBack) {
  Rng rng(7);
  const auto points = random_points(rng, 17, 3);
  const PointSet set = PointSet::from_points(points);
  ASSERT_EQ(set.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) EXPECT_EQ(set.point(i), points[i]);
}

TEST(PointSet, AppendRowsMatchesPushBackRowPerRow) {
  Rng rng(13);
  const auto points = random_points(rng, 23, 4);
  std::vector<double> flat;
  for (const auto& p : points) {
    flat.insert(flat.end(), p.values().begin(), p.values().end());
  }

  PointSet one_by_one;
  for (const auto& p : points) one_by_one.push_back_row(p.values().data(), p.dim());
  PointSet bulk;
  bulk.append_rows(flat.data(), points.size(), 4);
  ASSERT_EQ(bulk.size(), one_by_one.size());
  ASSERT_EQ(bulk.dim(), one_by_one.dim());
  for (std::size_t i = 0; i < points.size(); ++i) EXPECT_EQ(bulk.point(i), points[i]);

  // Same dimension-adoption rules as push_back_row: appending again with a
  // different dimension is rejected, appending zero rows is a no-op.
  bulk.append_rows(flat.data(), 0, 4);
  EXPECT_EQ(bulk.size(), points.size());
  EXPECT_THROW(bulk.append_rows(flat.data(), 1, 3), std::invalid_argument);

  // reserve() before the dimension is adopted is honored on the first append.
  PointSet reserved;
  reserved.reserve(points.size());
  reserved.append_rows(flat.data(), 2, 4);
  const double* first_row = reserved.row(0);
  reserved.append_rows(flat.data() + 2 * 4, points.size() - 2, 4);
  EXPECT_EQ(reserved.row(0), first_row) << "reallocated despite reserve";
  EXPECT_EQ(reserved.size(), points.size());
}

TEST(PointSet, ZeroDimensionPointsAreCounted) {
  // Point() sentinels are legal inputs elsewhere in the codebase; a set of
  // them must still track its row count.
  PointSet set;
  set.push_back(Point());
  set.push_back(Point());
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.dim(), 0u);
  double d = -1.0;
  EXPECT_EQ(set.nearest_of(Point(), &d), 0u);
  EXPECT_EQ(d, 0.0);
  set.erase_row(0);
  EXPECT_EQ(set.size(), 1u);
}

TEST(PointSet, MismatchedDimensionRejected) {
  PointSet set;
  set.push_back(Point{1.0, 2.0});
  EXPECT_THROW(set.push_back(Point{1.0}), std::invalid_argument);
  EXPECT_THROW(set.assign_row(0, Point{1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(PointSet, EmptyKernelsRejected) {
  const PointSet set;
  EXPECT_THROW(set.nearest_of(Point{1.0}), std::invalid_argument);
  PointSet one;
  one.push_back(Point{1.0});
  EXPECT_THROW(one.pairwise_min_distance(), std::invalid_argument);
}

TEST(PointSet, DistanceSquaredMatchesPoint) {
  Rng rng(11);
  for (std::size_t dim : {1u, 2u, 5u, 8u}) {
    const auto points = random_points(rng, 40, dim);
    const PointSet set = PointSet::from_points(points);
    const auto queries = random_points(rng, 10, dim);
    for (const auto& q : queries) {
      for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(set.distance_squared(i, q.values().data()),
                  points[i].distance_squared_to(q));
      }
    }
  }
}

TEST(PointSet, NearestOfMatchesScalarScan) {
  Rng rng(23);
  for (int round = 0; round < 30; ++round) {
    const std::size_t dim = 1 + rng.below(6);
    const std::size_t n = 1 + rng.below(80);
    const auto points = random_points(rng, n, dim);
    const PointSet set = PointSet::from_points(points);
    const auto queries = random_points(rng, 5, dim);
    for (const auto& q : queries) {
      double ref_sq = 0.0, got_sq = 0.0;
      const std::size_t ref = nearest_reference(points, q, &ref_sq);
      const std::size_t got = set.nearest_of(q, &got_sq);
      EXPECT_EQ(got, ref);
      EXPECT_EQ(got_sq, ref_sq);  // bitwise, not approximate
    }
  }
}

TEST(PointSet, DistanceRowMatchesScalarDistances) {
  Rng rng(31);
  for (int round = 0; round < 20; ++round) {
    const std::size_t dim = 1 + rng.below(6);
    const std::size_t n = 1 + rng.below(60);
    const auto points = random_points(rng, n, dim);
    const PointSet set = PointSet::from_points(points);
    const auto queries = random_points(rng, 3, dim);
    std::vector<double> out(n);
    for (const auto& q : queries) {
      set.distance_row(q, out.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], points[i].distance_to(q));  // bitwise
      }
    }
  }
}

TEST(PointSet, PairwiseMinDistanceMatchesScalarScan) {
  Rng rng(43);
  for (int round = 0; round < 30; ++round) {
    const std::size_t dim = 1 + rng.below(6);
    const std::size_t n = 2 + rng.below(50);
    const auto points = random_points(rng, n, dim);
    const PointSet set = PointSet::from_points(points);
    double ref_sq = 0.0, got_sq = 0.0;
    const auto ref = pairwise_reference(points, &ref_sq);
    const auto got = set.pairwise_min_distance(&got_sq);
    EXPECT_EQ(got, ref);
    EXPECT_EQ(got_sq, ref_sq);
  }
}

TEST(PointSet, KernelsStableAfterEraseAndAssign) {
  Rng rng(59);
  auto points = random_points(rng, 25, 4);
  PointSet set = PointSet::from_points(points);
  // Interleave mutations with kernel checks so the cache-maintenance calls
  // used by the summarizer stay equivalent to rebuilding from scratch.
  for (int step = 0; step < 15 && points.size() >= 3; ++step) {
    if (rng.bernoulli(0.5)) {
      const std::size_t i = rng.below(points.size());
      points.erase(points.begin() + static_cast<std::ptrdiff_t>(i));
      set.erase_row(i);
    } else {
      const std::size_t i = rng.below(points.size());
      Point p(4);
      for (std::size_t d = 0; d < 4; ++d) p[d] = rng.uniform(-100.0, 100.0);
      points[i] = p;
      set.assign_row(i, p);
    }
    ASSERT_EQ(set.size(), points.size());
    const auto q = random_points(rng, 1, 4)[0];
    EXPECT_EQ(set.nearest_of(q), nearest_reference(points, q, nullptr));
    EXPECT_EQ(set.pairwise_min_distance(), pairwise_reference(points, nullptr));
  }
}

}  // namespace
}  // namespace geored
