#include "common/serialize.h"

#include <gtest/gtest.h>

namespace geored {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  ByteWriter writer;
  writer.write_u32(0xdeadbeefu);
  writer.write_u64(0x0123456789abcdefULL);
  writer.write_f64(-3.25);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.read_f64(), -3.25);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serialize, VectorRoundTrip) {
  ByteWriter writer;
  const std::vector<double> values{1.0, -2.5, 1e-300, 1e300};
  writer.write_f64_vector(values);
  writer.write_f64_vector({});
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_f64_vector(), values);
  EXPECT_TRUE(reader.read_f64_vector().empty());
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serialize, SizeAccounting) {
  ByteWriter writer;
  EXPECT_EQ(writer.size(), 0u);
  writer.write_u32(1);
  EXPECT_EQ(writer.size(), 4u);
  writer.write_f64(1.0);
  EXPECT_EQ(writer.size(), 12u);
  writer.write_f64_vector({1.0, 2.0});
  EXPECT_EQ(writer.size(), 12u + 4u + 16u);
}

TEST(Serialize, ReadPastEndThrows) {
  ByteWriter writer;
  writer.write_u32(5);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_u32(), 5u);
  EXPECT_THROW(reader.read_u32(), std::invalid_argument);
  EXPECT_THROW(ByteReader(writer.bytes()).read_u64(), std::invalid_argument);
}

TEST(Serialize, RemainingTracksOffset) {
  ByteWriter writer;
  writer.write_u64(1);
  writer.write_u32(2);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.remaining(), 12u);
  reader.read_u64();
  EXPECT_EQ(reader.remaining(), 4u);
}

}  // namespace
}  // namespace geored
