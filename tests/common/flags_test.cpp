#include "common/flags.h"

#include <gtest/gtest.h>

namespace geored {
namespace {

FlagParser make_parser() {
  FlagParser parser("tool", "test tool");
  parser.add_string("name", "default-name", "a string flag");
  parser.add_int("count", 7, "an int flag");
  parser.add_double("rate", 0.5, "a double flag");
  parser.add_bool("verbose", false, "a bool flag");
  return parser;
}

TEST(Flags, DefaultsApplyWithoutArguments) {
  auto parser = make_parser();
  const auto positional = parser.parse({});
  EXPECT_TRUE(positional.empty());
  EXPECT_EQ(parser.get_string("name"), "default-name");
  EXPECT_EQ(parser.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(parser.get_double("rate"), 0.5);
  EXPECT_FALSE(parser.get_bool("verbose"));
  EXPECT_FALSE(parser.is_set("count"));
}

TEST(Flags, EqualsAndSpaceForms) {
  auto parser = make_parser();
  parser.parse({"--name=alpha", "--count", "42", "--rate=2.5"});
  EXPECT_EQ(parser.get_string("name"), "alpha");
  EXPECT_EQ(parser.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(parser.get_double("rate"), 2.5);
  EXPECT_TRUE(parser.is_set("count"));
}

TEST(Flags, BooleanForms) {
  auto parser = make_parser();
  parser.parse({"--verbose"});
  EXPECT_TRUE(parser.get_bool("verbose"));

  auto parser2 = make_parser();
  parser2.parse({"--verbose=false"});
  EXPECT_FALSE(parser2.get_bool("verbose"));

  auto parser3 = make_parser();
  parser3.parse({"--verbose", "false"});
  EXPECT_FALSE(parser3.get_bool("verbose"));
}

TEST(Flags, PositionalArgumentsAndSeparator) {
  auto parser = make_parser();
  const auto positional =
      parser.parse({"first", "--count=1", "second", "--", "--count=9"});
  EXPECT_EQ(positional, (std::vector<std::string>{"first", "second", "--count=9"}));
  EXPECT_EQ(parser.get_int("count"), 1);
}

TEST(Flags, ErrorsOnUnknownAndMalformed) {
  auto parser = make_parser();
  EXPECT_THROW(parser.parse({"--bogus=1"}), std::invalid_argument);
  EXPECT_THROW(make_parser().parse({"--count=notanumber"}), std::invalid_argument);
  EXPECT_THROW(make_parser().parse({"--rate"}), std::invalid_argument);  // missing value
  EXPECT_THROW(make_parser().parse({"--verbose=maybe"}), std::invalid_argument);
}

TEST(Flags, NegativeAndScientificNumbers) {
  FlagParser parser("tool", "test");
  parser.add_int("offset", 0, "signed int");
  parser.add_double("gain", 0.0, "double");
  parser.parse({"--offset=-42", "--gain=-1.5e3"});
  EXPECT_EQ(parser.get_int("offset"), -42);
  EXPECT_DOUBLE_EQ(parser.get_double("gain"), -1500.0);
}

TEST(Flags, HelpRequestedInsteadOfFailing) {
  auto parser = make_parser();
  parser.parse({"--help"});
  EXPECT_TRUE(parser.help_requested());
  const auto text = parser.help();
  EXPECT_NE(text.find("--count"), std::string::npos);
  EXPECT_NE(text.find("default: 7"), std::string::npos);
  EXPECT_NE(text.find("a bool flag"), std::string::npos);
}

TEST(Flags, TypeMismatchAccessorThrows) {
  auto parser = make_parser();
  parser.parse({});
  EXPECT_THROW((void)parser.get_int("name"), std::invalid_argument);
  EXPECT_THROW((void)parser.get_string("missing"), std::invalid_argument);
}

TEST(Flags, DuplicateRegistrationRejected) {
  FlagParser parser("tool", "test");
  parser.add_int("x", 1, "first");
  EXPECT_THROW(parser.add_double("x", 2.0, "second"), std::invalid_argument);
}

}  // namespace
}  // namespace geored
