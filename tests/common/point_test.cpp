#include "common/point.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace geored {
namespace {

TEST(Point, DefaultIsEmpty) {
  Point p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.dim(), 0u);
}

TEST(Point, ZeroConstructor) {
  Point p(3);
  EXPECT_EQ(p.dim(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(p[i], 0.0);
}

TEST(Point, ArithmeticOperations) {
  const Point a{1.0, 2.0, 3.0};
  const Point b{4.0, 5.0, 6.0};
  const Point sum = a + b;
  EXPECT_EQ(sum, (Point{5.0, 7.0, 9.0}));
  EXPECT_EQ(b - a, (Point{3.0, 3.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Point{2.0, 4.0, 6.0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(b / 2.0, (Point{2.0, 2.5, 3.0}));
}

TEST(Point, DimensionMismatchThrows) {
  Point a{1.0, 2.0};
  const Point b{1.0, 2.0, 3.0};
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW((void)a.distance_to(b), std::invalid_argument);
}

TEST(Point, DivisionByZeroThrows) {
  Point a{1.0};
  EXPECT_THROW(a /= 0.0, std::invalid_argument);
}

TEST(Point, NormAndDistance) {
  const Point p{3.0, 4.0};
  EXPECT_DOUBLE_EQ(p.norm(), 5.0);
  EXPECT_DOUBLE_EQ(p.norm_squared(), 25.0);
  const Point q{0.0, 0.0};
  EXPECT_DOUBLE_EQ(p.distance_to(q), 5.0);
  EXPECT_DOUBLE_EQ(p.distance_squared_to(q), 25.0);
}

TEST(Point, UnitVectorPointsAway) {
  const Point a{2.0, 0.0};
  const Point b{0.0, 0.0};
  const Point u = a.unit_vector_from(b);
  EXPECT_NEAR(u[0], 1.0, 1e-12);
  EXPECT_NEAR(u[1], 0.0, 1e-12);
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
}

TEST(Point, UnitVectorCoincidentPointsIsDeterministicUnit) {
  const Point a{1.0, 1.0, 1.0};
  const Point u1 = a.unit_vector_from(a, 5);
  const Point u2 = a.unit_vector_from(a, 5);
  EXPECT_EQ(u1, u2);
  EXPECT_NEAR(u1.norm(), 1.0, 1e-9);
  // Different tiebreak ids give different directions.
  const Point u3 = a.unit_vector_from(a, 6);
  EXPECT_NE(u1, u3);
}

TEST(Point, ComponentSquares) {
  const Point p{-2.0, 3.0};
  EXPECT_EQ(p.component_squares(), (Point{4.0, 9.0}));
}

TEST(Point, IsFinite) {
  EXPECT_TRUE((Point{1.0, 2.0}).is_finite());
  Point p{1.0, 2.0};
  p[1] = std::nan("");
  EXPECT_FALSE(p.is_finite());
  p[1] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(p.is_finite());
}

TEST(Point, StreamOutput) {
  std::ostringstream os;
  os << Point{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

TEST(WeightedMean, BasicAndEdgeCases) {
  const std::vector<Point> points{{0.0, 0.0}, {4.0, 0.0}};
  EXPECT_EQ(weighted_mean(points, {1.0, 1.0}), (Point{2.0, 0.0}));
  EXPECT_EQ(weighted_mean(points, {3.0, 1.0}), (Point{1.0, 0.0}));
  EXPECT_THROW(weighted_mean({}, {}), std::invalid_argument);
  EXPECT_THROW(weighted_mean(points, {1.0}), std::invalid_argument);
  EXPECT_THROW(weighted_mean(points, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(weighted_mean(points, {1.0, -1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace geored
