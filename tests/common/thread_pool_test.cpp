#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/ensure.h"
#include "common/random.h"

namespace geored {
namespace {

/// Restores the global pool to its default size when a test exits.
struct GlobalPoolGuard {
  ~GlobalPoolGuard() { ThreadPool::set_global_thread_count(0); }
};

TEST(ThreadPool, DefaultThreadCountReadsEnvironment) {
  ::setenv("GEORED_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3u);
  ::setenv("GEORED_THREADS", "0", 1);  // clamped up to 1
  EXPECT_EQ(ThreadPool::default_thread_count(), 1u);
  ::setenv("GEORED_THREADS", "-4", 1);  // clamped up to 1
  EXPECT_EQ(ThreadPool::default_thread_count(), 1u);
  ::setenv("GEORED_THREADS", "999999", 1);  // clamped down to 1024
  EXPECT_EQ(ThreadPool::default_thread_count(), 1024u);
  ::setenv("GEORED_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);  // falls back to hardware
  ::unsetenv("GEORED_THREADS");
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, RunChunksRunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  constexpr std::size_t kChunks = 97;
  std::vector<std::atomic<int>> hits(kChunks);
  pool.run_chunks(kChunks, [&](std::size_t c) { hits[c].fetch_add(1); });
  for (std::size_t c = 0; c < kChunks; ++c) EXPECT_EQ(hits[c].load(), 1);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::size_t ran = 0;
  pool.run_chunks(5, [&](std::size_t) { ++ran; });  // no workers: caller does all
  EXPECT_EQ(ran, 5u);
}

TEST(ThreadPool, ExceptionIsRethrownAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_chunks(16,
                               [&](std::size_t c) {
                                 if (c == 7) throw std::runtime_error("chunk failure");
                               }),
               std::runtime_error);
  // All chunks of a later task still run.
  std::vector<std::atomic<int>> hits(8);
  pool.run_chunks(8, [&](std::size_t c) { hits[c].fetch_add(1); });
  for (std::size_t c = 0; c < 8; ++c) EXPECT_EQ(hits[c].load(), 1);
}

TEST(ThreadPool, ReplacingBusyGlobalPoolFailsLoudly) {
  GlobalPoolGuard guard;
  ThreadPool::set_global_thread_count(2);
  // Swapping the global pool out from under an in-flight task must throw
  // (use-after-free otherwise); the task's exception surfaces to the caller.
  EXPECT_THROW(ThreadPool::global().run_chunks(
                   8, [](std::size_t) { ThreadPool::set_global_thread_count(4); }),
               InternalError);
}

TEST(ThreadPool, IdleFromInsideChunkReportsBusyWithoutDeadlock) {
  // idle() takes the pool mutex, which drain() releases around every chunk
  // body — so a chunk may ask "is the pool idle" without self-deadlocking,
  // and the answer while any task is in flight is no. The test proves the
  // no-deadlock half by completing at all, and the answer half by counting.
  ThreadPool pool(3);
  std::atomic<int> saw_busy{0};
  pool.run_chunks(6, [&](std::size_t) {
    if (!pool.idle()) saw_busy.fetch_add(1);
  });
  EXPECT_EQ(saw_busy.load(), 6);
  EXPECT_TRUE(pool.idle());
}

TEST(ThreadPool, ReplacingGlobalPoolRacedFromAnotherThreadThrows) {
  GlobalPoolGuard guard;
  ThreadPool::set_global_thread_count(3);
  // The cross-thread variant of ReplacingBusyGlobalPoolFailsLoudly: one
  // thread holds chunks in flight while another tries to swap the pool.
  // The swap must throw InternalError — destroying the busy pool would
  // leave the runner's run_chunks using freed memory.
  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  std::thread runner([&] {
    ThreadPool::global().run_chunks(3, [&](std::size_t) {
      started.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  });
  // Any chunk having started proves run_chunks is committed (task_ set).
  while (started.load() == 0) std::this_thread::yield();
  EXPECT_THROW(ThreadPool::set_global_thread_count(2), InternalError);
  release.store(true);
  runner.join();
  // Quiescent again: the swap must now succeed.
  ThreadPool::set_global_thread_count(2);
  EXPECT_EQ(ThreadPool::global().thread_count(), 2u);
}

TEST(ThreadPool, ParallelForCoversRangeWithoutOverlap) {
  GlobalPoolGuard guard;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool::set_global_thread_count(threads);
    for (const std::size_t n : {0u, 1u, 3u, 1000u}) {
      std::vector<int> counts(n, 0);
      parallel_for(n, [&](std::size_t begin, std::size_t end) {
        ASSERT_LE(begin, end);
        for (std::size_t i = begin; i < end; ++i) ++counts[i];
      });
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i], 1) << "i=" << i;
    }
  }
}

TEST(ThreadPool, MinParallelGateForcesSingleChunk) {
  GlobalPoolGuard guard;
  ThreadPool::set_global_thread_count(4);
  std::atomic<int> calls{0};
  parallel_for(
      10,
      [&](std::size_t begin, std::size_t end) {
        calls.fetch_add(1);
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 10u);
      },
      /*min_parallel=*/100);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ReduceSumBitIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  Rng rng(101);
  std::vector<double> values(5000);
  for (auto& v : values) v = rng.uniform(-1.0, 1.0);
  const auto run = [&] {
    return parallel_reduce_sum(values.size(), [&](std::size_t begin, std::size_t end) {
      double partial = 0.0;
      for (std::size_t i = begin; i < end; ++i) partial += values[i];
      return partial;
    });
  };
  // The fixed chunk grid makes the summation tree a function of n alone:
  // every thread count produces the same bits, not merely close values.
  ThreadPool::set_global_thread_count(1);
  const double at_one = run();
  for (const std::size_t threads : {2u, 3u, 4u, 7u}) {
    ThreadPool::set_global_thread_count(threads);
    EXPECT_EQ(run(), at_one) << threads << " threads";  // byte-identical
  }
  double sequential = 0.0;
  for (const double v : values) sequential += v;
  EXPECT_NEAR(at_one, sequential, 1e-9 * (std::abs(sequential) + 1.0));
}

TEST(ThreadPool, ReduceSumBelowMinParallelIsExactlySequential) {
  GlobalPoolGuard guard;
  ThreadPool::set_global_thread_count(4);
  Rng rng(303);
  std::vector<double> values(100);
  for (auto& v : values) v = rng.uniform(-1.0, 1.0);
  double sequential = 0.0;
  for (const double v : values) sequential += v;
  const double reduced = parallel_reduce_sum(
      values.size(),
      [&](std::size_t begin, std::size_t end) {
        double partial = 0.0;
        for (std::size_t i = begin; i < end; ++i) partial += values[i];
        return partial;
      },
      /*min_parallel=*/2048);
  EXPECT_EQ(reduced, sequential);  // single body(0, n) call, bit-exact
}

TEST(ThreadPool, ReduceSumReproducibleAtFixedThreadCount) {
  GlobalPoolGuard guard;
  ThreadPool::set_global_thread_count(4);
  Rng rng(202);
  std::vector<double> values(5000);
  for (auto& v : values) v = rng.uniform(-1.0, 1.0);
  const auto run = [&] {
    return parallel_reduce_sum(values.size(), [&](std::size_t begin, std::size_t end) {
      double partial = 0.0;
      for (std::size_t i = begin; i < end; ++i) partial += values[i];
      return partial;
    });
  };
  const double first = run();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(run(), first);  // bit-reproducible
  // And within accumulation noise of the sequential order.
  double sequential = 0.0;
  for (const double v : values) sequential += v;
  EXPECT_NEAR(first, sequential, 1e-9 * (std::abs(sequential) + 1.0));
}

TEST(ThreadPool, ReduceSumCountsExactlyUnderContention) {
  GlobalPoolGuard guard;
  ThreadPool::set_global_thread_count(4);
  constexpr std::size_t kN = 100000;
  const double total = parallel_reduce_sum(kN, [](std::size_t begin, std::size_t end) {
    return static_cast<double>(end - begin);
  });
  EXPECT_EQ(total, static_cast<double>(kN));
}

}  // namespace
}  // namespace geored
