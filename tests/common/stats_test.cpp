#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace geored {
namespace {

TEST(OnlineStats, EmptyAccumulator) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
}

TEST(OnlineStats, MatchesDirectComputation) {
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  OnlineStats stats;
  for (const double v : values) stats.add(v);
  EXPECT_EQ(stats.count(), values.size());
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.population_variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.population_stddev(), 2.0);
  EXPECT_NEAR(stats.variance(), 4.0 * 8.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(5);
  OnlineStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    all.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmptySides) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  OnlineStats a_copy = a;
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs: adopt rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(OnlineStats, NumericallyStableForLargeOffsets) {
  OnlineStats stats;
  for (int i = 0; i < 1000; ++i) stats.add(1e9 + (i % 2));
  EXPECT_NEAR(stats.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(stats.population_variance(), 0.25, 1e-6);
}

TEST(PercentileSorted, InterpolatesLinearly) {
  const std::vector<double> values{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(values, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(values, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(values, 1.0 / 3.0), 20.0);
  EXPECT_THROW(percentile_sorted({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile_sorted(values, 1.5), std::invalid_argument);
}

TEST(PercentileSorted, SingletonSample) {
  EXPECT_DOUBLE_EQ(percentile_sorted({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({7.0}, 0.99), 7.0);
}

TEST(Summarize, FullSummary) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_GT(s.ci95_halfwidth, 0.0);
  EXPECT_NEAR(s.ci95_halfwidth, 1.96 * s.stddev / 10.0, 1e-9);
}

TEST(Summarize, EmptyAndUnsortedInput) {
  const Summary empty = summarize({});
  EXPECT_EQ(empty.count, 0u);
  const Summary s = summarize({3.0, 1.0, 2.0});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.p50, 2.0);
  EXPECT_EQ(s.max, 3.0);
}

TEST(Summary, ToStringMentionsKeyFields) {
  const Summary s = summarize({1.0, 2.0, 3.0});
  const std::string text = s.to_string();
  EXPECT_NE(text.find("n=3"), std::string::npos);
  EXPECT_NE(text.find("mean=2"), std::string::npos);
}

}  // namespace
}  // namespace geored
