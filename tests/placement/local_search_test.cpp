#include "placement/local_search.h"

#include <gtest/gtest.h>

#include <limits>

#include "cluster/summarizer.h"
#include "common/random.h"
#include "placement/evaluate.h"
#include "placement/random_placement.h"
#include "placement/strategy.h"
#include "topology/topology.h"

namespace geored::place {
namespace {

/// World where coordinates are exact (RTT == coordinate distance), so the
/// estimated objective local search optimizes equals the true one.
struct SearchWorld {
  topo::Topology topology;
  PlacementInput input;

  explicit SearchWorld(std::uint64_t seed, std::size_t candidates = 10,
                       std::size_t clients = 40)
      : topology(topo::Topology(std::vector<topo::NodeInfo>(0), SymMatrix(0), {})) {
    Rng rng(seed);
    std::vector<Point> positions;
    const std::size_t n = candidates + clients;
    for (std::size_t i = 0; i < n; ++i) {
      positions.push_back(Point{rng.uniform(0.0, 500.0), rng.uniform(0.0, 500.0)});
    }
    SymMatrix rtt(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        rtt.set(i, j, std::max(0.01, positions[i].distance_to(positions[j])));
      }
    }
    topology = topo::Topology(std::vector<topo::NodeInfo>(n), std::move(rtt), {});
    for (std::size_t i = 0; i < candidates; ++i) {
      input.candidates.push_back({static_cast<topo::NodeId>(i), positions[i],
                                  std::numeric_limits<double>::infinity()});
    }
    for (std::size_t i = candidates; i < n; ++i) {
      ClientRecord record;
      record.client = static_cast<topo::NodeId>(i);
      record.coords = positions[i];
      record.access_count = 1 + rng.below(10);
      input.clients.push_back(record);
    }
    input.k = 3;
    input.seed = seed;
    input.topology = &topology;
  }
};

TEST(LocalSearch, RejectsInvalidConfig) {
  LocalSearchConfig config;
  config.max_rounds = 0;
  EXPECT_THROW(LocalSearchPlacement(nullptr, config), std::invalid_argument);
  config = {};
  config.tolerance = -1.0;
  EXPECT_THROW(LocalSearchPlacement(nullptr, config), std::invalid_argument);
}

TEST(LocalSearch, NameReflectsSeedStrategy) {
  EXPECT_EQ(LocalSearchPlacement().name(), "online clustering +local-search");
  EXPECT_EQ(LocalSearchPlacement(std::make_unique<RandomPlacement>()).name(),
            "random +local-search");
}

TEST(LocalSearch, ProducesValidPlacements) {
  const SearchWorld world(1);
  LocalSearchPlacement strategy(std::make_unique<RandomPlacement>());
  for (std::size_t k = 1; k <= 5; ++k) {
    PlacementInput input = world.input;
    input.k = k;
    const auto placement = strategy.place(input);
    EXPECT_NO_THROW(validate_placement(placement, input)) << "k=" << k;
  }
}

/// The defining property: local search never yields a worse placement than
/// its seed, under the estimated (== true, here) objective.
class LocalSearchImproves : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalSearchImproves, NeverWorseThanRandomSeed) {
  const SearchWorld world(GetParam());
  RandomPlacement seed_strategy;
  const auto seed_placement = seed_strategy.place(world.input);
  LocalSearchPlacement refined(std::make_unique<RandomPlacement>());
  const auto refined_placement = refined.place(world.input);
  const double seed_delay =
      true_total_delay(world.topology, seed_placement, world.input.clients);
  const double refined_delay =
      true_total_delay(world.topology, refined_placement, world.input.clients);
  EXPECT_LE(refined_delay, seed_delay + 1e-9);
}

TEST_P(LocalSearchImproves, ReachesTheGlobalOptimumFromRandomSeeds) {
  // On these small instances vertex substitution from a random start lands
  // on the true optimum (characteristic strength of Teitz-Bart).
  const SearchWorld world(GetParam(), /*candidates=*/8, /*clients=*/25);
  const auto optimal = make_strategy(StrategyKind::kOptimal)->place(world.input);
  const double optimal_delay =
      true_total_delay(world.topology, optimal, world.input.clients);
  LocalSearchPlacement refined(std::make_unique<RandomPlacement>());
  const double refined_delay = true_total_delay(
      world.topology, refined.place(world.input), world.input.clients);
  EXPECT_NEAR(refined_delay, optimal_delay, optimal_delay * 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchImproves, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(LocalSearch, RefinesOnlineClusteringByDefault) {
  double online_total = 0.0, refined_total = 0.0;
  for (std::uint64_t seed = 10; seed < 18; ++seed) {
    SearchWorld world(seed);
    // Give the online strategy summaries to work from.
    cluster::SummarizerConfig config;
    config.max_clusters = 8;
    cluster::MicroClusterSummarizer summarizer(config);
    for (const auto& client : world.input.clients) {
      for (std::uint64_t a = 0; a < client.access_count; ++a) {
        summarizer.add(client.coords, 1.0);
      }
    }
    world.input.summaries = summarizer.clusters();

    const auto online = make_strategy(StrategyKind::kOnlineClustering)->place(world.input);
    const auto refined = LocalSearchPlacement().place(world.input);
    online_total += true_total_delay(world.topology, online, world.input.clients);
    refined_total += true_total_delay(world.topology, refined, world.input.clients);
  }
  EXPECT_LE(refined_total, online_total + 1e-9);
}

TEST(LocalSearch, NoClientsFallsBackToSeed) {
  SearchWorld world(3);
  world.input.clients.clear();
  LocalSearchPlacement strategy(std::make_unique<RandomPlacement>());
  const auto placement = strategy.place(world.input);
  EXPECT_EQ(placement, RandomPlacement().place(world.input));
}

TEST(LocalSearch, AllCandidatesChosenIsStable) {
  SearchWorld world(5, /*candidates=*/3, /*clients=*/10);
  world.input.k = 3;  // uses every candidate; no swap possible
  LocalSearchPlacement strategy(std::make_unique<RandomPlacement>());
  const auto placement = strategy.place(world.input);
  EXPECT_NO_THROW(validate_placement(placement, world.input));
}

}  // namespace
}  // namespace geored::place
