// Randomized robustness sweep: every strategy must produce a valid
// placement — and the oracle must dominate — on arbitrary generated inputs:
// degenerate candidate layouts, coincident nodes, zero-access clients, huge
// weights, tiny and large k, with and without summaries.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>

#include "cluster/summarizer.h"
#include "common/random.h"
#include "placement/evaluate.h"
#include "placement/strategy.h"
#include "topology/topology.h"

namespace geored::place {
namespace {

struct FuzzWorld {
  topo::Topology topology;
  PlacementInput input;

  explicit FuzzWorld(std::uint64_t seed)
      : topology(topo::Topology(std::vector<topo::NodeInfo>(0), SymMatrix(0), {})) {
    Rng rng(seed);
    const std::size_t candidates = 2 + rng.below(12);
    const std::size_t clients = 1 + rng.below(50);
    const std::size_t n = candidates + clients;
    const std::size_t dim = 1 + rng.below(4);

    std::vector<Point> positions;
    for (std::size_t i = 0; i < n; ++i) {
      Point p(dim);
      // Occasionally coincident nodes and extreme coordinates.
      if (i > 0 && rng.bernoulli(0.1)) {
        p = positions[rng.below(i)];
      } else {
        for (std::size_t d = 0; d < dim; ++d) {
          p[d] = rng.bernoulli(0.05) ? rng.uniform(-1e5, 1e5) : rng.uniform(-300, 300);
        }
      }
      positions.push_back(p);
    }
    SymMatrix rtt(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        rtt.set(i, j, std::max(0.01, positions[i].distance_to(positions[j])));
      }
    }
    topology = topo::Topology(std::vector<topo::NodeInfo>(n), std::move(rtt), {});

    for (std::size_t c = 0; c < candidates; ++c) {
      input.candidates.push_back({static_cast<topo::NodeId>(c), positions[c],
                                  rng.bernoulli(0.2)
                                      ? rng.uniform(1.0, 100.0)
                                      : std::numeric_limits<double>::infinity()});
    }
    cluster::SummarizerConfig summarizer_config;
    summarizer_config.max_clusters = 1 + rng.below(10);
    cluster::MicroClusterSummarizer summarizer(summarizer_config);
    for (std::size_t u = candidates; u < n; ++u) {
      ClientRecord record;
      record.client = static_cast<topo::NodeId>(u);
      record.coords = positions[u];
      record.access_count =
          rng.bernoulli(0.1) ? 0 : 1 + rng.below(rng.bernoulli(0.05) ? 100000 : 50);
      record.data_weight = static_cast<double>(record.access_count);
      input.clients.push_back(record);
      for (std::uint64_t a = 0; a < std::min<std::uint64_t>(record.access_count, 200);
           ++a) {
        summarizer.add(record.coords, 1.0);
      }
    }
    if (rng.bernoulli(0.15)) {
      input.summaries.clear();  // no usage info at all
    } else {
      input.summaries = summarizer.clusters();
    }
    input.k = 1 + rng.below(candidates + 2);  // sometimes > |C|
    input.seed = seed;
    input.topology = &topology;
  }
};

void run_fuzz_case(std::uint64_t seed) {
  const FuzzWorld world(seed);
  // Ensure at least one client has accesses (the oracle requires records;
  // the all-zero case is covered by dedicated tests).
  bool any_access = false;
  for (const auto& client : world.input.clients) any_access |= client.access_count > 0;

  const std::vector<StrategyKind> kinds{
      StrategyKind::kRandom,       StrategyKind::kOfflineKMeans,
      StrategyKind::kOnlineClustering, StrategyKind::kGreedy,
      StrategyKind::kHotZone,      StrategyKind::kLocalSearch};

  double optimal_delay = -1.0;
  if (any_access) {
    const auto optimal = make_strategy(StrategyKind::kOptimal)->place(world.input);
    ASSERT_NO_THROW(validate_placement(optimal, world.input));
    optimal_delay = true_total_delay(world.topology, optimal, world.input.clients);
  }
  for (const auto kind : kinds) {
    const auto placement = make_strategy(kind)->place(world.input);
    ASSERT_NO_THROW(validate_placement(placement, world.input))
        << strategy_name(kind) << " seed " << seed;
    if (any_access) {
      const double delay = true_total_delay(world.topology, placement, world.input.clients);
      EXPECT_GE(delay + 1e-6, optimal_delay) << strategy_name(kind);
    }
  }
}

class PlacementFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlacementFuzz, EveryStrategyStaysValidAndOracleDominates) {
  run_fuzz_case(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

// Extended sweep with a runtime-tunable budget: CI's sanitizer job sets
// GEORED_FUZZ_ITERS high to hunt for rare inputs; the default adds a light
// extra pass beyond the fixed seed range above. Seeds start at 1000 so the
// two sweeps never overlap.
TEST(PlacementFuzzBudget, ExtendedRandomSweep) {
  std::uint64_t iters = 10;
  if (const char* env = std::getenv("GEORED_FUZZ_ITERS")) {
    iters = std::strtoull(env, nullptr, 10);
  }
  for (std::uint64_t seed = 1000; seed < 1000 + iters; ++seed) {
    run_fuzz_case(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace geored::place
