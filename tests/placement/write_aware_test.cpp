#include "placement/write_aware.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/random.h"
#include "placement/evaluate.h"
#include "placement/random_placement.h"
#include "placement/spread.h"
#include "topology/topology.h"

namespace geored::place {
namespace {

/// Two client populations at the ends of a line; candidates along it.
struct WriteWorld {
  topo::Topology topology;
  PlacementInput input;

  WriteWorld() : topology(topo::Topology(std::vector<topo::NodeInfo>(0), SymMatrix(0), {})) {
    // Candidates at x = 0, 100, ..., 400 (ids 0..4), clients at 0 and 400.
    std::vector<Point> positions;
    for (int i = 0; i < 5; ++i) positions.push_back(Point{100.0 * i});
    positions.push_back(Point{0.0});    // client node 5
    positions.push_back(Point{400.0});  // client node 6
    SymMatrix rtt(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      for (std::size_t j = i + 1; j < positions.size(); ++j) {
        rtt.set(i, j, std::max(0.1, positions[i].distance_to(positions[j])));
      }
    }
    topology =
        topo::Topology(std::vector<topo::NodeInfo>(positions.size()), std::move(rtt), {});
    for (topo::NodeId id = 0; id < 5; ++id) {
      input.candidates.push_back({id, positions[id],
                                  std::numeric_limits<double>::infinity()});
    }
    for (topo::NodeId id = 5; id < 7; ++id) {
      ClientRecord record;
      record.client = id;
      record.coords = positions[id];
      record.access_count = 100;
      input.clients.push_back(record);
    }
    input.k = 2;
    input.seed = 1;
    input.topology = &topology;
  }
};

TEST(WriteAware, ObjectiveMatchesHandComputation) {
  const WriteWorld world;
  // Replicas at 0 and 400; clients at 0 and 400, 100 accesses each.
  // Reads: both clients have a replica at distance 0. Writes: farthest
  // replica is 400 away for both.
  const Placement placement{0, 4};
  EXPECT_DOUBLE_EQ(estimated_write_aware_delay(placement, world.input.candidates,
                                               world.input.clients, 0.0),
                   0.0);
  EXPECT_DOUBLE_EQ(estimated_write_aware_delay(placement, world.input.candidates,
                                               world.input.clients, 1.0),
                   2 * 100 * 400.0);
  EXPECT_DOUBLE_EQ(estimated_write_aware_delay(placement, world.input.candidates,
                                               world.input.clients, 0.25),
                   0.75 * 0.0 + 0.25 * 2 * 100 * 400.0);
  // True-matrix version agrees up to the 0.1 ms RTT floor applied to
  // coincident nodes.
  EXPECT_NEAR(true_write_aware_delay(world.topology, placement, world.input.clients, 0.25),
              estimated_write_aware_delay(placement, world.input.candidates,
                                          world.input.clients, 0.25),
              0.1 * 200);
}

TEST(WriteAware, ValidatesArguments) {
  const WriteWorld world;
  EXPECT_THROW(estimated_write_aware_delay({}, world.input.candidates,
                                           world.input.clients, 0.5),
               std::invalid_argument);
  EXPECT_THROW(estimated_write_aware_delay({0}, world.input.candidates,
                                           world.input.clients, 1.5),
               std::invalid_argument);
  WriteAwareConfig config;
  config.write_fraction = -0.1;
  EXPECT_THROW(WriteAwarePlacement{config}, std::invalid_argument);
}

TEST(WriteAware, ReadOnlySpreadsWriteHeavyCollapses) {
  const WriteWorld world;
  // Read-only: serve each population locally -> replicas at the ends.
  WriteAwareConfig read_only;
  read_only.write_fraction = 0.0;
  const auto spread_placement = WriteAwarePlacement(
      read_only, std::make_unique<RandomPlacement>()).place(world.input);
  EXPECT_GE(min_pairwise_spread(spread_placement, world.input.candidates), 300.0);

  // Write-heavy: every write pays the farthest replica, so the replicas
  // huddle together (several huddled placements tie at the optimum of 480
  // weighted ms; all have pairwise spread 100, vs 400 for the read layout).
  WriteAwareConfig write_heavy;
  write_heavy.write_fraction = 0.9;
  const auto huddled_placement = WriteAwarePlacement(
      write_heavy, std::make_unique<RandomPlacement>()).place(world.input);
  EXPECT_LE(min_pairwise_spread(huddled_placement, world.input.candidates), 100.0);
  // And the huddle is strictly better than the read-optimal spread layout
  // under the write-heavy objective.
  EXPECT_LT(estimated_write_aware_delay(huddled_placement, world.input.candidates,
                                        world.input.clients, 0.9),
            estimated_write_aware_delay(spread_placement, world.input.candidates,
                                        world.input.clients, 0.9));
}

TEST(WriteAware, NeverWorseThanSeedOnTheCombinedObjective) {
  Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    WriteWorld world;
    world.input.seed = static_cast<std::uint64_t>(trial);
    const double f = rng.uniform(0.0, 1.0);
    WriteAwareConfig config;
    config.write_fraction = f;
    const auto seed_placement = RandomPlacement().place(world.input);
    const auto refined = WriteAwarePlacement(
        config, std::make_unique<RandomPlacement>()).place(world.input);
    EXPECT_LE(estimated_write_aware_delay(refined, world.input.candidates,
                                          world.input.clients, f),
              estimated_write_aware_delay(seed_placement, world.input.candidates,
                                          world.input.clients, f) + 1e-9);
    EXPECT_NO_THROW(validate_placement(refined, world.input));
  }
}

TEST(WriteAware, ZeroFractionMatchesLatencyObjective) {
  // With f = 0 the combined objective equals the paper's read objective.
  const WriteWorld world;
  const Placement placement{1, 3};
  EXPECT_DOUBLE_EQ(
      estimated_write_aware_delay(placement, world.input.candidates, world.input.clients,
                                  0.0),
      estimated_total_delay(placement, world.input.candidates, world.input.clients));
}

TEST(WriteAware, NameReflectsComposition) {
  EXPECT_EQ(WriteAwarePlacement().name(), "online clustering +write-aware");
}

}  // namespace
}  // namespace geored::place
