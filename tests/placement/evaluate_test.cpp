#include "placement/evaluate.h"

#include <gtest/gtest.h>

#include "topology/topology.h"

namespace geored::place {
namespace {

/// Hand-built 5-node line topology: rtt(i,j) = 10*|i-j|.
topo::Topology line_topology() {
  constexpr std::size_t kN = 5;
  SymMatrix rtt(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = i + 1; j < kN; ++j) {
      rtt.set(i, j, 10.0 * static_cast<double>(j - i));
    }
  }
  return topo::Topology(std::vector<topo::NodeInfo>(kN), std::move(rtt), {});
}

std::vector<ClientRecord> line_clients() {
  // Clients at nodes 0 and 4, client 0 making 3 accesses, client 4 one.
  ClientRecord c0;
  c0.client = 0;
  c0.coords = Point{0.0};
  c0.access_count = 3;
  ClientRecord c4;
  c4.client = 4;
  c4.coords = Point{40.0};
  c4.access_count = 1;
  return {c0, c4};
}

TEST(Evaluate, TrueTotalDelayUsesClosestReplica) {
  const auto topology = line_topology();
  const auto clients = line_clients();
  // Replicas at 1 and 3: client0 -> node1 (10ms) x3, client4 -> node3 (10ms) x1.
  EXPECT_DOUBLE_EQ(true_total_delay(topology, {1, 3}, clients), 40.0);
  // Single replica at 2: client0 20ms x3 + client4 20ms x1 = 80.
  EXPECT_DOUBLE_EQ(true_total_delay(topology, {2}, clients), 80.0);
}

TEST(Evaluate, TrueAverageDelayNormalizesByAccesses) {
  const auto topology = line_topology();
  const auto clients = line_clients();
  EXPECT_DOUBLE_EQ(true_average_delay(topology, {1, 3}, clients), 10.0);
  EXPECT_DOUBLE_EQ(true_average_delay(topology, {2}, clients), 20.0);
}

TEST(Evaluate, QuorumUsesOrderStatistic) {
  const auto topology = line_topology();
  const auto clients = line_clients();
  // Replicas at 1 and 3. With quorum 2 every client waits for its 2nd
  // closest replica: client0 -> node3 (30ms), client4 -> node1 (30ms).
  EXPECT_DOUBLE_EQ(true_total_delay(topology, {1, 3}, clients, 2), 30.0 * 3 + 30.0);
  EXPECT_THROW(true_total_delay(topology, {1, 3}, clients, 3), std::invalid_argument);
  EXPECT_THROW(true_total_delay(topology, {1}, clients, 0), std::invalid_argument);
}

TEST(Evaluate, EmptyPlacementRejected) {
  const auto topology = line_topology();
  EXPECT_THROW(true_total_delay(topology, {}, line_clients()), std::invalid_argument);
}

TEST(Evaluate, AverageOverZeroAccessesRejected) {
  const auto topology = line_topology();
  std::vector<ClientRecord> clients = line_clients();
  for (auto& c : clients) c.access_count = 0;
  EXPECT_THROW(true_average_delay(topology, {1}, clients), std::invalid_argument);
}

TEST(Evaluate, EstimatedDelayUsesCoordinates) {
  std::vector<CandidateInfo> candidates;
  candidates.push_back({7, Point{0.0}, 0.0});
  candidates.push_back({8, Point{100.0}, 0.0});
  ClientRecord client;
  client.client = 99;
  client.coords = Point{10.0};
  client.access_count = 2;
  // Closest replica (node 7) is 10 away; 2 accesses -> 20.
  EXPECT_DOUBLE_EQ(estimated_total_delay({7, 8}, candidates, {client}), 20.0);
  // A placement referencing a non-candidate id is rejected.
  EXPECT_THROW(estimated_total_delay({5}, candidates, {client}), std::invalid_argument);
}

TEST(Evaluate, ValidatePlacementCatchesViolations) {
  PlacementInput input;
  input.candidates = {{1, Point{0.0}, 0.0}, {2, Point{1.0}, 0.0}, {3, Point{2.0}, 0.0}};
  input.k = 2;
  EXPECT_NO_THROW(validate_placement({1, 3}, input));
  EXPECT_THROW(validate_placement({1}, input), std::invalid_argument);        // too small
  EXPECT_THROW(validate_placement({1, 2, 3}, input), std::invalid_argument);  // too big
  EXPECT_THROW(validate_placement({1, 1}, input), std::invalid_argument);     // duplicate
  EXPECT_THROW(validate_placement({1, 9}, input), std::invalid_argument);     // unknown
  // k larger than the candidate pool: expected size is the pool size.
  input.k = 5;
  EXPECT_NO_THROW(validate_placement({1, 2, 3}, input));
}

}  // namespace
}  // namespace geored::place
