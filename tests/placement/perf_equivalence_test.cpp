// Equivalence of the optimized hot paths against the scalar reference
// implementations (see docs/performance.md):
//   * evaluators are byte-identical to the scalar paths at one thread and
//     within 1e-9 relative at higher thread counts;
//   * greedy and local-search placements are identical at any thread count
//     (their parallel loops never reassociate a floating-point sum);
//   * local search's incremental best/second-best deltas select exactly the
//     swaps a naive full re-evaluation selects;
//   * k-means is bitwise deterministic across thread counts.
// Input sizes sit above the kMinParallelClients grain so the parallel and
// gather fast paths are actually exercised.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "cluster/kmeans.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "placement/evaluate.h"
#include "placement/greedy.h"
#include "placement/local_search.h"
#include "topology/topology.h"

namespace geored::place {
namespace {

struct GlobalPoolGuard {
  ~GlobalPoolGuard() { ThreadPool::set_global_thread_count(0); }
};

constexpr std::size_t kNodes = 192;
constexpr std::size_t kDim = 5;

struct World {
  topo::Topology topology;
  std::vector<CandidateInfo> candidates;
  std::vector<ClientRecord> clients;
  Placement placement;

  World(std::uint64_t seed, std::size_t n_clients, std::size_t n_candidates, std::size_t k)
      : topology(topo::Topology(std::vector<topo::NodeInfo>(0), SymMatrix(0), {})) {
    Rng rng(seed);
    std::vector<Point> positions;
    positions.reserve(kNodes);
    for (std::size_t i = 0; i < kNodes; ++i) {
      Point p(kDim);
      for (std::size_t d = 0; d < kDim; ++d) p[d] = rng.uniform(-300.0, 300.0);
      positions.push_back(p);
    }
    SymMatrix rtt(kNodes);
    for (std::size_t i = 0; i < kNodes; ++i) {
      for (std::size_t j = i + 1; j < kNodes; ++j) {
        rtt.set(i, j, std::max(0.01, positions[i].distance_to(positions[j]) +
                                         rng.uniform(-5.0, 5.0)));
      }
    }
    topology = topo::Topology(std::vector<topo::NodeInfo>(kNodes), std::move(rtt), {});

    for (std::size_t c = 0; c < n_candidates; ++c) {
      candidates.push_back({static_cast<topo::NodeId>(c), positions[c], 0.0});
    }
    clients.reserve(n_clients);
    for (std::size_t u = 0; u < n_clients; ++u) {
      ClientRecord record;
      record.client = static_cast<topo::NodeId>(rng.below(kNodes));
      record.coords = positions[record.client];
      record.access_count = 1 + rng.below(50);
      record.data_weight = static_cast<double>(record.access_count);
      clients.push_back(record);
    }
    for (std::size_t r = 0; r < k; ++r) {
      placement.push_back(candidates[(r * 7) % n_candidates].node);
    }
  }
};

TEST(PerfEquivalence, EvaluatorsByteIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  const World world(17, 4096, 32, 8);
  for (const std::size_t quorum : {1u, 3u}) {
    // The reductions walk a fixed chunk grid, so the optimized evaluators
    // return the same bits at every thread count; the scalar references use
    // a single sequential accumulator, so they agree to rounding, not bits.
    ThreadPool::set_global_thread_count(1);
    const double fast_one = true_total_delay(world.topology, world.placement,
                                             world.clients, quorum);
    const double est_one = estimated_total_delay(world.placement, world.candidates,
                                                 world.clients, quorum);
    ThreadPool::set_global_thread_count(4);
    EXPECT_EQ(true_total_delay(world.topology, world.placement, world.clients, quorum),
              fast_one)
        << "true, quorum=" << quorum;
    EXPECT_EQ(estimated_total_delay(world.placement, world.candidates, world.clients,
                                    quorum),
              est_one)
        << "estimated, quorum=" << quorum;

    const double scalar = true_total_delay_scalar(world.topology, world.placement,
                                                  world.clients, quorum);
    const double est_scalar = estimated_total_delay_scalar(
        world.placement, world.candidates, world.clients, quorum);
    EXPECT_NEAR(fast_one, scalar, 1e-9 * scalar) << "true, quorum=" << quorum;
    EXPECT_NEAR(est_one, est_scalar, 1e-9 * est_scalar) << "estimated, quorum=" << quorum;
  }
}

TEST(PerfEquivalence, EvaluatorsAgreeAndReproduceAcrossThreadCounts) {
  GlobalPoolGuard guard;
  const World world(29, 4096, 32, 8);
  ThreadPool::set_global_thread_count(1);
  const double true_ref = true_total_delay_scalar(world.topology, world.placement,
                                                  world.clients);
  const double est_ref = estimated_total_delay_scalar(world.placement, world.candidates,
                                                      world.clients);
  ThreadPool::set_global_thread_count(4);
  const double true_fast = true_total_delay(world.topology, world.placement, world.clients);
  const double est_fast = estimated_total_delay(world.placement, world.candidates,
                                                world.clients);
  EXPECT_NEAR(true_fast, true_ref, 1e-9 * true_ref);
  EXPECT_NEAR(est_fast, est_ref, 1e-9 * est_ref);
  // Bit-reproducible run-to-run at a fixed thread count.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(true_total_delay(world.topology, world.placement, world.clients), true_fast);
    EXPECT_EQ(estimated_total_delay(world.placement, world.candidates, world.clients),
              est_fast);
  }
}

PlacementInput search_input(std::uint64_t seed) {
  const World world(seed, 600, 40, 0);
  PlacementInput input;
  input.candidates = world.candidates;
  input.clients = world.clients;
  input.k = 6;
  input.seed = seed;
  return input;
}

TEST(PerfEquivalence, GreedyPlacementIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  const auto input = search_input(37);
  ThreadPool::set_global_thread_count(1);
  const Placement at_one = GreedyPlacement().place(input);
  validate_placement(at_one, input);
  ThreadPool::set_global_thread_count(4);
  EXPECT_EQ(GreedyPlacement().place(input), at_one);
}

TEST(PerfEquivalence, LocalSearchPlacementIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  const auto input = search_input(41);
  const LocalSearchPlacement search(std::make_unique<GreedyPlacement>());
  ThreadPool::set_global_thread_count(1);
  const Placement at_one = search.place(input);
  validate_placement(at_one, input);
  ThreadPool::set_global_thread_count(4);
  EXPECT_EQ(search.place(input), at_one);
}

/// The pre-optimization local search: full O(clients * k) re-evaluation of
/// every candidate swap, kept here as the behavioral reference for the
/// incremental best/second-best delta maintenance.
Placement naive_local_search(const PlacementInput& input, const LocalSearchConfig& config) {
  Placement placement = GreedyPlacement().place(input);
  if (input.clients.empty() || placement.size() == input.candidates.size()) {
    return placement;
  }
  const std::size_t n_cand = input.candidates.size();
  const std::size_t n_client = input.clients.size();
  std::vector<std::vector<double>> latency(n_cand, std::vector<double>(n_client));
  for (std::size_t c = 0; c < n_cand; ++c) {
    for (std::size_t u = 0; u < n_client; ++u) {
      latency[c][u] = input.candidates[c].coords.distance_to(input.clients[u].coords);
    }
  }
  std::vector<std::size_t> chosen;
  std::vector<bool> in_placement(n_cand, false);
  for (const auto node : placement) {
    for (std::size_t c = 0; c < n_cand; ++c) {
      if (input.candidates[c].node == node) {
        chosen.push_back(c);
        in_placement[c] = true;
        break;
      }
    }
  }
  const auto total_delay = [&](const std::vector<std::size_t>& members) {
    double total = 0.0;
    for (std::size_t u = 0; u < n_client; ++u) {
      double best = std::numeric_limits<double>::infinity();
      for (const std::size_t c : members) best = std::min(best, latency[c][u]);
      total += best * static_cast<double>(input.clients[u].access_count);
    }
    return total;
  };
  double current = total_delay(chosen);
  for (std::size_t round = 0; round < config.max_rounds; ++round) {
    double best_delta = 0.0;
    std::size_t best_slot = 0, best_replacement = 0;
    bool improved = false;
    for (std::size_t slot = 0; slot < chosen.size(); ++slot) {
      auto trial = chosen;
      for (std::size_t c = 0; c < n_cand; ++c) {
        if (in_placement[c]) continue;
        trial[slot] = c;
        const double delta = current - total_delay(trial);
        if (delta > best_delta + config.tolerance * std::max(1.0, current)) {
          best_delta = delta;
          best_slot = slot;
          best_replacement = c;
          improved = true;
        }
      }
    }
    if (!improved) break;
    in_placement[chosen[best_slot]] = false;
    in_placement[best_replacement] = true;
    chosen[best_slot] = best_replacement;
    current -= best_delta;
  }
  Placement result;
  for (const std::size_t c : chosen) result.push_back(input.candidates[c].node);
  return result;
}

TEST(PerfEquivalence, IncrementalLocalSearchMatchesNaiveReference) {
  GlobalPoolGuard guard;
  ThreadPool::set_global_thread_count(1);
  for (const std::uint64_t seed : {3u, 53u, 97u}) {
    const auto input = search_input(seed);
    const LocalSearchConfig config;
    const Placement naive = naive_local_search(input, config);
    const Placement incremental =
        LocalSearchPlacement(std::make_unique<GreedyPlacement>(), config).place(input);
    EXPECT_EQ(incremental, naive) << "seed=" << seed;
  }
}

TEST(PerfEquivalence, KMeansBitwiseDeterministicAcrossThreadCounts) {
  GlobalPoolGuard guard;
  Rng points_rng(71);
  std::vector<cluster::WeightedPoint> points;
  points.reserve(3000);
  for (std::size_t i = 0; i < 3000; ++i) {
    Point p(kDim);
    for (std::size_t d = 0; d < kDim; ++d) p[d] = points_rng.uniform(-200.0, 200.0);
    points.push_back({p, points_rng.uniform(0.5, 10.0)});
  }
  cluster::KMeansConfig config;
  config.k = 8;
  config.restarts = 2;

  ThreadPool::set_global_thread_count(1);
  Rng rng_one(5);
  const auto at_one = cluster::weighted_kmeans(points, config, rng_one);
  ThreadPool::set_global_thread_count(4);
  Rng rng_four(5);
  const auto at_four = cluster::weighted_kmeans(points, config, rng_four);

  EXPECT_EQ(at_four.objective, at_one.objective);  // bitwise
  EXPECT_EQ(at_four.assignment, at_one.assignment);
  ASSERT_EQ(at_four.centroids.size(), at_one.centroids.size());
  for (std::size_t c = 0; c < at_one.centroids.size(); ++c) {
    ASSERT_EQ(at_four.centroids[c].dim(), at_one.centroids[c].dim());
    for (std::size_t d = 0; d < at_one.centroids[c].dim(); ++d) {
      EXPECT_EQ(at_four.centroids[c][d], at_one.centroids[c][d]);
    }
  }
}

}  // namespace
}  // namespace geored::place
