#include "placement/assign.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

namespace geored::place {
namespace {

std::vector<CandidateInfo> line_candidates() {
  // Candidates 0..4 at x = 0, 10, 20, 30, 40.
  std::vector<CandidateInfo> candidates;
  for (topo::NodeId id = 0; id < 5; ++id) {
    candidates.push_back({id, Point{10.0 * id}, std::numeric_limits<double>::infinity()});
  }
  return candidates;
}

TEST(Assign, EachCentroidGetsNearestCandidate) {
  const auto placement = assign_centroids_to_candidates(
      {Point{1.0}, Point{39.0}}, {1.0, 1.0}, line_candidates(), 2, 0);
  ASSERT_EQ(placement.size(), 2u);
  EXPECT_NE(std::find(placement.begin(), placement.end(), 0u), placement.end());
  EXPECT_NE(std::find(placement.begin(), placement.end(), 4u), placement.end());
}

TEST(Assign, DistinctCandidatesEvenForCoincidentCentroids) {
  const auto placement = assign_centroids_to_candidates(
      {Point{20.0}, Point{20.0}, Point{20.0}}, {1.0, 1.0, 1.0}, line_candidates(), 3, 0);
  ASSERT_EQ(placement.size(), 3u);
  std::set<topo::NodeId> unique(placement.begin(), placement.end());
  EXPECT_EQ(unique.size(), 3u);
  // Centre candidate plus its two neighbours.
  EXPECT_TRUE(unique.contains(2));
  EXPECT_TRUE(unique.contains(1));
  EXPECT_TRUE(unique.contains(3));
}

TEST(Assign, HeavierCentroidPicksFirst) {
  // Two centroids both nearest to candidate 2; the heavier one must win it.
  const auto placement = assign_centroids_to_candidates(
      {Point{19.0}, Point{21.0}}, {1.0, 10.0}, line_candidates(), 2, 0);
  ASSERT_EQ(placement.size(), 2u);
  // Priority order: centroid 1 (weight 10) -> candidate 2; centroid 0 ->
  // next nearest unused (candidate 1 at distance 9 vs candidate 3 at 11).
  EXPECT_EQ(placement[0], 2u);
  EXPECT_EQ(placement[1], 1u);
}

TEST(Assign, FillsRemainingSlotsNearTheKnownPopulation) {
  // One population at x=0 but three replicas required: the extra replicas
  // go to the nearest unused candidates, not to random far-away ones.
  const auto placement = assign_centroids_to_candidates({Point{0.0}}, {1.0},
                                                        line_candidates(), 3, 77);
  ASSERT_EQ(placement.size(), 3u);
  EXPECT_EQ(placement[0], 0u);
  EXPECT_EQ(placement[1], 1u);
  EXPECT_EQ(placement[2], 2u);
}

TEST(Assign, FillsRandomlyOnlyWithoutCentroids) {
  const auto placement =
      assign_centroids_to_candidates({}, {}, line_candidates(), 3, 77);
  ASSERT_EQ(placement.size(), 3u);
  std::set<topo::NodeId> unique(placement.begin(), placement.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(Assign, CapacityRedirectsToNextNearest) {
  auto candidates = line_candidates();
  candidates[2].capacity = 5.0;  // too small for the heavy cluster
  const std::vector<double> demands{10.0};
  const auto placement = assign_centroids_to_candidates(
      {Point{20.0}}, {10.0}, candidates, 1, 0, &demands);
  ASSERT_EQ(placement.size(), 1u);
  EXPECT_NE(placement[0], 2u);  // skipped the full candidate
}

TEST(Assign, DegradesGracefullyWhenNobodyHasCapacity) {
  auto candidates = line_candidates();
  for (auto& c : candidates) c.capacity = 1.0;
  const std::vector<double> demands{100.0};
  const auto placement = assign_centroids_to_candidates(
      {Point{20.0}}, {100.0}, candidates, 1, 0, &demands);
  ASSERT_EQ(placement.size(), 1u);
  EXPECT_EQ(placement[0], 2u);  // nearest, capacity notwithstanding
}

TEST(Assign, RejectsInconsistentArguments) {
  EXPECT_THROW(assign_centroids_to_candidates({Point{0.0}}, {1.0, 2.0}, line_candidates(),
                                              1, 0),
               std::invalid_argument);
  EXPECT_THROW(assign_centroids_to_candidates({Point{0.0}}, {1.0}, {}, 1, 0),
               std::invalid_argument);
  const std::vector<double> demands{1.0, 2.0};
  EXPECT_THROW(assign_centroids_to_candidates({Point{0.0}}, {1.0}, line_candidates(), 1, 0,
                                              &demands),
               std::invalid_argument);
}

TEST(Assign, KCappedByCandidatePool) {
  const auto placement = assign_centroids_to_candidates(
      {Point{0.0}, Point{10.0}}, {1.0, 1.0}, line_candidates(), 10, 5);
  EXPECT_EQ(placement.size(), 5u);
  std::set<topo::NodeId> unique(placement.begin(), placement.end());
  EXPECT_EQ(unique.size(), 5u);
}

}  // namespace
}  // namespace geored::place
