#include "placement/spread.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "placement/evaluate.h"
#include "placement/online_clustering.h"
#include "placement/random_placement.h"

namespace geored::place {
namespace {

/// Candidates: a tight cluster at x ~ 0 (ids 0-2) and two far sites.
PlacementInput clustered_input() {
  PlacementInput input;
  input.candidates = {
      {0, Point{0.0}, std::numeric_limits<double>::infinity()},
      {1, Point{5.0}, std::numeric_limits<double>::infinity()},
      {2, Point{10.0}, std::numeric_limits<double>::infinity()},
      {3, Point{200.0}, std::numeric_limits<double>::infinity()},
      {4, Point{400.0}, std::numeric_limits<double>::infinity()},
  };
  input.k = 3;
  input.seed = 1;
  // One user population at x ~ 0 drives the inner strategy into the cluster.
  cluster::MicroCluster population;
  for (int i = 0; i < 100; ++i) population.absorb(Point{static_cast<double>(i % 7)}, 1.0);
  input.summaries = {population};
  return input;
}

TEST(Spread, ConstructionValidation) {
  EXPECT_THROW(SpreadConstrainedPlacement(nullptr, {}), std::invalid_argument);
  SpreadConfig config;
  config.min_spread_ms = -1.0;
  EXPECT_THROW(
      SpreadConstrainedPlacement(std::make_unique<RandomPlacement>(), config),
      std::invalid_argument);
}

TEST(Spread, MinPairwiseSpreadHelper) {
  const auto input = clustered_input();
  EXPECT_DOUBLE_EQ(min_pairwise_spread({0, 1}, input.candidates), 5.0);
  EXPECT_DOUBLE_EQ(min_pairwise_spread({0, 3, 4}, input.candidates), 200.0);
  EXPECT_TRUE(std::isinf(min_pairwise_spread({0}, input.candidates)));
}

TEST(Spread, RepairsCoLocatedReplicas) {
  const auto input = clustered_input();
  // The unconstrained inner strategy piles replicas into the x~0 cluster.
  OnlineClusteringPlacement inner;
  const auto unconstrained = inner.place(input);
  EXPECT_LT(min_pairwise_spread(unconstrained, input.candidates), 50.0);

  SpreadConfig config;
  config.min_spread_ms = 50.0;
  SpreadConstrainedPlacement constrained(
      std::make_unique<OnlineClusteringPlacement>(), config);
  const auto repaired = constrained.place(input);
  validate_placement(repaired, input);
  EXPECT_GE(min_pairwise_spread(repaired, input.candidates), 50.0);
  // The primary (nearest-to-population) replica is kept.
  EXPECT_EQ(repaired[0], unconstrained[0]);
}

TEST(Spread, KeepsAlreadySpreadPlacements) {
  auto input = clustered_input();
  input.k = 2;
  // Population split between 0 and 400 -> inner picks spread replicas.
  cluster::MicroCluster west, east;
  for (int i = 0; i < 50; ++i) {
    west.absorb(Point{0.0}, 1.0);
    east.absorb(Point{400.0}, 1.0);
  }
  input.summaries = {west, east};
  SpreadConfig config;
  config.min_spread_ms = 50.0;
  SpreadConstrainedPlacement constrained(
      std::make_unique<OnlineClusteringPlacement>(), config);
  const auto placement = constrained.place(input);
  const auto inner_placement = OnlineClusteringPlacement().place(input);
  EXPECT_EQ(placement, inner_placement);
}

TEST(Spread, GracefulWhenInfeasible) {
  // Spread larger than the topology: repair is impossible, but the result
  // must still be a valid placement of full size.
  const auto input = clustered_input();
  SpreadConfig config;
  config.min_spread_ms = 10'000.0;
  SpreadConstrainedPlacement constrained(
      std::make_unique<OnlineClusteringPlacement>(), config);
  const auto placement = constrained.place(input);
  validate_placement(placement, input);
}

TEST(Spread, NameReflectsDecoration) {
  SpreadConstrainedPlacement constrained(std::make_unique<RandomPlacement>(), {});
  EXPECT_EQ(constrained.name(), "random +spread");
}

TEST(Spread, ZeroSpreadIsIdentity) {
  const auto input = clustered_input();
  SpreadConfig config;
  config.min_spread_ms = 0.0;
  SpreadConstrainedPlacement constrained(
      std::make_unique<OnlineClusteringPlacement>(), config);
  EXPECT_EQ(constrained.place(input), OnlineClusteringPlacement().place(input));
}

}  // namespace
}  // namespace geored::place
