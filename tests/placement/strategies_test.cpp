#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "cluster/summarizer.h"
#include "common/random.h"
#include "placement/evaluate.h"
#include "placement/hotzone.h"
#include "placement/strategy.h"
#include "topology/topology.h"

namespace geored::place {
namespace {

/// Builds a topology whose RTT matrix is exactly the pairwise distance of
/// the given 2-D positions — a perfectly embeddable world, so strategy
/// quality is isolated from coordinate error.
topo::Topology topology_from_positions(const std::vector<Point>& positions) {
  SymMatrix rtt(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      rtt.set(i, j, std::max(0.01, positions[i].distance_to(positions[j])));
    }
  }
  return topo::Topology(std::vector<topo::NodeInfo>(positions.size()), std::move(rtt), {});
}

/// A world with three client population centres and candidates scattered
/// both near and far from them.
struct World {
  std::vector<Point> positions;  // node id -> position
  topo::Topology topology;
  PlacementInput input;          // fully populated (summaries included)

  explicit World(std::uint64_t seed, std::size_t num_candidates = 12,
                 std::size_t clients_per_centre = 30)
      : topology(topo::Topology(std::vector<topo::NodeInfo>(0), SymMatrix(0), {})) {
    Rng rng(seed);
    const std::vector<Point> centres{{0.0, 0.0}, {300.0, 0.0}, {150.0, 260.0}};

    // Candidates first (ids 0..num_candidates-1), spread over the map.
    for (std::size_t c = 0; c < num_candidates; ++c) {
      positions.push_back(Point{rng.uniform(-50.0, 350.0), rng.uniform(-50.0, 310.0)});
    }
    // Clients clustered around the population centres.
    for (const auto& centre : centres) {
      for (std::size_t i = 0; i < clients_per_centre; ++i) {
        positions.push_back(
            Point{centre[0] + rng.normal(0, 15.0), centre[1] + rng.normal(0, 15.0)});
      }
    }
    topology = topology_from_positions(positions);

    for (std::size_t c = 0; c < num_candidates; ++c) {
      input.candidates.push_back({static_cast<topo::NodeId>(c), positions[c],
                                  std::numeric_limits<double>::infinity()});
    }
    for (std::size_t u = num_candidates; u < positions.size(); ++u) {
      ClientRecord record;
      record.client = static_cast<topo::NodeId>(u);
      record.coords = positions[u];
      record.access_count = 1 + rng.below(20);
      record.data_weight = static_cast<double>(record.access_count);
      input.clients.push_back(record);
    }
    input.topology = &topology;
    input.k = 3;
    input.seed = seed;

    // Summaries: one summarizer observing all accesses (as if one initial
    // replica served everyone).
    cluster::SummarizerConfig summarizer_config;
    summarizer_config.max_clusters = 12;
    cluster::MicroClusterSummarizer summarizer(summarizer_config);
    for (const auto& client : input.clients) {
      for (std::uint64_t a = 0; a < client.access_count; ++a) {
        summarizer.add(client.coords, 1.0);
      }
    }
    input.summaries = summarizer.clusters();
  }
};

const std::vector<StrategyKind> kAllStrategies{
    StrategyKind::kRandom,   StrategyKind::kOfflineKMeans, StrategyKind::kOnlineClustering,
    StrategyKind::kOptimal,  StrategyKind::kGreedy,        StrategyKind::kHotZone,
    StrategyKind::kLocalSearch};

class AllStrategies : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(AllStrategies, ProducesValidDistinctPlacement) {
  const World world(1234);
  const auto strategy = make_strategy(GetParam());
  for (std::size_t k = 1; k <= 5; ++k) {
    PlacementInput input = world.input;
    input.k = k;
    const auto placement = strategy->place(input);
    ASSERT_NO_THROW(validate_placement(placement, input)) << strategy->name() << " k=" << k;
  }
}

TEST_P(AllStrategies, DeterministicInSeed) {
  const World world(555);
  const auto strategy = make_strategy(GetParam());
  EXPECT_EQ(strategy->place(world.input), strategy->place(world.input));
}

TEST_P(AllStrategies, NameIsNonEmptyAndStable) {
  const auto strategy = make_strategy(GetParam());
  EXPECT_FALSE(strategy->name().empty());
  EXPECT_EQ(strategy->name(), strategy_name(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllStrategies, ::testing::ValuesIn(kAllStrategies));

/// The defining property of the oracle: no strategy beats it, ever.
class OptimalDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimalDominance, OptimalIsNeverBeaten) {
  const World world(GetParam());
  const auto optimal_placement = make_strategy(StrategyKind::kOptimal)->place(world.input);
  const double optimal_delay =
      true_total_delay(world.topology, optimal_placement, world.input.clients);
  for (const auto kind : kAllStrategies) {
    const auto placement = make_strategy(kind)->place(world.input);
    const double delay = true_total_delay(world.topology, placement, world.input.clients);
    EXPECT_GE(delay + 1e-6, optimal_delay) << strategy_name(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalDominance,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

TEST(OptimalPlacement, MatchesBruteForceReference) {
  const World world(42, /*num_candidates=*/7, /*clients_per_centre=*/10);
  const auto placement = make_strategy(StrategyKind::kOptimal)->place(world.input);
  const double found = true_total_delay(world.topology, placement, world.input.clients);

  // Direct enumeration of all C(7,3) = 35 subsets.
  double best = std::numeric_limits<double>::infinity();
  const auto& c = world.input.candidates;
  for (std::size_t a = 0; a < c.size(); ++a) {
    for (std::size_t b = a + 1; b < c.size(); ++b) {
      for (std::size_t d = b + 1; d < c.size(); ++d) {
        best = std::min(best, true_total_delay(world.topology,
                                               {c[a].node, c[b].node, c[d].node},
                                               world.input.clients));
      }
    }
  }
  EXPECT_NEAR(found, best, 1e-9);
}

TEST(OptimalPlacement, QuorumVariantMatchesBruteForce) {
  const World world(7, 6, 8);
  PlacementInput input = world.input;
  input.quorum = 2;
  const auto placement = make_strategy(StrategyKind::kOptimal)->place(input);
  const double found =
      true_total_delay(world.topology, placement, input.clients, /*quorum=*/2);
  double best = std::numeric_limits<double>::infinity();
  const auto& c = input.candidates;
  for (std::size_t a = 0; a < c.size(); ++a) {
    for (std::size_t b = a + 1; b < c.size(); ++b) {
      for (std::size_t d = b + 1; d < c.size(); ++d) {
        best = std::min(best, true_total_delay(world.topology,
                                               {c[a].node, c[b].node, c[d].node},
                                               input.clients, 2));
      }
    }
  }
  EXPECT_NEAR(found, best, 1e-9);
}

TEST(OptimalPlacement, RequiresGroundTruthAndClients) {
  const World world(3);
  PlacementInput input = world.input;
  input.topology = nullptr;
  EXPECT_THROW(make_strategy(StrategyKind::kOptimal)->place(input), std::invalid_argument);
  input = world.input;
  input.clients.clear();
  EXPECT_THROW(make_strategy(StrategyKind::kOptimal)->place(input), std::invalid_argument);
}

/// The paper's headline comparison, in its cleanest setting: clustering
/// strategies decisively beat random placement on clustered populations.
class ClusteringBeatsRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusteringBeatsRandom, OnAverageAcrossSeeds) {
  double random_total = 0.0, online_total = 0.0, offline_total = 0.0, greedy_total = 0.0;
  for (std::uint64_t s = 0; s < 8; ++s) {
    const World world(GetParam() * 100 + s);
    const auto eval = [&](StrategyKind kind) {
      return true_total_delay(world.topology, make_strategy(kind)->place(world.input),
                              world.input.clients);
    };
    random_total += eval(StrategyKind::kRandom);
    online_total += eval(StrategyKind::kOnlineClustering);
    offline_total += eval(StrategyKind::kOfflineKMeans);
    greedy_total += eval(StrategyKind::kGreedy);
  }
  // The paper reports >=35% improvement; in this perfectly-embeddable world
  // the margin is comfortably larger.
  EXPECT_LT(online_total, 0.65 * random_total);
  EXPECT_LT(offline_total, 0.65 * random_total);
  // Greedy is strong but can be trapped by its first pick on some candidate
  // layouts, so it gets a slightly looser bound.
  EXPECT_LT(greedy_total, 0.75 * random_total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusteringBeatsRandom, ::testing::Values(1, 2, 3));

TEST(OnlineClustering, CloseToOfflineKMeans) {
  // With ample micro-clusters the summary loses little: online should land
  // within 15% of offline k-means on average.
  double online_total = 0.0, offline_total = 0.0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    const World world(9000 + s);
    online_total += true_total_delay(
        world.topology, make_strategy(StrategyKind::kOnlineClustering)->place(world.input),
        world.input.clients);
    offline_total += true_total_delay(
        world.topology, make_strategy(StrategyKind::kOfflineKMeans)->place(world.input),
        world.input.clients);
  }
  EXPECT_LT(online_total, 1.15 * offline_total);
}

TEST(Strategies, GracefulWithoutUsageInformation) {
  // No clients, no summaries: information-dependent strategies degrade to a
  // valid (random) placement instead of failing.
  const World world(11);
  PlacementInput input = world.input;
  input.clients.clear();
  input.summaries.clear();
  for (const auto kind :
       {StrategyKind::kRandom, StrategyKind::kOfflineKMeans, StrategyKind::kOnlineClustering,
        StrategyKind::kGreedy, StrategyKind::kHotZone}) {
    const auto placement = make_strategy(kind)->place(input);
    EXPECT_NO_THROW(validate_placement(placement, input)) << strategy_name(kind);
  }
}

TEST(Strategies, RandomUsesAllCandidatesEventually) {
  const World world(13);
  std::set<topo::NodeId> seen;
  for (std::uint64_t s = 0; s < 60; ++s) {
    PlacementInput input = world.input;
    input.seed = s;
    for (const auto node : make_strategy(StrategyKind::kRandom)->place(input)) {
      seen.insert(node);
    }
  }
  EXPECT_EQ(seen.size(), world.input.candidates.size());
}

TEST(Strategies, OnlineClusteringFindsThePopulationCentres) {
  const World world(17);
  const auto placement =
      make_strategy(StrategyKind::kOnlineClustering)->place(world.input);
  // Each chosen data center should be near one of the three population
  // centres (well under the inter-centre distance of ~300).
  const std::vector<Point> centres{{0.0, 0.0}, {300.0, 0.0}, {150.0, 260.0}};
  for (const auto node : placement) {
    const Point& pos = world.positions[node];
    double nearest = 1e18;
    for (const auto& centre : centres) nearest = std::min(nearest, pos.distance_to(centre));
    EXPECT_LT(nearest, 120.0);
  }
}

TEST(Strategies, HotZoneExplicitCellSize) {
  const World world(23);
  // A cell as wide as the whole map degrades HotZone to a single crowded
  // cell; tiny cells make every client its own cell. Both must stay valid.
  for (const double cell : {1.0, 50.0, 10'000.0}) {
    HotZoneConfig config;
    config.cell_size_ms = cell;
    const auto placement = HotZonePlacement(config).place(world.input);
    EXPECT_NO_THROW(validate_placement(placement, world.input)) << "cell " << cell;
  }
  // Giant cells lose the population structure and should not beat the
  // auto-sized variant on average.
  double auto_total = 0.0, giant_total = 0.0;
  for (std::uint64_t s = 0; s < 8; ++s) {
    const World w(4200 + s);
    HotZoneConfig giant;
    giant.cell_size_ms = 10'000.0;
    auto_total += true_total_delay(w.topology, HotZonePlacement().place(w.input),
                                   w.input.clients);
    giant_total += true_total_delay(w.topology, HotZonePlacement(giant).place(w.input),
                                    w.input.clients);
  }
  EXPECT_LE(auto_total, giant_total * 1.02);
}

TEST(Strategies, QuorumObjectiveChangesOptimalChoice) {
  // With quorum 2 the optimal placement must hedge: its quorum-2 delay is
  // no worse than the quorum-1-optimal placement evaluated at quorum 2.
  const World world(29);
  PlacementInput q1 = world.input;
  PlacementInput q2 = world.input;
  q2.quorum = 2;
  const auto p1 = make_strategy(StrategyKind::kOptimal)->place(q1);
  const auto p2 = make_strategy(StrategyKind::kOptimal)->place(q2);
  EXPECT_LE(true_total_delay(world.topology, p2, world.input.clients, 2),
            true_total_delay(world.topology, p1, world.input.clients, 2) + 1e-9);
}

TEST(Strategies, KLargerThanCandidatesIsCapped) {
  const World world(19, /*num_candidates=*/4);
  for (const auto kind : kAllStrategies) {
    PlacementInput input = world.input;
    input.k = 10;
    const auto placement = make_strategy(kind)->place(input);
    EXPECT_EQ(placement.size(), 4u) << strategy_name(kind);
  }
}

}  // namespace
}  // namespace geored::place
