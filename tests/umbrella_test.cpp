// Compile-and-smoke test of the umbrella header: everything a downstream
// application needs is reachable through one include, and the core loop
// works end to end through it.
#include "geored.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndThroughThePublicApi) {
  using namespace geored;
  topo::PlanetLabModelConfig topo_config;
  topo_config.node_count = 60;
  const auto topology = topo::generate_planetlab_like(topo_config, 1);
  coord::GossipConfig gossip;
  gossip.rounds = 64;
  const auto coords = coord::run_rnp(topology, coord::RnpConfig{}, gossip, 1);

  std::vector<place::CandidateInfo> dcs;
  for (topo::NodeId id = 0; id < 10; ++id) {
    dcs.push_back({id, coords[id].position, std::numeric_limits<double>::infinity()});
  }
  core::ManagerConfig config;
  config.replication_degree = 2;
  core::ReplicationManager manager(dcs, config, 1);
  for (topo::NodeId client = 10; client < 60; ++client) {
    manager.serve(coords[client].position);
  }
  const auto report = manager.run_epoch();
  EXPECT_EQ(report.epoch_accesses, 50u);
  EXPECT_EQ(manager.placement().size(), 2u);

  // The serving data plane is reachable through the umbrella too: route the
  // same clients at the adopted placement and observe tail latency.
  serve::ServeConfig serve_config;
  serve_config.service_ms = 1.0;
  serve_config.queue_cap = 8;
  serve::RequestRouter router(serve_config);
  std::vector<serve::ReplicaSpec> replicas;
  for (const auto node : manager.placement()) {
    replicas.push_back({node, coords[node].position});
  }
  router.set_replicas(replicas);
  double now = 0.0;
  for (topo::NodeId client = 10; client < 60; ++client) {
    const auto decision = router.route(coords[client].position, now);
    ASSERT_TRUE(decision.admitted());
    router.complete(decision, topology.rtt_ms(client, decision.replica));
    now += 1.0;
  }
  EXPECT_EQ(router.stats().admitted, 50u);
  EXPECT_EQ(router.histogram().total(), 50u);
  EXPECT_GE(router.histogram().quantile(0.99), router.histogram().quantile(0.50));
}

TEST(Umbrella, ScenarioEngineThroughThePublicApi) {
  using namespace geored;
  scenario::ScenarioConfig config = scenario::parse_scenario(R"({
    "name": "umbrella",
    "epochs": 1,
    "epoch_ms": 2000,
    "topology": {"nodes": 30, "dcs": 4, "seed": 2},
    "coords": {"rounds": 32},
    "serve": {"service_ms": 1.0, "queue_cap": 8, "policy": "spill"}
  })");
  const scenario::ScenarioResult result = scenario::run_scenario(config);
  ASSERT_EQ(result.epochs.size(), 1u);
  EXPECT_TRUE(result.epochs[0].serve.enabled);
  EXPECT_EQ(result.epochs[0].serve.admitted + result.epochs[0].serve.rejected,
            result.epochs[0].serve.requests);
}

}  // namespace
