// Compile-and-smoke test of the umbrella header: everything a downstream
// application needs is reachable through one include, and the core loop
// works end to end through it.
#include "geored.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndThroughThePublicApi) {
  using namespace geored;
  topo::PlanetLabModelConfig topo_config;
  topo_config.node_count = 60;
  const auto topology = topo::generate_planetlab_like(topo_config, 1);
  coord::GossipConfig gossip;
  gossip.rounds = 64;
  const auto coords = coord::run_rnp(topology, coord::RnpConfig{}, gossip, 1);

  std::vector<place::CandidateInfo> dcs;
  for (topo::NodeId id = 0; id < 10; ++id) {
    dcs.push_back({id, coords[id].position, std::numeric_limits<double>::infinity()});
  }
  core::ManagerConfig config;
  config.replication_degree = 2;
  core::ReplicationManager manager(dcs, config, 1);
  for (topo::NodeId client = 10; client < 60; ++client) {
    manager.serve(coords[client].position);
  }
  const auto report = manager.run_epoch();
  EXPECT_EQ(report.epoch_accesses, 50u);
  EXPECT_EQ(manager.placement().size(), 2u);
}

}  // namespace
