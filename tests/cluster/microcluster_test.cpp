#include "cluster/microcluster.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "common/stats.h"

namespace geored::cluster {
namespace {

TEST(MicroCluster, SingletonHasZeroSpread) {
  const MicroCluster cluster(Point{3.0, -4.0}, 2.5);
  EXPECT_EQ(cluster.count(), 1u);
  EXPECT_DOUBLE_EQ(cluster.weight(), 2.5);
  EXPECT_EQ(cluster.centroid(), (Point{3.0, -4.0}));
  EXPECT_DOUBLE_EQ(cluster.rms_stddev(), 0.0);
}

TEST(MicroCluster, EmptyClusterThrowsOnDerivedStats) {
  MicroCluster cluster;
  EXPECT_EQ(cluster.count(), 0u);
  EXPECT_THROW((void)cluster.centroid(), std::invalid_argument);
  EXPECT_THROW((void)cluster.rms_stddev(), std::invalid_argument);
}

TEST(MicroCluster, MomentsMatchDirectComputation) {
  // The paper stores only (count, weight, sum, sum2); centroid and stddev
  // derived from them must match a direct two-pass computation.
  Rng rng(11);
  std::vector<Point> points;
  MicroCluster cluster;
  for (int i = 0; i < 500; ++i) {
    Point p{rng.normal(10.0, 3.0), rng.normal(-5.0, 1.0)};
    points.push_back(p);
    cluster.absorb(p, 1.0);
  }
  // Direct per-dimension statistics.
  OnlineStats dim0, dim1;
  for (const auto& p : points) {
    dim0.add(p[0]);
    dim1.add(p[1]);
  }
  const Point centroid = cluster.centroid();
  EXPECT_NEAR(centroid[0], dim0.mean(), 1e-9);
  EXPECT_NEAR(centroid[1], dim1.mean(), 1e-9);
  const double expected_rms =
      std::sqrt(dim0.population_variance() + dim1.population_variance());
  EXPECT_NEAR(cluster.rms_stddev(), expected_rms, 1e-9);
}

TEST(MicroCluster, MergePreservesMomentsExactly) {
  Rng rng(13);
  MicroCluster all, left, right;
  for (int i = 0; i < 200; ++i) {
    Point p{rng.uniform(-50, 50), rng.uniform(-50, 50), rng.uniform(-50, 50)};
    const double w = rng.uniform(0.1, 2.0);
    all.absorb(p, w);
    (i % 2 == 0 ? left : right).absorb(p, w);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.weight(), all.weight(), 1e-9);
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_NEAR(left.sum()[d], all.sum()[d], 1e-9);
    EXPECT_NEAR(left.sum2()[d], all.sum2()[d], 1e-6);
  }
  EXPECT_NEAR(left.rms_stddev(), all.rms_stddev(), 1e-9);
}

TEST(MicroCluster, MergeWithEmptySides) {
  MicroCluster a(Point{1.0}, 1.0), empty;
  MicroCluster a_copy = a;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a_copy);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.centroid(), (Point{1.0}));
}

TEST(MicroCluster, MergeRejectsDimensionMismatch) {
  MicroCluster a(Point{1.0}, 1.0);
  const MicroCluster b(Point{1.0, 2.0}, 1.0);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.absorb(Point{1.0, 2.0}, 1.0), std::invalid_argument);
}

TEST(MicroCluster, ScalePreservesCentroidAndSpread) {
  Rng rng(17);
  MicroCluster cluster;
  for (int i = 0; i < 1000; ++i) {
    cluster.absorb(Point{rng.normal(5.0, 2.0), rng.normal(0.0, 4.0)}, 1.5);
  }
  const Point centroid_before = cluster.centroid();
  const double stddev_before = cluster.rms_stddev();
  const double weight_before = cluster.weight();

  cluster.scale(0.5);
  EXPECT_EQ(cluster.count(), 500u);
  EXPECT_NEAR(cluster.weight(), weight_before * 0.5, 1e-9);
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_NEAR(cluster.centroid()[d], centroid_before[d], 1e-9);
  }
  EXPECT_NEAR(cluster.rms_stddev(), stddev_before, 1e-9);
}

TEST(MicroCluster, ScaleToZeroEmptiesCluster) {
  MicroCluster cluster(Point{1.0}, 1.0);
  cluster.scale(0.2);  // 1 * 0.2 rounds to 0
  EXPECT_EQ(cluster.count(), 0u);
  EXPECT_DOUBLE_EQ(cluster.weight(), 0.0);
}

TEST(MicroCluster, ScaleRejectsInvalidFactor) {
  MicroCluster cluster(Point{1.0}, 1.0);
  EXPECT_THROW(cluster.scale(0.0), std::invalid_argument);
  EXPECT_THROW(cluster.scale(1.5), std::invalid_argument);
}

TEST(MicroCluster, SerializationRoundTrip) {
  Rng rng(19);
  MicroCluster cluster;
  for (int i = 0; i < 50; ++i) {
    cluster.absorb(Point{rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 100),
                         rng.uniform(0, 100), rng.uniform(0, 100)},
                   rng.uniform(0.5, 3.0));
  }
  ByteWriter writer;
  cluster.serialize(writer);
  EXPECT_EQ(writer.size(), MicroCluster::serialized_size(5));

  ByteReader reader(writer.bytes());
  const MicroCluster restored = MicroCluster::deserialize(reader);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(restored.count(), cluster.count());
  EXPECT_DOUBLE_EQ(restored.weight(), cluster.weight());
  EXPECT_EQ(restored.sum(), cluster.sum());
  EXPECT_EQ(restored.sum2(), cluster.sum2());
}

TEST(MicroCluster, SerializedSizeIsSmall) {
  // The paper: "the size of each micro-cluster is less than 1KB" — ours is
  // under 100 bytes for a 5-dimensional space.
  EXPECT_LT(MicroCluster::serialized_size(5), 110u);
  EXPECT_EQ(MicroCluster::serialized_size(5), 8u + 8u + 2u * (4u + 40u));
}

TEST(MicroCluster, AbsorbRejectsNegativeWeight) {
  MicroCluster cluster;
  EXPECT_THROW(cluster.absorb(Point{1.0}, -1.0), std::invalid_argument);
}

TEST(MicroCluster, NumericalRobustnessOfStddev) {
  // Identical far-from-origin points: cancellation must not produce NaN.
  MicroCluster cluster;
  for (int i = 0; i < 100; ++i) cluster.absorb(Point{1e8, 1e8}, 1.0);
  EXPECT_GE(cluster.rms_stddev(), 0.0);
  EXPECT_FALSE(std::isnan(cluster.rms_stddev()));
}

}  // namespace
}  // namespace geored::cluster
