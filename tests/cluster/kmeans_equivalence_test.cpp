// KMeansEquivalence: the Hamerly-accelerated Lloyd solvers must be
// bit-identical to the retained scalar references — same centroid bits,
// same assignments, same objective, same iteration count, and the same Rng
// consumption (checked by comparing the generators' next draws). Runs under
// release, asan-ubsan, and the tsan preset (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"
#include "common/point.h"
#include "common/random.h"

namespace geored::cluster {
namespace {

void expect_identical(const KMeansResult& fast, const KMeansResult& scalar,
                      const char* label) {
  ASSERT_EQ(fast.centroids.size(), scalar.centroids.size()) << label;
  for (std::size_t c = 0; c < fast.centroids.size(); ++c) {
    ASSERT_EQ(fast.centroids[c].dim(), scalar.centroids[c].dim()) << label;
    for (std::size_t d = 0; d < fast.centroids[c].dim(); ++d) {
      // EXPECT_EQ, not NEAR: the acceleration only skips provably-unchanged
      // assignments, so every arithmetic result must be the same bits.
      EXPECT_EQ(fast.centroids[c][d], scalar.centroids[c][d])
          << label << " centroid " << c << " dim " << d;
    }
  }
  EXPECT_EQ(fast.assignment, scalar.assignment) << label;
  EXPECT_EQ(fast.objective, scalar.objective) << label;
  EXPECT_EQ(fast.iterations, scalar.iterations) << label;
}

std::vector<WeightedPoint> random_points(Rng& rng, std::size_t n, std::size_t dim,
                                         double zero_weight_fraction) {
  std::vector<WeightedPoint> points;
  const std::size_t n_centers = 1 + rng.below(6);
  std::vector<Point> centers;
  for (std::size_t c = 0; c < n_centers; ++c) {
    Point p(dim);
    for (std::size_t d = 0; d < dim; ++d) p[d] = rng.uniform(-500.0, 500.0);
    centers.push_back(p);
  }
  for (std::size_t i = 0; i < n; ++i) {
    Point p = centers[rng.below(n_centers)];
    for (std::size_t d = 0; d < dim; ++d) p[d] += rng.normal(0.0, 20.0);
    const double w = rng.bernoulli(zero_weight_fraction) ? 0.0 : rng.uniform(0.1, 10.0);
    points.push_back({p, w});
  }
  // Guarantee the positive-weight precondition regardless of the draw.
  points[0].weight = 1.0;
  return points;
}

class KMeansEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KMeansEquivalence, SeededSolverMatchesScalar) {
  Rng setup(GetParam());
  const std::size_t dim = 1 + setup.below(5);
  const auto points = random_points(setup, 20 + setup.below(120), dim, 0.1);
  KMeansConfig config;
  config.k = 1 + setup.below(8);
  config.restarts = 1 + setup.below(4);
  config.max_iterations = 50;

  // Both solvers get generators in the same state; identical consumption is
  // part of the contract (a skipped draw would desync downstream code), so
  // the post-run streams must agree too.
  Rng rng_fast(GetParam() ^ 0xabcd);
  Rng rng_scalar(GetParam() ^ 0xabcd);
  const auto fast = weighted_kmeans(points, config, rng_fast);
  const auto scalar = weighted_kmeans_scalar(points, config, rng_scalar);
  expect_identical(fast, scalar, "weighted_kmeans");
  EXPECT_EQ(rng_fast(), rng_scalar()) << "solvers must consume the Rng identically";
}

TEST_P(KMeansEquivalence, WarmStartSolverMatchesScalar) {
  Rng setup(GetParam() ^ 0x77);
  const std::size_t dim = 1 + setup.below(4);
  const auto points = random_points(setup, 15 + setup.below(80), dim, 0.15);
  KMeansConfig config;
  config.k = 1 + setup.below(6);
  config.max_iterations = 40;
  // Warm starts come from arbitrary previous-epoch centroids, including ones
  // far from any point (their macro-cluster may have emptied).
  std::vector<Point> initial;
  for (std::size_t c = 0; c < config.k; ++c) {
    Point p(dim);
    for (std::size_t d = 0; d < dim; ++d) p[d] = setup.uniform(-800.0, 800.0);
    initial.push_back(p);
  }
  const auto fast = weighted_kmeans_from(points, initial, config);
  const auto scalar = weighted_kmeans_from_scalar(points, initial, config);
  expect_identical(fast, scalar, "weighted_kmeans_from");
}

INSTANTIATE_TEST_SUITE_P(Seeds, KMeansEquivalence, ::testing::Range<std::uint64_t>(1, 17));

TEST(KMeansEquivalence, SingleClusterMatchesScalar) {
  Rng setup(3);
  const auto points = random_points(setup, 40, 3, 0.0);
  KMeansConfig config;
  config.k = 1;
  Rng a(9), b(9);
  expect_identical(weighted_kmeans(points, config, a),
                   weighted_kmeans_scalar(points, config, b), "k=1");
}

TEST(KMeansEquivalence, MoreCentersThanDistinctPointsMatchesScalar) {
  // Three distinct positions (one duplicated many times), k = 5: both
  // solvers must degrade to the same reduced centroid set.
  std::vector<WeightedPoint> points;
  for (int i = 0; i < 6; ++i) points.push_back({Point{1.0, 1.0}, 2.0});
  points.push_back({Point{50.0, -3.0}, 1.0});
  points.push_back({Point{-20.0, 7.0}, 4.0});
  KMeansConfig config;
  config.k = 5;
  Rng a(11), b(11);
  const auto fast = weighted_kmeans(points, config, a);
  const auto scalar = weighted_kmeans_scalar(points, config, b);
  expect_identical(fast, scalar, "k>distinct");
  EXPECT_LE(fast.centroids.size(), 3u);
}

TEST(KMeansEquivalence, SinglePointMatchesScalar) {
  const std::vector<WeightedPoint> points = {{Point{4.0, -2.0, 9.0}, 3.5}};
  KMeansConfig config;
  config.k = 3;
  Rng a(13), b(13);
  const auto fast = weighted_kmeans(points, config, a);
  const auto scalar = weighted_kmeans_scalar(points, config, b);
  expect_identical(fast, scalar, "single point");
  ASSERT_EQ(fast.centroids.size(), 1u);
  EXPECT_EQ(fast.objective, 0.0);
}

TEST(KMeansEquivalence, CoincidentWarmStartCentroidsMatchScalar) {
  // Every warm-start centroid at the same position: the Elkan
  // half-separations are all (guarded) zero and must never justify a skip
  // on their own, and the strict-< first-winner rule must keep every point
  // on centroid 0 until the update separates them.
  Rng setup(31);
  const auto points = random_points(setup, 60, 3, 0.0);
  std::vector<Point> initial(4, Point{1.0, 2.0, 3.0});
  KMeansConfig config;
  config.k = 4;
  expect_identical(weighted_kmeans_from(points, initial, config),
                   weighted_kmeans_from_scalar(points, initial, config),
                   "coincident centroids");
}

TEST(KMeansEquivalence, DuplicateWarmStartCentroidPairsMatchScalar) {
  // Two exact duplicates among distinct centroids: one of each pair owns an
  // empty cluster forever (ties resolve to the lower index) and must keep
  // its position bit-for-bit across iterations in both solvers.
  Rng setup(33);
  const auto points = random_points(setup, 80, 2, 0.1);
  std::vector<Point> initial = {Point{10.0, 10.0}, Point{10.0, 10.0}, Point{-40.0, 5.0},
                                Point{-40.0, 5.0}, Point{200.0, -200.0}};
  KMeansConfig config;
  config.k = 5;
  expect_identical(weighted_kmeans_from(points, initial, config),
                   weighted_kmeans_from_scalar(points, initial, config),
                   "duplicate centroid pairs");
}

TEST(KMeansEquivalence, EquidistantTiePointsMatchScalar) {
  // Points exactly on the perpendicular bisector of two centroids: the
  // distances compute to identical bits, so the strict-< scan keeps the
  // lower-index centroid. The bounded pass must reproduce that tie-break
  // (its skip test only fires on *strict* closeness).
  std::vector<WeightedPoint> points;
  for (int y = -8; y <= 8; ++y) points.push_back({Point{0.0, static_cast<double>(y)}, 1.0});
  // Off-axis mass keeps both clusters alive so the centroids stay symmetric.
  points.push_back({Point{-6.0, 0.0}, 3.0});
  points.push_back({Point{6.0, 0.0}, 3.0});
  std::vector<Point> initial = {Point{-1.0, 0.0}, Point{1.0, 0.0}};
  KMeansConfig config;
  config.k = 2;
  const auto fast = weighted_kmeans_from(points, initial, config);
  const auto scalar = weighted_kmeans_from_scalar(points, initial, config);
  expect_identical(fast, scalar, "equidistant ties");
  for (std::size_t i = 0; i + 2 < points.size(); ++i) {
    EXPECT_EQ(fast.assignment[i], 0u) << "bisector point " << i
                                      << " must tie-break to the lower index";
  }
}

TEST(KMeansEquivalence, FarWarmStartLeavesEmptyClusterMatchingScalar) {
  // A warm-start centroid far from every point never wins an assignment:
  // its cluster weight stays zero and both solvers must keep its original
  // coordinates bit-for-bit in the result.
  Rng setup(35);
  const auto points = random_points(setup, 50, 2, 0.0);
  std::vector<Point> initial = {Point{0.0, 0.0}, Point{1e6, 1e6}};
  KMeansConfig config;
  config.k = 2;
  const auto fast = weighted_kmeans_from(points, initial, config);
  const auto scalar = weighted_kmeans_from_scalar(points, initial, config);
  expect_identical(fast, scalar, "empty cluster");
  ASSERT_EQ(fast.centroids.size(), 2u);
  EXPECT_EQ(fast.centroids[1][0], 1e6);
  EXPECT_EQ(fast.centroids[1][1], 1e6);
}

TEST(KMeansEquivalence, LargeClusteredPopulationMatchesScalar) {
  // Above kMinParallelPoints and kMinBatchQueries with a clustered
  // population: exercises the batched SIMD assignment kernels, the
  // Elkan/Hamerly skip paths, and (when GEORED_THREADS > 1) the
  // deterministic counting-sort update accumulation — all of which must
  // leave every output bit-identical to the sequential scalar reference.
  Rng setup(37);
  std::vector<WeightedPoint> points;
  std::vector<Point> sites;
  for (int s = 0; s < 12; ++s) {
    sites.push_back(Point{setup.uniform(-300.0, 300.0), setup.uniform(-300.0, 300.0),
                          setup.uniform(-300.0, 300.0)});
  }
  for (std::size_t i = 0; i < 6000; ++i) {
    Point p = sites[setup.below(sites.size())];
    for (std::size_t d = 0; d < 3; ++d) p[d] += setup.normal(0.0, 8.0);
    points.push_back({p, 1.0 + static_cast<double>(setup.below(50))});
  }
  KMeansConfig config;
  config.k = 8;
  config.max_iterations = 50;
  config.tolerance = 1e-9;
  Rng a(41), b(41);
  const auto fast = weighted_kmeans(points, config, a);
  const auto scalar = weighted_kmeans_scalar(points, config, b);
  expect_identical(fast, scalar, "large clustered");
  EXPECT_EQ(a(), b()) << "solvers must consume the Rng identically";

  // Warm-start entry over the same population (the macro-clustering epoch
  // path): perturbed site centers, the near-converged regime where the
  // bounds actually skip scans.
  std::vector<Point> initial;
  for (std::size_t c = 0; c < config.k; ++c) {
    Point p = sites[c];
    for (std::size_t d = 0; d < 3; ++d) p[d] += setup.normal(0.0, 2.0);
    initial.push_back(p);
  }
  expect_identical(weighted_kmeans_from(points, initial, config),
                   weighted_kmeans_from_scalar(points, initial, config),
                   "large clustered warm start");
}

TEST(KMeansEquivalence, ZeroWeightPointsAmongPositiveMatchScalar) {
  // Zero-weight pseudo-points (fully decayed micro-clusters) still get
  // assignments but must not move centroids; both solvers agree bitwise.
  std::vector<WeightedPoint> points;
  Rng setup(21);
  for (std::size_t i = 0; i < 30; ++i) {
    points.push_back({Point{setup.uniform(-100.0, 100.0), setup.uniform(-100.0, 100.0)},
                      i % 3 == 0 ? 0.0 : 1.0});
  }
  KMeansConfig config;
  config.k = 4;
  Rng a(22), b(22);
  expect_identical(weighted_kmeans(points, config, a),
                   weighted_kmeans_scalar(points, config, b), "zero weights");
}

}  // namespace
}  // namespace geored::cluster
