#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace geored::cluster {
namespace {

TEST(KMeans, RejectsInvalidInput) {
  Rng rng(1);
  KMeansConfig config;
  EXPECT_THROW(weighted_kmeans({}, config, rng), std::invalid_argument);
  config.k = 0;
  EXPECT_THROW(weighted_kmeans({{Point{1.0}, 1.0}}, config, rng), std::invalid_argument);
  config.k = 1;
  EXPECT_THROW(weighted_kmeans({{Point{1.0}, -1.0}}, config, rng), std::invalid_argument);
  EXPECT_THROW(weighted_kmeans({{Point{1.0}, 0.0}}, config, rng), std::invalid_argument);
}

TEST(KMeans, SinglePointSingleCluster) {
  Rng rng(2);
  KMeansConfig config;
  config.k = 1;
  const auto result = kmeans({Point{5.0, 5.0}}, config, rng);
  ASSERT_EQ(result.centroids.size(), 1u);
  EXPECT_EQ(result.centroids[0], (Point{5.0, 5.0}));
  EXPECT_DOUBLE_EQ(result.objective, 0.0);
}

TEST(KMeans, RecoversWellSeparatedClusters) {
  Rng rng(3);
  Rng data_rng(99);
  std::vector<Point> points;
  const std::vector<Point> centres{{0.0, 0.0}, {100.0, 0.0}, {0.0, 100.0}};
  for (const auto& c : centres) {
    for (int i = 0; i < 50; ++i) {
      points.push_back(Point{c[0] + data_rng.normal(0, 2.0), c[1] + data_rng.normal(0, 2.0)});
    }
  }
  KMeansConfig config;
  config.k = 3;
  const auto result = kmeans(points, config, rng);
  ASSERT_EQ(result.centroids.size(), 3u);
  for (const auto& centre : centres) {
    double best = 1e18;
    for (const auto& centroid : result.centroids) {
      best = std::min(best, centre.distance_to(centroid));
    }
    EXPECT_LT(best, 3.0);
  }
}

TEST(KMeans, AssignmentIsNearestCentroid) {
  Rng rng(5);
  std::vector<Point> points{{0.0}, {1.0}, {10.0}, {11.0}};
  KMeansConfig config;
  config.k = 2;
  const auto result = kmeans(points, config, rng);
  ASSERT_EQ(result.assignment.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::size_t nearest = 0;
    for (std::size_t c = 1; c < result.centroids.size(); ++c) {
      if (points[i].distance_to(result.centroids[c]) <
          points[i].distance_to(result.centroids[nearest])) {
        nearest = c;
      }
    }
    EXPECT_EQ(result.assignment[i], nearest);
  }
  // Same-cluster points grouped together.
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.assignment[2], result.assignment[3]);
  EXPECT_NE(result.assignment[0], result.assignment[2]);
}

TEST(KMeans, WeightPullsCentroid) {
  // One heavy point and one light point with k=1: centroid sits nearer the
  // heavy point, at exactly the weighted mean.
  Rng rng(7);
  KMeansConfig config;
  config.k = 1;
  const std::vector<WeightedPoint> points{{Point{0.0}, 9.0}, {Point{10.0}, 1.0}};
  const auto result = weighted_kmeans(points, config, rng);
  ASSERT_EQ(result.centroids.size(), 1u);
  EXPECT_NEAR(result.centroids[0][0], 1.0, 1e-9);
}

TEST(KMeans, ZeroWeightPointsDoNotAttractCentroids) {
  Rng rng(9);
  KMeansConfig config;
  config.k = 1;
  const std::vector<WeightedPoint> points{
      {Point{0.0}, 1.0}, {Point{2.0}, 1.0}, {Point{1000.0}, 0.0}};
  const auto result = weighted_kmeans(points, config, rng);
  EXPECT_NEAR(result.centroids[0][0], 1.0, 1e-9);
}

TEST(KMeans, ObjectiveMatchesDefinition) {
  const std::vector<WeightedPoint> points{{Point{0.0}, 2.0}, {Point{4.0}, 1.0}};
  const std::vector<Point> centroids{Point{1.0}};
  // 2*(1)^2 + 1*(3)^2 = 11.
  EXPECT_DOUBLE_EQ(kmeans_objective(points, centroids), 11.0);
  EXPECT_THROW(kmeans_objective(points, {}), std::invalid_argument);
}

TEST(KMeans, DeterministicGivenSameRngState) {
  std::vector<Point> points;
  Rng data_rng(11);
  for (int i = 0; i < 100; ++i) {
    points.push_back(Point{data_rng.uniform(0, 100), data_rng.uniform(0, 100)});
  }
  KMeansConfig config;
  config.k = 4;
  Rng rng_a(13), rng_b(13);
  const auto a = kmeans(points, config, rng_a);
  const auto b = kmeans(points, config, rng_b);
  EXPECT_EQ(a.objective, b.objective);
  ASSERT_EQ(a.centroids.size(), b.centroids.size());
  for (std::size_t i = 0; i < a.centroids.size(); ++i) {
    EXPECT_EQ(a.centroids[i], b.centroids[i]);
  }
}

TEST(KMeans, FewerDistinctPointsThanK) {
  Rng rng(17);
  KMeansConfig config;
  config.k = 5;
  const std::vector<Point> points{{1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}};
  const auto result = kmeans(points, config, rng);
  // k-means++ cannot seed more centroids than distinct points.
  EXPECT_LE(result.centroids.size(), 2u);
  EXPECT_GE(result.centroids.size(), 1u);
  EXPECT_NEAR(result.objective, 0.0, 1e-12);
}

TEST(KMeans, MoreRestartsNeverWorse) {
  // The best-of-restarts objective is monotone in the number of restarts
  // when the extra restarts replay the same stream prefix; verify the
  // weaker, always-true property: best-of-8 <= best-of-1 for a fixed seed
  // evaluated independently many times.
  std::vector<WeightedPoint> points;
  Rng data_rng(19);
  for (int i = 0; i < 60; ++i) {
    points.push_back({Point{data_rng.uniform(0, 50), data_rng.uniform(0, 50)}, 1.0});
  }
  KMeansConfig one;
  one.k = 5;
  one.restarts = 1;
  KMeansConfig eight = one;
  eight.restarts = 8;
  double sum_one = 0.0, sum_eight = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng_a(seed), rng_b(seed);
    sum_one += weighted_kmeans(points, one, rng_a).objective;
    sum_eight += weighted_kmeans(points, eight, rng_b).objective;
  }
  EXPECT_LE(sum_eight, sum_one + 1e-9);
}

TEST(KMeansWarmStart, ConvergesFromGivenCentroids) {
  // Two clusters; warm start near them converges exactly.
  std::vector<WeightedPoint> points;
  Rng data_rng(23);
  for (int i = 0; i < 40; ++i) {
    points.push_back({Point{data_rng.normal(0.0, 1.0)}, 1.0});
    points.push_back({Point{data_rng.normal(100.0, 1.0)}, 1.0});
  }
  KMeansConfig config;
  config.k = 2;
  const auto result = weighted_kmeans_from(points, {Point{10.0}, Point{90.0}}, config);
  ASSERT_EQ(result.centroids.size(), 2u);
  std::vector<double> xs{result.centroids[0][0], result.centroids[1][0]};
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[0], 0.0, 1.0);
  EXPECT_NEAR(xs[1], 100.0, 1.0);
}

TEST(KMeansWarmStart, IsDeterministic) {
  std::vector<WeightedPoint> points;
  Rng data_rng(29);
  for (int i = 0; i < 50; ++i) {
    points.push_back({Point{data_rng.uniform(0, 100), data_rng.uniform(0, 100)}, 1.0});
  }
  KMeansConfig config;
  config.k = 3;
  const std::vector<Point> start{Point{10.0, 10.0}, Point{50.0, 50.0}, Point{90.0, 90.0}};
  const auto a = weighted_kmeans_from(points, start, config);
  const auto b = weighted_kmeans_from(points, start, config);
  EXPECT_EQ(a.centroids, b.centroids);
  EXPECT_EQ(a.objective, b.objective);
}

TEST(KMeansWarmStart, StableDataKeepsCentroidsPut) {
  // Warm-starting from the data's own optimum leaves centroids unchanged.
  std::vector<WeightedPoint> points{{Point{0.0}, 1.0}, {Point{2.0}, 1.0},
                                    {Point{100.0}, 1.0}, {Point{102.0}, 1.0}};
  KMeansConfig config;
  config.k = 2;
  const auto result = weighted_kmeans_from(points, {Point{1.0}, Point{101.0}}, config);
  std::vector<double> xs{result.centroids[0][0], result.centroids[1][0]};
  std::sort(xs.begin(), xs.end());
  EXPECT_DOUBLE_EQ(xs[0], 1.0);
  EXPECT_DOUBLE_EQ(xs[1], 101.0);
}

TEST(KMeansWarmStart, ValidatesArguments) {
  const std::vector<WeightedPoint> points{{Point{1.0}, 1.0}};
  KMeansConfig config;
  EXPECT_THROW(weighted_kmeans_from({}, {Point{0.0}}, config), std::invalid_argument);
  EXPECT_THROW(weighted_kmeans_from(points, {}, config), std::invalid_argument);
  EXPECT_THROW(weighted_kmeans_from(points, {Point{0.0, 0.0}}, config),
               std::invalid_argument);
}

/// Lloyd iterations never increase the objective: verify by checking the
/// final objective is no worse than the seeding-only objective.
class KMeansImprovement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KMeansImprovement, LloydNeverWorseThanSeeding) {
  std::vector<WeightedPoint> points;
  Rng data_rng(GetParam());
  for (int i = 0; i < 120; ++i) {
    points.push_back({Point{data_rng.uniform(0, 200), data_rng.uniform(0, 200)},
                      data_rng.uniform(0.1, 5.0)});
  }
  KMeansConfig seeded_only;
  seeded_only.k = 4;
  seeded_only.max_iterations = 0;
  seeded_only.restarts = 1;
  KMeansConfig full = seeded_only;
  full.max_iterations = 100;

  Rng rng_a(GetParam() * 7 + 1), rng_b(GetParam() * 7 + 1);
  const auto seeded = weighted_kmeans(points, seeded_only, rng_a);
  const auto converged = weighted_kmeans(points, full, rng_b);
  EXPECT_LE(converged.objective, seeded.objective + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KMeansImprovement, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace geored::cluster
