// Fuzz-style randomized invariant test for MicroClusterSummarizer: feed it
// arbitrary access streams (clustered, uniform, coincident, heavy-tailed
// weights, interleaved decay/merge_cluster) and assert the CluStream
// sufficient-statistics invariants after every operation:
//   * cluster count never exceeds the budget m,
//   * counts are positive and weights non-negative and finite,
//   * per dimension, n * sum2[d] >= sum[d]^2 (Cauchy-Schwarz: the moments
//     describe a realizable point multiset),
//   * centroid and rms_stddev are finite,
//   * the summarizer's total access count matches the adds it received,
//   * the wire encoding round-trips bitwise and serialized_size() predicts
//     exactly the bytes write_clusters() emits.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "cluster/summarizer.h"
#include "common/random.h"
#include "common/serialize.h"

namespace geored::cluster {
namespace {

/// Serialization round-trip after every mutation: write_clusters must emit
/// exactly serialized_size() bytes (Table II's bandwidth accounting depends
/// on the prediction being exact), and deserialization must reproduce every
/// moment bit for bit — including zero-weight clusters and clusters built
/// by budget-overflow merges.
void expect_roundtrip(const MicroClusterSummarizer& summarizer, std::uint64_t seed,
                      std::size_t step) {
  const auto& clusters = summarizer.clusters();
  ByteWriter writer;
  write_clusters(writer, clusters);
  ASSERT_EQ(writer.size(), serialized_size(clusters))
      << "wire-size prediction diverged at seed " << seed << " step " << step;
  ByteReader reader(writer.bytes());
  const auto decoded = MicroClusterSummarizer::deserialize_clusters(reader);
  ASSERT_EQ(decoded.size(), clusters.size()) << "seed " << seed << " step " << step;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    ASSERT_EQ(decoded[i].count(), clusters[i].count());
    ASSERT_EQ(decoded[i].weight(), clusters[i].weight());
    ASSERT_EQ(decoded[i].sum().dim(), clusters[i].sum().dim());
    for (std::size_t d = 0; d < clusters[i].sum().dim(); ++d) {
      ASSERT_EQ(decoded[i].sum()[d], clusters[i].sum()[d])
          << "sum bit mismatch at seed " << seed << " step " << step;
      ASSERT_EQ(decoded[i].sum2()[d], clusters[i].sum2()[d])
          << "sum2 bit mismatch at seed " << seed << " step " << step;
    }
  }
}

void expect_invariants(const MicroClusterSummarizer& summarizer,
                       const SummarizerConfig& config, std::uint64_t seed,
                       std::size_t step) {
  const auto& clusters = summarizer.clusters();
  ASSERT_LE(clusters.size(), config.max_clusters)
      << "budget exceeded at seed " << seed << " step " << step;
  for (const auto& cluster : clusters) {
    ASSERT_GT(cluster.count(), 0u) << "seed " << seed << " step " << step;
    ASSERT_TRUE(std::isfinite(cluster.weight())) << "seed " << seed << " step " << step;
    ASSERT_GE(cluster.weight(), 0.0) << "seed " << seed << " step " << step;
    ASSERT_EQ(cluster.sum().dim(), cluster.sum2().dim());
    const auto n = static_cast<double>(cluster.count());
    for (std::size_t d = 0; d < cluster.sum().dim(); ++d) {
      const double sum = cluster.sum()[d];
      const double sum2 = cluster.sum2()[d];
      ASSERT_TRUE(std::isfinite(sum) && std::isfinite(sum2));
      // Cauchy-Schwarz with floating-point slack scaled to the magnitude.
      ASSERT_GE(n * sum2, sum * sum - 1e-6 * std::max(1.0, sum * sum))
          << "moment invariant violated in dim " << d << " at seed " << seed
          << " step " << step;
    }
    ASSERT_TRUE(cluster.centroid().is_finite());
    const double stddev = cluster.rms_stddev();
    ASSERT_TRUE(std::isfinite(stddev));
    ASSERT_GE(stddev, 0.0);
  }
}

void run_summarizer_fuzz(std::uint64_t seed) {
  Rng rng(seed);
  SummarizerConfig config;
  config.max_clusters = 1 + rng.below(12);
  config.min_absorb_radius = rng.uniform(0.0, 20.0);
  config.radius_factor = rng.uniform(0.25, 3.0);
  config.epoch_decay = rng.uniform(0.05, 1.0);
  MicroClusterSummarizer summarizer(config);

  const std::size_t dim = 1 + rng.below(5);
  // A few population centers so the stream is realistically clustered.
  std::vector<Point> centers;
  for (std::size_t c = 0; c < 1 + rng.below(6); ++c) {
    Point p(dim);
    for (std::size_t d = 0; d < dim; ++d) p[d] = rng.uniform(-500.0, 500.0);
    centers.push_back(p);
  }

  std::uint64_t expected_total = 0;
  const std::size_t steps = 300;
  for (std::size_t step = 0; step < steps; ++step) {
    const double action = rng.uniform();
    if (action < 0.85) {
      // One access: near a center, fully uniform, or exactly coincident
      // with a center (exercises zero-variance clusters).
      Point p = centers[rng.below(centers.size())];
      if (rng.bernoulli(0.8)) {
        for (std::size_t d = 0; d < dim; ++d) p[d] += rng.uniform(-30.0, 30.0);
      } else if (rng.bernoulli(0.5)) {
        for (std::size_t d = 0; d < dim; ++d) p[d] = rng.uniform(-1e4, 1e4);
      }
      // Occasional exact-zero weights: a legal access (metadata-only read)
      // that must survive the wire round-trip below.
      const double weight = rng.bernoulli(0.1)    ? 0.0
                            : rng.bernoulli(0.05) ? rng.uniform(0.0, 1e6)
                                                  : rng.uniform(0.0, 10.0);
      summarizer.add(p, weight);
      ++expected_total;
    } else if (action < 0.95) {
      // Merge a foreign cluster built from a short access burst, as when a
      // retiring replica hands its summary over.
      MicroCluster foreign;
      const std::size_t burst = 1 + rng.below(20);
      Point p = centers[rng.below(centers.size())];
      for (std::size_t a = 0; a < burst; ++a) {
        for (std::size_t d = 0; d < dim; ++d) p[d] += rng.uniform(-5.0, 5.0);
        foreign.absorb(p, rng.uniform(0.0, 10.0));
      }
      summarizer.merge_cluster(foreign);
      expected_total += foreign.count();
    } else {
      summarizer.decay();
      // decay() drops sub-one-access clusters; total_count_ records adds
      // ever seen, so expected_total is unchanged.
    }
    expect_invariants(summarizer, config, seed, step);
    if (::testing::Test::HasFatalFailure()) return;
    expect_roundtrip(summarizer, seed, step);
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_EQ(summarizer.total_count(), expected_total);
  }
}

class SummarizerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SummarizerFuzz, SufficientStatisticsInvariantsHoldUnderRandomStreams) {
  run_summarizer_fuzz(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummarizerFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

// Runtime-tunable extended sweep, mirroring PlacementFuzzBudget: CI's
// sanitizer job raises GEORED_FUZZ_ITERS for a deeper hunt.
TEST(SummarizerFuzzBudget, ExtendedRandomSweep) {
  std::uint64_t iters = 5;
  if (const char* env = std::getenv("GEORED_FUZZ_ITERS")) {
    iters = std::strtoull(env, nullptr, 10);
  }
  for (std::uint64_t seed = 1000; seed < 1000 + iters; ++seed) {
    run_summarizer_fuzz(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace geored::cluster
