// IngestEquivalence: the SoA / batched / parallel ingest fast paths must be
// bit-identical to the retained scalar reference. Equality is checked on
// serialized summaries, so every moment (count, weight, sum, sum2) has to
// match to the last bit — "close" is a failure. The suite also pins the
// supporting contracts the fast path relies on: the SIMD nearest-centroid
// scan against PointSet::nearest_of, radius-cache invalidation across
// absorb / merge / decay, whole-batch weight validation, and byte-stable
// ReplicationManager output across thread counts. Runs under release,
// asan-ubsan, and the tsan preset (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "cluster/summarizer.h"
#include "cluster/summarizer_scalar.h"
#include "common/point_set.h"
#include "common/random.h"
#include "common/serialize.h"
#include "common/thread_pool.h"
#include "core/replication_manager.h"

namespace geored::cluster {
namespace {

std::vector<std::uint8_t> summary_bytes(const MicroClusterSummarizer& summarizer) {
  ByteWriter writer;
  summarizer.serialize(writer);
  return writer.bytes();
}

std::vector<std::uint8_t> summary_bytes(const ScalarMicroClusterSummarizer& summarizer) {
  ByteWriter writer;
  summarizer.serialize(writer);
  return writer.bytes();
}

/// One randomized access stream: geo-clustered sites with occasional
/// uniform and coincident arrivals, random weights, and random spread both
/// inside and outside the absorb floor.
struct Stream {
  SummarizerConfig config;
  std::size_t dim = 0;
  std::vector<Point> points;
  std::vector<double> weights;

  explicit Stream(std::uint64_t seed, std::size_t n_accesses = 400) {
    Rng rng(seed);
    config.max_clusters = 1 + rng.below(12);
    config.min_absorb_radius = rng.uniform(0.0, 15.0);
    config.radius_factor = rng.uniform(0.25, 3.0);
    config.epoch_decay = rng.uniform(0.05, 1.0);
    dim = 1 + rng.below(6);
    std::vector<Point> centers;
    const std::size_t n_centers = 1 + rng.below(8);
    for (std::size_t c = 0; c < n_centers; ++c) {
      Point p(dim);
      for (std::size_t d = 0; d < dim; ++d) p[d] = rng.uniform(-300.0, 300.0);
      centers.push_back(p);
    }
    const double spread = rng.uniform(0.2, 25.0);
    for (std::size_t i = 0; i < n_accesses; ++i) {
      Point p = centers[rng.below(centers.size())];
      if (rng.bernoulli(0.85)) {
        for (std::size_t d = 0; d < dim; ++d) p[d] += rng.normal(0.0, spread);
      } else if (rng.bernoulli(0.5)) {
        for (std::size_t d = 0; d < dim; ++d) p[d] = rng.uniform(-1e4, 1e4);
      }
      points.push_back(p);
      weights.push_back(rng.bernoulli(0.1) ? 0.0 : rng.uniform(0.0, 50.0));
    }
  }
};

class IngestEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IngestEquivalence, PerAccessPathMatchesScalarBytes) {
  const Stream stream(GetParam());
  ScalarMicroClusterSummarizer scalar(stream.config);
  MicroClusterSummarizer fast(stream.config);
  Rng ops(GetParam() ^ 0xfeedface);
  for (std::size_t i = 0; i < stream.points.size(); ++i) {
    scalar.add(stream.points[i], stream.weights[i]);
    fast.add(stream.points[i], stream.weights[i]);
    // Interleave the other mutation paths so cached radii and the
    // transposed centroid shadow survive merge/decay churn.
    if (ops.bernoulli(0.03)) {
      scalar.decay();
      fast.decay();
    }
    if (ops.bernoulli(0.03)) {
      MicroCluster foreign(stream.points[i], 2.5);
      foreign.absorb(stream.points[(i * 7 + 3) % stream.points.size()], 1.0);
      scalar.merge_cluster(foreign);
      fast.merge_cluster(foreign);
    }
    ASSERT_EQ(summary_bytes(scalar), summary_bytes(fast))
        << "diverged at access " << i << " with seed " << GetParam();
  }
  EXPECT_EQ(scalar.total_count(), fast.total_count());
}

TEST_P(IngestEquivalence, BatchedPathMatchesScalarBytes) {
  const Stream stream(GetParam());
  ScalarMicroClusterSummarizer scalar(stream.config);
  MicroClusterSummarizer batched(stream.config);
  Rng chunks(GetParam() ^ 0xba7c4);
  std::size_t i = 0;
  while (i < stream.points.size()) {
    // Random chunk sizes cover the empty-store bootstrap, one-row batches,
    // and batches larger than the cluster budget.
    const std::size_t chunk =
        std::min<std::size_t>(1 + chunks.below(40), stream.points.size() - i);
    PointSet batch(stream.dim);
    std::vector<double> batch_weights;
    for (std::size_t j = 0; j < chunk; ++j) {
      batch.push_back(stream.points[i + j]);
      batch_weights.push_back(stream.weights[i + j]);
      scalar.add(stream.points[i + j], stream.weights[i + j]);
    }
    // Alternate between explicit weights and the all-1.0 default form.
    if (chunks.bernoulli(0.2)) {
      for (std::size_t j = 0; j < chunk; ++j) scalar.add(stream.points[i + j], 1.0);
      batched.add_batch(batch, batch_weights);
      batched.add_batch(batch);
    } else {
      batched.add_batch(batch, batch_weights);
    }
    ASSERT_EQ(summary_bytes(scalar), summary_bytes(batched))
        << "diverged after batch ending at " << i + chunk << " seed " << GetParam();
    i += chunk;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IngestEquivalence, ::testing::Range<std::uint64_t>(1, 13));

TEST(IngestEquivalence, NearestCentroidMatchesPointSetScan) {
  // Store sizes 1..20 cover the scalar fallback (< 4 rows), the in-register
  // lane pair (4..8), and the buffered multi-group scan (9+).
  for (std::size_t target_rows : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 12u, 20u}) {
    SummarizerConfig config;
    config.max_clusters = target_rows;
    config.min_absorb_radius = 0.5;  // tight radius: the stream mostly spawns
    MicroClusterSummarizer summarizer(config);
    Rng rng(0x5ca1 + target_rows);
    const std::size_t dim = 5;
    while (summarizer.store().size() < target_rows) {
      Point p(dim);
      for (std::size_t d = 0; d < dim; ++d) p[d] = rng.uniform(-200.0, 200.0);
      summarizer.add(p, 1.0);
    }
    const MomentStore& store = summarizer.store();
    for (std::size_t q = 0; q < 200; ++q) {
      std::vector<double> query(dim);
      for (std::size_t d = 0; d < dim; ++d) query[d] = rng.uniform(-250.0, 250.0);
      if (q % 17 == 0) query[q % dim] = std::numeric_limits<double>::quiet_NaN();
      if (q % 23 == 0) query[q % dim] = std::numeric_limits<double>::infinity();
      if (q % 5 == 0) {
        // Coincident with a centroid: exact zero distance, tie-prone.
        const double* row = store.centroids().row(q % store.size());
        query.assign(row, row + dim);
      }
      double fast_dist = 0.0, ref_dist = 0.0;
      const std::size_t fast = store.nearest_centroid(query.data(), &fast_dist);
      const std::size_t ref = store.centroids().nearest_of(query.data(), &ref_dist);
      ASSERT_EQ(fast, ref) << "rows=" << target_rows << " query " << q;
      // Bitwise: NaN never wins the scan, so both sides report a real (or
      // +inf) squared distance and exact equality is well-defined.
      ASSERT_EQ(fast_dist, ref_dist) << "rows=" << target_rows << " query " << q;
    }
  }
}

TEST(IngestEquivalence, TiedDistancesPickTheFirstWinner) {
  // Two centroids symmetric about the query: identical distances, and the
  // scan must report the lower row like the scalar strict-`<` loop.
  SummarizerConfig config;
  config.max_clusters = 8;
  config.min_absorb_radius = 0.25;
  MicroClusterSummarizer summarizer(config);
  for (double x : {-10.0, 10.0, -20.0, 20.0, -30.0, 30.0}) {
    summarizer.add(Point{x, 0.0}, 1.0);
  }
  const double origin[2] = {0.0, 0.0};
  double dist = 0.0;
  EXPECT_EQ(summarizer.store().nearest_centroid(origin, &dist), 0u);
  EXPECT_EQ(dist, 100.0);
}

TEST(IngestEquivalence, AbsorbAndMergeAndDecayInvalidateCachedRadii) {
  SummarizerConfig config;
  config.max_clusters = 2;
  config.min_absorb_radius = 5.0;
  config.radius_factor = 1.0;
  config.epoch_decay = 0.5;
  MicroClusterSummarizer summarizer(config);
  summarizer.add(Point{0.0}, 1.0);
  const MomentStore& store = summarizer.store();
  EXPECT_FALSE(store.radius_cached(0));
  EXPECT_EQ(store.radius(0), 5.0);  // singleton: stddev 0, the floor wins
  EXPECT_TRUE(store.radius_cached(0));

  summarizer.add(Point{4.0}, 1.0);  // distance 4 < 5: absorbed into row 0
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.radius_cached(0)) << "absorb must invalidate the cache";
  EXPECT_EQ(store.radius(0), 5.0);  // stddev 2, floor still wins
  EXPECT_TRUE(store.radius_cached(0));

  summarizer.decay();
  EXPECT_FALSE(store.radius_cached(0)) << "decay must invalidate the cache";

  // Over-budget insert forces merge_rows; merged rows must recompute too.
  summarizer.add(Point{100.0}, 1.0);
  summarizer.add(Point{200.0}, 1.0);
  ASSERT_EQ(store.size(), 2u);
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_FALSE(store.radius_cached(i)) << "row " << i;
  }
}

TEST(IngestEquivalence, DecayGoldenSequence) {
  // Golden pin of the decay x radius interaction, derived from the
  // MicroCluster::scale contract (count rounds, moments scale by the
  // realized ratio so centroid and stddev are exactly preserved):
  //   add x=0 w=3, add x=4 w=1  ->  count 2, sum 4, sum2 16, weight 4
  //   decay(0.5)                ->  count 1, sum 2, sum2 8,  weight 2
  // Variance before: 16/2 - 2^2 = 4. Variance after: 8/1 - 2^2 = 4. The
  // radius is max(5, 1 * sqrt(4)) = 5 both before and after.
  SummarizerConfig config;
  config.max_clusters = 2;
  config.min_absorb_radius = 5.0;
  config.radius_factor = 1.0;
  config.epoch_decay = 0.5;
  MicroClusterSummarizer summarizer(config);
  summarizer.add(Point{0.0}, 3.0);
  summarizer.add(Point{4.0}, 1.0);
  ASSERT_EQ(summarizer.clusters().size(), 1u);
  EXPECT_EQ(summarizer.clusters()[0].count(), 2u);
  EXPECT_EQ(summarizer.clusters()[0].sum()[0], 4.0);
  EXPECT_EQ(summarizer.clusters()[0].sum2()[0], 16.0);
  EXPECT_EQ(summarizer.clusters()[0].weight(), 4.0);
  EXPECT_EQ(summarizer.store().radius(0), 5.0);

  summarizer.decay();
  ASSERT_EQ(summarizer.clusters().size(), 1u);
  EXPECT_EQ(summarizer.clusters()[0].count(), 1u);
  EXPECT_EQ(summarizer.clusters()[0].sum()[0], 2.0);
  EXPECT_EQ(summarizer.clusters()[0].sum2()[0], 8.0);
  EXPECT_EQ(summarizer.clusters()[0].weight(), 2.0);
  EXPECT_FALSE(summarizer.store().radius_cached(0));
  EXPECT_EQ(summarizer.store().radius(0), 5.0);
  EXPECT_EQ(summarizer.clusters()[0].centroid()[0], 2.0);
  EXPECT_EQ(summarizer.clusters()[0].rms_stddev(), 2.0);
}

TEST(IngestEquivalence, RejectsNonFiniteAndNegativeWeights) {
  const double kBad[] = {std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity(), -1.0, -1e-12};
  for (const double bad : kBad) {
    MicroClusterSummarizer fast;
    ScalarMicroClusterSummarizer scalar;
    fast.add(Point{1.0, 2.0}, 3.0);
    EXPECT_THROW(fast.add(Point{0.0, 0.0}, bad), std::invalid_argument);
    EXPECT_THROW(scalar.add(Point{0.0, 0.0}, bad), std::invalid_argument);
    EXPECT_EQ(fast.total_count(), 1u) << "failed add must not be recorded";
  }
}

TEST(IngestEquivalence, BadBatchWeightRejectsTheWholeBatch) {
  MicroClusterSummarizer summarizer;
  summarizer.add(Point{5.0, 5.0}, 1.0);
  const auto before = summary_bytes(summarizer);

  PointSet batch(2);
  batch.push_back(Point{1.0, 1.0});
  batch.push_back(Point{2.0, 2.0});
  batch.push_back(Point{3.0, 3.0});
  const std::vector<double> weights = {1.0, std::numeric_limits<double>::quiet_NaN(), 1.0};
  EXPECT_THROW(summarizer.add_batch(batch, weights), std::invalid_argument);
  EXPECT_EQ(summary_bytes(summarizer), before)
      << "a bad weight anywhere in the batch must leave the summarizer untouched";
  EXPECT_EQ(summarizer.total_count(), 1u);

  EXPECT_THROW(summarizer.add_batch(batch, {weights.data(), 2}), std::invalid_argument)
      << "weight count must match row count";
  EXPECT_EQ(summary_bytes(summarizer), before);
}

TEST(IngestEquivalence, WeightedKMeansRejectsBadWeights) {
  const std::vector<WeightedPoint> bad = {{Point{0.0, 0.0}, 1.0},
                                          {Point{1.0, 1.0}, -2.0}};
  KMeansConfig config;
  config.k = 1;
  Rng rng(7);
  EXPECT_THROW(weighted_kmeans(bad, config, rng), std::invalid_argument);
  EXPECT_THROW(weighted_kmeans_scalar(bad, config, rng), std::invalid_argument);
  EXPECT_THROW(weighted_kmeans_from(bad, {Point{0.0, 0.0}}, config), std::invalid_argument);
  EXPECT_THROW(weighted_kmeans_from_scalar(bad, {Point{0.0, 0.0}}, config),
               std::invalid_argument);
}

/// Restores the global pool (and with it GEORED_THREADS semantics) on exit.
struct GlobalPoolGuard {
  ~GlobalPoolGuard() { ThreadPool::set_global_thread_count(0); }
};

TEST(IngestEquivalence, ManagerBytesAreIdenticalAcrossThreadCounts) {
  GlobalPoolGuard guard;
  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < 10; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i),
                          Point{100.0 * static_cast<double>(i), 0.0},
                          std::numeric_limits<double>::infinity()});
  }
  core::ManagerConfig config;
  config.replication_degree = 3;
  config.summarizer.max_clusters = 4;
  config.ingest_batch_grain = 64;

  const auto drive = [&](std::size_t threads) {
    ThreadPool::set_global_thread_count(threads);
    core::ReplicationManager manager(candidates, config, 42);
    Rng rng(0xd1ce);
    const auto& placement = manager.placement();
    for (std::size_t i = 0; i < 600; ++i) {
      const Point client{rng.uniform(0.0, 900.0), rng.uniform(-50.0, 50.0)};
      manager.record_access(placement[i % placement.size()], client,
                            rng.uniform(0.0, 4.0));
    }
    // A chunked batch on top, then an epoch so collection, placement, and
    // decay all run downstream of the parallel flush.
    PointSet chunk(2);
    for (std::size_t i = 0; i < 40; ++i) {
      chunk.push_back(Point{rng.uniform(0.0, 900.0), rng.uniform(-50.0, 50.0)});
    }
    manager.record_access_batch(placement[0], chunk);
    manager.run_epoch();
    ByteWriter writer;
    manager.save(writer);
    return writer.bytes();
  };

  const auto bytes_one = drive(1);
  const auto bytes_four = drive(4);
  EXPECT_EQ(bytes_one, bytes_four)
      << "parallel per-replica ingest must be byte-identical at any thread count";
}

}  // namespace
}  // namespace geored::cluster
