#include "cluster/summarizer.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace geored::cluster {
namespace {

SummarizerConfig config_with(std::size_t m, double radius = 5.0) {
  SummarizerConfig config;
  config.max_clusters = m;
  config.min_absorb_radius = radius;
  return config;
}

TEST(Summarizer, RejectsInvalidConfig) {
  SummarizerConfig config;
  config.max_clusters = 0;
  EXPECT_THROW(MicroClusterSummarizer{config}, std::invalid_argument);
  config = {};
  config.min_absorb_radius = -1.0;
  EXPECT_THROW(MicroClusterSummarizer{config}, std::invalid_argument);
  config = {};
  config.epoch_decay = 0.0;
  EXPECT_THROW(MicroClusterSummarizer{config}, std::invalid_argument);
}

TEST(Summarizer, FirstAccessCreatesCluster) {
  MicroClusterSummarizer summarizer(config_with(4));
  summarizer.add(Point{10.0, 20.0}, 1.0);
  ASSERT_EQ(summarizer.clusters().size(), 1u);
  EXPECT_EQ(summarizer.clusters()[0].centroid(), (Point{10.0, 20.0}));
  EXPECT_EQ(summarizer.total_count(), 1u);
}

TEST(Summarizer, NearbyAccessIsAbsorbed) {
  MicroClusterSummarizer summarizer(config_with(4, /*radius=*/10.0));
  summarizer.add(Point{0.0, 0.0});
  summarizer.add(Point{3.0, 4.0});  // distance 5 < radius 10
  ASSERT_EQ(summarizer.clusters().size(), 1u);
  EXPECT_EQ(summarizer.clusters()[0].count(), 2u);
  EXPECT_EQ(summarizer.clusters()[0].centroid(), (Point{1.5, 2.0}));
}

TEST(Summarizer, FarAccessSpawnsNewCluster) {
  MicroClusterSummarizer summarizer(config_with(4, 10.0));
  summarizer.add(Point{0.0, 0.0});
  summarizer.add(Point{100.0, 0.0});
  EXPECT_EQ(summarizer.clusters().size(), 2u);
}

TEST(Summarizer, ClusterBudgetIsEnforcedByMergingClosestPair) {
  MicroClusterSummarizer summarizer(config_with(2, 1.0));
  summarizer.add(Point{0.0, 0.0});
  summarizer.add(Point{10.0, 0.0});
  summarizer.add(Point{100.0, 0.0});  // 3rd cluster: the two closest (0,10) merge
  ASSERT_EQ(summarizer.clusters().size(), 2u);
  // One cluster should be the merged {0,10} pair at centroid 5.
  bool found_merged = false;
  for (const auto& cluster : summarizer.clusters()) {
    if (cluster.count() == 2) {
      EXPECT_EQ(cluster.centroid(), (Point{5.0, 0.0}));
      found_merged = true;
    }
  }
  EXPECT_TRUE(found_merged);
}

TEST(Summarizer, NeverExceedsBudget) {
  MicroClusterSummarizer summarizer(config_with(7, 2.0));
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    summarizer.add(Point{rng.uniform(-500, 500), rng.uniform(-500, 500)});
    ASSERT_LE(summarizer.clusters().size(), 7u);
  }
  EXPECT_EQ(summarizer.clusters().size(), 7u);
  EXPECT_EQ(summarizer.total_count(), 5000u);
}

TEST(Summarizer, AccessCountIsConservedAcrossMerges) {
  MicroClusterSummarizer summarizer(config_with(3, 1.0));
  Rng rng(7);
  constexpr int kAccesses = 1000;
  for (int i = 0; i < kAccesses; ++i) {
    summarizer.add(Point{rng.uniform(0, 300), rng.uniform(0, 300)});
  }
  std::uint64_t total = 0;
  for (const auto& cluster : summarizer.clusters()) total += cluster.count();
  EXPECT_EQ(total, kAccesses);
}

TEST(Summarizer, AdaptiveRadiusAbsorbsIntoSpreadClusters) {
  // A cluster with real spread absorbs points within its stddev even beyond
  // the singleton floor radius.
  MicroClusterSummarizer summarizer(config_with(4, 1.0));
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    summarizer.add(Point{rng.normal(0.0, 20.0), rng.normal(0.0, 20.0)});
  }
  // All points in one region; the summarizer should not use all 4 clusters
  // for long — most points land inside the dominant cluster's deviation.
  std::uint64_t biggest = 0;
  for (const auto& cluster : summarizer.clusters()) {
    biggest = std::max(biggest, cluster.count());
  }
  EXPECT_GT(biggest, 100u);
}

TEST(Summarizer, TwoPopulationsYieldTwoDominantClusters) {
  MicroClusterSummarizer summarizer(config_with(4, 5.0));
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    if (i % 2 == 0) {
      summarizer.add(Point{rng.normal(0.0, 5.0), rng.normal(0.0, 5.0)});
    } else {
      summarizer.add(Point{rng.normal(200.0, 5.0), rng.normal(0.0, 5.0)});
    }
  }
  // Count mass near each population.
  std::uint64_t near_zero = 0, near_two_hundred = 0;
  for (const auto& cluster : summarizer.clusters()) {
    if (cluster.centroid()[0] < 100.0) {
      near_zero += cluster.count();
    } else {
      near_two_hundred += cluster.count();
    }
  }
  EXPECT_NEAR(static_cast<double>(near_zero), 250.0, 25.0);
  EXPECT_NEAR(static_cast<double>(near_two_hundred), 250.0, 25.0);
}

TEST(Summarizer, DecayHalvesCountsAndDropsEmptyClusters) {
  SummarizerConfig config = config_with(4, 5.0);
  config.epoch_decay = 0.5;
  MicroClusterSummarizer summarizer(config);
  for (int i = 0; i < 100; ++i) summarizer.add(Point{0.0, 0.0});
  summarizer.add(Point{500.0, 0.0});  // singleton far away
  ASSERT_EQ(summarizer.clusters().size(), 2u);

  summarizer.decay();
  // 100 -> 50; the singleton (1 * 0.5 rounds to 1... rounds to 0 or 1?)
  // scale() rounds half up: 0.5 + 0.5 = 1, so it survives at count 1.
  std::uint64_t total = 0;
  for (const auto& cluster : summarizer.clusters()) total += cluster.count();
  EXPECT_EQ(total, 51u);

  // Decaying repeatedly eventually drops everything.
  for (int i = 0; i < 20; ++i) summarizer.decay();
  std::uint64_t remaining = 0;
  for (const auto& cluster : summarizer.clusters()) remaining += cluster.count();
  EXPECT_LE(remaining, 2u);
}

TEST(Summarizer, ClearResetsState) {
  MicroClusterSummarizer summarizer(config_with(4));
  summarizer.add(Point{1.0, 2.0});
  summarizer.clear();
  EXPECT_TRUE(summarizer.clusters().empty());
  EXPECT_EQ(summarizer.total_count(), 0u);
}

TEST(Summarizer, MergeClusterInsertsWholeCluster) {
  MicroClusterSummarizer summarizer(config_with(2, 1.0));
  MicroCluster external;
  for (int i = 0; i < 10; ++i) external.absorb(Point{50.0 + i, 0.0}, 1.0);
  summarizer.merge_cluster(external);
  ASSERT_EQ(summarizer.clusters().size(), 1u);
  EXPECT_EQ(summarizer.clusters()[0].count(), 10u);
  // Budget still enforced through merge_cluster.
  summarizer.merge_cluster(MicroCluster(Point{0.0, 0.0}, 1.0));
  summarizer.merge_cluster(MicroCluster(Point{500.0, 0.0}, 1.0));
  EXPECT_LE(summarizer.clusters().size(), 2u);
  // Empty clusters are ignored.
  summarizer.merge_cluster(MicroCluster());
  EXPECT_LE(summarizer.clusters().size(), 2u);
}

TEST(Summarizer, SerializationRoundTrip) {
  MicroClusterSummarizer summarizer(config_with(4, 5.0));
  Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    summarizer.add(Point{rng.uniform(0, 400), rng.uniform(0, 400)}, rng.uniform(0.5, 2.0));
  }
  ByteWriter writer;
  summarizer.serialize(writer);
  ByteReader reader(writer.bytes());
  const auto clusters = MicroClusterSummarizer::deserialize_clusters(reader);
  EXPECT_TRUE(reader.exhausted());
  ASSERT_EQ(clusters.size(), summarizer.clusters().size());
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    EXPECT_EQ(clusters[i].count(), summarizer.clusters()[i].count());
    EXPECT_EQ(clusters[i].sum(), summarizer.clusters()[i].sum());
  }
}

TEST(Summarizer, DeterministicGivenSameStream) {
  MicroClusterSummarizer a(config_with(5)), b(config_with(5));
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const Point p{rng.uniform(0, 100), rng.uniform(0, 100)};
    a.add(p);
    b.add(p);
  }
  ASSERT_EQ(a.clusters().size(), b.clusters().size());
  for (std::size_t i = 0; i < a.clusters().size(); ++i) {
    EXPECT_EQ(a.clusters()[i].count(), b.clusters()[i].count());
    EXPECT_EQ(a.clusters()[i].sum(), b.clusters()[i].sum());
  }
}

/// Fidelity property: with m micro-clusters over g << m well-separated
/// population centres, the summary's weighted centroid error is small.
class SummarizerFidelity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SummarizerFidelity, CentroidsTrackPopulations) {
  const std::size_t m = GetParam();
  MicroClusterSummarizer summarizer(config_with(m, 5.0));
  Rng rng(23);
  const std::vector<Point> centres{{0.0, 0.0}, {300.0, 0.0}, {0.0, 300.0}};
  for (int i = 0; i < 3000; ++i) {
    const auto& c = centres[rng.below(3)];
    summarizer.add(Point{c[0] + rng.normal(0, 8.0), c[1] + rng.normal(0, 8.0)});
  }
  // Every population centre must have a micro-cluster centroid within 30 ms.
  for (const auto& centre : centres) {
    double best = 1e18;
    for (const auto& cluster : summarizer.clusters()) {
      best = std::min(best, centre.distance_to(cluster.centroid()));
    }
    EXPECT_LT(best, 30.0) << "m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(MicroBudgets, SummarizerFidelity, ::testing::Values(3, 4, 7, 11));

}  // namespace
}  // namespace geored::cluster
