// Negative and fuzz coverage for the hardened summary wire decode: a real
// transport (src/net/) can deliver truncated, oversized-count, or bit-flipped
// frames, and MicroClusterSummarizer::deserialize_clusters must answer every
// such frame with a typed WireFormatError — never undefined behavior, a
// gigabyte allocation, or silently corrupt clusters. The randomized sweeps
// honor GEORED_FUZZ_ITERS like the other fuzz budgets.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "cluster/summarizer.h"
#include "common/random.h"
#include "common/serialize.h"

namespace geored::cluster {
namespace {

/// A well-formed frame to mutate: a few clusters of a 2-D population.
std::vector<std::uint8_t> good_frame(std::uint64_t seed) {
  Rng rng(seed);
  SummarizerConfig config;
  config.max_clusters = 4;
  MicroClusterSummarizer summarizer(config);
  for (int i = 0; i < 50; ++i) {
    summarizer.add(Point{rng.normal(0.0, 20.0), rng.normal(100.0, 20.0)}, rng.uniform(0.0, 5.0));
  }
  ByteWriter writer;
  write_clusters(writer, summarizer.clusters());
  return writer.bytes();
}

std::vector<MicroCluster> decode(const std::vector<std::uint8_t>& bytes) {
  ByteReader reader(bytes);
  return MicroClusterSummarizer::deserialize_clusters(reader);
}

TEST(WireNegative, GoodFrameDecodes) {
  EXPECT_FALSE(decode(good_frame(1)).empty());
}

TEST(WireNegative, EveryTruncationThrowsTyped) {
  const auto frame = good_frame(2);
  for (std::size_t keep = 0; keep < frame.size(); ++keep) {
    const std::vector<std::uint8_t> cut(frame.begin(),
                                        frame.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(decode(cut), WireFormatError) << "kept " << keep << " bytes";
  }
}

TEST(WireNegative, OversizedClusterCountThrowsBeforeAllocating) {
  auto frame = good_frame(3);
  // The leading u32 is the cluster count; claim ~4 billion clusters. The
  // decoder must reject the count against the bytes present, not reserve.
  const std::uint32_t huge = 0xfffffffe;
  std::memcpy(frame.data(), &huge, sizeof huge);
  EXPECT_THROW(decode(frame), WireFormatError);
}

TEST(WireNegative, OversizedVectorLengthThrowsBeforeAllocating) {
  auto frame = good_frame(4);
  // First cluster's sum-vector length lives after count(u32) + cluster
  // header (u64 count + f64 weight). Claim 500 million doubles.
  const std::size_t offset = 4 + 8 + 8;
  ASSERT_GT(frame.size(), offset + 4);
  const std::uint32_t huge = 500'000'000;
  std::memcpy(frame.data() + offset, &huge, sizeof huge);
  EXPECT_THROW(decode(frame), WireFormatError);
}

TEST(WireNegative, NegativeWeightThrows) {
  auto frame = good_frame(5);
  const std::size_t offset = 4 + 8;  // first cluster's weight
  const double negative = -1.0;
  std::memcpy(frame.data() + offset, &negative, sizeof negative);
  EXPECT_THROW(decode(frame), WireFormatError);
}

TEST(WireNegative, NonFiniteMomentThrows) {
  auto frame = good_frame(6);
  const std::size_t offset = 4 + 8 + 8 + 4;  // first double of the sum vector
  ASSERT_GT(frame.size(), offset + 8);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(frame.data() + offset, &nan, sizeof nan);
  EXPECT_THROW(decode(frame), WireFormatError);
}

TEST(WireNegative, WireFormatErrorIsInvalidArgument) {
  // Existing recovery paths catch std::invalid_argument; the typed error
  // must stay inside that hierarchy.
  const auto frame = good_frame(7);
  const std::vector<std::uint8_t> cut(frame.begin(), frame.begin() + 3);
  EXPECT_THROW(decode(cut), std::invalid_argument);
}

/// Randomized bit-flip sweep: flipping any single bit of a good frame must
/// either decode (the flip hit a benign mantissa/count bit) or throw
/// WireFormatError — nothing else. Under asan/ubsan this doubles as a
/// memory-safety proof for hostile frames.
void run_bitflip_fuzz(std::uint64_t seed) {
  const auto frame = good_frame(seed);
  Rng rng(seed * 31 + 7);
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = frame;
    const std::size_t byte = rng.below(mutated.size());
    const int bit = static_cast<int>(rng.below(8));
    mutated[byte] = static_cast<std::uint8_t>(mutated[byte] ^ (1u << bit));
    try {
      const auto clusters = decode(mutated);
      // Decoded fine: the mutation stayed within the representable set.
      (void)clusters;
    } catch (const WireFormatError&) {
      // The one acceptable failure mode.
    }
  }
}

/// Random-garbage sweep: arbitrary byte strings must decode or throw typed,
/// and the empty buffer in particular must throw (no count to read).
void run_garbage_fuzz(std::uint64_t seed) {
  Rng rng(seed * 131 + 17);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> garbage(rng.below(300));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.below(256));
    try {
      (void)decode(garbage);
    } catch (const WireFormatError&) {
    }
  }
}

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, SingleBitFlipsDecodeOrThrowTyped) { run_bitflip_fuzz(GetParam()); }
TEST_P(WireFuzz, RandomGarbageDecodesOrThrowsTyped) { run_garbage_fuzz(GetParam()); }

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Range<std::uint64_t>(1, 11));

// Runtime-tunable extended sweep, mirroring SummarizerFuzzBudget: CI's
// sanitizer job raises GEORED_FUZZ_ITERS for a deeper hunt.
TEST(WireFuzzBudget, ExtendedRandomSweep) {
  std::uint64_t iters = 5;
  if (const char* env = std::getenv("GEORED_FUZZ_ITERS")) {
    iters = std::strtoull(env, nullptr, 10);
  }
  for (std::uint64_t seed = 2000; seed < 2000 + iters; ++seed) {
    run_bitflip_fuzz(seed);
    run_garbage_fuzz(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace geored::cluster
