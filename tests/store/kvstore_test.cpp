#include "store/kvstore.h"

#include <gtest/gtest.h>

#include <limits>
#include <optional>

#include "common/random.h"
#include "topology/topology.h"

namespace geored::store {
namespace {

/// Deterministic world: explicit 1-D positions, RTT = |distance| (min 0.1).
struct StoreWorld {
  topo::Topology topology;
  std::vector<place::CandidateInfo> candidates;
  std::vector<Point> positions;

  explicit StoreWorld(std::vector<double> xs, std::size_t dc_count)
      : topology(topo::Topology(std::vector<topo::NodeInfo>(0), SymMatrix(0), {})) {
    const std::size_t n = xs.size();
    SymMatrix rtt(n);
    for (std::size_t i = 0; i < n; ++i) {
      positions.push_back(Point{xs[i]});
      for (std::size_t j = i + 1; j < n; ++j) {
        rtt.set(i, j, std::max(0.1, std::abs(xs[i] - xs[j])));
      }
    }
    topology = topo::Topology(std::vector<topo::NodeInfo>(n), std::move(rtt), {});
    for (std::size_t i = 0; i < dc_count; ++i) {
      candidates.push_back({static_cast<topo::NodeId>(i), positions[i],
                            std::numeric_limits<double>::infinity()});
    }
  }
};

StoreConfig config_with(std::size_t n, std::size_t r, std::size_t w,
                        std::size_t groups = 4) {
  StoreConfig config;
  config.quorum = {n, r, w};
  config.groups = groups;
  config.manager.summarizer.max_clusters = 4;
  return config;
}

TEST(KvStore, RejectsInvalidConfig) {
  StoreWorld world({0, 100, 200, 300}, 3);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  EXPECT_THROW(ReplicatedKvStore(simulator, network, world.candidates,
                                 config_with(4, 1, 1), 1),
               std::invalid_argument);  // n > #DCs
  EXPECT_THROW(ReplicatedKvStore(simulator, network, world.candidates,
                                 config_with(3, 0, 1), 1),
               std::invalid_argument);
  EXPECT_THROW(ReplicatedKvStore(simulator, network, world.candidates,
                                 config_with(3, 1, 4), 1),
               std::invalid_argument);
  EXPECT_THROW(ReplicatedKvStore(simulator, network, {}, config_with(1, 1, 1), 1),
               std::invalid_argument);
}

TEST(KvStore, GroupHashIsStableAndInRange) {
  StoreWorld world({0, 100, 200}, 3);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  ReplicatedKvStore store(simulator, network, world.candidates, config_with(2, 1, 1, 8), 1);
  for (ObjectId id = 0; id < 1000; ++id) {
    const auto group = store.group_of(id);
    EXPECT_LT(group, 8u);
    EXPECT_EQ(group, store.group_of(id));
    EXPECT_EQ(store.placement_of_group(group).size(), 2u);
  }
  EXPECT_THROW(store.placement_of_group(8), std::invalid_argument);
}

TEST(KvStore, PutThenGetRoundTrip) {
  StoreWorld world({0, 100, 200, 50, 150}, 3);  // nodes 3,4 are clients
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  ReplicatedKvStore store(simulator, network, world.candidates, config_with(3, 2, 2), 1);

  std::optional<PutResult> put_result;
  store.put(3, world.positions[3], /*id=*/7, "hello",
            [&](const PutResult& r) { put_result = r; });
  simulator.run();
  ASSERT_TRUE(put_result.has_value());
  EXPECT_GT(put_result->latency_ms, 0.0);
  EXPECT_GT(put_result->version, Version::zero());

  std::optional<GetResult> get_result;
  store.get(4, world.positions[4], 7, [&](const GetResult& r) { get_result = r; });
  simulator.run();
  ASSERT_TRUE(get_result.has_value());
  EXPECT_TRUE(get_result->value.exists());
  EXPECT_EQ(get_result->value.data, "hello");
  EXPECT_FALSE(get_result->stale);
  EXPECT_EQ(store.reads(), 1u);
  EXPECT_EQ(store.writes(), 1u);
  EXPECT_EQ(store.stale_reads(), 0u);
  // Every completed operation lands in the tail-latency histograms, in the
  // bucket of its measured latency.
  EXPECT_EQ(store.put_latency_histogram().total(), 1u);
  EXPECT_EQ(store.get_latency_histogram().total(), 1u);
  EXPECT_DOUBLE_EQ(store.put_latency_histogram().mean_ms(), put_result->latency_ms);
  EXPECT_LE(store.get_latency_histogram().quantile(0.99), get_result->latency_ms);
}

TEST(KvStore, MissingKeyIsNotFound) {
  StoreWorld world({0, 100, 200, 50}, 3);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  ReplicatedKvStore store(simulator, network, world.candidates, config_with(3, 1, 1), 1);
  std::optional<GetResult> result;
  store.get(3, world.positions[3], 12345, [&](const GetResult& r) { result = r; });
  simulator.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->value.exists());
  EXPECT_EQ(store.not_found_reads(), 1u);
}

TEST(KvStore, QuorumIntersectionGivesReadYourWrites) {
  // r + w > n: a read issued after a put completes always sees it, from any
  // client, under any replica placement. Sweep several object ids so the
  // test covers multiple groups/placements.
  StoreWorld world({0, 80, 160, 240, 40, 200}, 4);  // clients at nodes 4, 5
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  ReplicatedKvStore store(simulator, network, world.candidates, config_with(3, 2, 2, 4),
                          7);
  for (ObjectId id = 0; id < 20; ++id) {
    bool done = false;
    store.put(4, world.positions[4], id, "v" + std::to_string(id), [&](const PutResult&) {
      // Issue the read the instant the write commits.
      store.get(5, world.positions[5], id, [&, id](const GetResult& r) {
        EXPECT_EQ(r.value.data, "v" + std::to_string(id));
        EXPECT_FALSE(r.stale);
        done = true;
      });
    });
    simulator.run();
    EXPECT_TRUE(done);
  }
  EXPECT_EQ(store.stale_reads(), 0u);
}

TEST(KvStore, WeakQuorumProducesStaleReads) {
  // n=3, r=1, w=1: the writer's nearby replica acks instantly, the far
  // replicas learn late; a distant reader hitting its local replica right
  // after the commit sees the old (here: no) value.
  // Geometry: writer at 0 next to DC0; reader at 1000 next to DC2; DC1 in
  // the middle so placements always straddle the gap.
  StoreWorld world({0, 500, 1000, 1, 999}, 3);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  StoreConfig config = config_with(3, 1, 1, 1);
  ReplicatedKvStore store(simulator, network, world.candidates, config, 7);

  std::uint64_t observed_stale = 0;
  for (ObjectId id = 0; id < 10; ++id) {
    store.put(3, world.positions[3], id, "fresh-" + std::to_string(id),
              [&](const PutResult&) {
                store.get(4, world.positions[4], id, [&](const GetResult& r) {
                  observed_stale += r.stale ? 1 : 0;
                });
              });
    simulator.run();
  }
  EXPECT_GT(observed_stale, 0u);
  EXPECT_EQ(store.stale_reads(), observed_stale);
}

TEST(KvStore, LastWriterWinsConvergesAllReplicas) {
  // Two clients write the same key concurrently; once the dust settles all
  // replicas of the group hold the same winning version.
  StoreWorld world({0, 100, 200, 10, 190}, 3);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  ReplicatedKvStore store(simulator, network, world.candidates, config_with(3, 1, 1, 1),
                          3);
  constexpr ObjectId kId = 99;
  store.put(3, world.positions[3], kId, "from-west", [](const PutResult&) {});
  store.put(4, world.positions[4], kId, "from-east", [](const PutResult&) {});
  simulator.run();

  const auto& placement = store.placement_of_group(store.group_of(kId));
  const VersionedValue reference = store.storage_at(placement.front()).read(kId);
  ASSERT_TRUE(reference.exists());
  for (const auto node : placement) {
    const VersionedValue value = store.storage_at(node).read(kId);
    EXPECT_EQ(value.version, reference.version);
    EXPECT_EQ(value.data, reference.data);
  }
  // Same Lamport counter from both writers: the higher writer id wins.
  EXPECT_EQ(reference.data, "from-east");
}

TEST(KvStore, PlacementEpochMigratesGroupData) {
  // All traffic comes from clients clustered at x~0 while the store may
  // have started anywhere; after an epoch every group's placement includes
  // the candidates near 0 and the data is present at the new replicas.
  StoreWorld world({0, 20, 400, 600, 800, 5, 8, 11}, 5);  // clients at 5..7
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  StoreConfig config = config_with(2, 1, 2, 2);
  config.manager.migration.min_relative_gain = 0.01;
  config.manager.migration.min_absolute_gain_ms = 0.1;
  ReplicatedKvStore store(simulator, network, world.candidates, config, 12345);

  Rng rng(5);
  for (int round = 0; round < 200; ++round) {
    const auto client = static_cast<topo::NodeId>(5 + rng.below(3));
    store.put(client, world.positions[client], rng.below(40), "payload",
              [](const PutResult&) {});
  }
  simulator.run();

  const auto reports = store.run_placement_epochs();
  simulator.run();  // let migration transfers land
  ASSERT_EQ(reports.size(), 2u);

  for (ObjectId id = 0; id < 40; ++id) {
    const auto group = store.group_of(id);
    const auto& placement = store.placement_of_group(group);
    // New placements sit near the client cluster.
    for (const auto node : placement) {
      EXPECT_LT(world.positions[node][0], 450.0) << "group " << group;
    }
    // Every current replica can serve every object that was written.
    bool was_written = false;
    for (const auto node : placement) {
      if (store.storage_at(node).read(id).exists()) was_written = true;
    }
    if (was_written) {
      for (const auto node : placement) {
        EXPECT_TRUE(store.storage_at(node).read(id).exists())
            << "object " << id << " missing at dc" << node;
      }
    }
  }
  // Traffic accounting saw the migrations.
  EXPECT_GT(network.stats().bytes[static_cast<std::size_t>(sim::TrafficClass::kMigration)],
            0u);
}

TEST(KvStore, ReadRepairConvergesStaleReplicas) {
  // Writer at x=5 (next to the replica at 0), reader at x=599 (next to the
  // replica at 600). A w=1 write commits in ~5 ms; the replication to the
  // far replicas needs ~150-300 ms more. A reader triggered at commit time
  // with r = n reaches the far replicas first, observes the divergence,
  // returns the newest version, and repairs the stale copies.
  StoreWorld world({0, 300, 600, 5, 599}, 3);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  StoreConfig config = config_with(3, 3, 1, 1);
  config.read_repair = true;
  ReplicatedKvStore store(simulator, network, world.candidates, config, 1);

  // Seed and drain: every replica holds "fresh".
  store.put(3, world.positions[3], 42, "fresh", [](const PutResult&) {});
  simulator.run();

  bool read_done = false;
  store.put(3, world.positions[3], 42, "fresher", [&](const PutResult&) {
    // w=1 commit: the far replicas still hold "fresh". Read from the east.
    store.get(4, world.positions[4], 42, [&](const GetResult& r) {
      EXPECT_EQ(r.value.data, "fresher");  // newest among the r = 3 replies
      read_done = true;
    });
  });
  simulator.run();
  ASSERT_TRUE(read_done);
  EXPECT_GT(store.read_repairs(), 0u);
  // After the dust settles every replica holds the repaired value.
  const auto& placement = store.placement_of_group(store.group_of(42));
  for (const auto node : placement) {
    EXPECT_EQ(store.storage_at(node).read(42).data, "fresher");
  }
}

TEST(KvStore, ReadRepairOffByDefault) {
  StoreWorld world({0, 300, 600, 5}, 3);
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  ReplicatedKvStore store(simulator, network, world.candidates, config_with(3, 3, 1), 1);
  store.put(3, world.positions[3], 1, "x", [](const PutResult&) {});
  simulator.run();
  store.get(3, world.positions[3], 1, [](const GetResult&) {});
  simulator.run();
  EXPECT_EQ(store.read_repairs(), 0u);
}

TEST(KvStore, LatencyReflectsQuorumSize) {
  // Reads that must hear from 3 replicas are slower than reads needing 1.
  StoreWorld world({0, 300, 600, 10}, 3);
  const ObjectId id = 4;
  const auto measure = [&](std::size_t r) {
    sim::Simulator simulator;
    sim::Network network(simulator, world.topology);
    ReplicatedKvStore store(simulator, network, world.candidates,
                            config_with(3, r, 3, 1), 1);
    store.put(3, world.positions[3], id, "v", [](const PutResult&) {});
    simulator.run();
    double latency = 0.0;
    store.get(3, world.positions[3], id,
              [&](const GetResult& res) { latency = res.latency_ms; });
    simulator.run();
    return latency;
  };
  EXPECT_LT(measure(1), measure(3));
}

}  // namespace
}  // namespace geored::store
