// Model-checking test: under sequential operation (each op completes before
// the next is issued) with intersecting quorums, the replicated store must
// behave exactly like a plain map — for any randomized operation sequence,
// any key distribution, any client placement, and across placement epochs
// with data migration happening between ops.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <optional>

#include "common/random.h"
#include "store/kvstore.h"
#include "topology/planetlab_model.h"
#include "netcoord/embedding.h"

namespace geored::store {
namespace {

class KvStoreModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KvStoreModel, SequentialOpsMatchReferenceMap) {
  const std::uint64_t seed = GetParam();

  topo::PlanetLabModelConfig topo_config;
  topo_config.node_count = 40;
  const auto topology = topo::generate_planetlab_like(topo_config, seed);
  coord::GossipConfig gossip;
  gossip.rounds = 64;
  const auto coords = coord::run_rnp(topology, coord::RnpConfig{}, gossip, seed);

  std::vector<place::CandidateInfo> candidates;
  for (std::size_t i = 0; i < 8; ++i) {
    candidates.push_back({static_cast<topo::NodeId>(i), coords[i].position,
                          std::numeric_limits<double>::infinity()});
  }
  std::vector<topo::NodeId> clients;
  for (std::size_t i = 8; i < topology.size(); ++i) {
    clients.push_back(static_cast<topo::NodeId>(i));
  }

  sim::Simulator simulator;
  sim::Network network(simulator, topology);
  StoreConfig config;
  config.quorum = {3, 2, 2};  // r + w > n: quorum intersection
  config.groups = 3;
  config.manager.migration.min_relative_gain = 0.02;
  ReplicatedKvStore store(simulator, network, candidates, config, seed);

  Rng rng(seed * 31 + 1);
  std::map<ObjectId, std::string> reference;
  constexpr std::size_t kKeys = 30;

  for (int op = 0; op < 400; ++op) {
    const auto client = clients[rng.below(clients.size())];
    const Point& coord = coords[client].position;
    const auto key = static_cast<ObjectId>(rng.below(kKeys));

    if (rng.bernoulli(0.4)) {
      const std::string value = "v" + std::to_string(op);
      bool completed = false;
      store.put(client, coord, key, value, [&](const PutResult&) { completed = true; });
      simulator.run();  // sequential: drain before the next op
      ASSERT_TRUE(completed);
      reference[key] = value;
    } else {
      std::optional<GetResult> result;
      store.get(client, coord, key, [&](const GetResult& r) { result = r; });
      simulator.run();
      ASSERT_TRUE(result.has_value());
      const auto expected = reference.find(key);
      if (expected == reference.end()) {
        EXPECT_FALSE(result->value.exists()) << "op " << op << " key " << key;
      } else {
        ASSERT_TRUE(result->value.exists()) << "op " << op << " key " << key;
        EXPECT_EQ(result->value.data, expected->second) << "op " << op;
        EXPECT_FALSE(result->stale);
      }
    }

    // Occasionally run placement epochs (with migrations) mid-sequence; the
    // store must stay sequentially consistent across them.
    if (op % 97 == 96) {
      store.run_placement_epochs();
      simulator.run();
    }
  }
  EXPECT_EQ(store.stale_reads(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvStoreModel, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace geored::store
