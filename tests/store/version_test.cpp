#include "store/version.h"

#include <gtest/gtest.h>

namespace geored::store {
namespace {

TEST(Version, TotalOrder) {
  const Version a{1, 0}, b{2, 0}, c{2, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);  // same counter, higher writer id wins the tie
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (Version{1, 0}));
}

TEST(Version, ZeroIsSmallest) {
  EXPECT_LT(Version::zero(), (Version{1, 0}));
  EXPECT_LT(Version::zero(), (Version{0, 1}));
}

TEST(Version, ToStringFormat) {
  EXPECT_EQ((Version{5, 3}).to_string(), "5@3");
}

TEST(VersionedValue, ExistsOnlyWithRealVersion) {
  VersionedValue empty;
  EXPECT_FALSE(empty.exists());
  VersionedValue value{"x", {1, 0}};
  EXPECT_TRUE(value.exists());
}

TEST(LamportClock, MintsStrictlyIncreasingVersions) {
  LamportClock clock(7);
  const Version a = clock.next();
  const Version b = clock.next();
  EXPECT_LT(a, b);
  EXPECT_EQ(a.writer, 7u);
}

TEST(LamportClock, AdvancesPastObservedVersions) {
  LamportClock clock(1);
  clock.observe({100, 2});
  const Version next = clock.next();
  EXPECT_GT(next, (Version{100, 2}));
  EXPECT_EQ(next.logical, 101u);
  // Observing something old does not rewind.
  clock.observe({5, 9});
  EXPECT_EQ(clock.next().logical, 102u);
}

TEST(LamportClock, ConcurrentWritersResolveDeterministically) {
  // Two writers minting from the same observation produce versions ordered
  // by writer id — LWW convergence needs exactly this determinism.
  LamportClock low(1), high(2);
  low.observe({10, 0});
  high.observe({10, 0});
  const Version a = low.next();
  const Version b = high.next();
  EXPECT_EQ(a.logical, b.logical);
  EXPECT_LT(a, b);
}

}  // namespace
}  // namespace geored::store
