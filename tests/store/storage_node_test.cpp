#include "store/storage_node.h"

#include <gtest/gtest.h>

namespace geored::store {
namespace {

TEST(StorageNode, ReadOfUnknownKeyDoesNotExist) {
  StorageNode node;
  EXPECT_FALSE(node.read(42).exists());
  EXPECT_EQ(node.object_count(), 0u);
}

TEST(StorageNode, LastWriterWinsMerge) {
  StorageNode node;
  EXPECT_TRUE(node.apply_write(1, {"old", {1, 0}}));
  EXPECT_TRUE(node.apply_write(1, {"new", {2, 0}}));
  EXPECT_EQ(node.read(1).data, "new");
  // Older and equal versions are rejected.
  EXPECT_FALSE(node.apply_write(1, {"stale", {1, 5}}));
  EXPECT_FALSE(node.apply_write(1, {"same", {2, 0}}));
  EXPECT_EQ(node.read(1).data, "new");
  EXPECT_EQ(node.object_count(), 1u);
}

TEST(StorageNode, ConvergenceUnderAnyApplyOrder) {
  // Applying the same set of writes in different orders yields one state.
  const std::vector<std::pair<ObjectId, VersionedValue>> writes{
      {1, {"a", {1, 0}}}, {1, {"b", {3, 1}}}, {1, {"c", {2, 2}}},
      {2, {"x", {1, 1}}}, {2, {"y", {1, 2}}}};
  StorageNode forward, backward;
  for (const auto& [id, value] : writes) forward.apply_write(id, value);
  for (auto it = writes.rbegin(); it != writes.rend(); ++it) {
    backward.apply_write(it->first, it->second);
  }
  EXPECT_EQ(forward.read(1).data, backward.read(1).data);
  EXPECT_EQ(forward.read(1).data, "b");
  EXPECT_EQ(forward.read(2).data, backward.read(2).data);
  EXPECT_EQ(forward.read(2).data, "y");  // tie on logical, writer 2 wins
}

TEST(StorageNode, GroupExportDropAndBytes) {
  StorageNode node;
  const auto group_of = [](ObjectId id) { return static_cast<std::uint32_t>(id % 2); };
  node.apply_write(0, {"even0", {1, 0}});
  node.apply_write(2, {"even2!", {1, 0}});
  node.apply_write(1, {"odd", {1, 0}});

  const auto group0 = node.export_group(0, group_of);
  EXPECT_EQ(group0.size(), 2u);
  const auto group1 = node.export_group(1, group_of);
  ASSERT_EQ(group1.size(), 1u);
  EXPECT_EQ(group1[0].second.data, "odd");

  // 5 + 6 bytes of values plus per-object metadata.
  EXPECT_EQ(node.group_bytes(0, group_of),
            5u + 6u + 2u * (sizeof(Version) + sizeof(ObjectId)));

  node.drop_group(0, group_of);
  EXPECT_EQ(node.object_count(), 1u);
  EXPECT_FALSE(node.read(0).exists());
  EXPECT_TRUE(node.read(1).exists());
}

}  // namespace
}  // namespace geored::store
