#include "store/replay.h"

#include <gtest/gtest.h>

#include <limits>

#include "topology/planetlab_model.h"
#include "netcoord/embedding.h"

namespace geored::store {
namespace {

struct ReplayWorld {
  topo::Topology topology;
  std::vector<place::CandidateInfo> candidates;
  std::vector<topo::NodeId> clients;
  std::vector<Point> client_coords;

  ReplayWorld()
      : topology(topo::generate_planetlab_like(
            [] {
              topo::PlanetLabModelConfig config;
              config.node_count = 60;
              return config;
            }(),
            7)) {
    coord::GossipConfig gossip;
    gossip.rounds = 96;
    const auto coords = coord::run_rnp(topology, coord::RnpConfig{}, gossip, 7);
    for (std::size_t i = 0; i < 10; ++i) {
      candidates.push_back({static_cast<topo::NodeId>(i), coords[i].position,
                            std::numeric_limits<double>::infinity()});
    }
    for (std::size_t i = 10; i < topology.size(); ++i) {
      clients.push_back(static_cast<topo::NodeId>(i));
      client_coords.push_back(coords[i].position);
    }
  }
};

wl::Trace small_trace(std::size_t clients, double duration_ms, std::uint64_t seed) {
  wl::SessionTraceConfig config;
  config.clients = clients;
  config.objects = 50;
  config.duration_ms = duration_ms;
  config.session_rate = 1.0 / 20'000.0;
  config.mean_think_time_ms = 500.0;
  config.write_fraction = 0.1;
  return wl::generate_session_trace(config, seed);
}

TEST(Replay, DrivesTheStoreEndToEnd) {
  ReplayWorld world;
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  StoreConfig config;
  config.quorum = {3, 1, 2};
  config.groups = 4;
  ReplicatedKvStore store(simulator, network, world.candidates, config, 1);

  const auto trace = small_trace(world.clients.size(), 180'000.0, 3);
  ASSERT_GT(trace.size(), 50u);
  ReplayConfig replay_config;
  replay_config.placement_epoch_ms = 60'000.0;
  const auto report = replay_trace(simulator, store, trace, world.clients,
                                   world.client_coords, replay_config);

  const auto stats = trace.stats();
  // Every read in the trace completed; writes include the seeding pass.
  EXPECT_EQ(report.reads,
            trace.size() - static_cast<std::size_t>(
                               stats.write_fraction * static_cast<double>(trace.size()) + 0.5));
  EXPECT_GE(report.writes, stats.distinct_objects);
  EXPECT_GT(report.get_mean_ms, 0.0);
  // Epoch ticks land every 60 s up to the trace's last event.
  const auto expected_epochs =
      static_cast<std::size_t>((trace.duration_ms() + 1.0) / 60'000.0);
  EXPECT_EQ(report.epochs, expected_epochs);
  EXPECT_EQ(report.get_mean_by_epoch.size(), expected_epochs);
  // Seeding means reads only miss in the short window where they race a
  // group migration whose data is still in flight (r = 1 here).
  EXPECT_LE(report.not_found_reads, report.reads / 50);
}

TEST(Replay, PlacementEpochsImproveLatencyOnSkewedTraces) {
  // All trace clients map onto a small set of co-located nodes, so placement
  // epochs should pull replicas toward them: later epochs no slower than
  // the first.
  ReplayWorld world;
  // Pick the clients of one region only.
  std::vector<topo::NodeId> regional_clients;
  std::vector<Point> regional_coords;
  const auto target_region = world.topology.node(world.clients.front()).region;
  for (std::size_t i = 0; i < world.clients.size(); ++i) {
    if (world.topology.node(world.clients[i]).region == target_region) {
      regional_clients.push_back(world.clients[i]);
      regional_coords.push_back(world.client_coords[i]);
    }
  }
  ASSERT_GE(regional_clients.size(), 2u);

  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  StoreConfig config;
  config.quorum = {2, 1, 1};
  config.groups = 2;
  config.manager.migration.min_relative_gain = 0.02;
  ReplicatedKvStore store(simulator, network, world.candidates, config, 99);

  const auto trace = small_trace(regional_clients.size(), 300'000.0, 5);
  ReplayConfig replay_config;
  replay_config.placement_epoch_ms = 50'000.0;
  const auto report = replay_trace(simulator, store, trace, regional_clients,
                                   regional_coords, replay_config);
  ASSERT_GE(report.get_mean_by_epoch.size(), 4u);
  const double first = report.get_mean_by_epoch.front();
  const double last = report.get_mean_by_epoch.back();
  EXPECT_LE(last, first + 1e-9);
}

TEST(Replay, StaticPlacementWhenEpochsDisabled) {
  ReplayWorld world;
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  StoreConfig config;
  config.quorum = {2, 1, 1};
  ReplicatedKvStore store(simulator, network, world.candidates, config, 1);
  const auto initial = store.placement_of_group(0);

  const auto trace = small_trace(world.clients.size(), 60'000.0, 9);
  ReplayConfig replay_config;
  replay_config.placement_epoch_ms = 0.0;
  const auto report = replay_trace(simulator, store, trace, world.clients,
                                   world.client_coords, replay_config);
  EXPECT_EQ(report.epochs, 0u);
  EXPECT_EQ(report.migrations, 0u);
  EXPECT_EQ(store.placement_of_group(0), initial);
}

TEST(Replay, EmptyTraceIsANoOp) {
  ReplayWorld world;
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  StoreConfig config;
  ReplicatedKvStore store(simulator, network, world.candidates, config, 1);
  const auto report = replay_trace(simulator, store, wl::Trace{}, world.clients,
                                   world.client_coords);
  EXPECT_EQ(report.reads, 0u);
  EXPECT_EQ(report.writes, 0u);
}

TEST(Replay, ValidatesArguments) {
  ReplayWorld world;
  sim::Simulator simulator;
  sim::Network network(simulator, world.topology);
  StoreConfig config;
  ReplicatedKvStore store(simulator, network, world.candidates, config, 1);
  wl::Trace trace;
  trace.append({0.0, 0, 1, 10, false});
  EXPECT_THROW(replay_trace(simulator, store, trace, {}, {}), std::invalid_argument);
  EXPECT_THROW(
      replay_trace(simulator, store, trace, world.clients, {world.client_coords[0]}),
      std::invalid_argument);
}

}  // namespace
}  // namespace geored::store
