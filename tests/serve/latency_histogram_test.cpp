// LatencyHistogram unit tests: exact bucket edges, rank-based quantiles,
// and the merge property the per-group epoch accounting relies on.
#include "serve/latency_histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"

namespace geored::serve {
namespace {

TEST(LatencyHistogram, BucketEdgesAreExactAndOrdered) {
  double previous = -1.0;
  for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    const double floor = LatencyHistogram::bucket_floor(b);
    ASSERT_GT(floor, previous) << "bucket " << b;
    previous = floor;
    if (b == 0) {
      EXPECT_EQ(floor, 0.0);
      continue;
    }
    // Every edge is (1 + sub/4) * 2^octave — a dyadic rational, exactly
    // representable; ldexp of it round-trips through frexp untouched.
    int exponent = 0;
    const double mantissa = std::frexp(floor, &exponent);
    EXPECT_EQ(std::ldexp(mantissa, exponent), floor);
    // The edge's own value must land in its bucket (half-open buckets).
    if (b < LatencyHistogram::kBuckets - 1) {
      EXPECT_EQ(LatencyHistogram::bucket_index(floor), b) << "edge " << floor;
    }
  }
}

TEST(LatencyHistogram, BucketIndexBracketsTheValue) {
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const double value = std::exp(rng.uniform(-8.0, 14.0));  // ~0.3 us .. ~20 min
    const std::size_t bucket = LatencyHistogram::bucket_index(value);
    ASSERT_LT(bucket, LatencyHistogram::kBuckets);
    EXPECT_LE(LatencyHistogram::bucket_floor(bucket), value);
    if (bucket + 1 < LatencyHistogram::kBuckets) {
      EXPECT_LT(value, LatencyHistogram::bucket_floor(bucket + 1));
    }
  }
}

TEST(LatencyHistogram, DegenerateValuesGoToTheUnderflowBucket) {
  EXPECT_EQ(LatencyHistogram::bucket_index(0.0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(-3.5), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(std::numeric_limits<double>::quiet_NaN()), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(1e-12), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(std::numeric_limits<double>::infinity()),
            LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogram, QuantileUsesCeilRankSemantics) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.quantile(0.5), 0.0);  // empty
  histogram.record(1.0);
  histogram.record(2.0);
  histogram.record(100.0);
  histogram.record(200.0);
  // rank(0.5) = ceil(0.5 * 4) = 2 -> the 2.0 sample's bucket floor.
  EXPECT_EQ(histogram.quantile(0.5), 2.0);
  // rank(0.51) = 3 -> the 100.0 sample's bucket (floor 96).
  EXPECT_EQ(histogram.quantile(0.51), LatencyHistogram::bucket_floor(
                                          LatencyHistogram::bucket_index(100.0)));
  EXPECT_EQ(histogram.quantile(0.0), 1.0);  // rank clamps to 1
  EXPECT_EQ(histogram.quantile(1.0), LatencyHistogram::bucket_floor(
                                         LatencyHistogram::bucket_index(200.0)));
  EXPECT_DOUBLE_EQ(histogram.mean_ms(), (1.0 + 2.0 + 100.0 + 200.0) / 4.0);
}

TEST(LatencyHistogram, MergeEqualsSinglePass) {
  Rng rng(11);
  LatencyHistogram left;
  LatencyHistogram right;
  LatencyHistogram single;
  for (int i = 0; i < 5000; ++i) {
    const double value = std::exp(rng.uniform(-2.0, 8.0));
    (i % 3 == 0 ? left : right).record(value);
    single.record(value);
  }
  LatencyHistogram merged = left;
  merged.merge(right);
  ASSERT_EQ(merged.total(), single.total());
  for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    ASSERT_EQ(merged.bucket_count(b), single.bucket_count(b)) << "bucket " << b;
  }
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(merged.quantile(q), single.quantile(q)) << "q=" << q;
  }
}

TEST(LatencyHistogram, ResetClearsEverything) {
  LatencyHistogram histogram;
  histogram.record(5.0);
  histogram.reset();
  EXPECT_EQ(histogram.total(), 0u);
  EXPECT_EQ(histogram.quantile(0.99), 0.0);
  EXPECT_EQ(histogram.mean_ms(), 0.0);
}

}  // namespace
}  // namespace geored::serve
