// Property tests for the request router, in the style of
// cluster/summarizer_fuzz_test.cpp: a seeded parameterized sweep for CI plus
// a GEORED_FUZZ_ITERS-scaled extended budget.
//
// Invariants checked against an independent brute-force model per request:
//   1. An admitted (non-spilled) request is served by the nearest up replica
//      by squared coordinate distance, ties to the lowest NodeId.
//   2. Admission never exceeds queue_cap at any replica, and a request is
//      never routed to a down replica.
//   3. RequestRouter (SoA + SIMD batch kernels) and the frozen ScalarRouter
//      produce byte-identical decisions, counters, and histogram buckets,
//      and route_batch reproduces a route() loop bit for bit.
//   4. Histogram merge across shards equals a single-pass histogram.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <set>
#include <vector>

#include "common/point.h"
#include "common/point_set.h"
#include "common/random.h"
#include "serve/request_router.h"
#include "serve/router_scalar.h"

namespace geored::serve {
namespace {

struct FuzzWorld {
  ServeConfig config;
  std::vector<ReplicaSpec> replicas;  // ascending NodeId
  std::size_t dim = 0;
};

FuzzWorld make_world(Rng& rng) {
  FuzzWorld world;
  world.config.service_ms = rng.uniform(0.1, 5.0);
  world.config.queue_cap = 1 + static_cast<std::size_t>(rng.uniform(0.0, 8.0));
  world.config.policy = rng.uniform() < 0.5 ? ServeConfig::Policy::kSpill
                                            : ServeConfig::Policy::kReject;
  world.dim = 2 + static_cast<std::size_t>(rng.uniform(0.0, 4.0));
  const std::size_t replica_count = 1 + static_cast<std::size_t>(rng.uniform(0.0, 11.0));
  topo::NodeId node = 0;
  for (std::size_t i = 0; i < replica_count; ++i) {
    node += 1 + static_cast<topo::NodeId>(rng.uniform(0.0, 3.0));  // id gaps
    Point coords(world.dim);
    for (std::size_t d = 0; d < world.dim; ++d) coords[d] = rng.uniform(-50.0, 50.0);
    // Occasionally duplicate an earlier replica's coordinates to force
    // distance ties — the lowest-NodeId winner must be deterministic.
    if (!world.replicas.empty() && rng.uniform() < 0.2) {
      const auto& twin =
          world.replicas[static_cast<std::size_t>(rng.uniform(0.0, 0.999) *
                                                  static_cast<double>(world.replicas.size()))];
      coords = twin.coords;
    }
    world.replicas.push_back({node, coords});
  }
  return world;
}

/// Independent model: nearest up replica by squared distance, first winner
/// (lowest NodeId) on ties. Returns replicas.size() when everything is down.
std::size_t brute_force_nearest(const FuzzWorld& world, const std::set<topo::NodeId>& down,
                                const Point& query) {
  std::size_t best = world.replicas.size();
  double best_sq = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < world.replicas.size(); ++i) {
    if (down.count(world.replicas[i].node) != 0) continue;
    double sq = 0.0;
    for (std::size_t d = 0; d < world.dim; ++d) {
      const double delta = query[d] - world.replicas[i].coords[d];
      sq += delta * delta;
    }
    if (sq < best_sq) {
      best_sq = sq;
      best = i;
    }
  }
  return best;
}

void expect_same_decision(const RouteDecision& got, const RouteDecision& want,
                          std::size_t request) {
  ASSERT_EQ(static_cast<int>(got.outcome), static_cast<int>(want.outcome))
      << "request " << request;
  if (got.admitted()) {
    ASSERT_EQ(got.replica, want.replica) << "request " << request;
    ASSERT_EQ(got.wait_ms, want.wait_ms) << "request " << request;
    ASSERT_EQ(got.dist_sq, want.dist_sq) << "request " << request;
  }
}

void expect_same_state(const RequestRouter& router, const ScalarRouter& scalar) {
  ASSERT_EQ(router.stats().requests, scalar.stats().requests);
  ASSERT_EQ(router.stats().admitted, scalar.stats().admitted);
  ASSERT_EQ(router.stats().rejected, scalar.stats().rejected);
  ASSERT_EQ(router.stats().spilled, scalar.stats().spilled);
  ASSERT_EQ(router.stats().lost, scalar.stats().lost);
  ASSERT_EQ(router.histogram().total(), scalar.histogram().total());
  for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    ASSERT_EQ(router.histogram().bucket_count(b), scalar.histogram().bucket_count(b))
        << "bucket " << b;
  }
}

void run_router_sweep(std::uint64_t seed) {
  Rng rng(seed);
  FuzzWorld world = make_world(rng);

  RequestRouter router(world.config);
  ScalarRouter scalar(world.config);
  router.set_replicas(world.replicas);
  scalar.set_replicas(world.replicas);

  // Shard the latency stream into two histograms on the side; their merge
  // must equal the router's single-pass histogram.
  LatencyHistogram shard_a;
  LatencyHistogram shard_b;

  std::set<topo::NodeId> down;
  double now = 0.0;
  const std::size_t requests = 400;
  for (std::size_t r = 0; r < requests; ++r) {
    if (r % 50 == 0) {
      // Re-roll the down set (sometimes everything: the kLost path).
      down.clear();
      const double down_probability = rng.uniform() < 0.1 ? 1.0 : rng.uniform(0.0, 0.6);
      for (const auto& replica : world.replicas) {
        if (rng.uniform() < down_probability) down.insert(replica.node);
      }
      router.set_down(down);
      scalar.set_down(down);
    }
    now += rng.exponential(1.0 / world.config.service_ms);
    Point query(world.dim);
    for (std::size_t d = 0; d < world.dim; ++d) query[d] = rng.uniform(-60.0, 60.0);

    const RouteDecision decision = router.route(query, now);
    const RouteDecision reference = scalar.route(query, now);
    expect_same_decision(decision, reference, r);
    if (::testing::Test::HasFatalFailure()) return;

    const std::size_t nearest = brute_force_nearest(world, down, query);
    if (nearest == world.replicas.size()) {
      ASSERT_EQ(static_cast<int>(decision.outcome),
                static_cast<int>(RouteDecision::Outcome::kLost));
    } else if (decision.outcome == RouteDecision::Outcome::kAdmitted) {
      // Invariant 1: admitted-at-primary == brute-force nearest up replica.
      ASSERT_EQ(decision.replica, world.replicas[nearest].node) << "request " << r;
    }
    if (decision.admitted()) {
      // Invariant 2: never a down replica, never beyond the cap.
      ASSERT_EQ(down.count(decision.replica), 0u) << "request " << r;
      const double rtt = rng.uniform(1.0, 200.0);
      const double latency = router.complete(decision, rtt);
      const double scalar_latency = scalar.complete(reference, rtt);
      ASSERT_EQ(latency, scalar_latency);
      ASSERT_EQ(latency, rtt + decision.wait_ms + world.config.service_ms);
      (r % 2 == 0 ? shard_a : shard_b).record(latency);
    }
    for (const auto& replica : world.replicas) {
      ASSERT_LE(router.resident_at(replica.node, now), world.config.queue_cap)
          << "request " << r << " node " << replica.node;
    }
    if (::testing::Test::HasFatalFailure()) return;
  }

  expect_same_state(router, scalar);
  if (::testing::Test::HasFatalFailure()) return;

  // Invariant 4: sharded histograms merge to the single-pass histogram.
  LatencyHistogram merged = shard_a;
  merged.merge(shard_b);
  ASSERT_EQ(merged.total(), router.histogram().total());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    ASSERT_EQ(merged.quantile(q), router.histogram().quantile(q)) << "q=" << q;
  }

  // Invariant 3 (batch): replay the same world through route_batch in
  // down-set-stable segments; decisions must be bit-identical to a fresh
  // route() loop. Fresh routers so queue state starts equal.
  RequestRouter batch_router(world.config);
  RequestRouter loop_router(world.config);
  batch_router.set_replicas(world.replicas);
  loop_router.set_replicas(world.replicas);
  Rng replay = rng.fork(1);
  double batch_now = 0.0;
  for (std::size_t segment = 0; segment < 4; ++segment) {
    std::set<topo::NodeId> segment_down;
    for (const auto& replica : world.replicas) {
      if (replay.uniform() < 0.3) segment_down.insert(replica.node);
    }
    batch_router.set_down(segment_down);
    loop_router.set_down(segment_down);

    const std::size_t batch_size = 1 + static_cast<std::size_t>(replay.uniform(0.0, 96.0));
    PointSet queries(world.dim);
    std::vector<double> nows;
    for (std::size_t j = 0; j < batch_size; ++j) {
      batch_now += replay.exponential(2.0 / world.config.service_ms);
      nows.push_back(batch_now);
      Point query(world.dim);
      for (std::size_t d = 0; d < world.dim; ++d) query[d] = replay.uniform(-60.0, 60.0);
      queries.push_back(query);
    }
    std::vector<RouteDecision> batch_decisions(batch_size);
    batch_router.route_batch(queries, nullptr, batch_size, nows.data(), batch_decisions.data());
    for (std::size_t j = 0; j < batch_size; ++j) {
      const RouteDecision looped = loop_router.route(queries.row(j), nows[j]);
      expect_same_decision(batch_decisions[j], looped, j);
      if (::testing::Test::HasFatalFailure()) return;
      if (looped.admitted()) {
        const double rtt = 1.0 + batch_decisions[j].dist_sq;
        batch_router.complete(batch_decisions[j], rtt);
        loop_router.complete(looped, rtt);
      }
    }
  }
  ASSERT_EQ(batch_router.stats().admitted, loop_router.stats().admitted);
  ASSERT_EQ(batch_router.histogram().total(), loop_router.histogram().total());
  for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    ASSERT_EQ(batch_router.histogram().bucket_count(b),
              loop_router.histogram().bucket_count(b));
  }
}

class RouterFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterFuzz, InvariantsHoldOnSeededWorlds) { run_router_sweep(GetParam()); }

INSTANTIATE_TEST_SUITE_P(Seeds, RouterFuzz, ::testing::Range<std::uint64_t>(1, 17));

// Extended sweep whose budget scales with GEORED_FUZZ_ITERS (default keeps
// CI fast; nightly runs crank it up).
TEST(RouterFuzzBudget, ExtendedRandomSweep) {
  std::uint64_t iters = 5;
  if (const char* env = std::getenv("GEORED_FUZZ_ITERS")) {
    iters = std::strtoull(env, nullptr, 10);
  }
  for (std::uint64_t seed = 1000; seed < 1000 + iters; ++seed) {
    run_router_sweep(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Deterministic tie-break: two replicas at the same coordinates — the lower
// NodeId must win regardless of spec order.
TEST(RouterProperty, TiesGoToTheLowestNodeId) {
  ServeConfig config;
  config.queue_cap = 4;
  RequestRouter router(config);
  const Point shared{1.0, 2.0};
  router.set_replicas({{9, shared}, {3, shared}, {7, {40.0, 40.0}}});
  const RouteDecision decision = router.route(Point{1.0, 2.0}, 0.0);
  ASSERT_TRUE(decision.admitted());
  EXPECT_EQ(decision.replica, 3u);
}

// A full primary under kSpill serves from the second-nearest; under kReject
// it rejects. Either way the cap holds exactly.
TEST(RouterProperty, FullQueueSpillsOrRejectsAtTheCap) {
  for (const auto policy : {ServeConfig::Policy::kSpill, ServeConfig::Policy::kReject}) {
    ServeConfig config;
    config.service_ms = 10.0;
    config.queue_cap = 2;
    config.policy = policy;
    RequestRouter router(config);
    router.set_replicas({{1, {0.0, 0.0}}, {2, {5.0, 0.0}}});
    const Point near_one{0.1, 0.0};
    ASSERT_EQ(router.route(near_one, 0.0).replica, 1u);
    ASSERT_EQ(router.route(near_one, 0.0).replica, 1u);
    EXPECT_EQ(router.resident_at(1, 0.0), 2u);
    const RouteDecision third = router.route(near_one, 0.0);
    if (policy == ServeConfig::Policy::kSpill) {
      EXPECT_EQ(static_cast<int>(third.outcome),
                static_cast<int>(RouteDecision::Outcome::kSpilled));
      EXPECT_EQ(third.replica, 2u);
    } else {
      EXPECT_EQ(static_cast<int>(third.outcome),
                static_cast<int>(RouteDecision::Outcome::kRejected));
    }
    EXPECT_EQ(router.resident_at(1, 0.0), 2u);  // cap never exceeded
  }
}

}  // namespace
}  // namespace geored::serve
