// Outage × routing interaction: the router must never send a request to a
// down replica, queue state must survive an outage (virtual-time draining
// resumes when the replica returns), and at scenario level an outage must
// show up as a tail-latency spike that clears within one epoch of the
// outage clearing.
#include <gtest/gtest.h>

#include <set>

#include "common/point.h"
#include "scenario/config.h"
#include "scenario/runner.h"
#include "serve/request_router.h"

namespace geored::serve {
namespace {

TEST(OutageRouting, NeverRoutesToADownReplica) {
  ServeConfig config;
  config.service_ms = 1.0;
  config.queue_cap = 4;
  RequestRouter router(config);
  router.set_replicas({{1, {0.0, 0.0}}, {2, {10.0, 0.0}}, {3, {20.0, 0.0}}});

  // Node 1 is nearest to the origin; take it down and the next-nearest up
  // replica must win instead.
  router.set_down({1});
  const Point origin{0.0, 0.0};
  RouteDecision decision = router.route(origin, 0.0);
  ASSERT_TRUE(decision.admitted());
  EXPECT_EQ(decision.replica, 2u);

  router.set_down({1, 2});
  decision = router.route(origin, 1.0);
  ASSERT_TRUE(decision.admitted());
  EXPECT_EQ(decision.replica, 3u);

  router.set_down({1, 2, 3});
  decision = router.route(origin, 2.0);
  EXPECT_EQ(static_cast<int>(decision.outcome),
            static_cast<int>(RouteDecision::Outcome::kLost));
  EXPECT_EQ(router.stats().lost, 1u);

  // Recovery: clearing the down set restores the original nearest.
  router.set_down({});
  decision = router.route(origin, 3.0);
  ASSERT_TRUE(decision.admitted());
  EXPECT_EQ(decision.replica, 1u);
}

TEST(OutageRouting, SpillNeverTargetsADownReplica) {
  ServeConfig config;
  config.service_ms = 100.0;
  config.queue_cap = 1;
  config.policy = ServeConfig::Policy::kSpill;
  RequestRouter router(config);
  router.set_replicas({{1, {0.0, 0.0}}, {2, {1.0, 0.0}}, {3, {50.0, 0.0}}});
  // Node 2 (the natural spill target from a full node 1) is down: the spill
  // must go to node 3 instead.
  router.set_down({2});
  const Point origin{0.0, 0.0};
  ASSERT_EQ(router.route(origin, 0.0).replica, 1u);  // fills node 1's queue
  const RouteDecision spilled = router.route(origin, 0.0);
  ASSERT_EQ(static_cast<int>(spilled.outcome),
            static_cast<int>(RouteDecision::Outcome::kSpilled));
  EXPECT_EQ(spilled.replica, 3u);
}

TEST(OutageRouting, QueueStateSurvivesAnOutage) {
  ServeConfig config;
  config.service_ms = 10.0;
  config.queue_cap = 8;
  RequestRouter router(config);
  router.set_replicas({{1, {0.0, 0.0}}, {2, {100.0, 0.0}}});
  const Point origin{0.0, 0.0};
  // Two requests queue at node 1: departures at 10 and 20 virtual ms.
  ASSERT_TRUE(router.route(origin, 0.0).admitted());
  ASSERT_TRUE(router.route(origin, 0.0).admitted());
  EXPECT_EQ(router.resident_at(1, 0.0), 2u);

  // Down and back up before the first departure: both still resident.
  router.set_down({1});
  router.set_down({});
  EXPECT_EQ(router.resident_at(1, 5.0), 2u);
  // The virtual timeline kept running while down: by t=15 one departed.
  const RouteDecision next = router.route(origin, 15.0);
  ASSERT_TRUE(next.admitted());
  EXPECT_EQ(next.replica, 1u);
  EXPECT_EQ(next.wait_ms, 5.0);  // behind the t=20 departure
}

// Scenario level: a mid-run outage of a serving data center forces
// spillover to farther replicas, which must surface as a p999 spike during
// the outage epochs and clear within one epoch of the outage window ending.
TEST(OutageRouting, ScenarioOutageRaisesTailLatencyAndRecovers) {
  using namespace geored;
  scenario::ScenarioConfig config = scenario::parse_scenario(R"({
    "name": "outage_tail",
    "seed": 11,
    "epochs": 5,
    "epoch_ms": 20000,
    "topology": {"nodes": 60, "dcs": 8, "seed": 5},
    "coords": {"system": "rnp", "rounds": 64, "seed": 7},
    "workload": {"kind": "uniform", "mean_rate": 0.002, "sigma": 0.2, "seed": 3},
    "fleet": {"groups": 2, "replica_budget": 5, "min_degree": 1, "max_degree": 3},
    "routing": "coords",
    "serve": {"service_ms": 8.0, "queue_cap": 3, "policy": "spill"},
    "events": [
      {"kind": "outage", "node": 0, "start_ms": 40000, "end_ms": 60000},
      {"kind": "outage", "node": 1, "start_ms": 40000, "end_ms": 60000},
      {"kind": "outage", "node": 2, "start_ms": 40000, "end_ms": 60000}
    ]
  })");
  const scenario::ScenarioResult result = scenario::run_scenario(config);
  ASSERT_EQ(result.epochs.size(), 5u);
  for (const auto& row : result.epochs) {
    ASSERT_TRUE(row.serve.enabled);
    ASSERT_GT(row.serve.admitted, 0u) << "epoch " << row.epoch;
  }
  // The outage window [40000, 60000) is exactly epoch 2's window: that
  // epoch runs with three of eight data centers down.
  const auto& before = result.epochs[1];
  const auto& outage = result.epochs[2];
  const auto& after = result.epochs[3];
  const auto& recovered = result.epochs[4];
  EXPECT_FALSE(outage.excluded.empty());
  // The router reacts to the clearing immediately: epoch 3 excludes nothing
  // and admission pressure is gone.
  EXPECT_TRUE(after.excluded.empty());
  EXPECT_GT(outage.serve.rejected, 0u);
  EXPECT_EQ(after.serve.rejected, 0u);
  // Losing three of eight data centers concentrates traffic on the
  // survivors: the tail rises during the outage...
  EXPECT_GT(outage.serve.p999_ms, before.serve.p999_ms);
  // ...and returns to the pre-outage baseline within one epoch of the
  // placement migrating back. Epoch 3 still serves from the outage-shifted
  // placement (migration back is adopted at its end-of-epoch tick), so
  // epoch 4 is the first full epoch on the restored placement.
  EXPECT_LE(after.serve.p999_ms, outage.serve.p999_ms);
  EXPECT_LT(recovered.serve.p999_ms, outage.serve.p999_ms);
  EXPECT_LE(recovered.serve.p999_ms, before.serve.p999_ms);
  // Spill-to-second-nearest actually fires somewhere in the run.
  std::uint64_t total_spilled = 0;
  for (const auto& row : result.epochs) total_spilled += row.serve.spilled;
  EXPECT_GT(total_spilled, 0u);
}

}  // namespace
}  // namespace geored::serve
