#include "scenario/runner.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/thread_pool.h"

namespace geored::scenario {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A small fast world shared by the inline scenarios below.
constexpr const char* kSmallWorld = R"(
  "topology": {"nodes": 50, "dcs": 6, "seed": 5},
  "coords": {"system": "rnp", "rounds": 32, "seed": 7},
  "workload": {"kind": "uniform", "mean_rate": 0.001, "seed": 3},
  "manager": {"replication_degree": 2, "micro_clusters": 6})";

TEST(ScenarioRunner, GoldenTranscriptMatches) {
  // The shipped CI smoke scenario must reproduce its pinned transcript
  // byte for byte; CI runs the same comparison through the CLI. A diff here
  // means the engine's observable behavior changed — regenerate the golden
  // (geored scenario run scenarios/mini_smoke.json --out ...) only when the
  // change is intended, and say so in the commit message.
  const auto config = load_scenario_file(GEORED_SCENARIO_DIR "/mini_smoke.json");
  const auto result = run_scenario(config);
  EXPECT_EQ(result.jsonl(), slurp(GEORED_SCENARIO_GOLDEN_DIR "/mini_smoke.jsonl"));
}

TEST(ScenarioRunner, JsonlIsByteIdenticalAcrossThreadCounts) {
  const auto config = load_scenario_file(GEORED_SCENARIO_DIR "/mini_smoke.json");
  ThreadPool::set_global_thread_count(1);
  const auto serial = run_scenario(config).jsonl();
  ThreadPool::set_global_thread_count(4);
  const auto parallel = run_scenario(config).jsonl();
  ThreadPool::set_global_thread_count(0);  // back to the default
  EXPECT_EQ(serial, parallel);
}

TEST(ScenarioRunner, RepeatedRunsAreIdentical) {
  const auto config = load_scenario_file(GEORED_SCENARIO_DIR "/mini_smoke.json");
  EXPECT_EQ(run_scenario(config).jsonl(), run_scenario(config).jsonl());
}

TEST(ScenarioRunner, TimingsSidecarCoversEveryEpochAndStaysOutOfTranscript) {
  const auto config = load_scenario_file(GEORED_SCENARIO_DIR "/mini_smoke.json");
  const auto result = run_scenario(config);
  const std::string timings = result.timings_jsonl();
  // One json object per epoch, every stage key present, totals additive.
  std::istringstream lines(timings);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"epoch\":" + std::to_string(count)), std::string::npos) << line;
    for (const char* key : {"\"t_ms\":", "\"ingest_flush_ms\":", "\"collect_ms\":",
                            "\"propose_ms\":", "\"gate_ms\":", "\"adopt_ms\":",
                            "\"total_ms\":"}) {
      EXPECT_NE(line.find(key), std::string::npos) << line;
    }
    ++count;
  }
  EXPECT_EQ(count, result.epochs.size());
  for (const auto& row : result.epochs) {
    EXPECT_GE(row.stage_totals.ingest_flush_ms, 0.0);
    EXPECT_GE(row.stage_totals.total_ms(), row.stage_totals.propose_ms);
  }
  // The sidecar must never leak into the deterministic transcript: the
  // golden comparison above pins jsonl() bytes, and no stage key may appear.
  EXPECT_EQ(result.jsonl().find("ingest_flush_ms"), std::string::npos);
}

TEST(ScenarioRunner, FlashCrowdSpikesAndRecovers) {
  std::ostringstream text;
  text << R"({"name": "spike", "seed": 4, "epochs": 6, "epoch_ms": 20000,)"
       << kSmallWorld << R"(, "events": [
            {"kind": "flash_crowd", "region": "*", "start_ms": 40000,
             "end_ms": 80000, "factor": 8}]})";
  const auto result = run_scenario(parse_scenario(text.str()));
  ASSERT_EQ(result.epochs.size(), 6u);
  // Epochs 2 and 3 sit inside the spike window: roughly 8x the quiet rate.
  const double quiet = static_cast<double>(result.epochs[0].accesses);
  const double spike = static_cast<double>(result.epochs[2].accesses);
  const double after = static_cast<double>(result.epochs[4].accesses);
  EXPECT_GT(spike, 4.0 * quiet);
  EXPECT_LT(after, 2.0 * quiet);  // recovery: demand settles back
}

TEST(ScenarioRunner, OutageExcludesNodeAndAccountsLostSources) {
  std::ostringstream text;
  text << R"({"name": "outage", "seed": 4, "epochs": 4, "epoch_ms": 20000,)"
       << kSmallWorld << R"(, "events": [
            {"kind": "outage", "node": 0, "start_ms": 20000, "end_ms": 40000}]})";
  const auto result = run_scenario(parse_scenario(text.str()));
  ASSERT_EQ(result.epochs.size(), 4u);  // every epoch completed
  for (const auto& row : result.epochs) {
    if (row.epoch == 1) {
      ASSERT_EQ(row.excluded.size(), 1u);
      EXPECT_EQ(row.excluded[0], 0u);
      // The excluded data center held a replica in this small world, so its
      // summaries count as lost — never silently dropped.
      EXPECT_GE(row.lost_sources, 1u);
    } else {
      EXPECT_TRUE(row.excluded.empty()) << "epoch " << row.epoch;
      EXPECT_EQ(row.lost_sources, 0u) << "epoch " << row.epoch;
    }
    EXPECT_EQ(row.lost_accesses, 0u);  // routing always found a live replica
  }
}

TEST(ScenarioRunner, PopulationDriftChangesActiveClients) {
  std::ostringstream text;
  text << R"({"name": "drift", "seed": 4, "epochs": 4, "epoch_ms": 20000,)"
       << kSmallWorld << R"(, "initial_active_fraction": 0.5, "events": [
            {"kind": "population", "region": "*", "at_ms": 20000, "add": 6},
            {"kind": "population", "region": "*", "at_ms": 60000, "retire": 10}]})";
  const auto result = run_scenario(parse_scenario(text.str()));
  ASSERT_EQ(result.epochs.size(), 4u);
  EXPECT_EQ(result.epochs[0].active_clients, 22u);  // ceil(0.5 * 44)
  EXPECT_EQ(result.epochs[1].active_clients, 28u);
  EXPECT_EQ(result.epochs[2].active_clients, 28u);
  EXPECT_EQ(result.epochs[3].active_clients, 18u);
}

TEST(ScenarioRunner, ServeBlockEmitsConsistentCountersAndQuantiles) {
  std::ostringstream text;
  text << R"({"name": "serve", "seed": 4, "epochs": 3, "epoch_ms": 20000,)"
       << kSmallWorld
       << R"(, "serve": {"service_ms": 1.0, "queue_cap": 8, "policy": "spill"}})";
  const auto result = run_scenario(parse_scenario(text.str()));
  ASSERT_EQ(result.epochs.size(), 3u);
  for (const auto& row : result.epochs) {
    ASSERT_TRUE(row.serve.enabled);
    // Requests decompose exactly; admitted requests are the recorded
    // accesses (rejected ones never reach the manager).
    EXPECT_EQ(row.serve.requests, row.serve.admitted + row.serve.rejected);
    EXPECT_EQ(row.serve.admitted, row.accesses);
    EXPECT_GE(row.serve.admitted, row.serve.spilled);
    // Quantiles are monotone and the mean sits inside the range.
    EXPECT_LE(row.serve.p50_ms, row.serve.p99_ms);
    EXPECT_LE(row.serve.p99_ms, row.serve.p999_ms);
    EXPECT_GT(row.serve.mean_ms, 0.0);
  }
  // The serve record shows up in the jsonl line with its fixed key order.
  EXPECT_NE(result.jsonl_lines[0].find("\"serve\":{\"requests\":"), std::string::npos);
}

TEST(ScenarioRunner, ServelessScenarioEmitsNoServeRecord) {
  std::ostringstream text;
  text << R"({"name": "quiet", "seed": 4, "epochs": 1, "epoch_ms": 20000,)"
       << kSmallWorld << "}";
  const auto result = run_scenario(parse_scenario(text.str()));
  EXPECT_FALSE(result.epochs[0].serve.enabled);
  // Pre-serve transcripts stay byte-identical: no "serve" key at all.
  EXPECT_EQ(result.jsonl_lines[0].find("\"serve\""), std::string::npos);
}

TEST(ScenarioRunner, UnmatchedRegionPatternThrowsBadReference) {
  std::ostringstream text;
  text << R"({"name": "bad", "seed": 4, "epochs": 4, "epoch_ms": 20000,)"
       << kSmallWorld << R"(, "events": [
            {"kind": "flash_crowd", "region": "atlantis-*", "start_ms": 0,
             "end_ms": 20000, "factor": 2}]})";
  // The pattern is well-formed, so this surfaces at run time when it
  // matches no region of the generated topology.
  const auto config = parse_scenario(text.str());
  try {
    run_scenario(config);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& error) {
    EXPECT_EQ(error.kind(), ScenarioError::Kind::kBadReference);
  }
}

TEST(ScenarioRunner, GroupWeightShiftsBudgetTowardFavoredGroup) {
  std::ostringstream text;
  text << R"({"name": "weights", "seed": 4, "epochs": 6, "epoch_ms": 20000,)"
       << kSmallWorld
       << R"(, "fleet": {"groups": 3, "replica_budget": 7, "min_degree": 1,
                         "max_degree": 4},
              "events": [
                {"kind": "group_weight", "at_ms": 40000, "group": 1, "weight": 8.0}]})";
  const auto result = run_scenario(parse_scenario(text.str()));
  for (const auto& row : result.epochs) {
    EXPECT_EQ(row.total_degree, 7u) << "epoch " << row.epoch;  // budget holds
    ASSERT_EQ(row.degrees.size(), 3u);
  }
  // Once the weight lands, the favored group must hold at least as many
  // replicas as either neighbor (uniform demand, 8x priority).
  const auto& last = result.epochs.back().degrees;
  EXPECT_GE(last[1], last[0]);
  EXPECT_GE(last[1], last[2]);
}

}  // namespace
}  // namespace geored::scenario
