#include "scenario/config.h"

#include <gtest/gtest.h>

#include <string>

namespace geored::scenario {
namespace {

/// The smallest valid scenario; tests splice broken fragments into it.
constexpr const char* kMinimal = R"({"name": "t"})";

/// Asserts `text` fails to parse with the given error kind and (when
/// non-empty) JSON path, and returns the error for message checks.
ScenarioError expect_error(const std::string& text, ScenarioError::Kind kind,
                           const std::string& path = "") {
  try {
    parse_scenario(text);
  } catch (const ScenarioError& error) {
    EXPECT_EQ(error.kind(), kind) << error.what();
    if (!path.empty()) EXPECT_EQ(error.path(), path) << error.what();
    return error;
  }
  ADD_FAILURE() << "expected ScenarioError for: " << text;
  return ScenarioError(ScenarioError::Kind::kSyntax, "", "unreached");
}

TEST(ScenarioConfig, MinimalScenarioParsesWithDefaults) {
  const auto config = parse_scenario(kMinimal);
  EXPECT_EQ(config.name, "t");
  EXPECT_EQ(config.seed, 1u);
  EXPECT_EQ(config.epochs, 8u);
  EXPECT_DOUBLE_EQ(config.epoch_ms, 30'000.0);
  EXPECT_EQ(config.topology.nodes, 100u);
  EXPECT_EQ(config.topology.dcs, 12u);
  EXPECT_EQ(config.workload.kind, "uniform");
  EXPECT_EQ(config.fleet.groups, 1u);
  EXPECT_EQ(config.collector, "direct");
  EXPECT_EQ(config.routing, "coords");
  EXPECT_DOUBLE_EQ(config.initial_active_fraction, 1.0);
  EXPECT_TRUE(config.events.empty());
}

TEST(ScenarioConfig, MalformedJsonIsSyntaxErrorWithPosition) {
  const auto error = expect_error(R"({"name": "t",})", ScenarioError::Kind::kSyntax);
  // Syntax errors carry the line:column of the failure.
  EXPECT_NE(std::string(error.what()).find("line"), std::string::npos);
}

TEST(ScenarioConfig, DuplicateKeyIsSyntaxError) {
  expect_error(R"({"name": "a", "name": "b"})", ScenarioError::Kind::kSyntax);
}

TEST(ScenarioConfig, TrailingContentIsSyntaxError) {
  expect_error(R"({"name": "t"} extra)", ScenarioError::Kind::kSyntax);
}

TEST(ScenarioConfig, UnknownTopLevelKeyIsRejectedWithPath) {
  expect_error(R"({"name": "t", "epoch_length": 5})",
               ScenarioError::Kind::kUnknownKey, "epoch_length");
}

TEST(ScenarioConfig, UnknownNestedKeyIsRejectedWithPath) {
  expect_error(R"({"name": "t", "manager": {"degree": 3}})",
               ScenarioError::Kind::kUnknownKey, "manager.degree");
}

TEST(ScenarioConfig, UnknownEventKeyIsRejectedWithPath) {
  expect_error(
      R"({"name": "t", "events": [
           {"kind": "flash_crowd", "start_ms": 0, "end_ms": 1, "magnitude": 2}]})",
      ScenarioError::Kind::kUnknownKey, "events[0].magnitude");
}

TEST(ScenarioConfig, MissingNameIsBadValue) {
  expect_error(R"({"epochs": 4})", ScenarioError::Kind::kBadValue, "name");
}

TEST(ScenarioConfig, ZeroEpochsIsBadValue) {
  expect_error(R"({"name": "t", "epochs": 0})", ScenarioError::Kind::kBadValue,
               "epochs");
}

TEST(ScenarioConfig, UnknownCollectorIsBadValue) {
  expect_error(R"({"name": "t", "collector": "carrier-pigeon"})",
               ScenarioError::Kind::kBadValue, "collector");
}

TEST(ScenarioConfig, RpcCollectorRequiresSingleGroup) {
  expect_error(R"({"name": "t", "collector": "rpc", "fleet": {"groups": 2}})",
               ScenarioError::Kind::kBadValue, "collector");
}

TEST(ScenarioConfig, NonPositiveFlashFactorIsBadValue) {
  expect_error(
      R"({"name": "t", "events": [
           {"kind": "flash_crowd", "start_ms": 0, "end_ms": 1000, "factor": 0}]})",
      ScenarioError::Kind::kBadValue, "events[0].factor");
}

TEST(ScenarioConfig, ZeroActiveFractionIsBadValue) {
  expect_error(R"({"name": "t", "initial_active_fraction": 0})",
               ScenarioError::Kind::kBadValue, "initial_active_fraction");
}

TEST(ScenarioConfig, GroupWeightForMissingGroupIsBadReference) {
  expect_error(
      R"({"name": "t", "fleet": {"groups": 2}, "events": [
           {"kind": "group_weight", "at_ms": 0, "group": 2, "weight": 3}]})",
      ScenarioError::Kind::kBadReference, "events[0].group");
}

TEST(ScenarioConfig, OutageOfNonDataCenterNodeIsBadReference) {
  expect_error(
      R"({"name": "t", "topology": {"dcs": 12}, "events": [
           {"kind": "outage", "node": 12, "start_ms": 0, "end_ms": 1000}]})",
      ScenarioError::Kind::kBadReference, "events[0].node");
}

TEST(ScenarioConfig, OutOfOrderEventsAreBadSchedule) {
  expect_error(
      R"({"name": "t", "events": [
           {"kind": "population", "at_ms": 60000, "add": 1},
           {"kind": "population", "at_ms": 30000, "add": 1}]})",
      ScenarioError::Kind::kBadSchedule, "events[1]");
}

TEST(ScenarioConfig, OverlappingSameTargetWindowsAreBadSchedule) {
  expect_error(
      R"({"name": "t", "events": [
           {"kind": "flash_crowd", "region": "eu-*", "start_ms": 0, "end_ms": 60000, "factor": 2},
           {"kind": "flash_crowd", "region": "eu-*", "start_ms": 30000, "end_ms": 90000, "factor": 3}]})",
      ScenarioError::Kind::kBadSchedule, "events[1]");
}

TEST(ScenarioConfig, DisjointSameTargetWindowsAreAccepted) {
  const auto config = parse_scenario(
      R"({"name": "t", "events": [
           {"kind": "flash_crowd", "region": "eu-*", "start_ms": 0, "end_ms": 30000, "factor": 2},
           {"kind": "flash_crowd", "region": "eu-*", "start_ms": 30000, "end_ms": 60000, "factor": 3}]})");
  EXPECT_EQ(config.events.size(), 2u);
}

TEST(ScenarioConfig, SecondDiurnalOnSameTargetIsBadSchedule) {
  expect_error(
      R"({"name": "t", "events": [
           {"kind": "diurnal", "region": "na-*", "period_ms": 60000},
           {"kind": "diurnal", "region": "na-*", "period_ms": 30000}]})",
      ScenarioError::Kind::kBadSchedule, "events[1]");
}

TEST(ScenarioConfig, EventAtHorizonIsBadSchedule) {
  // 8 epochs x 30 s = 240 s horizon; an event effective exactly there can
  // never be observed.
  expect_error(
      R"({"name": "t", "events": [
           {"kind": "population", "at_ms": 240000, "add": 1}]})",
      ScenarioError::Kind::kBadSchedule, "events[0]");
}

TEST(ScenarioConfig, InvertedWindowIsBadSchedule) {
  expect_error(
      R"({"name": "t", "events": [
           {"kind": "outage", "node": 0, "start_ms": 5000, "end_ms": 5000}]})",
      ScenarioError::Kind::kBadSchedule, "events[0].end_ms");
}

TEST(ScenarioConfig, OutageNeedsExactlyOneTarget) {
  expect_error(
      R"({"name": "t", "events": [
           {"kind": "outage", "start_ms": 0, "end_ms": 1000}]})",
      ScenarioError::Kind::kBadValue, "events[0]");
  expect_error(
      R"({"name": "t", "events": [
           {"kind": "outage", "node": 0, "region": "na-*", "start_ms": 0, "end_ms": 1000}]})",
      ScenarioError::Kind::kBadValue, "events[0]");
}

TEST(ScenarioConfig, ServeBlockParsesAndDefaultsOff) {
  EXPECT_FALSE(parse_scenario(kMinimal).serve.enabled);
  const auto config = parse_scenario(
      R"({"name": "t", "serve": {"service_ms": 2.0, "queue_cap": 4, "policy": "reject"}})");
  EXPECT_TRUE(config.serve.enabled);
  EXPECT_DOUBLE_EQ(config.serve.service_ms, 2.0);
  EXPECT_EQ(config.serve.queue_cap, 4u);
  EXPECT_EQ(config.serve.policy, "reject");
  // An empty block enables serving with the defaults.
  EXPECT_TRUE(parse_scenario(R"({"name": "t", "serve": {}})").serve.enabled);
}

TEST(ScenarioConfig, UnknownServeKeyIsRejectedWithPath) {
  expect_error(R"({"name": "t", "serve": {"burst": 2}})",
               ScenarioError::Kind::kUnknownKey, "serve.burst");
}

TEST(ScenarioConfig, NonPositiveServiceTimeIsBadValue) {
  expect_error(R"({"name": "t", "serve": {"service_ms": 0}})",
               ScenarioError::Kind::kBadValue, "serve.service_ms");
}

TEST(ScenarioConfig, ZeroQueueCapIsBadValue) {
  expect_error(R"({"name": "t", "serve": {"queue_cap": 0}})",
               ScenarioError::Kind::kBadValue, "serve.queue_cap");
}

TEST(ScenarioConfig, UnknownServePolicyIsBadValue) {
  expect_error(R"({"name": "t", "serve": {"policy": "shed"}})",
               ScenarioError::Kind::kBadValue, "serve.policy");
}

TEST(ScenarioConfig, ServeRequiresCoordsRouting) {
  // The router selects replicas in coordinate space; true-RTT routing would
  // disagree with it, so the combination is rejected up front.
  expect_error(R"({"name": "t", "routing": "true_rtt", "serve": {}})",
               ScenarioError::Kind::kBadValue, "serve");
}

}  // namespace
}  // namespace geored::scenario
