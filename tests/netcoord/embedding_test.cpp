#include "netcoord/embedding.h"

#include <gtest/gtest.h>

#include "topology/planetlab_model.h"

namespace geored::coord {
namespace {

topo::Topology test_topology(std::size_t nodes = 100, std::uint64_t seed = 42) {
  topo::PlanetLabModelConfig config;
  config.node_count = nodes;
  return topo::generate_planetlab_like(config, seed);
}

TEST(Embedding, VivaldiDeterministicInSeed) {
  const auto topology = test_topology(40);
  GossipConfig gossip;
  gossip.rounds = 32;
  const auto a = run_vivaldi(topology, VivaldiConfig{}, gossip, 9);
  const auto b = run_vivaldi(topology, VivaldiConfig{}, gossip, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].position, b[i].position);
    EXPECT_EQ(a[i].height, b[i].height);
  }
}

TEST(Embedding, DifferentSeedsGiveDifferentCoordinates) {
  const auto topology = test_topology(40);
  GossipConfig gossip;
  gossip.rounds = 32;
  const auto a = run_vivaldi(topology, VivaldiConfig{}, gossip, 1);
  const auto b = run_vivaldi(topology, VivaldiConfig{}, gossip, 2);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].position != b[i].position) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Embedding, MoreRoundsDoNotDegradeAccuracy) {
  const auto topology = test_topology(80);
  GossipConfig short_gossip;
  short_gossip.rounds = 16;
  GossipConfig long_gossip;
  long_gossip.rounds = 256;
  const auto coarse =
      evaluate_embedding(topology, run_rnp(topology, RnpConfig{}, short_gossip, 3));
  const auto fine =
      evaluate_embedding(topology, run_rnp(topology, RnpConfig{}, long_gossip, 3));
  EXPECT_LT(fine.absolute_error_ms.p50, coarse.absolute_error_ms.p50);
}

TEST(Embedding, EvaluateRejectsSizeMismatch) {
  const auto topology = test_topology(10);
  std::vector<NetworkCoordinate> coords(5, NetworkCoordinate(3));
  EXPECT_THROW(evaluate_embedding(topology, coords), std::invalid_argument);
}

TEST(Embedding, PerfectEmbeddingScoresZero) {
  // A topology whose RTTs are exactly the distances of known coordinates.
  std::vector<Point> positions{{0.0, 0.0}, {30.0, 0.0}, {0.0, 40.0}, {30.0, 40.0}};
  SymMatrix rtt(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      rtt.set(i, j, positions[i].distance_to(positions[j]));
    }
  }
  topo::Topology topology(std::vector<topo::NodeInfo>(4), std::move(rtt), {});
  std::vector<NetworkCoordinate> coords;
  for (const auto& p : positions) coords.emplace_back(p, 0.0);
  const auto quality = evaluate_embedding(topology, coords);
  EXPECT_NEAR(quality.absolute_error_ms.max, 0.0, 1e-9);
  EXPECT_NEAR(quality.relative_error.max, 0.0, 1e-12);
}

TEST(Embedding, QualityToStringMentionsBothMetrics) {
  const auto topology = test_topology(20);
  GossipConfig gossip;
  gossip.rounds = 16;
  const auto quality =
      evaluate_embedding(topology, run_vivaldi(topology, VivaldiConfig{}, gossip, 1));
  const auto text = quality.to_string();
  EXPECT_NE(text.find("abs error"), std::string::npos);
  EXPECT_NE(text.find("rel error"), std::string::npos);
}

}  // namespace
}  // namespace geored::coord
