#include "netcoord/rnp.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "netcoord/embedding.h"
#include "topology/planetlab_model.h"

namespace geored::coord {
namespace {

TEST(Rnp, RejectsInvalidConfig) {
  RnpConfig config;
  config.window_size = 1;
  EXPECT_THROW(RnpNode(config, 0), std::invalid_argument);
  config = {};
  config.refit_every = 0;
  EXPECT_THROW(RnpNode(config, 0), std::invalid_argument);
  config = {};
  config.recency_decay = 0.0;
  EXPECT_THROW(RnpNode(config, 0), std::invalid_argument);
}

TEST(Rnp, ConvergesBetweenTwoNodes) {
  RnpConfig config;
  config.vivaldi.dimensions = 2;
  RnpNode a(config, 0), b(config, 1);
  constexpr double kRtt = 120.0;
  for (int i = 0; i < 300; ++i) {
    a.observe(b.coordinate(), kRtt);
    b.observe(a.coordinate(), kRtt);
  }
  EXPECT_NEAR(predicted_rtt_ms(a.coordinate(), b.coordinate()), kRtt, 5.0);
}

TEST(Rnp, IgnoresNonPositiveSamples) {
  RnpNode node(RnpConfig{}, 0);
  NetworkCoordinate remote(Point(5), 0.0);
  node.observe(remote, -1.0);
  node.observe(remote, 0.0);
  EXPECT_EQ(node.samples(), 0u);
}

TEST(Rnp, RefitKeepsCoordinatesFinite) {
  RnpConfig config;
  config.refit_every = 4;
  config.window_size = 8;
  RnpNode node(config, 0);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    NetworkCoordinate remote(
        Point{rng.uniform(-100, 100), rng.uniform(-100, 100), rng.uniform(-100, 100),
              rng.uniform(-100, 100), rng.uniform(-100, 100)},
        rng.uniform(0, 5));
    remote.error = rng.uniform(0.05, 1.0);
    node.observe(remote, rng.uniform(1.0, 300.0));
    ASSERT_TRUE(node.coordinate().position.is_finite());
    ASSERT_GE(node.coordinate().height, 0.0);
  }
}

/// The paper's central claim for RNP: better prediction accuracy than
/// Vivaldi. Verified end-to-end on the synthetic PlanetLab-like topology,
/// across several topologies.
class RnpBeatsVivaldi : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RnpBeatsVivaldi, MedianAbsoluteErrorIsLower) {
  topo::PlanetLabModelConfig topo_config;
  topo_config.node_count = 120;  // smaller topology keeps the test fast
  const auto topology = topo::generate_planetlab_like(topo_config, GetParam());
  GossipConfig gossip;
  gossip.rounds = 192;

  const auto vivaldi = run_vivaldi(topology, VivaldiConfig{}, gossip, 7);
  const auto rnp = run_rnp(topology, RnpConfig{}, gossip, 7);
  const auto vivaldi_quality = evaluate_embedding(topology, vivaldi);
  const auto rnp_quality = evaluate_embedding(topology, rnp);

  EXPECT_LT(rnp_quality.absolute_error_ms.p50, vivaldi_quality.absolute_error_ms.p50)
      << "vivaldi: " << vivaldi_quality.to_string() << "\nrnp: " << rnp_quality.to_string();
  // And it must be accurate in absolute terms, as the paper reports
  // (median error around or below ~10 ms on PlanetLab-like data).
  EXPECT_LT(rnp_quality.absolute_error_ms.p50, 15.0);
}

INSTANTIATE_TEST_SUITE_P(Topologies, RnpBeatsVivaldi, ::testing::Values(42, 7, 2026));

}  // namespace
}  // namespace geored::coord
