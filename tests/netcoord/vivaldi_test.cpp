#include "netcoord/vivaldi.h"

#include <gtest/gtest.h>

#include "netcoord/coordinate.h"

namespace geored::coord {
namespace {

VivaldiConfig flat_config() {
  VivaldiConfig config;
  config.dimensions = 2;
  config.use_height = false;
  return config;
}

TEST(NetworkCoordinate, PredictedRttIncludesHeights) {
  NetworkCoordinate a(Point{0.0, 0.0}, 3.0);
  NetworkCoordinate b(Point{3.0, 4.0}, 2.0);
  EXPECT_DOUBLE_EQ(predicted_rtt_ms(a, b), 5.0 + 3.0 + 2.0);
}

TEST(Vivaldi, StartsAtOriginWithInitialError) {
  VivaldiNode node(flat_config(), 0);
  EXPECT_EQ(node.coordinate().position, Point(2));
  EXPECT_DOUBLE_EQ(node.coordinate().error, 1.0);
  EXPECT_EQ(node.samples(), 0u);
}

TEST(Vivaldi, MovesAwayWhenPredictionTooShort) {
  VivaldiNode node(flat_config(), 0);
  NetworkCoordinate remote(Point{1.0, 0.0}, 0.0);
  remote.error = 0.5;
  // True RTT 100, predicted 1 -> node must be pushed away from remote.
  node.observe(remote, 100.0);
  EXPECT_LT(node.coordinate().position[0], 0.0);
  EXPECT_EQ(node.samples(), 1u);
}

TEST(Vivaldi, MovesCloserWhenPredictionTooLong) {
  VivaldiConfig config = flat_config();
  VivaldiNode node(config, 0);
  NetworkCoordinate remote(Point{100.0, 0.0}, 0.0);
  remote.error = 0.5;
  // True RTT 10, predicted 100 -> node is pulled towards remote.
  node.observe(remote, 10.0);
  EXPECT_GT(node.coordinate().position[0], 0.0);
}

TEST(Vivaldi, IgnoresNonPositiveSamples) {
  VivaldiNode node(flat_config(), 0);
  NetworkCoordinate remote(Point{1.0, 1.0}, 0.0);
  node.observe(remote, 0.0);
  node.observe(remote, -5.0);
  EXPECT_EQ(node.samples(), 0u);
  EXPECT_EQ(node.coordinate().position, Point(2));
}

TEST(Vivaldi, TwoNodesConvergeToTheirRtt) {
  VivaldiConfig config = flat_config();
  VivaldiNode a(config, 0), b(config, 1);
  constexpr double kRtt = 80.0;
  for (int i = 0; i < 500; ++i) {
    a.observe(b.coordinate(), kRtt);
    b.observe(a.coordinate(), kRtt);
  }
  const double predicted = predicted_rtt_ms(a.coordinate(), b.coordinate());
  EXPECT_NEAR(predicted, kRtt, 2.0);
  EXPECT_LT(a.coordinate().error, 0.2);
}

TEST(Vivaldi, HeightStaysNonNegative) {
  VivaldiConfig config;
  config.dimensions = 2;
  config.use_height = true;
  VivaldiNode node(config, 0);
  NetworkCoordinate remote(Point{50.0, 0.0}, 5.0);
  remote.error = 0.2;
  for (int i = 0; i < 200; ++i) {
    node.observe(remote, 1.0);  // keep pulling inwards hard
    ASSERT_GE(node.coordinate().height, 0.0);
  }
}

TEST(Vivaldi, HeightModelsSharedAccessDelay) {
  // Three nodes pairwise 60 ms apart cannot be embedded at mutual distance
  // 60 in 1-D without heights; with heights the fit improves.
  VivaldiConfig flat;
  flat.dimensions = 1;
  flat.use_height = false;
  VivaldiConfig tall = flat;
  tall.use_height = true;

  const auto run = [](VivaldiConfig config) {
    std::vector<VivaldiNode> nodes{{config, 0}, {config, 1}, {config, 2}};
    for (int round = 0; round < 800; ++round) {
      for (int i = 0; i < 3; ++i) {
        const int j = (i + 1 + round % 2) % 3;
        nodes[i].observe(nodes[j].coordinate(), 60.0);
      }
    }
    double worst = 0.0;
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        worst = std::max(worst, std::abs(predicted_rtt_ms(nodes[i].coordinate(),
                                                          nodes[j].coordinate()) -
                                         60.0));
      }
    }
    return worst;
  };
  EXPECT_LT(run(tall), run(flat));
}

TEST(Vivaldi, ErrorEstimateDropsWithConsistentSamples) {
  VivaldiConfig config = flat_config();
  VivaldiNode a(config, 0), b(config, 1);
  const double initial_error = a.coordinate().error;
  for (int i = 0; i < 300; ++i) {
    a.observe(b.coordinate(), 50.0);
    b.observe(a.coordinate(), 50.0);
  }
  EXPECT_LT(a.coordinate().error, initial_error * 0.5);
}

TEST(Vivaldi, RejectsInvalidConfig) {
  VivaldiConfig config;
  config.dimensions = 0;
  EXPECT_THROW(VivaldiNode(config, 0), std::invalid_argument);
  config = {};
  config.ce = 0.0;
  EXPECT_THROW(VivaldiNode(config, 0), std::invalid_argument);
  config = {};
  config.cc = 1.5;
  EXPECT_THROW(VivaldiNode(config, 0), std::invalid_argument);
}

}  // namespace
}  // namespace geored::coord
