#include "netcoord/stability.h"

#include <gtest/gtest.h>

#include "topology/planetlab_model.h"

namespace geored::coord {
namespace {

topo::Topology test_topology(std::uint64_t seed = 42) {
  topo::PlanetLabModelConfig config;
  config.node_count = 100;
  return topo::generate_planetlab_like(config, seed);
}

StabilityConfig quick_config() {
  StabilityConfig config;
  config.gossip.rounds = 192;
  config.warmup_rounds = 96;
  return config;
}

TEST(Stability, RejectsWarmupBeyondRounds) {
  StabilityConfig config;
  config.gossip.rounds = 10;
  config.warmup_rounds = 10;
  EXPECT_THROW(measure_stability(test_topology(), Protocol::kVivaldi, config, 1),
               std::invalid_argument);
}

TEST(Stability, MeasuresDisplacementsAfterWarmup) {
  const auto topology = test_topology();
  const auto report = measure_stability(topology, Protocol::kVivaldi, quick_config(), 1);
  // (rounds - warmup) * nodes displacement samples.
  EXPECT_EQ(report.displacement_per_round_ms.count, (192 - 96) * topology.size());
  EXPECT_GT(report.displacement_per_round_ms.mean, 0.0);
  EXPECT_GT(report.final_abs_error_p50_ms, 0.0);
}

TEST(Stability, DeterministicInSeed) {
  const auto topology = test_topology();
  const auto a = measure_stability(topology, Protocol::kRnp, quick_config(), 9);
  const auto b = measure_stability(topology, Protocol::kRnp, quick_config(), 9);
  EXPECT_EQ(a.displacement_per_round_ms.mean, b.displacement_per_round_ms.mean);
  EXPECT_EQ(a.final_abs_error_p50_ms, b.final_abs_error_p50_ms);
}

/// The paper's second claim for RNP: more stable coordinates than Vivaldi
/// (its retrospective refits damp the per-sample jitter), without giving up
/// accuracy. Verified across topologies.
class RnpIsMoreStable : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RnpIsMoreStable, LowerDisplacementAndNoWorseAccuracy) {
  const auto topology = test_topology(GetParam());
  const auto vivaldi = measure_stability(topology, Protocol::kVivaldi, quick_config(), 7);
  const auto rnp = measure_stability(topology, Protocol::kRnp, quick_config(), 7);
  EXPECT_LT(rnp.displacement_per_round_ms.mean,
            vivaldi.displacement_per_round_ms.mean)
      << "vivaldi drift " << vivaldi.displacement_per_round_ms.mean << " rnp drift "
      << rnp.displacement_per_round_ms.mean;
  EXPECT_LT(rnp.final_abs_error_p50_ms, vivaldi.final_abs_error_p50_ms * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Topologies, RnpIsMoreStable, ::testing::Values(42, 7, 2026));

}  // namespace
}  // namespace geored::coord
