#include "netcoord/gnp.h"

#include <gtest/gtest.h>

#include <set>

#include "netcoord/embedding.h"
#include "topology/planetlab_model.h"

namespace geored::coord {
namespace {

topo::Topology small_topology(std::uint64_t seed = 42) {
  topo::PlanetLabModelConfig config;
  config.node_count = 60;
  return topo::generate_planetlab_like(config, seed);
}

TEST(Gnp, LandmarkSelectionIsDistinctAndSpread) {
  const auto topology = small_topology();
  const auto landmarks = select_landmarks(topology, 8);
  ASSERT_EQ(landmarks.size(), 8u);
  std::set<topo::NodeId> unique(landmarks.begin(), landmarks.end());
  EXPECT_EQ(unique.size(), 8u);

  // Farthest-point selection should cover the space: the minimum pairwise
  // landmark distance must exceed the topology's 10th-percentile RTT.
  std::vector<double> all_rtts;
  for (topo::NodeId i = 0; i < topology.size(); ++i) {
    for (topo::NodeId j = i + 1; j < topology.size(); ++j) {
      all_rtts.push_back(topology.rtt_ms(i, j));
    }
  }
  std::sort(all_rtts.begin(), all_rtts.end());
  const double p10 = all_rtts[all_rtts.size() / 10];
  double min_pair = 1e18;
  for (std::size_t i = 0; i < landmarks.size(); ++i) {
    for (std::size_t j = i + 1; j < landmarks.size(); ++j) {
      min_pair = std::min(min_pair, topology.rtt_ms(landmarks[i], landmarks[j]));
    }
  }
  EXPECT_GT(min_pair, p10);
}

TEST(Gnp, RejectsBadLandmarkCounts) {
  const auto topology = small_topology();
  EXPECT_THROW(select_landmarks(topology, 1), std::invalid_argument);
  EXPECT_THROW(select_landmarks(topology, topology.size() + 1), std::invalid_argument);
}

TEST(Gnp, EmbeddingIsReasonablyAccurate) {
  const auto topology = small_topology();
  GnpConfig config;
  config.landmark_count = 10;
  const auto coords = run_gnp(topology, config);
  ASSERT_EQ(coords.size(), topology.size());
  for (const auto& c : coords) {
    ASSERT_EQ(c.position.dim(), config.dimensions);
    ASSERT_TRUE(c.position.is_finite());
  }
  const auto quality = evaluate_embedding(topology, coords);
  // Landmark-based embedding should predict within ~25 ms at the median on
  // this topology (GNP's published accuracy regime).
  EXPECT_LT(quality.absolute_error_ms.p50, 25.0) << quality.to_string();
}

TEST(Gnp, DeterministicOutput) {
  const auto topology = small_topology();
  GnpConfig config;
  config.landmark_count = 6;
  config.landmark_iterations = 3000;
  config.node_iterations = 500;
  const auto a = run_gnp(topology, config);
  const auto b = run_gnp(topology, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].position, b[i].position);
  }
}

}  // namespace
}  // namespace geored::coord
