#include "workload/modulated.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "workload/workload.h"

namespace geored::wl {
namespace {

std::unique_ptr<StaticWorkload> flat(std::size_t clients, double rate) {
  return std::make_unique<StaticWorkload>(std::vector<double>(clients, rate));
}

TEST(ModulatedWorkload, StepFactorAppliesOnlyInsideWindow) {
  RateProfile spike;
  spike.kind = RateProfile::Kind::kStep;
  spike.start_ms = 1000.0;
  spike.end_ms = 2000.0;
  spike.factor = 5.0;
  ModulatedWorkload workload(flat(3, 0.01), {spike});

  EXPECT_DOUBLE_EQ(workload.rate(0, 999.0), 0.01);
  EXPECT_DOUBLE_EQ(workload.rate(0, 1000.0), 0.05);  // start inclusive
  EXPECT_DOUBLE_EQ(workload.rate(0, 1999.0), 0.05);
  EXPECT_DOUBLE_EQ(workload.rate(0, 2000.0), 0.01);  // end exclusive
}

TEST(ModulatedWorkload, AffectedMaskLimitsScope) {
  RateProfile spike;
  spike.kind = RateProfile::Kind::kStep;
  spike.affected = {true, false, true};
  spike.start_ms = 0.0;
  spike.end_ms = 1000.0;
  spike.factor = 3.0;
  ModulatedWorkload workload(flat(3, 0.01), {spike});

  EXPECT_DOUBLE_EQ(workload.rate(0, 500.0), 0.03);
  EXPECT_DOUBLE_EQ(workload.rate(1, 500.0), 0.01);  // not covered
  EXPECT_DOUBLE_EQ(workload.rate(2, 500.0), 0.03);
}

TEST(ModulatedWorkload, DiurnalEnvelopePeaksAtPhaseAndRespectsFloor) {
  RateProfile envelope;
  envelope.kind = RateProfile::Kind::kDiurnal;
  envelope.period_ms = 1000.0;
  envelope.phase = 0.25;
  envelope.floor_fraction = 0.2;
  ModulatedWorkload workload(flat(1, 1.0), {envelope});

  // Peak at t/T == phase; trough half a period later, clamped to the floor.
  EXPECT_NEAR(workload.rate(0, 250.0), 1.0, 1e-12);
  EXPECT_NEAR(workload.rate(0, 750.0), 0.2, 1e-12);
  for (double t = 0.0; t < 2000.0; t += 50.0) {
    const double rate = workload.rate(0, t);
    EXPECT_GE(rate, 0.2 - 1e-12);
    EXPECT_LE(rate, 1.0 + 1e-12);
  }
}

TEST(ModulatedWorkload, ProfilesComposeMultiplicatively) {
  RateProfile envelope;
  envelope.kind = RateProfile::Kind::kDiurnal;
  envelope.period_ms = 1000.0;
  envelope.phase = 0.0;
  envelope.floor_fraction = 0.5;
  RateProfile spike;
  spike.kind = RateProfile::Kind::kStep;
  spike.start_ms = 0.0;
  spike.end_ms = 10'000.0;
  spike.factor = 4.0;
  ModulatedWorkload workload(flat(1, 0.01), {envelope, spike});

  // At t=0 the envelope peaks (1.0) and the spike is live: 0.01 * 1 * 4.
  EXPECT_NEAR(workload.rate(0, 0.0), 0.04, 1e-12);
  // Half a period in, the envelope is at its floor: 0.01 * 0.5 * 4.
  EXPECT_NEAR(workload.rate(0, 500.0), 0.02, 1e-12);
}

TEST(ModulatedWorkload, MaxRateBoundsEveryInstant) {
  RateProfile envelope;
  envelope.kind = RateProfile::Kind::kDiurnal;
  envelope.period_ms = 700.0;
  envelope.phase = 0.3;
  envelope.floor_fraction = 0.1;
  RateProfile spike;
  spike.kind = RateProfile::Kind::kStep;
  spike.start_ms = 300.0;
  spike.end_ms = 1200.0;
  spike.factor = 7.0;
  ModulatedWorkload workload(flat(2, 0.003), {envelope, spike});

  // The thinning contract: max_rate must dominate rate everywhere.
  for (std::size_t i = 0; i < 2; ++i) {
    const double bound = workload.max_rate(i);
    for (double t = 0.0; t < 2000.0; t += 7.0) {
      EXPECT_LE(workload.rate(i, t), bound + 1e-12) << "client " << i << " t " << t;
    }
  }
}

TEST(ModulatedWorkload, RejectsMalformedProfiles) {
  {
    RateProfile inverted;
    inverted.kind = RateProfile::Kind::kStep;
    inverted.start_ms = 500.0;
    inverted.end_ms = 400.0;
    EXPECT_THROW(ModulatedWorkload(flat(1, 1.0), {inverted}), std::invalid_argument);
  }
  {
    RateProfile nonpositive;
    nonpositive.kind = RateProfile::Kind::kStep;
    nonpositive.end_ms = 100.0;
    nonpositive.factor = 0.0;
    EXPECT_THROW(ModulatedWorkload(flat(1, 1.0), {nonpositive}), std::invalid_argument);
  }
  {
    RateProfile wrong_mask;
    wrong_mask.kind = RateProfile::Kind::kStep;
    wrong_mask.end_ms = 100.0;
    wrong_mask.affected = {true, false};  // base has 3 clients
    EXPECT_THROW(ModulatedWorkload(flat(3, 1.0), {wrong_mask}), std::invalid_argument);
  }
}

TEST(ModulatedWorkload, NoProfilesIsIdentity) {
  ModulatedWorkload workload(flat(2, 0.42), {});
  EXPECT_DOUBLE_EQ(workload.rate(0, 123.0), 0.42);
  EXPECT_DOUBLE_EQ(workload.max_rate(1), 0.42);
  EXPECT_EQ(workload.client_count(), 2u);
}

}  // namespace
}  // namespace geored::wl
