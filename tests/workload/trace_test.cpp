#include "workload/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

namespace geored::wl {
namespace {

TEST(Trace, AppendEnforcesTimeOrder) {
  Trace trace;
  trace.append({10.0, 0, 1, 100, false});
  trace.append({10.0, 1, 2, 100, true});  // equal timestamps allowed
  trace.append({20.0, 0, 1, 100, false});
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.duration_ms(), 20.0);
  EXPECT_THROW(trace.append({5.0, 0, 1, 100, false}), std::invalid_argument);
}

TEST(Trace, ConstructorValidatesOrder) {
  EXPECT_THROW(Trace({{10.0, 0, 1, 1, false}, {5.0, 0, 1, 1, false}}),
               std::invalid_argument);
}

TEST(Trace, SaveLoadRoundTrip) {
  Trace trace;
  trace.append({1.5, 3, 42, 256, false});
  trace.append({2.25, 7, 99, 1024, true});
  std::stringstream stream;
  trace.save(stream);
  const Trace loaded = Trace::load(stream);
  EXPECT_EQ(loaded.events(), trace.events());
}

TEST(Trace, LoadRejectsMalformedStreams) {
  std::stringstream wrong_magic("other-format 1\n1 2 3 4 r\n");
  EXPECT_THROW(Trace::load(wrong_magic), std::invalid_argument);
  std::stringstream truncated("geored-trace-v1 2\n1 2 3 4 r\n");
  EXPECT_THROW(Trace::load(truncated), std::invalid_argument);
  std::stringstream bad_kind("geored-trace-v1 1\n1 2 3 4 x\n");
  EXPECT_THROW(Trace::load(bad_kind), std::invalid_argument);
}

TEST(Trace, StatsSummarizeTheTrace) {
  Trace trace;
  trace.append({0.0, 0, 10, 1, false});
  trace.append({1.0, 0, 11, 1, true});
  trace.append({2.0, 1, 10, 1, false});
  trace.append({3.0, 2, 10, 1, false});
  const auto stats = trace.stats();
  EXPECT_EQ(stats.events, 4u);
  EXPECT_EQ(stats.distinct_clients, 3u);
  EXPECT_EQ(stats.distinct_objects, 2u);
  EXPECT_DOUBLE_EQ(stats.write_fraction, 0.25);
  EXPECT_DOUBLE_EQ(stats.duration_ms, 3.0);
}

TEST(Trace, ScaledCompressesAndStretchesTime) {
  Trace trace;
  trace.append({10.0, 0, 1, 1, false});
  trace.append({20.0, 1, 2, 1, true});
  const Trace fast = trace.scaled(0.5);
  EXPECT_DOUBLE_EQ(fast.events()[0].time_ms, 5.0);
  EXPECT_DOUBLE_EQ(fast.events()[1].time_ms, 10.0);
  EXPECT_EQ(fast.events()[1].client, 1u);  // everything else untouched
  const Trace slow = trace.scaled(3.0);
  EXPECT_DOUBLE_EQ(slow.duration_ms(), 60.0);
  EXPECT_THROW(trace.scaled(0.0), std::invalid_argument);
  EXPECT_THROW(trace.scaled(-1.0), std::invalid_argument);
}

TEST(Trace, MergedInterleavesByTime) {
  Trace a, b;
  a.append({1.0, 0, 1, 1, false});
  a.append({5.0, 0, 2, 1, false});
  b.append({3.0, 1, 3, 1, true});
  b.append({7.0, 1, 4, 1, false});
  const Trace merged = Trace::merged(a, b);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_DOUBLE_EQ(merged.events()[0].time_ms, 1.0);
  EXPECT_DOUBLE_EQ(merged.events()[1].time_ms, 3.0);
  EXPECT_DOUBLE_EQ(merged.events()[2].time_ms, 5.0);
  EXPECT_DOUBLE_EQ(merged.events()[3].time_ms, 7.0);
  EXPECT_EQ(merged.events()[1].client, 1u);
  // Merging with an empty trace is the identity.
  EXPECT_EQ(Trace::merged(a, Trace{}).events(), a.events());
}

TEST(SessionTrace, DeterministicInSeed) {
  SessionTraceConfig config;
  config.clients = 20;
  config.duration_ms = 60'000.0;
  const Trace a = generate_session_trace(config, 5);
  const Trace b = generate_session_trace(config, 5);
  EXPECT_EQ(a.events(), b.events());
  const Trace c = generate_session_trace(config, 6);
  EXPECT_NE(a.events(), c.events());
}

TEST(SessionTrace, RespectsConfiguredShape) {
  SessionTraceConfig config;
  config.clients = 50;
  config.objects = 200;
  config.duration_ms = 300'000.0;
  config.write_fraction = 0.1;
  config.min_bytes = 100;
  config.max_bytes = 200;
  const Trace trace = generate_session_trace(config, 42);
  ASSERT_GT(trace.size(), 100u);
  const auto stats = trace.stats();
  EXPECT_LE(stats.distinct_clients, 50u);
  EXPECT_LE(stats.distinct_objects, 200u);
  EXPECT_NEAR(stats.write_fraction, 0.1, 0.04);
  for (const auto& event : trace.events()) {
    EXPECT_LT(event.time_ms, config.duration_ms);
    EXPECT_GE(event.bytes, 100u);
    EXPECT_LE(event.bytes, 200u);
    EXPECT_LT(event.client, 50u);
    EXPECT_LT(event.object, 200u);
  }
}

TEST(SessionTrace, EventCountTracksSessionRate) {
  SessionTraceConfig config;
  config.clients = 100;
  config.duration_ms = 600'000.0;
  config.session_rate = 1.0 / 100'000.0;  // ~6 sessions per client
  config.mean_requests_per_session = 5.0;
  config.mean_think_time_ms = 100.0;  // short enough that sessions complete
  const Trace trace = generate_session_trace(config, 7);
  // Expect ~ clients * duration * rate * requests = 100 * 6 * 5 = 3000.
  EXPECT_NEAR(static_cast<double>(trace.size()), 3000.0, 500.0);
}

TEST(SessionTrace, PopularityIsZipfSkewed) {
  SessionTraceConfig config;
  config.clients = 100;
  config.objects = 500;
  config.duration_ms = 600'000.0;
  config.zipf_exponent = 1.0;
  const Trace trace = generate_session_trace(config, 11);
  std::map<std::uint64_t, std::size_t> counts;
  for (const auto& event : trace.events()) ++counts[event.object];
  std::vector<std::size_t> sorted;
  for (const auto& [object, count] : counts) sorted.push_back(count);
  std::sort(sorted.rbegin(), sorted.rend());
  // The head object holds far more than its uniform share.
  EXPECT_GT(sorted.front(),
            5 * trace.size() / config.objects);
}

TEST(SessionTrace, RejectsInvalidConfig) {
  SessionTraceConfig config;
  config.clients = 0;
  EXPECT_THROW(generate_session_trace(config, 1), std::invalid_argument);
  config = {};
  config.write_fraction = 1.5;
  EXPECT_THROW(generate_session_trace(config, 1), std::invalid_argument);
  config = {};
  config.min_bytes = 100;
  config.max_bytes = 50;
  EXPECT_THROW(generate_session_trace(config, 1), std::invalid_argument);
  config = {};
  config.mean_requests_per_session = 0.5;
  EXPECT_THROW(generate_session_trace(config, 1), std::invalid_argument);
}

}  // namespace
}  // namespace geored::wl
