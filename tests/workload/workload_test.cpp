#include "workload/workload.h"

#include <gtest/gtest.h>

#include <cmath>

namespace geored::wl {
namespace {

TEST(StaticWorkload, ConstantRates) {
  StaticWorkload workload({0.5, 2.0}, {1.0, 3.0});
  EXPECT_EQ(workload.client_count(), 2u);
  EXPECT_DOUBLE_EQ(workload.rate(0, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(workload.rate(0, 1e9), 0.5);
  EXPECT_DOUBLE_EQ(workload.max_rate(1), 2.0);
  EXPECT_DOUBLE_EQ(workload.data_per_access(1), 3.0);
}

TEST(StaticWorkload, DefaultsDataToOne) {
  StaticWorkload workload({1.0});
  EXPECT_DOUBLE_EQ(workload.data_per_access(0), 1.0);
}

TEST(StaticWorkload, RejectsBadArguments) {
  EXPECT_THROW(StaticWorkload({}), std::invalid_argument);
  EXPECT_THROW(StaticWorkload({-1.0}), std::invalid_argument);
  EXPECT_THROW(StaticWorkload({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Workload, ExpectedAccessesIsRateTimesDurationForConstantRate) {
  StaticWorkload workload({0.02});
  EXPECT_NEAR(workload.expected_accesses(0, 0.0, 1000.0), 20.0, 1e-9);
  EXPECT_DOUBLE_EQ(workload.expected_accesses(0, 5.0, 5.0), 0.0);
  EXPECT_THROW(workload.expected_accesses(0, 10.0, 5.0), std::invalid_argument);
}

TEST(Workload, SampleAccessCountHasPoissonMean) {
  StaticWorkload workload({0.05});
  Rng rng(3);
  double total = 0.0;
  for (int i = 0; i < 2000; ++i) {
    total += static_cast<double>(workload.sample_access_count(0, 0.0, 1000.0, rng));
  }
  EXPECT_NEAR(total / 2000.0, 50.0, 1.0);
}

TEST(Workload, ArrivalTimesWithinIntervalWithCorrectMean) {
  StaticWorkload workload({0.01});
  Rng rng(5);
  std::size_t total = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const auto arrivals = workload.sample_arrival_times(0, 100.0, 1100.0, rng);
    total += arrivals.size();
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      ASSERT_GE(arrivals[i], 100.0);
      ASSERT_LT(arrivals[i], 1100.0);
      if (i > 0) {
        ASSERT_GE(arrivals[i], arrivals[i - 1]);
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(total) / 500.0, 10.0, 0.5);
}

TEST(Workload, ZeroRateProducesNoArrivals) {
  StaticWorkload workload({0.0});
  Rng rng(7);
  EXPECT_TRUE(workload.sample_arrival_times(0, 0.0, 1e6, rng).empty());
  EXPECT_EQ(workload.sample_access_count(0, 0.0, 1e6, rng), 0u);
}

TEST(UniformWorkload, PreservesPopulationMeanRate) {
  const auto workload = make_uniform_workload(2000, 0.01, 0.5, 11);
  double total = 0.0;
  for (std::size_t i = 0; i < workload->client_count(); ++i) total += workload->rate(i, 0.0);
  EXPECT_NEAR(total / 2000.0, 0.01, 0.001);
}

TEST(UniformWorkload, SigmaZeroGivesIdenticalRates) {
  const auto workload = make_uniform_workload(10, 0.5, 0.0, 1);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(workload->rate(i, 0.0), 0.5);
}

TEST(ZipfWorkload, RatesSumToTotalAndFollowZipf) {
  const auto workload = make_zipf_workload(100, 10.0, 1.0, 13);
  double total = 0.0;
  double max_rate = 0.0;
  for (std::size_t i = 0; i < 100; ++i) {
    total += workload->rate(i, 0.0);
    max_rate = std::max(max_rate, workload->rate(i, 0.0));
  }
  EXPECT_NEAR(total, 10.0, 1e-9);
  // Zipf(1) head holds ~1/H(100) ~ 19% of the mass.
  EXPECT_NEAR(max_rate, 10.0 * 0.1928, 0.01);
}

TEST(DiurnalWorkload, ModulatesWithPhaseAndFloor) {
  auto base = std::make_unique<StaticWorkload>(std::vector<double>{1.0, 1.0});
  // Client 0 peaks at t=0; client 1 peaks half a period later.
  DiurnalWorkload workload(std::move(base), {0.0, 0.5}, 1000.0, 0.1);
  EXPECT_NEAR(workload.rate(0, 0.0), 1.0, 1e-9);       // at its peak
  EXPECT_NEAR(workload.rate(0, 500.0), 0.1, 1e-9);     // trough clamps to floor
  EXPECT_NEAR(workload.rate(1, 500.0), 1.0, 1e-9);     // opposite phase
  EXPECT_NEAR(workload.rate(0, 1000.0), 1.0, 1e-9);    // periodic
  EXPECT_DOUBLE_EQ(workload.max_rate(0), 1.0);
}

TEST(DiurnalWorkload, RejectsBadArguments) {
  auto base = std::make_unique<StaticWorkload>(std::vector<double>{1.0});
  EXPECT_THROW(DiurnalWorkload(std::move(base), {0.0, 0.5}, 1000.0),
               std::invalid_argument);
  auto base2 = std::make_unique<StaticWorkload>(std::vector<double>{1.0});
  EXPECT_THROW(DiurnalWorkload(std::move(base2), {0.0}, 0.0), std::invalid_argument);
}

TEST(ActiveWindowWorkload, ClientsOnlyActiveInTheirWindow) {
  auto base = std::make_unique<StaticWorkload>(std::vector<double>{1.0, 2.0});
  ActiveWindowWorkload workload(std::move(base),
                                {{0.0, 100.0}, {50.0, 200.0}});
  EXPECT_DOUBLE_EQ(workload.rate(0, 50.0), 1.0);
  EXPECT_DOUBLE_EQ(workload.rate(0, 100.0), 0.0);  // end-exclusive
  EXPECT_DOUBLE_EQ(workload.rate(1, 25.0), 0.0);   // before its window
  EXPECT_DOUBLE_EQ(workload.rate(1, 150.0), 2.0);
  EXPECT_DOUBLE_EQ(workload.max_rate(1), 2.0);
  // Expected accesses integrate only the active window.
  EXPECT_NEAR(workload.expected_accesses(0, 0.0, 1000.0, 1000), 100.0, 1.0);
}

TEST(ActiveWindowWorkload, NoArrivalsOutsideWindow) {
  auto base = std::make_unique<StaticWorkload>(std::vector<double>{0.1});
  ActiveWindowWorkload workload(std::move(base), {{100.0, 200.0}});
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    for (const double t : workload.sample_arrival_times(0, 0.0, 1000.0, rng)) {
      ASSERT_GE(t, 100.0);
      ASSERT_LT(t, 200.0);
    }
  }
}

TEST(ActiveWindowWorkload, RejectsBadArguments) {
  auto base = std::make_unique<StaticWorkload>(std::vector<double>{1.0});
  EXPECT_THROW(
      ActiveWindowWorkload(std::move(base), {{0.0, 1.0}, {0.0, 1.0}}),
      std::invalid_argument);
  auto base2 = std::make_unique<StaticWorkload>(std::vector<double>{1.0});
  EXPECT_THROW(ActiveWindowWorkload(std::move(base2), {{10.0, 5.0}}),
               std::invalid_argument);
}

TEST(FlashCrowdWorkload, BoostsOnlyAffectedClientsDuringWindow) {
  auto base = std::make_unique<StaticWorkload>(std::vector<double>{1.0, 1.0});
  FlashCrowdWorkload workload(std::move(base), {true, false}, 100.0, 200.0, 5.0);
  EXPECT_DOUBLE_EQ(workload.rate(0, 50.0), 1.0);    // before
  EXPECT_DOUBLE_EQ(workload.rate(0, 150.0), 5.0);   // during
  EXPECT_DOUBLE_EQ(workload.rate(0, 200.0), 1.0);   // end-exclusive
  EXPECT_DOUBLE_EQ(workload.rate(1, 150.0), 1.0);   // unaffected client
  EXPECT_DOUBLE_EQ(workload.max_rate(0), 5.0);
  EXPECT_DOUBLE_EQ(workload.max_rate(1), 1.0);
}

TEST(FlashCrowdWorkload, ExpectedAccessesIntegratesTheSpike) {
  auto base = std::make_unique<StaticWorkload>(std::vector<double>{0.01});
  FlashCrowdWorkload workload(std::move(base), {true}, 0.0, 500.0, 3.0);
  // 500 ms at 0.03 + 500 ms at 0.01 = 15 + 5 = 20 expected accesses.
  EXPECT_NEAR(workload.expected_accesses(0, 0.0, 1000.0, 200), 20.0, 0.2);
}

TEST(FlashCrowdWorkload, RejectsBadArguments) {
  auto base = std::make_unique<StaticWorkload>(std::vector<double>{1.0});
  EXPECT_THROW(FlashCrowdWorkload(std::move(base), {true}, 200.0, 100.0, 2.0),
               std::invalid_argument);
  auto base2 = std::make_unique<StaticWorkload>(std::vector<double>{1.0});
  EXPECT_THROW(FlashCrowdWorkload(std::move(base2), {true}, 0.0, 100.0, 0.5),
               std::invalid_argument);
}

TEST(Workload, ThinningMatchesTimeVaryingRate) {
  // Diurnal arrivals: more arrivals near the peak than near the trough.
  auto base = std::make_unique<StaticWorkload>(std::vector<double>{0.02});
  DiurnalWorkload workload(std::move(base), {0.0}, 1000.0, 0.0);
  Rng rng(17);
  std::size_t near_peak = 0, near_trough = 0;
  for (int trial = 0; trial < 300; ++trial) {
    for (const double t : workload.sample_arrival_times(0, 0.0, 1000.0, rng)) {
      const double phase = t / 1000.0;
      if (phase < 0.25 || phase > 0.75) {
        ++near_peak;
      } else {
        ++near_trough;
      }
    }
  }
  EXPECT_GT(near_peak, 3 * near_trough);
}

}  // namespace
}  // namespace geored::wl
