// Umbrella header: the geored public API in one include.
//
//   #include "geored.h"
//
// Pulls in the topology substrate, network coordinates, clustering,
// placement strategies, the discrete-event simulator, workloads, the
// ReplicationManager/ReplicationSystem core, the serving data plane
// (request router + latency histogram), the scenario engine, and the
// replicated KV store.
// Individual headers remain the preferred include for library-internal use;
// this exists for applications and quick experiments.
#pragma once

#include "cluster/kmeans.h"
#include "cluster/microcluster.h"
#include "cluster/summarizer.h"
#include "common/flags.h"
#include "common/point.h"
#include "common/random.h"
#include "common/significance.h"
#include "common/stats.h"
#include "core/aggregation.h"
#include "core/decentralized.h"
#include "core/degree_allocator.h"
#include "core/epoch_pipeline.h"
#include "core/evaluation.h"
#include "core/fleet_manager.h"
#include "core/migration.h"
#include "core/replication_manager.h"
#include "core/system.h"
#include "net/clock.h"
#include "net/fault_injector.h"
#include "net/frame.h"
#include "net/rpc_collector.h"
#include "net/rpc_config.h"
#include "net/socket.h"
#include "netcoord/embedding.h"
#include "netcoord/gnp.h"
#include "netcoord/rnp.h"
#include "netcoord/stability.h"
#include "netcoord/vivaldi.h"
#include "placement/evaluate.h"
#include "placement/local_search.h"
#include "placement/online_clustering.h"
#include "placement/spread.h"
#include "placement/strategy.h"
#include "placement/write_aware.h"
#include "scenario/config.h"
#include "scenario/runner.h"
#include "serve/latency_histogram.h"
#include "serve/request_router.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "store/kvstore.h"
#include "store/replay.h"
#include "topology/analysis.h"
#include "topology/planetlab_model.h"
#include "topology/topology.h"
#include "workload/trace.h"
#include "workload/workload.h"
