#include "netcoord/rnp.h"

#include <algorithm>
#include <cmath>

#include "common/ensure.h"

namespace geored::coord {

RnpNode::RnpNode(const RnpConfig& config, std::uint32_t node_id)
    : VivaldiNode(config.vivaldi, node_id), rnp_config_(config) {
  GEORED_ENSURE(config.window_size >= 2, "RNP window must hold at least two samples");
  GEORED_ENSURE(config.refit_every >= 1, "refit_every must be at least 1");
  GEORED_ENSURE(config.recency_decay > 0.0 && config.recency_decay <= 1.0,
                "recency_decay must be in (0,1]");
}

void RnpNode::observe(const NetworkCoordinate& remote, double rtt_ms) {
  if (!(rtt_ms > 0.0)) return;
  window_.push_back({remote, rtt_ms, observation_count_});
  if (window_.size() > rnp_config_.window_size) window_.pop_front();
  ++observation_count_;

  // Online Vivaldi step keeps the coordinate moving between refits, but its
  // gain shrinks as this node's own error estimate falls: a reliable
  // coordinate should not chase individual samples — the retrospective
  // refit makes the considered adjustments. (This is the stability half of
  // RNP's "consume information according to its reliability".)
  const double base_cc = config_.cc;
  config_.cc = std::clamp(base_cc * coord_.error, 0.01, base_cc);
  vivaldi_step(remote, rtt_ms);
  config_.cc = base_cc;
  ++samples_;

  if (observation_count_ % rnp_config_.refit_every == 0 && window_.size() >= 4) {
    refit();
  }
}

void RnpNode::refit() {
  const bool use_height = config_.use_height;
  const std::size_t dim = coord_.position.dim();

  // Reliability x recency weight per retained sample. Reliability is the
  // inverse of the peer's own error estimate at observation time — samples
  // from well-converged peers steer the fit more.
  std::vector<double> weights(window_.size());
  double mean_rtt = 0.0;
  const std::uint64_t now = observation_count_;
  for (std::size_t s = 0; s < window_.size(); ++s) {
    const auto& sample = window_[s];
    const double age = static_cast<double>(now - 1 - sample.seq);
    const double reliability = 1.0 / std::clamp(sample.remote.error, 0.05, config_.max_error);
    weights[s] = std::pow(rnp_config_.recency_decay, age) * reliability;
    mean_rtt += sample.rtt_ms;
  }
  mean_rtt /= static_cast<double>(window_.size());

  Point position = coord_.position;
  double height = coord_.height;

  const auto objective = [&](const Point& pos, double h) {
    double total = 0.0, weight_sum = 0.0;
    for (std::size_t s = 0; s < window_.size(); ++s) {
      const auto& sample = window_[s];
      const double pred = pos.distance_to(sample.remote.position) +
                          (use_height ? h + sample.remote.height : 0.0);
      const double rel = (pred - sample.rtt_ms) / sample.rtt_ms;
      total += weights[s] * rel * rel;
      weight_sum += weights[s];
    }
    return weight_sum > 0 ? total / weight_sum : 0.0;
  };

  double best_obj = objective(position, height);
  Point best_position = position;
  double best_height = height;

  for (std::size_t step = 0; step < rnp_config_.descent_steps; ++step) {
    // Weighted gradient of the relative squared error.
    Point grad(dim);
    double grad_h = 0.0;
    double weight_sum = 0.0;
    for (std::size_t s = 0; s < window_.size(); ++s) {
      const auto& sample = window_[s];
      const double spatial = position.distance_to(sample.remote.position);
      const double pred = spatial + (use_height ? height + sample.remote.height : 0.0);
      const double coeff =
          weights[s] * 2.0 * (pred - sample.rtt_ms) / (sample.rtt_ms * sample.rtt_ms);
      if (spatial > 1e-9) {
        grad += (position - sample.remote.position) * (coeff / spatial);
      }
      if (use_height) grad_h += coeff;
      weight_sum += weights[s];
    }
    if (weight_sum <= 0.0) break;
    grad /= weight_sum;
    grad_h /= weight_sum;

    const double grad_norm = std::sqrt(grad.norm_squared() + grad_h * grad_h);
    if (grad_norm < 1e-12) break;

    // Diminishing normalized step, scaled to the window's RTT magnitude.
    const double step_size = rnp_config_.learning_rate * mean_rtt /
                             (1.0 + static_cast<double>(step)) / grad_norm;
    position -= grad * step_size;
    if (use_height) height = std::max(0.0, height - grad_h * step_size);

    const double obj = objective(position, height);
    if (obj < best_obj) {
      best_obj = obj;
      best_position = position;
      best_height = height;
    }
  }

  coord_.position = best_position;
  coord_.height = best_height;
  // The refit objective is the weighted mean squared relative error; its
  // square root is the natural successor of Vivaldi's error estimate.
  coord_.error = std::min(config_.max_error, std::sqrt(best_obj));
  GEORED_DCHECK(coord_.position.is_finite(),
                "RNP refit produced a non-finite coordinate");
  GEORED_DCHECK(std::isfinite(coord_.height) && coord_.height >= 0.0,
                "RNP refit produced an invalid height");
  GEORED_DCHECK(std::isfinite(coord_.error) && coord_.error >= 0.0,
                "RNP refit produced an invalid error estimate");
}

}  // namespace geored::coord
