#include "netcoord/gnp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/ensure.h"
#include "common/nelder_mead.h"

namespace geored::coord {

std::vector<topo::NodeId> select_landmarks(const topo::Topology& topology, std::size_t count) {
  GEORED_ENSURE(count >= 2, "GNP needs at least two landmarks");
  GEORED_ENSURE(count <= topology.size(), "more landmarks than nodes");
  std::vector<topo::NodeId> landmarks{0};
  std::vector<double> min_dist(topology.size(), std::numeric_limits<double>::infinity());
  while (landmarks.size() < count) {
    const topo::NodeId latest = landmarks.back();
    topo::NodeId farthest = 0;
    double best = -1.0;
    for (std::size_t i = 0; i < topology.size(); ++i) {
      const auto id = static_cast<topo::NodeId>(i);
      min_dist[i] = std::min(min_dist[i], topology.rtt_ms(id, latest));
      if (min_dist[i] > best &&
          std::find(landmarks.begin(), landmarks.end(), id) == landmarks.end()) {
        best = min_dist[i];
        farthest = id;
      }
    }
    landmarks.push_back(farthest);
  }
  return landmarks;
}

namespace {

double relative_error_sq(double predicted, double actual) {
  if (actual <= 0.0) return 0.0;
  const double rel = (predicted - actual) / actual;
  return rel * rel;
}

}  // namespace

std::vector<NetworkCoordinate> run_gnp(const topo::Topology& topology, const GnpConfig& config) {
  GEORED_ENSURE(config.dimensions >= 1, "GNP needs at least one dimension");
  const std::size_t d = config.dimensions;
  const auto landmarks = select_landmarks(topology, config.landmark_count);
  const std::size_t L = landmarks.size();

  // Phase 1: joint landmark embedding. Variables are the L*d landmark
  // coordinates; objective is the summed squared relative error over all
  // landmark pairs.
  const auto landmark_objective = [&](const std::vector<double>& vars) {
    double total = 0.0;
    for (std::size_t i = 0; i < L; ++i) {
      for (std::size_t j = i + 1; j < L; ++j) {
        double dist_sq = 0.0;
        for (std::size_t k = 0; k < d; ++k) {
          const double delta = vars[i * d + k] - vars[j * d + k];
          dist_sq += delta * delta;
        }
        total += relative_error_sq(std::sqrt(dist_sq),
                                   topology.rtt_ms(landmarks[i], landmarks[j]));
      }
    }
    return total;
  };

  // Start from a crude spread: landmark i at (rtt(0,i), rtt(1,i), 0, ...) so
  // the simplex does not begin fully degenerate at the origin.
  std::vector<double> start(L * d, 0.0);
  for (std::size_t i = 0; i < L; ++i) {
    start[i * d] = topology.rtt_ms(landmarks[0], landmarks[i]);
    if (d >= 2 && L >= 2) start[i * d + 1] = topology.rtt_ms(landmarks[1], landmarks[i]);
  }

  NelderMeadOptions landmark_options;
  landmark_options.max_iterations = config.landmark_iterations;
  landmark_options.initial_step = 50.0;  // ms-scale coordinates
  const auto landmark_fit = nelder_mead(landmark_objective, start, landmark_options);

  std::vector<NetworkCoordinate> coords(topology.size(), NetworkCoordinate(d));
  std::vector<bool> is_landmark(topology.size(), false);
  for (std::size_t i = 0; i < L; ++i) {
    Point p(d);
    for (std::size_t k = 0; k < d; ++k) p[k] = landmark_fit.argmin[i * d + k];
    coords[landmarks[i]].position = p;
    coords[landmarks[i]].error = std::sqrt(landmark_fit.min_value / static_cast<double>(L * (L - 1) / 2));
    is_landmark[landmarks[i]] = true;
  }

  // Phase 2: embed each ordinary node against the landmark coordinates.
  NelderMeadOptions node_options;
  node_options.max_iterations = config.node_iterations;
  node_options.initial_step = 50.0;
  for (std::size_t node = 0; node < topology.size(); ++node) {
    if (is_landmark[node]) continue;
    const auto id = static_cast<topo::NodeId>(node);
    const auto node_objective = [&](const std::vector<double>& vars) {
      double total = 0.0;
      for (const auto landmark : landmarks) {
        double dist_sq = 0.0;
        for (std::size_t k = 0; k < d; ++k) {
          const double delta = vars[k] - coords[landmark].position[k];
          dist_sq += delta * delta;
        }
        total += relative_error_sq(std::sqrt(dist_sq), topology.rtt_ms(id, landmark));
      }
      return total;
    };
    // Start at the closest landmark's coordinate.
    topo::NodeId closest = landmarks[0];
    for (const auto landmark : landmarks) {
      if (topology.rtt_ms(id, landmark) < topology.rtt_ms(id, closest)) closest = landmark;
    }
    const auto fit = nelder_mead(node_objective, coords[closest].position.values(), node_options);
    Point p(d);
    for (std::size_t k = 0; k < d; ++k) p[k] = fit.argmin[k];
    coords[node].position = p;
    coords[node].error = std::sqrt(fit.min_value / static_cast<double>(L));
  }
  return coords;
}

}  // namespace geored::coord
