#include "netcoord/stability.h"

#include "common/ensure.h"
#include "netcoord/embedding.h"
#include "netcoord/gossip_detail.h"

namespace geored::coord {

namespace {

template <typename NodeVector>
StabilityReport measure(const topo::Topology& topology, NodeVector& nodes,
                        const StabilityConfig& config, std::uint64_t seed) {
  std::vector<Point> previous(nodes.size());
  std::vector<double> displacements;
  const auto hook = [&](std::size_t round) {
    if (round + 1 == config.warmup_rounds) {
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        previous[i] = nodes[i].coordinate().position;
      }
      return;
    }
    if (round + 1 > config.warmup_rounds) {
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        const Point& current = nodes[i].coordinate().position;
        displacements.push_back(current.distance_to(previous[i]));
        previous[i] = current;
      }
    }
  };
  detail::run_gossip(topology, nodes, config.gossip, seed, hook);

  StabilityReport report;
  report.displacement_per_round_ms = summarize(std::move(displacements));
  std::vector<NetworkCoordinate> coords;
  coords.reserve(nodes.size());
  for (const auto& node : nodes) coords.push_back(node.coordinate());
  report.final_abs_error_p50_ms =
      evaluate_embedding(topology, coords).absolute_error_ms.p50;
  return report;
}

}  // namespace

StabilityReport measure_stability(const topo::Topology& topology, Protocol protocol,
                                  const StabilityConfig& config, std::uint64_t seed) {
  GEORED_ENSURE(config.warmup_rounds < config.gossip.rounds,
                "warmup must leave rounds to measure");
  if (protocol == Protocol::kVivaldi) {
    std::vector<VivaldiNode> nodes;
    nodes.reserve(topology.size());
    for (std::size_t i = 0; i < topology.size(); ++i) {
      nodes.emplace_back(config.vivaldi, static_cast<std::uint32_t>(i));
    }
    return measure(topology, nodes, config, seed);
  }
  RnpConfig rnp_config = config.rnp;
  rnp_config.vivaldi = config.vivaldi;
  std::vector<RnpNode> nodes;
  nodes.reserve(topology.size());
  for (std::size_t i = 0; i < topology.size(); ++i) {
    nodes.emplace_back(rnp_config, static_cast<std::uint32_t>(i));
  }
  return measure(topology, nodes, config, seed);
}

}  // namespace geored::coord
