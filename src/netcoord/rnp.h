// RNP-style Retrospective Network Positioning.
//
// The paper assigns coordinates with RNP (Ping, McConnell & Hwang,
// GridPeer'09), the authors' improvement over Vivaldi. RNP's public
// description: it keeps past measurements and "consumes information
// differently according to the reliability of the information", yielding
// better prediction accuracy and coordinate stability than Vivaldi's
// single-sample updates.
//
// This implementation reconstructs that mechanism: every node retains a
// sliding window of recent samples (peer coordinate, RTT, peer reliability)
// and periodically *re-fits* its own coordinate against the whole window via
// reliability- and recency-weighted gradient descent on the relative
// prediction error. Between refits it applies plain Vivaldi steps so the
// system bootstraps as quickly as Vivaldi does. DESIGN.md documents this as
// a substitution for the (unavailable) original RNP code.
#pragma once

#include <cstdint>
#include <deque>

#include "netcoord/vivaldi.h"

namespace geored::coord {

struct RnpConfig {
  VivaldiConfig vivaldi;          ///< bootstrap / online update parameters
  std::size_t window_size = 64;   ///< retained samples per node
  std::size_t refit_every = 16;   ///< observations between retrospective refits
  std::size_t descent_steps = 25; ///< gradient steps per refit
  double learning_rate = 0.05;    ///< initial step size (fraction of avg RTT)
  double recency_decay = 0.97;    ///< weight multiplier per sample of age
};

/// Per-node state machine of the retrospective positioning protocol.
class RnpNode : public VivaldiNode {
 public:
  RnpNode(const RnpConfig& config, std::uint32_t node_id);

  /// Records the sample, applies an online Vivaldi step, and every
  /// `refit_every` observations re-fits the coordinate against the window.
  void observe(const NetworkCoordinate& remote, double rtt_ms);

 private:
  struct Sample {
    NetworkCoordinate remote;
    double rtt_ms;
    std::uint64_t seq;  ///< observation index, for recency weighting
  };

  void refit();

  RnpConfig rnp_config_;
  std::deque<Sample> window_;
  std::uint64_t observation_count_ = 0;
};

}  // namespace geored::coord
