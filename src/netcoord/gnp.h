// GNP (Ng & Zhang, INFOCOM'02): landmark-based network embedding.
//
// A fixed set of landmark nodes is embedded first by jointly minimizing the
// relative error between their pairwise coordinate distances and measured
// RTTs (simplex-downhill, exactly as in the original paper). Every other
// node then solves a small independent minimization against the landmarks
// only. Included as the classic centralized baseline the paper's related
// work contrasts RNP with.
#pragma once

#include <cstdint>
#include <vector>

#include "netcoord/coordinate.h"
#include "topology/topology.h"

namespace geored::coord {

struct GnpConfig {
  std::size_t dimensions = 5;
  std::size_t landmark_count = 15;
  std::size_t landmark_iterations = 20000;  ///< Nelder-Mead budget, landmark phase
  std::size_t node_iterations = 2000;       ///< Nelder-Mead budget, per node
};

/// Selects `count` landmarks spread across the topology by greedy
/// farthest-point traversal of the RTT matrix (first landmark = node 0).
std::vector<topo::NodeId> select_landmarks(const topo::Topology& topology, std::size_t count);

/// Embeds every node of the topology. Coordinates of landmarks come from the
/// joint fit; all other nodes are fitted against the landmarks.
std::vector<NetworkCoordinate> run_gnp(const topo::Topology& topology, const GnpConfig& config);

}  // namespace geored::coord
