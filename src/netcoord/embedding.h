// Drivers that run a decentralized coordinate protocol (Vivaldi / RNP) over a
// ground-truth topology until convergence, and an evaluator that quantifies
// how well a coordinate assignment predicts the true RTT matrix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "netcoord/gnp.h"
#include "netcoord/rnp.h"
#include "netcoord/vivaldi.h"
#include "topology/topology.h"

namespace geored::coord {

struct GossipConfig {
  /// Communication rounds; in each round every node samples one random peer.
  /// 256 rounds bring RNP below 10 ms median absolute error on the default
  /// 226-node topology (the accuracy the paper reports for RNP).
  std::size_t rounds = 256;
  /// Fraction of a node's samples directed at a fixed random neighbor set
  /// (Vivaldi works best with mostly-stable neighbors plus some far pokes).
  std::size_t neighbor_set_size = 16;
  double far_probe_probability = 0.25;
};

/// Runs Vivaldi for all nodes of the topology; deterministic in `seed`.
std::vector<NetworkCoordinate> run_vivaldi(const topo::Topology& topology,
                                           const VivaldiConfig& config,
                                           const GossipConfig& gossip, std::uint64_t seed);

/// Runs the RNP retrospective protocol for all nodes; deterministic in `seed`.
std::vector<NetworkCoordinate> run_rnp(const topo::Topology& topology, const RnpConfig& config,
                                       const GossipConfig& gossip, std::uint64_t seed);

/// Oracle embedding: coordinates that reproduce RTTs exactly are impossible
/// in general, so the oracle instead marks "use the true matrix"; provided
/// for ablations via PlacementContext rather than as coordinates.

/// Prediction quality of an embedding against the ground truth.
struct EmbeddingQuality {
  Summary absolute_error_ms;  ///< |predicted - actual| over all pairs
  Summary relative_error;     ///< |predicted - actual| / actual
  std::string to_string() const;
};

EmbeddingQuality evaluate_embedding(const topo::Topology& topology,
                                    const std::vector<NetworkCoordinate>& coords);

}  // namespace geored::coord
