#include "netcoord/vivaldi.h"

#include <algorithm>
#include <cmath>

#include "common/ensure.h"

namespace geored::coord {

VivaldiNode::VivaldiNode(const VivaldiConfig& config, std::uint32_t node_id)
    : config_(config), coord_(config.dimensions), node_id_(node_id) {
  GEORED_ENSURE(config.dimensions >= 1, "Vivaldi needs at least one dimension");
  GEORED_ENSURE(config.ce > 0 && config.ce <= 1, "ce must be in (0,1]");
  GEORED_ENSURE(config.cc > 0 && config.cc <= 1, "cc must be in (0,1]");
  coord_.error = config.initial_error;
  if (config.use_height) {
    GEORED_ENSURE(config.initial_height > 0.0,
                  "initial_height must be positive when the height model is on");
    coord_.height = config.initial_height;
  }
}

void VivaldiNode::observe(const NetworkCoordinate& remote, double rtt_ms) {
  if (!(rtt_ms > 0.0)) return;  // drop non-positive / NaN samples
  vivaldi_step(remote, rtt_ms);
  ++samples_;
}

void VivaldiNode::vivaldi_step(const NetworkCoordinate& remote, double rtt_ms) {
  const double spatial_dist = coord_.position.distance_to(remote.position);
  const double predicted = spatial_dist + (config_.use_height ? coord_.height + remote.height : 0.0);

  // Confidence weight: how much of the blame for the prediction error this
  // node takes, based on the two error estimates.
  const double remote_error = std::clamp(remote.error, 1e-6, config_.max_error);
  const double local_error = std::clamp(coord_.error, 1e-6, config_.max_error);
  const double w = local_error / (local_error + remote_error);

  // Update the moving relative-error estimate.
  const double sample_error = std::abs(predicted - rtt_ms) / rtt_ms;
  coord_.error = std::min(config_.max_error,
                          sample_error * config_.ce * w + coord_.error * (1.0 - config_.ce * w));

  // Spring force: positive when the prediction is too short (push apart).
  const double delta = config_.cc * w;
  const double force = delta * (rtt_ms - predicted);

  // Direction away from the remote node; the height axis always participates
  // with the combined-height share of the augmented norm (Vivaldi §5.4).
  const Point unit = coord_.position.unit_vector_from(remote.position, node_id_);
  if (config_.use_height) {
    const double combined_height = coord_.height + remote.height;
    const double augmented_norm = spatial_dist + combined_height;
    if (augmented_norm > 1e-9) {
      const double spatial_share = spatial_dist / augmented_norm;
      const double height_share = combined_height / augmented_norm;
      coord_.position += unit * (force * spatial_share);
      coord_.height = std::max(0.0, coord_.height + force * height_share);
    } else {
      coord_.position += unit * force;
    }
  } else {
    coord_.position += unit * force;
  }
  // A single bad sample (or a degenerate unit vector) must never corrupt the
  // coordinate: every component, the height, and the error stay finite.
  GEORED_DCHECK(coord_.position.is_finite(),
                "Vivaldi update produced a non-finite coordinate");
  GEORED_DCHECK(std::isfinite(coord_.height) && coord_.height >= 0.0,
                "Vivaldi update produced an invalid height");
  GEORED_DCHECK(std::isfinite(coord_.error) && coord_.error >= 0.0,
                "Vivaldi update produced an invalid error estimate");
}

}  // namespace geored::coord
