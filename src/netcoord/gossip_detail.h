// Shared gossip loop for decentralized coordinate protocols (implementation
// detail of embedding.cpp and stability.cpp).
//
// Each node keeps a fixed random neighbor set and, once per round, probes
// either a neighbor or (with far_probe_probability) a uniformly random node
// — Vivaldi's recommended mix of stable nearby contacts and occasional far
// pokes. `round_hook(round)` runs after every completed round.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ensure.h"
#include "common/random.h"
#include "netcoord/embedding.h"
#include "topology/topology.h"

namespace geored::coord::detail {

template <typename NodeVector, typename RoundHook>
void run_gossip(const topo::Topology& topology, NodeVector& nodes,
                const GossipConfig& gossip, std::uint64_t seed, RoundHook&& round_hook) {
  const std::size_t n = topology.size();
  GEORED_ENSURE(n >= 2, "gossip needs at least two nodes");
  Rng rng(seed);

  const std::size_t neighbors_per_node = std::min(gossip.neighbor_set_size, n - 1);
  std::vector<std::vector<topo::NodeId>> neighbor_sets(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto sample = rng.sample_without_replacement(n - 1, neighbors_per_node);
    for (auto idx : sample) {
      // Map [0, n-1) onto node ids skipping i.
      neighbor_sets[i].push_back(static_cast<topo::NodeId>(idx >= i ? idx + 1 : idx));
    }
  }

  for (std::size_t round = 0; round < gossip.rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      topo::NodeId peer;
      if (!neighbor_sets[i].empty() && !rng.bernoulli(gossip.far_probe_probability)) {
        peer = neighbor_sets[i][rng.below(neighbor_sets[i].size())];
      } else {
        std::size_t p = rng.below(n - 1);
        peer = static_cast<topo::NodeId>(p >= i ? p + 1 : p);
      }
      const double rtt = topology.rtt_ms(static_cast<topo::NodeId>(i), peer);
      nodes[i].observe(nodes[peer].coordinate(), rtt);
    }
    round_hook(round);
  }
}

}  // namespace geored::coord::detail
