#include "netcoord/embedding.h"

#include <cmath>
#include <sstream>

#include "common/ensure.h"
#include "common/random.h"
#include "netcoord/gossip_detail.h"

namespace geored::coord {

namespace {

/// Gossip with no per-round instrumentation.
template <typename NodeVector>
void run_gossip(const topo::Topology& topology, NodeVector& nodes,
                const GossipConfig& gossip, std::uint64_t seed) {
  detail::run_gossip(topology, nodes, gossip, seed, [](std::size_t) {});
}

}  // namespace

std::vector<NetworkCoordinate> run_vivaldi(const topo::Topology& topology,
                                           const VivaldiConfig& config,
                                           const GossipConfig& gossip, std::uint64_t seed) {
  std::vector<VivaldiNode> nodes;
  nodes.reserve(topology.size());
  for (std::size_t i = 0; i < topology.size(); ++i) {
    nodes.emplace_back(config, static_cast<std::uint32_t>(i));
  }
  run_gossip(topology, nodes, gossip, seed);
  std::vector<NetworkCoordinate> coords;
  coords.reserve(nodes.size());
  for (const auto& node : nodes) coords.push_back(node.coordinate());
  return coords;
}

std::vector<NetworkCoordinate> run_rnp(const topo::Topology& topology, const RnpConfig& config,
                                       const GossipConfig& gossip, std::uint64_t seed) {
  std::vector<RnpNode> nodes;
  nodes.reserve(topology.size());
  for (std::size_t i = 0; i < topology.size(); ++i) {
    nodes.emplace_back(config, static_cast<std::uint32_t>(i));
  }
  run_gossip(topology, nodes, gossip, seed);
  std::vector<NetworkCoordinate> coords;
  coords.reserve(nodes.size());
  for (const auto& node : nodes) coords.push_back(node.coordinate());
  return coords;
}

EmbeddingQuality evaluate_embedding(const topo::Topology& topology,
                                    const std::vector<NetworkCoordinate>& coords) {
  GEORED_ENSURE(coords.size() == topology.size(),
                "coordinate count must match topology size");
  std::vector<double> abs_errors, rel_errors;
  const std::size_t n = topology.size();
  abs_errors.reserve(n * (n - 1) / 2);
  rel_errors.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double actual =
          topology.rtt_ms(static_cast<topo::NodeId>(i), static_cast<topo::NodeId>(j));
      const double predicted = predicted_rtt_ms(coords[i], coords[j]);
      abs_errors.push_back(std::abs(predicted - actual));
      if (actual > 0.0) rel_errors.push_back(std::abs(predicted - actual) / actual);
    }
  }
  EmbeddingQuality quality;
  quality.absolute_error_ms = summarize(std::move(abs_errors));
  quality.relative_error = summarize(std::move(rel_errors));
  return quality;
}

std::string EmbeddingQuality::to_string() const {
  std::ostringstream os;
  os << "abs error (ms): " << absolute_error_ms.to_string() << '\n'
     << "rel error: " << relative_error.to_string();
  return os.str();
}

}  // namespace geored::coord
