#include "netcoord/coordinate.h"

namespace geored::coord {

double predicted_rtt_ms(const NetworkCoordinate& a, const NetworkCoordinate& b) {
  return a.position.distance_to(b.position) + a.height + b.height;
}

}  // namespace geored::coord
