// Network coordinates: points in a low-dimensional Euclidean space augmented
// with a "height" (Dabek et al., SIGCOMM'04) modelling access-link delay.
// Predicted RTT between two nodes is the Euclidean distance between their
// positions plus both heights.
#pragma once

#include "common/point.h"

namespace geored::coord {

struct NetworkCoordinate {
  Point position;       ///< position in the Euclidean part of the space
  double height = 0.0;  ///< non-negative access-link component (ms)
  double error = 1.0;   ///< local relative-error estimate in [0, ~1+]

  NetworkCoordinate() = default;
  explicit NetworkCoordinate(std::size_t dim) : position(dim) {}
  NetworkCoordinate(Point pos, double h) : position(std::move(pos)), height(h) {}
};

/// Predicted RTT (ms) between two coordinates:
/// ||a.position - b.position|| + a.height + b.height.
double predicted_rtt_ms(const NetworkCoordinate& a, const NetworkCoordinate& b);

}  // namespace geored::coord
