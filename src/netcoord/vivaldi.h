// Vivaldi (Dabek et al., SIGCOMM'04): a decentralized spring-relaxation
// network coordinate system. Each node adjusts its own coordinate after every
// RTT sample to a peer, weighting the adjustment by the relative confidence
// of the two nodes. Implemented with the height-vector extension.
#pragma once

#include <cstdint>

#include "netcoord/coordinate.h"

namespace geored::coord {

struct VivaldiConfig {
  std::size_t dimensions = 5;
  double ce = 0.25;         ///< error-estimate smoothing gain
  double cc = 0.25;         ///< coordinate adjustment gain
  /// Model access links as a height component (Vivaldi §5.4). Helps when
  /// per-node access delay dominates prediction error (DSL-heavy client
  /// populations); on WAN matrices whose error is mostly multiplicative
  /// path inflation the heights soak up that noise instead and *hurt*
  /// accuracy, so the model is opt-in.
  bool use_height = false;
  /// Starting height (ms). Must be positive when use_height is set: height
  /// updates are proportional to the current combined height, so a node
  /// starting at exactly zero could never acquire one.
  double initial_height = 1.0;
  double initial_error = 1.0;
  double max_error = 1.5;   ///< error estimates are clamped to this ceiling
};

/// The per-node state machine of the Vivaldi protocol.
class VivaldiNode {
 public:
  VivaldiNode(const VivaldiConfig& config, std::uint32_t node_id);

  /// Processes one RTT measurement against a peer whose current coordinate is
  /// `remote`. Updates this node's coordinate and error estimate.
  /// `rtt_ms` must be positive; non-positive samples are ignored.
  void observe(const NetworkCoordinate& remote, double rtt_ms);

  const NetworkCoordinate& coordinate() const { return coord_; }

  /// Number of samples consumed so far.
  std::uint64_t samples() const { return samples_; }

 protected:
  /// Core spring-relaxation step, shared with the RNP bootstrap phase.
  void vivaldi_step(const NetworkCoordinate& remote, double rtt_ms);

  VivaldiConfig config_;
  NetworkCoordinate coord_;
  std::uint32_t node_id_;
  std::uint64_t samples_ = 0;
};

}  // namespace geored::coord
