// Coordinate stability measurement.
//
// The paper's stated reason for RNP over Vivaldi is twofold: prediction
// accuracy AND "coordinate stability ... even if it runs on unstable
// platforms". Unstable coordinates churn downstream consumers (summaries,
// placements) even when prediction error is fine, so stability deserves its
// own metric: the per-node coordinate displacement per gossip round after a
// warmup period.
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "netcoord/embedding.h"
#include "netcoord/rnp.h"
#include "netcoord/vivaldi.h"
#include "topology/topology.h"

namespace geored::coord {

enum class Protocol { kVivaldi, kRnp };

struct StabilityReport {
  /// Per-node coordinate displacement per round (ms of coordinate space),
  /// measured after the warmup rounds.
  Summary displacement_per_round_ms;
  /// Median absolute prediction error of the final coordinates (context:
  /// stability means little if accuracy was sacrificed).
  double final_abs_error_p50_ms = 0.0;
};

struct StabilityConfig {
  GossipConfig gossip;              ///< total rounds (warmup + measured)
  std::size_t warmup_rounds = 64;   ///< displacement ignored before this
  VivaldiConfig vivaldi;            ///< parameters for both protocols
  RnpConfig rnp;                    ///< RNP-specific parameters
};

/// Runs `protocol` over the topology and measures displacement per round.
/// Deterministic in `seed`; both protocols see identical gossip schedules
/// for a given seed, so reports are directly comparable.
StabilityReport measure_stability(const topo::Topology& topology, Protocol protocol,
                                  const StabilityConfig& config, std::uint64_t seed);

}  // namespace geored::coord
