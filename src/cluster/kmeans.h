// Lloyd's k-means with k-means++ seeding, in plain and weighted forms.
//
// The weighted form is Algorithm 1's macro-clustering step: micro-clusters
// are treated as pseudo-points located at their centroids and weighted by
// their access counts (Aggarwal et al.'s macro-cluster construction).
#pragma once

#include <cstdint>
#include <vector>

#include "common/point.h"
#include "common/random.h"

namespace geored::cluster {

struct WeightedPoint {
  Point position;
  double weight = 1.0;
};

struct KMeansConfig {
  std::size_t k = 3;
  std::size_t max_iterations = 100;
  /// Independent k-means++ restarts; the best objective wins.
  std::size_t restarts = 4;
  /// Convergence threshold on the relative objective improvement.
  double tolerance = 1e-6;
};

struct KMeansResult {
  std::vector<Point> centroids;        ///< k centroids (fewer iff fewer inputs)
  std::vector<std::size_t> assignment; ///< input index -> centroid index
  double objective = 0.0;              ///< weighted sum of squared distances
  std::size_t iterations = 0;          ///< Lloyd iterations of the winning restart
};

/// Weighted k-means. Requires at least one point with positive weight; if
/// there are fewer distinct points than k, the result has fewer centroids.
/// Deterministic in `rng`'s state. Lloyd iterations use Hamerly-style
/// distance bounds to skip full centroid scans for points that provably
/// kept their assignment; the acceleration is exact — centroids,
/// assignments, objective, and iteration counts are bit-identical to the
/// scalar reference below.
KMeansResult weighted_kmeans(const std::vector<WeightedPoint>& points,
                             const KMeansConfig& config, Rng& rng);

/// Scalar reference solver: identical seeding (same rng consumption) and
/// plain full-scan Lloyd iterations. Retained for the KMeansEquivalence
/// suites and the macro-clustering benchmark baseline; must stay untouched
/// by future optimization.
KMeansResult weighted_kmeans_scalar(const std::vector<WeightedPoint>& points,
                                    const KMeansConfig& config, Rng& rng);

/// Unweighted convenience wrapper (all weights 1).
KMeansResult kmeans(const std::vector<Point>& points, const KMeansConfig& config, Rng& rng);

/// Lloyd iterations from explicit starting centroids — no seeding, no
/// restarts, fully deterministic. Used to warm-start macro-clustering from
/// the previous epoch's centroids so stable populations yield stable
/// placements instead of churning with the seeding randomness.
KMeansResult weighted_kmeans_from(const std::vector<WeightedPoint>& points,
                                  std::vector<Point> initial_centroids,
                                  const KMeansConfig& config);

/// Scalar reference warm-start solver (see weighted_kmeans_scalar).
KMeansResult weighted_kmeans_from_scalar(const std::vector<WeightedPoint>& points,
                                         std::vector<Point> initial_centroids,
                                         const KMeansConfig& config);

/// Weighted sum of squared distances from each point to its nearest centroid
/// (the k-means objective; exposed for tests and monotonicity checks).
double kmeans_objective(const std::vector<WeightedPoint>& points,
                        const std::vector<Point>& centroids);

}  // namespace geored::cluster
