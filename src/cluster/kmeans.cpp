#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/arena.h"
#include "common/ensure.h"
#include "common/point_set.h"
#include "common/point_set_simd.h"
#include "common/thread_pool.h"

namespace geored::cluster {

namespace {

/// Below this many points the Lloyd passes stay sequential (pool dispatch
/// would dominate). Per-point results are written independently, so the
/// parallel passes are bitwise identical to the sequential ones at any
/// thread count — the threshold is purely a performance gate.
constexpr std::size_t kMinParallelPoints = 2048;

/// Debug check: every centroid is finite with the expected dimensionality.
bool centroids_finite(const PointSet& centroids, std::size_t dim) {
  if (centroids.dim() != dim) return false;
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const double* row = centroids.row(c);
    for (std::size_t d = 0; d < dim; ++d) {
      if (!std::isfinite(row[d])) return false;
    }
  }
  return true;
}

/// Contiguous (structure-of-arrays) view of the weighted input, built once
/// per solve so the hot loops never chase per-Point heap allocations.
struct FlatPoints {
  PointSet positions;
  std::vector<double> weights;  // lint: alloc-ok (SoA built once per solve)
};

FlatPoints flatten(const std::vector<WeightedPoint>& points) {
  FlatPoints flat;
  flat.positions = PointSet(points.front().position.dim());
  flat.positions.reserve(points.size());
  flat.weights.reserve(points.size());
  for (const auto& wp : points) {
    flat.positions.push_back(wp.position);
    flat.weights.push_back(wp.weight);
  }
  return flat;
}

/// Per-point squared distance to the nearest centroid (parallel, per-point
/// writes) followed by a sequential weighted sum in point order — the exact
/// accumulation order of the scalar kmeans_objective.
double objective_of(const FlatPoints& points, const PointSet& centroids, double* best_dist_sq,
                    std::size_t* assignment = nullptr) {
  const std::size_t n = points.positions.size();
  parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t nearest =
              centroids.nearest_of(points.positions.row(i), &best_dist_sq[i]);
          if (assignment != nullptr) assignment[i] = nearest;
        }
      },
      kMinParallelPoints);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += points.weights[i] * best_dist_sq[i];
  return total;
}

/// k-means++ seeding over weighted points: the first centroid is drawn with
/// probability proportional to weight, subsequent ones proportional to
/// weight * D^2 (distance to the nearest already-chosen centroid).
PointSet kmeanspp_seed(const FlatPoints& points, std::size_t k, Rng& rng) {
  const std::size_t n = points.positions.size();
  PointSet centroids(points.positions.dim());
  centroids.reserve(k);
  centroids.push_back(points.positions.point(rng.weighted_index(points.weights)));

  // Seeding scratch lives on the thread's epoch arena: taken once per call,
  // reused across the chosen-centroid loop, returned wholesale at scope exit.
  ArenaScope scope;
  double* dist_sq = scope.span<double>(n);
  std::fill(dist_sq, dist_sq + n, std::numeric_limits<double>::infinity());
  double* probs = scope.span<double>(n);
  while (centroids.size() < k) {
    const double* last = centroids.row(centroids.size() - 1);
    parallel_for(
        n,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            dist_sq[i] = std::min(dist_sq[i], points.positions.distance_squared(i, last));
          }
        },
        kMinParallelPoints);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      probs[i] = points.weights[i] * dist_sq[i];
      total += probs[i];
    }
    if (total <= 0.0) break;  // all remaining mass sits on chosen centroids
    centroids.push_back(points.positions.point(rng.weighted_index(probs, n)));
  }
  return centroids;
}

/// Plain Lloyd's algorithm from given centroids: full nearest-centroid scan
/// for every point in every iteration. The scalar reference for the
/// bound-accelerated lloyd() below.
KMeansResult lloyd_scalar(const FlatPoints& points, PointSet centroids,
                          const KMeansConfig& config) {
  const std::size_t n = points.positions.size();
  const std::size_t dim = points.positions.dim();
  const std::size_t k = centroids.size();
  double total_weight = 0.0;
  for (const double w : points.weights) total_weight += w;
  std::vector<std::size_t> assignment(n, 0);  // lint: alloc-ok (frozen scalar reference)
  // Accumulators reused across iterations instead of reallocating each one.
  std::vector<double> sums(k * dim);              // lint: alloc-ok (frozen scalar reference)
  std::vector<double> cluster_weight(k);          // lint: alloc-ok (frozen scalar reference)
  std::vector<double> best_dist_sq(n);            // lint: alloc-ok (frozen scalar reference)
  double prev_objective = std::numeric_limits<double>::infinity();
  std::size_t iterations = 0;
  // The convergence objective at the end of each iteration already assigns
  // every point to its nearest (post-update) centroid, which is exactly the
  // assignment the next iteration needs — so the explicit assignment scan
  // only runs once, before the first update.
  bool assignment_current = false;
  for (; iterations < config.max_iterations; ++iterations) {
    // Assignment step: independent per-point nearest-centroid scans.
    if (!assignment_current) {
      parallel_for(
          n,
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
              assignment[i] = centroids.nearest_of(points.positions.row(i));
            }
          },
          kMinParallelPoints);
    }
    // Update step: sequential accumulation in point order (deterministic).
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(cluster_weight.begin(), cluster_weight.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = assignment[i];
      const double w = points.weights[i];
      const double* p = points.positions.row(i);
      double* sum = sums.data() + c * dim;
      for (std::size_t d = 0; d < dim; ++d) sum[d] += p[d] * w;
      cluster_weight[c] += w;
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (cluster_weight[c] > 0.0) {
        double* row = centroids.mutable_row(c);
        const double* sum = sums.data() + c * dim;
        for (std::size_t d = 0; d < dim; ++d) row[d] = sum[d] / cluster_weight[c];
      }
      // Empty clusters keep their previous centroid; with good seeding this
      // is rare and self-corrects on the next assignment.
    }
    // Weight conservation: per-cluster accumulation must redistribute the
    // input mass exactly (up to summation order), and the centroid update
    // must never produce a non-finite coordinate.
    GEORED_DCHECK(
        [&] {
          double redistributed = 0.0;
          for (const double w : cluster_weight) redistributed += w;
          return std::abs(redistributed - total_weight) <=
                 1e-9 * std::max(1.0, total_weight);
        }(),
        "k-means iteration lost or invented point weight");
    GEORED_DCHECK(centroids_finite(centroids, dim),
                  "k-means produced a non-finite centroid");
    const double objective = objective_of(points, centroids, best_dist_sq.data(), assignment.data());
    assignment_current = true;  // now reflects the post-update centroids
    // The isfinite guard keeps the first iteration from "converging" against
    // the infinite sentinel (inf - obj <= tol * inf holds in IEEE arithmetic).
    if (std::isfinite(prev_objective) &&
        prev_objective - objective <= config.tolerance * std::max(1.0, prev_objective)) {
      prev_objective = objective;
      ++iterations;
      break;
    }
    prev_objective = objective;
  }
  KMeansResult result;
  if (!assignment_current) {  // max_iterations == 0: no pass has run yet
    prev_objective = objective_of(points, centroids, best_dist_sq.data(), assignment.data());
  }
  result.objective = prev_objective;
  result.assignment = std::move(assignment);
  result.iterations = iterations;
  result.centroids.reserve(k);
  for (std::size_t c = 0; c < k; ++c) result.centroids.push_back(centroids.point(c));
  return result;
}

/// Downward floating-point guard for the Hamerly bounds: a relative shave
/// plus an absolute one, orders of magnitude wider than the rounding error
/// of a distance computation, so a "provably still closest" verdict can
/// never be an artifact of FP noise. Skipped scans must be *conservative* —
/// a too-small bound only costs a redundant rescan, never a wrong answer.
/// The constants are named so the batched skip kernel (hamerly_skip_batch)
/// can replay the identical guard arithmetic lane-wide.
constexpr double kGuardScale = 1.0 - 1e-10;
constexpr double kGuardShift = 1e-12;
double guard_down(double bound) {  // lint: no-ensure (total)
  return bound * kGuardScale - kGuardShift;
}

/// Elkan-style half-separations: s_half[c] conservatively under-estimates
/// half the distance from centroid c to its nearest other centroid. Any
/// point whose distance to its assigned centroid is below that radius is
/// provably closer to it than to every other centroid (triangle
/// inequality), with no per-point bound needed. O(k^2 * dim) per iteration —
/// noise next to the O(n) passes for the macro-clustering panels (k <= a few
/// dozen). k == 1 leaves s_half[0] = +inf (the only centroid always wins);
/// coincident centroids leave a slightly negative guard that never fires.
void half_separation(const PointSet& centroids, double* s_half) {
  const std::size_t k = centroids.size();
  for (std::size_t c = 0; c < k; ++c) {
    double min_sq = std::numeric_limits<double>::infinity();
    for (std::size_t other = 0; other < k; ++other) {
      if (other == c) continue;
      min_sq = std::min(min_sq, centroids.distance_squared(c, centroids.row(other)));
    }
    s_half[c] = guard_down(0.5 * std::sqrt(min_sq));
  }
}

/// One bounded assignment+objective pass (Hamerly bounds tightened with the
/// Elkan half-separations).
///
/// Invariant on entry: lower[i] is a conservative lower bound on the
/// distance (not squared) from point i to every centroid *other than*
/// assignment[i], as of the pre-update centroid positions. delta_max is an
/// upper bound on how far any centroid moved in the update step,
/// delta_second on how far any centroid other than `moved_most` moved — so
/// a point assigned to the farthest-moving centroid only pays the
/// second-largest movement against its bound (Hamerly's refinement).
/// s_half[] holds the post-update half-separations from half_separation().
///
/// Each parallel chunk runs three phases. Phase 1 computes the exact squared
/// distance to every point's assigned centroid with one batched SIMD kernel
/// (assigned_distance_batch — bit-identical to distance_squared). Phase 2
/// applies the skip test against z = max(decayed Hamerly bound, assigned
/// centroid's half-separation): d_own < z (proven in shaved squared space)
/// means the assigned centroid is *strictly* closest — nearest2_of would
/// pick the same index and compute the same squared distance — so the
/// k-centroid rescan is skipped; survivors are collected into an arena index
/// span. Phase 3 rescans only the survivors with the batched nearest2
/// kernel (bit-identical to nearest2_of) and scatters assignment and bounds
/// back. Every per-point result is a pure function of the point, so chunk
/// boundaries (thread count) cannot change any output, and best_dist_sq[i]
/// always holds the exact squared distance to the assigned centroid — the
/// sequential weighted objective sum is bit-identical to the scalar
/// objective_of.
double objective_bounded(const FlatPoints& points, const PointSet& centroids,
                         double* best_dist_sq, std::size_t* assignment, double* lower,
                         const double* s_half, double delta_max, double delta_second,
                         std::size_t moved_most) {
  const std::size_t n = points.positions.size();
  const std::size_t dim = points.positions.dim();
  const std::size_t k = centroids.size();
  const double* base = points.positions.row(0);
  const double* cen = centroids.row(0);
  const simd::Level level = simd::active_level();
  parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        const std::size_t chunk = end - begin;
        // Phase 1: exact d_own^2 for the whole chunk, written straight into
        // best_dist_sq (skipped points keep it; survivors get overwritten by
        // the rescan with the identical bits the full scan computes).
        simd::assigned_distance_batch(base + begin * dim, dim, nullptr, chunk, cen,
                                      assignment + begin, best_dist_sq + begin, level);
        // Phase 2: batched skip tests (the squared-space predicate
        // d_own^2 < guard(z^2) with z = max(decayed Hamerly bound, Elkan
        // radius) — see hamerly_skip_batch for the full derivation, which
        // this kernel replays op for op). Skipped lanes get their lower
        // bound refreshed in place; survivor indices (absolute, via
        // base_index = begin) go to the arena.
        ArenaScope scope;
        std::size_t* survivors = scope.span<std::size_t>(chunk);
        const std::size_t pending = simd::hamerly_skip_batch(
            chunk, assignment + begin, best_dist_sq + begin, lower + begin, s_half,
            delta_max, delta_second, moved_most, kGuardScale, kGuardShift, begin, survivors,
            level);
        // Phase 3: batched full rescan of the survivors.
        std::size_t* out_assign = scope.span<std::size_t>(pending);
        double* out_best = scope.span<double>(pending);
        double* out_second = scope.span<double>(pending);
        simd::nearest2_batch(base, dim, survivors, pending, cen, k, out_assign, out_best,
                             out_second, level);
        for (std::size_t j = 0; j < pending; ++j) {
          const std::size_t i = survivors[j];
          assignment[i] = out_assign[j];
          best_dist_sq[i] = out_best[j];
          lower[i] = guard_down(std::sqrt(out_second[j]));
        }
      },
      kMinParallelPoints);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += points.weights[i] * best_dist_sq[i];
  return total;
}

/// Fixed block size for the deterministic parallel update step below. Block
/// boundaries depend only on n — never on the thread count — so the
/// cluster-major member order they produce is thread-count invariant.
constexpr std::size_t kAccumulateGrain = 65536;

/// Deterministic parallel accumulation of per-cluster weighted sums: a
/// cluster-major counting sort. The sequential update loop visits points in
/// ascending index order, so each cluster's FP accumulation sequence is
/// "its members, ascending". This reproduces exactly that sequence in
/// parallel: per-block member counts (parallel), exclusive prefix offsets
/// (sequential, O(blocks * k)), a scatter building `order` — cluster
/// segments with ascending point indices inside each (parallel, each block
/// owns its offset row) — then one parallel_for over clusters summing each
/// segment in order. Per-cluster adds happen in the identical order at any
/// thread count, so sums and cluster_weight are bit-identical to the
/// sequential loop.
void accumulate_clusters_parallel(const FlatPoints& points, const std::size_t* assignment,
                                  std::size_t k, double* sums, double* cluster_weight,
                                  std::size_t* counts, std::size_t* order,
                                  std::size_t* start) {
  const std::size_t n = points.positions.size();
  const std::size_t dim = points.positions.dim();
  const std::size_t blocks = (n + kAccumulateGrain - 1) / kAccumulateGrain;
  parallel_for(
      blocks,
      [&](std::size_t bb, std::size_t be) {
        for (std::size_t b = bb; b < be; ++b) {
          std::size_t* cnt = counts + b * k;
          std::fill(cnt, cnt + k, 0);
          const std::size_t lo = b * kAccumulateGrain;
          const std::size_t hi = std::min(n, lo + kAccumulateGrain);
          for (std::size_t i = lo; i < hi; ++i) ++cnt[assignment[i]];
        }
      },
      1);
  // Exclusive prefix: start[c] is cluster c's segment base in `order`, and
  // each block's counts row becomes its write cursor into that segment.
  std::size_t run = 0;
  for (std::size_t c = 0; c < k; ++c) {
    start[c] = run;
    std::size_t cursor = run;
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t block_count = counts[b * k + c];
      counts[b * k + c] = cursor;
      cursor += block_count;
    }
    run = cursor;
  }
  start[k] = run;
  parallel_for(
      blocks,
      [&](std::size_t bb, std::size_t be) {
        for (std::size_t b = bb; b < be; ++b) {
          std::size_t* cursor = counts + b * k;
          const std::size_t lo = b * kAccumulateGrain;
          const std::size_t hi = std::min(n, lo + kAccumulateGrain);
          for (std::size_t i = lo; i < hi; ++i) order[cursor[assignment[i]]++] = i;
        }
      },
      1);
  const double* base = points.positions.row(0);
  const simd::Level level = simd::active_level();
  parallel_for(
      k,
      [&](std::size_t cb, std::size_t ce) {
        for (std::size_t c = cb; c < ce; ++c) {
          double* sum = sums + c * dim;
          std::fill(sum, sum + dim, 0.0);
          cluster_weight[c] = 0.0;
          // Per-cluster-segment shape of the scatter kernel: the segment's
          // members in ascending order, accumulators pinned to cluster c.
          simd::weighted_scatter_add(base, dim, order + start[c], start[c + 1] - start[c],
                                     points.weights.data(), nullptr, sum,
                                     cluster_weight + c, level);
        }
      },
      1);
}

/// Lloyd's algorithm with Hamerly-style bound acceleration; shared by the
/// seeded and warm-start entry points. Exactly reproduces lloyd_scalar —
/// the bounds only decide *whether* a scan can be skipped, never what any
/// retained value is, so centroids, assignment, objective, and iteration
/// count are bit-identical (the KMeansEquivalence suite pins this).
KMeansResult lloyd(const FlatPoints& points, PointSet centroids, const KMeansConfig& config) {
  const std::size_t n = points.positions.size();
  const std::size_t dim = points.positions.dim();
  const std::size_t k = centroids.size();
  const simd::Level level = simd::active_level();
  double total_weight = 0.0;
  for (const double w : points.weights) total_weight += w;
  std::vector<std::size_t> assignment(n, 0);  // escapes into the result — lint: alloc-ok
  // All remaining scratch is arena-backed: every buffer below is either
  // filled before its first read each iteration or written for all i before
  // the objective pass, so uninitialized spans are safe, and the scope
  // returns the lot when the solve finishes.
  ArenaScope scope;
  double* sums = scope.span<double>(k * dim);
  double* cluster_weight = scope.span<double>(k);
  double* best_dist_sq = scope.span<double>(n);
  // Bound state: per-point lower bound on the distance to the second-closest
  // centroid (Hamerly), per-centroid half-separations (Elkan), and the
  // pre-update centroid positions for the per-iteration movement bound.
  double* lower = scope.span<double>(n);
  double* s_half = scope.span<double>(k);
  double* old_centroids = scope.span<double>(k * dim);
  // Counting-sort scratch for the deterministic parallel update step; only
  // taken when the pool can actually run it in parallel (the sequential
  // update is bit-identical and cheaper on one thread).
  const bool parallel_update =
      n >= kMinParallelPoints && ThreadPool::global().thread_count() > 1;
  const std::size_t blocks = (n + kAccumulateGrain - 1) / kAccumulateGrain;
  std::size_t* counts = parallel_update ? scope.span<std::size_t>(blocks * k) : nullptr;
  std::size_t* order = parallel_update ? scope.span<std::size_t>(n) : nullptr;
  std::size_t* start = parallel_update ? scope.span<std::size_t>(k + 1) : nullptr;
  double prev_objective = std::numeric_limits<double>::infinity();
  std::size_t iterations = 0;
  // As in lloyd_scalar, the end-of-iteration bounded pass already leaves
  // every point assigned to its nearest (post-update) centroid, so the
  // explicit assignment scan only runs once, before the first update.
  bool assignment_current = false;
  for (; iterations < config.max_iterations; ++iterations) {
    // Assignment step: batched full nearest-two scans establish both the
    // assignment and the initial bounds (best_dist_sq is scratch here — the
    // end-of-iteration bounded pass rewrites it for every point).
    if (!assignment_current) {
      const double* base = points.positions.row(0);
      const double* cen = centroids.row(0);
      parallel_for(
          n,
          [&](std::size_t begin, std::size_t end) {
            const std::size_t chunk = end - begin;
            ArenaScope chunk_scope;
            double* second_sq = chunk_scope.span<double>(chunk);
            simd::nearest2_batch(base + begin * dim, dim, nullptr, chunk, cen, k,
                                 assignment.data() + begin, best_dist_sq + begin, second_sq,
                                 level);
            for (std::size_t j = 0; j < chunk; ++j) {
              lower[begin + j] = guard_down(std::sqrt(second_sq[j]));
            }
          },
          kMinParallelPoints);
    }
    // Update step: per-cluster accumulation in ascending member order — the
    // exact FP sequence of the lloyd_scalar loop, sequential or counting-
    // sorted parallel (bit-identical either way) — with the pre-update
    // centroids saved for the bounds.
    std::copy(centroids.row(0), centroids.row(0) + k * dim, old_centroids);
    if (parallel_update) {
      accumulate_clusters_parallel(points, assignment.data(), k, sums, cluster_weight,
                                   counts, order, start);
    } else {
      std::fill(sums, sums + k * dim, 0.0);
      std::fill(cluster_weight, cluster_weight + k, 0.0);
      if (n > 0) {
        simd::weighted_scatter_add(points.positions.row(0), dim, nullptr, n,
                                   points.weights.data(), assignment.data(), sums,
                                   cluster_weight, level);
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (cluster_weight[c] > 0.0) {
        double* row = centroids.mutable_row(c);
        const double* sum = sums + c * dim;
        for (std::size_t d = 0; d < dim; ++d) row[d] = sum[d] / cluster_weight[c];
      }
      // Empty clusters keep their previous centroid; with good seeding this
      // is rare and self-corrects on the next assignment.
    }
    GEORED_DCHECK(
        [&] {
          double redistributed = 0.0;
          for (std::size_t c = 0; c < k; ++c) redistributed += cluster_weight[c];
          return std::abs(redistributed - total_weight) <=
                 1e-9 * std::max(1.0, total_weight);
        }(),
        "k-means iteration lost or invented point weight");
    GEORED_DCHECK(centroids_finite(centroids, dim),
                  "k-means produced a non-finite centroid");
    // Movement bounds: the farthest and second-farthest any centroid
    // travelled this update, plus which centroid travelled farthest.
    double delta_max = 0.0, delta_second = 0.0;
    std::size_t moved_most = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const double* old_row = old_centroids + c * dim;
      const double* new_row = centroids.row(c);
      double moved_sq = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double diff = new_row[d] - old_row[d];
        moved_sq += diff * diff;
      }
      const double moved = std::sqrt(moved_sq);
      if (moved > delta_max) {
        delta_second = delta_max;
        delta_max = moved;
        moved_most = c;
      } else {
        delta_second = std::max(delta_second, moved);
      }
    }
    half_separation(centroids, s_half);
    const double objective =
        objective_bounded(points, centroids, best_dist_sq, assignment.data(), lower, s_half,
                          delta_max, delta_second, moved_most);
    assignment_current = true;  // now reflects the post-update centroids
    // The isfinite guard keeps the first iteration from "converging" against
    // the infinite sentinel (inf - obj <= tol * inf holds in IEEE arithmetic).
    if (std::isfinite(prev_objective) &&
        prev_objective - objective <= config.tolerance * std::max(1.0, prev_objective)) {
      prev_objective = objective;
      ++iterations;
      break;
    }
    prev_objective = objective;
  }
  KMeansResult result;
  if (!assignment_current) {  // max_iterations == 0: no pass has run yet
    prev_objective = objective_of(points, centroids, best_dist_sq, assignment.data());
  }
  result.objective = prev_objective;
  result.assignment = std::move(assignment);
  result.iterations = iterations;
  result.centroids.reserve(k);
  for (std::size_t c = 0; c < k; ++c) result.centroids.push_back(centroids.point(c));
  return result;
}

}  // namespace

double kmeans_objective(const std::vector<WeightedPoint>& points,
                        const std::vector<Point>& centroids) {
  GEORED_ENSURE(!centroids.empty(), "objective needs at least one centroid");
  double total = 0.0;
  for (const auto& wp : points) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& c : centroids) best = std::min(best, wp.position.distance_squared_to(c));
    total += wp.weight * best;
  }
  return total;
}

namespace {

/// Lloyd variant selector shared by the accelerated and scalar entry points
/// so validation and restart logic cannot drift between them.
using LloydFn = KMeansResult (*)(const FlatPoints&, PointSet, const KMeansConfig&);

KMeansResult weighted_kmeans_impl(const std::vector<WeightedPoint>& points,
                                  const KMeansConfig& config, Rng& rng, LloydFn solve) {
  GEORED_ENSURE(!points.empty(), "k-means requires at least one point");
  GEORED_ENSURE(config.k >= 1, "k-means requires k >= 1");
  double total_weight = 0.0;
  for (const auto& wp : points) {
    GEORED_ENSURE(std::isfinite(wp.weight) && wp.weight >= 0.0,
                  "point weights must be finite and non-negative");
    total_weight += wp.weight;
  }
  GEORED_ENSURE(total_weight > 0.0, "k-means requires positive total weight");

  const FlatPoints flat = flatten(points);
  KMeansResult best_result;
  best_result.objective = std::numeric_limits<double>::infinity();

  const std::size_t restarts = std::max<std::size_t>(1, config.restarts);
  for (std::size_t restart = 0; restart < restarts; ++restart) {
    KMeansResult result = solve(flat, kmeanspp_seed(flat, config.k, rng), config);
    if (result.objective < best_result.objective) best_result = std::move(result);
  }
  return best_result;
}

KMeansResult weighted_kmeans_from_impl(const std::vector<WeightedPoint>& points,
                                       std::vector<Point> initial_centroids,
                                       const KMeansConfig& config, LloydFn solve) {
  GEORED_ENSURE(!points.empty(), "k-means requires at least one point");
  GEORED_ENSURE(!initial_centroids.empty(), "warm start requires initial centroids");
  for (const auto& centroid : initial_centroids) {
    GEORED_ENSURE(centroid.dim() == points.front().position.dim(),
                  "centroid dimension mismatch");
  }
  for (const auto& wp : points) {
    GEORED_ENSURE(std::isfinite(wp.weight) && wp.weight >= 0.0,
                  "point weights must be finite and non-negative");
  }
  return solve(flatten(points), PointSet::from_points(initial_centroids), config);
}

}  // namespace

KMeansResult weighted_kmeans(const std::vector<WeightedPoint>& points,
                             const KMeansConfig& config, Rng& rng) {
  return weighted_kmeans_impl(points, config, rng, &lloyd);
}

KMeansResult weighted_kmeans_scalar(const std::vector<WeightedPoint>& points,
                                    const KMeansConfig& config, Rng& rng) {
  return weighted_kmeans_impl(points, config, rng, &lloyd_scalar);
}

KMeansResult weighted_kmeans_from(const std::vector<WeightedPoint>& points,
                                  std::vector<Point> initial_centroids,
                                  const KMeansConfig& config) {
  return weighted_kmeans_from_impl(points, std::move(initial_centroids), config, &lloyd);
}

KMeansResult weighted_kmeans_from_scalar(const std::vector<WeightedPoint>& points,
                                         std::vector<Point> initial_centroids,
                                         const KMeansConfig& config) {
  return weighted_kmeans_from_impl(points, std::move(initial_centroids), config,
                                   &lloyd_scalar);
}

KMeansResult kmeans(const std::vector<Point>& points, const KMeansConfig& config, Rng& rng) {
  std::vector<WeightedPoint> weighted;  // lint: alloc-ok (one-time input conversion)
  weighted.reserve(points.size());
  for (const auto& p : points) weighted.push_back({p, 1.0});
  return weighted_kmeans(weighted, config, rng);
}

}  // namespace geored::cluster
