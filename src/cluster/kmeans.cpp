#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/ensure.h"

namespace geored::cluster {

namespace {

/// Debug check: every centroid is finite with the expected dimensionality.
bool centroids_finite(const std::vector<Point>& centroids, std::size_t dim) {
  for (const auto& c : centroids) {
    if (c.dim() != dim || !c.is_finite()) return false;
  }
  return true;
}

std::size_t nearest_centroid(const Point& p, const std::vector<Point>& centroids) {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const double dist = p.distance_squared_to(centroids[c]);
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

/// k-means++ seeding over weighted points: the first centroid is drawn with
/// probability proportional to weight, subsequent ones proportional to
/// weight * D^2 (distance to the nearest already-chosen centroid).
std::vector<Point> kmeanspp_seed(const std::vector<WeightedPoint>& points, std::size_t k,
                                 Rng& rng) {
  std::vector<double> weights(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) weights[i] = points[i].weight;

  std::vector<Point> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.weighted_index(weights)].position);

  std::vector<double> dist_sq(points.size(), std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    std::vector<double> probs(points.size());
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      dist_sq[i] = std::min(dist_sq[i], points[i].position.distance_squared_to(centroids.back()));
      probs[i] = points[i].weight * dist_sq[i];
      total += probs[i];
    }
    if (total <= 0.0) break;  // all remaining mass sits on chosen centroids
    centroids.push_back(points[rng.weighted_index(probs)].position);
  }
  return centroids;
}

/// Lloyd's algorithm from given centroids; shared by the seeded and
/// warm-start entry points.
KMeansResult lloyd(const std::vector<WeightedPoint>& points, std::vector<Point> centroids,
                   const KMeansConfig& config) {
  const std::size_t dim = points.front().position.dim();
  double total_weight = 0.0;
  for (const auto& wp : points) total_weight += wp.weight;
  std::vector<std::size_t> assignment(points.size(), 0);
  double prev_objective = std::numeric_limits<double>::infinity();
  std::size_t iterations = 0;
  for (; iterations < config.max_iterations; ++iterations) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      assignment[i] = nearest_centroid(points[i].position, centroids);
    }
    std::vector<Point> sums(centroids.size(), Point(dim));
    std::vector<double> cluster_weight(centroids.size(), 0.0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      sums[assignment[i]] += points[i].position * points[i].weight;
      cluster_weight[assignment[i]] += points[i].weight;
    }
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      if (cluster_weight[c] > 0.0) centroids[c] = sums[c] / cluster_weight[c];
      // Empty clusters keep their previous centroid; with good seeding this
      // is rare and self-corrects on the next assignment.
    }
    // Weight conservation: per-cluster accumulation must redistribute the
    // input mass exactly (up to summation order), and the centroid update
    // must never produce a non-finite coordinate.
    GEORED_DCHECK(
        [&] {
          double redistributed = 0.0;
          for (const double w : cluster_weight) redistributed += w;
          return std::abs(redistributed - total_weight) <=
                 1e-9 * std::max(1.0, total_weight);
        }(),
        "k-means iteration lost or invented point weight");
    GEORED_DCHECK(centroids_finite(centroids, dim),
                  "k-means produced a non-finite centroid");
    const double objective = kmeans_objective(points, centroids);
    if (prev_objective - objective <= config.tolerance * std::max(1.0, prev_objective)) {
      prev_objective = objective;
      ++iterations;
      break;
    }
    prev_objective = objective;
  }
  KMeansResult result;
  result.objective = kmeans_objective(points, centroids);
  result.iterations = iterations;
  result.assignment.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.assignment[i] = nearest_centroid(points[i].position, centroids);
  }
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace

double kmeans_objective(const std::vector<WeightedPoint>& points,
                        const std::vector<Point>& centroids) {
  GEORED_ENSURE(!centroids.empty(), "objective needs at least one centroid");
  double total = 0.0;
  for (const auto& wp : points) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& c : centroids) best = std::min(best, wp.position.distance_squared_to(c));
    total += wp.weight * best;
  }
  return total;
}

KMeansResult weighted_kmeans(const std::vector<WeightedPoint>& points,
                             const KMeansConfig& config, Rng& rng) {
  GEORED_ENSURE(!points.empty(), "k-means requires at least one point");
  GEORED_ENSURE(config.k >= 1, "k-means requires k >= 1");
  double total_weight = 0.0;
  for (const auto& wp : points) {
    GEORED_ENSURE(wp.weight >= 0.0, "point weights must be non-negative");
    total_weight += wp.weight;
  }
  GEORED_ENSURE(total_weight > 0.0, "k-means requires positive total weight");

  KMeansResult best_result;
  best_result.objective = std::numeric_limits<double>::infinity();

  const std::size_t restarts = std::max<std::size_t>(1, config.restarts);
  for (std::size_t restart = 0; restart < restarts; ++restart) {
    KMeansResult result = lloyd(points, kmeanspp_seed(points, config.k, rng), config);
    if (result.objective < best_result.objective) best_result = std::move(result);
  }
  return best_result;
}

KMeansResult weighted_kmeans_from(const std::vector<WeightedPoint>& points,
                                  std::vector<Point> initial_centroids,
                                  const KMeansConfig& config) {
  GEORED_ENSURE(!points.empty(), "k-means requires at least one point");
  GEORED_ENSURE(!initial_centroids.empty(), "warm start requires initial centroids");
  for (const auto& centroid : initial_centroids) {
    GEORED_ENSURE(centroid.dim() == points.front().position.dim(),
                  "centroid dimension mismatch");
  }
  return lloyd(points, std::move(initial_centroids), config);
}

KMeansResult kmeans(const std::vector<Point>& points, const KMeansConfig& config, Rng& rng) {
  std::vector<WeightedPoint> weighted;
  weighted.reserve(points.size());
  for (const auto& p : points) weighted.push_back({p, 1.0});
  return weighted_kmeans(weighted, config, rng);
}

}  // namespace geored::cluster
