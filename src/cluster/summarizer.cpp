#include "cluster/summarizer.h"

#include <cmath>
#include <string>

#include "common/ensure.h"

namespace geored::cluster {

MicroClusterSummarizer::MicroClusterSummarizer(const SummarizerConfig& config)
    : config_(config), store_(config.min_absorb_radius, config.radius_factor) {
  GEORED_ENSURE(config.max_clusters >= 1, "summarizer needs at least one micro-cluster");
  GEORED_ENSURE(config.min_absorb_radius >= 0.0, "min_absorb_radius must be non-negative");
  GEORED_ENSURE(config.radius_factor > 0.0, "radius_factor must be positive");
  GEORED_ENSURE(config.epoch_decay > 0.0 && config.epoch_decay <= 1.0,
                "epoch_decay must be in (0,1]");
  store_.reserve(config.max_clusters + 1);
  clusters_cache_.reserve(config.max_clusters + 1);
}

void MicroClusterSummarizer::add(const Point& coords, double weight) {
  add_row(coords.values().data(), coords.dim(), weight);
}

void MicroClusterSummarizer::add_batch(const PointSet& coords, std::span<const double> weights) {
  GEORED_ENSURE(weights.empty() || weights.size() == coords.size(),
                "add_batch weight count must match row count");
  const std::size_t n = coords.size();
  if (n == 0) return;
  // Weights are validated up front so a bad weight rejects the whole batch
  // before any row is ingested (the per-access loop would have ingested the
  // prefix); successful batches are byte-identical either way.
  for (const double w : weights) {
    GEORED_ENSURE(std::isfinite(w) && w >= 0.0,
                  "access weight must be finite and non-negative");
  }
  const std::size_t dim = coords.dim();
  cache_valid_ = false;
  total_count_ += n;
  std::size_t i = 0;
  if (store_.empty()) {
    store_.append_singleton(coords.row(0), dim, weights.empty() ? 1.0 : weights[0]);
    i = 1;
  }
  GEORED_ENSURE(dim == store_.dim(), "dimension mismatch in add");
#if defined(__x86_64__)
  if (detail::kHasAvx2) {
    ingest_batch_avx2(coords, weights, i);
    return;
  }
#endif
  // Batch-only advantage over the per-access API: upcoming rows are known,
  // so their cache lines can be requested while the current row is being
  // ingested. Distance 8 covers the ingest latency of one row at typical
  // dimensions; prefetch is a hint and never changes results.
  constexpr std::size_t kPrefetchAhead = 8;
  for (; i < n; ++i) {
    if (i + kPrefetchAhead < n) {
      __builtin_prefetch(coords.row(i + kPrefetchAhead));
    }
    ingest_row(coords.row(i), dim, weights.empty() ? 1.0 : weights[i]);
  }
}

#if defined(__x86_64__)
__attribute__((target("avx2"), flatten)) void MicroClusterSummarizer::ingest_batch_avx2(
    const PointSet& coords, std::span<const double> weights, std::size_t begin) {
  // Same operations as the baseline add_batch loop; the target attribute is
  // the only semantic difference (see the header comment), and `flatten`
  // forces the fused absorb kernel to inline here — the inliner's cost
  // model otherwise leaves ingest_row as an opaque per-access call. The
  // scalar arithmetic inside merely picks up VEX encodings — the attribute
  // enables AVX2 only, never FMA, so no contraction can change a result.
  const std::size_t n = coords.size();
  const std::size_t dim = coords.dim();
  constexpr std::size_t kPrefetchAhead = 8;
  for (std::size_t i = begin; i < n; ++i) {
    if (i + kPrefetchAhead < n) {
      __builtin_prefetch(coords.row(i + kPrefetchAhead));
    }
    const double weight = weights.empty() ? 1.0 : weights[i];
    // ingest_row's body, spelled out so every callee is an inline candidate
    // in this AVX2 context.
    if (store_.try_absorb(coords.row(i), weight)) continue;
    store_.append_singleton(coords.row(i), dim, weight);
    if (store_.size() > config_.max_clusters) {
      const auto [best_a, best_b] = store_.closest_pair();
      store_.merge_rows(best_a, best_b);
    }
    GEORED_DCHECK(store_.size() <= config_.max_clusters,
                  "summarizer exceeded its micro-cluster budget after add");
  }
}
#endif

void MicroClusterSummarizer::add_row(const double* coords, std::size_t dim, double weight) {
  GEORED_ENSURE(std::isfinite(weight) && weight >= 0.0,
                "access weight must be finite and non-negative");
  cache_valid_ = false;
  ++total_count_;
  if (store_.empty()) {
    store_.append_singleton(coords, dim, weight);
    return;
  }
  GEORED_ENSURE(dim == store_.dim(), "dimension mismatch in add");
  ingest_row(coords, dim, weight);
}

void MicroClusterSummarizer::ingest_row(const double* coords, std::size_t dim, double weight) {
  // The paper's rule, fused: absorb when the client is within the nearest
  // cluster's cached radius (max of the configured floor and the scaled
  // stddev), otherwise spawn and merge the closest pair over budget.
  if (store_.try_absorb(coords, weight)) return;

  store_.append_singleton(coords, dim, weight);
  if (store_.size() > config_.max_clusters) {
    const auto [best_a, best_b] = store_.closest_pair();
    store_.merge_rows(best_a, best_b);
  }
  GEORED_DCHECK(store_.size() <= config_.max_clusters,
                "summarizer exceeded its micro-cluster budget after add");
}

void MicroClusterSummarizer::merge_cluster(const MicroCluster& cluster) {
  if (cluster.count() == 0) return;
  cache_valid_ = false;
  total_count_ += cluster.count();
  store_.append_moments(cluster);
  if (store_.size() > config_.max_clusters) {
    const auto [best_a, best_b] = store_.closest_pair();
    store_.merge_rows(best_a, best_b);
  }
  GEORED_DCHECK(store_.size() <= config_.max_clusters,
                "summarizer exceeded its micro-cluster budget after merge_cluster");
}

const std::vector<MicroCluster>& MicroClusterSummarizer::clusters() const {
  if (!cache_valid_) {
    clusters_cache_.clear();
    const std::size_t n = store_.size();
    for (std::size_t i = 0; i < n; ++i) clusters_cache_.push_back(store_.cluster(i));
    cache_valid_ = true;
  }
  return clusters_cache_;
}

void MicroClusterSummarizer::decay() {
  cache_valid_ = false;
  store_.scale_all(config_.epoch_decay);
}

void MicroClusterSummarizer::clear() {
  store_.clear();
  clusters_cache_.clear();
  cache_valid_ = false;
  total_count_ = 0;
}

void write_clusters(ByteWriter& writer, const std::vector<MicroCluster>& clusters) {
  writer.write_u32(static_cast<std::uint32_t>(clusters.size()));
  for (const auto& cluster : clusters) cluster.serialize(writer);
}

std::size_t serialized_size(const std::vector<MicroCluster>& clusters) {
  ByteWriter writer;
  write_clusters(writer, clusters);
  return writer.size();
}

void MicroClusterSummarizer::serialize(ByteWriter& writer) const {
  write_clusters(writer, clusters());
}

std::vector<MicroCluster> MicroClusterSummarizer::deserialize_clusters(ByteReader& reader) {
  const std::uint32_t n = reader.read_u32();
  // Bound the count by the smallest possible cluster encoding before
  // reserving: a corrupt or truncated frame must throw WireFormatError, not
  // attempt a multi-gigabyte allocation.
  const std::size_t min_cluster_bytes = MicroCluster::serialized_size(0);
  if (static_cast<std::size_t>(n) * min_cluster_bytes > reader.remaining()) {
    throw WireFormatError("corrupt summary frame: cluster count " + std::to_string(n) +
                          " cannot fit in the " + std::to_string(reader.remaining()) +
                          " bytes remaining");
  }
  std::vector<MicroCluster> clusters;  // lint: alloc-ok (cold wire-deserialize path)
  clusters.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) clusters.push_back(MicroCluster::deserialize(reader));
  return clusters;
}

}  // namespace geored::cluster
