// Online per-replica summarization of client coordinates (paper §III-B).
//
// Each replica server owns one MicroClusterSummarizer. On every client
// access the summarizer finds the micro-cluster whose centroid is closest to
// the client's coordinates; if the client falls within that cluster's
// standard deviation it is absorbed, otherwise a new cluster is created and,
// if the budget m is exceeded, the two closest clusters are merged.
// Memory is O(m * dim) regardless of how many accesses are summarized.
//
// Storage is the flat MomentStore (cluster/moment_store.h): moments live in
// contiguous per-field buffers with a cached absorb radius per cluster, so
// the per-access hot path is one fused nearest+radius kernel with no
// allocation. Results are bit-identical to the retained scalar reference
// (cluster/summarizer_scalar.h); the IngestEquivalence suite compares
// serialized bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/microcluster.h"
#include "cluster/moment_store.h"
#include "common/point.h"
#include "common/point_set.h"
#include "common/serialize.h"

namespace geored::cluster {

/// Serializes a bare micro-cluster set in the summarizer wire format (u32
/// count + clusters) — the per-source message of Algorithm 1. Shared by
/// every collection path so the formats cannot drift apart.
void write_clusters(ByteWriter& writer, const std::vector<MicroCluster>& clusters);

/// Wire size of write_clusters(clusters) in bytes.
std::size_t serialized_size(const std::vector<MicroCluster>& clusters);

struct SummarizerConfig {
  /// Maximum number of micro-clusters retained (the paper's m).
  std::size_t max_clusters = 4;
  /// Radius granted to clusters whose variance is still degenerate (e.g.
  /// singletons, whose stddev is zero): a client closer than this is
  /// absorbed rather than spawning a new cluster. Milliseconds of
  /// coordinate-space distance.
  double min_absorb_radius = 5.0;
  /// Multiplier on the cluster stddev for the absorb test (1.0 = the paper's
  /// "within the standard deviation").
  double radius_factor = 1.0;
  /// Decay applied by decay() to counts and weights, implementing the
  /// "recent accesses" emphasis between placement epochs.
  double epoch_decay = 0.5;
};

class MicroClusterSummarizer {
 public:
  explicit MicroClusterSummarizer(const SummarizerConfig& config = {});

  /// Records one access by a client at `coords` transferring `weight` units
  /// of data (e.g. bytes, normalized). Weights must be finite and
  /// non-negative.
  void add(const Point& coords, double weight = 1.0);

  /// Records a batch of accesses: row i of `coords` with weights[i] (or 1.0
  /// for every row when `weights` is empty). Equivalent to calling add()
  /// per row in order — batching only amortizes the call overhead, it never
  /// changes the result. Weights are validated before any row is ingested,
  /// so a non-finite or negative weight rejects the whole batch.
  void add_batch(const PointSet& coords, std::span<const double> weights = {});

  /// Inserts a whole micro-cluster (e.g. one inherited from a replica that
  /// is being retired). The cluster is kept intact; if the budget m is
  /// exceeded the two closest clusters are merged, as in add().
  void merge_cluster(const MicroCluster& cluster);

  /// Materialized view of the current micro-clusters. Rebuilt lazily from
  /// the flat store after mutations; moments are copied bit for bit.
  const std::vector<MicroCluster>& clusters() const;

  /// Total accesses summarized since construction or the last clear().
  std::uint64_t total_count() const { return total_count_; }

  /// Exponentially decays all cluster counts/weights (see
  /// SummarizerConfig::epoch_decay); clusters decayed below one access are
  /// dropped. Called at placement-epoch boundaries so old populations fade.
  void decay();

  void clear();

  /// Serializes all clusters (the per-replica message of Algorithm 1).
  void serialize(ByteWriter& writer) const;

  /// Decodes a write_clusters frame. Hardened against hostile bytes: a
  /// truncated buffer, a cluster count that cannot fit in the remaining
  /// bytes, or moment values no serialize() could emit all throw
  /// geored::WireFormatError — real-transport collectors (src/net/) rely on
  /// corrupt frames failing typed here rather than propagating garbage.
  static std::vector<MicroCluster> deserialize_clusters(ByteReader& reader);

  /// The underlying flat moment store — exposed so tests can pin the radius
  /// cache invalidation contract.
  const MomentStore& store() const { return store_; }

 private:
  void add_row(const double* coords, std::size_t dim, double weight);
  /// The absorb-or-spawn core shared by add_row and add_batch, after the
  /// caller has validated the weight and handled the empty-store bootstrap.
  void ingest_row(const double* coords, std::size_t dim, double weight);
#if defined(__x86_64__)
  /// ingest_row over rows [begin, n) of a batch, compiled as one AVX2
  /// function. GCC cannot inline a target("avx2") callee into a baseline
  /// caller, so dispatching per access would pay two opaque calls (nearest
  /// scan + absorb tail) per row; hoisting the target attribute to the
  /// whole batch loop lets the fused kernel inline flat. Same operations,
  /// same results — the equivalence suites cover this path on AVX2 hosts.
  __attribute__((target("avx2"))) void ingest_batch_avx2(const PointSet& coords,
                                                         std::span<const double> weights,
                                                         std::size_t begin);
#endif

  SummarizerConfig config_;
  MomentStore store_;
  /// Lazily materialized clusters() view; invalidated by every mutation.
  mutable std::vector<MicroCluster> clusters_cache_;
  mutable bool cache_valid_ = false;
  std::uint64_t total_count_ = 0;
};

}  // namespace geored::cluster
