// Online per-replica summarization of client coordinates (paper §III-B).
//
// Each replica server owns one MicroClusterSummarizer. On every client
// access the summarizer finds the micro-cluster whose centroid is closest to
// the client's coordinates; if the client falls within that cluster's
// standard deviation it is absorbed, otherwise a new cluster is created and,
// if the budget m is exceeded, the two closest clusters are merged.
// Memory is O(m * dim) regardless of how many accesses are summarized.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/microcluster.h"
#include "common/point.h"
#include "common/point_set.h"
#include "common/serialize.h"

namespace geored::cluster {

/// Serializes a bare micro-cluster set in the summarizer wire format (u32
/// count + clusters) — the per-source message of Algorithm 1. Shared by
/// every collection path so the formats cannot drift apart.
void write_clusters(ByteWriter& writer, const std::vector<MicroCluster>& clusters);

/// Wire size of write_clusters(clusters) in bytes.
std::size_t serialized_size(const std::vector<MicroCluster>& clusters);

struct SummarizerConfig {
  /// Maximum number of micro-clusters retained (the paper's m).
  std::size_t max_clusters = 4;
  /// Radius granted to clusters whose variance is still degenerate (e.g.
  /// singletons, whose stddev is zero): a client closer than this is
  /// absorbed rather than spawning a new cluster. Milliseconds of
  /// coordinate-space distance.
  double min_absorb_radius = 5.0;
  /// Multiplier on the cluster stddev for the absorb test (1.0 = the paper's
  /// "within the standard deviation").
  double radius_factor = 1.0;
  /// Decay applied by decay() to counts and weights, implementing the
  /// "recent accesses" emphasis between placement epochs.
  double epoch_decay = 0.5;
};

class MicroClusterSummarizer {
 public:
  explicit MicroClusterSummarizer(const SummarizerConfig& config = {});

  /// Records one access by a client at `coords` transferring `weight` units
  /// of data (e.g. bytes, normalized).
  void add(const Point& coords, double weight = 1.0);

  /// Inserts a whole micro-cluster (e.g. one inherited from a replica that
  /// is being retired). The cluster is kept intact; if the budget m is
  /// exceeded the two closest clusters are merged, as in add().
  void merge_cluster(const MicroCluster& cluster);

  const std::vector<MicroCluster>& clusters() const { return clusters_; }

  /// Total accesses summarized since construction or the last clear().
  std::uint64_t total_count() const { return total_count_; }

  /// Exponentially decays all cluster counts/weights (see
  /// SummarizerConfig::epoch_decay); clusters decayed below one access are
  /// dropped. Called at placement-epoch boundaries so old populations fade.
  void decay();

  void clear();

  /// Serializes all clusters (the per-replica message of Algorithm 1).
  void serialize(ByteWriter& writer) const;
  static std::vector<MicroCluster> deserialize_clusters(ByteReader& reader);

 private:
  std::size_t nearest_cluster(const Point& coords, double* dist_sq = nullptr) const;
  void merge_closest_pair();
  void rebuild_centroids();

  SummarizerConfig config_;
  std::vector<MicroCluster> clusters_;
  /// Contiguous cache of clusters_[i].centroid(), kept in sync by every
  /// mutation so the per-access nearest/merge scans run on one flat buffer
  /// instead of recomputing sum/count Points per cluster per access.
  PointSet centroids_;
  std::uint64_t total_count_ = 0;
};

}  // namespace geored::cluster
