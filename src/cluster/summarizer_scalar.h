// Scalar reference summarizer: the pre-SoA MicroClusterSummarizer kept
// verbatim (one MicroCluster object per cluster, nearest-then-sqrt absorb
// test with the radius recomputed from moments on every access).
//
// MicroClusterSummarizer in summarizer.h replaced this implementation with
// flat structure-of-arrays moment storage and a cached absorb radius; the
// equivalence suites (tests/cluster/ingest_equivalence_test.cpp) and
// bench/micro_perf feed both the same streams and require bit-identical
// summaries, so the reference must stay untouched by future optimization —
// the same discipline as the *_scalar evaluators in placement/evaluate.h.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/microcluster.h"
#include "cluster/summarizer.h"
#include "common/point.h"
#include "common/point_set.h"
#include "common/serialize.h"

namespace geored::cluster {

class ScalarMicroClusterSummarizer {
 public:
  explicit ScalarMicroClusterSummarizer(const SummarizerConfig& config = {});

  /// Records one access by a client at `coords` transferring `weight` units
  /// of data (e.g. bytes, normalized).
  void add(const Point& coords, double weight = 1.0);

  /// Inserts a whole micro-cluster (e.g. one inherited from a replica that
  /// is being retired). The cluster is kept intact; if the budget m is
  /// exceeded the two closest clusters are merged, as in add().
  void merge_cluster(const MicroCluster& cluster);

  const std::vector<MicroCluster>& clusters() const { return clusters_; }

  /// Total accesses summarized since construction or the last clear().
  std::uint64_t total_count() const { return total_count_; }

  /// Exponentially decays all cluster counts/weights (see
  /// SummarizerConfig::epoch_decay); clusters decayed below one access are
  /// dropped. Called at placement-epoch boundaries so old populations fade.
  void decay();

  void clear();

  /// Serializes all clusters (the per-replica message of Algorithm 1).
  void serialize(ByteWriter& writer) const;

 private:
  std::size_t nearest_cluster(const Point& coords, double* dist_sq = nullptr) const;
  void merge_closest_pair();
  void rebuild_centroids();

  SummarizerConfig config_;
  std::vector<MicroCluster> clusters_;
  /// Contiguous cache of clusters_[i].centroid(), kept in sync by every
  /// mutation so the per-access nearest/merge scans run on one flat buffer
  /// instead of recomputing sum/count Points per cluster per access.
  PointSet centroids_;
  std::uint64_t total_count_ = 0;
};

}  // namespace geored::cluster
