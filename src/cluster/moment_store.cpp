#include "cluster/moment_store.h"

#include <algorithm>
#include <cmath>

#include "common/ensure.h"

namespace geored::cluster {

void MomentStore::ensure_transposed(std::size_t rows) {
  if (rows > t_stride_) {
    t_stride_ = std::max<std::size_t>(8, 2 * rows);
    rebuild_transposed();
    return;
  }
  const std::size_t i = rows - 1;
  const double* centroid = centroids_.row(i);
  const std::size_t d_n = dim();
  for (std::size_t d = 0; d < d_n; ++d) centroids_t_[d * t_stride_ + i] = centroid[d];
}

void MomentStore::rebuild_transposed() {
  const std::size_t d_n = dim();
  centroids_t_.assign(d_n * t_stride_, 0.0);
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const double* centroid = centroids_.row(i);
    for (std::size_t d = 0; d < d_n; ++d) centroids_t_[d * t_stride_ + i] = centroid[d];
  }
}

MomentStore::MomentStore(double min_absorb_radius, double radius_factor)
    : min_absorb_radius_(min_absorb_radius), radius_factor_(radius_factor) {
  GEORED_ENSURE(min_absorb_radius >= 0.0, "min_absorb_radius must be non-negative");
  GEORED_ENSURE(radius_factor > 0.0, "radius_factor must be positive");
}

void MomentStore::reserve(std::size_t clusters) {
  counts_.reserve(clusters);
  weights_.reserve(clusters);
  sums_.reserve(clusters);
  sum2s_.reserve(clusters);
  centroids_.reserve(clusters);
  radii_.reserve(clusters);
}

void MomentStore::clear() {
  counts_.clear();
  weights_.clear();
  // Fresh sets so a new stream may change dimension (scalar clear semantics).
  sums_ = PointSet();
  sum2s_ = PointSet();
  centroids_ = PointSet();
  radii_.clear();
  centroids_t_.clear();
  t_stride_ = 0;
}

void MomentStore::append_singleton(const double* coords, std::size_t dim, double weight) {
  counts_.push_back(1);
  weights_.push_back(weight);
  sums_.push_back_row(coords, dim);
  // sum2 of a singleton: component squares, the MicroCluster constructor's
  // coords.component_squares() per-dimension product.
  {
    double* scratch = sum2_scratch(dim);
    for (std::size_t d = 0; d < dim; ++d) scratch[d] = coords[d] * coords[d];
    sum2s_.push_back_row(scratch, dim);
  }
  // centroid = sum / 1 — the exact division MicroCluster::centroid performs.
  {
    double* scratch = sum2_scratch(dim);
    for (std::size_t d = 0; d < dim; ++d) scratch[d] = coords[d] / 1.0;
    centroids_.push_back_row(scratch, dim);
  }
  radii_.push_back(-1.0);
  ensure_transposed(size());
  GEORED_DCHECK(detail::moment_row_consistent(1, weight, sums_.row(size() - 1),
                                              sum2s_.row(size() - 1), dim),
                "moment row inconsistent after append_singleton");
}

void MomentStore::append_moments(const MicroCluster& cluster) {
  GEORED_ENSURE(cluster.count() > 0, "append_moments requires a non-empty cluster");
  counts_.push_back(cluster.count());
  weights_.push_back(cluster.weight());
  sums_.push_back(cluster.sum());
  sum2s_.push_back(cluster.sum2());
  centroids_.push_back(cluster.centroid());
  radii_.push_back(-1.0);
  ensure_transposed(size());
}

void MomentStore::merge_rows(std::size_t a, std::size_t b) {
  GEORED_CHECK(a < size() && b < size() && a != b, "merge_rows needs two distinct rows");
  const std::size_t d_n = dim();
  counts_[a] += counts_[b];
  weights_[a] += weights_[b];
  double* sum_a = sums_.mutable_row(a);
  double* sum2_a = sum2s_.mutable_row(a);
  const double* sum_b = sums_.row(b);
  const double* sum2_b = sum2s_.row(b);
  for (std::size_t d = 0; d < d_n; ++d) sum_a[d] += sum_b[d];
  for (std::size_t d = 0; d < d_n; ++d) sum2_a[d] += sum2_b[d];
  refresh_centroid(a);
  radii_[a] = -1.0;
  GEORED_DCHECK(detail::moment_row_consistent(counts_[a], weights_[a], sums_.row(a),
                                              sum2s_.row(a), d_n),
                "moment row inconsistent after merge_rows");

  counts_.erase(counts_.begin() + static_cast<std::ptrdiff_t>(b));
  weights_.erase(weights_.begin() + static_cast<std::ptrdiff_t>(b));
  sums_.erase_row(b);
  sum2s_.erase_row(b);
  centroids_.erase_row(b);
  radii_.erase(radii_.begin() + static_cast<std::ptrdiff_t>(b));
  // Erasing row b shifts every later row down one column.
  rebuild_transposed();
}

void MomentStore::scale_all(double factor) {
  GEORED_ENSURE(factor > 0.0 && factor <= 1.0, "scale factor must be in (0,1]");
  const std::size_t d_n = dim();
  std::size_t out = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    // MicroCluster::scale: round the count, then scale the moments by the
    // *realized* ratio so centroid and stddev are exactly preserved.
    const auto new_count =
        static_cast<std::uint64_t>(static_cast<double>(counts_[i]) * factor + 0.5);
    if (new_count == 0) continue;  // decayed below one access: dropped
    const double realized =
        static_cast<double>(new_count) / static_cast<double>(counts_[i]);
    counts_[out] = new_count;
    weights_[out] = weights_[i] * realized;
    double* sum_out = sums_.mutable_row(out);
    double* sum2_out = sum2s_.mutable_row(out);
    const double* sum_in = sums_.row(i);
    const double* sum2_in = sum2s_.row(i);
    for (std::size_t d = 0; d < d_n; ++d) sum_out[d] = sum_in[d] * realized;
    for (std::size_t d = 0; d < d_n; ++d) sum2_out[d] = sum2_in[d] * realized;
    refresh_centroid(out);
    GEORED_DCHECK(detail::moment_row_consistent(counts_[out], weights_[out], sums_.row(out),
                                                sum2s_.row(out), d_n),
                  "moment row inconsistent after scale_all");
    ++out;
  }
  counts_.resize(out);
  weights_.resize(out);
  sums_.truncate(out);
  sum2s_.truncate(out);
  centroids_.truncate(out);
  radii_.assign(out, -1.0);
}

MicroCluster MomentStore::cluster(std::size_t i) const {
  GEORED_CHECK(i < size(), "cluster row out of range");
  return MicroCluster::from_moments(counts_[i], weights_[i], sums_.point(i), sum2s_.point(i));
}

}  // namespace geored::cluster
