#include "cluster/summarizer_scalar.h"

#include <cmath>
#include <limits>

#include "common/ensure.h"

namespace geored::cluster {

ScalarMicroClusterSummarizer::ScalarMicroClusterSummarizer(const SummarizerConfig& config)
    : config_(config) {
  GEORED_ENSURE(config.max_clusters >= 1, "summarizer needs at least one micro-cluster");
  GEORED_ENSURE(config.min_absorb_radius >= 0.0, "min_absorb_radius must be non-negative");
  GEORED_ENSURE(config.radius_factor > 0.0, "radius_factor must be positive");
  GEORED_ENSURE(config.epoch_decay > 0.0 && config.epoch_decay <= 1.0,
                "epoch_decay must be in (0,1]");
  clusters_.reserve(config.max_clusters + 1);
}

void ScalarMicroClusterSummarizer::add(const Point& coords, double weight) {
  GEORED_ENSURE(std::isfinite(weight) && weight >= 0.0,
                "access weight must be finite and non-negative");
  ++total_count_;
  if (clusters_.empty()) {
    clusters_.emplace_back(coords, weight);
    centroids_.push_back(clusters_.back().centroid());
    return;
  }

  double dist_sq = 0.0;
  const std::size_t nearest = nearest_cluster(coords, &dist_sq);
  MicroCluster& candidate = clusters_[nearest];
  const double distance = std::sqrt(dist_sq);
  // The paper's rule: absorb when the client is within the cluster's
  // standard deviation; the configurable floor keeps singleton clusters
  // (stddev 0) from rejecting everything.
  const double radius =
      std::max(config_.min_absorb_radius, config_.radius_factor * candidate.rms_stddev());
  if (distance <= radius) {
    candidate.absorb(coords, weight);
    centroids_.assign_row(nearest, candidate.centroid());
    return;
  }

  clusters_.emplace_back(coords, weight);
  centroids_.push_back(clusters_.back().centroid());
  if (clusters_.size() > config_.max_clusters) {
    merge_closest_pair();
  }
  GEORED_DCHECK(clusters_.size() <= config_.max_clusters,
                "summarizer exceeded its micro-cluster budget after add");
}

void ScalarMicroClusterSummarizer::merge_cluster(const MicroCluster& cluster) {
  if (cluster.count() == 0) return;
  total_count_ += cluster.count();
  clusters_.push_back(cluster);
  centroids_.push_back(cluster.centroid());
  if (clusters_.size() > config_.max_clusters) {
    merge_closest_pair();
  }
  GEORED_DCHECK(clusters_.size() <= config_.max_clusters,
                "summarizer exceeded its micro-cluster budget after merge_cluster");
}

std::size_t ScalarMicroClusterSummarizer::nearest_cluster(const Point& coords,
                                                          double* dist_sq) const {
  GEORED_CHECK(!clusters_.empty(), "nearest_cluster on empty summarizer");
  GEORED_DCHECK(centroids_.size() == clusters_.size(),
                "summarizer centroid cache out of sync");
  return centroids_.nearest_of(coords, dist_sq);
}

void ScalarMicroClusterSummarizer::merge_closest_pair() {
  GEORED_CHECK(clusters_.size() >= 2, "merge requires at least two clusters");
  const auto [best_a, best_b] = centroids_.pairwise_min_distance();
  clusters_[best_a].merge(clusters_[best_b]);
  centroids_.assign_row(best_a, clusters_[best_a].centroid());
  clusters_.erase(clusters_.begin() + static_cast<std::ptrdiff_t>(best_b));
  centroids_.erase_row(best_b);
}

void ScalarMicroClusterSummarizer::decay() {
  std::vector<MicroCluster> survivors;
  survivors.reserve(clusters_.size());
  for (auto& cluster : clusters_) {
    cluster.scale(config_.epoch_decay);
    if (cluster.count() > 0) survivors.push_back(cluster);
  }
  clusters_ = std::move(survivors);
  rebuild_centroids();
}

void ScalarMicroClusterSummarizer::clear() {
  clusters_.clear();
  centroids_ = PointSet();  // fresh set so a new stream may change dimension
  total_count_ = 0;
}

void ScalarMicroClusterSummarizer::rebuild_centroids() {
  centroids_ = PointSet();
  for (const auto& cluster : clusters_) centroids_.push_back(cluster.centroid());
}

void ScalarMicroClusterSummarizer::serialize(ByteWriter& writer) const {
  write_clusters(writer, clusters_);
}

}  // namespace geored::cluster
