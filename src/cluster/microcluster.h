// Micro-clusters: the paper's constant-size summary of a user population.
//
// Per Section III-B, each micro-cluster stores exactly four quantities:
//   count  - number of accesses absorbed,
//   weight - total data volume exchanged with those users,
//   sum    - per-dimension sum of absorbed coordinates,
//   sum2   - per-dimension sum of squared coordinates.
// The centroid is sum/count and the standard deviation is derived from
// E[X^2] - E[X]^2, so clusters can be merged by adding their moments — the
// CluStream (Aggarwal et al., VLDB'03) cluster-feature representation.
#pragma once

#include <cstdint>

#include "common/point.h"
#include "common/serialize.h"

namespace geored::cluster {

class MicroCluster {
 public:
  MicroCluster() = default;

  /// Creates a singleton cluster from one access at `coords` with data
  /// volume `weight`.
  MicroCluster(const Point& coords, double weight);

  /// Rebuilds a cluster from explicit moments — how the flat moment store
  /// (cluster/moment_store.h) materializes its rows back into the wire/API
  /// representation. `count` must be positive and the moment vectors must
  /// share one dimension.
  static MicroCluster from_moments(std::uint64_t count, double weight, Point sum, Point sum2);

  /// Absorbs one access into the cluster.
  void absorb(const Point& coords, double weight);

  /// Merges another cluster's moments into this one.
  void merge(const MicroCluster& other);

  /// Scales all moments by `factor` in (0, 1]: centroid and stddev are
  /// preserved while the cluster's influence (count, weight) decays. The
  /// count is rounded down; a cluster decayed to count 0 should be dropped.
  void scale(double factor);

  std::uint64_t count() const { return count_; }
  double weight() const { return weight_; }
  const Point& sum() const { return sum_; }
  const Point& sum2() const { return sum2_; }

  /// Centroid sum/count. Requires count() > 0.
  Point centroid() const;

  /// Root-mean-square per-dimension population standard deviation: the
  /// radius used by the paper's absorb-or-spawn test. Zero for singletons.
  double rms_stddev() const;

  /// Wire encoding: count, weight, dim, sum[], sum2[]. This is what replica
  /// servers ship to the coordinator; its size (see serialized_size) is the
  /// unit of the Table II bandwidth accounting.
  void serialize(ByteWriter& writer) const;
  static MicroCluster deserialize(ByteReader& reader);

  /// Exact size in bytes of the wire encoding for a given dimensionality.
  static std::size_t serialized_size(std::size_t dim);

 private:
  std::uint64_t count_ = 0;
  double weight_ = 0.0;
  Point sum_;
  Point sum2_;
};

}  // namespace geored::cluster
