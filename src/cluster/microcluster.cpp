#include "cluster/microcluster.h"

#include <cmath>
#include <string>
#include <utility>

#include "common/ensure.h"

namespace geored::cluster {

namespace {

/// Sufficient-statistics sanity for debug builds: the stored moments must
/// describe a realizable point multiset. Weight and both moment vectors must
/// be finite, weight non-negative, and per dimension Cauchy-Schwarz demands
/// n * sum2[d] >= sum[d]^2 (up to floating-point slack).
bool moments_consistent(std::uint64_t count, double weight, const Point& sum,
                        const Point& sum2) {
  if (!std::isfinite(weight) || weight < 0.0) return false;
  if (sum.dim() != sum2.dim()) return false;
  if (!sum.is_finite() || !sum2.is_finite()) return false;
  const auto n = static_cast<double>(count);
  for (std::size_t d = 0; d < sum.dim(); ++d) {
    const double lhs = n * sum2[d];
    const double rhs = sum[d] * sum[d];
    if (lhs < rhs - 1e-6 * std::max(1.0, rhs)) return false;
  }
  return true;
}

}  // namespace

MicroCluster::MicroCluster(const Point& coords, double weight)
    : count_(1), weight_(weight), sum_(coords), sum2_(coords.component_squares()) {
  GEORED_ENSURE(std::isfinite(weight) && weight >= 0.0,
                "access weight must be finite and non-negative");
}

MicroCluster MicroCluster::from_moments(std::uint64_t count, double weight, Point sum,
                                        Point sum2) {
  GEORED_ENSURE(count > 0, "from_moments requires a positive count");
  GEORED_ENSURE(sum.dim() == sum2.dim(), "moment dimension mismatch in from_moments");
  MicroCluster cluster;
  cluster.count_ = count;
  cluster.weight_ = weight;
  cluster.sum_ = std::move(sum);
  cluster.sum2_ = std::move(sum2);
  GEORED_DCHECK(moments_consistent(cluster.count_, cluster.weight_, cluster.sum_, cluster.sum2_),
                "from_moments given inconsistent moments");
  return cluster;
}

void MicroCluster::absorb(const Point& coords, double weight) {
  GEORED_ENSURE(std::isfinite(weight) && weight >= 0.0,
                "access weight must be finite and non-negative");
  if (count_ == 0) {
    *this = MicroCluster(coords, weight);
    return;
  }
  GEORED_ENSURE(coords.dim() == sum_.dim(), "dimension mismatch in absorb");
  ++count_;
  weight_ += weight;
  sum_ += coords;
  sum2_ += coords.component_squares();
  GEORED_DCHECK(moments_consistent(count_, weight_, sum_, sum2_),
                "micro-cluster moments inconsistent after absorb");
}

void MicroCluster::merge(const MicroCluster& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  GEORED_ENSURE(sum_.dim() == other.sum_.dim(), "dimension mismatch in merge");
  count_ += other.count_;
  weight_ += other.weight_;
  sum_ += other.sum_;
  sum2_ += other.sum2_;
  GEORED_DCHECK(moments_consistent(count_, weight_, sum_, sum2_),
                "micro-cluster moments inconsistent after merge");
}

void MicroCluster::scale(double factor) {
  GEORED_ENSURE(factor > 0.0 && factor <= 1.0, "scale factor must be in (0,1]");
  if (count_ == 0) return;
  const auto new_count =
      static_cast<std::uint64_t>(static_cast<double>(count_) * factor + 0.5);
  if (new_count == 0) {
    *this = MicroCluster();
    return;
  }
  // Scale the moments by the *realized* count ratio (not the raw factor) so
  // that centroid and stddev are exactly preserved despite count rounding.
  const double realized = static_cast<double>(new_count) / static_cast<double>(count_);
  count_ = new_count;
  weight_ *= realized;
  sum_ *= realized;
  sum2_ *= realized;
  GEORED_DCHECK(moments_consistent(count_, weight_, sum_, sum2_),
                "micro-cluster moments inconsistent after scale");
}

Point MicroCluster::centroid() const {
  GEORED_ENSURE(count_ > 0, "centroid of an empty micro-cluster");
  return sum_ / static_cast<double>(count_);
}

double MicroCluster::rms_stddev() const {
  GEORED_ENSURE(count_ > 0, "stddev of an empty micro-cluster");
  const auto n = static_cast<double>(count_);
  double total_variance = 0.0;
  for (std::size_t d = 0; d < sum_.dim(); ++d) {
    const double mean = sum_[d] / n;
    // Population variance from the stored moments; clamp tiny negative
    // values produced by floating-point cancellation.
    const double variance = std::max(0.0, sum2_[d] / n - mean * mean);
    total_variance += variance;
  }
  return std::sqrt(total_variance);
}

void MicroCluster::serialize(ByteWriter& writer) const {
  writer.write_u64(count_);
  writer.write_f64(weight_);
  writer.write_f64_vector(sum_.values());
  writer.write_f64_vector(sum2_.values());
}

MicroCluster MicroCluster::deserialize(ByteReader& reader) {
  MicroCluster cluster;
  cluster.count_ = reader.read_u64();
  cluster.weight_ = reader.read_f64();
  cluster.sum_ = Point(reader.read_f64_vector());
  cluster.sum2_ = Point(reader.read_f64_vector());
  // Frames arriving over a real transport can carry arbitrary bit patterns;
  // reject anything no serialize() call could have produced so corrupt bytes
  // surface as a typed error here instead of NaNs (or worse) downstream.
  if (cluster.sum_.dim() != cluster.sum2_.dim()) {
    throw WireFormatError("corrupt micro-cluster encoding: moment dimension mismatch");
  }
  if (!std::isfinite(cluster.weight_) || cluster.weight_ < 0.0) {
    throw WireFormatError("corrupt micro-cluster encoding: non-finite or negative weight");
  }
  if (!cluster.sum_.is_finite() || !cluster.sum2_.is_finite()) {
    throw WireFormatError("corrupt micro-cluster encoding: non-finite moments");
  }
  for (std::size_t d = 0; d < cluster.sum2_.dim(); ++d) {
    if (cluster.sum2_[d] < 0.0) {
      throw WireFormatError(
          "corrupt micro-cluster encoding: negative second moment in dimension " +
          std::to_string(d));
    }
  }
  return cluster;
}

std::size_t MicroCluster::serialized_size(std::size_t dim) {  // lint: no-ensure (total)
  return sizeof(std::uint64_t) + sizeof(double)            // count, weight
         + 2 * (sizeof(std::uint32_t) + dim * sizeof(double));  // sum, sum2
}

}  // namespace geored::cluster
