// Flat structure-of-arrays storage for micro-cluster moments.
//
// The scalar summarizer (summarizer_scalar.h) keeps one MicroCluster object
// per cluster: every absorb allocates two temporary Points (the component
// squares and the refreshed centroid) and every absorb test recomputes the
// rms stddev — two sqrt-free passes over the moments — from scratch. At
// ingest rates of millions of accesses that is the dominant cost of the
// whole pipeline (paper §III-B runs once per access).
//
// MomentStore keeps the same four moments in contiguous per-field buffers
// (counts / weights / sums / sum2s) beside the centroid PointSet, plus a
// cached absorb radius per cluster:
//
//   radius(i) = max(min_absorb_radius, radius_factor * rms_stddev(i))
//
// recomputed lazily and invalidated only when row i mutates (absorb, merge,
// decay). The absorb test is then one fused kernel — nearest centroid scan
// plus a cached-radius compare — with no allocation on the hot path.
//
// Every update mirrors the exact floating-point operation sequence of
// MicroCluster (absorb/merge/scale/centroid/rms_stddev), so a summarizer
// built on this store is bit-identical to the scalar reference; the
// equivalence suites serialize both and compare bytes.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "cluster/microcluster.h"
#include "common/ensure.h"
#include "common/point_set.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace geored::cluster {

namespace detail {

#if defined(__x86_64__)

/// Stack bound for the SIMD scan's distance buffer; stores larger than this
/// (far beyond any summarizer budget) take the scalar fallback.
inline constexpr std::size_t kMaxSimdScanRows = 64;

/// Squared distance from `q` to each of the n transposed centroid columns,
/// four micro-clusters per 256-bit lane group. Each lane executes the exact
/// scalar sequence diff = c[d] - q[d]; total += diff * diff in ascending d,
/// so every per-row result is bit-identical to PointSet::distance_squared
/// (the target attribute enables AVX2 only — no FMA, so the multiply and
/// add cannot be contracted).
__attribute__((target("avx2"))) inline void distances_avx2(const double* tcols,
                                                           std::size_t stride, std::size_t n,
                                                           std::size_t d_n, const double* q,
                                                           double* dists) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t d = 0; d < d_n; ++d) {
      const __m256d c = _mm256_loadu_pd(tcols + d * stride + i);
      const __m256d diff = _mm256_sub_pd(c, _mm256_set1_pd(q[d]));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    _mm256_storeu_pd(dists + i, acc);
  }
  for (; i < n; ++i) {
    double total = 0.0;
    for (std::size_t d = 0; d < d_n; ++d) {
      const double diff = tcols[d * stride + i] - q[d];
      total += diff * diff;
    }
    dists[i] = total;
  }
}

/// Sentinel returned by nearest8_avx2 when the in-register argmin cannot
/// prove it matched the scalar scan (a NaN distance); the caller falls back
/// to PointSet::nearest_of for those rows.
inline constexpr std::size_t kScanFallback = static_cast<std::size_t>(-1);

/// Fused nearest scan for stores of at most 8 rows — one micro-cluster per
/// lane across two 256-bit groups, with the argmin kept in registers: a
/// horizontal min reduction followed by an equality mask, whose first set
/// bit is exactly the strict-`<` first winner of the scalar scan (a later
/// row equal to the running best never replaces it, so the winner is the
/// lowest index achieving the minimum). Per-lane distances use the same
/// correctly-rounded subtract/multiply/add sequence as distances_avx2, so
/// both the winning index and the returned squared distance are
/// bit-identical to the scalar scan. NaN distances (only possible from
/// non-finite coordinates) would not survive the min reduction faithfully,
/// so any NaN defers to the scalar scan via kScanFallback.
__attribute__((target("avx2"))) inline std::size_t nearest8_avx2(const double* tcols,
                                                                 std::size_t stride,
                                                                 std::size_t n, std::size_t d_n,
                                                                 const double* q,
                                                                 double* out_dist) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (std::size_t d = 0; d < d_n; ++d) {
    const __m256d qd = _mm256_set1_pd(q[d]);
    const double* col = tcols + d * stride;
    const __m256d diff0 = _mm256_sub_pd(_mm256_loadu_pd(col), qd);
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(diff0, diff0));
    const __m256d diff1 = _mm256_sub_pd(_mm256_loadu_pd(col + 4), qd);
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(diff1, diff1));
  }
  // Lanes >= n hold garbage (the shadow's stride is always >= 8); force
  // them to +inf so they can never win the min. Done before the NaN check
  // so NaN garbage cannot trigger the fallback.
  const __m256d nv = _mm256_set1_pd(static_cast<double>(n));
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  acc0 = _mm256_blendv_pd(inf, acc0,
                          _mm256_cmp_pd(_mm256_setr_pd(0.0, 1.0, 2.0, 3.0), nv, _CMP_LT_OQ));
  acc1 = _mm256_blendv_pd(inf, acc1,
                          _mm256_cmp_pd(_mm256_setr_pd(4.0, 5.0, 6.0, 7.0), nv, _CMP_LT_OQ));
  const int nan_mask = _mm256_movemask_pd(_mm256_cmp_pd(acc0, acc0, _CMP_UNORD_Q)) |
                       _mm256_movemask_pd(_mm256_cmp_pd(acc1, acc1, _CMP_UNORD_Q));
  if (nan_mask != 0) return kScanFallback;
  // Horizontal min, broadcast to every lane of m.
  __m256d m = _mm256_min_pd(acc0, acc1);
  m = _mm256_min_pd(m, _mm256_permute2f128_pd(m, m, 1));
  m = _mm256_min_pd(m, _mm256_shuffle_pd(m, m, 0b0101));
  const int eq = _mm256_movemask_pd(_mm256_cmp_pd(acc0, m, _CMP_EQ_OQ)) |
                 (_mm256_movemask_pd(_mm256_cmp_pd(acc1, m, _CMP_EQ_OQ)) << 4);
  // NaN-free, so some lane equals the min. A padding lane can only match
  // when the min itself is +inf, and lane 0 is real and +inf in that case,
  // so the first set bit is always a real row — matching the scalar scan's
  // best = 0 when nothing beats infinity.
  *out_dist = _mm256_cvtsd_f64(m);
  return static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(eq)));
}

inline const bool kHasAvx2 = __builtin_cpu_supports("avx2");

#endif  // defined(__x86_64__)

/// Debug mirror of the MicroCluster moments_consistent check, over raw rows.
inline bool moment_row_consistent(std::uint64_t count, double weight, const double* sum,
                                  const double* sum2, std::size_t dim) {
  if (!std::isfinite(weight) || weight < 0.0) return false;
  const auto n = static_cast<double>(count);
  for (std::size_t d = 0; d < dim; ++d) {
    if (!std::isfinite(sum[d]) || !std::isfinite(sum2[d])) return false;
    const double lhs = n * sum2[d];
    const double rhs = sum[d] * sum[d];
    if (lhs < rhs - 1e-6 * std::max(1.0, rhs)) return false;
  }
  return true;
}

}  // namespace detail

class MomentStore {
 public:
  /// `min_absorb_radius` and `radius_factor` parameterize the cached radius
  /// (SummarizerConfig semantics).
  MomentStore(double min_absorb_radius, double radius_factor);

  std::size_t size() const { return counts_.size(); }
  bool empty() const { return counts_.empty(); }
  std::size_t dim() const { return sums_.dim(); }

  std::uint64_t count(std::size_t i) const { return counts_[i]; }
  double weight(std::size_t i) const { return weights_[i]; }
  const PointSet& centroids() const { return centroids_; }

  void reserve(std::size_t clusters);
  /// Full reset, including the adopted dimension.
  void clear();

  /// Appends a singleton cluster (count 1) from one access at `coords`.
  void append_singleton(const double* coords, std::size_t dim, double weight);

  /// Appends a row from an existing cluster's moments (merge_cluster /
  /// checkpoint restore). Requires cluster.count() > 0.
  void append_moments(const MicroCluster& cluster);

  /// The fused absorb kernel: nearest centroid by squared distance (the
  /// nearest_of scan: strict `<`, first winner), then the paper's
  /// absorb-or-spawn test against the cached radius. On success the access
  /// is absorbed into the winning row (exact MicroCluster::absorb operation
  /// order) and true is returned; on failure the store is untouched.
  /// Requires a non-empty store and `dim()` components at `coords`.
  ///
  /// Defined inline (like radius below) so the per-access ingest loop in the
  /// summarizer compiles to one flat kernel with no cross-TU calls.
  bool try_absorb(const double* coords, double weight) {
    GEORED_CHECK(!empty(), "try_absorb on an empty store");
    double dist_sq = 0.0;
    const std::size_t nearest = nearest_centroid(coords, &dist_sq);
    // Floor fast path: the absorb radius is max(min_absorb_radius, scaled
    // stddev) >= min_absorb_radius, so an access provably inside the
    // constant floor absorbs without looking at the moments at all — the
    // rms-stddev recompute (the cached radius rarely survives: a successful
    // absorb invalidates the very row the next same-site access queries) is
    // skipped entirely, and the cache entry would be invalidated by this
    // absorb anyway. The squared comparison is guarded conservatively: only
    // distances outside the combined rounding margin of floor*floor and
    // sqrt take the shortcut, so the decision matches the scalar
    // `sqrt(dist_sq) <= radius` bit for bit.
    const double ff = min_absorb_radius_ * min_absorb_radius_;
    if (dist_sq <= ff * (1.0 - 1e-10) - 1e-12) {
      absorb_into(nearest, coords, weight);
      return true;
    }
    const double r = radius(nearest);
    // Same squared-space idea against the full radius: outside the guard
    // band the squared comparison provably agrees with the exact one (sqrt
    // is monotone and correctly rounded, so one part in 1e10 dominates the
    // combined rounding of r*r and sqrt); inside it the reference
    // comparison runs verbatim. NaN distances fail both pretests and the
    // exact fallback, spawning a new cluster exactly like the reference.
    const double rr = r * r;
    bool within;
    if (dist_sq <= rr * (1.0 - 1e-10) - 1e-12) {
      within = true;
    } else if (dist_sq > rr * (1.0 + 1e-10) + 1e-12) {
      within = false;
    } else {
      within = std::sqrt(dist_sq) <= r;
    }
    if (!within) return false;
    absorb_into(nearest, coords, weight);
    return true;
  }

  /// The closest pair of rows by centroid distance (merge candidates).
  std::pair<std::size_t, std::size_t> closest_pair() const {
    return centroids_.pairwise_min_distance();
  }

  /// Merges row `b`'s moments into row `a` (exact MicroCluster::merge order)
  /// and erases row `b`. Requires a != b.
  void merge_rows(std::size_t a, std::size_t b);

  /// MicroCluster::scale(factor) applied to every row in order, dropping
  /// rows whose count rounds to zero — the decay step. Invalidates every
  /// cached radius.
  void scale_all(double factor);

  /// Absorb radius of row i, recomputed from the moments if the cached
  /// value was invalidated by a mutation.
  double radius(std::size_t i) const {
    GEORED_CHECK(i < size(), "radius row out of range");
    double cached = radii_[i];
    if (cached >= 0.0) return cached;
    // MicroCluster::rms_stddev on the flat row, then the paper's radius
    // rule. The centroid row already holds sum[d] / n bit for bit — every
    // mutation path ends in refresh_centroid or writes the same division —
    // so the mean is read back instead of re-divided.
    const auto n = static_cast<double>(counts_[i]);
    const double* sum2 = sum2s_.row(i);
    const double* centroid = centroids_.row(i);
    const std::size_t d_n = dim();
    double total_variance = 0.0;
    for (std::size_t d = 0; d < d_n; ++d) {
      const double mean = centroid[d];
      const double variance = std::max(0.0, sum2[d] / n - mean * mean);
      total_variance += variance;
    }
    cached = std::max(min_absorb_radius_, radius_factor_ * std::sqrt(total_variance));
    radii_[i] = cached;
    return cached;
  }

  /// Whether row i's radius is currently cached (tests pin the invalidation
  /// contract with this).
  bool radius_cached(std::size_t i) const { return radii_[i] >= 0.0; }

  /// Index of the centroid nearest to `coords` plus its squared distance —
  /// the scan inside try_absorb, exposed so tests can compare it against
  /// PointSet::nearest_of directly. Bit-identical to that scan: on AVX2
  /// hardware it runs one micro-cluster per SIMD lane over the transposed
  /// centroid shadow (each lane executes the exact per-dimension subtract /
  /// multiply / accumulate sequence of the scalar kernel, and the argmin
  /// over the finished distances is the same strict-`<` first-winner loop),
  /// elsewhere it falls back to the scalar scan.
  std::size_t nearest_centroid(const double* coords, double* dist_sq) const {
#if defined(__x86_64__)
    const std::size_t n = size();
    if (detail::kHasAvx2 && n >= 4 && n <= 8) {
      // Typical summarizer budgets fit one lane pair: the whole scan —
      // distances and argmin — stays in registers.
      double best_dist = 0.0;
      const std::size_t best =
          detail::nearest8_avx2(centroids_t_.data(), t_stride_, n, dim(), coords, &best_dist);
      if (best != detail::kScanFallback) {
        GEORED_DCHECK(
            [&] {
              double ref_dist = 0.0;
              const std::size_t ref = centroids_.nearest_of(coords, &ref_dist);
              return ref == best && ref_dist == best_dist;
            }(),
            "in-register SIMD nearest scan diverged from PointSet::nearest_of");
        if (dist_sq != nullptr) *dist_sq = best_dist;
        return best;
      }
      return centroids_.nearest_of(coords, dist_sq);
    }
    if (detail::kHasAvx2 && n > 8 && n <= detail::kMaxSimdScanRows) {
      double dists[detail::kMaxSimdScanRows];
      detail::distances_avx2(centroids_t_.data(), t_stride_, n, dim(), coords, dists);
      // The same strict-`<` first-winner argmin as PointSet::nearest_of,
      // over bit-identical distances.
      std::size_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n; ++i) {
        const bool better = dists[i] < best_dist;
        best = better ? i : best;
        best_dist = better ? dists[i] : best_dist;
      }
      GEORED_DCHECK(
          [&] {
            double ref_dist = 0.0;
            const std::size_t ref = centroids_.nearest_of(coords, &ref_dist);
            return ref == best && ref_dist == best_dist;
          }(),
          "transposed SIMD nearest scan diverged from PointSet::nearest_of");
      if (dist_sq != nullptr) *dist_sq = best_dist;
      return best;
    }
#endif
    return centroids_.nearest_of(coords, dist_sq);
  }

  /// Materializes row i back into the wire/API representation; moments are
  /// copied bit for bit.
  MicroCluster cluster(std::size_t i) const;

 private:
  /// MicroCluster::absorb on the flat rows — the shared tail of both
  /// try_absorb accept paths. On AVX2 hardware the moment updates and the
  /// centroid refresh run fused, four dimensions per lane group; every lane
  /// op (vaddpd / vmulpd / vdivpd) is the correctly-rounded IEEE operation
  /// the scalar loop performs on that component, so the stored moments are
  /// bit-identical either way.
  void absorb_into(std::size_t i, const double* coords, double weight) {
#if defined(__x86_64__)
    if (detail::kHasAvx2) {
      absorb_into_avx2(i, coords, weight);
      return;
    }
#endif
    const std::size_t d_n = dim();
    ++counts_[i];
    weights_[i] += weight;
    double* sum = sums_.mutable_row(i);
    double* sum2 = sum2s_.mutable_row(i);
    for (std::size_t d = 0; d < d_n; ++d) sum[d] += coords[d];
    for (std::size_t d = 0; d < d_n; ++d) sum2[d] += coords[d] * coords[d];
    refresh_centroid(i);
    radii_[i] = -1.0;
    GEORED_DCHECK(detail::moment_row_consistent(counts_[i], weights_[i], sums_.row(i),
                                                sum2s_.row(i), d_n),
                  "moment row inconsistent after absorb");
  }

#if defined(__x86_64__)
  /// AVX2 body of absorb_into: same per-component operations in the same
  /// per-component order (sum += c, then sum2 += c*c, then centroid =
  /// sum / n — components are independent, so lane grouping cannot change
  /// any result). The target attribute enables AVX2 only, keeping FMA
  /// contraction impossible.
  __attribute__((target("avx2"))) void absorb_into_avx2(std::size_t i, const double* coords,
                                                        double weight) {
    const std::size_t d_n = dim();
    ++counts_[i];
    weights_[i] += weight;
    double* sum = sums_.mutable_row(i);
    double* sum2 = sum2s_.mutable_row(i);
    double* centroid = centroids_.mutable_row(i);
    double* tcol = centroids_t_.data() + i;
    const __m256d vn = _mm256_set1_pd(static_cast<double>(counts_[i]));
    std::size_t d = 0;
    for (; d + 4 <= d_n; d += 4) {
      const __m256d c = _mm256_loadu_pd(coords + d);
      const __m256d s = _mm256_add_pd(_mm256_loadu_pd(sum + d), c);
      _mm256_storeu_pd(sum + d, s);
      const __m256d s2 = _mm256_add_pd(_mm256_loadu_pd(sum2 + d), _mm256_mul_pd(c, c));
      _mm256_storeu_pd(sum2 + d, s2);
      const __m256d cent = _mm256_div_pd(s, vn);
      _mm256_storeu_pd(centroid + d, cent);
      alignas(32) double lanes[4];
      _mm256_store_pd(lanes, cent);
      tcol[(d + 0) * t_stride_] = lanes[0];
      tcol[(d + 1) * t_stride_] = lanes[1];
      tcol[(d + 2) * t_stride_] = lanes[2];
      tcol[(d + 3) * t_stride_] = lanes[3];
    }
    const double n = static_cast<double>(counts_[i]);
    for (; d < d_n; ++d) {
      const double c = coords[d];
      sum[d] += c;
      sum2[d] += c * c;
      const double value = sum[d] / n;
      centroid[d] = value;
      tcol[d * t_stride_] = value;
    }
    radii_[i] = -1.0;
    GEORED_DCHECK(detail::moment_row_consistent(counts_[i], weights_[i], sums_.row(i),
                                                sum2s_.row(i), d_n),
                  "moment row inconsistent after absorb");
  }
#endif

  /// Rewrites centroid row i as sums[i] / count[i] (the exact division
  /// sequence of MicroCluster::centroid). Every mutation ends here, which
  /// is what lets radius() read the mean back out of the centroid row.
  void refresh_centroid(std::size_t i) {
    const auto n = static_cast<double>(counts_[i]);
    const double* sum = sums_.row(i);
    double* centroid = centroids_.mutable_row(i);
    double* tcol = centroids_t_.data() + i;
    const std::size_t d_n = dim();
    for (std::size_t d = 0; d < d_n; ++d) {
      const double value = sum[d] / n;
      centroid[d] = value;
      tcol[d * t_stride_] = value;
    }
  }

  /// Grows the transposed shadow (and rebuilds it from the centroid rows)
  /// so column `rows - 1` is addressable, then keeps both layouts in sync.
  void ensure_transposed(std::size_t rows);
  /// Rebuilds the transposed shadow from the centroid rows (row erases
  /// shift every later column).
  void rebuild_transposed();

  /// Reused per-append staging row (component squares, initial centroid) so
  /// spawning a cluster does not allocate once warmed up.
  double* sum2_scratch(std::size_t dim) {
    scratch_.resize(dim);
    return scratch_.data();
  }

  double min_absorb_radius_;
  double radius_factor_;
  std::vector<std::uint64_t> counts_;
  std::vector<double> weights_;
  PointSet sums_;
  PointSet sum2s_;
  PointSet centroids_;
  /// Cached radius per row; negative = invalidated (every real radius is
  /// >= min_absorb_radius >= 0).
  mutable std::vector<double> radii_;
  /// Column-major (dimension-major) shadow of centroids_: component d of
  /// row i lives at [d * t_stride_ + i]. This is the layout the lane-per-
  /// cluster SIMD nearest scan consumes; kept in sync by refresh_centroid
  /// and the append/erase paths. t_stride_ >= size() always.
  std::vector<double> centroids_t_;
  std::size_t t_stride_ = 0;
  std::vector<double> scratch_;
};

}  // namespace geored::cluster
