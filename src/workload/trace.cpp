#include "workload/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <set>

#include "common/ensure.h"

namespace geored::wl {

Trace::Trace(std::vector<TraceEvent> events) : events_(std::move(events)) {
  for (std::size_t i = 1; i < events_.size(); ++i) {
    GEORED_ENSURE(events_[i - 1].time_ms <= events_[i].time_ms,
                  "trace events must be time-ordered");
  }
}

void Trace::append(const TraceEvent& event) {
  GEORED_ENSURE(events_.empty() || events_.back().time_ms <= event.time_ms,
                "trace events must be appended in time order");
  events_.push_back(event);
}

void Trace::save(std::ostream& os) const {
  os << "geored-trace-v1 " << events_.size() << '\n';
  for (const auto& event : events_) {
    os << event.time_ms << ' ' << event.client << ' ' << event.object << ' ' << event.bytes
       << ' ' << (event.is_write ? 'w' : 'r') << '\n';
  }
}

Trace Trace::load(std::istream& is) {
  std::string magic;
  std::size_t count = 0;
  GEORED_ENSURE(static_cast<bool>(is >> magic >> count), "malformed trace header");
  GEORED_ENSURE(magic == "geored-trace-v1", "unknown trace format: " + magic);
  std::vector<TraceEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    TraceEvent event;
    char kind = 0;
    GEORED_ENSURE(static_cast<bool>(is >> event.time_ms >> event.client >> event.object >>
                                    event.bytes >> kind),
                  "malformed trace event");
    GEORED_ENSURE(kind == 'r' || kind == 'w', "trace event kind must be r or w");
    event.is_write = kind == 'w';
    events.push_back(event);
  }
  return Trace(std::move(events));
}

Trace Trace::scaled(double factor) const {
  GEORED_ENSURE(factor > 0.0, "time scale factor must be positive");
  std::vector<TraceEvent> events = events_;
  for (auto& event : events) event.time_ms *= factor;
  return Trace(std::move(events));
}

Trace Trace::merged(const Trace& a, const Trace& b) {
  std::vector<TraceEvent> events;
  events.reserve(a.size() + b.size());
  std::merge(a.events_.begin(), a.events_.end(), b.events_.begin(), b.events_.end(),
             std::back_inserter(events),
             [](const TraceEvent& x, const TraceEvent& y) { return x.time_ms < y.time_ms; });
  return Trace(std::move(events));
}

Trace::Stats Trace::stats() const {
  Stats stats;
  stats.events = events_.size();
  stats.duration_ms = duration_ms();
  std::set<std::uint32_t> clients;
  std::set<std::uint64_t> objects;
  std::size_t writes = 0;
  for (const auto& event : events_) {
    clients.insert(event.client);
    objects.insert(event.object);
    writes += event.is_write;
  }
  stats.distinct_clients = clients.size();
  stats.distinct_objects = objects.size();
  stats.write_fraction =
      events_.empty() ? 0.0 : static_cast<double>(writes) / static_cast<double>(events_.size());
  return stats;
}

Trace generate_session_trace(const SessionTraceConfig& config, std::uint64_t seed) {
  GEORED_ENSURE(config.clients >= 1, "trace needs at least one client");
  GEORED_ENSURE(config.objects >= 1, "trace needs at least one object");
  GEORED_ENSURE(config.duration_ms > 0.0, "trace duration must be positive");
  GEORED_ENSURE(config.session_rate > 0.0, "session rate must be positive");
  GEORED_ENSURE(config.mean_requests_per_session >= 1.0,
                "sessions must issue at least one request on average");
  GEORED_ENSURE(config.mean_think_time_ms >= 0.0, "think time must be non-negative");
  GEORED_ENSURE(config.write_fraction >= 0.0 && config.write_fraction <= 1.0,
                "write fraction must be a probability");
  GEORED_ENSURE(config.min_bytes <= config.max_bytes, "byte range must be ordered");

  Rng rng(seed);
  const ZipfSampler popularity(config.objects, config.zipf_exponent);
  // Popularity ranks are shuffled onto object ids so hot objects are not
  // always the low ids.
  const auto rank_to_object = rng.permutation(config.objects);

  std::vector<TraceEvent> events;
  for (std::uint32_t client = 0; client < config.clients; ++client) {
    Rng client_rng = rng.fork(client);
    double t = 0.0;
    while (true) {
      t += client_rng.exponential(config.session_rate);  // next session start
      if (t >= config.duration_ms) break;
      const auto requests =
          1 + client_rng.poisson(config.mean_requests_per_session - 1.0);
      double when = t;
      for (std::uint64_t q = 0; q < requests && when < config.duration_ms; ++q) {
        TraceEvent event;
        event.time_ms = when;
        event.client = client;
        event.object = rank_to_object[popularity.sample(client_rng)];
        event.bytes = static_cast<std::uint32_t>(
            client_rng.integer(config.min_bytes, config.max_bytes));
        event.is_write = client_rng.bernoulli(config.write_fraction);
        events.push_back(event);
        if (config.mean_think_time_ms > 0.0) {
          when += client_rng.exponential(1.0 / config.mean_think_time_ms);
        }
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.time_ms < b.time_ms;
                   });
  return Trace(std::move(events));
}

}  // namespace geored::wl
