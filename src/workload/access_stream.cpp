#include "workload/access_stream.h"

#include <utility>

#include "common/ensure.h"

namespace geored::wl {

std::vector<std::uint32_t> interleave_access_stream(const std::vector<std::uint64_t>& counts,
                                                    Rng& rng) {
  std::vector<std::uint32_t> stream;
  for (std::size_t u = 0; u < counts.size(); ++u) {
    for (std::uint64_t a = 0; a < counts[u]; ++a) {
      stream.push_back(static_cast<std::uint32_t>(u));
    }
  }
  for (std::size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.below(i)]);
  }
  return stream;
}

std::vector<AccessBatch> batch_by_server(const std::vector<std::uint32_t>& stream,
                                         const std::vector<std::size_t>& server_of_client,
                                         const std::vector<Point>& client_coords,
                                         std::size_t server_count,
                                         std::span<const double> client_weights) {
  GEORED_ENSURE(server_of_client.size() == client_coords.size(),
                "one server and one coordinate per client required");
  GEORED_ENSURE(client_weights.empty() || client_weights.size() == client_coords.size(),
                "one weight per client required when weights are given");
  std::vector<AccessBatch> batches(server_count);
  // Pre-size: one counting pass so the append pass never reallocates.
  std::vector<std::size_t> sizes(server_count, 0);
  for (const auto u : stream) {
    GEORED_ENSURE(u < server_of_client.size(), "stream references an unknown client");
    const std::size_t server = server_of_client[u];
    GEORED_ENSURE(server < server_count, "client routed to an unknown server");
    ++sizes[server];
  }
  for (std::size_t r = 0; r < server_count; ++r) {
    batches[r].coords.reserve(sizes[r]);
    if (!client_weights.empty()) batches[r].weights.reserve(sizes[r]);
  }
  for (const auto u : stream) {
    AccessBatch& batch = batches[server_of_client[u]];
    batch.coords.push_back(client_coords[u]);
    if (!client_weights.empty()) batch.weights.push_back(client_weights[u]);
  }
  return batches;
}

}  // namespace geored::wl
