// Observation-phase access-stream helpers (paper §IV-A).
//
// The evaluation harness replays every client's accesses in one interleaved
// order (cluster formation should see arrivals mixed across clients, not one
// client at a time) and routes each access to the client's closest initial
// replica. These helpers factor that protocol out of core/evaluation and
// re-shape it for batched ingestion: instead of one summarizer.add() per
// access, the stream is grouped into per-replica coordinate batches that
// feed MicroClusterSummarizer::add_batch in contiguous chunks. Grouping is
// order-preserving per replica, so batched ingestion is bit-identical to
// the per-access loop it replaces.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/point.h"
#include "common/point_set.h"
#include "common/random.h"

namespace geored::wl {

/// One replica's chunk of the observation stream: row i of `coords` is an
/// access with weight `weights[i]` (all 1.0 when `weights` is empty).
struct AccessBatch {
  PointSet coords;
  std::vector<double> weights;
};

/// Expands per-client access counts into one client-index stream and
/// shuffles it with a seeded Fisher-Yates pass — the exact expansion and
/// rng consumption of the historical evaluation loop, so existing seeds
/// reproduce the same stream.
std::vector<std::uint32_t> interleave_access_stream(const std::vector<std::uint64_t>& counts,
                                                    Rng& rng);

/// Groups a shuffled access stream into one AccessBatch per server. Access
/// order *within* each server is stream order — each summarizer sees the
/// identical subsequence it would have seen from the per-access loop. When
/// `client_weights` is non-empty it supplies the per-access weight (indexed
/// by client); otherwise batches carry empty weight vectors (= all 1.0).
std::vector<AccessBatch> batch_by_server(const std::vector<std::uint32_t>& stream,
                                         const std::vector<std::size_t>& server_of_client,
                                         const std::vector<Point>& client_coords,
                                         std::size_t server_count,
                                         std::span<const double> client_weights = {});

}  // namespace geored::wl
