#include "workload/modulated.h"

#include <algorithm>
#include <cmath>

#include "common/ensure.h"

namespace geored::wl {

namespace {
constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
}

double RateProfile::multiplier(std::size_t i, double time_ms) const {
  if (!affected.empty() && !affected.at(i)) return 1.0;
  switch (kind) {
    case Kind::kStep:
      return (time_ms >= start_ms && time_ms < end_ms) ? factor : 1.0;
    case Kind::kDiurnal: {
      const double angle = kTwoPi * (time_ms / period_ms - phase);
      const double envelope = 0.5 * (1.0 + std::cos(angle));
      return std::max(floor_fraction, envelope);
    }
  }
  return 1.0;  // unreachable; keeps -Wreturn-type quiet
}

double RateProfile::max_multiplier(std::size_t i) const {
  if (!affected.empty() && !affected.at(i)) return 1.0;
  switch (kind) {
    case Kind::kStep:
      // 1 outside the window, factor inside; the bound covers both.
      return std::max(1.0, factor);
    case Kind::kDiurnal:
      // The envelope tops out at 1 (at the peak phase).
      return 1.0;
  }
  return 1.0;
}

ModulatedWorkload::ModulatedWorkload(std::unique_ptr<Workload> base,
                                     std::vector<RateProfile> profiles)
    : base_(std::move(base)), profiles_(std::move(profiles)) {
  GEORED_ENSURE(base_ != nullptr, "modulated workload needs a base workload");
  const std::size_t clients = base_->client_count();
  for (const auto& profile : profiles_) {
    GEORED_ENSURE(profile.affected.empty() || profile.affected.size() == clients,
                  "profile affected mask must cover every client when present");
    switch (profile.kind) {
      case RateProfile::Kind::kStep:
        GEORED_ENSURE(profile.end_ms >= profile.start_ms,
                      "step profile window must be ordered");
        GEORED_ENSURE(profile.factor > 0.0 && std::isfinite(profile.factor),
                      "step profile factor must be positive and finite");
        break;
      case RateProfile::Kind::kDiurnal:
        GEORED_ENSURE(profile.period_ms > 0.0, "diurnal profile period must be positive");
        GEORED_ENSURE(profile.phase >= 0.0 && profile.phase < 1.0,
                      "diurnal profile phase must lie in [0,1)");
        GEORED_ENSURE(profile.floor_fraction >= 0.0 && profile.floor_fraction <= 1.0,
                      "diurnal profile floor must lie in [0,1]");
        break;
    }
  }
  max_multiplier_.assign(clients, 1.0);
  for (std::size_t i = 0; i < clients; ++i) {
    for (const auto& profile : profiles_) {
      max_multiplier_[i] *= profile.max_multiplier(i);
    }
  }
}

double ModulatedWorkload::rate(std::size_t i, double time_ms) const {
  double multiplier = 1.0;
  for (const auto& profile : profiles_) multiplier *= profile.multiplier(i, time_ms);
  return base_->rate(i, time_ms) * multiplier;
}

double ModulatedWorkload::max_rate(std::size_t i) const {
  return base_->max_rate(i) * max_multiplier_.at(i);
}

}  // namespace geored::wl
