// Client access workloads.
//
// A Workload describes, for every client, a (possibly time-varying) access
// rate and a data volume per access. The fast evaluation harness samples
// Poisson access *counts* per epoch from it; the event-driven simulator
// samples individual arrival *times* via thinning. Both consume the same
// object, so experiments agree across the two execution paths.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"

namespace geored::wl {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::size_t client_count() const = 0;

  /// Instantaneous access rate of client `i` at virtual time `time_ms`,
  /// in accesses per millisecond.
  virtual double rate(std::size_t i, double time_ms) const = 0;

  /// An upper bound on rate(i, t) over all t (needed for thinning).
  virtual double max_rate(std::size_t i) const = 0;

  /// Mean data volume exchanged per access, in normalized units.
  virtual double data_per_access(std::size_t i) const;

  /// Expected number of accesses by client `i` in [t0, t1], integrated by
  /// midpoint quadrature (exact for the piecewise-constant workloads).
  double expected_accesses(std::size_t i, double t0, double t1,
                           std::size_t quadrature_steps = 16) const;

  /// Poisson-samples the access count of client `i` over [t0, t1].
  std::uint64_t sample_access_count(std::size_t i, double t0, double t1, Rng& rng) const;

  /// Samples individual arrival times of client `i` in [t0, t1) by thinning
  /// (exact for any rate function bounded by max_rate). Sorted ascending.
  std::vector<double> sample_arrival_times(std::size_t i, double t0, double t1,
                                           Rng& rng) const;
};

/// Time-invariant per-client rates.
class StaticWorkload final : public Workload {
 public:
  StaticWorkload(std::vector<double> rates, std::vector<double> data_per_access = {});

  std::size_t client_count() const override { return rates_.size(); }
  double rate(std::size_t i, double time_ms) const override;
  double max_rate(std::size_t i) const override;
  double data_per_access(std::size_t i) const override;

 private:
  std::vector<double> rates_;
  std::vector<double> data_;
};

/// Equal mean rate for every client, with multiplicative lognormal spread.
std::unique_ptr<StaticWorkload> make_uniform_workload(std::size_t clients, double mean_rate,
                                                      double lognormal_sigma, std::uint64_t seed);

/// Heavy-tailed client popularity: client rates follow a Zipf law with the
/// given exponent, scaled so they sum to `total_rate`.
std::unique_ptr<StaticWorkload> make_zipf_workload(std::size_t clients, double total_rate,
                                                   double exponent, std::uint64_t seed);

/// Follow-the-sun modulation: each client's base rate is multiplied by a
/// sinusoid of the given period whose phase is derived from the client's
/// phase value (e.g. longitude / 360). rate never drops below
/// `floor_fraction` of the base.
class DiurnalWorkload final : public Workload {
 public:
  DiurnalWorkload(std::unique_ptr<Workload> base, std::vector<double> phases,
                  double period_ms, double floor_fraction = 0.1);

  std::size_t client_count() const override { return base_->client_count(); }
  double rate(std::size_t i, double time_ms) const override;
  double max_rate(std::size_t i) const override;
  double data_per_access(std::size_t i) const override { return base_->data_per_access(i); }

 private:
  std::unique_ptr<Workload> base_;
  std::vector<double> phases_;  ///< in [0,1), fraction of the period
  double period_ms_;
  double floor_fraction_;
};

/// Client churn: client `i` is only active during [windows[i].start,
/// windows[i].end); outside its window its rate is zero. Models user
/// populations that appear and disappear (the paper's motivation for
/// summarizing *recent* accesses).
class ActiveWindowWorkload final : public Workload {
 public:
  struct Window {
    double start_ms = 0.0;
    double end_ms = 0.0;
  };

  ActiveWindowWorkload(std::unique_ptr<Workload> base, std::vector<Window> windows);

  std::size_t client_count() const override { return base_->client_count(); }
  double rate(std::size_t i, double time_ms) const override;
  double max_rate(std::size_t i) const override { return base_->max_rate(i); }
  double data_per_access(std::size_t i) const override { return base_->data_per_access(i); }

 private:
  std::unique_ptr<Workload> base_;
  std::vector<Window> windows_;
};

/// A demand spike: clients in `affected` have their rate multiplied by
/// `boost` during [start_ms, end_ms).
class FlashCrowdWorkload final : public Workload {
 public:
  FlashCrowdWorkload(std::unique_ptr<Workload> base, std::vector<bool> affected,
                     double start_ms, double end_ms, double boost);

  std::size_t client_count() const override { return base_->client_count(); }
  double rate(std::size_t i, double time_ms) const override;
  double max_rate(std::size_t i) const override;
  double data_per_access(std::size_t i) const override { return base_->data_per_access(i); }

 private:
  std::unique_ptr<Workload> base_;
  std::vector<bool> affected_;
  double start_ms_, end_ms_, boost_;
};

/// One fleet-wide request arrival: which client, and when.
struct Arrival {
  std::size_t client = 0;
  double at_ms = 0.0;
};

/// Samples every client's arrivals over [t0, t1) — one decorrelated fork of
/// `root` per client, so each client's stream is independent of the others
/// and of iteration order — and merges them into a single time-ordered
/// schedule (ties break by client index). This is the request stream the
/// serving data plane replays: the same per-client sampling the scenario
/// engine performs, flattened for callers without a simulator.
std::vector<Arrival> sample_fleet_arrivals(const Workload& workload, double t0, double t1,
                                           const Rng& root);

}  // namespace geored::wl
