// Access traces: recording, storage, synthesis and replay.
//
// The paper's future work calls for "a more realistic evaluation study
// based on data accesses in actual applications". This module provides the
// machinery: a portable text format for access traces, a recorder, a
// session-based synthetic generator (clients arrive, issue a burst of
// Zipf-popular reads with think times, leave — the standard web-session
// model), and a replayer that drives a ReplicatedKvStore from a trace.
// Real application traces can be converted to the same format and replayed
// unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "common/random.h"

namespace geored::wl {

struct TraceEvent {
  double time_ms = 0.0;
  std::uint32_t client = 0;    ///< client index (caller maps to node ids)
  std::uint64_t object = 0;    ///< object identifier
  std::uint32_t bytes = 0;     ///< payload size
  bool is_write = false;

  bool operator==(const TraceEvent&) const = default;
};

/// An access trace ordered by time.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<TraceEvent> events);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  double duration_ms() const { return events_.empty() ? 0.0 : events_.back().time_ms; }

  /// Appends an event; must not go backwards in time.
  void append(const TraceEvent& event);

  /// Text serialization: a header line, then one "time client object bytes
  /// r|w" line per event.
  void save(std::ostream& os) const;
  static Trace load(std::istream& is);

  /// Time-scaled copy: every timestamp multiplied by `factor` (> 0).
  /// factor < 1 compresses (replays faster), > 1 stretches.
  Trace scaled(double factor) const;

  /// Merge of two traces: events interleaved by time; client and object id
  /// spaces are assumed shared (offset them beforehand if they are not).
  static Trace merged(const Trace& a, const Trace& b);

  /// Basic shape statistics (used by tests and tooling).
  struct Stats {
    std::size_t events = 0;
    std::size_t distinct_clients = 0;
    std::size_t distinct_objects = 0;
    double write_fraction = 0.0;
    double duration_ms = 0.0;
  };
  Stats stats() const;

 private:
  std::vector<TraceEvent> events_;
};

/// Session-model synthetic trace generator.
struct SessionTraceConfig {
  std::size_t clients = 100;
  std::size_t objects = 1000;
  double duration_ms = 600'000.0;

  /// Client session arrivals: each client starts sessions as a Poisson
  /// process with this rate (sessions per ms).
  double session_rate = 1.0 / 120'000.0;
  /// Requests per session: 1 + Poisson(mean_requests_per_session - 1).
  double mean_requests_per_session = 8.0;
  /// Think time between a session's requests (exponential mean, ms).
  double mean_think_time_ms = 2'000.0;

  /// Object popularity: Zipf exponent over the object catalogue.
  double zipf_exponent = 0.9;
  /// Probability a request is a write.
  double write_fraction = 0.05;
  /// Request payload size range (uniform).
  std::uint32_t min_bytes = 256;
  std::uint32_t max_bytes = 4096;
};

/// Generates a trace; pure function of (config, seed).
Trace generate_session_trace(const SessionTraceConfig& config, std::uint64_t seed);

}  // namespace geored::wl
