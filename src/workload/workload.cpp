#include "workload/workload.h"

#include <algorithm>
#include <cmath>

#include "common/ensure.h"

namespace geored::wl {

namespace {
constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
}

double Workload::data_per_access(std::size_t) const { return 1.0; }

double Workload::expected_accesses(std::size_t i, double t0, double t1,
                                   std::size_t quadrature_steps) const {
  GEORED_ENSURE(t1 >= t0, "interval must be ordered");
  GEORED_ENSURE(quadrature_steps >= 1, "need at least one quadrature step");
  const double h = (t1 - t0) / static_cast<double>(quadrature_steps);
  double total = 0.0;
  for (std::size_t s = 0; s < quadrature_steps; ++s) {
    total += rate(i, t0 + (static_cast<double>(s) + 0.5) * h) * h;
  }
  return total;
}

std::uint64_t Workload::sample_access_count(std::size_t i, double t0, double t1,
                                            Rng& rng) const {
  return rng.poisson(expected_accesses(i, t0, t1));
}

std::vector<double> Workload::sample_arrival_times(std::size_t i, double t0, double t1,
                                                   Rng& rng) const {
  GEORED_ENSURE(t1 >= t0, "interval must be ordered");
  std::vector<double> arrivals;
  const double bound = max_rate(i);
  if (bound <= 0.0) return arrivals;
  double t = t0;
  while (true) {
    t += rng.exponential(bound);
    if (t >= t1) break;
    // Thinning: accept with probability rate(t)/bound.
    if (rng.uniform() * bound < rate(i, t)) arrivals.push_back(t);
  }
  return arrivals;
}

StaticWorkload::StaticWorkload(std::vector<double> rates, std::vector<double> data_per_access)
    : rates_(std::move(rates)), data_(std::move(data_per_access)) {
  GEORED_ENSURE(!rates_.empty(), "workload needs at least one client");
  for (double r : rates_) GEORED_ENSURE(r >= 0.0, "rates must be non-negative");
  GEORED_ENSURE(data_.empty() || data_.size() == rates_.size(),
                "data volumes must match client count when provided");
}

double StaticWorkload::rate(std::size_t i, double) const { return rates_.at(i); }
double StaticWorkload::max_rate(std::size_t i) const { return rates_.at(i); }
double StaticWorkload::data_per_access(std::size_t i) const {
  return data_.empty() ? 1.0 : data_.at(i);
}

std::unique_ptr<StaticWorkload> make_uniform_workload(std::size_t clients, double mean_rate,
                                                      double lognormal_sigma,
                                                      std::uint64_t seed) {
  GEORED_ENSURE(clients >= 1, "workload needs at least one client");
  GEORED_ENSURE(mean_rate >= 0.0, "mean_rate must be non-negative");
  GEORED_ENSURE(lognormal_sigma >= 0.0, "lognormal_sigma must be non-negative");
  Rng rng(seed);
  std::vector<double> rates(clients);
  // exp(N(0, sigma) - sigma^2/2) has mean 1, so the population mean is kept.
  const double mu_correction = -0.5 * lognormal_sigma * lognormal_sigma;
  for (auto& r : rates) {
    r = mean_rate * std::exp(rng.normal(mu_correction, lognormal_sigma));
  }
  return std::make_unique<StaticWorkload>(std::move(rates));
}

std::unique_ptr<StaticWorkload> make_zipf_workload(std::size_t clients, double total_rate,
                                                   double exponent, std::uint64_t seed) {
  GEORED_ENSURE(clients >= 1, "workload needs at least one client");
  GEORED_ENSURE(total_rate >= 0.0, "total_rate must be non-negative");
  GEORED_ENSURE(exponent >= 0.0, "zipf exponent must be non-negative");
  // Assign Zipf ranks to clients in a seeded random order, so the popular
  // clients are not always the low node ids.
  Rng rng(seed);
  const auto order = rng.permutation(clients);
  std::vector<double> rates(clients);
  double norm = 0.0;
  for (std::size_t rank = 0; rank < clients; ++rank) {
    norm += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
  }
  for (std::size_t rank = 0; rank < clients; ++rank) {
    rates[order[rank]] =
        total_rate / std::pow(static_cast<double>(rank + 1), exponent) / norm;
  }
  return std::make_unique<StaticWorkload>(std::move(rates));
}

DiurnalWorkload::DiurnalWorkload(std::unique_ptr<Workload> base, std::vector<double> phases,
                                 double period_ms, double floor_fraction)
    : base_(std::move(base)),
      phases_(std::move(phases)),
      period_ms_(period_ms),
      floor_fraction_(floor_fraction) {
  GEORED_ENSURE(base_ != nullptr, "diurnal workload needs a base workload");
  GEORED_ENSURE(phases_.size() == base_->client_count(), "one phase per client required");
  GEORED_ENSURE(period_ms_ > 0.0, "period must be positive");
  GEORED_ENSURE(floor_fraction_ >= 0.0 && floor_fraction_ <= 1.0,
                "floor_fraction must be in [0,1]");
}

double DiurnalWorkload::rate(std::size_t i, double time_ms) const {
  // Sinusoid in [0,1] peaking at phase: 0.5*(1+cos(2pi*(t/T - phase))).
  const double angle = kTwoPi * (time_ms / period_ms_ - phases_.at(i));
  const double envelope = 0.5 * (1.0 + std::cos(angle));
  return base_->rate(i, time_ms) * std::max(floor_fraction_, envelope);
}

double DiurnalWorkload::max_rate(std::size_t i) const { return base_->max_rate(i); }

ActiveWindowWorkload::ActiveWindowWorkload(std::unique_ptr<Workload> base,
                                           std::vector<Window> windows)
    : base_(std::move(base)), windows_(std::move(windows)) {
  GEORED_ENSURE(base_ != nullptr, "active-window workload needs a base workload");
  GEORED_ENSURE(windows_.size() == base_->client_count(), "one window per client required");
  for (const auto& window : windows_) {
    GEORED_ENSURE(window.end_ms >= window.start_ms, "windows must be ordered");
  }
}

double ActiveWindowWorkload::rate(std::size_t i, double time_ms) const {
  const auto& window = windows_.at(i);
  if (time_ms < window.start_ms || time_ms >= window.end_ms) return 0.0;
  return base_->rate(i, time_ms);
}

FlashCrowdWorkload::FlashCrowdWorkload(std::unique_ptr<Workload> base,
                                       std::vector<bool> affected, double start_ms,
                                       double end_ms, double boost)
    : base_(std::move(base)),
      affected_(std::move(affected)),
      start_ms_(start_ms),
      end_ms_(end_ms),
      boost_(boost) {
  GEORED_ENSURE(base_ != nullptr, "flash crowd needs a base workload");
  GEORED_ENSURE(affected_.size() == base_->client_count(),
                "one affected flag per client required");
  GEORED_ENSURE(end_ms_ >= start_ms_, "flash crowd interval must be ordered");
  GEORED_ENSURE(boost_ >= 1.0, "boost must be >= 1");
}

double FlashCrowdWorkload::rate(std::size_t i, double time_ms) const {
  const double base = base_->rate(i, time_ms);
  if (affected_.at(i) && time_ms >= start_ms_ && time_ms < end_ms_) return base * boost_;
  return base;
}

double FlashCrowdWorkload::max_rate(std::size_t i) const {
  return base_->max_rate(i) * (affected_.at(i) ? boost_ : 1.0);
}

std::vector<Arrival> sample_fleet_arrivals(const Workload& workload, double t0, double t1,
                                           const Rng& root) {
  std::vector<Arrival> schedule;
  const std::size_t clients = workload.client_count();
  for (std::size_t c = 0; c < clients; ++c) {
    Rng rng = root.fork(c);
    for (const double at : workload.sample_arrival_times(c, t0, t1, rng)) {
      schedule.push_back({c, at});
    }
  }
  std::sort(schedule.begin(), schedule.end(), [](const Arrival& a, const Arrival& b) {
    return a.at_ms != b.at_ms ? a.at_ms < b.at_ms : a.client < b.client;
  });
  return schedule;
}

}  // namespace geored::wl
