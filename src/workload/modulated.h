// Time-profile modulation over any base workload.
//
// The scenario engine expresses demand dynamics — diurnal cycles, flash
// crowds, regional lulls — as declarative rate profiles. ModulatedWorkload
// is the execution form: a decorator that multiplies the base rate of each
// client by the product of every profile that covers it at that instant.
// Because rate() stays an exact closed form and max_rate() stays a true
// upper bound (the product of per-profile maxima), the decorator is exact
// under both existing sampling contracts: thinning accepts with probability
// rate/bound, and Poisson counting integrates rate by quadrature. Nothing
// about the base workload is assumed beyond the Workload interface, so
// profiles stack over static, Zipf, diurnal, or already-modulated bases.
#pragma once

#include <memory>
#include <vector>

#include "workload/workload.h"

namespace geored::wl {

/// One multiplicative lane of rate modulation applied to a subset of
/// clients. Profiles are closed under composition: the workload multiplies
/// the lanes, so one client may sit under a diurnal envelope and a flash
/// crowd at once.
struct RateProfile {
  enum class Kind {
    kStep,     ///< factor applied during [start_ms, end_ms), 1 outside
    kDiurnal,  ///< sinusoid envelope in [floor_fraction, 1] of period_ms
  };

  Kind kind = Kind::kStep;

  /// Clients the profile covers; empty means every client. Sized to the
  /// base workload's client count otherwise.
  std::vector<bool> affected;

  // kStep: the window and its multiplier (> 0; < 1 models a lull).
  double start_ms = 0.0;
  double end_ms = 0.0;
  double factor = 1.0;

  // kDiurnal: envelope max(floor_fraction, 0.5*(1+cos(2pi*(t/T - phase)))),
  // peaking when t/T mod 1 == phase.
  double period_ms = 86'400'000.0;
  double phase = 0.0;              ///< in [0,1), fraction of the period
  double floor_fraction = 0.1;     ///< in [0,1]

  /// The profile's multiplier for client `i` at `time_ms` (1 when the
  /// client is not covered).
  double multiplier(std::size_t i, double time_ms) const;

  /// Least upper bound of multiplier(i, t) over all t.
  double max_multiplier(std::size_t i) const;
};

/// Applies a stack of RateProfiles to a base workload:
///   rate(i, t) = base.rate(i, t) * prod_p p.multiplier(i, t).
class ModulatedWorkload final : public Workload {
 public:
  /// Validates every profile (ordered windows, positive factors/periods,
  /// affected mask sized to the base population when present).
  ModulatedWorkload(std::unique_ptr<Workload> base, std::vector<RateProfile> profiles);

  std::size_t client_count() const override { return base_->client_count(); }
  double rate(std::size_t i, double time_ms) const override;
  double max_rate(std::size_t i) const override;
  double data_per_access(std::size_t i) const override { return base_->data_per_access(i); }

  const std::vector<RateProfile>& profiles() const { return profiles_; }

 private:
  std::unique_ptr<Workload> base_;
  std::vector<RateProfile> profiles_;
  /// Product of per-profile maxima per client, precomputed so thinning's
  /// bound lookup stays O(1).
  std::vector<double> max_multiplier_;
};

}  // namespace geored::wl
