#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "common/ensure.h"

namespace geored::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw SocketError(std::string(what) + ": " + std::strerror(errno));
}

/// Waits for `events` on `fd`. True when ready, false when the wait expired.
bool wait_for(int fd, short events, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  while (true) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready > 0) return true;
    if (ready == 0) return false;
    if (errno == EINTR) continue;
    throw_errno("poll");
  }
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_all(const void* data, std::size_t len) {
  GEORED_ENSURE(valid(), "send_all on a closed socket");
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, bytes + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

IoStatus Socket::recv_exact(void* data, std::size_t len, int timeout_ms) {
  GEORED_ENSURE(valid(), "recv_exact on a closed socket");
  auto* bytes = static_cast<unsigned char*>(data);
  std::size_t received = 0;
  while (received < len) {
    // Each wait gets the full budget rather than a shrinking deadline — the
    // transport keeps wall-clock reads confined to the injected Clock, and a
    // peer trickling bytes is not the failure mode the timeout exists for.
    if (!wait_for(fd_, POLLIN, timeout_ms)) return IoStatus::kTimeout;
    const ssize_t n = ::recv(fd_, bytes + received, len - received, 0);
    if (n == 0) return IoStatus::kClosed;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return IoStatus::kClosed;
      throw_errno("recv");
    }
    received += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

void Socket::drain_until_closed(int timeout_ms) {
  GEORED_ENSURE(valid(), "drain_until_closed on a closed socket");
  unsigned char scratch[256];
  while (true) {
    if (!wait_for(fd_, POLLIN, timeout_ms)) return;  // held long enough
    const ssize_t n = ::recv(fd_, scratch, sizeof scratch, 0);
    if (n == 0) return;  // peer gave up and closed
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return;
      throw_errno("recv (drain)");
    }
  }
}

Listener::Listener() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket (listen)");
  const int reuse = 1;
  if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse) != 0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-assigned ephemeral port
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("bind");
  }
  if (::listen(fd_, SOMAXCONN) != 0) throw_errno("listen");
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<Socket> Listener::accept(int timeout_ms) {
  GEORED_ENSURE(fd_ >= 0, "accept on a closed listener");
  if (!wait_for(fd_, POLLIN, timeout_ms)) return std::nullopt;
  while (true) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return Socket(client);
    if (errno == EINTR) continue;
    // The peer can vanish between poll and accept; treat it like a timeout
    // so the accept loop keeps serving everyone else.
    if (errno == ECONNABORTED || errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
    throw_errno("accept");
  }
}

Socket connect_local(std::uint16_t port, int timeout_ms) {
  GEORED_ENSURE(port != 0, "connect_local needs a concrete port");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket (connect)");
  Socket socket(fd);  // RAII from here on
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno == EINTR) continue;
    throw_errno("connect");
  }
  // Loopback connect() completes synchronously (the backlog accepts it), so
  // the timeout only bounds pathological cases; keep the parameter so a
  // future non-blocking connect can honor it without an API change.
  (void)timeout_ms;
  return socket;
}

}  // namespace geored::net
