// Minimal blocking TCP sockets over localhost: the real transport under the
// RPC-backed summary collector.
//
// Scope is deliberately small — RAII file descriptors, exact-length send and
// receive with poll()-bounded waits, and an ephemeral-port listener bound to
// 127.0.0.1. No readiness loops, no buffers, no portability shims: callers
// block on the deterministic ThreadPool (or a dedicated server thread) and
// the kernel does the queueing. Hard I/O errors throw SocketError; orderly
// peer shutdown and expired waits are ordinary IoStatus results, because the
// fault-tolerant collector treats them as routine.
//
// Thread compatibility (deliberately NOT thread safety): a Socket or
// Listener is a move-only single-owner resource with no internal locking —
// exactly one thread may use an instance at a time, and ownership transfer
// (handing an accepted Socket to a handler thread) is the only supported
// cross-thread interaction. This is why the classes carry no capability
// annotations from common/sync.h: there is no shared state to guard, and
// adding a mutex here would paper over an ownership bug rather than fix it.
// Concurrent use of *distinct* instances is always safe. The RPC layer
// upholds the contract structurally: each fetch owns its client socket, and
// each server handler thread owns the accepted connection it was moved.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>

namespace geored::net {

/// Raised on unexpected transport failures (socket syscalls failing for
/// reasons other than a peer closing or a wait timing out).
class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Outcome of a bounded receive.
enum class IoStatus {
  kOk,       ///< every requested byte arrived
  kClosed,   ///< the peer closed before (or while) the bytes arrived
  kTimeout,  ///< the wait expired first
};

/// A connected TCP stream socket (move-only RAII fd).
class Socket {
 public:
  Socket() = default;
  /// Adopts an already-connected file descriptor.
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Writes exactly `len` bytes. Throws SocketError if the peer resets the
  /// connection or any other send failure occurs.
  void send_all(const void* data, std::size_t len);

  /// Reads exactly `len` bytes unless the peer closes (kClosed) or no data
  /// becomes readable within `timeout_ms` of waiting (kTimeout); both leave
  /// any partial bytes in `data` and the stream unusable for framing.
  IoStatus recv_exact(void* data, std::size_t len, int timeout_ms);

  /// Discards inbound bytes until the peer closes or `timeout_ms` of
  /// waiting expires — how a server holds a connection open without ever
  /// answering (the transport-level picture of a dropped response).
  void drain_until_closed(int timeout_ms);

 private:
  int fd_ = -1;
};

/// A listening socket bound to an ephemeral 127.0.0.1 port.
class Listener {
 public:
  Listener();
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// The kernel-assigned port clients connect_local() to.
  std::uint16_t port() const { return port_; }

  /// Accepts one connection, waiting at most `timeout_ms`; nullopt on
  /// timeout so accept loops can poll a stop flag between waits.
  std::optional<Socket> accept(int timeout_ms);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port`, waiting at most `timeout_ms` for the
/// connection to be accepted. Throws SocketError on failure.
Socket connect_local(std::uint16_t port, int timeout_ms);

}  // namespace geored::net
