#include "net/fault_injector.h"

#include <string>

#include "common/ensure.h"
#include "common/random.h"

namespace geored::net {

namespace {

/// Folds the triple into one 64-bit stream id for Rng::fork. The constants
/// are odd (hence invertible mod 2^64) so distinct triples map to distinct
/// streams across the ranges any experiment reaches.
std::uint64_t mix(std::uint64_t salt, std::uint64_t source, std::uint64_t attempt) {
  std::uint64_t state = salt;
  state ^= source * 0x9e3779b97f4a7c15ULL + 0x7f4a7c159e3779b9ULL;
  state ^= attempt * 0xbf58476d1ce4e5b9ULL + 0x94d049bb133111ebULL;
  return splitmix64(state);
}

void check_probability(double p, const char* label) {
  GEORED_ENSURE(p >= 0.0 && p <= 1.0,
                std::string("fault probability '") + label + "' must lie in [0, 1]");
}

}  // namespace

FaultInjector::FaultInjector(FaultConfig config) : config_(config) {
  check_probability(config_.drop, "drop");
  check_probability(config_.delay, "delay");
  check_probability(config_.duplicate, "duplicate");
  check_probability(config_.truncate, "truncate");
  check_probability(config_.disconnect, "disconnect");
  const double total = config_.drop + config_.delay + config_.duplicate + config_.truncate +
                       config_.disconnect;
  GEORED_ENSURE(total <= 1.0 + 1e-12, "fault probabilities must sum to at most 1");
  enabled_ = total > 0.0;
}

FaultPlan FaultInjector::plan(std::uint64_t salt, std::uint64_t source,
                              std::uint64_t attempt) const {
  if (!enabled_) return {};
  Rng rng = Rng(config_.seed).fork(mix(salt, source, attempt));
  const double draw = rng.uniform();
  double edge = config_.drop;
  if (draw < edge) return {FaultAction::kDrop, 0};
  edge += config_.delay;
  if (draw < edge) return {FaultAction::kDelay, config_.delay_ms};
  edge += config_.duplicate;
  if (draw < edge) return {FaultAction::kDuplicate, 0};
  edge += config_.truncate;
  if (draw < edge) return {FaultAction::kTruncate, 0};
  edge += config_.disconnect;
  if (draw < edge) return {FaultAction::kDisconnect, 0};
  return {};
}

}  // namespace geored::net
