// Length-prefixed frames: the unit of the RPC transport.
//
// One frame on the wire is
//
//   +----------------+----------------+===================+
//   | u32 magic GRFR | u32 len (LE)   |  len payload bytes |
//   +----------------+----------------+===================+
//
// The magic catches cross-protocol garbage at the first read; the length
// prefix bounds the read so a frame is consumed exactly. Anything that
// cannot be a well-formed frame — wrong magic, a length above the sanity
// cap, or the stream ending mid-frame — throws FrameError, the transport's
// typed "these bytes are corrupt" signal. A stream that ends cleanly
// *between* frames is not an error (IoStatus::kClosed), because connection
// teardown is an ordinary event for the fault-tolerant collector.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "net/socket.h"

namespace geored::net {

/// First field of every frame ("GRFR" little-endian).
inline constexpr std::uint32_t kFrameMagic = 0x52465247;

/// Sanity cap on payload length (16 MiB): a summary frame is O(k * m * dim)
/// doubles, so anything near this is corruption, not data.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 24;

/// Raised when received bytes cannot be a well-formed frame.
class FrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Sends `payload` as one frame.
void write_frame(Socket& socket, std::span<const std::uint8_t> payload);

/// Sends a deliberately malformed frame whose header claims
/// `payload.size()` bytes but whose body stops after `sent_bytes` — the
/// fault injector's "truncate" action. Requires sent_bytes < payload.size().
void write_truncated_frame(Socket& socket, std::span<const std::uint8_t> payload,
                           std::size_t sent_bytes);

/// Reads one frame into `payload`. kOk on success; kClosed when the peer
/// closed before a full header arrived; kTimeout when the header wait
/// expired. Throws FrameError on a bad magic, an oversized length, or a
/// stream that ends (or times out) after the header but before the payload
/// completes — a frame with a believed header is corrupt if cut short, not
/// merely late.
IoStatus read_frame(Socket& socket, std::vector<std::uint8_t>& payload, int timeout_ms);

}  // namespace geored::net
