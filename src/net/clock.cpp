// The single src/net/ translation unit allowed to read the real clock
// (tools/lint_conventions.py: net-injected-clock). Everything else in the
// transport spends time exclusively through the Clock interface.
#include "net/clock.h"

#include <chrono>
#include <thread>

namespace geored::net {

std::uint64_t SystemClock::now_ms() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
}

void SystemClock::sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace geored::net
