// Seeded fault injection for the RPC transport.
//
// The injector answers one question — "what goes wrong with attempt A of
// source S under salt X?" — as a pure function of its seed and those three
// numbers. Nothing about thread scheduling, socket timing, or retry order
// can change the answer, so a failure schedule observed once reproduces
// bit-for-bit from the same seed. The server consults the plan before
// replying and acts it out at the transport level: hold the connection open
// without answering (drop), stall then answer (delay), answer twice
// (duplicate), send a frame whose body stops short of its header's claim
// (truncate), or close before answering (disconnect).
#pragma once

#include <cstdint>

namespace geored::net {

/// What the server does to one request, in ladder order.
enum class FaultAction {
  kNone,        ///< respond normally
  kDrop,        ///< never respond; hold the connection until the client quits
  kDelay,       ///< respond after an injected delay
  kDuplicate,   ///< respond twice (clients must treat replies as idempotent)
  kTruncate,    ///< respond with a frame cut short of its declared length
  kDisconnect,  ///< close the connection without responding
};

/// Per-action probabilities plus the seed that fixes the schedule.
struct FaultConfig {
  double drop = 0.0;
  double delay = 0.0;
  double duplicate = 0.0;
  double truncate = 0.0;
  double disconnect = 0.0;

  /// Server-side stall for kDelay; keep below the client timeout so a
  /// delayed reply is recoverable rather than indistinguishable from a drop.
  std::uint64_t delay_ms = 5;

  /// Root of the whole failure schedule.
  std::uint64_t seed = 0;
};

/// The injector's verdict for one (salt, source, attempt) triple.
struct FaultPlan {
  FaultAction action = FaultAction::kNone;
  std::uint64_t delay_ms = 0;  ///< nonzero only for kDelay
};

/// Deterministic fault oracle. Copyable and immutable after construction;
/// plan() is const and thread-safe because it derives a fresh generator per
/// call instead of mutating shared state.
class FaultInjector {
 public:
  /// Validates each probability lies in [0, 1] and their sum is at most 1.
  explicit FaultInjector(FaultConfig config = {});

  /// True when any fault has nonzero probability.
  bool enabled() const { return enabled_; }

  const FaultConfig& config() const { return config_; }

  /// The fate of attempt `attempt` for `source` under `salt` — typically the
  /// epoch seed, so schedules differ across epochs yet replay exactly. One
  /// uniform draw walks the ladder drop -> delay -> duplicate -> truncate ->
  /// disconnect; the leftover mass is kNone.
  FaultPlan plan(std::uint64_t salt, std::uint64_t source, std::uint64_t attempt) const;

 private:
  FaultConfig config_;
  bool enabled_ = false;
};

}  // namespace geored::net
