// RPC-backed summary collection over real localhost TCP sockets.
//
// RpcCollector is the fourth SummaryCollector (registry name "rpc"). Where
// DirectCollector concatenates summaries in-process and the protocol
// collectors run over the *simulated* network, this one actually ships
// bytes: collect() serializes each source with the shared write_clusters
// wire format, stands up a summary server on an ephemeral 127.0.0.1 port,
// and fetches every source's frame back through the socket layer — with a
// per-source timeout, capped exponential backoff retries, and a seeded
// FaultInjector deciding which attempts the server sabotages.
//
// Degradation contract: an epoch always completes. A source that exhausts
// its retry budget is served from that replica's last successfully collected
// payload (flagged in CollectedSummaries::stale_sources); a source with no
// cached payload is dropped and flagged in lost_sources. With faults
// disabled the collected summaries and the reported summary_bytes are
// byte-identical to DirectCollector on the same sources — pinned by the
// RpcEquivalence test suite.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "core/epoch_pipeline.h"
#include "net/clock.h"
#include "net/fault_injector.h"
#include "net/rpc_config.h"

namespace geored::net {

class RpcCollector final : public core::SummaryCollector {
 public:
  /// `clock` is the transport's only source of time (backoff sleeps and
  /// injected delays); null means the real SystemClock. Tests inject a
  /// VirtualClock so the whole retry state machine runs in zero wall time.
  explicit RpcCollector(RpcCollectorConfig config = {}, std::shared_ptr<Clock> clock = nullptr);

  std::string name() const override { return "rpc"; }

  /// Runs one collection round. Deterministic in the sources and
  /// context.epoch_seed: fault plans are pure functions of
  /// (config.faults.seed, epoch_seed, source, attempt), so which attempts
  /// fail — and therefore which sources go stale — replays exactly.
  /// summary_bytes counts only bytes that crossed the wire this round;
  /// stale fallbacks reuse bytes paid for in an earlier epoch.
  core::CollectedSummaries collect(const std::vector<core::SummarySource>& sources,
                                   const core::CollectionContext& context) override
      GEORED_EXCLUDES(mutex_);

  /// Counters from the most recent collect() round (a snapshot: the stats
  /// and the stale-fallback cache are mutex-guarded, so observing them from
  /// another thread mid-collect returns the last consistent state).
  RpcStats last_stats() const GEORED_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return stats_;
  }

  const RpcCollectorConfig& config() const { return config_; }

 private:
  RpcCollectorConfig config_;
  FaultInjector injector_;
  std::shared_ptr<Clock> clock_;
  /// Guards the cross-epoch collector state: the per-round counters and the
  /// stale-fallback payload cache. The per-source fetch results themselves
  /// need no lock (index-disjoint slots); the guarded phase is the
  /// accounting pass that folds them into stats_/last_good_ after the
  /// server has joined.
  mutable Mutex mutex_;
  RpcStats stats_ GEORED_GUARDED_BY(mutex_);
  /// Per-replica last successfully collected payload — the stale-fallback
  /// store. Keyed by node id so it survives placement changes; if two
  /// sources ever share a node the later one wins.
  std::map<topo::NodeId, std::vector<std::uint8_t>> last_good_ GEORED_GUARDED_BY(mutex_);
};

}  // namespace geored::net
