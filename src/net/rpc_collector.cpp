#include "net/rpc_collector.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <utility>

#include "common/ensure.h"
#include "common/serialize.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "net/frame.h"
#include "net/socket.h"

namespace geored::net {

namespace {

/// Request payload: which source's summary, and which attempt this is. The
/// attempt number travels in the request so the fault injector can give
/// retries a fresh verdict without the server tracking any client state.
constexpr std::size_t kRequestBytes = 2 * sizeof(std::uint32_t);

/// Accept-loop poll tick: how often the server checks its stop flag. Pure
/// liveness plumbing, not time "spent" — hence not on the injected Clock.
constexpr int kAcceptTickMs = 50;

/// How long a dropping server holds an unanswered connection open waiting
/// for the client to give up. The client's own timeout fires far sooner and
/// closes the socket, which ends the drain; this bound only stops a handler
/// thread from leaking if the peer wedges.
constexpr int kDropHoldMs = 60 * 1000;

void put_u32(std::uint8_t* out, std::uint32_t value) { std::memcpy(out, &value, sizeof value); }

std::uint32_t get_u32(const std::uint8_t* in) {
  std::uint32_t value;
  std::memcpy(&value, in, sizeof value);
  return value;
}

/// Serves the epoch's per-source payloads, sabotaging attempts as the fault
/// injector directs. One accept-loop thread plus one short-lived thread per
/// connection, all joined by the destructor before collect() returns.
class SummaryServer {
 public:
  SummaryServer(std::vector<std::vector<std::uint8_t>> payloads, const FaultInjector& injector,
                std::uint64_t salt, Clock& clock, int request_timeout_ms)
      : payloads_(std::move(payloads)),
        injector_(injector),
        salt_(salt),
        clock_(clock),
        request_timeout_ms_(request_timeout_ms) {
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  ~SummaryServer() {
    stop_.store(true);
    accept_thread_.join();
    // The accept loop is done, but the annotation (not the join ordering) is
    // what guarantees no handler registration races this drain.
    std::vector<std::thread> handlers;
    {
      const MutexLock lock(handlers_mutex_);
      handlers.swap(handlers_);
    }
    for (auto& handler : handlers) handler.join();
  }

  SummaryServer(const SummaryServer&) = delete;
  SummaryServer& operator=(const SummaryServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

 private:
  void accept_loop() {
    while (!stop_.load()) {
      std::optional<Socket> conn = listener_.accept(kAcceptTickMs);
      if (!conn) continue;
      const MutexLock lock(handlers_mutex_);
      handlers_.emplace_back(
          [this](Socket socket) { handle(std::move(socket)); }, std::move(*conn));
    }
  }

  void handle(Socket conn) {
    // A peer vanishing mid-exchange is its client's fault to count, not an
    // error here — swallow transport exceptions and drop the connection.
    try {
      std::vector<std::uint8_t> request;
      if (read_frame(conn, request, request_timeout_ms_) != IoStatus::kOk) return;
      if (request.size() != kRequestBytes) return;
      const std::uint32_t source = get_u32(request.data());
      const std::uint32_t attempt = get_u32(request.data() + sizeof(std::uint32_t));
      if (source >= payloads_.size()) return;
      const std::vector<std::uint8_t>& payload = payloads_[source];
      const FaultPlan plan = injector_.plan(salt_, source, attempt);
      switch (plan.action) {
        case FaultAction::kNone:
          write_frame(conn, payload);
          break;
        case FaultAction::kDrop:
          // Never answer; wait out the client's timeout-and-close.
          conn.drain_until_closed(kDropHoldMs);
          break;
        case FaultAction::kDelay:
          clock_.sleep_ms(plan.delay_ms);
          write_frame(conn, payload);
          break;
        case FaultAction::kDuplicate:
          write_frame(conn, payload);
          write_frame(conn, payload);
          break;
        case FaultAction::kTruncate:
          // Header promises the full payload; the body stops halfway. An
          // empty payload cannot be cut short, so degrade to a disconnect.
          if (payload.empty()) break;
          write_truncated_frame(conn, payload, payload.size() / 2);
          break;
        case FaultAction::kDisconnect:
          break;  // close without replying
      }
    } catch (const SocketError&) {
    } catch (const FrameError&) {
    } catch (const std::invalid_argument&) {
    }
  }

  Listener listener_;
  std::vector<std::vector<std::uint8_t>> payloads_;
  FaultInjector injector_;
  std::uint64_t salt_;
  Clock& clock_;
  int request_timeout_ms_;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  /// Registered by the accept loop, drained by the destructor. The join
  /// ordering alone would make this safe today; the capability annotation
  /// keeps it safe when a second registration path appears.
  Mutex handlers_mutex_;
  std::vector<std::thread> handlers_ GEORED_GUARDED_BY(handlers_mutex_);
};

/// One source's fate after the retry loop, plus its share of the counters.
/// Slots live in an index-disjoint vector so the parallel fetch needs no
/// synchronization.
struct FetchResult {
  bool ok = false;
  std::vector<std::uint8_t> payload;
  std::vector<cluster::MicroCluster> clusters;
  std::size_t requests_sent = 0;
  std::size_t faults_hit = 0;
  std::size_t retries = 0;
  std::uint64_t backoff_ms = 0;
};

std::uint64_t backoff_for_attempt(const RpcCollectorConfig& config, std::size_t attempt) {
  std::uint64_t backoff = config.backoff_initial_ms;
  for (std::size_t step = 1; step < attempt; ++step) {
    backoff = std::min(backoff * 2, config.backoff_cap_ms);
  }
  return std::min(backoff, config.backoff_cap_ms);
}

FetchResult fetch_source(std::uint16_t port, std::uint32_t source,
                         const RpcCollectorConfig& config, Clock& clock) {
  FetchResult result;
  const int timeout_ms = static_cast<int>(
      std::min<std::uint64_t>(config.timeout_ms, std::numeric_limits<int>::max()));
  for (std::size_t attempt = 0; attempt < config.max_attempts; ++attempt) {
    if (attempt > 0) {
      const std::uint64_t backoff = backoff_for_attempt(config, attempt);
      clock.sleep_ms(backoff);
      result.backoff_ms += backoff;
      ++result.retries;
    }
    try {
      Socket socket = connect_local(port, timeout_ms);
      std::uint8_t request[kRequestBytes];
      put_u32(request, source);
      put_u32(request + sizeof(std::uint32_t), static_cast<std::uint32_t>(attempt));
      write_frame(socket, request);
      ++result.requests_sent;
      std::vector<std::uint8_t> response;
      if (read_frame(socket, response, timeout_ms) == IoStatus::kOk) {
        // Hardened decode: anything a zero-fault server could not have sent
        // throws WireFormatError and burns this attempt like any other fault.
        ByteReader reader(response);
        std::vector<cluster::MicroCluster> clusters =
            cluster::MicroClusterSummarizer::deserialize_clusters(reader);
        if (!reader.exhausted()) {
          throw WireFormatError("summary response carries trailing bytes");
        }
        result.clusters = std::move(clusters);
        result.payload = std::move(response);
        result.ok = true;
        return result;
      }
      // kClosed: the server disconnected without answering.
      // kTimeout: the server is holding the response (drop); give up and
      // close, which releases the server's drain.
    } catch (const FrameError&) {
      // Truncated or corrupt frame.
    } catch (const SocketError&) {
      // Reset mid-exchange.
    } catch (const WireFormatError&) {
      // Framed fine, decoded to garbage.
    }
    ++result.faults_hit;
  }
  return result;
}

}  // namespace

std::string RpcStats::to_string() const {
  return "rpc: requests=" + std::to_string(requests_sent) + " ok=" +
         std::to_string(responses_ok) + " faults=" + std::to_string(faults_hit) +
         " retries=" + std::to_string(retries) + " stale=" + std::to_string(stale_fallbacks) +
         " lost=" + std::to_string(lost_sources) + " backoff_ms=" +
         std::to_string(backoff_ms_total);
}

RpcCollector::RpcCollector(RpcCollectorConfig config, std::shared_ptr<Clock> clock)
    : config_(config), injector_(config.faults), clock_(std::move(clock)) {
  GEORED_ENSURE(config_.max_attempts >= 1, "the retry budget includes the first attempt");
  GEORED_ENSURE(config_.timeout_ms > config_.faults.delay_ms,
                "the client timeout must exceed the injected delay or delays become drops");
  if (!clock_) clock_ = std::make_shared<SystemClock>();
}

core::CollectedSummaries RpcCollector::collect(const std::vector<core::SummarySource>& sources,
                                               const core::CollectionContext& context) {
  {
    const MutexLock lock(mutex_);
    stats_ = RpcStats{};
  }
  core::CollectedSummaries collected;
  if (sources.empty()) return collected;

  // Serialize every source with the shared wire format: the payloads the
  // server answers with, and — concatenated in source order — exactly the
  // bytes DirectCollector would have accounted.
  std::vector<std::vector<std::uint8_t>> payloads(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    ByteWriter writer;
    cluster::write_clusters(writer, sources[i].clusters);
    payloads[i] = writer.bytes();
  }

  std::vector<FetchResult> results(sources.size());
  {
    const int request_timeout_ms = static_cast<int>(
        std::min<std::uint64_t>(config_.timeout_ms, std::numeric_limits<int>::max()));
    SummaryServer server(std::move(payloads), injector_, context.epoch_seed, *clock_,
                         request_timeout_ms);
    const std::uint16_t port = server.port();
    parallel_for(sources.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        results[i] = fetch_source(port, static_cast<std::uint32_t>(i), config_, *clock_);
      }
    });
    // Server (and every handler thread) joins here, before results are read.
  }

  // Accounting pass: every fetch thread has joined (the server's scope
  // ended), so the per-source slots are quiescent; the collector-lifetime
  // stats and stale-payload cache are updated under their mutex.
  const MutexLock lock(mutex_);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    FetchResult& result = results[i];
    stats_.requests_sent += result.requests_sent;
    stats_.faults_hit += result.faults_hit;
    stats_.retries += result.retries;
    stats_.backoff_ms_total += result.backoff_ms;
    if (result.ok) {
      ++stats_.responses_ok;
      collected.summary_bytes += result.payload.size();
      for (auto& micro : result.clusters) collected.summaries.push_back(std::move(micro));
      last_good_[sources[i].node] = std::move(result.payload);
      continue;
    }
    const auto cached = last_good_.find(sources[i].node);
    if (cached != last_good_.end()) {
      // Stale fallback: replay the replica's last good payload. It parsed
      // when it was cached, so this decode cannot fail. The bytes are not
      // added to summary_bytes — nothing crossed the wire this round.
      ByteReader reader(cached->second);
      for (auto& micro : cluster::MicroClusterSummarizer::deserialize_clusters(reader)) {
        collected.summaries.push_back(std::move(micro));
      }
      collected.stale_sources.push_back(sources[i].node);
      ++stats_.stale_fallbacks;
    } else {
      collected.lost_sources.push_back(sources[i].node);
      ++stats_.lost_sources;
    }
  }
  return collected;
}

}  // namespace geored::net
