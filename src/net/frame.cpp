#include "net/frame.h"

#include <cstring>
#include <string>

#include "common/ensure.h"

namespace geored::net {

namespace {

void put_u32(std::uint8_t* out, std::uint32_t value) { std::memcpy(out, &value, sizeof value); }

std::uint32_t get_u32(const std::uint8_t* in) {
  std::uint32_t value;
  std::memcpy(&value, in, sizeof value);
  return value;
}

constexpr std::size_t kHeaderBytes = 2 * sizeof(std::uint32_t);

void write_header(std::uint8_t* header, std::size_t payload_bytes) {
  GEORED_ENSURE(payload_bytes <= kMaxFramePayload, "frame payload exceeds the sanity cap");
  put_u32(header, kFrameMagic);
  put_u32(header + sizeof(std::uint32_t), static_cast<std::uint32_t>(payload_bytes));
}

}  // namespace

void write_frame(Socket& socket, std::span<const std::uint8_t> payload) {
  std::uint8_t header[kHeaderBytes];
  write_header(header, payload.size());
  socket.send_all(header, sizeof header);
  if (!payload.empty()) socket.send_all(payload.data(), payload.size());
}

void write_truncated_frame(Socket& socket, std::span<const std::uint8_t> payload,
                           std::size_t sent_bytes) {
  GEORED_ENSURE(sent_bytes < payload.size(),
                "a truncated frame must stop short of its declared length");
  std::uint8_t header[kHeaderBytes];
  write_header(header, payload.size());
  socket.send_all(header, sizeof header);
  if (sent_bytes > 0) socket.send_all(payload.data(), sent_bytes);
}

IoStatus read_frame(Socket& socket, std::vector<std::uint8_t>& payload, int timeout_ms) {
  std::uint8_t header[kHeaderBytes];
  const IoStatus header_status = socket.recv_exact(header, sizeof header, timeout_ms);
  if (header_status != IoStatus::kOk) return header_status;

  const std::uint32_t magic = get_u32(header);
  if (magic != kFrameMagic) {
    throw FrameError("frame header has wrong magic 0x" + std::to_string(magic) +
                     " (cross-protocol garbage or a corrupted stream)");
  }
  const std::uint32_t length = get_u32(header + sizeof(std::uint32_t));
  if (length > kMaxFramePayload) {
    throw FrameError("frame length " + std::to_string(length) +
                     " exceeds the sanity cap (corrupt length prefix)");
  }
  payload.assign(length, 0);
  if (length == 0) return IoStatus::kOk;
  switch (socket.recv_exact(payload.data(), payload.size(), timeout_ms)) {
    case IoStatus::kOk:
      return IoStatus::kOk;
    case IoStatus::kClosed:
      throw FrameError("stream closed mid-frame: " + std::to_string(length) +
                       "-byte payload truncated");
    case IoStatus::kTimeout:
      throw FrameError("stream stalled mid-frame: " + std::to_string(length) +
                       "-byte payload never completed");
  }
  return IoStatus::kOk;  // unreachable; keeps -Wreturn-type quiet
}

}  // namespace geored::net
