// The transport's injected clock.
//
// Everything under src/net/ that needs to know or spend time — retry
// backoff, injected delay faults — goes through this interface instead of
// touching std::chrono directly, so tests can substitute a VirtualClock and
// run the whole retry/backoff state machine instantaneously and
// deterministically. SystemClock (implemented in clock.cpp, the one net/
// translation unit allowed to call the real clock — enforced by
// tools/lint_conventions.py) is what production transports run on.
#pragma once

#include <atomic>
#include <cstdint>

namespace geored::net {

/// Monotonic millisecond clock plus the ability to spend time on it.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Milliseconds since an arbitrary fixed origin; never decreases.
  virtual std::uint64_t now_ms() = 0;

  /// Blocks the calling thread for `ms` milliseconds of this clock's time.
  virtual void sleep_ms(std::uint64_t ms) = 0;
};

/// The real monotonic clock (std::chrono::steady_clock under the hood).
class SystemClock final : public Clock {
 public:
  std::uint64_t now_ms() override;
  void sleep_ms(std::uint64_t ms) override;
};

/// A manual clock for tests: now_ms() starts at zero and only sleep_ms()
/// (or advance()) moves it, so backoff schedules are observable and free.
/// Thread-safe: concurrent sleepers each advance the clock atomically.
class VirtualClock final : public Clock {
 public:
  std::uint64_t now_ms() override { return now_ms_.load(); }
  void sleep_ms(std::uint64_t ms) override { now_ms_.fetch_add(ms); }

  /// Total virtual milliseconds slept/advanced so far.
  std::uint64_t elapsed_ms() const { return now_ms_.load(); }

 private:
  std::atomic<std::uint64_t> now_ms_{0};
};

}  // namespace geored::net
