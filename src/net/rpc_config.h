// Configuration and counters for the RPC-backed summary collector.
//
// This header is deliberately free of core/ includes: core/epoch_pipeline.h
// embeds RpcCollectorConfig inside CollectorConfig, and the dependency
// arrow must stay net -> (cluster, common) so geored_core can link
// geored_net without a cycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/fault_injector.h"

namespace geored::net {

/// Knobs for RpcCollector: the fault schedule, the per-attempt retry
/// budget, and the timeout/backoff shape of the client state machine.
struct RpcCollectorConfig {
  /// Injected failure schedule; all-zero probabilities means a clean wire.
  FaultConfig faults;

  /// Total tries per source per epoch (first attempt + retries); must be
  /// at least 1. A source still failing after the last attempt falls back
  /// to its cached last-epoch summary.
  std::size_t max_attempts = 4;

  /// Client-side bound on waiting for one response frame. Must exceed
  /// faults.delay_ms or injected delays become indistinguishable from
  /// drops. Tests shrink this so drop faults resolve quickly.
  std::uint64_t timeout_ms = 1000;

  /// Exponential backoff between attempts: backoff_initial_ms doubling per
  /// retry, capped at backoff_cap_ms. Spent on the injected Clock, so tests
  /// running on a VirtualClock pay nothing in wall time.
  std::uint64_t backoff_initial_ms = 1;
  std::uint64_t backoff_cap_ms = 8;
};

/// What one collection round cost and survived, in the spirit of
/// sim::TrafficStats: counters an experiment can print and a test can pin.
struct RpcStats {
  std::size_t requests_sent = 0;      ///< frames the client transmitted
  std::size_t responses_ok = 0;       ///< well-formed response frames accepted
  std::size_t faults_hit = 0;         ///< attempts that failed, any cause
  std::size_t retries = 0;            ///< attempts after the first, per source
  std::size_t stale_fallbacks = 0;    ///< sources served from the epoch cache
  std::size_t lost_sources = 0;       ///< sources with no response and no cache
  std::uint64_t backoff_ms_total = 0; ///< injected-clock time spent backing off

  /// One-line rendering for logs and the CLI experiment summary.
  std::string to_string() const;
};

}  // namespace geored::net
