// Hierarchical summary collection.
//
// Algorithm 1 ships every replica's micro-clusters straight to one central
// server. That is fine for one object with k = 3 replicas, but a store
// managing hundreds of object groups collects hundreds of summaries per
// epoch, and the paper itself notes that access information "needs to be
// processed efficiently even across data centers". This module builds a
// two-level aggregation tree: summary sources send to their nearest
// regional aggregator, each aggregator merges what it received into a
// *bounded* micro-cluster set (the same CluStream merge the summarizers
// use), and only the bounded merges travel to the root. Root inbound
// bandwidth becomes O(aggregators * m̂) instead of O(sources * m).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cluster/summarizer.h"
#include "placement/types.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace geored::core {

struct AggregationConfig {
  /// Aggregator count; 0 = ceil(sqrt(#sources)), the bandwidth-balancing
  /// choice for a two-level tree.
  std::size_t aggregator_count = 0;
  /// Micro-cluster budget of each aggregator's merged summary (m̂).
  std::size_t max_clusters_per_aggregator = 16;
};

/// Which data centers aggregate, and who reports to whom.
struct AggregationPlan {
  std::vector<topo::NodeId> aggregators;
  /// source node -> aggregator node (aggregators map to themselves).
  std::map<topo::NodeId, topo::NodeId> parent;
};

/// One summary source: a node holding micro-clusters to report.
struct SummarySource {
  topo::NodeId node = 0;
  std::vector<cluster::MicroCluster> clusters;
};

/// Chooses aggregators among the candidates (weighted k-means over the
/// sources' coordinates, exactly the machinery of Algorithm 1) and assigns
/// every source to its nearest aggregator. Deterministic in `seed`.
AggregationPlan plan_aggregation(const std::vector<place::CandidateInfo>& candidates,
                                 const std::vector<SummarySource>& sources,
                                 const AggregationConfig& config, std::uint64_t seed);

struct AggregationResult {
  /// The root's merged view of every source's population.
  std::vector<cluster::MicroCluster> merged;
  std::uint64_t bytes_into_root = 0;   ///< summary bytes the root received
  std::uint64_t bytes_total = 0;       ///< summary bytes on all links
  double completion_ms = 0.0;          ///< virtual time until the root had everything
};

/// Runs the collection over the simulated network: sources -> aggregators
/// -> root, with every message charged as summary traffic. The simulator is
/// run to completion.
AggregationResult run_aggregation(sim::Simulator& simulator, sim::Network& network,
                                  const AggregationPlan& plan,
                                  const std::vector<SummarySource>& sources,
                                  topo::NodeId root, const AggregationConfig& config);

/// Reference flat collection (every source straight to the root), for the
/// bandwidth comparison.
AggregationResult run_flat_collection(sim::Simulator& simulator, sim::Network& network,
                                      const std::vector<SummarySource>& sources,
                                      topo::NodeId root);

}  // namespace geored::core
