// FleetManager: many object groups, one replica budget.
//
// A production store does not place one object — it places thousands of
// object groups, each with its own access population (Section II-A treats a
// group as one virtual object). FleetManager owns one epoch pipeline per
// group, runs all group epochs in parallel over the deterministic global
// ThreadPool (one group per task, seeded per group, so results are
// bit-identical at any GEORED_THREADS), and — when a fleet-wide replica
// budget is configured — divides that budget across groups with
// allocate_replica_budget from each group's measured delay-by-degree curve:
// hot, spread-out groups earn more replicas, cold groups fall to the
// minimum.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/degree_allocator.h"
#include "core/replication_manager.h"
#include "placement/types.h"

namespace geored::core {

/// Fleet checkpoint wire format (FleetManager::save): an envelope of
/// per-group ReplicationManager checkpoints, so the fleet's whole budget
/// allocation — each group's granted degree and priority weight — survives
/// a coordinator failover in one blob.
inline constexpr std::uint32_t kFleetCheckpointMagic = 0x47524643;  // "GRFC"
inline constexpr std::uint32_t kFleetCheckpointVersion = 1;

struct FleetConfig {
  /// Number of object groups (each governed by its own manager/pipeline).
  std::size_t groups = 1;

  /// Per-group manager configuration. When a replica budget is set, the
  /// budget owns each group's degree: dynamic_degree is forced off and the
  /// manager degree bounds are aligned to min_degree/max_degree below.
  ManagerConfig manager;

  /// Total replicas the fleet may hold across all groups; 0 disables budget
  /// allocation (every group keeps its configured degree). Must cover
  /// groups * min_degree when set.
  std::size_t replica_budget = 0;
  std::size_t min_degree = 1;
  std::size_t max_degree = 7;

  /// Optional per-group stage composition: when set, group g's manager runs
  /// on pipeline_factory(manager_config, g) instead of standard_pipeline —
  /// how the scenario engine swaps in e.g. the RPC-backed collector without
  /// the caller constructing managers itself. The factory must return a
  /// fully-populated pipeline; it is invoked once per group at
  /// construction.
  std::function<EpochPipeline(const ManagerConfig&, std::size_t)> pipeline_factory;
};

/// One fleet-wide epoch round: every group's report, plus the budget
/// allocation chosen for the *next* round (when budgeting is enabled).
struct FleetEpochReport {
  std::vector<EpochReport> group_reports;  ///< indexed by group
  std::optional<Allocation> allocation;
  std::uint64_t total_accesses = 0;
  std::size_t groups_migrated = 0;
};

class FleetManager {
 public:
  /// Every group sees the same candidate data centers; group g's manager is
  /// seeded with seed ^ (0x9e3779b97f4a7c15 * (g + 1)), the store layer's
  /// historical per-group stream split, so single-group fleets reproduce a
  /// bare ReplicationManager exactly.
  FleetManager(std::vector<place::CandidateInfo> candidates, FleetConfig config,
               std::uint64_t seed);

  std::size_t group_count() const { return groups_.size(); }

  /// The group an object id hashes to (splitmix64, stable across runs).
  std::size_t group_of(std::uint64_t object_id) const;

  ReplicationManager& group(std::size_t index);
  const ReplicationManager& group(std::size_t index) const;

  /// Routes one access for `object_id` to its group's nearest replica.
  topo::NodeId serve(std::uint64_t object_id, const Point& client_coords,
                     double data_weight = 1.0);

  /// Runs one placement epoch for every group, parallelized over the global
  /// ThreadPool (one group per task; nested data-parallel calls inside a
  /// group run inline, so the result is bit-identical at any thread count).
  /// With a replica budget configured, afterwards measures each group's
  /// delay-by-degree curve and re-divides the budget; the new degrees take
  /// effect at the next epoch.
  ///
  /// FleetManager <-> ThreadPool invariants: run_epoch is an exclusive-access
  /// entry point on each manager (see ReplicationManager's concurrency
  /// contract), and the chunked fan-out touches each group from exactly one
  /// chunk, so the exclusivity each group requires is met structurally —
  /// no group-level lock exists or is needed. The pool chunks never call
  /// run_chunks themselves (run_epoch's inner parallelism goes through
  /// parallel_for, which runs inline inside a chunk), upholding the pool's
  /// no-reentrancy rule. record paths (serve) are concurrent-safe per group
  /// but must not overlap run_epochs: an epoch swaps the summarizers the
  /// record paths feed.
  FleetEpochReport run_epochs(const std::set<topo::NodeId>& excluded = {});

  /// Sets group `index`'s allocation-priority weight: the group's demand
  /// curve is multiplied by it before the replica budget is divided, so an
  /// external controller (scenario engine, operator policy) can bias the
  /// allocation ahead of the traffic actually shifting. Neutral weight is
  /// 1; takes effect at the next run_epochs.
  void set_group_weight(std::size_t index, double weight);
  double group_weight(std::size_t index) const;

  /// Serializes every group's checkpoint behind a fleet envelope
  /// (kFleetCheckpointMagic / kFleetCheckpointVersion + group count), so
  /// one blob captures the fleet's full state including the budget
  /// allocation in force.
  void save(ByteWriter& writer) const;

  /// Restores a blob written by save(). The fleet must have been built with
  /// the same candidates and configuration (the group count is validated);
  /// bad magic, unknown versions, and mismatched group counts throw before
  /// any group is touched.
  void restore(ByteReader& reader);

 private:
  FleetConfig config_;
  std::vector<std::unique_ptr<ReplicationManager>> groups_;
};

}  // namespace geored::core
