// Replica-budget allocation across object groups.
//
// The paper varies one object's degree of replication with its demand
// (§III-C). A real deployment manages many object groups under a global
// resource budget: given B total replicas to spend across G groups, choose
// each group's degree k_g. This module implements that allocation as a
// marginal-gain greedy: starting from the minimum degree everywhere,
// repeatedly give the next replica to the group whose estimated total delay
// drops the most — optimal for the independent, diminishing-returns
// objective this is (each group's delay curve in k is convex in practice).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace geored::core {

struct GroupDemand {
  /// Estimated total delay (ms-weighted accesses) of this group when it
  /// runs with degree k = index + min_degree. Must be non-increasing.
  std::vector<double> delay_by_degree;
};

struct AllocatorConfig {
  std::size_t min_degree = 1;   ///< every group gets at least this many
  std::size_t max_degree = 7;   ///< no group exceeds this
  std::size_t budget = 0;       ///< total replicas to distribute (>= G * min)
};

struct Allocation {
  std::vector<std::size_t> degree_per_group;
  double estimated_total_delay = 0.0;
  std::size_t replicas_used = 0;
};

/// Allocates the budget. `demands[g].delay_by_degree[i]` is group g's
/// estimated delay at degree min_degree + i; each vector must cover degrees
/// up to max_degree (size == max_degree - min_degree + 1).
Allocation allocate_replica_budget(const std::vector<GroupDemand>& demands,
                                   const AllocatorConfig& config);

/// Uniform baseline: every group gets floor(budget / G) capped to
/// [min_degree, max_degree]; the remainder is dropped (not redistributed).
Allocation allocate_uniform(const std::vector<GroupDemand>& demands,
                            const AllocatorConfig& config);

}  // namespace geored::core
