#include "core/migration.h"

#include <sstream>

#include "common/ensure.h"

namespace geored::core {

MigrationDecision decide_migration(const MigrationPolicy& policy, double old_delay_ms,
                                   double new_delay_ms, std::size_t replicas_moved) {
  GEORED_ENSURE(old_delay_ms >= 0.0 && new_delay_ms >= 0.0, "delays must be non-negative");
  MigrationDecision decision;
  decision.gain_ms = old_delay_ms - new_delay_ms;
  decision.relative_gain = old_delay_ms > 0.0 ? decision.gain_ms / old_delay_ms : 0.0;
  decision.cost_usd =
      static_cast<double>(replicas_moved) * policy.object_size_gb * policy.cost_per_gb_usd;

  std::ostringstream reason;
  if (replicas_moved == 0) {
    decision.migrate = false;
    reason << "proposal equals current placement";
  } else if (decision.gain_ms < policy.min_absolute_gain_ms) {
    decision.migrate = false;
    reason << "gain " << decision.gain_ms << " ms below absolute floor "
           << policy.min_absolute_gain_ms << " ms";
  } else if (decision.relative_gain < policy.min_relative_gain) {
    decision.migrate = false;
    reason << "relative gain " << decision.relative_gain << " below threshold "
           << policy.min_relative_gain;
  } else if (policy.max_usd_per_ms_gain > 0.0 &&
             decision.cost_usd > policy.max_usd_per_ms_gain * decision.gain_ms) {
    decision.migrate = false;
    reason << "cost $" << decision.cost_usd << " exceeds $" << policy.max_usd_per_ms_gain
           << " per ms of gain";
  } else {
    decision.migrate = true;
    reason << "gain " << decision.gain_ms << " ms (" << decision.relative_gain * 100.0
           << "%) for $" << decision.cost_usd;
  }
  decision.reason = reason.str();
  return decision;
}

}  // namespace geored::core
