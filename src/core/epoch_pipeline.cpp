#include "core/epoch_pipeline.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/arena.h"
#include "common/ensure.h"
#include "common/point_set.h"
#include "common/serialize.h"
#include "common/thread_pool.h"
#include "core/decentralized.h"
#include "net/rpc_collector.h"

namespace geored::core {

namespace {

const place::CandidateInfo& find_candidate(const std::vector<place::CandidateInfo>& candidates,
                                           topo::NodeId node) {
  const auto it = std::find_if(candidates.begin(), candidates.end(),
                               [node](const place::CandidateInfo& c) { return c.node == node; });
  GEORED_ENSURE(it != candidates.end(), "node is not a candidate data center");
  return *it;
}

}  // namespace

CollectedSummaries DirectCollector::collect(const std::vector<SummarySource>& sources,
                                            const CollectionContext& context) {
  (void)context;
  CollectedSummaries collected;
  ByteWriter writer;
  for (const auto& source : sources) {
    cluster::write_clusters(writer, source.clusters);
    for (const auto& micro : source.clusters) collected.summaries.push_back(micro);
  }
  collected.summary_bytes = writer.size();
  return collected;
}

HierarchicalCollector::HierarchicalCollector(sim::Simulator& simulator, sim::Network& network,
                                             topo::NodeId root, AggregationConfig config)
    : simulator_(simulator), network_(network), root_(root), config_(config) {
  GEORED_ENSURE(config_.max_clusters_per_aggregator >= 1,
                "aggregators need at least one micro-cluster of budget");
}

CollectedSummaries HierarchicalCollector::collect(const std::vector<SummarySource>& sources,
                                                  const CollectionContext& context) {
  GEORED_ENSURE(!sources.empty(), "hierarchical collection needs at least one source");
  // A fresh tree per epoch: sources move with the placement, so yesterday's
  // aggregator assignment may be arbitrarily bad today.
  const AggregationPlan plan =
      plan_aggregation(context.candidates, sources, config_, context.epoch_seed);
  AggregationResult result = run_aggregation(simulator_, network_, plan, sources, root_, config_);
  CollectedSummaries collected;
  collected.summaries = std::move(result.merged);
  collected.summary_bytes = static_cast<std::size_t>(result.bytes_into_root);
  return collected;
}

DecentralizedCollector::DecentralizedCollector(
    sim::Simulator& simulator, sim::Network& network,
    std::shared_ptr<const place::PlacementStrategy> strategy)
    : simulator_(simulator), network_(network), strategy_(std::move(strategy)) {
  if (!strategy_) strategy_ = std::make_shared<place::OnlineClusteringPlacement>();
}

CollectedSummaries DecentralizedCollector::collect(const std::vector<SummarySource>& sources,
                                                   const CollectionContext& context) {
  GEORED_ENSURE(!sources.empty(), "decentralized collection needs at least one source");
  // Once-per-epoch summary regrouping (~max_clusters x replicas entries),
  // not a per-access path.
  std::map<topo::NodeId, std::vector<cluster::MicroCluster>>  // lint: alloc-ok
      replica_summaries;
  for (const auto& source : sources) {
    auto& clusters = replica_summaries[source.node];
    clusters.insert(clusters.end(), source.clusters.begin(), source.clusters.end());
  }
  const DecentralizedEpochResult result =
      run_decentralized_epoch(simulator_, network_, context.candidates, replica_summaries,
                              context.k, context.epoch_seed, *strategy_);
  GEORED_CHECK(result.agreement,
               "deterministic replicas diverged on identical summaries and seed");
  CollectedSummaries collected;
  // Flatten in source-id order — the exact input every replica decided on.
  for (const auto& [source, clusters] : replica_summaries) {
    for (const auto& micro : clusters) collected.summaries.push_back(micro);
  }
  collected.summary_bytes = static_cast<std::size_t>(result.summary_bytes);
  collected.agreed_proposal = result.proposal;
  return collected;
}

ClusteringProposer::ClusteringProposer(place::OnlineClusteringConfig config, bool warm_start)
    : config_(std::move(config)), warm_start_(warm_start) {}

place::Placement ClusteringProposer::propose(const place::PlacementInput& input) {
  place::OnlineClusteringConfig config = config_;
  if (warm_start_) config.warm_start_centroids = last_macro_centroids_;
  const place::OnlineClusteringPlacement strategy(config);
  place::OnlineClusteringDetails details = strategy.place_detailed(input);
  // The cache always tracks the latest macro-clustering, even when warm
  // starts are disabled — checkpoints then capture it either way.
  last_macro_centroids_ = std::move(details.macro_centroids);
  return std::move(details.placement);
}

StrategyProposer::StrategyProposer(std::unique_ptr<place::PlacementStrategy> strategy)
    : strategy_(std::move(strategy)) {
  GEORED_ENSURE(strategy_ != nullptr, "StrategyProposer needs a strategy");
}

place::Placement StrategyProposer::propose(const place::PlacementInput& input) {
  return strategy_->place(input);
}

MigrationDecision PolicyGate::evaluate(double old_delay_ms, double new_delay_ms,
                                       std::size_t replicas_moved) const {
  return decide_migration(policy_, old_delay_ms, new_delay_ms, replicas_moved);
}

namespace {

/// Below this many summaries the nearest-placement resolution stays
/// sequential (pool dispatch would dominate; the direct-collection case is
/// k*m summaries, far under this). Per-summary results are written
/// independently, so the parallel pass is bitwise identical to the
/// sequential one at any thread count.
constexpr std::size_t kMinParallelSummaries = 2048;

}  // namespace

void NearestRedistributionAdopter::adopt(
    const place::Placement& next, const std::vector<cluster::MicroCluster>& summaries,
    const std::vector<place::CandidateInfo>& candidates,
    const cluster::SummarizerConfig& summarizer_config,
    std::map<topo::NodeId, cluster::MicroClusterSummarizer>& summarizers) {
  GEORED_ENSURE(!next.empty(), "cannot adopt an empty placement");
  // Rebuild the per-replica summarizers, handing each existing micro-cluster
  // to the new replica closest to its centroid so usage knowledge survives
  // the move.
  std::map<topo::NodeId, cluster::MicroClusterSummarizer> fresh;
  for (const auto node : next) {
    fresh.emplace(node, cluster::MicroClusterSummarizer(summarizer_config));
  }
  summarizers = std::move(fresh);
  const std::size_t n = summaries.size();
  if (n == 0) return;
  // Resolve each placement node's coordinates once — the historical loop
  // re-ran a linear candidate scan per (summary x node) pair — and stage
  // them as a PointSet so each centroid resolves via one nearest_of scan
  // (SIMD-backed above kMinSimdRows). nearest_of walks the rows in `next`
  // order with the same strict-`<` first-winner compare and the same
  // per-dimension subtract/square sequence as the historical scan (the
  // operands are swapped, but an IEEE negation squares to the same bits),
  // so the chosen replica is identical.
  PointSet placement_coords(find_candidate(candidates, next.front()).coords.dim());
  placement_coords.reserve(next.size());
  for (const auto node : next) {
    placement_coords.push_back(find_candidate(candidates, node).coords);
  }
  ArenaScope scope;
  std::size_t* nearest = scope.span<std::size_t>(n);
  parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          if (summaries[i].count() == 0) continue;
          const Point centroid = summaries[i].centroid();
          nearest[i] = placement_coords.nearest_of(centroid);
        }
      },
      kMinParallelSummaries);
  // Merges stay sequential in summary order: each summarizer's absorb/merge
  // history is order-sensitive, and this is the exact order the historical
  // loop produced.
  for (std::size_t i = 0; i < n; ++i) {
    if (summaries[i].count() == 0) continue;
    summarizers.at(next[nearest[i]]).merge_cluster(summaries[i]);
  }
}

void NearestRedistributionAdopter::retain(
    std::map<topo::NodeId, cluster::MicroClusterSummarizer>& summarizers) {
  // Age the retained summaries so stale populations fade (recency).
  for (auto& [node, summarizer] : summarizers) summarizer.decay();
}

void ScalarNearestRedistributionAdopter::adopt(
    const place::Placement& next, const std::vector<cluster::MicroCluster>& summaries,
    const std::vector<place::CandidateInfo>& candidates,
    const cluster::SummarizerConfig& summarizer_config,
    std::map<topo::NodeId, cluster::MicroClusterSummarizer>& summarizers) {
  GEORED_ENSURE(!next.empty(), "cannot adopt an empty placement");
  std::map<topo::NodeId, cluster::MicroClusterSummarizer> fresh;
  for (const auto node : next) {
    fresh.emplace(node, cluster::MicroClusterSummarizer(summarizer_config));
  }
  summarizers = std::move(fresh);
  for (const auto& micro : summaries) {
    if (micro.count() == 0) continue;
    const Point centroid = micro.centroid();
    topo::NodeId best = next.front();
    double best_dist = std::numeric_limits<double>::infinity();
    for (const auto node : next) {
      const double dist = centroid.distance_squared_to(find_candidate(candidates, node).coords);
      if (dist < best_dist) {
        best_dist = dist;
        best = node;
      }
    }
    summarizers.at(best).merge_cluster(micro);
  }
}

void ScalarNearestRedistributionAdopter::retain(
    std::map<topo::NodeId, cluster::MicroClusterSummarizer>& summarizers) {
  for (auto& [node, summarizer] : summarizers) summarizer.decay();
}

std::unique_ptr<SummaryCollector> make_collector(const std::string& name,
                                                 const CollectorConfig& config) {
  const std::vector<std::string> names = collector_names();  // lint: alloc-ok (registry)
  GEORED_ENSURE(std::find(names.begin(), names.end(), name) != names.end(),
                "unknown collector '" + name +
                    "'; known: direct, hierarchical, decentralized, rpc");
  if (name == "direct") return std::make_unique<DirectCollector>();
  if (name == "rpc") return std::make_unique<net::RpcCollector>(config.rpc, config.rpc_clock);
  GEORED_ENSURE(config.simulator != nullptr && config.network != nullptr,
                "the '" + name +
                    "' collector runs over a simulated network; CollectorConfig "
                    "must provide simulator and network");
  if (name == "hierarchical") {
    return std::make_unique<HierarchicalCollector>(*config.simulator, *config.network,
                                                   config.aggregation_root, config.aggregation);
  }
  return std::make_unique<DecentralizedCollector>(*config.simulator, *config.network,
                                                  config.decision_strategy);
}

std::vector<std::string> collector_names() {  // lint: alloc-ok (registry)
  return {"direct", "hierarchical", "decentralized", "rpc"};
}

}  // namespace geored::core
