#include "core/system.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/ensure.h"
#include "common/serialize.h"

namespace geored::core {

namespace {

/// The system's stage composition: the canonical pipeline with the
/// collection stage swapped per SystemConfig::collector. The protocol
/// collectors run over this system's simulator with the coordinator as the
/// aggregation root; "rpc" needs neither.
EpochPipeline system_pipeline(sim::Simulator& simulator, sim::Network& network,
                              topo::NodeId coordinator, const SystemConfig& config) {
  EpochPipeline pipeline = standard_pipeline(config.manager);
  if (config.collector != "direct") {
    CollectorConfig collector_config;
    collector_config.simulator = &simulator;
    collector_config.network = &network;
    collector_config.aggregation_root = coordinator;
    collector_config.rpc = config.rpc;
    collector_config.rpc_clock = config.rpc_clock;
    pipeline.collector = make_collector(config.collector, collector_config);
  }
  return pipeline;
}

}  // namespace

ReplicationSystem::ReplicationSystem(sim::Simulator& simulator, sim::Network& network,
                                     std::vector<place::CandidateInfo> candidates,
                                     std::vector<topo::NodeId> clients,
                                     std::vector<Point> client_coords,
                                     const wl::Workload& workload, topo::NodeId coordinator,
                                     SystemConfig config, std::uint64_t seed)
    : simulator_(simulator),
      network_(network),
      candidates_(std::move(candidates)),
      clients_(std::move(clients)),
      client_coords_(std::move(client_coords)),
      workload_(workload),
      coordinator_(coordinator),
      config_(config),
      rng_(seed),
      manager_(candidates_, config.manager, seed,
               system_pipeline(simulator, network, coordinator, config)) {
  GEORED_ENSURE(clients_.size() == client_coords_.size(),
                "one coordinate per client required");
  GEORED_ENSURE(clients_.size() == workload_.client_count(),
                "workload must cover exactly the client population");
  GEORED_ENSURE(config_.epoch_ms > 0.0, "epoch period must be positive");
  active_placement_ = manager_.placement();
}

void ReplicationSystem::schedule_failure(topo::NodeId node, double start_ms, double end_ms) {
  GEORED_ENSURE(!started_, "failures must be scheduled before run()");
  GEORED_ENSURE(end_ms >= start_ms, "failure interval must be ordered");
  simulator_.schedule_at(start_ms, [this, node] {
    failed_.insert(node);
    routing_dirty_ = true;
  });
  simulator_.schedule_at(end_ms, [this, node] {
    failed_.erase(node);
    routing_dirty_ = true;
  });
}

void ReplicationSystem::run(double duration_ms) {
  GEORED_ENSURE(!started_, "run() may be called once");
  started_ = true;
  for (std::size_t i = 0; i < clients_.size(); ++i) schedule_client(i, duration_ms);
  for (double t = config_.epoch_ms; t <= duration_ms; t += config_.epoch_ms) {
    simulator_.schedule_at(t, [this] { run_epoch_at_coordinator(); });
  }
  simulator_.run_until(duration_ms);
}

void ReplicationSystem::schedule_client(std::size_t client_index, double duration_ms) {
  Rng client_rng = rng_.fork(client_index);
  const auto arrivals =
      workload_.sample_arrival_times(client_index, 0.0, duration_ms, client_rng);
  for (const double t : arrivals) {
    simulator_.schedule_at(t, [this, client_index, t] { on_access(client_index, t); });
  }
}

void ReplicationSystem::refresh_routing_cache() {
  live_nodes_.clear();
  live_coords_ = PointSet();
  for (const auto node : active_placement_) {
    if (!is_up(node)) continue;
    const auto it =
        std::find_if(candidates_.begin(), candidates_.end(),
                     [node](const place::CandidateInfo& c) { return c.node == node; });
    GEORED_CHECK(it != candidates_.end(), "placement node missing from candidates");
    live_nodes_.push_back(node);
    live_coords_.push_back(it->coords);
  }
  routing_dirty_ = false;
}

void ReplicationSystem::on_access(std::size_t client_index, double started_at) {
  const topo::NodeId client = clients_[client_index];
  const Point& coords = client_coords_[client_index];

  // Pick the replica: lowest true RTT (oracle) or lowest predicted RTT.
  // Routing runs on the cached live-replica rows; the strict-< first-winner
  // choice over squared coordinate distances equals the historical choice
  // over sqrt distances (sqrt is strictly increasing), so the cache only
  // moves the candidate lookup off the per-access path.
  if (routing_dirty_) refresh_routing_cache();
  if (live_nodes_.empty()) {
    ++failed_accesses_;
    return;
  }
  topo::NodeId replica = 0;
  if (config_.selection == ReplicaSelection::kTrueClosest) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_index = 0;
    for (std::size_t i = 0; i < live_nodes_.size(); ++i) {
      const double metric = network_.rtt_ms(client, live_nodes_[i]);
      if (metric < best) {
        best = metric;
        best_index = i;
      }
    }
    replica = live_nodes_[best_index];
  } else {
    replica = live_nodes_[live_coords_.nearest_of(coords)];
  }

  const double data_weight = workload_.data_per_access(client_index);
  network_.send(client, replica, config_.request_bytes, sim::TrafficClass::kAccess,
                [this, client, replica, coords, data_weight, started_at] {
                  // The replica summarizes the access if it still holds the
                  // object (a migration may have raced the request).
                  const auto& placement = manager_.placement();
                  if (std::find(placement.begin(), placement.end(), replica) !=
                      placement.end()) {
                    manager_.record_access(replica, coords, data_weight);
                  }
                  network_.send(replica, client, config_.response_bytes,
                                sim::TrafficClass::kAccess, [this, started_at] {
                                  const double delay = simulator_.now() - started_at;
                                  overall_delay_.add(delay);
                                  epoch_delay_.add(delay);
                                  ++epoch_accesses_;
                                });
                }

  );
}

void ReplicationSystem::run_epoch_at_coordinator() {
  // Collect summaries: one control request and one summary response per live
  // replica, charged to the network. The placement computation itself runs
  // when the last summary arrives.
  std::vector<topo::NodeId> live;
  for (const auto node : manager_.placement()) {
    if (is_up(node)) live.push_back(node);
  }
  auto pending = std::make_shared<std::size_t>(live.size());

  auto finalize = [this] {
    // Failed data centers cannot host replicas this epoch; if a current
    // replica is down, the manager re-places unconditionally.
    const EpochReport report = manager_.run_epoch(failed_);
    reports_.push_back(report);

    EpochMetrics metrics;
    metrics.epoch = epoch_counter_++;
    metrics.mean_delay_ms = epoch_delay_.mean();
    metrics.accesses = epoch_accesses_;
    metrics.migrated = report.decision.migrate;
    metrics.placement = report.adopted_placement;
    epochs_.push_back(std::move(metrics));
    epoch_delay_ = OnlineStats();
    epoch_accesses_ = 0;

    if (report.adopted_placement == active_placement_) return;

    // Migrate: stream the object from the nearest old replica to each new
    // site, switch client routing when the slowest transfer lands.
    auto transfers = std::make_shared<std::size_t>(0);
    const place::Placement next = report.adopted_placement;
    for (const auto node : next) {
      if (std::find(active_placement_.begin(), active_placement_.end(), node) !=
          active_placement_.end()) {
        continue;
      }
      // Stream from the nearest old replica, preferring live sources.
      topo::NodeId source = active_placement_.front();
      double source_rtt = std::numeric_limits<double>::infinity();
      bool source_live = false;
      for (const auto old_node : active_placement_) {
        const bool old_live = is_up(old_node);
        const double rtt = network_.rtt_ms(old_node, node);
        if ((old_live && !source_live) ||
            (old_live == source_live && rtt < source_rtt)) {
          source = old_node;
          source_rtt = rtt;
          source_live = old_live;
        }
      }
      ++*transfers;
      network_.send(source, node, config_.object_bytes, sim::TrafficClass::kMigration,
                    [this, transfers, next] {
                      if (--*transfers == 0) {
                        active_placement_ = next;
                        routing_dirty_ = true;
                      }
                    });
    }
    if (*transfers == 0) {  // pure shrink, no copies
      active_placement_ = next;
      routing_dirty_ = true;
    }
  };

  if (live.empty()) {
    finalize();
    return;
  }
  for (const auto node : live) {
    network_.send(coordinator_, node, config_.control_bytes, sim::TrafficClass::kControl,
                  [this, node, pending, finalize] {
                    // Reply with the serialized summary.
                    ByteWriter writer;
                    writer.write_u32(0);  // header
                    for (const auto& micro : manager_.summary_of(node)) {
                      micro.serialize(writer);
                    }
                    network_.send(node, coordinator_, writer.size(),
                                  sim::TrafficClass::kSummary, [pending, finalize] {
                                    if (--*pending == 0) finalize();
                                  });
                  });
  }
}

}  // namespace geored::core
