// The placement epoch as a pipeline of replaceable stages.
//
// Algorithm 1 is one fixed loop — collect summaries, macro-cluster them,
// map centroids to data centers, gate the migration — and the library used
// to reproduce it three separate times (ReplicationManager::run_epoch, the
// decentralized all-to-all variant, and the hierarchical aggregation tree).
// This header factors the loop into four stage interfaces so the variants
// become plugins behind one canonical composition:
//
//   SummaryCollector   how micro-cluster summaries reach the decision point
//                      (direct in-process, two-level aggregation tree, or
//                      all-to-all decentralized agreement)
//   PlacementProposer  how the collected summaries become a proposed
//                      placement (any place::PlacementStrategy, plus the
//                      warm-start centroid cache for online clustering)
//   MigrationGate      whether the proposal is worth the move (§III-C)
//   Adopter            how replica state follows an adopted placement and
//                      how retained summaries age
//
// ReplicationManager::run_epoch composes the four stages; the default
// composition (standard_pipeline in replication_manager.h) is byte-identical
// to the historical hand-inlined loop.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/summarizer.h"
#include "core/aggregation.h"
#include "core/migration.h"
#include "net/clock.h"
#include "net/rpc_config.h"
#include "placement/online_clustering.h"
#include "placement/strategy.h"
#include "placement/types.h"

namespace geored::core {

/// Epoch-scoped facts every collector may need: which data centers are
/// usable this epoch, the degree in force, and the epoch's decision seed.
struct CollectionContext {
  const std::vector<place::CandidateInfo>& candidates;
  std::size_t k = 3;
  std::uint64_t epoch_seed = 0;
};

/// What a collection round produced.
struct CollectedSummaries {
  /// Every collected micro-cluster, flattened in source order.
  std::vector<cluster::MicroCluster> summaries;
  /// Wire bytes the decision point received (the O(km) cost of Table II).
  std::size_t summary_bytes = 0;
  /// Set when the collection protocol itself already agreed on a proposal
  /// (the decentralized collector); the pipeline then skips the proposer.
  std::optional<place::Placement> agreed_proposal;
  /// Sources whose summary could not be collected this round and was served
  /// from the collector's last-epoch cache instead ("rpc" degradation).
  std::vector<topo::NodeId> stale_sources;
  /// Sources that contributed nothing: collection failed and no cached
  /// summary existed. The epoch still completes on what did arrive.
  std::vector<topo::NodeId> lost_sources;
};

/// Stage 1: ships per-replica summaries to the placement decision point.
class SummaryCollector {
 public:
  virtual ~SummaryCollector() = default;

  /// Registry name of this collector ("direct", "hierarchical", ...).
  virtual std::string name() const = 0;

  /// Collects `sources` (one entry per reporting replica, in source order)
  /// into one flattened summary set. Must be deterministic in the sources
  /// and `context.epoch_seed`.
  virtual CollectedSummaries collect(const std::vector<SummarySource>& sources,
                                     const CollectionContext& context) = 0;
};

/// Today's in-process collection: summaries are concatenated locally and the
/// wire size accounted as if each source serialized straight to the
/// coordinator. Byte-identical to the historical run_epoch collection step.
class DirectCollector final : public SummaryCollector {
 public:
  std::string name() const override { return "direct"; }
  CollectedSummaries collect(const std::vector<SummarySource>& sources,
                             const CollectionContext& context) override;
};

/// Two-level aggregation tree over the simulated network (core/aggregation):
/// sources -> nearest regional aggregator -> root. The reported wire size is
/// the root's inbound bytes — the bandwidth the tree exists to bound.
class HierarchicalCollector final : public SummaryCollector {
 public:
  /// The collector plans a fresh tree per epoch (sources move) and runs it
  /// over `simulator`/`network`, with the root at `root`.
  HierarchicalCollector(sim::Simulator& simulator, sim::Network& network, topo::NodeId root,
                        AggregationConfig config = {});

  std::string name() const override { return "hierarchical"; }
  CollectedSummaries collect(const std::vector<SummarySource>& sources,
                             const CollectionContext& context) override;

 private:
  sim::Simulator& simulator_;
  sim::Network& network_;
  topo::NodeId root_;
  AggregationConfig config_;
};

/// All-to-all decentralized agreement (core/decentralized): every replica
/// receives every summary, computes the placement locally with the shared
/// epoch seed, and the agreed proposal is returned — the proposer stage is
/// skipped. `strategy` is the per-replica decision rule.
class DecentralizedCollector final : public SummaryCollector {
 public:
  DecentralizedCollector(sim::Simulator& simulator, sim::Network& network,
                         std::shared_ptr<const place::PlacementStrategy> strategy);

  std::string name() const override { return "decentralized"; }
  CollectedSummaries collect(const std::vector<SummarySource>& sources,
                             const CollectionContext& context) override;

 private:
  sim::Simulator& simulator_;
  sim::Network& network_;
  std::shared_ptr<const place::PlacementStrategy> strategy_;
};

/// Stage 2: turns collected summaries into a proposed placement.
class PlacementProposer {
 public:
  virtual ~PlacementProposer() = default;

  /// Human-readable name used in reports.
  virtual std::string name() const = 0;

  /// Proposes min(input.k, #candidates) distinct candidates. May update
  /// internal caches (e.g. warm-start centroids); deterministic in the
  /// input, input.seed, and prior propose() history.
  virtual place::Placement propose(const place::PlacementInput& input) = 0;

  /// Warm-start centroid cache, persisted by ReplicationManager::save so a
  /// restored stand-by proposes exactly what the failed coordinator would
  /// have. Proposers without a cache report empty and ignore restores.
  virtual std::vector<Point> warm_centroids() const { return {}; }
  virtual void set_warm_centroids(std::vector<Point> centroids) { (void)centroids; }
};

/// The paper's Algorithm 1 proposer: weighted k-means macro-clustering with
/// the warm-start centroid cache threaded between epochs.
class ClusteringProposer final : public PlacementProposer {
 public:
  explicit ClusteringProposer(place::OnlineClusteringConfig config = {}, bool warm_start = true);

  std::string name() const override { return "online clustering"; }
  place::Placement propose(const place::PlacementInput& input) override;
  std::vector<Point> warm_centroids() const override { return last_macro_centroids_; }
  void set_warm_centroids(std::vector<Point> centroids) override {
    last_macro_centroids_ = std::move(centroids);
  }

 private:
  place::OnlineClusteringConfig config_;
  bool warm_start_;
  std::vector<Point> last_macro_centroids_;
};

/// Adapts any registry strategy (random, offline k-means, greedy, ...) to
/// the proposer stage. No warm-start cache.
class StrategyProposer final : public PlacementProposer {
 public:
  explicit StrategyProposer(std::unique_ptr<place::PlacementStrategy> strategy);

  std::string name() const override { return strategy_->name(); }
  place::Placement propose(const place::PlacementInput& input) override;

 private:
  std::unique_ptr<place::PlacementStrategy> strategy_;
};

/// Stage 3: the migration cost/benefit gate.
class MigrationGate {
 public:
  virtual ~MigrationGate() = default;

  /// Decides whether moving `replicas_moved` replicas is worth the delay
  /// improvement. Must not mutate state (the gate may be consulted
  /// speculatively).
  virtual MigrationDecision evaluate(double old_delay_ms, double new_delay_ms,
                                     std::size_t replicas_moved) const = 0;
};

/// decide_migration over a fixed MigrationPolicy (§III-C).
class PolicyGate final : public MigrationGate {
 public:
  explicit PolicyGate(MigrationPolicy policy) : policy_(policy) {}

  MigrationDecision evaluate(double old_delay_ms, double new_delay_ms,
                             std::size_t replicas_moved) const override;

 private:
  MigrationPolicy policy_;
};

/// Stage 4: applies an adopted placement to the per-replica summarizers, or
/// ages them when the epoch keeps the old placement.
class Adopter {
 public:
  virtual ~Adopter() = default;

  /// Rebuilds `summarizers` for the replicas of `next`, redistributing the
  /// collected micro-clusters so usage knowledge survives the move.
  virtual void adopt(const place::Placement& next,
                     const std::vector<cluster::MicroCluster>& summaries,
                     const std::vector<place::CandidateInfo>& candidates,
                     const cluster::SummarizerConfig& summarizer_config,
                     std::map<topo::NodeId, cluster::MicroClusterSummarizer>& summarizers) = 0;

  /// Ages retained summaries so stale populations fade (recency).
  virtual void retain(
      std::map<topo::NodeId, cluster::MicroClusterSummarizer>& summarizers) = 0;
};

/// The historical behavior: each micro-cluster goes to the new replica
/// nearest its centroid; retained summaries decay exponentially. The
/// nearest-replica resolution is kernelized — placement coordinates staged
/// once as a PointSet, per-summary nearest_of scans parallelized over the
/// pool with arena scratch — and byte-identical to the frozen scalar
/// reference below (pinned by EpochPipelineTest.AdopterMatchesScalar).
class NearestRedistributionAdopter final : public Adopter {
 public:
  void adopt(const place::Placement& next, const std::vector<cluster::MicroCluster>& summaries,
             const std::vector<place::CandidateInfo>& candidates,
             const cluster::SummarizerConfig& summarizer_config,
             std::map<topo::NodeId, cluster::MicroClusterSummarizer>& summarizers) override;
  void retain(std::map<topo::NodeId, cluster::MicroClusterSummarizer>& summarizers) override;
};

/// Frozen scalar reference for NearestRedistributionAdopter: the historical
/// per-summary linear scans (O(summaries x k x candidates)), kept verbatim
/// as the equivalence baseline and the re-armed epoch_end_to_end bench arm.
/// Never optimize this class.
class ScalarNearestRedistributionAdopter final : public Adopter {
 public:
  void adopt(const place::Placement& next, const std::vector<cluster::MicroCluster>& summaries,
             const std::vector<place::CandidateInfo>& candidates,
             const cluster::SummarizerConfig& summarizer_config,
             std::map<topo::NodeId, cluster::MicroClusterSummarizer>& summarizers) override;
  void retain(std::map<topo::NodeId, cluster::MicroClusterSummarizer>& summarizers) override;
};

/// One epoch's worth of stages. ReplicationManager owns one pipeline and
/// composes the stages in run_epoch; every stage must be non-null.
struct EpochPipeline {
  std::unique_ptr<SummaryCollector> collector;
  std::unique_ptr<PlacementProposer> proposer;
  std::unique_ptr<MigrationGate> gate;
  std::unique_ptr<Adopter> adopter;
};

/// Dependencies a collector implementation may need. "direct" needs none;
/// the protocol collectors run over the simulated network.
struct CollectorConfig {
  sim::Simulator* simulator = nullptr;
  sim::Network* network = nullptr;
  /// Root of the two-level tree ("hierarchical").
  topo::NodeId aggregation_root = 0;
  AggregationConfig aggregation;
  /// Per-replica decision rule ("decentralized"); defaults to the paper's
  /// online clustering when null.
  std::shared_ptr<const place::PlacementStrategy> decision_strategy;
  /// Fault schedule and retry budget ("rpc"); the defaults give a clean
  /// wire, byte-identical to "direct".
  net::RpcCollectorConfig rpc;
  /// Transport clock ("rpc"); null means the real SystemClock. Tests inject
  /// a net::VirtualClock so retry backoff costs no wall time.
  std::shared_ptr<net::Clock> rpc_clock;
};

/// String-keyed collector registry: "direct", "hierarchical",
/// "decentralized", "rpc". Throws std::invalid_argument for unknown names
/// and when a protocol collector is requested without simulator/network
/// ("rpc" runs over real localhost sockets and needs neither).
std::unique_ptr<SummaryCollector> make_collector(const std::string& name,
                                                 const CollectorConfig& config = {});

/// Names make_collector accepts, in registry order.
std::vector<std::string> collector_names();

}  // namespace geored::core
