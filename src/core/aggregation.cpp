#include "core/aggregation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "cluster/kmeans.h"
#include "common/ensure.h"
#include "common/random.h"
#include "placement/assign.h"

namespace geored::core {

namespace {

const place::CandidateInfo& info_of(const std::vector<place::CandidateInfo>& candidates,
                                    topo::NodeId node) {
  const auto it = std::find_if(candidates.begin(), candidates.end(),
                               [node](const place::CandidateInfo& c) { return c.node == node; });
  GEORED_ENSURE(it != candidates.end(), "node is not a known data center");
  return *it;
}

}  // namespace

AggregationPlan plan_aggregation(const std::vector<place::CandidateInfo>& candidates,
                                 const std::vector<SummarySource>& sources,
                                 const AggregationConfig& config, std::uint64_t seed) {
  GEORED_ENSURE(!candidates.empty(), "aggregation needs candidate data centers");
  GEORED_ENSURE(!sources.empty(), "aggregation needs at least one source");

  std::size_t aggregator_count = config.aggregator_count;
  if (aggregator_count == 0) {
    aggregator_count = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(sources.size()))));
  }
  aggregator_count = std::min(aggregator_count, candidates.size());

  // Aggregators sit where the sources are: weighted k-means over source
  // coordinates (weight = cluster mass), mapped to distinct data centers.
  std::vector<cluster::WeightedPoint> points;
  for (const auto& source : sources) {
    double mass = 0.0;
    Point sum;
    for (const auto& micro : source.clusters) {
      if (micro.count() == 0) continue;
      if (sum.empty()) sum = Point(micro.centroid().dim());
      sum += micro.centroid() * static_cast<double>(micro.count());
      mass += static_cast<double>(micro.count());
    }
    if (mass > 0.0) {
      points.push_back({sum / mass, mass});
    } else {
      // A source with no usage still needs an aggregator; use its location.
      points.push_back({info_of(candidates, source.node).coords, 1.0});
    }
  }

  cluster::KMeansConfig kmeans_config;
  kmeans_config.k = aggregator_count;
  Rng rng(seed);
  const auto result = cluster::weighted_kmeans(points, kmeans_config, rng);
  std::vector<double> mass(result.centroids.size(), 0.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    mass[result.assignment[i]] += points[i].weight;
  }
  AggregationPlan plan;
  plan.aggregators = place::assign_centroids_to_candidates(
      result.centroids, mass, candidates, aggregator_count, seed);

  for (const auto& source : sources) {
    const Point& coords = info_of(candidates, source.node).coords;
    topo::NodeId best = plan.aggregators.front();
    double best_dist = std::numeric_limits<double>::infinity();
    for (const auto aggregator : plan.aggregators) {
      const double dist = coords.distance_squared_to(info_of(candidates, aggregator).coords);
      if (dist < best_dist) {
        best_dist = dist;
        best = aggregator;
      }
    }
    plan.parent[source.node] = best;
  }
  return plan;
}

AggregationResult run_aggregation(sim::Simulator& simulator, sim::Network& network,
                                  const AggregationPlan& plan,
                                  const std::vector<SummarySource>& sources,
                                  topo::NodeId root, const AggregationConfig& config) {
  GEORED_ENSURE(!sources.empty(), "aggregation needs at least one source");
  GEORED_ENSURE(config.max_clusters_per_aggregator >= 1,
                "aggregators need a positive cluster budget");

  AggregationResult result;
  const std::uint64_t base_summary_bytes =
      network.stats().bytes[static_cast<std::size_t>(sim::TrafficClass::kSummary)];

  // Per-aggregator state: a bounded merger plus the number of pending
  // source reports.
  struct AggregatorState {
    cluster::MicroClusterSummarizer merger;
    std::size_t pending = 0;
    AggregatorState(const cluster::SummarizerConfig& config)
        : merger(config) {}
  };
  cluster::SummarizerConfig merger_config;
  merger_config.max_clusters = config.max_clusters_per_aggregator;
  auto states = std::make_shared<std::map<topo::NodeId, AggregatorState>>();
  for (const auto aggregator : plan.aggregators) {
    states->emplace(aggregator, AggregatorState(merger_config));
  }
  for (const auto& source : sources) {
    const auto it = plan.parent.find(source.node);
    GEORED_ENSURE(it != plan.parent.end(), "source missing from the aggregation plan");
    ++states->at(it->second).pending;
  }

  auto pending_root = std::make_shared<std::size_t>(0);
  for (const auto& [aggregator, state] : *states) {
    if (state.pending > 0) ++*pending_root;
  }
  GEORED_CHECK(*pending_root > 0, "no aggregator has any source");

  auto merged = std::make_shared<std::vector<cluster::MicroCluster>>();
  auto root_bytes = std::make_shared<std::uint64_t>(0);
  auto completion = std::make_shared<double>(0.0);

  // Phase 2 sender: an aggregator finished -> forward its bounded merge.
  const auto forward_to_root = [&simulator, &network, states, pending_root, merged,
                                root_bytes, completion, root](topo::NodeId aggregator) {
    auto& state = states->at(aggregator);
    const auto clusters = state.merger.clusters();
    const std::size_t bytes = cluster::serialized_size(clusters);
    *root_bytes += bytes;
    network.send(aggregator, root, bytes, sim::TrafficClass::kSummary,
                 [states, pending_root, merged, completion, clusters, &simulator] {
                   for (const auto& micro : clusters) merged->push_back(micro);
                   if (--*pending_root == 0) *completion = simulator.now();
                 });
  };

  // Phase 1: every source ships its summary to its aggregator.
  for (const auto& source : sources) {
    const topo::NodeId aggregator = plan.parent.at(source.node);
    const std::size_t bytes = cluster::serialized_size(source.clusters);
    const auto clusters = source.clusters;
    network.send(source.node, aggregator, bytes, sim::TrafficClass::kSummary,
                 [states, aggregator, clusters, forward_to_root] {
                   auto& state = states->at(aggregator);
                   for (const auto& micro : clusters) state.merger.merge_cluster(micro);
                   if (--state.pending == 0) forward_to_root(aggregator);
                 });
  }

  simulator.run();
  result.merged = *merged;
  result.bytes_into_root = *root_bytes;
  result.bytes_total =
      network.stats().bytes[static_cast<std::size_t>(sim::TrafficClass::kSummary)] -
      base_summary_bytes;
  result.completion_ms = *completion;
  return result;
}

AggregationResult run_flat_collection(sim::Simulator& simulator, sim::Network& network,
                                      const std::vector<SummarySource>& sources,
                                      topo::NodeId root) {
  GEORED_ENSURE(!sources.empty(), "collection needs at least one source");
  AggregationResult result;
  const std::uint64_t base_summary_bytes =
      network.stats().bytes[static_cast<std::size_t>(sim::TrafficClass::kSummary)];
  auto merged = std::make_shared<std::vector<cluster::MicroCluster>>();
  auto pending = std::make_shared<std::size_t>(sources.size());
  auto completion = std::make_shared<double>(0.0);
  std::uint64_t root_bytes = 0;
  for (const auto& source : sources) {
    const std::size_t bytes = cluster::serialized_size(source.clusters);
    root_bytes += bytes;
    const auto clusters = source.clusters;
    network.send(source.node, root, bytes, sim::TrafficClass::kSummary,
                 [merged, pending, completion, clusters, &simulator] {
                   for (const auto& micro : clusters) merged->push_back(micro);
                   if (--*pending == 0) *completion = simulator.now();
                 });
  }
  simulator.run();
  result.merged = *merged;
  result.bytes_into_root = root_bytes;
  result.bytes_total =
      network.stats().bytes[static_cast<std::size_t>(sim::TrafficClass::kSummary)] -
      base_summary_bytes;
  result.completion_ms = *completion;
  return result;
}

}  // namespace geored::core
