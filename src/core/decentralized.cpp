#include "core/decentralized.h"

#include <memory>

#include "cluster/summarizer.h"
#include "common/ensure.h"

namespace geored::core {

DecentralizedEpochResult run_decentralized_epoch(
    sim::Simulator& simulator, sim::Network& network,
    const std::vector<place::CandidateInfo>& candidates,
    const std::map<topo::NodeId, std::vector<cluster::MicroCluster>>& replica_summaries,
    std::size_t k, std::uint64_t epoch_seed, const place::PlacementStrategy& strategy) {
  GEORED_ENSURE(!candidates.empty(), "decentralized epoch needs candidates");
  GEORED_ENSURE(!replica_summaries.empty(), "decentralized epoch needs replicas");

  const std::uint64_t base_summary_bytes =
      network.stats().bytes[static_cast<std::size_t>(sim::TrafficClass::kSummary)];

  // Per-replica inbox: source id -> clusters. Each replica starts with its
  // own summary and waits for the k-1 others.
  struct ReplicaState {
    std::map<topo::NodeId, std::vector<cluster::MicroCluster>> inbox;
    place::Placement decision;
    bool decided = false;
  };
  auto states = std::make_shared<std::map<topo::NodeId, ReplicaState>>();
  for (const auto& [node, clusters] : replica_summaries) {
    (*states)[node].inbox.emplace(node, clusters);
  }

  auto pending = std::make_shared<std::size_t>(replica_summaries.size());
  auto completion = std::make_shared<double>(0.0);
  const std::size_t expected = replica_summaries.size();

  const auto decide = [candidates, k, epoch_seed, &strategy, &simulator, pending,
                       completion](ReplicaState& state) {
    // Deterministic flatten: summaries in source-id order (std::map order).
    place::PlacementInput input;
    input.candidates = candidates;
    input.k = k;
    input.seed = epoch_seed;
    for (const auto& [source, clusters] : state.inbox) {
      for (const auto& micro : clusters) input.summaries.push_back(micro);
    }
    state.decision = strategy.place(input);
    state.decided = true;
    if (--*pending == 0) *completion = simulator.now();
  };

  // Broadcast every replica's summary to its peers.
  for (const auto& [from, clusters] : replica_summaries) {
    const std::size_t bytes = cluster::serialized_size(clusters);
    for (const auto& [to, unused] : replica_summaries) {
      if (to == from) continue;
      const auto payload = clusters;
      const topo::NodeId sender = from;
      network.send(sender, to, bytes, sim::TrafficClass::kSummary,
                   [states, to, sender, payload, expected, decide] {
                     auto& state = states->at(to);
                     state.inbox.emplace(sender, payload);
                     if (state.inbox.size() == expected && !state.decided) {
                       decide(state);
                     }
                   });
    }
  }
  // Single-replica degenerate case: it decides alone, immediately.
  if (expected == 1) {
    decide(states->begin()->second);
  }

  simulator.run();

  DecentralizedEpochResult result;
  result.summary_bytes =
      network.stats().bytes[static_cast<std::size_t>(sim::TrafficClass::kSummary)] -
      base_summary_bytes;
  result.completion_ms = *completion;
  result.agreement = true;
  for (const auto& [node, state] : *states) {
    GEORED_CHECK(state.decided, "a replica never received all summaries");
    result.per_replica.push_back(state.decision);
    if (state.decision != states->begin()->second.decision) result.agreement = false;
  }
  result.proposal = states->begin()->second.decision;
  return result;
}

}  // namespace geored::core
