// Migration cost/benefit policy (paper §III-C).
//
// "Since the cost of migrating data may not be ignored (e.g., $.1 per GB),
// our approach carries out data migration only when the gain in the quality
// of service compared to the migration cost is higher than a certain
// threshold." This module makes that rule concrete and testable.
#pragma once

#include <cstddef>
#include <string>

namespace geored::core {

struct MigrationPolicy {
  /// Size of the replicated object, GB (drives the dollar cost of a move).
  double object_size_gb = 1.0;
  /// Transfer price, USD per GB (the paper cites Amazon's 2011 $0.10/GB).
  double cost_per_gb_usd = 0.10;

  /// Relative per-access latency improvement required, e.g. 0.05 = 5%.
  double min_relative_gain = 0.05;
  /// Absolute per-access improvement floor, ms. Both gates must pass.
  double min_absolute_gain_ms = 1.0;

  /// Cost gate: maximum dollars per millisecond of per-access improvement;
  /// 0 disables the gate. With it enabled, moving many replicas for a small
  /// gain is rejected even if the relative gates pass.
  double max_usd_per_ms_gain = 0.0;
};

struct MigrationDecision {
  bool migrate = false;
  double gain_ms = 0.0;        ///< old minus new estimated per-access delay
  double relative_gain = 0.0;  ///< gain / old delay
  double cost_usd = 0.0;       ///< replicas_moved * size * price
  std::string reason;          ///< human-readable explanation
};

/// Decides whether replacing the current placement (estimated per-access
/// delay `old_delay_ms`) with a proposal (`new_delay_ms`) that requires
/// copying the object to `replicas_moved` new sites is worth it.
MigrationDecision decide_migration(const MigrationPolicy& policy, double old_delay_ms,
                                   double new_delay_ms, std::size_t replicas_moved);

}  // namespace geored::core
