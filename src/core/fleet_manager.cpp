#include "core/fleet_manager.h"

#include <algorithm>
#include <utility>

#include "common/ensure.h"
#include "common/random.h"
#include "common/thread_pool.h"

namespace geored::core {

FleetManager::FleetManager(std::vector<place::CandidateInfo> candidates, FleetConfig config,
                           std::uint64_t seed)
    : config_(std::move(config)) {
  GEORED_ENSURE(config_.groups >= 1, "fleet needs at least one group");
  GEORED_ENSURE(config_.min_degree >= 1 && config_.min_degree <= config_.max_degree,
                "degree bounds must satisfy 1 <= min <= max");
  if (config_.replica_budget > 0) {
    GEORED_ENSURE(config_.replica_budget >= config_.groups * config_.min_degree,
                  "replica budget cannot cover the minimum degree for every group");
    // The budget owns each group's degree from here on: per-group demand
    // adjustment would fight the allocator, and the managers must accept
    // any degree the allocator grants within the fleet bounds.
    config_.manager.dynamic_degree = false;
    config_.manager.min_degree = config_.min_degree;
    config_.manager.max_degree = config_.max_degree;
    config_.manager.replication_degree =
        std::clamp(config_.manager.replication_degree, config_.min_degree, config_.max_degree);
  }
  groups_.reserve(config_.groups);
  for (std::size_t g = 0; g < config_.groups; ++g) {
    const std::uint64_t group_seed = seed ^ (0x9e3779b97f4a7c15ULL * (g + 1));
    if (config_.pipeline_factory) {
      groups_.push_back(std::make_unique<ReplicationManager>(
          candidates, config_.manager, group_seed,
          config_.pipeline_factory(config_.manager, g)));
    } else {
      groups_.push_back(
          std::make_unique<ReplicationManager>(candidates, config_.manager, group_seed));
    }
  }
}

std::size_t FleetManager::group_of(std::uint64_t object_id) const {
  std::uint64_t state = object_id;
  return static_cast<std::size_t>(splitmix64(state) % groups_.size());
}

ReplicationManager& FleetManager::group(std::size_t index) {
  GEORED_ENSURE(index < groups_.size(), "group index out of range");
  return *groups_[index];
}

const ReplicationManager& FleetManager::group(std::size_t index) const {
  GEORED_ENSURE(index < groups_.size(), "group index out of range");
  return *groups_[index];
}

topo::NodeId FleetManager::serve(std::uint64_t object_id, const Point& client_coords,
                                 double data_weight) {
  GEORED_ENSURE(data_weight >= 0.0, "data weight must be non-negative");
  return groups_[group_of(object_id)]->serve(client_coords, data_weight);
}

FleetEpochReport FleetManager::run_epochs(const std::set<topo::NodeId>& excluded) {
  FleetEpochReport report;
  report.group_reports.resize(groups_.size());

  // One group per parallel task. Each group's epoch is a pure function of
  // that group's own state, and any data-parallel calls it makes run inline
  // within the task (ThreadPool nesting rule) — so the reports land in group
  // order regardless of scheduling and match the sequential execution bit
  // for bit.
  parallel_for(groups_.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t g = begin; g < end; ++g) {
      report.group_reports[g] = groups_[g]->run_epoch(excluded);
    }
  });

  for (const auto& group_report : report.group_reports) {
    report.total_accesses += group_report.epoch_accesses;
    if (group_report.adopted_placement != group_report.old_placement) ++report.groups_migrated;
  }

  // Between epochs: re-divide the replica budget from the groups' measured
  // demand curves. The curves read post-adoption summaries; the granted
  // degrees take effect at the next epoch via the degree-change rule.
  if (config_.replica_budget > 0) {
    std::vector<GroupDemand> demands(groups_.size());
    parallel_for(groups_.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t g = begin; g < end; ++g) {
        demands[g].delay_by_degree =
            groups_[g]->delay_by_degree_curve(config_.min_degree, config_.max_degree);
        // The group's priority weight scales its whole demand curve, so a
        // weight-2 group bids for marginal replicas as if twice as hot —
        // the scenario engine's lever for anticipated (not yet measured)
        // demand shifts. Neutral weight 1 leaves the curve untouched.
        const double weight = groups_[g]->budget_weight();
        if (weight != 1.0) {
          for (double& delay : demands[g].delay_by_degree) delay *= weight;
        }
      }
    });
    AllocatorConfig allocator;
    allocator.min_degree = config_.min_degree;
    allocator.max_degree = config_.max_degree;
    allocator.budget = config_.replica_budget;
    report.allocation = allocate_replica_budget(demands, allocator);
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      groups_[g]->set_degree(report.allocation->degree_per_group[g]);
    }
  }
  return report;
}

void FleetManager::set_group_weight(std::size_t index, double weight) {
  GEORED_ENSURE(index < groups_.size(), "group index out of range");
  groups_[index]->set_budget_weight(weight);
}

double FleetManager::group_weight(std::size_t index) const {
  GEORED_ENSURE(index < groups_.size(), "group index out of range");
  return groups_[index]->budget_weight();
}

void FleetManager::save(ByteWriter& writer) const {
  writer.write_u32(kFleetCheckpointMagic);
  writer.write_u32(kFleetCheckpointVersion);
  writer.write_u32(static_cast<std::uint32_t>(groups_.size()));
  for (const auto& group : groups_) group->save(writer);
}

void FleetManager::restore(ByteReader& reader) {
  const std::uint32_t magic = reader.read_u32();
  GEORED_ENSURE(magic == kFleetCheckpointMagic, "not a fleet checkpoint (bad magic)");
  const std::uint32_t version = reader.read_u32();
  GEORED_ENSURE(version == kFleetCheckpointVersion,
                "unsupported fleet checkpoint version " + std::to_string(version) +
                    " (this build reads version " +
                    std::to_string(kFleetCheckpointVersion) + ")");
  const std::uint32_t groups = reader.read_u32();
  GEORED_ENSURE(groups == groups_.size(),
                "fleet checkpoint holds " + std::to_string(groups) +
                    " groups but this fleet has " + std::to_string(groups_.size()));
  for (auto& group : groups_) group->restore(reader);
}

}  // namespace geored::core
