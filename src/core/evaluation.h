// The experiment harness of the paper's evaluation (Section IV).
//
// Protocol per run, mirroring §IV-A: from a 226-node topology, a seeded
// subset of nodes becomes the candidate data centers, the remainder become
// clients; clients access the object (closest replica first) during an
// observation phase that feeds the per-replica summarizers; every placement
// strategy then proposes replica locations from the information it is
// allowed to see; finally each proposal is scored by the ground-truth
// average access delay over the same client population. Results are
// averaged over `runs` independent runs (the paper uses 30).
//
// The topology and its coordinate embedding are computed once per
// Environment and shared across runs and parameter sweeps, exactly as the
// paper reuses its one PlanetLab matrix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/summarizer.h"
#include "common/stats.h"
#include "net/rpc_config.h"
#include "netcoord/embedding.h"
#include "placement/strategy.h"
#include "topology/planetlab_model.h"

namespace geored::core {

/// Which decentralized coordinate system assigns node coordinates.
enum class CoordSystem { kRnp, kVivaldi, kGnp };

std::string coord_system_name(CoordSystem system);

/// Shared, immutable per-experiment state: ground-truth topology plus the
/// coordinate embedding every node would carry in the running system.
class Environment {
 public:
  Environment(const topo::PlanetLabModelConfig& topology_config, std::uint64_t topology_seed,
              CoordSystem coord_system, const coord::GossipConfig& gossip,
              std::uint64_t embedding_seed = 7);

  const topo::Topology& topology() const { return topology_; }
  const std::vector<coord::NetworkCoordinate>& coordinates() const { return coords_; }
  CoordSystem coord_system() const { return coord_system_; }

  /// Prediction quality of the embedding (for reporting).
  coord::EmbeddingQuality embedding_quality() const;

 private:
  topo::Topology topology_;
  CoordSystem coord_system_;
  std::vector<coord::NetworkCoordinate> coords_;
};

struct ExperimentConfig {
  std::size_t num_datacenters = 20;  ///< candidate replica locations
  std::size_t k = 3;                 ///< target degree of replication
  std::size_t micro_clusters = 4;    ///< m, per replica
  std::size_t runs = 30;             ///< independent runs to average over
  std::uint64_t base_seed = 1000;    ///< run r uses base_seed + r

  /// Observation-phase workload: per-client access counts are Poisson with
  /// a lognormal-spread mean.
  double mean_accesses_per_client = 100.0;
  double access_spread_sigma = 0.5;

  /// Absorb-radius floor handed to the per-replica summarizers.
  double summarizer_min_radius_ms = 5.0;

  /// Number of replicas a client must reach (1 = the paper's model).
  std::size_t quorum = 1;

  /// How observation-phase summaries reach the placement decision point:
  /// "direct" (in-process concatenation, the paper's central server),
  /// "hierarchical" (two-level aggregation tree), "decentralized"
  /// (all-to-all agreement), or "rpc" (real localhost sockets). See
  /// core::collector_names(). The simulated-protocol collectors may merge
  /// summaries along the way, so the summary-driven strategies may differ —
  /// that comparison is the point of the sweep. "rpc" with faults disabled
  /// is byte-identical to "direct".
  std::string collector = "direct";

  /// Transport knobs consulted when collector == "rpc" (fault schedule,
  /// retry budget). Defaults give a clean wire.
  net::RpcCollectorConfig rpc;

  /// Worker threads running independent runs concurrently. Results are
  /// bit-identical for any thread count (run r always uses base_seed + r
  /// and results are collected by run index). 0 = hardware concurrency.
  std::size_t threads = 1;

  std::vector<place::StrategyKind> strategies = {
      place::StrategyKind::kRandom, place::StrategyKind::kOfflineKMeans,
      place::StrategyKind::kOnlineClustering, place::StrategyKind::kOptimal};
};

struct StrategyOutcome {
  place::StrategyKind kind{};
  std::string name;
  std::vector<double> per_run_delay_ms;  ///< true average delay, one per run
  Summary average_delay_ms;              ///< summary over the runs
};

struct ExperimentResult {
  std::vector<StrategyOutcome> outcomes;

  /// Mean average-delay of a strategy; throws if it was not part of the run.
  double mean_of(place::StrategyKind kind) const;
  const StrategyOutcome& outcome_of(place::StrategyKind kind) const;
};

/// Runs the full multi-run experiment. Deterministic in (env, config).
ExperimentResult run_experiment(const Environment& env, const ExperimentConfig& config);

/// Convenience overload that builds a default RNP environment internally.
ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace geored::core
