// Decentralized placement epochs — no central server.
//
// Algorithm 1 collects summaries "at a node"; that node is a single point
// of failure and a bandwidth hotspot. Because the whole decision is a
// deterministic function of (candidate set, summaries, epoch seed), the
// replicas can instead exchange their summaries all-to-all and *each*
// compute the placement locally: with identical inputs — summaries ordered
// by source id — and an identical seed, every replica arrives at the same
// proposal without any coordination round. Cost: k*(k-1) summary messages
// instead of k, still O(k^2 * m) bytes total — negligible for the paper's
// k <= 7.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cluster/microcluster.h"
#include "placement/strategy.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace geored::core {

struct DecentralizedEpochResult {
  /// The agreed proposal (meaningful when `agreement` holds).
  place::Placement proposal;
  /// What each participating replica computed, in source-id order.
  std::vector<place::Placement> per_replica;
  bool agreement = false;
  std::uint64_t summary_bytes = 0;  ///< total summary traffic exchanged
  double completion_ms = 0.0;       ///< when the last replica decided
};

/// Runs one decentralized epoch over the simulated network.
/// `replica_summaries` maps each current replica holder to its
/// micro-clusters; `strategy` is the shared per-replica decision rule
/// (identical inputs + a deterministic strategy is what makes agreement
/// work, so the strategy must honor the PlacementStrategy determinism
/// contract). Deterministic in `epoch_seed`.
DecentralizedEpochResult run_decentralized_epoch(
    sim::Simulator& simulator, sim::Network& network,
    const std::vector<place::CandidateInfo>& candidates,
    const std::map<topo::NodeId, std::vector<cluster::MicroCluster>>& replica_summaries,
    std::size_t k, std::uint64_t epoch_seed, const place::PlacementStrategy& strategy);

}  // namespace geored::core
