// Per-stage wall-clock attribution for the placement epoch.
//
// The epoch's cost story lives in BENCH_perf.json as end-to-end ratios, but
// a ratio cannot say *where* the milliseconds went — and the pipeline's
// four stages (collect / propose / gate / adopt) plus the ingest flush have
// wildly different scaling in clients, k, and summarizer budget. This layer
// records each stage's wall time into the EpochReport the stage ran under,
// so bench runs, the scenario engine, and operators all attribute the
// critical path the same way. The trace is observational only: no retained
// value, decision, or serialized byte depends on it, so the determinism
// contracts (bit-identical epochs at any GEORED_THREADS, golden scenario
// transcripts) are untouched.
//
// Timing comes from the real monotonic clock at sub-millisecond resolution
// (net::Clock's now_ms() is integer milliseconds — too coarse for stages
// that finish in microseconds). The chrono call is confined to
// epoch_trace.cpp, which is on the geored_lint wall-clock allowlist next to
// net/clock.cpp; everything else keeps going through injected clocks.
#pragma once

namespace geored::core {

/// Wall time spent in each run_epoch stage, in fractional milliseconds.
/// Purely observational: values vary run to run, and nothing downstream of
/// a report may branch on them.
struct EpochStageTrace {
  double ingest_flush_ms = 0.0;  ///< draining the staged access batches
  double collect_ms = 0.0;       ///< SummaryCollector::collect
  double propose_ms = 0.0;       ///< PlacementProposer::propose
  double gate_ms = 0.0;          ///< delay estimates + MigrationGate
  double adopt_ms = 0.0;         ///< Adopter::adopt or ::retain

  double total_ms() const {
    return ingest_flush_ms + collect_ms + propose_ms + gate_ms + adopt_ms;
  }
};

/// Monotonic timestamp in fractional milliseconds since an arbitrary fixed
/// origin (steady_clock in epoch_trace.cpp). Differences are meaningful;
/// absolute values are not.
double trace_now_ms();

/// Scoped stage timer: accumulates the enclosed scope's wall time into the
/// given trace slot on destruction. Additive, so one slot can cover several
/// disjoint scopes of the same stage.
class StageTimer {
 public:
  explicit StageTimer(double& slot) : slot_(slot), start_ms_(trace_now_ms()) {}
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() { slot_ += trace_now_ms() - start_ms_; }

 private:
  double& slot_;
  double start_ms_;
};

}  // namespace geored::core
