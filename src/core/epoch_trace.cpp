#include "core/epoch_trace.h"

#include <chrono>

namespace geored::core {

double trace_now_ms() {
  // The one non-net translation unit allowed to read the wall clock (see
  // tools/geored_lint.py CLOCK_ALLOWLIST_FILES): stage traces need
  // sub-millisecond resolution, which the injected net::Clock interface
  // deliberately does not offer, and nothing deterministic consumes the
  // result.
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}

}  // namespace geored::core
