// ReplicationSystem: the paper's whole system wired onto the discrete-event
// simulator — clients issuing reads against the current replica set, replica
// servers summarizing their user populations, and a coordinator that runs
// placement epochs and migrates replicas, all over a Network that charges
// realistic delays and accounts every byte.
//
// This is the "realistic" execution path (integration tests, examples,
// ablations). The figure benches use core/evaluation.h, which reproduces the
// paper's measurement protocol without per-access event overhead.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/replication_manager.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace geored::core {

/// How clients pick the replica to read from.
enum class ReplicaSelection {
  kTrueClosest,     ///< oracle: lowest true RTT (the paper's formal model)
  kByCoordinates,   ///< lowest predicted RTT from network coordinates
};

struct SystemConfig {
  ManagerConfig manager;
  double epoch_ms = 60'000.0;          ///< placement period
  std::size_t request_bytes = 256;     ///< client -> replica
  std::size_t response_bytes = 65'536; ///< replica -> client (object read)
  std::size_t control_bytes = 128;     ///< coordinator control messages
  std::size_t object_bytes = 1u << 30; ///< replica migration transfer size
  ReplicaSelection selection = ReplicaSelection::kByCoordinates;
  /// Summary collection protocol for placement epochs — any
  /// core::collector_names() entry. "hierarchical"/"decentralized" run over
  /// this system's simulator; "rpc" ships real bytes over localhost sockets.
  std::string collector = "direct";
  /// Transport knobs consulted when collector == "rpc".
  net::RpcCollectorConfig rpc;
  std::shared_ptr<net::Clock> rpc_clock;
};

struct EpochMetrics {
  std::size_t epoch = 0;
  double mean_delay_ms = 0.0;     ///< mean access delay during the epoch
  std::uint64_t accesses = 0;
  bool migrated = false;
  place::Placement placement;     ///< placement in force after the epoch
};

class ReplicationSystem {
 public:
  /// `clients[i]` is served with coordinates `client_coords[i]` and drives
  /// accesses from `workload` client index i. `coordinator` is the node that
  /// hosts the central placement service (Algorithm 1's "central server").
  ReplicationSystem(sim::Simulator& simulator, sim::Network& network,
                    std::vector<place::CandidateInfo> candidates,
                    std::vector<topo::NodeId> clients, std::vector<Point> client_coords,
                    const wl::Workload& workload, topo::NodeId coordinator,
                    SystemConfig config, std::uint64_t seed);

  /// Schedules all client arrivals and epoch ticks in [0, duration_ms) and
  /// runs the simulator to that horizon. May be called once.
  void run(double duration_ms);

  /// Marks the replica-holding capability of `node` as failed during
  /// [start_ms, end_ms): clients fail over to the next-closest live replica.
  /// Call before run().
  void schedule_failure(topo::NodeId node, double start_ms, double end_ms);

  const OnlineStats& overall_delay() const { return overall_delay_; }
  const std::vector<EpochMetrics>& epoch_history() const { return epochs_; }
  const std::vector<EpochReport>& epoch_reports() const { return reports_; }
  const ReplicationManager& manager() const { return manager_; }

  /// Accesses that found no live replica (only possible with failures).
  std::uint64_t failed_accesses() const { return failed_accesses_; }

 private:
  void schedule_client(std::size_t client_index, double duration_ms);
  void on_access(std::size_t client_index, double started_at);
  void run_epoch_at_coordinator();
  bool is_up(topo::NodeId node) const { return !failed_.contains(node); }
  void refresh_routing_cache();

  sim::Simulator& simulator_;
  sim::Network& network_;
  std::vector<place::CandidateInfo> candidates_;
  std::vector<topo::NodeId> clients_;
  std::vector<Point> client_coords_;
  const wl::Workload& workload_;
  topo::NodeId coordinator_;
  SystemConfig config_;
  Rng rng_;

  ReplicationManager manager_;
  place::Placement active_placement_;  ///< what clients route against

  /// Live replicas in active_placement_ order with their coordinates as one
  /// contiguous row set, so per-access routing is a flat nearest-row kernel
  /// instead of a candidate-list search per replica. Rebuilt lazily when a
  /// migration lands or a failure starts/ends (routing_dirty_).
  std::vector<topo::NodeId> live_nodes_;
  PointSet live_coords_;
  bool routing_dirty_ = true;

  std::set<topo::NodeId> failed_;
  OnlineStats overall_delay_;
  OnlineStats epoch_delay_;
  std::uint64_t epoch_accesses_ = 0;
  std::uint64_t failed_accesses_ = 0;
  std::size_t epoch_counter_ = 0;
  std::vector<EpochMetrics> epochs_;
  std::vector<EpochReport> reports_;
  bool started_ = false;
};

}  // namespace geored::core
