// ReplicationManager: the library's primary public API.
//
// One manager governs the replicas of one data object (or one group of
// objects treated as a virtual object, Section II-A). It maintains the
// paper's machinery end to end:
//
//   * a micro-cluster summarizer per current replica (Section III-B),
//   * periodic macro-clustering placement proposals (Algorithm 1),
//   * the migration cost/benefit gate (Section III-C),
//   * optional demand-driven adjustment of the replication degree k.
//
// The manager is deliberately transport-agnostic: callers route client
// accesses to it (serve / record_access) and invoke run_epoch() on whatever
// schedule they like. `core/system.h` wires it into the discrete-event
// simulator; a real deployment would wire it to RPC handlers the same way.
//
// Concurrency contract (capability-annotated, see common/sync.h): the
// *record* paths — serve / record_access / record_access_batch — may be
// called concurrently from any number of threads. Staging is sharded by
// replica (shard = replica id mod ManagerConfig::ingest_shards), each shard
// behind its own mutex, so records to different replicas rarely contend; a
// record only serializes against records to replicas in the same shard and
// against a flush (which holds every shard). No accesses are lost or
// corrupted (the interleaving order across threads is the scheduler's, so
// bit-reproducibility holds only for externally ordered streams); flushes
// merge shards in node-id order, so observable summaries are byte-identical
// at any thread count and any shard count. The *epoch and checkpoint* paths
// — run_epoch / save / restore / summary_of / delay_by_degree_curve —
// require exclusive access to the manager: they read and replace the
// summarizers the record paths feed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "cluster/summarizer.h"
#include "common/point_set.h"
#include "common/serialize.h"
#include "common/sync.h"
#include "core/epoch_pipeline.h"
#include "core/epoch_trace.h"
#include "core/migration.h"
#include "placement/online_clustering.h"
#include "placement/types.h"

namespace geored::core {

/// Checkpoint wire format produced by ReplicationManager::save. The header
/// guards against feeding stale or foreign blobs into restore(): the magic
/// identifies the blob as a manager checkpoint at all, and the version is
/// bumped whenever the payload layout changes so an old blob fails with a
/// clear error instead of misparsing silently.
///
/// Version history:
///   1  placement, degree, per-replica summaries, counters, warm centroids
///   2  v1 + the external budget state (budget_granted flag, budget_weight)
///      appended after the degree field, so a restored coordinator resumes
///      a fleet allocator's decisions. v1 blobs still load; they restore
///      the documented defaults budget_granted = false, budget_weight = 1.
inline constexpr std::uint32_t kCheckpointMagic = 0x47524D43;  // "GRMC"
inline constexpr std::uint32_t kCheckpointVersion = 2;

struct ManagerConfig {
  /// Target degree of replication (the paper's k).
  std::size_t replication_degree = 3;

  /// Per-replica summarizer parameters (the paper's m etc.).
  cluster::SummarizerConfig summarizer;

  /// Macro-clustering parameters (Algorithm 1).
  place::OnlineClusteringConfig strategy;

  /// Migration cost/benefit gate.
  MigrationPolicy migration;

  /// Feed each epoch's macro-cluster centroids into the next epoch as a
  /// k-means warm start, so stable populations produce stable proposals
  /// instead of churning with seeding randomness.
  bool warm_start_macro_clusters = true;

  /// Demand-adaptive degree (paper §III-C: "vary the number of replicas ...
  /// as the demand of an object increases/decreases"). When enabled, the
  /// degree grows by one when the epoch's accesses exceed
  /// grow_accesses_per_replica * degree, and shrinks by one when they fall
  /// below shrink_accesses_per_replica * degree.
  bool dynamic_degree = false;
  double grow_accesses_per_replica = 10000.0;
  double shrink_accesses_per_replica = 1000.0;
  std::size_t min_degree = 1;
  std::size_t max_degree = 7;

  /// Accesses staged per replica before the summarizer ingests them as one
  /// contiguous batch. Staging is invisible to callers — every read path
  /// (run_epoch, summary_of, save, the degree curve) flushes first, so
  /// observable summaries are independent of the grain. 1 = unbatched.
  std::size_t ingest_batch_grain = 256;

  /// Number of staging shards the record paths spread over (replica id mod
  /// shards). A fixed count — deliberately independent of the thread count —
  /// so the staging layout never depends on GEORED_THREADS; flushes merge
  /// shards in node-id order, making summaries byte-identical at any value
  /// here too. More shards = less record-path contention; 1 restores a
  /// single global staging lock.
  std::size_t ingest_shards = 8;
};

/// Outcome of one placement epoch.
struct EpochReport {
  place::Placement old_placement;
  place::Placement proposed_placement;
  place::Placement adopted_placement;  ///< == old unless migrated
  double old_estimated_delay_ms = 0.0; ///< summary-estimated per-access delay
  double new_estimated_delay_ms = 0.0;
  MigrationDecision decision;
  std::size_t replicas_moved = 0;      ///< sites added by the proposal
  std::size_t summary_bytes = 0;       ///< wire size of shipped summaries
  std::uint64_t epoch_accesses = 0;    ///< accesses summarized this epoch
  std::size_t degree = 0;              ///< k in force after the epoch
  std::size_t stale_sources = 0;       ///< sources served from a collector cache
  std::size_t lost_sources = 0;        ///< sources that contributed nothing
  /// Per-stage wall time of this epoch (observational only; see
  /// core/epoch_trace.h — no retained value or decision depends on it).
  EpochStageTrace stages;
};

/// The canonical stage composition for a ManagerConfig: direct in-process
/// collection, the paper's online-clustering proposer (with warm starts per
/// the config), the configured migration policy gate, and nearest-centroid
/// summary redistribution. A manager built on this pipeline behaves
/// byte-identically to the historical hand-inlined run_epoch.
EpochPipeline standard_pipeline(const ManagerConfig& config);

class ReplicationManager {
 public:
  /// `candidates` are the usable data centers (with coordinates); the
  /// initial placement is a seeded random choice of k of them, exactly like
  /// a location-oblivious system would start. Runs epochs on
  /// standard_pipeline(config).
  ReplicationManager(std::vector<place::CandidateInfo> candidates, ManagerConfig config,
                     std::uint64_t seed);

  /// As above, but with an explicit stage composition — swap any stage for
  /// a protocol variant (hierarchical/decentralized collection, a different
  /// proposer) without touching the epoch loop. Every stage must be set.
  ReplicationManager(std::vector<place::CandidateInfo> candidates, ManagerConfig config,
                     std::uint64_t seed, EpochPipeline pipeline);

  const place::Placement& placement() const { return placement_; }
  std::size_t degree() const { return degree_; }

  /// Chooses the replica that can serve a client at `client_coords` with the
  /// lowest estimated latency, records the access, and returns the replica.
  topo::NodeId serve(const Point& client_coords, double data_weight = 1.0);

  /// Pure routing: the replica nearest `client_coords` in coordinate space,
  /// skipping any replica in `down` (e.g. data centers currently failed).
  /// Returns nullopt when every replica is down. Records nothing — callers
  /// that serve the access follow up with record_access. serve() is
  /// route({}) + record_access.
  std::optional<topo::NodeId> route(const Point& client_coords,
                                    const std::set<topo::NodeId>& down = {}) const;

  /// Records an access served by `replica` (which must currently hold a
  /// replica) for a client at `client_coords`. Use this form when the caller
  /// did its own replica selection (e.g. the event-driven simulator).
  /// Accesses are staged and ingested in batches of
  /// ManagerConfig::ingest_batch_grain; results are identical to immediate
  /// ingestion (see flush_ingest).
  void record_access(topo::NodeId replica, const Point& client_coords, double data_weight = 1.0);

  /// Records a whole chunk of accesses served by `replica`: row i of
  /// `client_coords` with data_weights[i] (or 1.0 per row when
  /// `data_weights` is empty). Equivalent to record_access per row in
  /// order; the batch form skips the per-access staging overhead.
  void record_access_batch(topo::NodeId replica, const PointSet& client_coords,
                           std::span<const double> data_weights = {});

  /// Ingests every staged access into its replica's summarizer (in recorded
  /// order per replica; replicas in parallel on the deterministic thread
  /// pool). Called automatically by every state-reading entry point, so it
  /// only needs to be called directly when benchmarking ingestion itself.
  void flush_ingest() const;

  /// Micro-clusters currently held for `replica` (observability / tests).
  const std::vector<cluster::MicroCluster>& summary_of(topo::NodeId replica) const;

  /// Runs one placement epoch: collect summaries, propose a placement,
  /// apply the migration gate, adopt + redistribute summaries on success,
  /// then age all summaries. Deterministic in construction seed and the
  /// sequence of recorded accesses.
  ///
  /// `excluded` lists candidates that must not host replicas this epoch
  /// (e.g. data centers currently failed). If the *current* placement
  /// contains an excluded node, the proposal is adopted unconditionally —
  /// availability overrides the migration cost gate.
  EpochReport run_epoch(const std::set<topo::NodeId>& excluded = {});

  /// Accesses recorded since the last epoch (sum of per-shard counters,
  /// read shard by shard in index order).
  std::uint64_t epoch_accesses() const;

  /// Sets the degree an external allocator (e.g. FleetManager's replica
  /// budget) granted this object, clamped to the configured bounds. Takes
  /// effect at the next epoch: the proposal is sized to the new degree and
  /// adopted under the degree-change rule.
  void set_degree(std::size_t degree);

  /// Whether an external allocator has granted this manager a degree via
  /// set_degree since construction (or since the restored checkpoint said
  /// so) — how a fleet distinguishes "budget decision in force" from "still
  /// on the configured default" after a coordinator failover.
  bool budget_granted() const { return budget_granted_; }

  /// Allocation-priority weight an external controller (scenario engine,
  /// operator) assigned this object. FleetManager multiplies the group's
  /// demand curve by it before dividing the replica budget, so weight 2
  /// bids for replicas as if the group were twice as hot. 1 = neutral.
  void set_budget_weight(double weight);
  double budget_weight() const { return budget_weight_; }

  /// Estimated summary-weighted delay per access for each degree in
  /// [min_degree, max_degree], scaled by the summarized access weight so
  /// hot objects weigh more — the demand curve allocate_replica_budget
  /// consumes. Non-increasing by construction. Does not mutate any state.
  std::vector<double> delay_by_degree_curve(std::size_t min_degree,
                                            std::size_t max_degree) const;

  /// Serializes the full mutable state (placement, degree, per-replica
  /// summaries, epoch counters, warm-start centroids) behind a magic +
  /// format-version header (kCheckpointMagic / kCheckpointVersion) so a
  /// coordinator can checkpoint and a stand-by can resume without losing
  /// the learned usage knowledge.
  void save(ByteWriter& writer) const;

  /// Restores state saved by save(). The manager must have been constructed
  /// with the same candidates and configuration; blobs with a wrong magic
  /// or an unknown format version, and placements referencing unknown
  /// candidates, throw and leave the manager unchanged.
  void restore(ByteReader& reader);

 private:
  /// Staged accesses awaiting ingestion into one replica's summarizer. The
  /// drained form keeps its buffers (PointSet::clear preserves dimension
  /// and capacity), so steady-state staging is allocation-free; a
  /// mid-stream dimension change therefore throws at the record call that
  /// introduces it rather than at the flush — both are caller errors.
  struct PendingBatch {
    PointSet coords;
    std::vector<double> weights;
  };

  /// One staging shard: a slice of the per-replica pending batches plus its
  /// share of the epoch access counter, behind its own mutex. A replica
  /// always maps to the same shard (node id mod shard count), so a
  /// replica's staged stream — and any grain-triggered ingestion into its
  /// summarizer — is serialized by exactly one mutex. Held by unique_ptr:
  /// a Mutex is a capability identity and cannot move when the vector is
  /// built.
  struct IngestShard {
    mutable Mutex mutex;
    std::map<topo::NodeId, PendingBatch> pending GEORED_GUARDED_BY(mutex);
    std::uint64_t accesses GEORED_GUARDED_BY(mutex) = 0;
  };

  double estimate_average_delay(const place::Placement& placement,
                                const std::vector<cluster::MicroCluster>& summaries) const;
  const place::CandidateInfo& candidate_info(topo::NodeId node) const;
  void maybe_adjust_degree(std::uint64_t epoch_accesses);
  IngestShard& shard_of(topo::NodeId replica) const {
    return *ingest_shards_[replica % ingest_shards_.size()];
  }

  std::vector<place::CandidateInfo> candidates_;
  ManagerConfig config_;
  std::uint64_t seed_;
  std::uint64_t epoch_index_ = 0;
  std::size_t degree_;
  bool budget_granted_ = false;
  double budget_weight_ = 1.0;
  place::Placement placement_;
  /// mutable with the shards: staging is a cache layout, not observable
  /// state — const readers flush it so summaries never depend on the grain.
  /// Not guarded: the map's structure is mutated only by the epoch and
  /// checkpoint paths (exclusive by contract); a summarizer's contents are
  /// only mutated under its replica's shard mutex (grain ingestion) or with
  /// every shard held (flush).
  mutable std::map<topo::NodeId, cluster::MicroClusterSummarizer> summarizers_;
  /// Fixed-count staging shards (see ManagerConfig::ingest_shards). A flush
  /// acquires every shard in index order and holds them across its parallel
  /// ingest — pool chunks never take shard mutexes — so records observe
  /// either pre- or post-flush staging, never a torn one.
  mutable std::vector<std::unique_ptr<IngestShard>> ingest_shards_;
  EpochPipeline pipeline_;
};

}  // namespace geored::core
