// ReplicationManager: the library's primary public API.
//
// One manager governs the replicas of one data object (or one group of
// objects treated as a virtual object, Section II-A). It maintains the
// paper's machinery end to end:
//
//   * a micro-cluster summarizer per current replica (Section III-B),
//   * periodic macro-clustering placement proposals (Algorithm 1),
//   * the migration cost/benefit gate (Section III-C),
//   * optional demand-driven adjustment of the replication degree k.
//
// The manager is deliberately transport-agnostic: callers route client
// accesses to it (serve / record_access) and invoke run_epoch() on whatever
// schedule they like. `core/system.h` wires it into the discrete-event
// simulator; a real deployment would wire it to RPC handlers the same way.
//
// Concurrency contract (capability-annotated, see common/sync.h): the
// *record* paths — serve / record_access / record_access_batch — may be
// called concurrently from any number of threads; staging is serialized on
// an internal mutex, so no accesses are lost or corrupted (the interleaving
// order across threads is the scheduler's, so bit-reproducibility holds
// only for externally ordered streams). The *epoch and checkpoint* paths —
// run_epoch / save / restore / summary_of / delay_by_degree_curve — require
// exclusive access to the manager: they read and replace the summarizers
// the record paths feed.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "cluster/summarizer.h"
#include "common/point_set.h"
#include "common/serialize.h"
#include "common/sync.h"
#include "core/epoch_pipeline.h"
#include "core/migration.h"
#include "placement/online_clustering.h"
#include "placement/types.h"

namespace geored::core {

/// Checkpoint wire format produced by ReplicationManager::save. The header
/// guards against feeding stale or foreign blobs into restore(): the magic
/// identifies the blob as a manager checkpoint at all, and the version is
/// bumped whenever the payload layout changes so an old blob fails with a
/// clear error instead of misparsing silently.
inline constexpr std::uint32_t kCheckpointMagic = 0x47524D43;  // "GRMC"
inline constexpr std::uint32_t kCheckpointVersion = 1;

struct ManagerConfig {
  /// Target degree of replication (the paper's k).
  std::size_t replication_degree = 3;

  /// Per-replica summarizer parameters (the paper's m etc.).
  cluster::SummarizerConfig summarizer;

  /// Macro-clustering parameters (Algorithm 1).
  place::OnlineClusteringConfig strategy;

  /// Migration cost/benefit gate.
  MigrationPolicy migration;

  /// Feed each epoch's macro-cluster centroids into the next epoch as a
  /// k-means warm start, so stable populations produce stable proposals
  /// instead of churning with seeding randomness.
  bool warm_start_macro_clusters = true;

  /// Demand-adaptive degree (paper §III-C: "vary the number of replicas ...
  /// as the demand of an object increases/decreases"). When enabled, the
  /// degree grows by one when the epoch's accesses exceed
  /// grow_accesses_per_replica * degree, and shrinks by one when they fall
  /// below shrink_accesses_per_replica * degree.
  bool dynamic_degree = false;
  double grow_accesses_per_replica = 10000.0;
  double shrink_accesses_per_replica = 1000.0;
  std::size_t min_degree = 1;
  std::size_t max_degree = 7;

  /// Accesses staged per replica before the summarizer ingests them as one
  /// contiguous batch. Staging is invisible to callers — every read path
  /// (run_epoch, summary_of, save, the degree curve) flushes first, so
  /// observable summaries are independent of the grain. 1 = unbatched.
  std::size_t ingest_batch_grain = 256;
};

/// Outcome of one placement epoch.
struct EpochReport {
  place::Placement old_placement;
  place::Placement proposed_placement;
  place::Placement adopted_placement;  ///< == old unless migrated
  double old_estimated_delay_ms = 0.0; ///< summary-estimated per-access delay
  double new_estimated_delay_ms = 0.0;
  MigrationDecision decision;
  std::size_t replicas_moved = 0;      ///< sites added by the proposal
  std::size_t summary_bytes = 0;       ///< wire size of shipped summaries
  std::uint64_t epoch_accesses = 0;    ///< accesses summarized this epoch
  std::size_t degree = 0;              ///< k in force after the epoch
  std::size_t stale_sources = 0;       ///< sources served from a collector cache
  std::size_t lost_sources = 0;        ///< sources that contributed nothing
};

/// The canonical stage composition for a ManagerConfig: direct in-process
/// collection, the paper's online-clustering proposer (with warm starts per
/// the config), the configured migration policy gate, and nearest-centroid
/// summary redistribution. A manager built on this pipeline behaves
/// byte-identically to the historical hand-inlined run_epoch.
EpochPipeline standard_pipeline(const ManagerConfig& config);

class ReplicationManager {
 public:
  /// `candidates` are the usable data centers (with coordinates); the
  /// initial placement is a seeded random choice of k of them, exactly like
  /// a location-oblivious system would start. Runs epochs on
  /// standard_pipeline(config).
  ReplicationManager(std::vector<place::CandidateInfo> candidates, ManagerConfig config,
                     std::uint64_t seed);

  /// As above, but with an explicit stage composition — swap any stage for
  /// a protocol variant (hierarchical/decentralized collection, a different
  /// proposer) without touching the epoch loop. Every stage must be set.
  ReplicationManager(std::vector<place::CandidateInfo> candidates, ManagerConfig config,
                     std::uint64_t seed, EpochPipeline pipeline);

  const place::Placement& placement() const { return placement_; }
  std::size_t degree() const { return degree_; }

  /// Chooses the replica that can serve a client at `client_coords` with the
  /// lowest estimated latency, records the access, and returns the replica.
  topo::NodeId serve(const Point& client_coords, double data_weight = 1.0);

  /// Records an access served by `replica` (which must currently hold a
  /// replica) for a client at `client_coords`. Use this form when the caller
  /// did its own replica selection (e.g. the event-driven simulator).
  /// Accesses are staged and ingested in batches of
  /// ManagerConfig::ingest_batch_grain; results are identical to immediate
  /// ingestion (see flush_ingest).
  void record_access(topo::NodeId replica, const Point& client_coords,
                     double data_weight = 1.0) GEORED_EXCLUDES(ingest_mutex_);

  /// Records a whole chunk of accesses served by `replica`: row i of
  /// `client_coords` with data_weights[i] (or 1.0 per row when
  /// `data_weights` is empty). Equivalent to record_access per row in
  /// order; the batch form skips the per-access staging overhead.
  void record_access_batch(topo::NodeId replica, const PointSet& client_coords,
                           std::span<const double> data_weights = {})
      GEORED_EXCLUDES(ingest_mutex_);

  /// Ingests every staged access into its replica's summarizer (in recorded
  /// order per replica; replicas in parallel on the deterministic thread
  /// pool). Called automatically by every state-reading entry point, so it
  /// only needs to be called directly when benchmarking ingestion itself.
  void flush_ingest() const GEORED_EXCLUDES(ingest_mutex_);

  /// Micro-clusters currently held for `replica` (observability / tests).
  const std::vector<cluster::MicroCluster>& summary_of(topo::NodeId replica) const;

  /// Runs one placement epoch: collect summaries, propose a placement,
  /// apply the migration gate, adopt + redistribute summaries on success,
  /// then age all summaries. Deterministic in construction seed and the
  /// sequence of recorded accesses.
  ///
  /// `excluded` lists candidates that must not host replicas this epoch
  /// (e.g. data centers currently failed). If the *current* placement
  /// contains an excluded node, the proposal is adopted unconditionally —
  /// availability overrides the migration cost gate.
  EpochReport run_epoch(const std::set<topo::NodeId>& excluded = {});

  /// Accesses recorded since the last epoch.
  std::uint64_t epoch_accesses() const GEORED_EXCLUDES(ingest_mutex_) {
    const MutexLock lock(ingest_mutex_);
    return epoch_accesses_;
  }

  /// Sets the degree an external allocator (e.g. FleetManager's replica
  /// budget) granted this object, clamped to the configured bounds. Takes
  /// effect at the next epoch: the proposal is sized to the new degree and
  /// adopted under the degree-change rule.
  void set_degree(std::size_t degree);

  /// Estimated summary-weighted delay per access for each degree in
  /// [min_degree, max_degree], scaled by the summarized access weight so
  /// hot objects weigh more — the demand curve allocate_replica_budget
  /// consumes. Non-increasing by construction. Does not mutate any state.
  std::vector<double> delay_by_degree_curve(std::size_t min_degree,
                                            std::size_t max_degree) const;

  /// Serializes the full mutable state (placement, degree, per-replica
  /// summaries, epoch counters, warm-start centroids) behind a magic +
  /// format-version header (kCheckpointMagic / kCheckpointVersion) so a
  /// coordinator can checkpoint and a stand-by can resume without losing
  /// the learned usage knowledge.
  void save(ByteWriter& writer) const;

  /// Restores state saved by save(). The manager must have been constructed
  /// with the same candidates and configuration; blobs with a wrong magic
  /// or an unknown format version, and placements referencing unknown
  /// candidates, throw and leave the manager unchanged.
  void restore(ByteReader& reader);

 private:
  /// Staged accesses awaiting ingestion into one replica's summarizer.
  struct PendingBatch {
    PointSet coords;
    std::vector<double> weights;
  };

  double estimate_average_delay(const place::Placement& placement,
                                const std::vector<cluster::MicroCluster>& summaries) const;
  const place::CandidateInfo& candidate_info(topo::NodeId node) const;
  void maybe_adjust_degree(std::uint64_t epoch_accesses);
  /// The flush body; the public flush_ingest() is the locking shell.
  void flush_ingest_locked() const GEORED_REQUIRES(ingest_mutex_);

  std::vector<place::CandidateInfo> candidates_;
  ManagerConfig config_;
  std::uint64_t seed_;
  std::uint64_t epoch_index_ = 0;
  std::size_t degree_;
  place::Placement placement_;
  /// mutable with pending_: staging is a cache layout, not observable
  /// state — const readers flush it so summaries never depend on the grain.
  /// Not guarded: mutated only by the epoch/checkpoint paths (exclusive by
  /// contract) and by ingestion, which always runs under ingest_mutex_.
  mutable std::map<topo::NodeId, cluster::MicroClusterSummarizer> summarizers_;
  /// Guards the concurrent-safe staging state: the per-replica pending
  /// batches and the access counter the record paths bump. Held across a
  /// whole flush (including its parallel_for — pool chunks never take it),
  /// so records observe either pre- or post-flush staging, never a torn one.
  mutable Mutex ingest_mutex_;
  mutable std::map<topo::NodeId, PendingBatch> pending_ GEORED_GUARDED_BY(ingest_mutex_);
  EpochPipeline pipeline_;
  std::uint64_t epoch_accesses_ GEORED_GUARDED_BY(ingest_mutex_) = 0;
};

}  // namespace geored::core
