#include "core/evaluation.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <thread>

#include "common/ensure.h"
#include "common/random.h"
#include "core/epoch_pipeline.h"
#include "placement/evaluate.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "workload/access_stream.h"

namespace geored::core {

std::string coord_system_name(CoordSystem system) {
  switch (system) {
    case CoordSystem::kRnp:
      return "rnp";
    case CoordSystem::kVivaldi:
      return "vivaldi";
    case CoordSystem::kGnp:
      return "gnp";
  }
  throw InternalError("unknown coordinate system");
}

Environment::Environment(const topo::PlanetLabModelConfig& topology_config,
                         std::uint64_t topology_seed, CoordSystem coord_system,
                         const coord::GossipConfig& gossip, std::uint64_t embedding_seed)
    : topology_(topo::generate_planetlab_like(topology_config, topology_seed)),
      coord_system_(coord_system) {
  switch (coord_system) {
    case CoordSystem::kRnp:
      coords_ = coord::run_rnp(topology_, coord::RnpConfig{}, gossip, embedding_seed);
      break;
    case CoordSystem::kVivaldi:
      coords_ = coord::run_vivaldi(topology_, coord::VivaldiConfig{}, gossip, embedding_seed);
      break;
    case CoordSystem::kGnp:
      coords_ = coord::run_gnp(topology_, coord::GnpConfig{});
      break;
  }
}

coord::EmbeddingQuality Environment::embedding_quality() const {
  return coord::evaluate_embedding(topology_, coords_);
}

namespace {

/// One run of the paper's protocol; returns the true average access delay
/// achieved by each requested strategy.
std::vector<double> run_once(const Environment& env, const ExperimentConfig& config,
                             std::uint64_t seed) {
  const auto& topology = env.topology();
  const auto& coords = env.coordinates();
  const std::size_t n = topology.size();
  GEORED_ENSURE(config.num_datacenters >= 1 && config.num_datacenters < n,
                "need at least one data center and one client");
  Rng rng(seed);

  // 1. Candidate data centers: a seeded random subset of nodes (each run
  //    "begins with different candidate replica locations", §IV-A).
  const auto candidate_idx = rng.sample_without_replacement(n, config.num_datacenters);
  std::vector<bool> is_candidate(n, false);
  std::vector<place::CandidateInfo> candidates;
  candidates.reserve(candidate_idx.size());
  for (const auto idx : candidate_idx) {
    is_candidate[idx] = true;
    candidates.push_back(
        {static_cast<topo::NodeId>(idx), coords[idx].position,
         std::numeric_limits<double>::infinity()});
  }

  // 2. Clients: every other node, with Poisson access counts around a
  //    lognormal-spread per-client mean.
  std::vector<place::ClientRecord> clients;
  clients.reserve(n - candidates.size());
  const double mu_correction = -0.5 * config.access_spread_sigma * config.access_spread_sigma;
  for (std::size_t idx = 0; idx < n; ++idx) {
    if (is_candidate[idx]) continue;
    place::ClientRecord record;
    record.client = static_cast<topo::NodeId>(idx);
    record.coords = coords[idx].position;
    const double mean = config.mean_accesses_per_client *
                        std::exp(rng.normal(mu_correction, config.access_spread_sigma));
    record.access_count = std::max<std::uint64_t>(1, rng.poisson(mean));
    record.data_weight = static_cast<double>(record.access_count);
    clients.push_back(std::move(record));
  }

  // 3. Observation phase: the object starts on k random candidates; every
  //    access goes to the client's true-closest initial replica, which
  //    summarizes it (Section III-B).
  const std::size_t k = std::min(config.k, candidates.size());
  const auto initial_idx = rng.sample_without_replacement(candidates.size(), k);
  std::vector<topo::NodeId> initial_placement;
  for (const auto idx : initial_idx) initial_placement.push_back(candidates[idx].node);

  std::vector<std::size_t> closest_initial(clients.size());
  for (std::size_t u = 0; u < clients.size(); ++u) {
    std::size_t best = 0;
    double best_rtt = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < initial_placement.size(); ++r) {
      const double rtt = topology.rtt_ms(clients[u].client, initial_placement[r]);
      if (rtt < best_rtt) {
        best_rtt = rtt;
        best = r;
      }
    }
    closest_initial[u] = best;
  }

  cluster::SummarizerConfig summarizer_config;
  summarizer_config.max_clusters = config.micro_clusters;
  summarizer_config.min_absorb_radius = config.summarizer_min_radius_ms;
  std::vector<cluster::MicroClusterSummarizer> summarizers(
      initial_placement.size(), cluster::MicroClusterSummarizer(summarizer_config));

  // Interleave accesses across clients so cluster formation sees arrivals in
  // a realistic order rather than one client at a time, then regroup the
  // stream into one contiguous batch per replica. Each summarizer ingests
  // its own subsequence in stream order, so the batched path reproduces the
  // per-access loop byte for byte.
  std::vector<std::uint64_t> access_counts;
  std::vector<Point> client_points;
  access_counts.reserve(clients.size());
  client_points.reserve(clients.size());
  for (const auto& client : clients) {
    access_counts.push_back(client.access_count);
    client_points.push_back(client.coords);
  }
  const auto access_stream = wl::interleave_access_stream(access_counts, rng);
  const auto batches = wl::batch_by_server(access_stream, closest_initial, client_points,
                                           initial_placement.size());
  // Sequential per-replica ingest: run_experiment already parallelizes
  // across runs with raw threads, so nesting pool work here is off-limits.
  for (std::size_t r = 0; r < batches.size(); ++r) {
    summarizers[r].add_batch(batches[r].coords, batches[r].weights);
  }

  // Collect the per-replica summaries through the configured collection
  // path. "direct" concatenates in source order — byte-identical to the
  // historical manual flatten; the protocol collectors run over a per-run
  // simulated network and merge along the way.
  std::vector<SummarySource> sources;
  sources.reserve(initial_placement.size());
  for (std::size_t r = 0; r < initial_placement.size(); ++r) {
    sources.push_back({initial_placement[r], summarizers[r].clusters()});
  }
  std::vector<cluster::MicroCluster> summaries;
  if (config.collector == "direct") {
    summaries = DirectCollector().collect(sources, {candidates, k, seed}).summaries;
  } else if (config.collector == "rpc") {
    // Real sockets, no simulator. Each run stands up its own ephemeral-port
    // server, so concurrent runs do not collide. Sources that exhaust their
    // retries have no prior epoch to fall back to here (one round per run),
    // so under heavy fault injection some sources simply contribute nothing.
    CollectorConfig collector_config;
    collector_config.rpc = config.rpc;
    summaries =
        make_collector("rpc", collector_config)->collect(sources, {candidates, k, seed}).summaries;
  } else {
    sim::Simulator simulator;
    sim::Network network(simulator, topology);
    CollectorConfig collector_config;
    collector_config.simulator = &simulator;
    collector_config.network = &network;
    collector_config.aggregation_root = initial_placement.front();
    summaries = make_collector(config.collector, collector_config)
                    ->collect(sources, {candidates, k, seed})
                    .summaries;
  }

  // 4. Every strategy proposes from the information it may see; proposals
  //    are scored with the ground truth.
  std::vector<double> delays;
  delays.reserve(config.strategies.size());
  for (std::size_t s = 0; s < config.strategies.size(); ++s) {
    place::PlacementInput input;
    input.candidates = candidates;
    input.k = k;
    input.clients = clients;
    input.summaries = summaries;
    input.topology = &topology;
    input.quorum = config.quorum;
    input.seed = seed ^ (0xc2b2ae3d27d4eb4fULL * (s + 1));

    const auto strategy = place::make_strategy(config.strategies[s]);
    const auto placement = strategy->place(input);
    place::validate_placement(placement, input);
    delays.push_back(place::true_average_delay(topology, placement, clients,
                                               std::min(config.quorum, placement.size())));
  }
  return delays;
}

}  // namespace

ExperimentResult run_experiment(const Environment& env, const ExperimentConfig& config) {
  GEORED_ENSURE(config.runs >= 1, "experiment needs at least one run");
  GEORED_ENSURE(!config.strategies.empty(), "experiment needs at least one strategy");
  // Validate the collector name up front: an unknown name must throw here,
  // on the caller's thread, not inside a worker.
  {
    const auto names = collector_names();
    GEORED_ENSURE(std::find(names.begin(), names.end(), config.collector) != names.end(),
                  "unknown collector '" + config.collector + "'");
  }
  ExperimentResult result;
  result.outcomes.resize(config.strategies.size());
  for (std::size_t s = 0; s < config.strategies.size(); ++s) {
    result.outcomes[s].kind = config.strategies[s];
    result.outcomes[s].name = place::strategy_name(config.strategies[s]);
  }
  // Per-run results land in a fixed slot, so any thread count produces the
  // identical outcome.
  //
  // Concurrency contract of the fan-out below: this is the library's one
  // sanctioned raw-std::thread site outside the pool and the RPC server.
  // Workers share only the atomic run counter and the slot-disjoint per_run
  // vector, so no capability (common/sync.h) is needed — there is no guarded
  // state. run_once itself allocates all scratch (summarizers, simulators,
  // per-run RPC servers) per call, never reusing it across runs, which is
  // what makes the slots independent. Workers may still reach parallel_for
  // (e.g. the rpc collector's fetch fan-out); the global pool serializes
  // whole tasks, so concurrent run_chunks from two workers is rejected by
  // the pool's busy check rather than silently interleaved — callers that
  // combine threads > 1 with a pool-using collector must set
  // GEORED_THREADS=1 (the pool then runs inline on each worker).
  std::vector<std::vector<double>> per_run(config.runs);
  std::size_t threads = config.threads == 0
                            ? std::max(1u, std::thread::hardware_concurrency())
                            : config.threads;
  threads = std::min(threads, config.runs);
  if (threads <= 1) {
    for (std::size_t r = 0; r < config.runs; ++r) {
      per_run[r] = run_once(env, config, config.base_seed + r);
    }
  } else {
    std::atomic<std::size_t> next_run{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        while (true) {
          const std::size_t r = next_run.fetch_add(1);
          if (r >= config.runs) break;
          per_run[r] = run_once(env, config, config.base_seed + r);
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }
  for (std::size_t r = 0; r < config.runs; ++r) {
    for (std::size_t s = 0; s < per_run[r].size(); ++s) {
      result.outcomes[s].per_run_delay_ms.push_back(per_run[r][s]);
    }
  }
  for (auto& outcome : result.outcomes) {
    outcome.average_delay_ms = summarize(outcome.per_run_delay_ms);
  }
  return result;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  const Environment env(topo::PlanetLabModelConfig{}, /*topology_seed=*/42, CoordSystem::kRnp,
                        coord::GossipConfig{});
  return run_experiment(env, config);
}

double ExperimentResult::mean_of(place::StrategyKind kind) const {
  return outcome_of(kind).average_delay_ms.mean;
}

const StrategyOutcome& ExperimentResult::outcome_of(place::StrategyKind kind) const {
  const auto it = std::find_if(outcomes.begin(), outcomes.end(),
                               [kind](const StrategyOutcome& o) { return o.kind == kind; });
  GEORED_ENSURE(it != outcomes.end(), "strategy was not part of the experiment");
  return *it;
}

}  // namespace geored::core
