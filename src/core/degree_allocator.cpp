#include "core/degree_allocator.h"

#include <algorithm>
#include <queue>

#include "common/ensure.h"

namespace geored::core {

namespace {

void validate(const std::vector<GroupDemand>& demands, const AllocatorConfig& config) {
  GEORED_ENSURE(!demands.empty(), "allocator needs at least one group");
  GEORED_ENSURE(config.min_degree >= 1 && config.min_degree <= config.max_degree,
                "degree bounds must satisfy 1 <= min <= max");
  const std::size_t levels = config.max_degree - config.min_degree + 1;
  for (const auto& demand : demands) {
    GEORED_ENSURE(demand.delay_by_degree.size() == levels,
                  "each group needs one delay per degree in [min, max]");
    for (std::size_t i = 1; i < demand.delay_by_degree.size(); ++i) {
      GEORED_ENSURE(demand.delay_by_degree[i] <= demand.delay_by_degree[i - 1] + 1e-9,
                    "delay must be non-increasing in the degree");
    }
  }
  GEORED_ENSURE(config.budget >= demands.size() * config.min_degree,
                "budget cannot cover the minimum degree for every group");
}

}  // namespace

Allocation allocate_replica_budget(const std::vector<GroupDemand>& demands,
                                   const AllocatorConfig& config) {
  validate(demands, config);
  Allocation allocation;
  allocation.degree_per_group.assign(demands.size(), config.min_degree);
  allocation.replicas_used = demands.size() * config.min_degree;

  // Max-heap of (gain of the next replica, group).
  struct Step {
    double gain;
    std::size_t group;
    bool operator<(const Step& other) const { return gain < other.gain; }
  };
  std::priority_queue<Step> heap;
  const auto gain_of = [&](std::size_t group, std::size_t current_degree) {
    const std::size_t level = current_degree - config.min_degree;
    if (current_degree >= config.max_degree) return -1.0;
    return demands[group].delay_by_degree[level] -
           demands[group].delay_by_degree[level + 1];
  };
  for (std::size_t g = 0; g < demands.size(); ++g) {
    const double gain = gain_of(g, config.min_degree);
    if (gain >= 0.0) heap.push({gain, g});
  }

  std::size_t remaining = config.budget - allocation.replicas_used;
  while (remaining > 0 && !heap.empty()) {
    const Step step = heap.top();
    heap.pop();
    auto& degree = allocation.degree_per_group[step.group];
    ++degree;
    ++allocation.replicas_used;
    --remaining;
    const double next_gain = gain_of(step.group, degree);
    if (next_gain >= 0.0) heap.push({next_gain, step.group});
  }

  for (std::size_t g = 0; g < demands.size(); ++g) {
    allocation.estimated_total_delay +=
        demands[g].delay_by_degree[allocation.degree_per_group[g] - config.min_degree];
  }
  return allocation;
}

Allocation allocate_uniform(const std::vector<GroupDemand>& demands,
                            const AllocatorConfig& config) {
  validate(demands, config);
  Allocation allocation;
  const std::size_t per_group = std::clamp(config.budget / demands.size(),
                                           config.min_degree, config.max_degree);
  allocation.degree_per_group.assign(demands.size(), per_group);
  allocation.replicas_used = per_group * demands.size();
  for (std::size_t g = 0; g < demands.size(); ++g) {
    allocation.estimated_total_delay +=
        demands[g].delay_by_degree[per_group - config.min_degree];
  }
  return allocation;
}

}  // namespace geored::core
